// Payload (small-buffer-optimized packet payload) unit tests: inline/heap
// boundary behavior, copy/move semantics, growth, equality — plus a
// differential test that the interned-id trace records render the same text
// a std::string-based record would.

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <utility>

#include "src/netsim/packet.h"
#include "src/netsim/payload.h"
#include "src/netsim/trace.h"
#include "src/util/bytes.h"

namespace natpunch {
namespace {

Bytes Pattern(size_t n) {
  Bytes b(n);
  std::iota(b.begin(), b.end(), static_cast<uint8_t>(1));
  return b;
}

TEST(PayloadTest, DefaultIsEmptyAndInline) {
  Payload p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.size(), 0u);
  EXPECT_TRUE(p.is_inline());
}

TEST(PayloadTest, SmallStaysInline) {
  const Bytes src = Pattern(Payload::kInlineCapacity);  // exactly the boundary
  Payload p(src);
  EXPECT_TRUE(p.is_inline());
  EXPECT_EQ(p, src);
}

TEST(PayloadTest, OverBoundaryGoesToHeap) {
  const Bytes src = Pattern(Payload::kInlineCapacity + 1);
  Payload p(src);
  EXPECT_FALSE(p.is_inline());
  EXPECT_EQ(p, src);
}

TEST(PayloadTest, CopyPreservesContentInlineAndHeap) {
  for (size_t n : {size_t{3}, Payload::kInlineCapacity + 40}) {
    const Bytes src = Pattern(n);
    Payload a(src);
    Payload b(a);  // copy ctor
    EXPECT_EQ(b, src);
    Payload c;
    c = a;  // copy assign
    EXPECT_EQ(c, src);
    EXPECT_EQ(a, src);  // source untouched
  }
}

TEST(PayloadTest, MoveInlineCopiesBytesAndEmptiesSource) {
  const Bytes src = Pattern(8);
  Payload a(src);
  Payload b(std::move(a));
  EXPECT_EQ(b, src);
  EXPECT_TRUE(b.is_inline());
  EXPECT_TRUE(a.empty());  // NOLINT: use-after-move is the point
}

TEST(PayloadTest, MoveHeapStealsBuffer) {
  const Bytes src = Pattern(Payload::kInlineCapacity + 100);
  Payload a(src);
  const uint8_t* buf = a.data();
  Payload b(std::move(a));
  EXPECT_EQ(b.data(), buf);  // pointer stolen, not copied
  EXPECT_EQ(b, src);
  EXPECT_TRUE(a.is_inline());  // NOLINT: source back to the inline rep
  EXPECT_TRUE(a.empty());
}

TEST(PayloadTest, MoveAssignReleasesOldHeapBuffer) {
  Payload a(Pattern(Payload::kInlineCapacity + 10));
  Payload b(Pattern(Payload::kInlineCapacity + 20));
  const Bytes expect = b.ToBytes();
  a = std::move(b);
  EXPECT_EQ(a, expect);
}

TEST(PayloadTest, ResizeGrowsAcrossBoundaryPreservingPrefix) {
  Payload p(Pattern(10));
  p.resize(Payload::kInlineCapacity + 30);
  EXPECT_FALSE(p.is_inline());
  EXPECT_EQ(p.size(), Payload::kInlineCapacity + 30);
  const Bytes prefix = Pattern(10);
  for (size_t i = 0; i < prefix.size(); ++i) {
    EXPECT_EQ(p[i], prefix[i]) << i;
  }
  for (size_t i = prefix.size(); i < p.size(); ++i) {
    EXPECT_EQ(p[i], 0u) << i;  // new bytes zero-filled
  }
}

TEST(PayloadTest, AppendCrossesBoundary) {
  const Bytes head = Pattern(60);
  const Bytes tail = Pattern(20);
  Payload p(head);
  p.append(tail.data(), tail.size());
  Bytes expect = head;
  expect.insert(expect.end(), tail.begin(), tail.end());
  EXPECT_FALSE(p.is_inline());
  EXPECT_EQ(p, expect);
}

TEST(PayloadTest, ClearKeepsHeapCapacityForReuse) {
  Payload p(Pattern(Payload::kInlineCapacity + 5));
  const uint8_t* buf = p.data();
  p.clear();
  EXPECT_TRUE(p.empty());
  p.assign(Pattern(Payload::kInlineCapacity + 3).data(), Payload::kInlineCapacity + 3);
  EXPECT_EQ(p.data(), buf);  // old buffer reused, no fresh allocation
}

TEST(PayloadTest, EqualityAgainstBytesBothDirections) {
  const Bytes src = Pattern(12);
  Payload p(src);
  EXPECT_TRUE(p == src);
  EXPECT_TRUE(src == p);
  Bytes other = src;
  other[3] ^= 0xff;
  EXPECT_FALSE(p == other);
  EXPECT_FALSE(other == p);
  EXPECT_TRUE(p == Payload(src));
  // Same content on different representations still compares equal.
  Payload heap(Pattern(Payload::kInlineCapacity + 1));
  heap.resize(12);
  heap.assign(src.data(), src.size());
  EXPECT_FALSE(heap.is_inline());
  EXPECT_TRUE(heap == p);
}

TEST(PayloadTest, ToBytesRoundTripsAndSpanViews) {
  const Bytes src = Pattern(33);
  Payload p(src);
  EXPECT_EQ(p.ToBytes(), src);
  ConstByteSpan span = p;  // implicit view, no copy
  EXPECT_EQ(span.data(), p.data());
  EXPECT_EQ(span.size(), p.size());
}

// --- Trace differential: interned-id records must render exactly what the
// old std::string-node representation printed. -------------------------------

// The legacy renderer the trace used before node interning and inline
// details, reproduced verbatim as the reference.
std::string LegacyRender(SimTime time, const std::string& node, TraceEvent event,
                         const Packet& packet, const std::string& detail) {
  std::string out = time.ToString() + " " + node + " " + std::string(TraceEventName(event)) +
                    " " + std::string(IpProtocolName(packet.protocol)) + " " +
                    packet.src().ToString() + "->" + packet.dst().ToString() + " #" +
                    std::to_string(packet.id);
  if (!detail.empty()) {
    out += " (" + detail + ")";
  }
  return out;
}

Packet TestPacket(uint64_t id) {
  Packet p;
  p.id = id;
  p.protocol = IpProtocol::kUdp;
  p.src_ip = Ipv4Address::FromOctets(10, 0, 0, 1);
  p.src_port = 4321;
  p.dst_ip = Ipv4Address::FromOctets(138, 76, 29, 7);
  p.dst_port = 31000;
  p.payload = Bytes{1, 2, 3};
  return p;
}

TEST(TraceDifferentialTest, DumpMatchesLegacyFormat) {
  TraceRecorder trace;
  trace.set_enabled(true);
  const TraceNodeId a = trace.Intern("A-nat");
  const TraceNodeId b = trace.Intern("internet");

  const Packet p1 = TestPacket(7);
  const Packet p2 = TestPacket(8);
  trace.Record(SimTime() + Millis(20), a, TraceEvent::kNatTranslateOut, p1,
               Detail(Endpoint(Ipv4Address::FromOctets(10, 0, 0, 1), 4321), "=>",
                      Endpoint(Ipv4Address::FromOctets(155, 99, 25, 11), 62000)));
  trace.Record(SimTime() + Millis(41), b, TraceEvent::kDropLoss, p2);
  trace.Record(SimTime() + Millis(60), "B-nat", TraceEvent::kNatDropUnsolicited, p2,
               "no mapping");

  const std::string expected =
      LegacyRender(SimTime() + Millis(20), "A-nat", TraceEvent::kNatTranslateOut, p1,
                   "10.0.0.1:4321=>155.99.25.11:62000") +
      "\n" +
      LegacyRender(SimTime() + Millis(41), "internet", TraceEvent::kDropLoss, p2, "") + "\n" +
      LegacyRender(SimTime() + Millis(60), "B-nat", TraceEvent::kNatDropUnsolicited, p2,
                   "no mapping") +
      "\n";
  EXPECT_EQ(trace.Dump(), expected);
}

TEST(TraceDifferentialTest, DetailTruncatesAtCapacityWithSentinel) {
  const std::string longtext(200, 'x');
  TraceDetail d(longtext);
  // Truncation is visible: the detail fills to capacity but ends in a "…"
  // sentinel instead of silently looking like a complete record.
  EXPECT_TRUE(d.truncated());
  EXPECT_EQ(d.view(), std::string(TraceDetail::kCapacity - 3, 'x') + "\xe2\x80\xa6");
  // Appending past capacity is a no-op, not a crash or overflow.
  d.Append(Endpoint(Ipv4Address::FromOctets(1, 2, 3, 4), 9));
  EXPECT_EQ(d.view().size(), TraceDetail::kCapacity);
}

TEST(TraceDifferentialTest, CountByNameMatchesCountById) {
  TraceRecorder trace;
  trace.set_enabled(true);
  const Packet p = TestPacket(1);
  const TraceNodeId id = trace.Intern("N");
  trace.Record(SimTime(), id, TraceEvent::kSend, p);
  trace.Record(SimTime(), id, TraceEvent::kSend, p);
  trace.Record(SimTime(), "M", TraceEvent::kSend, p);
  EXPECT_EQ(trace.Count(TraceEvent::kSend), 3u);
  EXPECT_EQ(trace.Count(TraceEvent::kSend, "N"), 2u);
  EXPECT_EQ(trace.Count(TraceEvent::kSend, id), 2u);
  EXPECT_EQ(trace.Count(TraceEvent::kSend, "M"), 1u);
  EXPECT_EQ(trace.Count(TraceEvent::kSend, "absent"), 0u);
}

}  // namespace
}  // namespace natpunch
