// Property-based / parameterized sweeps over the NAT behavior space and
// random seeds. These encode the paper's claims as invariants:
//
//   * UDP hole punching succeeds IFF both NATs have endpoint-independent
//     ("cone") mapping — filtering and port allocation never matter (§5.1).
//   * TCP hole punching succeeds IFF both NATs are cone — RST/ICMP
//     rejection (§5.2) slows it down but the retry loop recovers.
//   * The whole simulation is deterministic per seed.
//   * TCP delivers byte-identical streams under loss and jitter.

#include <gtest/gtest.h>

#include <tuple>

#include "src/core/tcp_puncher.h"
#include "src/core/udp_puncher.h"
#include "src/rendezvous/server.h"
#include "src/scenario/scenario.h"

namespace natpunch {
namespace {

// ---------------------------------------------------------------------------
// UDP punch matrix: mapping x mapping x filtering x seed
// ---------------------------------------------------------------------------

using UdpMatrixParam = std::tuple<NatMapping, NatMapping, NatFiltering, uint64_t>;

class UdpPunchMatrixTest : public ::testing::TestWithParam<UdpMatrixParam> {};

// The paper's blanket claim "symmetric NATs defeat punching" assumes the
// worst-case (address-and-port-dependent) filtering. With looser filtering
// the adaptive puncher — which answers probes at their *observed* source —
// gets through even symmetric mappings: under AD filtering any port of the
// already-contacted peer NAT passes, and under EI filtering everything
// reaching an existing mapping passes. Hence the invariant:
//   success  <=>  filtering != APD  ||  (both mappings endpoint-independent)
TEST_P(UdpPunchMatrixTest, SuccessMatchesFilteringAwareInvariant) {
  const auto [map_a, map_b, filtering, seed] = GetParam();
  NatConfig nat_a;
  nat_a.mapping = map_a;
  nat_a.filtering = filtering;
  NatConfig nat_b;
  nat_b.mapping = map_b;
  nat_b.filtering = filtering;
  Scenario::Options options;
  options.seed = seed;
  auto topo = MakeFig5(nat_a, nat_b, options);
  RendezvousServer server(topo.server, kServerPort);
  ASSERT_TRUE(server.Start().ok());
  UdpRendezvousClient ca(topo.a, server.endpoint(), 1);
  UdpRendezvousClient cb(topo.b, server.endpoint(), 2);
  ca.Register(4321, [](Result<Endpoint>) {});
  cb.Register(4321, [](Result<Endpoint>) {});
  UdpHolePuncher pa(&ca);
  UdpHolePuncher pb(&cb);
  topo.scenario->net().RunFor(Seconds(2));

  bool success = false;
  pa.ConnectToPeer(2, [&](Result<UdpP2pSession*> r) { success = r.ok(); });
  topo.scenario->net().RunFor(Seconds(15));

  const bool both_cone = map_a == NatMapping::kEndpointIndependent &&
                         map_b == NatMapping::kEndpointIndependent;
  const bool expected =
      filtering != NatFiltering::kAddressAndPortDependent || both_cone;
  EXPECT_EQ(success, expected)
      << "A=" << NatMappingName(map_a) << " B=" << NatMappingName(map_b)
      << " filter=" << NatFilteringName(filtering) << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    BehaviorMatrix, UdpPunchMatrixTest,
    ::testing::Combine(::testing::Values(NatMapping::kEndpointIndependent,
                                         NatMapping::kAddressDependent,
                                         NatMapping::kAddressAndPortDependent),
                       ::testing::Values(NatMapping::kEndpointIndependent,
                                         NatMapping::kAddressAndPortDependent),
                       ::testing::Values(NatFiltering::kEndpointIndependent,
                                         NatFiltering::kAddressDependent,
                                         NatFiltering::kAddressAndPortDependent),
                       ::testing::Values(1u, 77u)));

// ---------------------------------------------------------------------------
// UDP punch is indifferent to port allocation policy (on cone NATs)
// ---------------------------------------------------------------------------

class UdpPortAllocationTest : public ::testing::TestWithParam<NatPortAllocation> {};

TEST_P(UdpPortAllocationTest, ConeNatsPunchUnderAnyAllocator) {
  NatConfig nat;
  nat.port_allocation = GetParam();
  auto topo = MakeFig5(nat, nat);
  RendezvousServer server(topo.server, kServerPort);
  ASSERT_TRUE(server.Start().ok());
  UdpRendezvousClient ca(topo.a, server.endpoint(), 1);
  UdpRendezvousClient cb(topo.b, server.endpoint(), 2);
  ca.Register(4321, [](Result<Endpoint>) {});
  cb.Register(4321, [](Result<Endpoint>) {});
  UdpHolePuncher pa(&ca);
  UdpHolePuncher pb(&cb);
  topo.scenario->net().RunFor(Seconds(2));
  bool success = false;
  pa.ConnectToPeer(2, [&](Result<UdpP2pSession*> r) { success = r.ok(); });
  topo.scenario->net().RunFor(Seconds(15));
  EXPECT_TRUE(success);
}

INSTANTIATE_TEST_SUITE_P(Allocators, UdpPortAllocationTest,
                         ::testing::Values(NatPortAllocation::kSequential,
                                           NatPortAllocation::kRandom,
                                           NatPortAllocation::kPortPreserving));

// ---------------------------------------------------------------------------
// TCP punch matrix: rejection policy x OS accept policy x seed
// ---------------------------------------------------------------------------

using TcpMatrixParam = std::tuple<NatUnsolicitedTcp, TcpAcceptPolicy, TcpAcceptPolicy, uint64_t>;

class TcpPunchMatrixTest : public ::testing::TestWithParam<TcpMatrixParam> {};

TEST_P(TcpPunchMatrixTest, ConeNatsAlwaysPunchEventually) {
  const auto [rejection, policy_a, policy_b, seed] = GetParam();
  NatConfig nat;
  nat.unsolicited_tcp = rejection;
  Scenario::Options options;
  options.seed = seed;
  options.host_config.tcp.accept_policy = policy_a;  // A's site hosts
  auto topo = MakeFig5(nat, nat, options);
  // B with its own policy.
  HostConfig host_b;
  host_b.tcp.accept_policy = policy_b;
  Host* b = topo.scenario->net().Create<Host>("b2", host_b);
  const int iface = b->AttachTo(topo.site_b.lan, Ipv4Address::FromOctets(10, 1, 1, 50));
  b->AddDefaultRoute(iface, topo.site_b.nat->iface_ip(0));

  RendezvousServer server(topo.server, kServerPort);
  ASSERT_TRUE(server.Start().ok());
  TcpRendezvousClient ca(topo.a, server.endpoint(), 1);
  TcpRendezvousClient cb(b, server.endpoint(), 2);
  ca.Connect(4321, [](Result<Endpoint>) {});
  cb.Connect(4321, [](Result<Endpoint>) {});
  TcpHolePuncher pa(&ca);
  TcpHolePuncher pb(&cb);
  pb.SetIncomingStreamCallback([](TcpP2pStream*) {});
  topo.scenario->net().RunFor(Seconds(3));

  bool success = false;
  pa.ConnectToPeer(2, [&](Result<TcpP2pStream*> r) { success = r.ok(); });
  topo.scenario->net().RunFor(Seconds(40));
  EXPECT_TRUE(success) << "rejection=" << NatUnsolicitedTcpName(rejection)
                       << " policies=" << static_cast<int>(policy_a) << ","
                       << static_cast<int>(policy_b) << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    RejectionByPolicy, TcpPunchMatrixTest,
    ::testing::Combine(::testing::Values(NatUnsolicitedTcp::kDrop, NatUnsolicitedTcp::kRst,
                                         NatUnsolicitedTcp::kIcmp),
                       ::testing::Values(TcpAcceptPolicy::kBsd, TcpAcceptPolicy::kLinuxWindows),
                       ::testing::Values(TcpAcceptPolicy::kBsd, TcpAcceptPolicy::kLinuxWindows),
                       ::testing::Values(5u)));

// ---------------------------------------------------------------------------
// Determinism: identical seeds produce identical runs
// ---------------------------------------------------------------------------

class DeterminismTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  struct Fingerprint {
    bool success = false;
    int64_t punch_micros = 0;
    uint64_t events = 0;
    size_t trace_records = 0;
  };

  Fingerprint Run(uint64_t seed) {
    Scenario::Options options;
    options.seed = seed;
    options.internet_loss = 0.15;  // stochastic path decisions included
    auto topo = MakeFig5(NatConfig{}, NatConfig{}, options);
    topo.scenario->net().trace().set_enabled(true);
    RendezvousServer server(topo.server, kServerPort);
    server.Start();
    UdpRendezvousClient ca(topo.a, server.endpoint(), 1);
    UdpRendezvousClient cb(topo.b, server.endpoint(), 2);
    ca.Register(4321, [](Result<Endpoint>) {});
    cb.Register(4321, [](Result<Endpoint>) {});
    UdpHolePuncher pa(&ca);
    UdpHolePuncher pb(&cb);
    topo.scenario->net().RunFor(Seconds(2));
    Fingerprint fp;
    pa.ConnectToPeer(2, [&](Result<UdpP2pSession*> r) {
      fp.success = r.ok();
      if (r.ok()) {
        fp.punch_micros = (*r)->punch_elapsed().micros();
      }
    });
    topo.scenario->net().RunFor(Seconds(10));
    fp.events = topo.scenario->net().event_loop().events_processed();
    fp.trace_records = topo.scenario->net().trace().records().size();
    return fp;
  }
};

TEST_P(DeterminismTest, IdenticalSeedIdenticalRun) {
  const Fingerprint a = Run(GetParam());
  const Fingerprint b = Run(GetParam());
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.punch_micros, b.punch_micros);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.trace_records, b.trace_records);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismTest, ::testing::Values(1u, 2u, 3u, 42u, 1337u));

// ---------------------------------------------------------------------------
// TCP stream integrity under adverse links
// ---------------------------------------------------------------------------

using LinkParam = std::tuple<double /*loss*/, int64_t /*jitter ms*/, uint64_t /*seed*/>;

class TcpIntegrityTest : public ::testing::TestWithParam<LinkParam> {};

TEST_P(TcpIntegrityTest, StreamIsByteIdentical) {
  const auto [loss, jitter_ms, seed] = GetParam();
  Network net(seed);
  Lan* lan = net.CreateLan(
      "link", LanConfig{.latency = Millis(2), .jitter = Millis(jitter_ms), .loss = loss});
  HostConfig config;
  config.tcp.initial_rto = Millis(200);
  Host* a = net.Create<Host>("a", config);
  Host* b = net.Create<Host>("b", config);
  a->AttachTo(lan, Ipv4Address::FromOctets(10, 0, 0, 1));
  b->AttachTo(lan, Ipv4Address::FromOctets(10, 0, 0, 2));

  Bytes sent(40 * 1000);
  Rng data_rng(seed * 7 + 1);
  for (auto& byte : sent) {
    byte = static_cast<uint8_t>(data_rng.NextU64());
  }
  Bytes received;
  TcpSocket* listener = b->tcp().CreateSocket();
  ASSERT_TRUE(listener->Bind(7000).ok());
  listener->Listen([&](TcpSocket* s) {
    s->SetDataCallback(
        [&](const Bytes& d) { received.insert(received.end(), d.begin(), d.end()); });
  });
  TcpSocket* client = a->tcp().CreateSocket();
  client->Connect(Endpoint(b->primary_address(), 7000), [&](Status s) {
    if (s.ok()) {
      client->Send(sent);
    }
  });
  net.RunFor(Seconds(300));
  EXPECT_EQ(received, sent) << "loss=" << loss << " jitter=" << jitter_ms
                            << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    AdverseLinks, TcpIntegrityTest,
    ::testing::Combine(::testing::Values(0.0, 0.05, 0.2),   // loss
                       ::testing::Values(int64_t{0}, int64_t{10}),  // jitter (reordering!)
                       ::testing::Values(3u, 9u)));

// ---------------------------------------------------------------------------
// Keep-alive invariant: survival iff interval < NAT session timeout
// ---------------------------------------------------------------------------

using KeepaliveParam = std::tuple<int64_t /*timeout s*/, int64_t /*keepalive s*/>;

class KeepaliveInvariantTest : public ::testing::TestWithParam<KeepaliveParam> {};

TEST_P(KeepaliveInvariantTest, SurvivalMatchesArithmetic) {
  const auto [timeout_s, keepalive_s] = GetParam();
  NatConfig nat;
  nat.udp_timeout = Seconds(timeout_s);
  auto topo = MakeFig5(nat, nat);
  RendezvousServer server(topo.server, kServerPort);
  ASSERT_TRUE(server.Start().ok());
  UdpRendezvousClient ca(topo.a, server.endpoint(), 1);
  UdpRendezvousClient cb(topo.b, server.endpoint(), 2);
  ca.Register(4321, [](Result<Endpoint>) {});
  cb.Register(4321, [](Result<Endpoint>) {});
  ca.StartKeepAlive(Seconds(5));
  cb.StartKeepAlive(Seconds(5));
  UdpPunchConfig punch_a;
  punch_a.keepalive_interval = Seconds(keepalive_s);
  punch_a.session_expiry = Seconds(3600);
  UdpPunchConfig punch_b = punch_a;
  punch_b.keepalives_enabled = false;  // isolate the A->B chain
  UdpHolePuncher pa(&ca, punch_a);
  UdpHolePuncher pb(&cb, punch_b);
  int b_received = 0;
  pb.SetIncomingSessionCallback([&](UdpP2pSession* s) {
    s->SetReceiveCallback([&](const Bytes&) { ++b_received; });
  });
  topo.scenario->net().RunFor(Seconds(2));
  UdpP2pSession* session = nullptr;
  pa.ConnectToPeer(2, [&](Result<UdpP2pSession*> r) { session = r.ok() ? *r : nullptr; });
  topo.scenario->net().RunFor(Seconds(8));
  ASSERT_NE(session, nullptr);

  topo.scenario->net().RunFor(Seconds(180));
  const int before = b_received;
  session->Send(Bytes{1});
  topo.scenario->net().RunFor(Seconds(3));
  const bool survived = b_received > before;
  EXPECT_EQ(survived, keepalive_s < timeout_s)
      << "timeout=" << timeout_s << " keepalive=" << keepalive_s;
}

INSTANTIATE_TEST_SUITE_P(Grid, KeepaliveInvariantTest,
                         ::testing::Values(KeepaliveParam{30, 10}, KeepaliveParam{30, 45},
                                           KeepaliveParam{60, 45}, KeepaliveParam{60, 100},
                                           KeepaliveParam{20, 15}, KeepaliveParam{20, 25}));

}  // namespace
}  // namespace natpunch
