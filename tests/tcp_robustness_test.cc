// TCP hardening tests beyond the basic suite: reordering via jitter,
// bandwidth-constrained paths, bidirectional bulk streams, interleaved
// connections, tuple reuse after teardown, and the §4.3 doomed-connect
// corner cases.

#include <gtest/gtest.h>

#include <numeric>

#include "src/netsim/network.h"
#include "src/transport/host.h"

namespace natpunch {
namespace {

class TcpRobustnessTest : public ::testing::Test {
 protected:
  Host* MakeHost(const std::string& name, uint8_t last_octet,
                 TcpAcceptPolicy policy = TcpAcceptPolicy::kBsd) {
    HostConfig config;
    config.tcp.accept_policy = policy;
    config.tcp.initial_rto = Millis(200);
    config.tcp.time_wait = Seconds(1);
    Host* h = net_.Create<Host>(name, config);
    h->AttachTo(lan_, Ipv4Address::FromOctets(10, 0, 0, last_octet));
    return h;
  }

  void SetUp() override { lan_ = net_.CreateLan("lan", LanConfig{.latency = Millis(1)}); }

  Endpoint Ep(Host* h, uint16_t port) { return Endpoint(h->primary_address(), port); }

  Bytes RandomBlob(size_t n, uint64_t seed) {
    Bytes blob(n);
    Rng rng(seed);
    for (auto& b : blob) {
      b = static_cast<uint8_t>(rng.NextU64());
    }
    return blob;
  }

  Network net_{1};
  Lan* lan_ = nullptr;
};

TEST_F(TcpRobustnessTest, ReorderingViaJitterReassembles) {
  lan_->set_config(LanConfig{.latency = Millis(1), .jitter = Millis(20)});
  Host* a = MakeHost("a", 1);
  Host* b = MakeHost("b", 2);
  TcpSocket* listener = b->tcp().CreateSocket();
  ASSERT_TRUE(listener->Bind(7000).ok());
  Bytes received;
  listener->Listen([&](TcpSocket* s) {
    s->SetDataCallback(
        [&](const Bytes& d) { received.insert(received.end(), d.begin(), d.end()); });
  });
  const Bytes blob = RandomBlob(60 * 1000, 5);
  TcpSocket* client = a->tcp().CreateSocket();
  client->Connect(Ep(b, 7000), [&](Status s) {
    ASSERT_TRUE(s.ok());
    client->Send(blob);
  });
  net_.RunFor(Seconds(60));
  EXPECT_EQ(received, blob);  // out-of-order segments reassembled exactly
}

TEST_F(TcpRobustnessTest, BandwidthLimitedTransferCompletes) {
  lan_->set_config(LanConfig{.latency = Millis(2), .bandwidth_bps = 2e6});
  Host* a = MakeHost("a", 1);
  Host* b = MakeHost("b", 2);
  TcpSocket* listener = b->tcp().CreateSocket();
  ASSERT_TRUE(listener->Bind(7000).ok());
  size_t received = 0;
  listener->Listen([&](TcpSocket* s) {
    s->SetDataCallback([&](const Bytes& d) { received += d.size(); });
  });
  constexpr size_t kSize = 200 * 1000;
  TcpSocket* client = a->tcp().CreateSocket();
  client->Connect(Ep(b, 7000), [&](Status s) {
    ASSERT_TRUE(s.ok());
    client->Send(Bytes(kSize, 0x7e));
  });
  const SimTime start = net_.now();
  net_.RunFor(Seconds(30));
  EXPECT_EQ(received, kSize);
  // 200 kB over 2 Mbit/s must take at least the serialization time (~0.8 s).
  EXPECT_GT((net_.now() - start).seconds(), 0.5);
}

TEST_F(TcpRobustnessTest, BidirectionalBulkStreams) {
  Host* a = MakeHost("a", 1);
  Host* b = MakeHost("b", 2);
  const Bytes blob_a = RandomBlob(50 * 1000, 11);
  const Bytes blob_b = RandomBlob(70 * 1000, 13);
  Bytes got_at_a;
  Bytes got_at_b;
  TcpSocket* listener = b->tcp().CreateSocket();
  ASSERT_TRUE(listener->Bind(7000).ok());
  listener->Listen([&](TcpSocket* s) {
    s->SetDataCallback(
        [&](const Bytes& d) { got_at_b.insert(got_at_b.end(), d.begin(), d.end()); });
    s->Send(blob_b);
  });
  TcpSocket* client = a->tcp().CreateSocket();
  client->SetDataCallback(
      [&](const Bytes& d) { got_at_a.insert(got_at_a.end(), d.begin(), d.end()); });
  client->Connect(Ep(b, 7000), [&](Status s) {
    ASSERT_TRUE(s.ok());
    client->Send(blob_a);
  });
  net_.RunFor(Seconds(60));
  EXPECT_EQ(got_at_b, blob_a);
  EXPECT_EQ(got_at_a, blob_b);
}

TEST_F(TcpRobustnessTest, ManyConcurrentConnections) {
  Host* a = MakeHost("a", 1);
  Host* b = MakeHost("b", 2);
  TcpSocket* listener = b->tcp().CreateSocket();
  ASSERT_TRUE(listener->Bind(7000).ok());
  int echoes = 0;
  listener->Listen([&](TcpSocket* s) {
    s->SetDataCallback([s](const Bytes& d) { s->Send(d); });
  });
  constexpr int kConns = 50;
  int done = 0;
  for (int i = 0; i < kConns; ++i) {
    TcpSocket* client = a->tcp().CreateSocket();
    client->SetDataCallback([&](const Bytes&) { ++echoes; });
    client->Connect(Ep(b, 7000), [client, i, &done](Status s) {
      ASSERT_TRUE(s.ok());
      client->Send(Bytes{static_cast<uint8_t>(i)});
      ++done;
    });
  }
  net_.RunFor(Seconds(10));
  EXPECT_EQ(done, kConns);
  EXPECT_EQ(echoes, kConns);
}

TEST_F(TcpRobustnessTest, TupleReusableAfterTimeWaitExpires) {
  Host* a = MakeHost("a", 1);
  Host* b = MakeHost("b", 2);
  TcpSocket* listener = b->tcp().CreateSocket();
  ASSERT_TRUE(listener->Bind(7000).ok());
  // Server closes its side on EOF so the active closer reaches TIME_WAIT.
  listener->Listen([](TcpSocket* s) {
    s->SetClosedCallback([s](Status) { s->Close(); });
  });

  TcpSocket* first = a->tcp().CreateSocket();
  first->SetReuseAddr(true);
  ASSERT_TRUE(first->Bind(5000).ok());
  bool connected = false;
  first->Connect(Ep(b, 7000), [&](Status s) { connected = s.ok(); });
  net_.RunFor(Seconds(1));
  ASSERT_TRUE(connected);
  first->Close();
  net_.RunFor(Millis(100));
  EXPECT_EQ(first->state(), TcpState::kTimeWait);

  // While in TIME_WAIT the exact tuple is still occupied.
  TcpSocket* second = a->tcp().CreateSocket();
  second->SetReuseAddr(true);
  ASSERT_TRUE(second->Bind(5000).ok());
  EXPECT_EQ(second->Connect(Ep(b, 7000), [](Status) {}).code(), ErrorCode::kAddressInUse);

  // After 2*MSL it becomes available again.
  net_.RunFor(Seconds(2));
  EXPECT_EQ(first->state(), TcpState::kClosed);
  TcpSocket* third = a->tcp().CreateSocket();
  third->SetReuseAddr(true);
  ASSERT_TRUE(third->Bind(5000).ok());
  bool reconnected = false;
  ASSERT_TRUE(third->Connect(Ep(b, 7000), [&](Status s) { reconnected = s.ok(); }).ok());
  net_.RunFor(Seconds(1));
  EXPECT_TRUE(reconnected);
}

TEST_F(TcpRobustnessTest, HalfCloseStillDeliversData) {
  // A closes its sending side; B can keep streaming to A (CLOSE_WAIT send).
  Host* a = MakeHost("a", 1);
  Host* b = MakeHost("b", 2);
  TcpSocket* listener = b->tcp().CreateSocket();
  ASSERT_TRUE(listener->Bind(7000).ok());
  TcpSocket* accepted = nullptr;
  listener->Listen([&](TcpSocket* s) { accepted = s; });
  TcpSocket* client = a->tcp().CreateSocket();
  Bytes got;
  client->SetDataCallback([&](const Bytes& d) { got.insert(got.end(), d.begin(), d.end()); });
  client->Connect(Ep(b, 7000), [](Status) {});
  net_.RunFor(Millis(200));
  ASSERT_NE(accepted, nullptr);

  client->Close();  // FIN toward B
  net_.RunFor(Millis(100));
  ASSERT_EQ(accepted->state(), TcpState::kCloseWait);
  const Bytes late = RandomBlob(8 * 1000, 17);
  ASSERT_TRUE(accepted->Send(late).ok());
  net_.RunFor(Seconds(2));
  EXPECT_EQ(got, late);
  accepted->Close();
  net_.RunFor(Seconds(3));
  EXPECT_EQ(accepted->state(), TcpState::kClosed);
  EXPECT_EQ(client->state(), TcpState::kClosed);
}

TEST_F(TcpRobustnessTest, DataRetriesExhaustedResetsConnection) {
  Host* a = MakeHost("a", 1);
  Host* b = MakeHost("b", 2);
  TcpSocket* listener = b->tcp().CreateSocket();
  ASSERT_TRUE(listener->Bind(7000).ok());
  TcpSocket* accepted = nullptr;
  listener->Listen([&](TcpSocket* s) { accepted = s; });
  TcpSocket* client = a->tcp().CreateSocket();
  Status closed_status;
  client->SetClosedCallback([&](Status s) { closed_status = s; });
  client->Connect(Ep(b, 7000), [](Status) {});
  net_.RunFor(Millis(200));
  ASSERT_NE(accepted, nullptr);

  // Sever the path, then try to send: retransmissions must give up.
  lan_->set_config(LanConfig{.latency = Millis(1), .loss = 1.0});
  client->Send(Bytes(100, 1));
  net_.RunFor(Seconds(300));
  EXPECT_EQ(closed_status.code(), ErrorCode::kTimedOut);
  EXPECT_EQ(client->state(), TcpState::kClosed);
}

TEST_F(TcpRobustnessTest, ListenerSurvivesChildTeardown) {
  Host* a = MakeHost("a", 1);
  Host* b = MakeHost("b", 2);
  TcpSocket* listener = b->tcp().CreateSocket();
  ASSERT_TRUE(listener->Bind(7000).ok());
  int accepted_count = 0;
  listener->Listen([&](TcpSocket* s) {
    ++accepted_count;
    s->Abort();  // server immediately kills every connection
  });
  for (int i = 0; i < 5; ++i) {
    TcpSocket* client = a->tcp().CreateSocket();
    client->Connect(Ep(b, 7000), [](Status) {});
    net_.RunFor(Millis(300));
  }
  EXPECT_EQ(accepted_count, 5);
  EXPECT_EQ(listener->state(), TcpState::kListen);
}

TEST_F(TcpRobustnessTest, ZeroLengthSendIsHarmless) {
  Host* a = MakeHost("a", 1);
  Host* b = MakeHost("b", 2);
  TcpSocket* listener = b->tcp().CreateSocket();
  ASSERT_TRUE(listener->Bind(7000).ok());
  Bytes got;
  listener->Listen([&](TcpSocket* s) {
    s->SetDataCallback([&](const Bytes& d) { got.insert(got.end(), d.begin(), d.end()); });
  });
  TcpSocket* client = a->tcp().CreateSocket();
  client->Connect(Ep(b, 7000), [&](Status s) {
    ASSERT_TRUE(s.ok());
    client->Send(Bytes{});
    client->Send(Bytes{'x'});
  });
  net_.RunFor(Seconds(1));
  EXPECT_EQ(got, (Bytes{'x'}));
}

}  // namespace
}  // namespace natpunch
