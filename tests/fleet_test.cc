// Determinism regression tests for the fleet runners: the sequential
// RunFleet is the oracle, and RunFleetParallel must reproduce its
// Table1Result bit-for-bit at any thread count. Uses a trimmed vendor list
// so each case stays fast — the full 380-device run lives in bench_table1.

#include <gtest/gtest.h>

#include <vector>

#include "src/fleet/fleet.h"

namespace natpunch {
namespace {

// Small but non-trivial: mixed cone/symmetric mapping, partial TCP and
// hairpin subsets, plus a vendor with no TCP reports at all.
std::vector<VendorProfile> TinyVendors() {
  return {
      // {name, udp_yes/n, udp_hairpin_yes/n, tcp_yes/n, tcp_hairpin_yes/n}
      {"AlphaNet", 4, 5, 1, 4, 3, 4, 1, 4},
      {"BetaGate", 2, 4, 1, 3, 1, 2, 0, 2},
      {"GammaBox", 3, 3, 0, 0, 0, 0, 0, 0},
  };
}

std::vector<DeviceSpec> TinyFleet() { return BuildFleet(TinyVendors(), /*seed=*/77); }

TEST(FleetTest, BuildFleetIsDeterministic) {
  const auto a = BuildFleet(TinyVendors(), 77);
  const auto b = BuildFleet(TinyVendors(), 77);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].vendor, b[i].vendor);
    EXPECT_EQ(a[i].reports_tcp, b[i].reports_tcp);
    EXPECT_EQ(a[i].config.mapping, b[i].config.mapping);
    EXPECT_EQ(a[i].config.filtering, b[i].config.filtering);
    EXPECT_EQ(a[i].config.udp_timeout.micros(), b[i].config.udp_timeout.micros());
  }
}

TEST(FleetTest, SequentialRunsAreIdentical) {
  const auto fleet = TinyFleet();
  const Table1Result first = RunFleet(fleet, /*seed=*/6);
  const Table1Result second = RunFleet(fleet, /*seed=*/6);
  EXPECT_EQ(first, second);
  EXPECT_GT(first.events, 0u);
  // Sanity: every device landed in a row and the totals cover the fleet.
  EXPECT_EQ(first.rows.size(), 3u);
  EXPECT_EQ(first.total.udp_n, 12);
}

TEST(FleetTest, ParallelMatchesSequentialOracle) {
  const auto fleet = TinyFleet();
  const Table1Result oracle = RunFleet(fleet, /*seed=*/6);
  for (const unsigned threads : {1u, 2u, 8u}) {
    const Table1Result parallel = RunFleetParallel(fleet, /*seed=*/6, threads);
    EXPECT_EQ(parallel, oracle) << "thread count " << threads;
  }
}

TEST(FleetTest, ParallelHardwareConcurrencyMatchesOracle) {
  const auto fleet = TinyFleet();
  const Table1Result oracle = RunFleet(fleet, /*seed=*/6);
  EXPECT_EQ(RunFleetParallel(fleet, /*seed=*/6, /*n_threads=*/0), oracle);
}

TEST(FleetTest, ParallelWithMoreThreadsThanDevices) {
  std::vector<VendorProfile> one = {{"Solo", 1, 1, 0, 1, 1, 1, 0, 1}};
  const auto fleet = BuildFleet(one, 3);
  ASSERT_EQ(fleet.size(), 1u);
  EXPECT_EQ(RunFleetParallel(fleet, 6, 8), RunFleet(fleet, 6));
}

TEST(FleetTest, EmptyFleet) {
  const std::vector<DeviceSpec> none;
  const Table1Result seq = RunFleet(none, 6);
  EXPECT_EQ(RunFleetParallel(none, 6, 4), seq);
  EXPECT_EQ(seq.total.udp_n, 0);
  EXPECT_TRUE(seq.rows.empty());
}

}  // namespace
}  // namespace natpunch
