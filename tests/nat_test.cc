// Tests for the NAT substrate: translation-table behavior, port allocation,
// filtering, unsolicited-TCP policy, hairpin, idle expiry, payload
// rewriting, and multi-level forwarding.

#include <gtest/gtest.h>

#include "src/nat/nat_device.h"
#include "src/nat/nat_table.h"
#include "src/scenario/scenario.h"

namespace natpunch {
namespace {

Endpoint MakeEp(uint8_t a, uint8_t b, uint8_t c, uint8_t d, uint16_t port) {
  return Endpoint(Ipv4Address::FromOctets(a, b, c, d), port);
}

// ---------------------------------------------------------------------------
// NatTable unit tests
// ---------------------------------------------------------------------------

TEST(NatTableTest, EndpointIndependentReusesMapping) {
  NatTable table(NatMapping::kEndpointIndependent, NatPortAllocation::kSequential, 62000, Rng(1));
  const Endpoint priv = MakeEp(10, 0, 0, 1, 4321);
  auto* e1 = table.MapOutbound(IpProtocol::kUdp, priv, MakeEp(18, 181, 0, 31, 1234), SimTime());
  auto* e2 = table.MapOutbound(IpProtocol::kUdp, priv, MakeEp(138, 76, 29, 7, 31000), SimTime());
  ASSERT_NE(e1, nullptr);
  EXPECT_EQ(e1, e2);  // §5.1 consistent translation
  EXPECT_EQ(e1->public_port, 62000);
  EXPECT_EQ(table.size(), 1u);
}

TEST(NatTableTest, AddressAndPortDependentAllocatesPerDestination) {
  NatTable table(NatMapping::kAddressAndPortDependent, NatPortAllocation::kSequential, 62000,
                 Rng(1));
  const Endpoint priv = MakeEp(10, 0, 0, 1, 4321);
  auto* e1 = table.MapOutbound(IpProtocol::kUdp, priv, MakeEp(18, 181, 0, 31, 1234), SimTime());
  auto* e2 = table.MapOutbound(IpProtocol::kUdp, priv, MakeEp(18, 181, 0, 31, 1235), SimTime());
  auto* e3 = table.MapOutbound(IpProtocol::kUdp, priv, MakeEp(18, 181, 0, 31, 1234), SimTime());
  EXPECT_NE(e1->public_port, e2->public_port);  // symmetric NAT
  EXPECT_EQ(e1, e3);                            // same destination reuses
  EXPECT_EQ(table.size(), 2u);
}

TEST(NatTableTest, AddressDependentIgnoresRemotePort) {
  NatTable table(NatMapping::kAddressDependent, NatPortAllocation::kSequential, 62000, Rng(1));
  const Endpoint priv = MakeEp(10, 0, 0, 1, 4321);
  auto* e1 = table.MapOutbound(IpProtocol::kUdp, priv, MakeEp(18, 181, 0, 31, 1234), SimTime());
  auto* e2 = table.MapOutbound(IpProtocol::kUdp, priv, MakeEp(18, 181, 0, 31, 9999), SimTime());
  auto* e3 = table.MapOutbound(IpProtocol::kUdp, priv, MakeEp(138, 76, 29, 7, 1234), SimTime());
  EXPECT_EQ(e1, e2);
  EXPECT_NE(e1->public_port, e3->public_port);
}

TEST(NatTableTest, PortPreservationAndFallback) {
  NatTable table(NatMapping::kEndpointIndependent, NatPortAllocation::kPortPreserving, 62000,
                 Rng(1));
  auto* e1 = table.MapOutbound(IpProtocol::kUdp, MakeEp(10, 0, 0, 1, 4321),
                               MakeEp(18, 181, 0, 31, 1234), SimTime());
  EXPECT_EQ(e1->public_port, 4321);  // preserved
  auto* e2 = table.MapOutbound(IpProtocol::kUdp, MakeEp(10, 0, 0, 2, 4321),
                               MakeEp(18, 181, 0, 31, 1234), SimTime());
  EXPECT_NE(e2->public_port, 4321);  // collision falls back
}

TEST(NatTableTest, SequentialAllocationIsPredictable) {
  NatTable table(NatMapping::kAddressAndPortDependent, NatPortAllocation::kSequential, 62000,
                 Rng(1));
  const Endpoint priv = MakeEp(10, 0, 0, 1, 4321);
  for (uint16_t i = 0; i < 5; ++i) {
    auto* e = table.MapOutbound(IpProtocol::kUdp, priv, MakeEp(18, 181, 0, 31, 2000 + i),
                                SimTime());
    EXPECT_EQ(e->public_port, 62000 + i);  // the §5.1 prediction target
  }
}

TEST(NatTableTest, RandomAllocationWithinPool) {
  NatTable table(NatMapping::kAddressAndPortDependent, NatPortAllocation::kRandom, 62000, Rng(7));
  const Endpoint priv = MakeEp(10, 0, 0, 1, 4321);
  std::set<uint16_t> ports;
  for (uint16_t i = 0; i < 50; ++i) {
    auto* e = table.MapOutbound(IpProtocol::kUdp, priv, MakeEp(18, 181, 0, 31, 2000 + i),
                                SimTime());
    EXPECT_GE(e->public_port, 62000);
    ports.insert(e->public_port);
  }
  EXPECT_EQ(ports.size(), 50u);  // all distinct
}

TEST(NatTableTest, SeparatePortSpacesPerProtocol) {
  NatTable table(NatMapping::kEndpointIndependent, NatPortAllocation::kSequential, 62000, Rng(1));
  auto* u = table.MapOutbound(IpProtocol::kUdp, MakeEp(10, 0, 0, 1, 4321),
                              MakeEp(18, 181, 0, 31, 1234), SimTime());
  auto* t = table.MapOutbound(IpProtocol::kTcp, MakeEp(10, 0, 0, 1, 4321),
                              MakeEp(18, 181, 0, 31, 1234), SimTime());
  EXPECT_EQ(u->public_port, 62000);
  EXPECT_EQ(t->public_port, 62000);  // same number, different space
  EXPECT_EQ(table.FindByPublicPort(IpProtocol::kUdp, 62000), u);
  EXPECT_EQ(table.FindByPublicPort(IpProtocol::kTcp, 62000), t);
}

TEST(NatTableTest, FilteringPolicies) {
  NatTable table(NatMapping::kEndpointIndependent, NatPortAllocation::kSequential, 62000, Rng(1));
  auto* e = table.MapOutbound(IpProtocol::kUdp, MakeEp(10, 0, 0, 1, 4321),
                              MakeEp(18, 181, 0, 31, 1234), SimTime());
  const Endpoint same(MakeEp(18, 181, 0, 31, 1234));
  const Endpoint same_ip_other_port(MakeEp(18, 181, 0, 31, 9));
  const Endpoint other(MakeEp(138, 76, 29, 7, 31000));
  const SimTime now;
  const SimDuration timeout = Seconds(120);
  EXPECT_TRUE(e->AllowsInbound(NatFiltering::kEndpointIndependent, other, now, timeout));
  EXPECT_TRUE(e->AllowsInbound(NatFiltering::kAddressDependent, same_ip_other_port, now, timeout));
  EXPECT_FALSE(e->AllowsInbound(NatFiltering::kAddressDependent, other, now, timeout));
  EXPECT_TRUE(e->AllowsInbound(NatFiltering::kAddressAndPortDependent, same, now, timeout));
  EXPECT_FALSE(
      e->AllowsInbound(NatFiltering::kAddressAndPortDependent, same_ip_other_port, now, timeout));
}

TEST(NatTableTest, PerSessionIdleTimers) {
  // §3.6: keep-alives on one session do not keep other sessions of the same
  // mapping alive.
  NatTable table(NatMapping::kEndpointIndependent, NatPortAllocation::kSequential, 62000, Rng(1));
  const Endpoint priv = MakeEp(10, 0, 0, 1, 4321);
  const Endpoint server = MakeEp(18, 181, 0, 31, 1234);
  const Endpoint peer = MakeEp(138, 76, 29, 7, 31000);
  const SimDuration timeout = Seconds(30);
  auto* e = table.MapOutbound(IpProtocol::kUdp, priv, server, SimTime());
  table.MapOutbound(IpProtocol::kUdp, priv, peer, SimTime());
  // Keep the server session fresh; let the peer session idle out.
  table.MapOutbound(IpProtocol::kUdp, priv, server, SimTime() + Seconds(25));
  const SimTime later = SimTime() + Seconds(40);
  EXPECT_TRUE(
      e->AllowsInbound(NatFiltering::kAddressAndPortDependent, server, later, timeout));
  EXPECT_FALSE(e->AllowsInbound(NatFiltering::kAddressAndPortDependent, peer, later, timeout));
  // The mapping itself survives (the server session is fresh).
  NatTable::Timeouts timeouts{timeout, Seconds(3600), Seconds(60)};
  EXPECT_EQ(table.Expire(later, timeouts), 0u);
  EXPECT_EQ(table.size(), 1u);
  // Once every session idles out, the mapping goes too.
  EXPECT_EQ(table.Expire(SimTime() + Seconds(60), timeouts), 1u);
}

TEST(NatTableTest, ExpiryByProtocolClass) {
  NatTable table(NatMapping::kEndpointIndependent, NatPortAllocation::kSequential, 62000, Rng(1));
  NatTable::Timeouts timeouts{Seconds(30), Seconds(3600), Seconds(60)};
  table.MapOutbound(IpProtocol::kUdp, MakeEp(10, 0, 0, 1, 1), MakeEp(18, 0, 0, 1, 1), SimTime());
  auto* tcp = table.MapOutbound(IpProtocol::kTcp, MakeEp(10, 0, 0, 1, 2), MakeEp(18, 0, 0, 1, 1),
                                SimTime());
  tcp->tcp_established = true;
  EXPECT_EQ(table.Expire(SimTime() + Seconds(29), timeouts), 0u);
  EXPECT_EQ(table.Expire(SimTime() + Seconds(31), timeouts), 1u);  // UDP gone
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.Expire(SimTime() + Seconds(3601), timeouts), 1u);  // TCP gone
}

TEST(NatTableTest, RefreshPreventsExpiry) {
  NatTable table(NatMapping::kEndpointIndependent, NatPortAllocation::kSequential, 62000, Rng(1));
  NatTable::Timeouts timeouts{Seconds(30), Seconds(3600), Seconds(60)};
  const Endpoint priv = MakeEp(10, 0, 0, 1, 1);
  const Endpoint remote = MakeEp(18, 0, 0, 1, 1);
  table.MapOutbound(IpProtocol::kUdp, priv, remote, SimTime());
  table.MapOutbound(IpProtocol::kUdp, priv, remote, SimTime() + Seconds(20));  // refresh
  EXPECT_EQ(table.Expire(SimTime() + Seconds(35), timeouts), 0u);
  EXPECT_EQ(table.Expire(SimTime() + Seconds(51), timeouts), 1u);
}

TEST(NatTableTest, TcpTimeoutClassesFollowConnectionState) {
  // §4: "the TCP protocol's state machine gives NATs on the path a standard
  // way to determine the precise lifetime of a particular TCP session."
  // Half-open (transitory) mappings expire fast; established ones live
  // long; FIN/RST demotes back to transitory.
  NatTable table(NatMapping::kEndpointIndependent, NatPortAllocation::kSequential, 62000, Rng(1));
  NatTable::Timeouts timeouts{Seconds(120), Seconds(3600), Seconds(60)};
  const Endpoint priv = MakeEp(10, 0, 0, 1, 4321);
  const Endpoint remote = MakeEp(18, 181, 0, 31, 1234);

  // Half-open: SYN sent, nothing back.
  auto* entry = table.MapOutbound(IpProtocol::kTcp, priv, remote, SimTime());
  EXPECT_EQ(table.Expire(SimTime() + Seconds(61), timeouts), 1u);

  // Established: survives far past the transitory window.
  entry = table.MapOutbound(IpProtocol::kTcp, priv, remote, SimTime() + Seconds(61));
  entry->tcp_inbound_seen = true;
  entry->tcp_established = true;
  EXPECT_EQ(table.Expire(SimTime() + Seconds(200), timeouts), 0u);

  // Closing: FIN observed -> transitory clock again.
  entry->tcp_closing = true;
  EXPECT_EQ(table.Expire(SimTime() + Seconds(200), timeouts), 1u);
}

TEST(NatTableTest, ContentionDemotionIsStickyPerFlow) {
  // §6.3 switching NAT: once two inside hosts share a port, new flows get
  // per-destination mappings; the pre-contention mapping keeps its port
  // for its own flow but lookups route by the demoted key.
  NatTable table(NatMapping::kEndpointIndependent, NatPortAllocation::kSequential, 62000, Rng(1),
                 /*symmetric_on_contention=*/true);
  const Endpoint host1 = MakeEp(10, 0, 0, 2, 4321);
  const Endpoint host2 = MakeEp(10, 0, 0, 3, 4321);
  const Endpoint s1 = MakeEp(18, 181, 0, 31, 1234);
  const Endpoint s2 = MakeEp(18, 181, 0, 32, 1234);

  auto* before = table.MapOutbound(IpProtocol::kUdp, host1, s1, SimTime());
  auto* same = table.MapOutbound(IpProtocol::kUdp, host1, s2, SimTime());
  EXPECT_EQ(before, same);  // endpoint-independent while uncontended

  table.MapOutbound(IpProtocol::kUdp, host2, s1, SimTime());  // contention begins
  auto* after1 = table.MapOutbound(IpProtocol::kUdp, host1, s1, SimTime());
  auto* after2 = table.MapOutbound(IpProtocol::kUdp, host1, s2, SimTime());
  EXPECT_NE(after1, after2);  // now per-destination (symmetric)
  EXPECT_NE(after1->public_port, after2->public_port);
}

// ---------------------------------------------------------------------------
// NatDevice integration tests (Fig. 5 topology)
// ---------------------------------------------------------------------------

class NatDeviceTest : public ::testing::Test {
 protected:
  // A tiny STUN-ish responder: records the observed source and echoes it.
  UdpSocket* StartObserver(Host* server, uint16_t port) {
    auto sock = server->udp().Bind(port);
    EXPECT_TRUE(sock.ok());
    (*sock)->SetReceiveCallback([this, s = *sock](const Endpoint& from, const Payload&) {
      observed_ = from;
      s->SendTo(from, Bytes{'a', 'c', 'k'});
    });
    return *sock;
  }

  Endpoint observed_;
};

TEST_F(NatDeviceTest, OutboundTranslationUsesPaperPorts) {
  auto topo = MakeFig5(NatConfig{}, NatConfig{});
  StartObserver(topo.server, kServerPort);
  auto sock = topo.a->udp().Bind(4321);
  ASSERT_TRUE(sock.ok());
  Bytes reply;
  (*sock)->SetReceiveCallback([&](const Endpoint&, const Payload& p) { reply = p.ToBytes(); });
  (*sock)->SendTo(Endpoint(ServerIp(), kServerPort), Bytes{'h', 'i'});
  topo.scenario->net().RunFor(Seconds(1));

  // Server saw A's public endpoint 155.99.25.11:62000 (paper Fig. 5).
  EXPECT_EQ(observed_, Endpoint(NatAIp(), 62000));
  // The reply traversed back in.
  EXPECT_EQ(reply, (Bytes{'a', 'c', 'k'}));
  EXPECT_EQ(topo.site_a.nat->stats().translated_out, 1u);
  EXPECT_EQ(topo.site_a.nat->stats().translated_in, 1u);
}

TEST_F(NatDeviceTest, ConsistentTranslationForConeNat) {
  auto topo = MakeFig5(NatConfig{}, NatConfig{});
  StartObserver(topo.server, kServerPort);
  auto sock = topo.a->udp().Bind(4321);
  (*sock)->SendTo(Endpoint(ServerIp(), kServerPort), Bytes{1});
  topo.scenario->net().RunFor(Seconds(1));
  const Endpoint first = observed_;
  // A second session from the same private endpoint to a different
  // destination must reuse the same public endpoint.
  StartObserver(topo.server, 5678);
  (*sock)->SendTo(Endpoint(ServerIp(), 5678), Bytes{2});
  topo.scenario->net().RunFor(Seconds(1));
  EXPECT_EQ(observed_, first);
}

TEST_F(NatDeviceTest, SymmetricNatShiftsPort) {
  NatConfig symmetric;
  symmetric.mapping = NatMapping::kAddressAndPortDependent;
  auto topo = MakeFig5(symmetric, NatConfig{});
  StartObserver(topo.server, kServerPort);
  auto sock = topo.a->udp().Bind(4321);
  (*sock)->SendTo(Endpoint(ServerIp(), kServerPort), Bytes{1});
  topo.scenario->net().RunFor(Seconds(1));
  const Endpoint first = observed_;
  StartObserver(topo.server, 5678);
  (*sock)->SendTo(Endpoint(ServerIp(), 5678), Bytes{2});
  topo.scenario->net().RunFor(Seconds(1));
  EXPECT_NE(observed_.port, first.port);  // §5.1 failure mode
  EXPECT_EQ(observed_.ip, first.ip);
}

TEST_F(NatDeviceTest, UnsolicitedUdpFiltered) {
  auto topo = MakeFig5(NatConfig{}, NatConfig{});
  topo.scenario->net().trace().set_enabled(true);
  StartObserver(topo.server, kServerPort);
  auto sock = topo.a->udp().Bind(4321);
  bool stray_received = false;
  (*sock)->SetReceiveCallback([&](const Endpoint&, const Payload&) { stray_received = true; });
  (*sock)->SendTo(Endpoint(ServerIp(), kServerPort), Bytes{1});
  topo.scenario->net().RunFor(Seconds(1));
  stray_received = false;

  // A third party (B) fires at A's known public endpoint without A ever
  // sending to B: address-and-port-dependent filtering must drop it.
  auto sock_b = topo.b->udp().Bind(4321);
  (*sock_b)->SendTo(Endpoint(NatAIp(), 62000), Bytes{9});
  topo.scenario->net().RunFor(Seconds(1));
  EXPECT_FALSE(stray_received);
  EXPECT_GE(topo.site_a.nat->stats().dropped_unsolicited, 1u);
}

TEST_F(NatDeviceTest, FullConePassesUnsolicited) {
  NatConfig full_cone;
  full_cone.filtering = NatFiltering::kEndpointIndependent;
  auto topo = MakeFig5(full_cone, NatConfig{});
  StartObserver(topo.server, kServerPort);
  auto sock = topo.a->udp().Bind(4321);
  bool received = false;
  (*sock)->SetReceiveCallback([&](const Endpoint&, const Payload&) { received = true; });
  (*sock)->SendTo(Endpoint(ServerIp(), kServerPort), Bytes{1});
  topo.scenario->net().RunFor(Seconds(1));
  received = false;

  auto sock_b = topo.b->udp().Bind(4321);
  (*sock_b)->SendTo(Endpoint(NatAIp(), 62000), Bytes{9});
  topo.scenario->net().RunFor(Seconds(1));
  EXPECT_TRUE(received);
}

TEST_F(NatDeviceTest, PunchOpensFilterBothWays) {
  // The essence of §3.4: after both sides send, both NATs pass traffic.
  auto topo = MakeFig5(NatConfig{}, NatConfig{});
  StartObserver(topo.server, kServerPort);
  auto sa = topo.a->udp().Bind(4321);
  auto sb = topo.b->udp().Bind(4321);
  int a_got = 0;
  int b_got = 0;
  (*sa)->SetReceiveCallback([&](const Endpoint&, const Payload&) { ++a_got; });
  (*sb)->SetReceiveCallback([&](const Endpoint&, const Payload&) { ++b_got; });
  // Register with S so mappings exist (62000 and 31000... here both 62000
  // since each NAT has its own sequential space).
  (*sa)->SendTo(Endpoint(ServerIp(), kServerPort), Bytes{1});
  (*sb)->SendTo(Endpoint(ServerIp(), kServerPort), Bytes{1});
  topo.scenario->net().RunFor(Seconds(1));
  a_got = b_got = 0;

  const Endpoint a_pub(NatAIp(), 62000);
  const Endpoint b_pub(NatBIp(), 62000);
  // A punches toward B (opens A's filter for B); B's NAT drops it.
  (*sa)->SendTo(b_pub, Bytes{2});
  topo.scenario->net().RunFor(Seconds(1));
  EXPECT_EQ(b_got, 0);
  // B now sends toward A: passes A's NAT (filter open).
  (*sb)->SendTo(a_pub, Bytes{3});
  topo.scenario->net().RunFor(Seconds(1));
  EXPECT_EQ(a_got, 1);
  // And A's next packet passes B's NAT too.
  (*sa)->SendTo(b_pub, Bytes{4});
  topo.scenario->net().RunFor(Seconds(1));
  EXPECT_EQ(b_got, 1);
}

TEST_F(NatDeviceTest, UnsolicitedTcpPolicies) {
  for (auto policy : {NatUnsolicitedTcp::kDrop, NatUnsolicitedTcp::kRst,
                      NatUnsolicitedTcp::kIcmp}) {
    NatConfig config;
    config.unsolicited_tcp = policy;
    auto topo = MakeFig5(config, NatConfig{});
    TcpSocket* client = topo.server->tcp().CreateSocket();
    Status result(ErrorCode::kInProgress);
    client->Connect(Endpoint(NatAIp(), 62000), [&](Status s) { result = s; });
    topo.scenario->net().RunFor(Seconds(60));
    switch (policy) {
      case NatUnsolicitedTcp::kDrop:
        EXPECT_EQ(result.code(), ErrorCode::kTimedOut);
        EXPECT_GE(topo.site_a.nat->stats().dropped_unsolicited, 1u);
        break;
      case NatUnsolicitedTcp::kRst:
        EXPECT_EQ(result.code(), ErrorCode::kConnectionRefused);
        EXPECT_GE(topo.site_a.nat->stats().rst_rejections, 1u);
        break;
      case NatUnsolicitedTcp::kIcmp:
        EXPECT_EQ(result.code(), ErrorCode::kHostUnreachable);
        EXPECT_GE(topo.site_a.nat->stats().icmp_rejections, 1u);
        break;
    }
  }
}

TEST_F(NatDeviceTest, HairpinDisabledDropsLoopback) {
  auto topo = MakeFig4(NatConfig{});  // hairpin off by default
  StartObserver(topo.server, kServerPort);
  auto sa = topo.a->udp().Bind(4321);
  auto sb = topo.b->udp().Bind(4321);
  bool a_received = false;
  (*sa)->SetReceiveCallback([&](const Endpoint&, const Payload&) { a_received = true; });
  (*sa)->SendTo(Endpoint(ServerIp(), kServerPort), Bytes{1});
  topo.scenario->net().RunFor(Seconds(1));
  const Endpoint a_pub = observed_;
  a_received = false;
  (*sb)->SendTo(a_pub, Bytes{2});
  topo.scenario->net().RunFor(Seconds(1));
  EXPECT_FALSE(a_received);
}

TEST_F(NatDeviceTest, HairpinTranslatesBothAddresses) {
  NatConfig config;
  config.hairpin_udp = true;
  config.filtering = NatFiltering::kEndpointIndependent;
  auto topo = MakeFig4(config);
  StartObserver(topo.server, kServerPort);
  auto sa = topo.a->udp().Bind(4321);
  auto sb = topo.b->udp().Bind(4321);
  Endpoint a_saw_from;
  bool a_received = false;
  (*sa)->SetReceiveCallback([&](const Endpoint& from, const Payload&) {
    a_saw_from = from;
    a_received = true;
  });
  (*sa)->SendTo(Endpoint(ServerIp(), kServerPort), Bytes{1});
  topo.scenario->net().RunFor(Seconds(1));
  const Endpoint a_pub = observed_;

  (*sb)->SendTo(a_pub, Bytes{2});
  topo.scenario->net().RunFor(Seconds(1));
  ASSERT_TRUE(a_received);
  // §3.5 well-behaved hairpin: A sees B's *public* endpoint as the source.
  EXPECT_EQ(a_saw_from.ip, topo.site.nat->public_ip());
  EXPECT_GE(topo.site.nat->stats().hairpinned, 1u);
}

TEST_F(NatDeviceTest, PayloadRewriteAndObfuscationDefense) {
  NatConfig bad;
  bad.rewrite_payload_addresses = true;
  auto topo = MakeFig5(bad, NatConfig{});
  auto server_sock = topo.server->udp().Bind(kServerPort);
  Bytes seen;
  (*server_sock)->SetReceiveCallback(
      [&](const Endpoint&, const Payload& p) { seen = p.ToBytes(); });

  auto sock = topo.a->udp().Bind(4321);
  const Ipv4Address priv = topo.a->primary_address();
  // Plain encoding: the NAT finds and rewrites the private address bytes.
  Bytes payload = {0xff, static_cast<uint8_t>(priv.bits() >> 24),
                   static_cast<uint8_t>(priv.bits() >> 16),
                   static_cast<uint8_t>(priv.bits() >> 8),
                   static_cast<uint8_t>(priv.bits()), 0xff};
  (*sock)->SendTo(Endpoint(ServerIp(), kServerPort), payload);
  topo.scenario->net().RunFor(Seconds(1));
  ASSERT_EQ(seen.size(), payload.size());
  const uint32_t seen_addr = static_cast<uint32_t>(seen[1]) << 24 |
                             static_cast<uint32_t>(seen[2]) << 16 |
                             static_cast<uint32_t>(seen[3]) << 8 | seen[4];
  EXPECT_EQ(Ipv4Address(seen_addr), NatAIp());  // rewritten!
  EXPECT_GE(topo.site_a.nat->stats().payload_rewrites, 1u);

  // Obfuscated (one's complement) encoding survives untouched (§3.1).
  const Ipv4Address obf = priv.Complement();
  Bytes obf_payload = {0xff, static_cast<uint8_t>(obf.bits() >> 24),
                       static_cast<uint8_t>(obf.bits() >> 16),
                       static_cast<uint8_t>(obf.bits() >> 8),
                       static_cast<uint8_t>(obf.bits()), 0xff};
  (*sock)->SendTo(Endpoint(ServerIp(), kServerPort), obf_payload);
  topo.scenario->net().RunFor(Seconds(1));
  ASSERT_EQ(seen.size(), obf_payload.size());
  EXPECT_TRUE(std::equal(seen.begin() + 1, seen.begin() + 5, obf_payload.begin() + 1));
}

TEST_F(NatDeviceTest, IdleMappingExpiresAndTrafficRefreshes) {
  NatConfig config;
  config.udp_timeout = Seconds(20);  // the paper's worst-case short timer
  auto topo = MakeFig5(config, NatConfig{});
  StartObserver(topo.server, kServerPort);
  auto sock = topo.a->udp().Bind(4321);
  int replies = 0;
  (*sock)->SetReceiveCallback([&](const Endpoint&, const Payload&) { ++replies; });
  (*sock)->SendTo(Endpoint(ServerIp(), kServerPort), Bytes{1});
  topo.scenario->net().RunFor(Seconds(1));
  EXPECT_EQ(topo.site_a.nat->active_mapping_count(), 1u);

  // Refresh at t=15s keeps it alive through t=30s.
  topo.scenario->net().RunFor(Seconds(14));
  (*sock)->SendTo(Endpoint(ServerIp(), kServerPort), Bytes{2});
  topo.scenario->net().RunFor(Seconds(10));
  EXPECT_EQ(topo.site_a.nat->active_mapping_count(), 1u);

  // Then 25s of silence kills it.
  topo.scenario->net().RunFor(Seconds(25));
  EXPECT_EQ(topo.site_a.nat->active_mapping_count(), 0u);
  EXPECT_GE(topo.site_a.nat->stats().expired_mappings, 1u);
}

TEST_F(NatDeviceTest, MultiLevelOutboundAndBack) {
  // Fig. 6: traffic from A crosses NAT A then NAT C; replies return.
  auto topo = MakeFig6(NatConfig{}, NatConfig{}, NatConfig{});
  StartObserver(topo.server, kServerPort);
  auto sock = topo.a->udp().Bind(4321);
  Bytes reply;
  (*sock)->SetReceiveCallback([&](const Endpoint&, const Payload& p) { reply = p.ToBytes(); });
  (*sock)->SendTo(Endpoint(ServerIp(), kServerPort), Bytes{1});
  topo.scenario->net().RunFor(Seconds(2));
  // S sees NAT C's public address, not NAT A's ISP-realm address.
  EXPECT_EQ(observed_.ip, NatAIp());
  EXPECT_EQ(reply, (Bytes{'a', 'c', 'k'}));
}

TEST_F(NatDeviceTest, StrayHostWithSamePrivateAddress) {
  // §3.4: A's probe to B's *private* endpoint can reach an unrelated host
  // on A's own network that happens to own the same address.
  auto topo = MakeFig5(NatConfig{}, NatConfig{});
  // B is 10.1.1.3. Give A's site a host with the same last octets? A's
  // site is 10.0.0.0/24 so the address differs; instead place the stray on
  // a Fig. 4-style shared prefix: build a site with B-like numbering.
  auto topo2 = MakeFig4(NatConfig{});
  Host* stray = topo2.a;        // 10.0.0.2
  Host* target_like = topo2.b;  // 10.0.0.3 plays "B's private address"
  auto stray_sock = stray->udp().Bind(4321);
  auto s2 = target_like->udp().Bind(4321);
  Endpoint from;
  Bytes got;
  (*s2)->SetReceiveCallback([&](const Endpoint& f, const Payload& p) {
    from = f;
    got = p.ToBytes();
  });
  // stray sends to 10.0.0.3:4321 — same-LAN delivery, no NAT involved.
  (*stray_sock)->SendTo(Endpoint(target_like->primary_address(), 4321), Bytes{'x'});
  topo2.scenario->net().RunFor(Seconds(1));
  EXPECT_EQ(got, (Bytes{'x'}));  // delivered to the *wrong* host: apps must
                                 // authenticate (the punchers' nonce does)
  (void)topo;
}

}  // namespace
}  // namespace natpunch
