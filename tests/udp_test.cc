// Tests for the UDP socket layer: bind rules, datagram delivery, ICMP port
// unreachable errors, close semantics.

#include <gtest/gtest.h>

#include "src/netsim/network.h"
#include "src/transport/host.h"

namespace natpunch {
namespace {

class UdpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lan_ = net_.CreateLan("lan", LanConfig{.latency = Millis(1)});
    a_ = net_.Create<Host>("a");
    b_ = net_.Create<Host>("b");
    a_->AttachTo(lan_, Ipv4Address::FromOctets(10, 0, 0, 1));
    b_->AttachTo(lan_, Ipv4Address::FromOctets(10, 0, 0, 2));
  }

  Endpoint EndpointOf(Host* h, uint16_t port) { return Endpoint(h->primary_address(), port); }

  Network net_{1};
  Lan* lan_ = nullptr;
  Host* a_ = nullptr;
  Host* b_ = nullptr;
};

TEST_F(UdpTest, BindSpecificPort) {
  auto sock = a_->udp().Bind(5000);
  ASSERT_TRUE(sock.ok());
  EXPECT_EQ((*sock)->local_port(), 5000);
}

TEST_F(UdpTest, BindConflictFails) {
  ASSERT_TRUE(a_->udp().Bind(5000).ok());
  auto second = a_->udp().Bind(5000);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.code(), ErrorCode::kAddressInUse);
}

TEST_F(UdpTest, EphemeralPortsAreDistinct) {
  auto s1 = a_->udp().Bind(0);
  auto s2 = a_->udp().Bind(0);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_NE((*s1)->local_port(), (*s2)->local_port());
  EXPECT_GE((*s1)->local_port(), 49152);
}

TEST_F(UdpTest, SendAndReceive) {
  auto sa = a_->udp().Bind(4321);
  auto sb = b_->udp().Bind(4321);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());

  Endpoint got_from;
  Bytes got_payload;
  (*sb)->SetReceiveCallback([&](const Endpoint& from, const Payload& payload) {
    got_from = from;
    got_payload = payload.ToBytes();
  });
  ASSERT_TRUE((*sa)->SendTo(EndpointOf(b_, 4321), Bytes{1, 2, 3}).ok());
  net_.RunUntilIdle();
  EXPECT_EQ(got_payload, (Bytes{1, 2, 3}));
  EXPECT_EQ(got_from, EndpointOf(a_, 4321));
}

TEST_F(UdpTest, OneSocketTalksToManyPeers) {
  // The property UDP hole punching relies on (§4.2): a single socket
  // reaches any number of remote endpoints.
  auto sa = a_->udp().Bind(4321);
  auto sb1 = b_->udp().Bind(1111);
  auto sb2 = b_->udp().Bind(2222);
  int received = 0;
  (*sb1)->SetReceiveCallback([&](const Endpoint&, const Payload&) { ++received; });
  (*sb2)->SetReceiveCallback([&](const Endpoint&, const Payload&) { ++received; });
  (*sa)->SendTo(EndpointOf(b_, 1111), Bytes{1});
  (*sa)->SendTo(EndpointOf(b_, 2222), Bytes{2});
  net_.RunUntilIdle();
  EXPECT_EQ(received, 2);
}

TEST_F(UdpTest, ClosedPortElicitsIcmpError) {
  auto sa = a_->udp().Bind(4321);
  ErrorCode got_code = ErrorCode::kOk;
  Endpoint got_dst;
  (*sa)->SetErrorCallback([&](const Endpoint& dst, ErrorCode code) {
    got_dst = dst;
    got_code = code;
  });
  (*sa)->SendTo(EndpointOf(b_, 7777), Bytes{1});  // nothing bound on b:7777
  net_.RunUntilIdle();
  EXPECT_EQ(got_code, ErrorCode::kConnectionRefused);
  EXPECT_EQ(got_dst, EndpointOf(b_, 7777));
}

TEST_F(UdpTest, IcmpSuppressedWhenConfigured) {
  HostConfig quiet;
  quiet.icmp_on_closed_udp_port = false;
  Host* c = net_.Create<Host>("c", quiet);
  c->AttachTo(lan_, Ipv4Address::FromOctets(10, 0, 0, 3));
  auto sa = a_->udp().Bind(4321);
  bool got_error = false;
  (*sa)->SetErrorCallback([&](const Endpoint&, ErrorCode) { got_error = true; });
  (*sa)->SendTo(Endpoint(c->primary_address(), 7777), Bytes{1});
  net_.RunUntilIdle();
  EXPECT_FALSE(got_error);
}

TEST_F(UdpTest, CloseStopsDeliveryAndFreesPort) {
  auto sa = a_->udp().Bind(4321);
  auto sb = b_->udp().Bind(4321);
  bool received = false;
  (*sb)->SetReceiveCallback([&](const Endpoint&, const Payload&) { received = true; });
  (*sb)->Close();
  (*sa)->SendTo(EndpointOf(b_, 4321), Bytes{1});
  net_.RunUntilIdle();
  EXPECT_FALSE(received);
  // Port is reusable after the reclaim tick.
  EXPECT_TRUE(b_->udp().Bind(4321).ok());
}

TEST_F(UdpTest, SendAfterCloseFails) {
  auto sa = a_->udp().Bind(4321);
  (*sa)->Close();
  EXPECT_EQ((*sa)->SendTo(EndpointOf(b_, 1), Bytes{1}).code(), ErrorCode::kClosed);
}

TEST_F(UdpTest, SendToUnspecifiedFails) {
  auto sa = a_->udp().Bind(4321);
  EXPECT_EQ((*sa)->SendTo(Endpoint(), Bytes{1}).code(), ErrorCode::kInvalidArgument);
}

TEST_F(UdpTest, HostsDoNotForward) {
  // A packet addressed to a third party delivered to b must be dropped.
  net_.trace().set_enabled(true);
  auto sa = a_->udp().Bind(4321);
  auto sb = b_->udp().Bind(9999);
  bool received = false;
  (*sb)->SetReceiveCallback([&](const Endpoint&, const Payload&) { received = true; });
  // Craft a packet to a bogus address whose next hop resolves to b via a
  // host route.
  a_->AddRoute(Ipv4Prefix(Ipv4Address::FromOctets(99, 9, 9, 9), 32), 0,
               b_->primary_address());
  Packet p;
  p.protocol = IpProtocol::kUdp;
  p.src_port = 4321;
  p.set_dst(Endpoint(Ipv4Address::FromOctets(99, 9, 9, 9), 9999));
  a_->SendFromTransport(std::move(p));
  net_.RunUntilIdle();
  EXPECT_FALSE(received);
  (void)sa;
}

}  // namespace
}  // namespace natpunch
