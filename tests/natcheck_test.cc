// Tests for the NAT Check reproduction (§6.1) and the simulated fleet:
// the instrument must classify every canonical NAT archetype correctly,
// reproduce the §6.3 hairpin-test pessimism, and the fleet construction
// must hit every Table 1 quota exactly.

#include <gtest/gtest.h>

#include "src/fleet/fleet.h"
#include "src/natcheck/client.h"
#include "src/natcheck/servers.h"
#include "src/scenario/scenario.h"

namespace natpunch {
namespace {

class NatCheckTest : public ::testing::Test {
 protected:
  NatCheckReport Check(const NatConfig& nat, NatCheckClientConfig client_config = {},
                       bool natted = true) {
    Scenario scenario{Scenario::Options{}};
    Host* s1 = scenario.AddPublicHost("S1", Ipv4Address::FromOctets(18, 181, 0, 31));
    Host* s2 = scenario.AddPublicHost("S2", Ipv4Address::FromOctets(18, 181, 0, 32));
    Host* s3 = scenario.AddPublicHost("S3", Ipv4Address::FromOctets(18, 181, 0, 33));
    Host* client_host = nullptr;
    NattedSite site;
    if (natted) {
      site = scenario.AddNattedSite("dev", nat, Ipv4Address::FromOctets(155, 99, 25, 11),
                                    Ipv4Prefix(Ipv4Address::FromOctets(10, 0, 0, 0), 24), 1);
      client_host = site.host(0);
    } else {
      client_host = scenario.AddPublicHost("pub", Ipv4Address::FromOctets(99, 1, 1, 1));
    }
    NatCheckServers servers(s1, s2, s3);
    EXPECT_TRUE(servers.Start().ok());
    NatCheckServerAddrs addrs{servers.udp_endpoint(1), servers.udp_endpoint(2),
                              servers.tcp_endpoint(1), servers.tcp_endpoint(2),
                              servers.tcp_endpoint(3)};
    NatCheckClient client(client_host, addrs, client_config);
    NatCheckReport report;
    bool done = false;
    client.Run(4321, [&](Result<NatCheckReport> r) {
      done = true;
      if (r.ok()) {
        report = *r;
      }
    });
    scenario.net().RunFor(Seconds(90));
    EXPECT_TRUE(done);
    return report;
  }
};

TEST_F(NatCheckTest, PortRestrictedConeIsFullyCompatible) {
  NatCheckReport report = Check(NatConfig{});
  EXPECT_TRUE(report.udp_reachable);
  EXPECT_TRUE(report.udp_consistent);
  EXPECT_TRUE(report.udp_filters_unsolicited);
  EXPECT_TRUE(report.tcp_reachable);
  EXPECT_TRUE(report.tcp_consistent);
  EXPECT_FALSE(report.tcp_unsolicited_passed);
  EXPECT_FALSE(report.tcp_rejects_unsolicited);
  EXPECT_TRUE(report.tcp_punch_connect_ok);  // simultaneous open with s3
  EXPECT_TRUE(report.UdpHolePunchCompatible());
  EXPECT_TRUE(report.TcpHolePunchCompatible());
  EXPECT_FALSE(report.udp_hairpin);
  EXPECT_FALSE(report.tcp_hairpin);
}

TEST_F(NatCheckTest, FullConePassesUnsolicitedBothProtocols) {
  NatConfig full;
  full.filtering = NatFiltering::kEndpointIndependent;
  NatCheckReport report = Check(full);
  EXPECT_FALSE(report.udp_filters_unsolicited);
  EXPECT_TRUE(report.tcp_unsolicited_passed);
  EXPECT_TRUE(report.UdpHolePunchCompatible());
  EXPECT_TRUE(report.TcpHolePunchCompatible());
}

TEST_F(NatCheckTest, SymmetricNatIsIncompatible) {
  NatConfig symmetric;
  symmetric.mapping = NatMapping::kAddressAndPortDependent;
  NatCheckReport report = Check(symmetric);
  EXPECT_TRUE(report.udp_reachable);
  EXPECT_FALSE(report.udp_consistent);
  EXPECT_FALSE(report.tcp_consistent);
  EXPECT_FALSE(report.UdpHolePunchCompatible());
  EXPECT_FALSE(report.TcpHolePunchCompatible());
}

TEST_F(NatCheckTest, RstingNatFlaggedTcpIncompatible) {
  NatConfig rsting;
  rsting.unsolicited_tcp = NatUnsolicitedTcp::kRst;
  NatCheckReport report = Check(rsting);
  EXPECT_TRUE(report.UdpHolePunchCompatible());  // UDP unaffected (§5.2)
  EXPECT_TRUE(report.tcp_consistent);
  EXPECT_TRUE(report.tcp_rejects_unsolicited);
  EXPECT_FALSE(report.TcpHolePunchCompatible());
}

TEST_F(NatCheckTest, IcmpRejectingNatAlsoIncompatible) {
  NatConfig icmp;
  icmp.unsolicited_tcp = NatUnsolicitedTcp::kIcmp;
  NatCheckReport report = Check(icmp);
  EXPECT_TRUE(report.tcp_rejects_unsolicited);
  EXPECT_FALSE(report.TcpHolePunchCompatible());
}

TEST_F(NatCheckTest, HairpinDetectedWhenSupported) {
  NatConfig hairpin;
  hairpin.hairpin_udp = true;
  hairpin.hairpin_tcp = true;
  NatCheckReport report = Check(hairpin);
  EXPECT_TRUE(report.udp_hairpin_tested);
  EXPECT_TRUE(report.udp_hairpin);
  EXPECT_TRUE(report.tcp_hairpin_tested);
  EXPECT_TRUE(report.tcp_hairpin);
}

TEST_F(NatCheckTest, FilteredHairpinLooksUnsupported) {
  // §6.3: NAT Check's one-way hairpin test is pessimistic on NATs that
  // treat traffic at their public ports as untrusted. The NAT *does*
  // hairpin (full two-way punching would work), but the tool reports no.
  NatConfig filtered;
  filtered.hairpin_udp = true;
  filtered.hairpin_tcp = true;
  filtered.hairpin_filtered = true;
  NatCheckReport report = Check(filtered);
  EXPECT_FALSE(report.udp_hairpin);
  EXPECT_FALSE(report.tcp_hairpin);
}

TEST_F(NatCheckTest, PublicClientLooksLikeNoNat) {
  NatCheckReport report = Check(NatConfig{}, NatCheckClientConfig{}, /*natted=*/false);
  EXPECT_TRUE(report.udp_consistent);
  EXPECT_EQ(report.udp_public_1.ip, Ipv4Address::FromOctets(99, 1, 1, 1));
  EXPECT_TRUE(report.TcpHolePunchCompatible());
  // No NAT: nothing filters server 3's probes.
  EXPECT_FALSE(report.udp_filters_unsolicited);
  EXPECT_TRUE(report.tcp_unsolicited_passed);
}

TEST_F(NatCheckTest, OldClientVersionsSkipTests) {
  NatCheckClientConfig old_version;
  old_version.test_udp_hairpin = false;
  old_version.test_tcp = false;
  old_version.test_tcp_hairpin = false;
  NatCheckReport report = Check(NatConfig{}, old_version);
  EXPECT_TRUE(report.udp_reachable);
  EXPECT_FALSE(report.udp_hairpin_tested);
  EXPECT_FALSE(report.tcp_tested);
}

TEST_F(NatCheckTest, PortPreservingConeStillConsistent) {
  NatConfig preserving;
  preserving.port_allocation = NatPortAllocation::kPortPreserving;
  NatCheckReport report = Check(preserving);
  EXPECT_TRUE(report.udp_consistent);
  EXPECT_EQ(report.udp_public_1.port, 4321);  // preserved
}

// ---------------------------------------------------------------------------
// Fleet construction
// ---------------------------------------------------------------------------

TEST(FleetTest, PaperVendorsMatchTotals) {
  auto vendors = PaperTable1Vendors();
  int udp_yes = 0, udp_n = 0, uh_n = 0, tcp_yes = 0, tcp_n = 0, th_n = 0;
  for (const auto& v : vendors) {
    udp_yes += v.udp_yes;
    udp_n += v.udp_n;
    uh_n += v.udp_hairpin_n;
    tcp_yes += v.tcp_yes;
    tcp_n += v.tcp_n;
    th_n += v.tcp_hairpin_n;
  }
  EXPECT_EQ(udp_yes, 310);
  EXPECT_EQ(udp_n, 380);
  EXPECT_EQ(uh_n, 335);
  EXPECT_EQ(tcp_yes, 184);
  EXPECT_EQ(tcp_n, 286);
  // 284, not the paper's 286: Table 1's own per-vendor TCP-hairpin counts
  // don't sum to its All Vendors line; we clamp (see fleet.cc).
  EXPECT_EQ(th_n, 284);
}

TEST(FleetTest, BuildFleetHitsEveryQuotaExactly) {
  auto vendors = PaperTable1Vendors();
  auto fleet = BuildFleet(vendors, /*seed=*/42);
  ASSERT_EQ(fleet.size(), 380u);
  for (const auto& vendor : vendors) {
    int cone = 0, n = 0, uh_yes = 0, uh_n = 0, tcp_ok = 0, tcp_n = 0, th_yes = 0, th_n = 0;
    for (const auto& device : fleet) {
      if (device.vendor != vendor.name) {
        continue;
      }
      ++n;
      cone += device.config.IsCone() ? 1 : 0;
      if (device.reports_udp_hairpin) {
        ++uh_n;
        uh_yes += device.config.hairpin_udp ? 1 : 0;
      }
      if (device.reports_tcp) {
        ++tcp_n;
        tcp_ok += device.config.SupportsTcpHolePunching() ? 1 : 0;
      }
      if (device.reports_tcp_hairpin) {
        ++th_n;
        th_yes += device.config.hairpin_tcp ? 1 : 0;
      }
    }
    EXPECT_EQ(n, vendor.udp_n) << vendor.name;
    EXPECT_EQ(cone, vendor.udp_yes) << vendor.name;
    EXPECT_EQ(uh_n, vendor.udp_hairpin_n) << vendor.name;
    EXPECT_EQ(uh_yes, vendor.udp_hairpin_yes) << vendor.name;
    EXPECT_EQ(tcp_n, vendor.tcp_n) << vendor.name;
    EXPECT_EQ(tcp_ok, vendor.tcp_yes) << vendor.name;
    EXPECT_EQ(th_n, vendor.tcp_hairpin_n) << vendor.name;
    EXPECT_EQ(th_yes, vendor.tcp_hairpin_yes) << vendor.name;
  }
}

TEST(FleetTest, FleetIsDeterministicPerSeed) {
  auto vendors = PaperTable1Vendors();
  auto f1 = BuildFleet(vendors, 7);
  auto f2 = BuildFleet(vendors, 7);
  ASSERT_EQ(f1.size(), f2.size());
  for (size_t i = 0; i < f1.size(); ++i) {
    EXPECT_EQ(f1[i].config.mapping, f2[i].config.mapping);
    EXPECT_EQ(f1[i].config.hairpin_udp, f2[i].config.hairpin_udp);
    EXPECT_EQ(f1[i].reports_tcp, f2[i].reports_tcp);
  }
}

TEST(FleetTest, MiniFleetMeasurementMatchesConstruction) {
  // A small custom vendor; measurement through NAT Check must reproduce the
  // construction exactly (no measurement artifacts for these behaviors).
  std::vector<VendorProfile> vendors = {{"Mini", 3, 4, 1, 2, 2, 3, 1, 2}};
  auto fleet = BuildFleet(vendors, 5);
  ASSERT_EQ(fleet.size(), 4u);
  Table1Result result = RunFleet(fleet, 99);
  ASSERT_EQ(result.rows.size(), 1u);
  const VendorTally& tally = result.rows[0].second;
  EXPECT_EQ(tally.udp_n, 4);
  EXPECT_EQ(tally.udp_yes, 3);
  EXPECT_EQ(tally.udp_hairpin_n, 2);
  EXPECT_EQ(tally.udp_hairpin_yes, 1);
  EXPECT_EQ(tally.tcp_n, 3);
  EXPECT_EQ(tally.tcp_yes, 2);
  EXPECT_EQ(tally.tcp_hairpin_n, 2);
  EXPECT_EQ(tally.tcp_hairpin_yes, 1);
}

TEST(FleetTest, RunFleetIsDeterministic) {
  std::vector<VendorProfile> vendors = {{"Mini", 3, 4, 1, 2, 2, 3, 1, 2}};
  auto fleet = BuildFleet(vendors, 9);
  const Table1Result r1 = RunFleet(fleet, 21);
  const Table1Result r2 = RunFleet(fleet, 21);
  EXPECT_EQ(r1.total.udp_yes, r2.total.udp_yes);
  EXPECT_EQ(r1.total.tcp_yes, r2.total.tcp_yes);
  EXPECT_EQ(r1.total.udp_hairpin_yes, r2.total.udp_hairpin_yes);
}

TEST(FleetTest, FullFleetReproducesPaperHeadline) {
  // The flagship number: measure all 380 devices through the NAT Check
  // reproduction and match the paper's aggregate row exactly.
  const auto vendors = PaperTable1Vendors();
  const auto fleet = BuildFleet(vendors, /*seed=*/2005);
  const Table1Result result = RunFleet(fleet, /*seed=*/6);
  EXPECT_EQ(result.total.udp_yes, 310);
  EXPECT_EQ(result.total.udp_n, 380);
  EXPECT_EQ(result.total.udp_hairpin_yes, 80);
  EXPECT_EQ(result.total.udp_hairpin_n, 335);
  EXPECT_EQ(result.total.tcp_yes, 184);
  EXPECT_EQ(result.total.tcp_n, 286);
  // 40/284 vs the paper's 37/286: Table 1's own inconsistency (see fleet.cc).
  EXPECT_EQ(result.total.tcp_hairpin_yes, 40);
  EXPECT_EQ(result.total.tcp_hairpin_n, 284);
}

TEST(FleetTest, FormatTable1Renders) {
  std::vector<VendorProfile> vendors = {{"Mini", 2, 2, 0, 1, 1, 1, 0, 0}};
  auto fleet = BuildFleet(vendors, 5);
  Table1Result result = RunFleet(fleet, 3);
  const std::string table = FormatTable1(result, &vendors);
  EXPECT_NE(table.find("Mini"), std::string::npos);
  EXPECT_NE(table.find("UDP punch"), std::string::npos);
  EXPECT_NE(table.find("(paper)"), std::string::npos);
}

}  // namespace
}  // namespace natpunch
