// Golden-trace oracle for the NAT datapath rewrite: fixed-seed scenarios
// spanning every translation path (outbound mapping churn, inbound
// filtering, expiry + re-map, hairpin, Basic NAT, ICMP quotation
// translation in both directions, unsolicited-TCP rejection, the full NAT
// Check instrument) must produce byte-identical Trace::Dump() output across
// substrate rewrites. The hashes below were recorded from the ordered-map
// NatTable implementation; the flat-hash fast path must reproduce them
// exactly, proving the optimization changed no observable behavior.
//
// On mismatch, set NATPUNCH_TRACE_GOLDEN_DIR=<dir> to write each scenario's
// dump to <dir>/<name>.txt and diff against a known-good build.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>

#include "src/fleet/fleet.h"
#include "src/natcheck/client.h"
#include "src/natcheck/servers.h"
#include "src/scenario/scenario.h"

namespace natpunch {
namespace {

uint64_t Fnv1a64(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

void CheckGolden(const char* name, const std::string& dump, uint64_t want_hash,
                 size_t want_size) {
  if (const char* dir = std::getenv("NATPUNCH_TRACE_GOLDEN_DIR");
      dir != nullptr && dir[0] != '\0') {
    std::ofstream out(std::string(dir) + "/" + name + ".txt");
    out << dump;
  }
  EXPECT_EQ(Fnv1a64(dump), want_hash) << name << ": trace dump diverged (size "
                                      << dump.size() << ", want " << want_size << ")";
  EXPECT_EQ(dump.size(), want_size) << name;
}

// A steady UDP exchange across two cone NATs, then idle past udp_timeout
// (sweep expiry), then a fresh exchange (re-map through the recycled port
// space). Covers MapOutbound create/refresh, inbound filter drops of the
// first unsolicited arrivals, expiry, and re-creation.
TEST(TraceGoldenTest, UdpPunchExpiryRepunch) {
  Scenario::Options options;
  options.seed = 1234;
  auto topo = MakeFig5(NatConfig{}, NatConfig{}, options);
  Network& net = topo.scenario->net();
  net.trace().set_enabled(true);

  auto sa = topo.a->udp().Bind(4321);
  auto sb = topo.b->udp().Bind(4321);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  const Endpoint a_pub(NatAIp(), 62000);
  const Endpoint b_pub(NatBIp(), 62000);
  const uint8_t msg[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE((*sa)->SendTo(b_pub, msg, sizeof(msg)).ok());
    ASSERT_TRUE((*sb)->SendTo(a_pub, msg, sizeof(msg)).ok());
    net.RunFor(Millis(100));
  }
  net.RunFor(Seconds(130));  // both mappings idle out (udp_timeout = 120s)
  EXPECT_EQ(topo.site_a.nat->active_mapping_count(), 0u);
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE((*sa)->SendTo(b_pub, msg, sizeof(msg)).ok());
    ASSERT_TRUE((*sb)->SendTo(a_pub, msg, sizeof(msg)).ok());
    net.RunFor(Millis(100));
  }
  CheckGolden("udp_punch_expiry_repunch", net.trace().Dump(),
              13801782157402598702ULL, 13929u);
}

// NAT Check instrument runs (the Table 1 measurement protocol) with trace
// on, against three behaviorally distant devices.
std::string NatCheckTraceFor(const NatConfig& config, bool hairpins, uint64_t seed) {
  Scenario::Options options;
  options.seed = seed;
  Scenario scenario(options);
  scenario.net().trace().set_enabled(true);
  Host* s1 = scenario.AddPublicHost("S1", Ipv4Address::FromOctets(18, 181, 0, 31));
  Host* s2 = scenario.AddPublicHost("S2", Ipv4Address::FromOctets(18, 181, 0, 32));
  Host* s3 = scenario.AddPublicHost("S3", Ipv4Address::FromOctets(18, 181, 0, 33));
  NattedSite site = scenario.AddNattedSite(
      "dev", config, Ipv4Address::FromOctets(155, 99, 25, 11),
      Ipv4Prefix(Ipv4Address::FromOctets(10, 0, 0, 0), 24), 1);
  NatCheckServers servers(s1, s2, s3);
  EXPECT_TRUE(servers.Start().ok());
  NatCheckServerAddrs addrs;
  addrs.udp1 = servers.udp_endpoint(1);
  addrs.udp2 = servers.udp_endpoint(2);
  addrs.tcp1 = servers.tcp_endpoint(1);
  addrs.tcp2 = servers.tcp_endpoint(2);
  addrs.tcp3 = servers.tcp_endpoint(3);
  NatCheckClientConfig client_config;
  client_config.test_udp_hairpin = hairpins;
  client_config.test_tcp = true;
  client_config.test_tcp_hairpin = hairpins;
  NatCheckClient client(site.host(0), addrs, client_config);
  client.Run(4321, [](Result<NatCheckReport>) {});
  scenario.net().RunFor(Seconds(90));
  return scenario.net().trace().Dump();
}

TEST(TraceGoldenTest, NatCheckConeWithHairpin) {
  NatConfig config;  // default cone, drop policy
  config.hairpin_udp = true;
  config.hairpin_tcp = true;
  CheckGolden("natcheck_cone_hairpin", NatCheckTraceFor(config, true, 7),
              4272833863604345419ULL, 12658u);
}

TEST(TraceGoldenTest, NatCheckSymmetricRandomRst) {
  NatConfig config;
  config.mapping = NatMapping::kAddressAndPortDependent;
  config.filtering = NatFiltering::kAddressDependent;
  config.port_allocation = NatPortAllocation::kRandom;
  config.unsolicited_tcp = NatUnsolicitedTcp::kRst;
  CheckGolden("natcheck_symmetric_rst", NatCheckTraceFor(config, false, 8),
              15513539874321387816ULL, 8597u);
}

TEST(TraceGoldenTest, NatCheckIcmpRejectPayloadRewrite) {
  NatConfig config;
  config.unsolicited_tcp = NatUnsolicitedTcp::kIcmp;
  config.port_allocation = NatPortAllocation::kPortPreserving;
  config.rewrite_payload_addresses = true;
  config.symmetric_on_port_contention = true;
  CheckGolden("natcheck_icmp_rewrite", NatCheckTraceFor(config, true, 9),
              17184364465002780355ULL, 10171u);
}

// Hairpin translation behind one common NAT (Fig. 4 shape), NAPT flavor.
TEST(TraceGoldenTest, HairpinNapt) {
  NatConfig config;
  config.hairpin_udp = true;
  Scenario::Options options;
  options.seed = 21;
  auto topo = MakeFig4(config, options);
  Network& net = topo.scenario->net();
  net.trace().set_enabled(true);
  auto sa = topo.a->udp().Bind(4321);
  auto sb = topo.b->udp().Bind(4321);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  // A talks to the server first so its mapping is the predictable 62000.
  ASSERT_TRUE((*sa)->SendTo(Endpoint(ServerIp(), kServerPort), Bytes{'h', 'i'}).ok());
  net.RunFor(Seconds(1));
  // B loops a datagram back in through A's public mapping; A replies the
  // same way once it has seen B's translated source.
  Endpoint b_seen;
  (*sa)->SetReceiveCallback([&](const Endpoint& from, const Payload&) { b_seen = from; });
  ASSERT_TRUE((*sb)->SendTo(Endpoint(topo.site.nat->public_ip(), 62000), Bytes{'p', 'i', 'n', 'g'}).ok());
  net.RunFor(Seconds(1));
  if (!b_seen.IsUnspecified()) {
    ASSERT_TRUE((*sa)->SendTo(b_seen, Bytes{'p', 'o', 'n', 'g'}).ok());
    net.RunFor(Seconds(1));
  }
  CheckGolden("hairpin_napt", net.trace().Dump(), 2952339002846794721ULL, 1290u);
}

// Basic NAT (address-only translation) with hairpin and session expiry.
TEST(TraceGoldenTest, BasicNatHairpinExpiry) {
  NatConfig config;
  config.basic_nat = true;
  config.hairpin_udp = true;
  Scenario::Options options;
  options.seed = 22;
  auto topo = MakeFig4(config, options);
  Network& net = topo.scenario->net();
  net.trace().set_enabled(true);
  auto sa = topo.a->udp().Bind(4321);
  auto sb = topo.b->udp().Bind(4322);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  ASSERT_TRUE((*sa)->SendTo(Endpoint(ServerIp(), kServerPort), Bytes{'a'}).ok());
  ASSERT_TRUE((*sb)->SendTo(Endpoint(ServerIp(), kServerPort), Bytes{'b'}).ok());
  net.RunFor(Seconds(1));
  // Hairpin: B to A's pool address (first assignment = public_ip + 1).
  const Ipv4Address a_pool(topo.site.nat->public_ip().bits() + 1);
  ASSERT_TRUE((*sb)->SendTo(Endpoint(a_pool, 4321), Bytes{'h', 'p'}).ok());
  net.RunFor(Seconds(1));
  net.RunFor(Seconds(130));  // sessions idle out, pool addresses reclaimed
  ASSERT_TRUE((*sa)->SendTo(Endpoint(ServerIp(), kServerPort), Bytes{'z'}).ok());
  net.RunFor(Seconds(1));
  CheckGolden("basic_nat_hairpin_expiry", net.trace().Dump(),
              7569573999315818204ULL, 2001u);
}

// Outbound ICMP quotation translation (FindByPrivateEndpoint): an inside
// host reports an error about a punched-in datagram after its socket
// closed; the NAT rewrites the quoted private endpoint to its public
// mapping on the way out.
TEST(TraceGoldenTest, OutboundIcmpQuotation) {
  Scenario::Options options;
  options.seed = 23;
  auto topo = MakeFig5(NatConfig{}, NatConfig{}, options);
  Network& net = topo.scenario->net();
  net.trace().set_enabled(true);
  auto server_sock = topo.server->udp().Bind(kServerPort);
  ASSERT_TRUE(server_sock.ok());
  Endpoint a_public;
  (*server_sock)->SetReceiveCallback([&](const Endpoint& from, const Payload&) {
    a_public = from;
  });
  auto sa = topo.a->udp().Bind(4321);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE((*sa)->SendTo(Endpoint(ServerIp(), kServerPort), Bytes{'s', 'y', 'n'}).ok());
  net.RunFor(Seconds(1));
  ASSERT_EQ(a_public, Endpoint(NatAIp(), 62000));
  // Close A's socket; the next inbound datagram hits a closed port and the
  // host emits ICMP port-unreachable back out through the NAT.
  (*sa)->Close();
  net.RunFor(Millis(10));
  ASSERT_TRUE((*server_sock)->SendTo(a_public, Bytes{'l', 'a', 't', 'e'}).ok());
  net.RunFor(Seconds(1));
  CheckGolden("outbound_icmp_quotation", net.trace().Dump(),
              1653137463881705718ULL, 897u);
}

// The full Table 1 instrument: 380 devices measured by the NAT Check
// reproduction. Not a trace, but the strongest end-to-end behavioral hash —
// every mapping/filtering/rejection/hairpin decision in the fleet feeds it.
TEST(TraceGoldenTest, FleetTable1Report) {
  const auto vendors = PaperTable1Vendors();
  const Table1Result result = RunFleet(BuildFleet(vendors, /*seed=*/2005), /*seed=*/6);
  const std::string table = FormatTable1(result, &vendors);
  if (const char* dir = std::getenv("NATPUNCH_TRACE_GOLDEN_DIR");
      dir != nullptr && dir[0] != '\0') {
    std::ofstream out(std::string(dir) + "/fleet_table1.txt");
    out << table;
  }
  EXPECT_EQ(Fnv1a64(table), 252540557503584141ULL) << "Table 1 output diverged:\n" << table;
  EXPECT_EQ(result.events, 29316u);
}

}  // namespace
}  // namespace natpunch
