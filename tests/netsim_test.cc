// Unit tests for src/netsim: virtual time, event loop determinism,
// addressing, LAN delivery, routing, loss, and trace capture.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "src/netsim/address.h"
#include "src/netsim/event_loop.h"
#include "src/netsim/network.h"
#include "src/netsim/packet.h"

namespace natpunch {
namespace {

TEST(SimTimeTest, Arithmetic) {
  SimTime t0;
  SimTime t1 = t0 + Millis(5);
  EXPECT_EQ((t1 - t0).micros(), 5000);
  EXPECT_LT(t0, t1);
  EXPECT_EQ((Seconds(2) + Millis(500)).micros(), 2'500'000);
  EXPECT_EQ((Seconds(1) / 4).millis(), 250);
}

TEST(SimTimeTest, Formatting) {
  EXPECT_EQ(Seconds(3).ToString(), "3s");
  EXPECT_EQ(Millis(250).ToString(), "250ms");
  EXPECT_EQ(Micros(7).ToString(), "7us");
}

TEST(EventLoopTest, FiresInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(SimTime(300), [&] { order.push_back(3); });
  loop.ScheduleAt(SimTime(100), [&] { order.push_back(1); });
  loop.ScheduleAt(SimTime(200), [&] { order.push_back(2); });
  loop.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now().micros(), 300);
}

TEST(EventLoopTest, SameTimeFifoOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.ScheduleAt(SimTime(50), [&order, i] { order.push_back(i); });
  }
  loop.RunUntilIdle();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventLoopTest, CancelPreventsFiring) {
  EventLoop loop;
  bool fired = false;
  auto id = loop.ScheduleAfter(Millis(1), [&] { fired = true; });
  EXPECT_TRUE(loop.Cancel(id));
  EXPECT_FALSE(loop.Cancel(id));  // second cancel is a no-op
  loop.RunUntilIdle();
  EXPECT_FALSE(fired);
}

TEST(EventLoopTest, RunUntilAdvancesClockPastLastEvent) {
  EventLoop loop;
  int count = 0;
  loop.ScheduleAt(SimTime(100), [&] { ++count; });
  loop.ScheduleAt(SimTime(900), [&] { ++count; });
  loop.RunUntil(SimTime(500));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(loop.now().micros(), 500);
  loop.RunUntil(SimTime(1000));
  EXPECT_EQ(count, 2);
}

TEST(EventLoopTest, EventsCanScheduleEvents) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      loop.ScheduleAfter(Millis(1), recurse);
    }
  };
  loop.ScheduleAfter(Millis(1), recurse);
  loop.RunUntilIdle();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(loop.now().micros(), 5000);
}

TEST(EventLoopTest, RunUntilIdleHonorsCap) {
  EventLoop loop;
  std::function<void()> forever = [&] { loop.ScheduleAfter(Micros(1), forever); };
  loop.ScheduleAfter(Micros(1), forever);
  EXPECT_EQ(loop.RunUntilIdle(100), 100u);
}

TEST(EventLoopTest, CancelAfterFireReturnsFalse) {
  EventLoop loop;
  int fired = 0;
  const auto id = loop.ScheduleAt(SimTime(10), [&] { ++fired; });
  loop.RunUntilIdle();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(loop.Cancel(id));  // already fired
  EXPECT_FALSE(loop.Cancel(id));
}

TEST(EventLoopTest, CancelFromInsideCallback) {
  EventLoop loop;
  bool second_fired = false;
  EventLoop::EventId second = EventLoop::kInvalidEventId;
  second = loop.ScheduleAt(SimTime(20), [&] { second_fired = true; });
  loop.ScheduleAt(SimTime(10), [&] { EXPECT_TRUE(loop.Cancel(second)); });
  loop.RunUntilIdle();
  EXPECT_FALSE(second_fired);
  EXPECT_TRUE(loop.idle());
}

TEST(EventLoopTest, CancelSameInstantSiblingPreservesOrder) {
  EventLoop loop;
  std::vector<int> order;
  EventLoop::EventId doomed = EventLoop::kInvalidEventId;
  loop.ScheduleAt(SimTime(50), [&] { order.push_back(0); });
  doomed = loop.ScheduleAt(SimTime(50), [&] { order.push_back(1); });
  loop.ScheduleAt(SimTime(50), [&] { order.push_back(2); });
  EXPECT_TRUE(loop.Cancel(doomed));
  loop.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
}

TEST(EventLoopTest, PendingCountTracksCancellation) {
  EventLoop loop;
  const auto a = loop.ScheduleAt(SimTime(10), [] {});
  const auto b = loop.ScheduleAt(SimTime(20), [] {});
  EXPECT_EQ(loop.pending_count(), 2u);
  EXPECT_FALSE(loop.idle());
  EXPECT_TRUE(loop.Cancel(a));
  EXPECT_EQ(loop.pending_count(), 1u);
  EXPECT_TRUE(loop.Cancel(b));
  EXPECT_EQ(loop.pending_count(), 0u);
  EXPECT_TRUE(loop.idle());
  EXPECT_FALSE(loop.RunOne());
}

TEST(EventLoopTest, SchedulingInThePastClampsToNow) {
  EventLoop loop;
  loop.ScheduleAt(SimTime(100), [] {});
  loop.RunUntilIdle();
  EXPECT_EQ(loop.now().micros(), 100);
  int64_t fired_at = -1;
  loop.ScheduleAt(SimTime(5), [&] { fired_at = loop.now().micros(); });
  loop.RunUntilIdle();
  EXPECT_EQ(fired_at, 100);
}

// Reference model with the original std::map<(time, seq)> semantics; the
// heap-based EventLoop must agree with it on every observable: Cancel()
// return values, firing order, event payload identity, and clock position.
class ModelLoop {
 public:
  uint64_t Schedule(int64_t at, int payload) {
    const int64_t t = std::max(at, now_);
    const uint64_t id = next_id_++;
    queue_.emplace(std::make_pair(t, id), payload);
    return id;
  }
  bool Cancel(uint64_t id) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->first.second == id) {
        queue_.erase(it);
        return true;
      }
    }
    return false;
  }
  bool RunOne(std::vector<int>* fired) {
    if (queue_.empty()) {
      return false;
    }
    auto it = queue_.begin();
    now_ = it->first.first;
    fired->push_back(it->second);
    queue_.erase(it);
    return true;
  }
  int64_t now() const { return now_; }
  size_t pending() const { return queue_.size(); }

 private:
  int64_t now_ = 0;
  uint64_t next_id_ = 1;
  std::map<std::pair<int64_t, uint64_t>, int> queue_;
};

// Hammer schedule/cancel/run interleavings against the reference model.
// Deterministic LCG so failures replay exactly.
TEST(EventLoopTest, RandomizedAgainstMapModel) {
  EventLoop loop;
  ModelLoop model;
  std::vector<int> loop_fired;
  std::vector<int> model_fired;
  std::vector<std::pair<EventLoop::EventId, uint64_t>> ids;  // (loop id, model id)
  uint64_t rng = 12345;
  auto next = [&rng](uint64_t bound) {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return (rng >> 33) % bound;
  };
  int payload = 0;
  for (int step = 0; step < 20000; ++step) {
    const uint64_t op = next(10);
    if (op < 5) {
      // Schedule at a time near now (sometimes in the past → clamps).
      const int64_t at = loop.now().micros() + static_cast<int64_t>(next(40)) - 5;
      const int p = payload++;
      const auto lid = loop.ScheduleAt(SimTime(at), [&loop_fired, p] { loop_fired.push_back(p); });
      const auto mid = model.Schedule(at, p);
      ids.emplace_back(lid, mid);
    } else if (op < 8) {
      EXPECT_EQ(loop.RunOne(), model.RunOne(&model_fired));
      EXPECT_EQ(loop.now().micros(), model.now());
    } else {
      // Cancel a random id from the history — pending, fired, or already
      // cancelled; the two implementations must agree on the return value.
      if (!ids.empty()) {
        const auto& [lid, mid] = ids[next(ids.size())];
        EXPECT_EQ(loop.Cancel(lid), model.Cancel(mid));
      }
    }
    ASSERT_EQ(loop.pending_count(), model.pending()) << "diverged at step " << step;
  }
  while (model.RunOne(&model_fired)) {
    EXPECT_TRUE(loop.RunOne());
  }
  EXPECT_FALSE(loop.RunOne());
  EXPECT_EQ(loop_fired, model_fired);
  EXPECT_EQ(loop.now().micros(), model.now());
}

TEST(AddressTest, ParseAndFormat) {
  auto a = Ipv4Address::Parse("155.99.25.11");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->ToString(), "155.99.25.11");
  EXPECT_EQ(*a, Ipv4Address::FromOctets(155, 99, 25, 11));
}

TEST(AddressTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::Parse("").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("256.1.1.1").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1..2.3").has_value());
}

TEST(AddressTest, PrivateRanges) {
  EXPECT_TRUE(Ipv4Address::FromOctets(10, 0, 0, 1).IsPrivate());
  EXPECT_TRUE(Ipv4Address::FromOctets(172, 16, 0, 1).IsPrivate());
  EXPECT_TRUE(Ipv4Address::FromOctets(172, 31, 255, 255).IsPrivate());
  EXPECT_TRUE(Ipv4Address::FromOctets(192, 168, 1, 1).IsPrivate());
  EXPECT_FALSE(Ipv4Address::FromOctets(172, 32, 0, 1).IsPrivate());
  EXPECT_FALSE(Ipv4Address::FromOctets(18, 181, 0, 31).IsPrivate());
  EXPECT_FALSE(Ipv4Address::FromOctets(155, 99, 25, 11).IsPrivate());
}

TEST(AddressTest, ComplementIsInvolution) {
  const Ipv4Address a = Ipv4Address::FromOctets(10, 1, 1, 3);
  EXPECT_NE(a, a.Complement());
  EXPECT_EQ(a, a.Complement().Complement());
}

TEST(EndpointTest, ParseAndFormat) {
  auto e = Endpoint::Parse("138.76.29.7:31000");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->ToString(), "138.76.29.7:31000");
  EXPECT_EQ(e->port, 31000);
  EXPECT_FALSE(Endpoint::Parse("1.2.3.4").has_value());
  EXPECT_FALSE(Endpoint::Parse("1.2.3.4:99999").has_value());
  EXPECT_FALSE(Endpoint::Parse("1.2.3.4:").has_value());
}

TEST(PrefixTest, Contains) {
  auto p = Ipv4Prefix::Parse("10.0.0.0/24");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->Contains(Ipv4Address::FromOctets(10, 0, 0, 200)));
  EXPECT_FALSE(p->Contains(Ipv4Address::FromOctets(10, 0, 1, 1)));
  auto all = Ipv4Prefix::Parse("0.0.0.0/0");
  ASSERT_TRUE(all.has_value());
  EXPECT_TRUE(all->Contains(Ipv4Address::FromOctets(255, 255, 255, 255)));
}

TEST(PacketTest, WireSizeAccountsHeaders) {
  Packet udp;
  udp.protocol = IpProtocol::kUdp;
  udp.payload = Bytes(100);
  EXPECT_EQ(udp.WireSize(), 20u + 8u + 100u);
  Packet tcp;
  tcp.protocol = IpProtocol::kTcp;
  EXPECT_EQ(tcp.WireSize(), 40u);
}

TEST(PacketTest, SummaryShowsFlags) {
  Packet p;
  p.protocol = IpProtocol::kTcp;
  p.tcp.syn = true;
  p.tcp.ack = true;
  p.set_src(Endpoint(Ipv4Address::FromOctets(1, 2, 3, 4), 10));
  p.set_dst(Endpoint(Ipv4Address::FromOctets(5, 6, 7, 8), 20));
  const std::string s = p.Summary();
  EXPECT_NE(s.find("SYN,ACK"), std::string::npos);
  EXPECT_NE(s.find("1.2.3.4:10"), std::string::npos);
}

// A trivial sink node recording what it receives.
class SinkNode : public Node {
 public:
  SinkNode(Network* net, std::string name) : Node(net, std::move(name)) {}
  void HandlePacket(int iface, Packet&& packet) override {
    (void)iface;
    received.push_back(std::move(packet));
  }
  std::vector<Packet> received;
};

TEST(LanTest, DeliversToOwnerWithLatency) {
  Network net(1);
  Lan* lan = net.CreateLan("lan", LanConfig{.latency = Millis(5)});
  auto* a = net.Create<SinkNode>("a");
  auto* b = net.Create<SinkNode>("b");
  a->AttachTo(lan, Ipv4Address::FromOctets(10, 0, 0, 1));
  b->AttachTo(lan, Ipv4Address::FromOctets(10, 0, 0, 2));

  Packet p;
  p.set_dst(Endpoint(Ipv4Address::FromOctets(10, 0, 0, 2), 9));
  ASSERT_TRUE(a->SendPacket(std::move(p)));
  net.RunFor(Millis(4));
  EXPECT_TRUE(b->received.empty());
  net.RunFor(Millis(2));
  ASSERT_EQ(b->received.size(), 1u);
  // Source filled in from the egress interface.
  EXPECT_EQ(b->received[0].src_ip, Ipv4Address::FromOctets(10, 0, 0, 1));
}

TEST(LanTest, NoRouteDropRecorded) {
  Network net(1);
  net.trace().set_enabled(true);
  Lan* lan = net.CreateLan("lan", LanConfig{});
  auto* a = net.Create<SinkNode>("a");
  a->AttachTo(lan, Ipv4Address::FromOctets(10, 0, 0, 1));
  Packet p;
  p.set_dst(Endpoint(Ipv4Address::FromOctets(99, 0, 0, 1), 9));
  EXPECT_FALSE(a->SendPacket(std::move(p)));  // off-subnet, no default route
  EXPECT_EQ(net.trace().Count(TraceEvent::kDropNoRoute), 1u);
}

TEST(LanTest, MissingNextHopDropRecorded) {
  Network net(1);
  net.trace().set_enabled(true);
  Lan* lan = net.CreateLan("lan", LanConfig{});
  auto* a = net.Create<SinkNode>("a");
  a->AttachTo(lan, Ipv4Address::FromOctets(10, 0, 0, 1));
  Packet p;
  p.set_dst(Endpoint(Ipv4Address::FromOctets(10, 0, 0, 99), 9));  // on-subnet, absent
  EXPECT_TRUE(a->SendPacket(std::move(p)));
  net.RunUntilIdle();
  EXPECT_EQ(net.trace().Count(TraceEvent::kDropNoNextHop), 1u);
}

TEST(LanTest, PrivateLeakOnGlobalRealm) {
  Network net(1);
  net.trace().set_enabled(true);
  Lan* internet = net.CreateLan("internet", LanConfig{.is_global = true});
  auto* a = net.Create<SinkNode>("a");
  const int iface = a->AttachTo(internet, Ipv4Address::FromOctets(18, 0, 0, 1), 8);
  a->AddRoute(Ipv4Prefix(Ipv4Address(0), 0), iface);
  Packet p;
  p.set_dst(Endpoint(Ipv4Address::FromOctets(10, 1, 1, 3), 9));
  EXPECT_TRUE(a->SendPacket(std::move(p)));
  net.RunUntilIdle();
  EXPECT_EQ(net.trace().Count(TraceEvent::kDropPrivateLeak), 1u);
}

TEST(LanTest, LossDropsDeterministically) {
  Network net(42);
  net.trace().set_enabled(true);
  Lan* lan = net.CreateLan("lossy", LanConfig{.loss = 0.5});
  auto* a = net.Create<SinkNode>("a");
  auto* b = net.Create<SinkNode>("b");
  a->AttachTo(lan, Ipv4Address::FromOctets(10, 0, 0, 1));
  b->AttachTo(lan, Ipv4Address::FromOctets(10, 0, 0, 2));
  for (int i = 0; i < 200; ++i) {
    Packet p;
    p.set_dst(Endpoint(Ipv4Address::FromOctets(10, 0, 0, 2), 9));
    a->SendPacket(std::move(p));
  }
  net.RunUntilIdle();
  const size_t delivered = b->received.size();
  EXPECT_GT(delivered, 60u);
  EXPECT_LT(delivered, 140u);
  EXPECT_EQ(delivered + net.trace().Count(TraceEvent::kDropLoss), 200u);
}

TEST(LanTest, BandwidthSerializesPackets) {
  Network net(1);
  // 1 Mbit/s, negligible propagation: a 1028-byte packet (1000 payload +
  // 28 headers) takes ~8.2 ms on the wire, so 10 back-to-back packets
  // arrive spread over ~82 ms instead of simultaneously.
  Lan* lan = net.CreateLan("slow", LanConfig{.latency = Micros(1), .bandwidth_bps = 1e6});
  auto* a = net.Create<SinkNode>("a");
  auto* b = net.Create<SinkNode>("b");
  a->AttachTo(lan, Ipv4Address::FromOctets(10, 0, 0, 1));
  b->AttachTo(lan, Ipv4Address::FromOctets(10, 0, 0, 2));
  for (int i = 0; i < 10; ++i) {
    Packet p;
    p.protocol = IpProtocol::kUdp;
    p.payload = Bytes(1000);
    p.set_dst(Endpoint(Ipv4Address::FromOctets(10, 0, 0, 2), 9));
    a->SendPacket(std::move(p));
  }
  net.RunFor(Millis(50));
  EXPECT_LT(b->received.size(), 10u);  // still serializing
  net.RunFor(Millis(50));
  EXPECT_EQ(b->received.size(), 10u);
  EXPECT_GT(net.now().micros(), 80'000);
}

TEST(LanTest, InfiniteBandwidthDeliversConcurrently) {
  Network net(1);
  Lan* lan = net.CreateLan("fast", LanConfig{.latency = Millis(1)});
  auto* a = net.Create<SinkNode>("a");
  auto* b = net.Create<SinkNode>("b");
  a->AttachTo(lan, Ipv4Address::FromOctets(10, 0, 0, 1));
  b->AttachTo(lan, Ipv4Address::FromOctets(10, 0, 0, 2));
  for (int i = 0; i < 10; ++i) {
    Packet p;
    p.payload = Bytes(1000);
    p.set_dst(Endpoint(Ipv4Address::FromOctets(10, 0, 0, 2), 9));
    a->SendPacket(std::move(p));
  }
  net.RunFor(Millis(1));
  EXPECT_EQ(b->received.size(), 10u);  // all arrive after one latency
}

TEST(NodeTest, LongestPrefixMatchWins) {
  Network net(1);
  Lan* lan1 = net.CreateLan("l1", LanConfig{});
  Lan* lan2 = net.CreateLan("l2", LanConfig{});
  auto* r = net.Create<SinkNode>("r");
  const int i1 = r->AttachTo(lan1, Ipv4Address::FromOctets(10, 0, 0, 1), 8);
  const int i2 = r->AttachTo(lan2, Ipv4Address::FromOctets(10, 0, 1, 1), 24);
  Ipv4Address next_hop;
  EXPECT_EQ(r->RouteLookup(Ipv4Address::FromOctets(10, 0, 1, 7), &next_hop), i2);
  EXPECT_EQ(r->RouteLookup(Ipv4Address::FromOctets(10, 9, 9, 9), &next_hop), i1);
}

TEST(NodeTest, GatewayRouteSetsNextHop) {
  Network net(1);
  Lan* lan = net.CreateLan("l", LanConfig{});
  auto* h = net.Create<SinkNode>("h");
  const int iface = h->AttachTo(lan, Ipv4Address::FromOctets(10, 0, 0, 2), 24);
  h->AddDefaultRoute(iface, Ipv4Address::FromOctets(10, 0, 0, 1));
  Ipv4Address next_hop;
  EXPECT_EQ(h->RouteLookup(Ipv4Address::FromOctets(8, 8, 8, 8), &next_hop), iface);
  EXPECT_EQ(next_hop, Ipv4Address::FromOctets(10, 0, 0, 1));
  // On-link destinations resolve to themselves.
  EXPECT_EQ(h->RouteLookup(Ipv4Address::FromOctets(10, 0, 0, 7), &next_hop), iface);
  EXPECT_EQ(next_hop, Ipv4Address::FromOctets(10, 0, 0, 7));
}

TEST(TraceTest, RecordsAndCounts) {
  Network net(1);
  net.trace().set_enabled(true);
  Packet p;
  p.id = 7;
  net.trace().Record(net.now(), "n1", TraceEvent::kSend, p);
  net.trace().Record(net.now(), "n2", TraceEvent::kSend, p);
  net.trace().Record(net.now(), "n1", TraceEvent::kDeliver, p, "note");
  EXPECT_EQ(net.trace().Count(TraceEvent::kSend), 2u);
  EXPECT_EQ(net.trace().Count(TraceEvent::kSend, "n1"), 1u);
  EXPECT_NE(net.trace().Dump().find("note"), std::string::npos);
  net.trace().Clear();
  EXPECT_TRUE(net.trace().records().empty());
}

TEST(TraceTest, DisabledRecordsNothing) {
  Network net(1);
  Packet p;
  net.trace().Record(net.now(), "n", TraceEvent::kSend, p);
  EXPECT_TRUE(net.trace().records().empty());
}

}  // namespace
}  // namespace natpunch
