// Tests for the core hole punching library: UDP punching across the
// paper's three topologies (Figs. 4, 5, 6), TCP punching under both §4.3 OS
// behaviors and §5.2 NAT misbehaviors, connection reversal, sequential
// punching, relaying, NAT probing, and port prediction.

#include <gtest/gtest.h>

#include "src/core/connector.h"
#include "src/core/nat_prober.h"
#include "src/core/prediction.h"
#include "src/core/relay.h"
#include "src/core/sequential.h"
#include "src/core/tcp_puncher.h"
#include "src/core/udp_puncher.h"
#include "src/rendezvous/server.h"
#include "src/scenario/scenario.h"

namespace natpunch {
namespace {

NatConfig Symmetric() {
  NatConfig config;
  config.mapping = NatMapping::kAddressAndPortDependent;
  return config;
}

// ---------------------------------------------------------------------------
// UDP hole punching
// ---------------------------------------------------------------------------

class UdpPunchTest : public ::testing::Test {
 protected:
  void BuildFig5(const NatConfig& nat_a, const NatConfig& nat_b,
                 Scenario::Options options = Scenario::Options{}) {
    topo5_ = MakeFig5(nat_a, nat_b, options);
    Setup(topo5_.scenario.get(), topo5_.server, topo5_.a, topo5_.b);
  }

  void Setup(Scenario* scenario, Host* server_host, Host* a, Host* b) {
    scenario_ = scenario;
    server_ = std::make_unique<RendezvousServer>(server_host, kServerPort);
    ASSERT_TRUE(server_->Start().ok());
    ca_ = std::make_unique<UdpRendezvousClient>(a, server_->endpoint(), 1);
    cb_ = std::make_unique<UdpRendezvousClient>(b, server_->endpoint(), 2);
    ca_->Register(4321, [](Result<Endpoint>) {});
    cb_->Register(4321, [](Result<Endpoint>) {});
    pa_ = std::make_unique<UdpHolePuncher>(ca_.get());
    pb_ = std::make_unique<UdpHolePuncher>(cb_.get());
    pb_->SetIncomingSessionCallback([this](UdpP2pSession* s) { incoming_ = s; });
    scenario_->net().RunFor(Seconds(2));
    ASSERT_TRUE(ca_->registered());
    ASSERT_TRUE(cb_->registered());
  }

  // Punch from A to B and return A's session (nullptr on failure).
  UdpP2pSession* Punch(SimDuration budget = Seconds(15)) {
    punch_result_ = Status(ErrorCode::kInProgress);
    pa_->ConnectToPeer(2, [this](Result<UdpP2pSession*> r) {
      punch_result_ = r.ok() ? Status::Ok() : r.status();
      session_ = r.ok() ? *r : nullptr;
    });
    scenario_->net().RunFor(budget);
    return session_;
  }

  Scenario* scenario_ = nullptr;
  Fig5Topology topo5_;
  std::unique_ptr<RendezvousServer> server_;
  std::unique_ptr<UdpRendezvousClient> ca_, cb_;
  std::unique_ptr<UdpHolePuncher> pa_, pb_;
  UdpP2pSession* session_ = nullptr;
  UdpP2pSession* incoming_ = nullptr;
  Status punch_result_;
};

TEST_F(UdpPunchTest, Fig5ConeNatsSucceedOnPublicEndpoints) {
  BuildFig5(NatConfig{}, NatConfig{});
  UdpP2pSession* session = Punch();
  ASSERT_NE(session, nullptr) << punch_result_.ToString();
  EXPECT_FALSE(session->used_private_endpoint());
  EXPECT_EQ(session->peer_endpoint().ip, NatBIp());
  ASSERT_NE(incoming_, nullptr);

  // Data flows both ways over the punched path.
  Bytes a_got, b_got;
  session->SetReceiveCallback([&](const Bytes& p) { a_got = p; });
  incoming_->SetReceiveCallback([&](const Bytes& p) { b_got = p; });
  session->Send(Bytes{'h', 'i'});
  incoming_->Send(Bytes{'y', 'o'});
  scenario_->net().RunFor(Seconds(1));
  EXPECT_EQ(b_got, (Bytes{'h', 'i'}));
  EXPECT_EQ(a_got, (Bytes{'y', 'o'}));
  // And the rendezvous server relayed none of it.
  EXPECT_EQ(server_->stats().relayed_messages, 0u);
}

TEST_F(UdpPunchTest, Fig5RestrictedConeAlsoWorks) {
  // Filtering does not break punching — both sides' outbound probes open
  // their own filters (§3.4).
  NatConfig restricted;
  restricted.filtering = NatFiltering::kAddressAndPortDependent;
  BuildFig5(restricted, restricted);
  EXPECT_NE(Punch(), nullptr);
}

TEST_F(UdpPunchTest, Fig5SymmetricNatDefeatsBasicPunching) {
  BuildFig5(Symmetric(), NatConfig{});
  EXPECT_EQ(Punch(), nullptr);
  EXPECT_EQ(punch_result_.code(), ErrorCode::kTimedOut);
}

TEST_F(UdpPunchTest, Fig5SurvivesFirstPacketLoss) {
  // Probes retransmit every probe_interval, so moderate loss only delays
  // the punch.
  Scenario::Options options;
  options.internet_loss = 0.3;
  options.seed = 7;
  BuildFig5(NatConfig{}, NatConfig{}, options);
  EXPECT_NE(Punch(), nullptr);
}

TEST_F(UdpPunchTest, Fig4CommonNatPrefersPrivateEndpoints) {
  // §3.3: behind a common NAT the private-endpoint probes arrive over the
  // LAN and win (public ones need hairpin, absent here).
  auto topo = MakeFig4(NatConfig{});
  Setup(topo.scenario.get(), topo.server, topo.a, topo.b);
  UdpP2pSession* session = Punch();
  ASSERT_NE(session, nullptr) << punch_result_.ToString();
  EXPECT_TRUE(session->used_private_endpoint());
  EXPECT_TRUE(session->peer_endpoint().ip.IsPrivate());
}

TEST_F(UdpPunchTest, Fig4WithoutPrivateCandidatesNeedsHairpin) {
  // Disable private-endpoint probing ("assume hairpin" variant of §3.3):
  // with hairpin off the punch must fail; with hairpin on it must succeed
  // via the NAT loopback.
  for (bool hairpin : {false, true}) {
    NatConfig config;
    config.hairpin_udp = hairpin;
    auto topo = MakeFig4(config);
    Setup(topo.scenario.get(), topo.server, topo.a, topo.b);
    UdpPunchConfig punch_config;
    punch_config.try_private_endpoint = false;
    pa_ = std::make_unique<UdpHolePuncher>(ca_.get(), punch_config);
    pb_ = std::make_unique<UdpHolePuncher>(cb_.get(), punch_config);
    UdpP2pSession* session = Punch();
    if (hairpin) {
      ASSERT_NE(session, nullptr);
      EXPECT_FALSE(session->used_private_endpoint());
      EXPECT_GE(topo.site.nat->stats().hairpinned, 1u);
    } else {
      EXPECT_EQ(session, nullptr);
    }
  }
}

TEST_F(UdpPunchTest, Fig6MultiLevelNeedsHairpinOnIspNat) {
  // §3.5: the clients must use their global endpoints, which only works if
  // NAT C hairpins.
  for (bool hairpin : {false, true}) {
    NatConfig isp;
    isp.hairpin_udp = hairpin;
    auto topo = MakeFig6(isp, NatConfig{}, NatConfig{});
    Setup(topo.scenario.get(), topo.server, topo.a, topo.b);
    UdpP2pSession* session = Punch();
    if (hairpin) {
      ASSERT_NE(session, nullptr);
      EXPECT_GE(topo.isp.nat->stats().hairpinned, 1u);
    } else {
      EXPECT_EQ(session, nullptr);
    }
  }
}

TEST_F(UdpPunchTest, StrayHostCannotHijackSession) {
  // A host on B's LAN shares B's port and receives stray probes (§3.4);
  // without the nonce it must not become the session peer.
  BuildFig5(NatConfig{}, NatConfig{});
  // A's probes to B's private endpoint 10.1.1.3 leak onto A's LAN and die
  // (different subnet), so instead plant the stray on A's own subnet with
  // B's role: give A's site a second host bound to the same port that
  // replies to everything it hears.
  Host* stray = topo5_.scenario->AddHostToSite(&topo5_.site_a, "stray",
                                               Ipv4Address::FromOctets(10, 0, 0, 9));
  auto stray_sock = stray->udp().Bind(4321);
  ASSERT_TRUE(stray_sock.ok());
  (*stray_sock)->SetReceiveCallback([s = *stray_sock](const Endpoint& from, const Payload&) {
    s->SendTo(from, Bytes{'f', 'a', 'k', 'e'});  // not a valid PeerMessage
  });
  UdpP2pSession* session = Punch();
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->peer_endpoint().ip, NatBIp());  // the real B
}

TEST_F(UdpPunchTest, KeepAlivesSustainSessionThroughShortTimeouts) {
  NatConfig short_timeout;
  short_timeout.udp_timeout = Seconds(20);
  BuildFig5(short_timeout, short_timeout);
  UdpP2pSession* session = Punch();
  ASSERT_NE(session, nullptr);
  bool died = false;
  session->SetDeadCallback([&](Status) { died = true; });
  // Keep-alive interval (15s) < NAT timeout (20s): session survives.
  scenario_->net().RunFor(Seconds(90));
  EXPECT_FALSE(died);
  Bytes got;
  ASSERT_NE(incoming_, nullptr);
  incoming_->SetReceiveCallback([&](const Bytes& p) { got = p; });
  session->Send(Bytes{'o', 'k'});
  scenario_->net().RunFor(Seconds(1));
  EXPECT_EQ(got, (Bytes{'o', 'k'}));
}

TEST_F(UdpPunchTest, WithoutKeepAlivesSessionDies) {
  auto topo = MakeFig5(NatConfig{}, NatConfig{});
  NatConfig& config = topo.site_a.nat->mutable_config();
  config.udp_timeout = Seconds(20);
  topo.site_b.nat->mutable_config().udp_timeout = Seconds(20);
  Setup(topo.scenario.get(), topo.server, topo.a, topo.b);
  // The registrations with S stay alive (clients normally keep those warm);
  // §3.6's point is that this does NOT keep the p2p session's own NAT
  // timers fresh.
  ca_->StartKeepAlive(Seconds(10));
  cb_->StartKeepAlive(Seconds(10));
  UdpPunchConfig no_keepalive;
  no_keepalive.keepalives_enabled = false;
  no_keepalive.session_expiry = Seconds(40);
  pa_ = std::make_unique<UdpHolePuncher>(ca_.get(), no_keepalive);
  pb_ = std::make_unique<UdpHolePuncher>(cb_.get(), no_keepalive);
  UdpP2pSession* session = Punch();
  ASSERT_NE(session, nullptr);
  bool died = false;
  session->SetDeadCallback([&](Status) { died = true; });
  scenario_->net().RunFor(Seconds(60));
  EXPECT_TRUE(died);
  // Re-punching on demand (§3.6) restores connectivity.
  session_ = nullptr;
  EXPECT_NE(Punch(), nullptr);
}

// ---------------------------------------------------------------------------
// TCP hole punching
// ---------------------------------------------------------------------------

class TcpPunchTest : public ::testing::Test {
 protected:
  void Build(const NatConfig& nat_a, const NatConfig& nat_b,
             TcpAcceptPolicy policy_a = TcpAcceptPolicy::kBsd,
             TcpAcceptPolicy policy_b = TcpAcceptPolicy::kBsd) {
    Scenario::Options options;
    options.host_config.tcp.accept_policy = TcpAcceptPolicy::kBsd;  // server
    topo_ = MakeFig5(nat_a, nat_b, options);
    // Rebuild client hosts is not possible; instead create clients on
    // separate hosts with the right policies.
    HostConfig config_a;
    config_a.tcp.accept_policy = policy_a;
    config_a.tcp.initial_rto = Millis(500);
    HostConfig config_b;
    config_b.tcp.accept_policy = policy_b;
    config_b.tcp.initial_rto = Millis(500);
    a_ = topo_.scenario->net().Create<Host>("a2", config_a);
    int iface = a_->AttachTo(topo_.site_a.lan, Ipv4Address::FromOctets(10, 0, 0, 50));
    a_->AddDefaultRoute(iface, topo_.site_a.nat->iface_ip(0));
    b_ = topo_.scenario->net().Create<Host>("b2", config_b);
    iface = b_->AttachTo(topo_.site_b.lan, Ipv4Address::FromOctets(10, 1, 1, 50));
    b_->AddDefaultRoute(iface, topo_.site_b.nat->iface_ip(0));

    server_ = std::make_unique<RendezvousServer>(topo_.server, kServerPort);
    ASSERT_TRUE(server_->Start().ok());
    ca_ = std::make_unique<TcpRendezvousClient>(a_, server_->endpoint(), 1);
    cb_ = std::make_unique<TcpRendezvousClient>(b_, server_->endpoint(), 2);
    ca_->Connect(4321, [](Result<Endpoint>) {});
    cb_->Connect(4321, [](Result<Endpoint>) {});
    pa_ = std::make_unique<TcpHolePuncher>(ca_.get());
    pb_ = std::make_unique<TcpHolePuncher>(cb_.get());
    pb_->SetIncomingStreamCallback([this](TcpP2pStream* s) { incoming_ = s; });
    topo_.scenario->net().RunFor(Seconds(3));
    ASSERT_TRUE(ca_->registered());
    ASSERT_TRUE(cb_->registered());
  }

  TcpP2pStream* Punch(ConnectStrategy strategy = ConnectStrategy::kHolePunch,
                      SimDuration budget = Seconds(40)) {
    punch_result_ = Status(ErrorCode::kInProgress);
    pa_->ConnectToPeer(2, strategy, [this](Result<TcpP2pStream*> r) {
      punch_result_ = r.ok() ? Status::Ok() : r.status();
      stream_ = r.ok() ? *r : nullptr;
    });
    topo_.scenario->net().RunFor(budget);
    return stream_;
  }

  void ExpectDataFlows() {
    ASSERT_NE(stream_, nullptr);
    ASSERT_NE(incoming_, nullptr);
    Bytes a_got, b_got;
    stream_->SetReceiveCallback([&](const Bytes& p) { a_got = p; });
    incoming_->SetReceiveCallback([&](const Bytes& p) { b_got = p; });
    stream_->Send(Bytes{'p', 'i', 'n', 'g'});
    incoming_->Send(Bytes{'p', 'o', 'n', 'g'});
    topo_.scenario->net().RunFor(Seconds(2));
    EXPECT_EQ(b_got, (Bytes{'p', 'i', 'n', 'g'}));
    EXPECT_EQ(a_got, (Bytes{'p', 'o', 'n', 'g'}));
  }

  Fig5Topology topo_;
  Host* a_ = nullptr;
  Host* b_ = nullptr;
  std::unique_ptr<RendezvousServer> server_;
  std::unique_ptr<TcpRendezvousClient> ca_, cb_;
  std::unique_ptr<TcpHolePuncher> pa_, pb_;
  TcpP2pStream* stream_ = nullptr;
  TcpP2pStream* incoming_ = nullptr;
  Status punch_result_;
};

TEST_F(TcpPunchTest, BsdStacksPunchViaConnect) {
  Build(NatConfig{}, NatConfig{}, TcpAcceptPolicy::kBsd, TcpAcceptPolicy::kBsd);
  TcpP2pStream* stream = Punch();
  ASSERT_NE(stream, nullptr) << punch_result_.ToString();
  ExpectDataFlows();
}

TEST_F(TcpPunchTest, LinuxStacksPunchViaAccept) {
  // §4.4: with behavior-2 stacks on both ends the streams arrive via
  // accept() and all connects fail with EADDRINUSE.
  Build(NatConfig{}, NatConfig{}, TcpAcceptPolicy::kLinuxWindows,
        TcpAcceptPolicy::kLinuxWindows);
  TcpP2pStream* stream = Punch();
  ASSERT_NE(stream, nullptr) << punch_result_.ToString();
  ExpectDataFlows();
}

TEST_F(TcpPunchTest, MixedStacksPunch) {
  Build(NatConfig{}, NatConfig{}, TcpAcceptPolicy::kBsd, TcpAcceptPolicy::kLinuxWindows);
  TcpP2pStream* stream = Punch();
  ASSERT_NE(stream, nullptr) << punch_result_.ToString();
  ExpectDataFlows();
}

TEST_F(TcpPunchTest, RstingNatRecoveredByRetry) {
  // §5.2: a NAT that answers unsolicited SYNs with RST is "not necessarily
  // fatal, as long as the applications re-try" — but it costs time.
  NatConfig rsting;
  rsting.unsolicited_tcp = NatUnsolicitedTcp::kRst;
  Build(rsting, rsting);
  // Slow B's LAN so A's first SYN reaches NAT B before B's own SYN has
  // opened the hole — the asymmetric timing that actually draws the RST.
  topo_.site_b.lan->set_config(LanConfig{.latency = Millis(40)});
  TcpP2pStream* stream = Punch();
  ASSERT_NE(stream, nullptr) << punch_result_.ToString();
  EXPECT_GE(pa_->last_stats().refused + pb_->last_stats().refused, 1);
  ExpectDataFlows();
}

TEST_F(TcpPunchTest, SymmetricNatDefeatsTcpPunching) {
  Build(Symmetric(), NatConfig{});
  EXPECT_EQ(Punch(ConnectStrategy::kHolePunch, Seconds(40)), nullptr);
  EXPECT_EQ(punch_result_.code(), ErrorCode::kTimedOut);
}

TEST_F(TcpPunchTest, ReversalWorksWhenRequesterIsPublic) {
  // §2.3: A public (no NAT), B NATed; B cannot accept inbound, so A asks B
  // to connect back. Here the roles: requester A is public.
  Scenario::Options options;
  topo_ = MakeFig5(NatConfig{}, NatConfig{}, options);
  // Public host A on the internet directly.
  a_ = topo_.scenario->AddPublicHost("pubA", Ipv4Address::FromOctets(99, 1, 1, 1));
  b_ = topo_.b;
  server_ = std::make_unique<RendezvousServer>(topo_.server, kServerPort);
  ASSERT_TRUE(server_->Start().ok());
  ca_ = std::make_unique<TcpRendezvousClient>(a_, server_->endpoint(), 1);
  cb_ = std::make_unique<TcpRendezvousClient>(b_, server_->endpoint(), 2);
  ca_->Connect(4321, [](Result<Endpoint>) {});
  cb_->Connect(4321, [](Result<Endpoint>) {});
  pa_ = std::make_unique<TcpHolePuncher>(ca_.get());
  pb_ = std::make_unique<TcpHolePuncher>(cb_.get());
  pb_->SetIncomingStreamCallback([this](TcpP2pStream* s) { incoming_ = s; });
  topo_.scenario->net().RunFor(Seconds(3));

  TcpP2pStream* stream = Punch(ConnectStrategy::kReversal);
  ASSERT_NE(stream, nullptr) << punch_result_.ToString();
  EXPECT_TRUE(stream->via_accept());  // requester's stream arrived inbound
  ExpectDataFlows();
}

TEST_F(TcpPunchTest, SequentialPunchingWorksOnConeNats) {
  Build(NatConfig{}, NatConfig{});
  SequentialPuncher sa(ca_.get());
  SequentialPuncher sb(cb_.get());
  TcpP2pStream* incoming = nullptr;
  sb.SetIncomingStreamCallback([&](TcpP2pStream* s) { incoming = s; });
  Result<TcpP2pStream*> result = Status(ErrorCode::kInProgress);
  sa.ConnectToPeer(2, [&](Result<TcpP2pStream*> r) { result = std::move(r); });
  topo_.scenario->net().RunFor(Seconds(30));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(incoming, nullptr);
  // §4.5: the procedure consumed both sides' connections to S.
  EXPECT_EQ(sa.server_connections_consumed(), 1);
  EXPECT_EQ(sb.server_connections_consumed(), 1);

  Bytes got;
  incoming->SetReceiveCallback([&](const Bytes& p) { got = p; });
  (*result)->Send(Bytes{'s', 'e', 'q'});
  topo_.scenario->net().RunFor(Seconds(2));
  EXPECT_EQ(got, (Bytes{'s', 'e', 'q'}));
}

// ---------------------------------------------------------------------------
// Relay, prober, prediction, connector
// ---------------------------------------------------------------------------

TEST(RelayTest, ChannelsCarryDataThroughServer) {
  auto topo = MakeFig5(Symmetric(), Symmetric());  // punching would fail
  RendezvousServer server(topo.server, kServerPort);
  ASSERT_TRUE(server.Start().ok());
  UdpRendezvousClient ca(topo.a, server.endpoint(), 1);
  UdpRendezvousClient cb(topo.b, server.endpoint(), 2);
  ca.Register(4321, [](Result<Endpoint>) {});
  cb.Register(4321, [](Result<Endpoint>) {});
  RelayHub hub_a(&ca);
  RelayHub hub_b(&cb);
  topo.scenario->net().RunFor(Seconds(2));

  RelayChannel* incoming = nullptr;
  hub_b.SetIncomingChannelCallback([&](RelayChannel* c) { incoming = c; });
  RelayChannel* to_b = hub_a.OpenChannel(2);
  Bytes got;
  to_b->Send(Bytes{'v', 'i', 'a', 'S'});
  topo.scenario->net().RunFor(Seconds(2));
  ASSERT_NE(incoming, nullptr);
  incoming->SetReceiveCallback([&](const Bytes& p) { got = p; });
  to_b->Send(Bytes{'m', 'o', 'r', 'e'});
  topo.scenario->net().RunFor(Seconds(2));
  EXPECT_EQ(got, (Bytes{'m', 'o', 'r', 'e'}));
  EXPECT_EQ(server.stats().relayed_messages, 2u);
  EXPECT_EQ(incoming->messages_received(), 2u);
}

class ProberTest : public ::testing::Test {
 protected:
  void Build(const NatConfig& nat) {
    topo_ = MakeFig5(nat, NatConfig{});
    s1_host_ = topo_.server;
    s2_host_ = topo_.scenario->AddPublicHost("S2", Ipv4Address::FromOctets(18, 181, 0, 32));
    s1_ = std::make_unique<StunLikeServer>(s1_host_, 3478);
    s2_ = std::make_unique<StunLikeServer>(s2_host_, 3478);
    s1_->SetPartner(s2_->endpoint());
    s2_->SetPartner(s1_->endpoint());
    ASSERT_TRUE(s1_->Start().ok());
    ASSERT_TRUE(s2_->Start().ok());
  }

  NatProbeReport Probe() {
    NatProber prober(topo_.a, s1_->endpoint(), s2_->endpoint());
    Result<NatProbeReport> result = Status(ErrorCode::kInProgress);
    prober.Probe(4321, [&](Result<NatProbeReport> r) { result = std::move(r); });
    topo_.scenario->net().RunFor(Seconds(15));
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? *result : NatProbeReport{};
  }

  Fig5Topology topo_;
  Host* s1_host_ = nullptr;
  Host* s2_host_ = nullptr;
  std::unique_ptr<StunLikeServer> s1_, s2_;
};

TEST_F(ProberTest, ClassifiesPortRestrictedCone) {
  Build(NatConfig{});  // EI mapping, APD filtering (default)
  NatProbeReport report = Probe();
  EXPECT_TRUE(report.behind_nat);
  EXPECT_EQ(report.mapping, NatMapping::kEndpointIndependent);
  EXPECT_EQ(report.filtering, NatFiltering::kAddressAndPortDependent);
  EXPECT_EQ(report.port_delta, 0);
  EXPECT_EQ(report.public_endpoint.ip, NatAIp());
}

TEST_F(ProberTest, ClassifiesFullCone) {
  NatConfig full;
  full.filtering = NatFiltering::kEndpointIndependent;
  Build(full);
  NatProbeReport report = Probe();
  EXPECT_EQ(report.mapping, NatMapping::kEndpointIndependent);
  EXPECT_EQ(report.filtering, NatFiltering::kEndpointIndependent);
}

TEST_F(ProberTest, ClassifiesRestrictedCone) {
  NatConfig restricted;
  restricted.filtering = NatFiltering::kAddressDependent;
  Build(restricted);
  NatProbeReport report = Probe();
  EXPECT_EQ(report.mapping, NatMapping::kEndpointIndependent);
  EXPECT_EQ(report.filtering, NatFiltering::kAddressDependent);
}

TEST_F(ProberTest, ClassifiesSymmetricWithStride) {
  Build(Symmetric());  // sequential allocation
  NatProbeReport report = Probe();
  EXPECT_EQ(report.mapping, NatMapping::kAddressAndPortDependent);
  EXPECT_EQ(report.port_delta, 1);  // sequential allocator stride
}

TEST_F(ProberTest, DetectsNoNat) {
  Build(NatConfig{});
  NatProber prober(s2_host_, s1_->endpoint(), s2_->endpoint());
  Result<NatProbeReport> result = Status(ErrorCode::kInProgress);
  prober.Probe(5555, [&](Result<NatProbeReport> r) { result = std::move(r); });
  topo_.scenario->net().RunFor(Seconds(15));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->behind_nat);
  EXPECT_EQ(result->mapping, NatMapping::kEndpointIndependent);
}

TEST(PredictionTest, PunchesThroughSequentialSymmetricNats) {
  // §5.1: prediction works "much of the time" against predictable
  // symmetric NATs in quiet conditions.
  auto topo = MakeFig5(Symmetric(), Symmetric());
  RendezvousServer server(topo.server, kServerPort);
  ASSERT_TRUE(server.Start().ok());
  Host* s2_host = topo.scenario->AddPublicHost("S2", Ipv4Address::FromOctets(18, 181, 0, 32));
  StunLikeServer stun1(topo.server, 3478);
  StunLikeServer stun2(s2_host, 3478);
  ASSERT_TRUE(stun1.Start().ok());
  ASSERT_TRUE(stun2.Start().ok());

  UdpRendezvousClient ca(topo.a, server.endpoint(), 1);
  UdpRendezvousClient cb(topo.b, server.endpoint(), 2);
  ca.Register(4321, [](Result<Endpoint>) {});
  cb.Register(4321, [](Result<Endpoint>) {});
  UdpHolePuncher pa(&ca);
  UdpHolePuncher pb(&cb);
  PredictivePuncher predict_a(&pa, stun1.endpoint(), stun2.endpoint());
  PredictivePuncher predict_b(&pb, stun1.endpoint(), stun2.endpoint());
  UdpP2pSession* incoming = nullptr;
  pb.SetIncomingSessionCallback([&](UdpP2pSession* s) { incoming = s; });
  topo.scenario->net().RunFor(Seconds(2));

  Result<UdpP2pSession*> result = Status(ErrorCode::kInProgress);
  predict_a.ConnectToPeer(2, [&](Result<UdpP2pSession*> r) { result = std::move(r); });
  topo.scenario->net().RunFor(Seconds(20));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(incoming, nullptr);

  Bytes got;
  incoming->SetReceiveCallback([&](const Bytes& p) { got = p; });
  (*result)->Send(Bytes{'s', 'y', 'm'});
  topo.scenario->net().RunFor(Seconds(1));
  EXPECT_EQ(got, (Bytes{'s', 'y', 'm'}));
}

TEST(ConnectorTest, PunchesWhenPossible) {
  auto topo = MakeFig5(NatConfig{}, NatConfig{});
  RendezvousServer server(topo.server, kServerPort);
  ASSERT_TRUE(server.Start().ok());
  UdpRendezvousClient ca(topo.a, server.endpoint(), 1);
  UdpRendezvousClient cb(topo.b, server.endpoint(), 2);
  ca.Register(4321, [](Result<Endpoint>) {});
  cb.Register(4321, [](Result<Endpoint>) {});
  UdpConnector conn_a(&ca);
  UdpConnector conn_b(&cb);
  topo.scenario->net().RunFor(Seconds(2));

  Result<P2pChannel*> result = Status(ErrorCode::kInProgress);
  conn_a.Connect(2, [&](Result<P2pChannel*> r) { result = std::move(r); });
  topo.scenario->net().RunFor(Seconds(15));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->kind(), P2pChannel::Kind::kPunched);
}

TEST(ConnectorTest, TcpPunchesWhenPossible) {
  auto topo = MakeFig5(NatConfig{}, NatConfig{});
  RendezvousServer server(topo.server, kServerPort);
  ASSERT_TRUE(server.Start().ok());
  TcpRendezvousClient ca(topo.a, server.endpoint(), 1);
  TcpRendezvousClient cb(topo.b, server.endpoint(), 2);
  ca.Connect(4321, [](Result<Endpoint>) {});
  cb.Connect(4321, [](Result<Endpoint>) {});
  TcpConnector conn_a(&ca);
  TcpConnector conn_b(&cb);
  TcpChannel* incoming = nullptr;
  conn_b.SetIncomingChannelCallback([&](TcpChannel* c) { incoming = c; });
  topo.scenario->net().RunFor(Seconds(3));

  Result<TcpChannel*> result = Status(ErrorCode::kInProgress);
  conn_a.Connect(2, [&](Result<TcpChannel*> r) { result = std::move(r); });
  topo.scenario->net().RunFor(Seconds(35));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->kind(), TcpChannel::Kind::kStream);
  ASSERT_NE(incoming, nullptr);
  Bytes got;
  incoming->SetReceiveCallback([&](const Bytes& p) { got = p; });
  (*result)->Send(Bytes{'t', 'c', 'p'});
  topo.scenario->net().RunFor(Seconds(2));
  EXPECT_EQ(got, (Bytes{'t', 'c', 'p'}));
}

TEST(ConnectorTest, TcpFallsBackToRelayOnSymmetricNats) {
  auto topo = MakeFig5(Symmetric(), Symmetric());
  RendezvousServer server(topo.server, kServerPort);
  ASSERT_TRUE(server.Start().ok());
  TcpRendezvousClient ca(topo.a, server.endpoint(), 1);
  TcpRendezvousClient cb(topo.b, server.endpoint(), 2);
  ca.Connect(4321, [](Result<Endpoint>) {});
  cb.Connect(4321, [](Result<Endpoint>) {});
  TcpConnector::Options options;
  options.punch.punch_timeout = Seconds(8);
  TcpConnector conn_a(&ca, options);
  TcpConnector conn_b(&cb, options);
  TcpChannel* incoming = nullptr;
  conn_b.SetIncomingChannelCallback([&](TcpChannel* c) { incoming = c; });
  topo.scenario->net().RunFor(Seconds(3));

  Result<TcpChannel*> result = Status(ErrorCode::kInProgress);
  conn_a.Connect(2, [&](Result<TcpChannel*> r) { result = std::move(r); });
  topo.scenario->net().RunFor(Seconds(15));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->kind(), TcpChannel::Kind::kRelayed);
  Bytes got;
  (*result)->Send(Bytes{'v'});  // creates B's channel
  topo.scenario->net().RunFor(Seconds(2));
  ASSERT_NE(incoming, nullptr);
  incoming->SetReceiveCallback([&](const Bytes& p) { got = p; });
  (*result)->Send(Bytes{'i', 'a', 'S'});
  topo.scenario->net().RunFor(Seconds(2));
  EXPECT_EQ(got, (Bytes{'i', 'a', 'S'}));
}

TEST(ConnectorTest, FallsBackToRelayOnSymmetricNats) {
  auto topo = MakeFig5(Symmetric(), Symmetric());
  RendezvousServer server(topo.server, kServerPort);
  ASSERT_TRUE(server.Start().ok());
  UdpRendezvousClient ca(topo.a, server.endpoint(), 1);
  UdpRendezvousClient cb(topo.b, server.endpoint(), 2);
  ca.Register(4321, [](Result<Endpoint>) {});
  cb.Register(4321, [](Result<Endpoint>) {});
  UdpConnector conn_a(&ca);
  UdpConnector conn_b(&cb);
  P2pChannel* incoming = nullptr;
  conn_b.SetIncomingChannelCallback([&](P2pChannel* c) { incoming = c; });
  topo.scenario->net().RunFor(Seconds(2));

  Result<P2pChannel*> result = Status(ErrorCode::kInProgress);
  conn_a.Connect(2, [&](Result<P2pChannel*> r) { result = std::move(r); });
  topo.scenario->net().RunFor(Seconds(20));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->kind(), P2pChannel::Kind::kRelayed);

  Bytes got;
  (*result)->Send(Bytes{'r', 'l', 'y'});
  topo.scenario->net().RunFor(Seconds(2));
  ASSERT_NE(incoming, nullptr);
  incoming->SetReceiveCallback([&](const Bytes& p) { got = p; });
  (*result)->Send(Bytes{'o', 'k'});
  topo.scenario->net().RunFor(Seconds(2));
  EXPECT_EQ(got, (Bytes{'o', 'k'}));
  EXPECT_GE(server.stats().relayed_messages, 2u);
}

}  // namespace
}  // namespace natpunch
