// Tests for the rendezvous protocol: message codec, framing, registration
// (public/private endpoint recording), connect introductions, relaying, and
// behavior through NATs.

#include <gtest/gtest.h>

#include "src/rendezvous/client.h"
#include "src/rendezvous/messages.h"
#include "src/rendezvous/server.h"
#include "src/scenario/scenario.h"

namespace natpunch {
namespace {

TEST(RendezvousCodecTest, RoundTripAllFields) {
  RendezvousMessage msg;
  msg.type = RvMsgType::kConnectForward;
  msg.client_id = 0x1122334455667788ULL;
  msg.target_id = 42;
  msg.nonce = 0xdeadbeefcafef00dULL;
  msg.strategy = ConnectStrategy::kSequential;
  msg.public_ep = Endpoint(Ipv4Address::FromOctets(155, 99, 25, 11), 62000);
  msg.private_ep = Endpoint(Ipv4Address::FromOctets(10, 0, 0, 1), 4321);
  msg.payload = Bytes{9, 8, 7};

  for (bool obfuscate : {false, true}) {
    auto decoded = DecodeRendezvousMessage(EncodeRendezvousMessage(msg, obfuscate), obfuscate);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->type, msg.type);
    EXPECT_EQ(decoded->client_id, msg.client_id);
    EXPECT_EQ(decoded->target_id, msg.target_id);
    EXPECT_EQ(decoded->nonce, msg.nonce);
    EXPECT_EQ(decoded->strategy, msg.strategy);
    EXPECT_EQ(decoded->public_ep, msg.public_ep);
    EXPECT_EQ(decoded->private_ep, msg.private_ep);
    EXPECT_EQ(decoded->payload, msg.payload);
  }
}

TEST(RendezvousCodecTest, ObfuscationHidesAddressBytes) {
  RendezvousMessage msg;
  msg.type = RvMsgType::kRegister;
  msg.private_ep = Endpoint(Ipv4Address::FromOctets(10, 0, 0, 1), 4321);
  const Bytes plain = EncodeRendezvousMessage(msg, false);
  const Bytes obf = EncodeRendezvousMessage(msg, true);
  // The raw address bytes 10.0.0.1 appear in the plain encoding only.
  const Bytes needle{10, 0, 0, 1};
  auto contains = [&](const Bytes& hay) {
    return std::search(hay.begin(), hay.end(), needle.begin(), needle.end()) != hay.end();
  };
  EXPECT_TRUE(contains(plain));
  EXPECT_FALSE(contains(obf));
}

TEST(RendezvousCodecTest, RejectsGarbage) {
  EXPECT_FALSE(DecodeRendezvousMessage(Bytes{}, false).has_value());
  EXPECT_FALSE(DecodeRendezvousMessage(Bytes{1, 2, 3}, false).has_value());
  Bytes truncated = EncodeRendezvousMessage(RendezvousMessage{}, false);
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(DecodeRendezvousMessage(truncated, false).has_value());
  // Bad type byte.
  Bytes bad_type = EncodeRendezvousMessage(RendezvousMessage{}, false);
  bad_type[2] = 0xee;
  EXPECT_FALSE(DecodeRendezvousMessage(bad_type, false).has_value());
}

TEST(FramerTest, SplitsCoalescedAndFragmented) {
  MessageFramer framer;
  const Bytes m1{1, 2, 3};
  const Bytes m2{4, 5};
  Bytes stream = MessageFramer::Frame(m1);
  const Bytes f2 = MessageFramer::Frame(m2);
  stream.insert(stream.end(), f2.begin(), f2.end());

  // Feed in awkward 2-byte chunks.
  std::vector<Bytes> got;
  for (size_t i = 0; i < stream.size(); i += 2) {
    const size_t n = std::min<size_t>(2, stream.size() - i);
    auto out = framer.Append(Bytes(stream.begin() + i, stream.begin() + i + n));
    got.insert(got.end(), out.begin(), out.end());
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], m1);
  EXPECT_EQ(got[1], m2);
}

TEST(FramerTest, EmptyMessage) {
  MessageFramer framer;
  auto got = framer.Append(MessageFramer::Frame(Bytes{}));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_TRUE(got[0].empty());
}

class RendezvousTest : public ::testing::Test {
 protected:
  void Build(const NatConfig& nat_a, const NatConfig& nat_b) {
    topo_ = MakeFig5(nat_a, nat_b);
    server_ = std::make_unique<RendezvousServer>(topo_.server, kServerPort);
    ASSERT_TRUE(server_->Start().ok());
  }

  Fig5Topology topo_;
  std::unique_ptr<RendezvousServer> server_;
};

TEST_F(RendezvousTest, UdpRegisterRecordsBothEndpoints) {
  Build(NatConfig{}, NatConfig{});
  UdpRendezvousClient client(topo_.a, server_->endpoint(), /*client_id=*/1);
  Result<Endpoint> got = Status(ErrorCode::kInProgress);
  client.Register(4321, [&](Result<Endpoint> r) { got = std::move(r); });
  topo_.scenario->net().RunFor(Seconds(2));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, Endpoint(NatAIp(), 62000));  // observed public endpoint
  EXPECT_EQ(client.public_endpoint(), Endpoint(NatAIp(), 62000));
  EXPECT_EQ(client.private_endpoint(), Endpoint(topo_.a->primary_address(), 4321));
  EXPECT_EQ(server_->stats().udp_registrations, 1u);
}

TEST_F(RendezvousTest, RegistrationRetriesThroughLoss) {
  Scenario::Options options;
  options.internet_loss = 0.4;
  options.seed = 3;
  topo_ = MakeFig5(NatConfig{}, NatConfig{}, options);
  server_ = std::make_unique<RendezvousServer>(topo_.server, kServerPort);
  ASSERT_TRUE(server_->Start().ok());
  UdpRendezvousClient client(topo_.a, server_->endpoint(), 1);
  Result<Endpoint> got = Status(ErrorCode::kInProgress);
  client.Register(4321, [&](Result<Endpoint> r) { got = std::move(r); });
  topo_.scenario->net().RunFor(Seconds(10));
  EXPECT_TRUE(got.ok());
}

TEST_F(RendezvousTest, ConnectRequestIntroducesBothSides) {
  Build(NatConfig{}, NatConfig{});
  UdpRendezvousClient ca(topo_.a, server_->endpoint(), 1);
  UdpRendezvousClient cb(topo_.b, server_->endpoint(), 2);
  ca.Register(4321, [](Result<Endpoint>) {});
  cb.Register(4321, [](Result<Endpoint>) {});
  topo_.scenario->net().RunFor(Seconds(2));

  RendezvousMessage fwd_seen;
  bool got_fwd = false;
  cb.SetConnectForwardHandler(ConnectStrategy::kHolePunch, [&](const RendezvousMessage& m) {
    fwd_seen = m;
    got_fwd = true;
  });
  Result<RendezvousMessage> ack = Status(ErrorCode::kInProgress);
  ca.RequestConnect(2, ConnectStrategy::kHolePunch, /*nonce=*/777,
                    [&](Result<RendezvousMessage> r) { ack = std::move(r); });
  topo_.scenario->net().RunFor(Seconds(2));

  ASSERT_TRUE(ack.ok());
  // A learns B's endpoints (Fig. 5: B public = 138.76.29.7:62000 here,
  // because each NAT starts its sequential allocator at 62000).
  EXPECT_EQ(ack->public_ep.ip, NatBIp());
  EXPECT_EQ(ack->private_ep, cb.private_endpoint());
  EXPECT_EQ(ack->nonce, 777u);
  // B learns A's endpoints.
  ASSERT_TRUE(got_fwd);
  EXPECT_EQ(fwd_seen.client_id, 1u);
  EXPECT_EQ(fwd_seen.public_ep, ca.public_endpoint());
  EXPECT_EQ(fwd_seen.private_ep, ca.private_endpoint());
  EXPECT_EQ(fwd_seen.nonce, 777u);
  EXPECT_EQ(fwd_seen.strategy, ConnectStrategy::kHolePunch);
}

TEST_F(RendezvousTest, ConnectRequestUnknownPeerFails) {
  Build(NatConfig{}, NatConfig{});
  UdpRendezvousClient ca(topo_.a, server_->endpoint(), 1);
  ca.Register(4321, [](Result<Endpoint>) {});
  topo_.scenario->net().RunFor(Seconds(2));
  Result<RendezvousMessage> ack = Status(ErrorCode::kInProgress);
  ca.RequestConnect(99, ConnectStrategy::kHolePunch, 1,
                    [&](Result<RendezvousMessage> r) { ack = std::move(r); });
  topo_.scenario->net().RunFor(Seconds(2));
  EXPECT_FALSE(ack.ok());
  EXPECT_EQ(server_->stats().unknown_targets, 1u);
}

TEST_F(RendezvousTest, UdpRelayRoundTrip) {
  Build(NatConfig{}, NatConfig{});
  UdpRendezvousClient ca(topo_.a, server_->endpoint(), 1);
  UdpRendezvousClient cb(topo_.b, server_->endpoint(), 2);
  ca.Register(4321, [](Result<Endpoint>) {});
  cb.Register(4321, [](Result<Endpoint>) {});
  topo_.scenario->net().RunFor(Seconds(2));

  uint64_t from = 0;
  Bytes got;
  cb.SetRelayHandler([&](uint64_t f, const Bytes& p) {
    from = f;
    got = p;
    cb.SendRelay(f, Bytes{'p', 'o', 'n', 'g'});
  });
  Bytes back;
  ca.SetRelayHandler([&](uint64_t, const Bytes& p) { back = p; });
  ca.SendRelay(2, Bytes{'p', 'i', 'n', 'g'});
  topo_.scenario->net().RunFor(Seconds(2));
  EXPECT_EQ(from, 1u);
  EXPECT_EQ(got, (Bytes{'p', 'i', 'n', 'g'}));
  EXPECT_EQ(back, (Bytes{'p', 'o', 'n', 'g'}));
  EXPECT_EQ(server_->stats().relayed_messages, 2u);
  EXPECT_EQ(server_->stats().relayed_bytes, 8u);
}

TEST_F(RendezvousTest, TcpRegisterAndIntroduce) {
  Build(NatConfig{}, NatConfig{});
  TcpRendezvousClient ca(topo_.a, server_->endpoint(), 1);
  TcpRendezvousClient cb(topo_.b, server_->endpoint(), 2);
  Result<Endpoint> ra = Status(ErrorCode::kInProgress);
  Result<Endpoint> rb = Status(ErrorCode::kInProgress);
  ca.Connect(4321, [&](Result<Endpoint> r) { ra = std::move(r); });
  cb.Connect(4321, [&](Result<Endpoint> r) { rb = std::move(r); });
  topo_.scenario->net().RunFor(Seconds(3));
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->ip, NatAIp());
  EXPECT_EQ(rb->ip, NatBIp());

  bool got_fwd = false;
  cb.SetConnectForwardHandler(ConnectStrategy::kHolePunch,
                              [&](const RendezvousMessage&) { got_fwd = true; });
  Result<RendezvousMessage> ack = Status(ErrorCode::kInProgress);
  ca.RequestConnect(2, ConnectStrategy::kHolePunch, 5,
                    [&](Result<RendezvousMessage> r) { ack = std::move(r); });
  topo_.scenario->net().RunFor(Seconds(2));
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->public_ep, cb.public_endpoint());
  EXPECT_TRUE(got_fwd);
}

TEST_F(RendezvousTest, ObfuscationDefeatsPayloadRewritingNat) {
  // The bad NAT rewrites A's private address inside the registration body;
  // with obfuscation the server still records the true private endpoint.
  NatConfig bad;
  bad.rewrite_payload_addresses = true;
  for (bool obfuscate : {false, true}) {
    topo_ = MakeFig5(bad, NatConfig{});
    RendezvousServer::Options srv_opts;
    srv_opts.obfuscate_addresses = obfuscate;
    server_ = std::make_unique<RendezvousServer>(topo_.server, kServerPort, srv_opts);
    ASSERT_TRUE(server_->Start().ok());

    RendezvousClientOptions cli_opts;
    cli_opts.obfuscate_addresses = obfuscate;
    UdpRendezvousClient ca(topo_.a, server_->endpoint(), 1, cli_opts);
    UdpRendezvousClient cb(topo_.b, server_->endpoint(), 2, cli_opts);
    ca.Register(4321, [](Result<Endpoint>) {});
    cb.Register(4321, [](Result<Endpoint>) {});
    topo_.scenario->net().RunFor(Seconds(2));

    RendezvousMessage fwd;
    bool got = false;
    cb.SetConnectForwardHandler(ConnectStrategy::kHolePunch, [&](const RendezvousMessage& m) {
      fwd = m;
      got = true;
    });
    ca.RequestConnect(2, ConnectStrategy::kHolePunch, 1, [](Result<RendezvousMessage>) {});
    topo_.scenario->net().RunFor(Seconds(2));
    ASSERT_TRUE(got);
    if (obfuscate) {
      EXPECT_EQ(fwd.private_ep, ca.private_endpoint());  // survived
    } else {
      EXPECT_NE(fwd.private_ep, ca.private_endpoint());  // mangled by NAT
      EXPECT_EQ(fwd.private_ep.ip, NatAIp());            // into the public IP
    }
  }
}

TEST_F(RendezvousTest, KeepAliveSustainsMapping) {
  NatConfig short_timeout;
  short_timeout.udp_timeout = Seconds(20);
  Build(short_timeout, NatConfig{});
  UdpRendezvousClient ca(topo_.a, server_->endpoint(), 1);
  ca.Register(4321, [](Result<Endpoint>) {});
  topo_.scenario->net().RunFor(Seconds(2));
  ca.StartKeepAlive(Seconds(10));
  topo_.scenario->net().RunFor(Seconds(60));
  EXPECT_EQ(topo_.site_a.nat->active_mapping_count(), 1u);
  ca.StopKeepAlive();
  topo_.scenario->net().RunFor(Seconds(30));
  EXPECT_EQ(topo_.site_a.nat->active_mapping_count(), 0u);
}

}  // namespace
}  // namespace natpunch
