// Chaos engineering: a scripted, seeded fault timeline (FaultScheduler)
// driven against live hole-punched sessions, and the self-healing wrapper
// (ResilientSession) that recovers them.
//
// The three pillars:
//   1. Determinism — the same seed and the same fault plan reproduce the
//      same trace bit-for-bit, so any chaos failure is replayable.
//   2. Recovery — a session killed by a NAT reboot comes back via automatic
//      re-punch with bounded downtime (§3.6 "recover on demand", automated).
//   3. Fallback — when both peers sit behind symmetric NATs and re-punching
//      is structurally impossible, the session lands on the TURN relay and
//      data still flows (§2.2's fallback hierarchy).

#include <gtest/gtest.h>

#include "src/core/attacker.h"
#include "src/core/resilient_session.h"
#include "src/core/turn.h"
#include "src/netsim/fault.h"
#include "src/rendezvous/server.h"
#include "src/scenario/scenario.h"
#include "src/transport/host.h"

namespace natpunch {
namespace {

SimTime At(int64_t seconds) { return SimTime() + Seconds(seconds); }

// A full chaos soak: Fig. 5 pair under burst loss, a latency spike, a LAN
// partition, a NAT reboot, and a rendezvous server restart. Returns
// everything observable so two runs can be compared field by field.
struct ChaosOutcome {
  std::string trace;
  size_t faults_executed = 0;
  int recoveries = 0;
  int repunch_attempts = 0;
  int64_t downtime_micros = 0;
  int b_received = 0;
  uint64_t server_restarts_seen = 0;
  bool direct_at_end = false;
};

ChaosOutcome RunChaosSoak(uint64_t seed) {
  Scenario::Options options;
  options.seed = seed;
  Fig5Topology topo = MakeFig5(NatConfig{}, NatConfig{}, options);
  Network& net = topo.scenario->net();
  net.trace().set_enabled(true);

  RendezvousServer server(topo.server, kServerPort);
  EXPECT_TRUE(server.Start().ok());
  UdpRendezvousClient ca(topo.a, server.endpoint(), 1);
  UdpRendezvousClient cb(topo.b, server.endpoint(), 2);
  ca.Register(4321, [](Result<Endpoint>) {});
  cb.Register(4321, [](Result<Endpoint>) {});
  ca.StartKeepAlive(Seconds(1));
  cb.StartKeepAlive(Seconds(1));

  UdpPunchConfig punch;
  punch.keepalive_interval = Seconds(1);
  punch.session_expiry = Seconds(5);
  UdpHolePuncher pa(&ca, punch);
  UdpHolePuncher pb(&cb, punch);
  ResilientSessionConfig resilient;
  resilient.backoff_initial = Millis(500);
  resilient.max_repunch_attempts = 4;
  ResilientSessionManager ma(&pa, resilient);
  ResilientSessionManager mb(&pb, resilient);

  ChaosOutcome out;
  mb.SetIncomingSessionCallback([&out](ResilientSession* s) {
    s->SetReceiveCallback([&out](const Bytes&) { ++out.b_received; });
  });
  ResilientSession* session = nullptr;
  net.event_loop().ScheduleAfter(Seconds(2), [&] {
    ma.ConnectToPeer(2, [&](Result<ResilientSession*> r) {
      if (r.ok()) {
        session = *r;
      }
    });
  });
  // Application traffic pump: one datagram toward B every 500 ms.
  std::function<void()> pump = [&] {
    if (session != nullptr && session->alive()) {
      session->Send(Bytes{0xAB});
    }
    net.event_loop().ScheduleAfter(Millis(500), pump);
  };
  net.event_loop().ScheduleAfter(Seconds(3), pump);

  FaultScheduler faults(&net);
  GilbertElliottConfig burst;
  burst.enabled = true;
  burst.p_good_to_bad = 0.05;
  burst.p_bad_to_good = 0.3;
  burst.loss_bad = 0.9;
  faults.BurstLoss(At(6), topo.scenario->internet(), burst, Seconds(3));
  faults.LatencySpike(At(10), topo.scenario->internet(), Millis(200), Seconds(3));
  faults.LinkDown(At(14), topo.site_b.lan, Seconds(2));
  faults.At(At(20), "nat A reboot", [&] { topo.site_a.nat->Reboot(); });
  faults.At(At(30), "rendezvous restart", [&] {
    server.Stop();
    EXPECT_TRUE(server.Start().ok());
  });

  net.RunFor(Seconds(50));

  out.faults_executed = faults.faults_executed();
  if (session != nullptr) {
    out.recoveries = static_cast<int>(session->recoveries().size());
    out.repunch_attempts = session->total_repunch_attempts();
    out.downtime_micros = session->total_downtime().micros();
    out.direct_at_end = session->path() == ResilientSession::Path::kDirect;
  }
  out.server_restarts_seen = ca.restarts_detected();
  out.trace = net.trace().Dump();
  return out;
}

TEST(ChaosDeterminismTest, SameSeedSamePlanBitIdenticalTraceAndOutcome) {
  ChaosOutcome first = RunChaosSoak(77);
  ChaosOutcome second = RunChaosSoak(77);

  // The run itself must have exercised the machinery.
  // burst start/end + spike/restore + link down/up + NAT reboot + restart.
  EXPECT_EQ(first.faults_executed, 8u);
  EXPECT_GE(first.recoveries, 1);
  EXPECT_GT(first.b_received, 0);
  EXPECT_EQ(first.server_restarts_seen, 1u);
  EXPECT_TRUE(first.direct_at_end);

  // Bit-identical replay.
  EXPECT_EQ(first.faults_executed, second.faults_executed);
  EXPECT_EQ(first.recoveries, second.recoveries);
  EXPECT_EQ(first.repunch_attempts, second.repunch_attempts);
  EXPECT_EQ(first.downtime_micros, second.downtime_micros);
  EXPECT_EQ(first.b_received, second.b_received);
  EXPECT_EQ(first.server_restarts_seen, second.server_restarts_seen);
  ASSERT_EQ(first.trace.size(), second.trace.size());
  EXPECT_TRUE(first.trace == second.trace) << "same seed + same plan must replay bit-identically";

  // And a different seed genuinely perturbs the world.
  ChaosOutcome other = RunChaosSoak(78);
  EXPECT_FALSE(first.trace == other.trace);
}

// Shared harness for the recovery tests.
class ChaosRecoveryTest : public ::testing::Test {
 protected:
  void Build(const NatConfig& nat_a, const NatConfig& nat_b, Endpoint turn_server,
             SimDuration punch_timeout, int max_repunch) {
    topo_ = MakeFig5(nat_a, nat_b);
    server_ = std::make_unique<RendezvousServer>(topo_.server, kServerPort);
    ASSERT_TRUE(server_->Start().ok());
    ca_ = std::make_unique<UdpRendezvousClient>(topo_.a, server_->endpoint(), 1);
    cb_ = std::make_unique<UdpRendezvousClient>(topo_.b, server_->endpoint(), 2);
    ca_->Register(4321, [](Result<Endpoint>) {});
    cb_->Register(4321, [](Result<Endpoint>) {});
    ca_->StartKeepAlive(Seconds(1));
    cb_->StartKeepAlive(Seconds(1));
    UdpPunchConfig punch;
    punch.keepalive_interval = Seconds(1);
    punch.session_expiry = Seconds(5);
    punch.punch_timeout = punch_timeout;
    pa_ = std::make_unique<UdpHolePuncher>(ca_.get(), punch);
    pb_ = std::make_unique<UdpHolePuncher>(cb_.get(), punch);
    ResilientSessionConfig resilient;
    resilient.backoff_initial = Millis(500);
    resilient.max_repunch_attempts = max_repunch;
    resilient.turn_server = turn_server;
    ma_ = std::make_unique<ResilientSessionManager>(pa_.get(), resilient);
    mb_ = std::make_unique<ResilientSessionManager>(pb_.get(), resilient);
    mb_->SetIncomingSessionCallback([this](ResilientSession* s) {
      incoming_ = s;
      s->SetReceiveCallback([this](const Bytes&) { ++b_received_; });
    });
    topo_.scenario->net().RunFor(Seconds(2));
  }

  ResilientSession* Connect() {
    ResilientSession* session = nullptr;
    ma_->ConnectToPeer(2, [&](Result<ResilientSession*> r) { session = r.ok() ? *r : nullptr; });
    topo_.scenario->net().RunFor(Seconds(12));
    return session;
  }

  bool SendWorks(ResilientSession* session) {
    const int before = b_received_;
    session->Send(Bytes{1});
    topo_.scenario->net().RunFor(Seconds(2));
    return b_received_ > before;
  }

  Fig5Topology topo_;
  std::unique_ptr<RendezvousServer> server_;
  std::unique_ptr<UdpRendezvousClient> ca_, cb_;
  std::unique_ptr<UdpHolePuncher> pa_, pb_;
  std::unique_ptr<ResilientSessionManager> ma_, mb_;
  ResilientSession* incoming_ = nullptr;
  int b_received_ = 0;
};

TEST_F(ChaosRecoveryTest, NatRebootRecoversViaRepunchWithBoundedDowntime) {
  Build(NatConfig{}, NatConfig{}, Endpoint{}, Seconds(10), 4);
  ResilientSession* session = Connect();
  ASSERT_NE(session, nullptr);
  ASSERT_EQ(session->path(), ResilientSession::Path::kDirect);
  ASSERT_TRUE(SendWorks(session));

  topo_.site_a.nat->Reboot();
  EXPECT_EQ(topo_.site_a.nat->stats().reboots, 1u);
  EXPECT_EQ(topo_.site_a.nat->active_mapping_count(), 0u);

  // The wrapper notices the death and re-punches on its own: no new client
  // objects, no application involvement.
  topo_.scenario->net().RunFor(Seconds(20));
  EXPECT_EQ(session->path(), ResilientSession::Path::kDirect);
  ASSERT_EQ(session->recoveries().size(), 1u);
  const auto& rec = session->recoveries()[0];
  EXPECT_FALSE(rec.via_relay);
  EXPECT_GE(rec.repunch_attempts, 1);
  // Downtime (death detection to data path restored) is bounded by one
  // backoff step plus a punch round-trip — nowhere near the 5 s expiry.
  EXPECT_LT(rec.downtime, Seconds(8));
  EXPECT_TRUE(SendWorks(session));
  // The passive side rebound the fresh punch into its existing session
  // rather than surfacing a duplicate.
  EXPECT_EQ(mb_->session_count(), 1u);
}

TEST_F(ChaosRecoveryTest, SymmetricBothSidesFallsBackToRelayAndDataFlows) {
  // Address-and-port-dependent mapping on both sides: hole punching is
  // structurally impossible (§5: both NATs allocate a fresh public port per
  // destination, and each side probes the other's *predicted* endpoint).
  NatConfig symmetric;
  symmetric.mapping = NatMapping::kAddressAndPortDependent;
  symmetric.filtering = NatFiltering::kAddressAndPortDependent;
  symmetric.port_allocation = NatPortAllocation::kRandom;

  // A TURN server on the public realm is the escape hatch.
  topo_ = MakeFig5(symmetric, symmetric);
  Host* relay_host = topo_.scenario->AddPublicHost("T", Ipv4Address::FromOctets(18, 181, 0, 40));
  TurnServer turn(relay_host);
  ASSERT_TRUE(turn.Start().ok());

  // Re-build the endpoints on the already-made topology.
  server_ = std::make_unique<RendezvousServer>(topo_.server, kServerPort);
  ASSERT_TRUE(server_->Start().ok());
  ca_ = std::make_unique<UdpRendezvousClient>(topo_.a, server_->endpoint(), 1);
  cb_ = std::make_unique<UdpRendezvousClient>(topo_.b, server_->endpoint(), 2);
  ca_->Register(4321, [](Result<Endpoint>) {});
  cb_->Register(4321, [](Result<Endpoint>) {});
  UdpPunchConfig punch;
  punch.punch_timeout = Seconds(3);  // fail the hopeless punch quickly
  pa_ = std::make_unique<UdpHolePuncher>(ca_.get(), punch);
  pb_ = std::make_unique<UdpHolePuncher>(cb_.get(), punch);
  ResilientSessionConfig resilient;
  resilient.turn_server = turn.endpoint();
  ma_ = std::make_unique<ResilientSessionManager>(pa_.get(), resilient);
  mb_ = std::make_unique<ResilientSessionManager>(pb_.get(), resilient);
  mb_->SetIncomingSessionCallback([this](ResilientSession* s) {
    incoming_ = s;
    s->SetReceiveCallback([this](const Bytes&) { ++b_received_; });
  });
  topo_.scenario->net().RunFor(Seconds(2));

  ResilientSession* session = Connect();
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->path(), ResilientSession::Path::kRelay);
  ASSERT_NE(incoming_, nullptr);
  EXPECT_EQ(incoming_->path(), ResilientSession::Path::kRelay);

  // Data flows in both directions through the relay.
  ASSERT_TRUE(SendWorks(session));
  int a_received = 0;
  session->SetReceiveCallback([&](const Bytes&) { ++a_received; });
  incoming_->Send(Bytes{2});
  topo_.scenario->net().RunFor(Seconds(2));
  EXPECT_GT(a_received, 0);
  EXPECT_GT(session->relayed_sent(), 0u);
  EXPECT_GT(incoming_->relayed_received(), 0u);
  EXPECT_GT(turn.stats().relayed_to_peer, 0u);
  EXPECT_GT(turn.stats().relayed_to_client, 0u);
}

TEST_F(ChaosRecoveryTest, RelayDeathDetectedByWatchdogAndRelayReestablished) {
  // Same structurally-unpunchable world as above, but now the RELAY dies
  // mid-session. The relay-leg watchdog must notice the silence, re-enter
  // the recovery ladder (the re-punch fails again — the NATs are still
  // symmetric), and land on a fresh allocation against the restarted
  // server, whose state the restart wiped.
  NatConfig symmetric;
  symmetric.mapping = NatMapping::kAddressAndPortDependent;
  symmetric.filtering = NatFiltering::kAddressAndPortDependent;
  symmetric.port_allocation = NatPortAllocation::kRandom;

  topo_ = MakeFig5(symmetric, symmetric);
  Host* relay_host = topo_.scenario->AddPublicHost("T", Ipv4Address::FromOctets(18, 181, 0, 40));
  TurnServer turn(relay_host);
  ASSERT_TRUE(turn.Start().ok());

  server_ = std::make_unique<RendezvousServer>(topo_.server, kServerPort);
  ASSERT_TRUE(server_->Start().ok());
  ca_ = std::make_unique<UdpRendezvousClient>(topo_.a, server_->endpoint(), 1);
  cb_ = std::make_unique<UdpRendezvousClient>(topo_.b, server_->endpoint(), 2);
  ca_->Register(4321, [](Result<Endpoint>) {});
  cb_->Register(4321, [](Result<Endpoint>) {});
  ca_->StartKeepAlive(Seconds(1));
  cb_->StartKeepAlive(Seconds(1));
  UdpPunchConfig punch;
  punch.punch_timeout = Seconds(3);      // fail the hopeless punches quickly
  punch.keepalive_interval = Seconds(1);  // responder knock cadence < relay_timeout
  pa_ = std::make_unique<UdpHolePuncher>(ca_.get(), punch);
  pb_ = std::make_unique<UdpHolePuncher>(cb_.get(), punch);
  ResilientSessionConfig resilient;
  resilient.turn_server = turn.endpoint();
  resilient.relay_keepalive_interval = Seconds(1);
  resilient.relay_timeout = Seconds(5);
  resilient.max_repunch_attempts = 1;
  ma_ = std::make_unique<ResilientSessionManager>(pa_.get(), resilient);
  mb_ = std::make_unique<ResilientSessionManager>(pb_.get(), resilient);
  mb_->SetIncomingSessionCallback([this](ResilientSession* s) {
    incoming_ = s;
    s->SetReceiveCallback([this](const Bytes&) { ++b_received_; });
  });
  topo_.scenario->net().RunFor(Seconds(2));

  ResilientSession* session = Connect();
  ASSERT_NE(session, nullptr);
  ASSERT_EQ(session->path(), ResilientSession::Path::kRelay);
  ASSERT_TRUE(SendWorks(session));
  EXPECT_EQ(session->relay_losses(), 0);

  // Kill the relay, then bring it back (empty) while the watchdog and the
  // re-punch ladder are still climbing toward the fresh EnterRelay.
  turn.Stop();
  topo_.scenario->net().RunFor(Seconds(3));
  ASSERT_TRUE(turn.Start().ok());
  EXPECT_EQ(turn.active_allocations(), 0u);

  topo_.scenario->net().RunFor(Seconds(30));
  EXPECT_GE(session->relay_losses(), 1);
  ASSERT_NE(incoming_, nullptr);
  EXPECT_GE(incoming_->relay_losses(), 1);
  EXPECT_EQ(session->path(), ResilientSession::Path::kRelay);
  EXPECT_EQ(incoming_->path(), ResilientSession::Path::kRelay);
  // The loss was recorded as a completed recovery over the relay, with the
  // doomed direct re-punch counted on the way.
  ASSERT_GE(session->recoveries().size(), 1u);
  EXPECT_TRUE(session->recoveries().back().via_relay);
  EXPECT_GE(session->recoveries().back().repunch_attempts, 1);
  // No duplicate session objects surfaced on either side.
  EXPECT_EQ(ma_->session_count(), 1u);
  EXPECT_EQ(mb_->session_count(), 1u);

  // The rebuilt leg carries data both ways.
  EXPECT_TRUE(SendWorks(session));
  int a_received = 0;
  session->SetReceiveCallback([&](const Bytes&) { ++a_received; });
  incoming_->Send(Bytes{2});
  topo_.scenario->net().RunFor(Seconds(2));
  EXPECT_GT(a_received, 0);
}

TEST_F(ChaosRecoveryTest, ServerRestartDetectedByEpochAndReRegisteredTransparently) {
  Build(NatConfig{}, NatConfig{}, Endpoint{}, Seconds(10), 4);
  ASSERT_TRUE(ca_->registered());
  EXPECT_EQ(ca_->server_epoch(), 1u);
  EXPECT_EQ(server_->client_count(), 2u);

  server_->Stop();
  topo_.scenario->net().RunFor(Seconds(2));
  ASSERT_TRUE(server_->Start().ok());
  EXPECT_EQ(server_->client_count(), 0u);  // the restart lost all state

  // Keepalive acks now carry epoch 2; both clients notice and re-register
  // without new objects or application involvement.
  topo_.scenario->net().RunFor(Seconds(5));
  EXPECT_EQ(ca_->restarts_detected(), 1u);
  EXPECT_EQ(cb_->restarts_detected(), 1u);
  EXPECT_EQ(ca_->server_epoch(), 2u);
  EXPECT_TRUE(ca_->registered());
  EXPECT_TRUE(cb_->registered());
  EXPECT_EQ(server_->client_count(), 2u);

  // Introductions work again on the same stack.
  ResilientSession* session = Connect();
  ASSERT_NE(session, nullptr);
  EXPECT_TRUE(SendWorks(session));
}

TEST_F(ChaosRecoveryTest, LanPartitionShorterThanExpiryIsAbsorbed) {
  Build(NatConfig{}, NatConfig{}, Endpoint{}, Seconds(10), 4);
  Network& net = topo_.scenario->net();
  net.trace().set_enabled(true);
  ResilientSession* session = Connect();
  ASSERT_NE(session, nullptr);
  ASSERT_TRUE(SendWorks(session));

  FaultScheduler faults(&net);
  const SimTime now = net.now();
  faults.LinkDown(now + Seconds(1), topo_.site_b.lan, Seconds(2));
  net.RunFor(Seconds(6));

  // Outage (2 s) < expiry (5 s): the session never died, and traffic lost
  // during the partition shows up as kLinkDown drops in the trace.
  EXPECT_EQ(session->recoveries().size(), 0u);
  EXPECT_EQ(session->path(), ResilientSession::Path::kDirect);
  EXPECT_GT(net.trace().Count(TraceEvent::kLinkDown), 0u);
  EXPECT_EQ(net.trace().Count(TraceEvent::kFault), faults.faults_executed());
  EXPECT_TRUE(SendWorks(session));
}

TEST_F(ChaosRecoveryTest, BurstLossWindowDropsAndRestores) {
  Build(NatConfig{}, NatConfig{}, Endpoint{}, Seconds(10), 4);
  Network& net = topo_.scenario->net();
  net.trace().set_enabled(true);
  ResilientSession* session = Connect();
  ASSERT_NE(session, nullptr);

  // A pathological Gilbert-Elliott window: always in the bad state, bad
  // state always drops — a deterministic blackout expressed as burst loss.
  FaultScheduler faults(&net);
  GilbertElliottConfig blackout;
  blackout.enabled = true;
  blackout.p_good_to_bad = 1.0;
  blackout.p_bad_to_good = 0.0;
  blackout.loss_bad = 1.0;
  faults.BurstLoss(net.now() + Seconds(1), topo_.scenario->internet(), blackout, Seconds(2));
  net.RunFor(Seconds(6));

  EXPECT_GT(net.trace().Count(TraceEvent::kDropBurst), 0u);
  // Window (2 s) < expiry (5 s): absorbed without a recovery.
  EXPECT_EQ(session->recoveries().size(), 0u);
  EXPECT_TRUE(SendWorks(session));
}

TEST_F(ChaosRecoveryTest, AdaptiveWatchdogDetectsRelayDeathWellUnderStaticTimeout) {
  // Default relay timings: 5 s keepalives, 30 s static timeout. The
  // adaptive watchdog samples the leg RTT from keepalive probe echoes and
  // tightens the silence window to ~2 keepalive rounds + margin*srtt —
  // about 10 s at simulated RTTs — without any config tuning.
  NatConfig symmetric;
  symmetric.mapping = NatMapping::kAddressAndPortDependent;
  symmetric.filtering = NatFiltering::kAddressAndPortDependent;
  symmetric.port_allocation = NatPortAllocation::kRandom;

  topo_ = MakeFig5(symmetric, symmetric);
  Host* relay_host = topo_.scenario->AddPublicHost("T", Ipv4Address::FromOctets(18, 181, 0, 40));
  TurnServer turn(relay_host);
  ASSERT_TRUE(turn.Start().ok());

  server_ = std::make_unique<RendezvousServer>(topo_.server, kServerPort);
  ASSERT_TRUE(server_->Start().ok());
  ca_ = std::make_unique<UdpRendezvousClient>(topo_.a, server_->endpoint(), 1);
  cb_ = std::make_unique<UdpRendezvousClient>(topo_.b, server_->endpoint(), 2);
  ca_->Register(4321, [](Result<Endpoint>) {});
  cb_->Register(4321, [](Result<Endpoint>) {});
  UdpPunchConfig punch;
  punch.punch_timeout = Seconds(3);  // fail the hopeless punch quickly
  pa_ = std::make_unique<UdpHolePuncher>(ca_.get(), punch);
  pb_ = std::make_unique<UdpHolePuncher>(cb_.get(), punch);
  ResilientSessionConfig resilient;  // stock adaptive settings
  resilient.turn_server = turn.endpoint();
  ma_ = std::make_unique<ResilientSessionManager>(pa_.get(), resilient);
  mb_ = std::make_unique<ResilientSessionManager>(pb_.get(), resilient);
  mb_->SetIncomingSessionCallback([this](ResilientSession* s) {
    incoming_ = s;
    s->SetReceiveCallback([this](const Bytes&) { ++b_received_; });
  });
  topo_.scenario->net().RunFor(Seconds(2));

  ResilientSession* session = Connect();
  ASSERT_NE(session, nullptr);
  ASSERT_EQ(session->path(), ResilientSession::Path::kRelay);
  ASSERT_TRUE(SendWorks(session));

  // Let a few keepalive rounds pass so both sides hold an RTT estimate.
  topo_.scenario->net().RunFor(Seconds(12));
  EXPECT_GT(session->relay_srtt().micros(), 0);
  ASSERT_NE(incoming_, nullptr);
  EXPECT_GT(incoming_->relay_srtt().micros(), 0);

  // Kill the relay and clock how long until the watchdog notices.
  turn.Stop();
  const SimTime killed_at = topo_.scenario->net().now();
  SimDuration detected_after = Seconds(60);
  while (topo_.scenario->net().now() - killed_at < Seconds(40)) {
    topo_.scenario->net().RunFor(Millis(500));
    if (session->relay_losses() >= 1) {
      detected_after = topo_.scenario->net().now() - killed_at;
      break;
    }
  }
  // 2 * 5 s keepalives + margin*srtt lands near 10-11 s — a third of the
  // static 30 s window, and comfortably under half of it.
  EXPECT_GE(session->relay_losses(), 1);
  EXPECT_LT(detected_after.micros(), Seconds(15).micros());
  EXPECT_GE(detected_after.micros(), Seconds(8).micros());  // floor respected
}

// ---------------------------------------------------------------------------
// Hostile-network hardening: adversarial fault storms and attacker nodes
// ---------------------------------------------------------------------------

struct StormOutcome {
  std::string trace;
  uint64_t corrupted = 0, duplicated = 0, reordered = 0, truncated = 0;
  uint64_t malformed_drops = 0;
  int b_received = 0;
  int64_t downtime_micros = 0;
  bool alive_at_end = false;
  bool data_flows_after = false;
};

StormOutcome RunHostileStorm(uint64_t seed) {
  Scenario::Options options;
  options.seed = seed;
  Fig5Topology topo = MakeFig5(NatConfig{}, NatConfig{}, options);
  Network& net = topo.scenario->net();
  net.trace().set_enabled(true);

  RendezvousServer server(topo.server, kServerPort);
  EXPECT_TRUE(server.Start().ok());
  UdpRendezvousClient ca(topo.a, server.endpoint(), 1);
  UdpRendezvousClient cb(topo.b, server.endpoint(), 2);
  ca.Register(4321, [](Result<Endpoint>) {});
  cb.Register(4321, [](Result<Endpoint>) {});
  ca.StartKeepAlive(Seconds(1));
  cb.StartKeepAlive(Seconds(1));
  UdpPunchConfig punch;
  punch.keepalive_interval = Seconds(1);
  punch.session_expiry = Seconds(5);
  UdpHolePuncher pa(&ca, punch);
  UdpHolePuncher pb(&cb, punch);
  ResilientSessionConfig resilient;
  resilient.backoff_initial = Millis(500);
  resilient.max_repunch_attempts = 4;
  ResilientSessionManager ma(&pa, resilient);
  ResilientSessionManager mb(&pb, resilient);

  StormOutcome out;
  mb.SetIncomingSessionCallback([&out](ResilientSession* s) {
    s->SetReceiveCallback([&out](const Bytes&) { ++out.b_received; });
  });
  ResilientSession* session = nullptr;
  net.event_loop().ScheduleAfter(Seconds(2), [&] {
    ma.ConnectToPeer(2, [&](Result<ResilientSession*> r) {
      if (r.ok()) {
        session = *r;
      }
    });
  });
  std::function<void()> pump = [&] {
    if (session != nullptr && session->alive()) {
      session->Send(Bytes{0xAB});
    }
    net.event_loop().ScheduleAfter(Millis(500), pump);
  };
  net.event_loop().ScheduleAfter(Seconds(3), pump);

  // A combined corruption + truncation + duplication + reorder storm on the
  // internet segment, long after the punch so it hits a live session.
  FaultScheduler faults(&net);
  MangleConfig storm;
  storm.corrupt = 0.25;
  storm.truncate = 0.10;
  storm.duplicate = 0.20;
  storm.reorder = 0.30;
  storm.reorder_hold = Millis(80);
  faults.Mangle(At(6), topo.scenario->internet(), storm, Seconds(10));

  net.RunFor(Seconds(25));

  out.corrupted = net.trace().Count(TraceEvent::kCorrupt);
  out.duplicated = net.trace().Count(TraceEvent::kDuplicate);
  out.reordered = net.trace().Count(TraceEvent::kReorder);
  out.truncated = net.trace().Count(TraceEvent::kTruncate);
  out.malformed_drops = topo.a->malformed_drops() + topo.b->malformed_drops() +
                        topo.server->malformed_drops();
  if (session != nullptr) {
    out.alive_at_end = session->alive();
    out.downtime_micros = session->total_downtime().micros();
    const int before = out.b_received;
    session->Send(Bytes{0xCD});
    net.RunFor(Seconds(2));
    out.data_flows_after = out.b_received > before;
  }
  out.trace = net.trace().Dump();
  return out;
}

TEST(HostileStormTest, SessionSurvivesStormWithBoundedDowntimeAndReplaysIdentically) {
  StormOutcome first = RunHostileStorm(1234);

  // The storm actually mangled traffic, every kind, and every kind is in the
  // trace — corrupted frames were dropped by the decoders and counted, not
  // crashed on and not accepted.
  EXPECT_GT(first.corrupted, 0u);
  EXPECT_GT(first.duplicated, 0u);
  EXPECT_GT(first.reordered, 0u);
  EXPECT_GT(first.truncated, 0u);
  EXPECT_GT(first.malformed_drops, 0u);

  // Availability: the session survived the storm (keepalives at 1 s against
  // a 5 s expiry ride out 25% corruption), data flowed during it, and any
  // recovery the storm did force stayed within the backoff ladder's bound.
  EXPECT_TRUE(first.alive_at_end);
  EXPECT_GT(first.b_received, 0);
  EXPECT_TRUE(first.data_flows_after);
  EXPECT_LT(first.downtime_micros, Seconds(15).micros());

  // Chaos replays are bit-identical per seed, mangling included.
  StormOutcome second = RunHostileStorm(1234);
  EXPECT_EQ(first.corrupted, second.corrupted);
  EXPECT_EQ(first.duplicated, second.duplicated);
  EXPECT_EQ(first.reordered, second.reordered);
  EXPECT_EQ(first.truncated, second.truncated);
  EXPECT_EQ(first.malformed_drops, second.malformed_drops);
  EXPECT_EQ(first.b_received, second.b_received);
  EXPECT_EQ(first.downtime_micros, second.downtime_micros);
  ASSERT_EQ(first.trace.size(), second.trace.size());
  EXPECT_TRUE(first.trace == second.trace) << "storm replay must be bit-identical";

  // A different seed mangles a different world.
  StormOutcome other = RunHostileStorm(1235);
  EXPECT_FALSE(first.trace == other.trace);
}

TEST(AttackerTest, GarbageBlasterIsQuarantinedWhilePunchSucceeds) {
  Fig5Topology topo = MakeFig5(NatConfig{}, NatConfig{});
  Network& net = topo.scenario->net();

  // Rendezvous server with the hostile-client controls on.
  RendezvousServer::Options hardened;
  hardened.max_msgs_per_window = 50;
  hardened.rate_window = Seconds(1);
  hardened.quarantine_threshold = 5;
  hardened.quarantine_duration = Seconds(30);
  RendezvousServer server(topo.server, kServerPort, hardened);
  ASSERT_TRUE(server.Start().ok());

  // The attacker sits on the public internet, blasting the server with
  // garbage: random bytes, valid-magic random bodies, bit-flipped and
  // truncated copies of a real registration frame.
  Host* evil = topo.scenario->AddPublicHost("evil", Ipv4Address::FromOctets(66, 6, 6, 6));
  GarbageBlasterConfig blast;
  blast.target = server.endpoint();
  blast.interval = Millis(5);
  blast.seed = 99;
  GarbageBlaster blaster(evil, blast);
  RendezvousMessage tmpl;
  tmpl.type = RvMsgType::kConnectRequest;
  tmpl.client_id = 666;
  tmpl.target_id = 1;
  blaster.AddTemplate(EncodeRendezvousMessage(tmpl, false));
  ASSERT_TRUE(blaster.Start().ok());

  // Honest clients register and punch right through the noise.
  UdpRendezvousClient ca(topo.a, server.endpoint(), 1);
  UdpRendezvousClient cb(topo.b, server.endpoint(), 2);
  bool a_registered = false;
  ca.Register(4321, [&](Result<Endpoint> r) { a_registered = r.ok(); });
  cb.Register(4321, [](Result<Endpoint>) {});
  UdpHolePuncher pa(&ca);
  UdpHolePuncher pb(&cb);
  bool punched = false;
  net.event_loop().ScheduleAfter(Seconds(1), [&] {
    pa.ConnectToPeer(2, [&](Result<UdpP2pSession*> r) { punched = r.ok(); });
  });
  net.RunFor(Seconds(20));

  EXPECT_GT(blaster.sent(), 1000u);
  EXPECT_TRUE(a_registered);
  EXPECT_TRUE(punched);

  // The server dropped-and-counted instead of crashing or believing any of
  // it: malformed frames were charged to the attacker, who crossed the
  // quarantine threshold and was then ignored wholesale (quarantined drops
  // dwarf what the rate limiter alone would shed).
  const auto& stats = server.stats();
  EXPECT_GT(stats.malformed_frames, 0u);
  EXPECT_GE(stats.quarantined_sources, 1u);
  EXPECT_GT(stats.quarantined_drops, 100u);
  EXPECT_GT(topo.server->malformed_drops(), 0u);
  // Both honest clients are registered despite the noise.
  EXPECT_GE(server.client_count(), 2u);
}

}  // namespace
}  // namespace natpunch
