// Slab allocator unit tests: a differential check against a plain
// operator-new oracle (same construct/destroy sequence, same observable
// object states), freelist reuse and Reset() reuse guarantees, stats
// accounting, metrics gauges, and the compile-time footprint budgets the
// swarm memory diet relies on (a struct that grows past its budget fails
// the build, not a bench three PRs later).

#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/resilient_session.h"
#include "src/core/udp_puncher.h"
#include "src/netsim/event_loop.h"
#include "src/netsim/packet.h"
#include "src/netsim/payload.h"
#include "src/obs/metrics.h"
#include "src/util/slab.h"

namespace natpunch {
namespace {

// ---------------------------------------------------------------------------
// Footprint budgets. These are the struct-packing contracts of the memory
// diet; sizes may shrink freely but growing one is an explicit decision.
// ---------------------------------------------------------------------------
static_assert(sizeof(TimerHandle) == 56, "TimerHandle footprint budget");
static_assert(sizeof(Payload) == 72, "Payload footprint budget (64 inline + 8 meta)");
static_assert(sizeof(Packet) <= 136, "Packet footprint budget");
static_assert(sizeof(UdpP2pSession) <= 184, "UdpP2pSession footprint budget");
static_assert(sizeof(ResilientSession) <= 504, "ResilientSession footprint budget");
static_assert(sizeof(Endpoint) == 8, "Endpoint packs into a single word");

struct Tracked {
  explicit Tracked(int v) : value(v) { ++constructed; }
  ~Tracked() { ++destroyed; }
  int value;
  uint64_t pad[4] = {};  // big enough that FreeSlot reuse would corrupt it
  static int constructed;
  static int destroyed;
};
int Tracked::constructed = 0;
int Tracked::destroyed = 0;

struct Pod {
  uint64_t a = 0;
  uint32_t b = 0;
};
static_assert(std::is_trivially_destructible_v<Pod>);

TEST(SlabTest, NewConstructsDeleteDestroys) {
  Tracked::constructed = Tracked::destroyed = 0;
  Slab<Tracked, 8> pool;
  Tracked* t = pool.New(42);
  EXPECT_EQ(t->value, 42);
  EXPECT_EQ(Tracked::constructed, 1);
  EXPECT_EQ(pool.live(), 1u);
  pool.Delete(t);
  EXPECT_EQ(Tracked::destroyed, 1);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(SlabTest, DeleteNullIsNoop) {
  Slab<Pod, 8> pool;
  pool.Delete(nullptr);
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_EQ(pool.slab_count(), 0u);
}

TEST(SlabTest, FreedSlotIsReusedBeforeGrowing) {
  Slab<Pod, 4> pool;
  Pod* first = pool.New();
  pool.Delete(first);
  Pod* second = pool.New();
  // LIFO freelist: the hot slot comes straight back.
  EXPECT_EQ(first, second);
  EXPECT_EQ(pool.slab_count(), 1u);
}

TEST(SlabTest, AddressesStableAcrossGrowth) {
  Slab<Pod, 4> pool;
  std::vector<Pod*> objs;
  for (int i = 0; i < 64; ++i) {
    Pod* p = pool.New();
    p->a = static_cast<uint64_t>(i);
    objs.push_back(p);
  }
  EXPECT_EQ(pool.slab_count(), 16u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(objs[i]->a, static_cast<uint64_t>(i)) << "object " << i << " moved or corrupted";
  }
}

TEST(SlabTest, WarmedPoolNeverGrowsPastHighWaterMark) {
  Slab<Pod, 8> pool;
  std::vector<Pod*> objs;
  for (int i = 0; i < 24; ++i) {
    objs.push_back(pool.New());
  }
  const size_t slabs_at_peak = pool.slab_count();
  EXPECT_EQ(slabs_at_peak, 3u);
  // Churn the full population many times over: the freelist must absorb it.
  for (int round = 0; round < 10; ++round) {
    for (Pod* p : objs) {
      pool.Delete(p);
    }
    objs.clear();
    for (int i = 0; i < 24; ++i) {
      objs.push_back(pool.New());
    }
    EXPECT_EQ(pool.slab_count(), slabs_at_peak);
  }
  EXPECT_EQ(pool.peak(), 24u);
}

// Differential test: drive the pool and a plain new/delete oracle through
// the same randomized alloc/free/read/write schedule and require identical
// observable values at every step.
TEST(SlabTest, DifferentialAgainstNewDeleteOracle) {
  Slab<Pod, 16> pool;
  struct Pair {
    Pod* pooled;
    std::unique_ptr<Pod> oracle;
  };
  std::vector<Pair> live;
  std::mt19937_64 rng(20260808);
  for (int step = 0; step < 5000; ++step) {
    const bool alloc = live.empty() || (rng() % 100 < 55);
    if (alloc) {
      Pair pair{pool.New(), std::make_unique<Pod>()};
      const uint64_t v = rng();
      pair.pooled->a = v;
      pair.oracle->a = v;
      pair.pooled->b = static_cast<uint32_t>(step);
      pair.oracle->b = static_cast<uint32_t>(step);
      live.push_back(std::move(pair));
    } else {
      const size_t victim = rng() % live.size();
      ASSERT_EQ(live[victim].pooled->a, live[victim].oracle->a) << "step " << step;
      ASSERT_EQ(live[victim].pooled->b, live[victim].oracle->b) << "step " << step;
      pool.Delete(live[victim].pooled);
      live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
    }
    ASSERT_EQ(pool.live(), live.size());
  }
  for (const Pair& pair : live) {
    ASSERT_EQ(pair.pooled->a, pair.oracle->a);
    ASSERT_EQ(pair.pooled->b, pair.oracle->b);
    pool.Delete(pair.pooled);
  }
  EXPECT_EQ(pool.live(), 0u);
}

TEST(SlabTest, ResetKeepsSlabsAndReusesThem) {
  Slab<Pod, 8> pool;
  for (int i = 0; i < 20; ++i) {
    pool.New();
  }
  const size_t slabs = pool.slab_count();
  pool.Reset();
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_EQ(pool.slab_count(), slabs) << "Reset must keep the slabs";
  // Refill to the same population: zero growth.
  for (int i = 0; i < 20; ++i) {
    pool.New();
  }
  EXPECT_EQ(pool.slab_count(), slabs);
}

TEST(SlabTest, ReleaseDropsEverything) {
  Slab<Pod, 8> pool;
  for (int i = 0; i < 20; ++i) {
    pool.New();
  }
  pool.Release();
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_EQ(pool.slab_count(), 0u);
  EXPECT_EQ(pool.capacity(), 0u);
  // Pool is reusable after Release.
  Pod* p = pool.New();
  EXPECT_NE(p, nullptr);
  EXPECT_EQ(pool.slab_count(), 1u);
}

TEST(SlabTest, StatsAccounting) {
  Slab<Pod, 8> pool;
  SlabStats s = pool.stats();
  EXPECT_EQ(s.live, 0u);
  EXPECT_EQ(s.slabs, 0u);
  EXPECT_EQ(s.slab_bytes, 0u);

  std::vector<Pod*> objs;
  for (int i = 0; i < 9; ++i) {
    objs.push_back(pool.New());
  }
  s = pool.stats();
  EXPECT_EQ(s.live, 9u);
  EXPECT_EQ(s.peak, 9u);
  EXPECT_EQ(s.slabs, 2u);
  EXPECT_EQ(s.capacity, 16u);
  EXPECT_EQ(s.slab_bytes, 16u * sizeof(Pod));

  pool.Delete(objs.back());
  objs.pop_back();
  s = pool.stats();
  EXPECT_EQ(s.live, 8u);
  EXPECT_EQ(s.peak, 9u) << "peak is a high-water mark";
}

TEST(SlabTest, MetricsGaugesTrackPool) {
  obs::MetricsRegistry registry;
  Slab<Pod, 4> pool;
  pool.AttachMetrics(&registry, "test_pool");
  EXPECT_EQ(registry.GetGauge("mem.test_pool.live")->value(), 0);

  std::vector<Pod*> objs;
  for (int i = 0; i < 6; ++i) {
    objs.push_back(pool.New());
  }
  EXPECT_EQ(registry.GetGauge("mem.test_pool.live")->value(), 6);
  EXPECT_EQ(registry.GetGauge("mem.test_pool.peak")->value(), 6);
  EXPECT_EQ(registry.GetGauge("mem.test_pool.slabs")->value(), 2);
  for (Pod* p : objs) {
    pool.Delete(p);
  }
  EXPECT_EQ(registry.GetGauge("mem.test_pool.live")->value(), 0);
  EXPECT_EQ(registry.GetGauge("mem.test_pool.peak")->value(), 6);
}

TEST(SlabTest, DestructorsRunOnDeleteOnly) {
  Tracked::constructed = Tracked::destroyed = 0;
  Slab<Tracked, 4> pool;
  std::vector<Tracked*> objs;
  for (int i = 0; i < 10; ++i) {
    objs.push_back(pool.New(i));
  }
  EXPECT_EQ(Tracked::constructed, 10);
  EXPECT_EQ(Tracked::destroyed, 0);
  for (Tracked* t : objs) {
    pool.Delete(t);
  }
  EXPECT_EQ(Tracked::destroyed, 10);
}

TEST(SlabPtrTest, ScopedLifetime) {
  Tracked::constructed = Tracked::destroyed = 0;
  Slab<Tracked, 4> pool;
  {
    SlabPtr<Tracked, 4> ptr(&pool, pool.New(7));
    EXPECT_EQ(ptr->value, 7);
    EXPECT_EQ(pool.live(), 1u);
  }
  EXPECT_EQ(Tracked::destroyed, 1);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(SlabPtrTest, MoveTransfersOwnership) {
  Tracked::constructed = Tracked::destroyed = 0;
  Slab<Tracked, 4> pool;
  SlabPtr<Tracked, 4> a(&pool, pool.New(1));
  SlabPtr<Tracked, 4> b = std::move(a);
  EXPECT_FALSE(a);
  ASSERT_TRUE(b);
  EXPECT_EQ(b->value, 1);
  EXPECT_EQ(Tracked::destroyed, 0);
  b.reset();
  EXPECT_EQ(Tracked::destroyed, 1);
}

}  // namespace
}  // namespace natpunch
