// Randomized differential test: NatTable (flat-hash indexes, intrusive
// expiry lists, pooled entries) against a deliberately simple std::map
// reference model implementing the same contract. Both sides consume an
// identical seeded op stream — map, find, inbound filtering, TCP
// reclassification, expiry, reboot — across every mapping behavior, port
// allocation policy, and the §6.3 contention demotion, and must agree on
// every observable at every step. The reference mirrors the port allocator
// exactly (including the RNG draw sequence for random allocation), so even
// allocated port numbers are compared, not just set sizes.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "src/nat/nat_table.h"

namespace natpunch {
namespace {

// ---------------------------------------------------------------------------
// Reference model
// ---------------------------------------------------------------------------

struct ModelEntry {
  IpProtocol protocol = IpProtocol::kUdp;
  Endpoint private_ep;
  uint16_t public_port = 0;
  SimTime last_refresh;
  std::vector<std::pair<Endpoint, SimTime>> sessions;  // insertion-ordered
  bool tcp_inbound_seen = false;
  bool tcp_established = false;
  bool tcp_closing = false;

  int TimeoutClass() const {
    if (protocol != IpProtocol::kTcp) {
      return 0;
    }
    return (tcp_established && !tcp_closing) ? 1 : 2;
  }

  void Refresh(const Endpoint& remote, SimTime now) {
    for (auto& session : sessions) {
      if (session.first == remote) {
        session.second = now;
        last_refresh = now;
        return;
      }
    }
    sessions.emplace_back(remote, now);
    last_refresh = now;
  }

  bool SessionsAllow(NatFiltering filtering, const Endpoint& remote, SimTime now,
                     SimDuration session_timeout) const {
    for (const auto& session : sessions) {
      const bool fresh = now - session.second < session_timeout;
      if (!fresh) {
        continue;
      }
      if (filtering == NatFiltering::kAddressDependent && session.first.ip == remote.ip) {
        return true;
      }
      if (filtering == NatFiltering::kAddressAndPortDependent && session.first == remote) {
        return true;
      }
    }
    return false;
  }
};

class ModelTable {
 public:
  using OutKey = std::tuple<int, uint32_t, uint16_t, uint32_t, uint16_t>;

  ModelTable(NatMapping mapping, NatPortAllocation allocation, uint16_t port_base, Rng rng,
             bool symmetric_on_contention)
      : mapping_(mapping),
        allocation_(allocation),
        symmetric_on_contention_(symmetric_on_contention),
        port_base_(port_base),
        next_port_udp_(port_base),
        next_port_tcp_(port_base),
        rng_(rng) {}

  ModelEntry* MapOutbound(IpProtocol protocol, const Endpoint& private_ep, const Endpoint& remote,
                          SimTime now) {
    auto& users = port_users_[{static_cast<int>(protocol), private_ep.port}];
    if (!users.any) {
      users.any = true;
      users.first = private_ep.ip;
    } else if (!users.multi && users.first != private_ep.ip) {
      users.multi = true;
    }
    const OutKey key = MakeOutKey(protocol, private_ep, remote);
    auto it = by_out_.find(key);
    if (it == by_out_.end()) {
      const uint16_t port = AllocatePort(protocol, private_ep.port);
      if (port == 0) {
        return nullptr;
      }
      auto entry = std::make_unique<ModelEntry>();
      entry->protocol = protocol;
      entry->private_ep = private_ep;
      entry->public_port = port;
      entry->Refresh(remote, now);
      ModelEntry* raw = entry.get();
      by_out_.emplace(key, std::move(entry));
      by_port_.emplace(std::make_pair(static_cast<int>(protocol), port), key);
      return raw;
    }
    it->second->Refresh(remote, now);
    return it->second.get();
  }

  ModelEntry* FindOutbound(IpProtocol protocol, const Endpoint& private_ep,
                           const Endpoint& remote) {
    auto it = by_out_.find(MakeOutKey(protocol, private_ep, remote));
    return it == by_out_.end() ? nullptr : it->second.get();
  }

  ModelEntry* FindByPublicPort(IpProtocol protocol, uint16_t port) {
    auto it = by_port_.find({static_cast<int>(protocol), port});
    return it == by_port_.end() ? nullptr : by_out_.at(it->second).get();
  }

  ModelEntry* FindByPrivateEndpoint(IpProtocol protocol, const Endpoint& private_ep) {
    ModelEntry* best = nullptr;
    for (auto& [key, entry] : by_out_) {
      if (entry->protocol == protocol && entry->private_ep == private_ep &&
          (best == nullptr || entry->public_port < best->public_port)) {
        best = entry.get();
      }
    }
    return best;
  }

  bool AllowsInbound(const ModelEntry& entry, NatFiltering filtering, const Endpoint& remote,
                     SimTime now, SimDuration session_timeout) const {
    if (filtering == NatFiltering::kEndpointIndependent) {
      return true;
    }
    // Per RFC 4787 the filter state belongs to the internal endpoint: union
    // over every mapping of entry.private_ep.
    for (const auto& [key, other] : by_out_) {
      if (other->protocol == entry.protocol && other->private_ep == entry.private_ep &&
          other->SessionsAllow(filtering, remote, now, session_timeout)) {
        return true;
      }
    }
    return false;
  }

  size_t Expire(SimTime now, const NatTable::Timeouts& timeouts) {
    const SimDuration limits[3] = {timeouts.udp, timeouts.tcp_established,
                                   timeouts.tcp_transitory};
    size_t expired = 0;
    for (auto it = by_out_.begin(); it != by_out_.end();) {
      const ModelEntry& entry = *it->second;
      if (now - entry.last_refresh >= limits[entry.TimeoutClass()]) {
        by_port_.erase({static_cast<int>(entry.protocol), entry.public_port});
        it = by_out_.erase(it);
        ++expired;
      } else {
        ++it;
      }
    }
    return expired;
  }

  void Clear() {
    by_out_.clear();
    by_port_.clear();
    port_users_.clear();
  }

  size_t size() const { return by_out_.size(); }

 private:
  struct PortUsers {
    Ipv4Address first;
    bool any = false;
    bool multi = false;
  };

  NatMapping EffectiveMapping(IpProtocol protocol, const Endpoint& private_ep) const {
    if (symmetric_on_contention_) {
      auto it = port_users_.find({static_cast<int>(protocol), private_ep.port});
      if (it != port_users_.end() && it->second.multi) {
        return NatMapping::kAddressAndPortDependent;
      }
    }
    return mapping_;
  }

  OutKey MakeOutKey(IpProtocol protocol, const Endpoint& private_ep,
                    const Endpoint& remote) const {
    switch (EffectiveMapping(protocol, private_ep)) {
      case NatMapping::kEndpointIndependent:
        return {static_cast<int>(protocol), private_ep.ip.bits(), private_ep.port, 0, 0};
      case NatMapping::kAddressDependent:
        return {static_cast<int>(protocol), private_ep.ip.bits(), private_ep.port,
                remote.ip.bits(), 0};
      case NatMapping::kAddressAndPortDependent:
        return {static_cast<int>(protocol), private_ep.ip.bits(), private_ep.port,
                remote.ip.bits(), remote.port};
    }
    return {};
  }

  bool PortFree(IpProtocol protocol, uint16_t port) const {
    return by_port_.count({static_cast<int>(protocol), port}) == 0;
  }

  // Mirrors NatTable::AllocatePort exactly, including the RNG draw sequence,
  // so allocated port numbers are directly comparable.
  uint16_t AllocatePort(IpProtocol protocol, uint16_t private_port) {
    if (allocation_ == NatPortAllocation::kPortPreserving && private_port != 0 &&
        PortFree(protocol, private_port)) {
      return private_port;
    }
    if (allocation_ == NatPortAllocation::kRandom) {
      for (int attempt = 0; attempt < 4096; ++attempt) {
        const uint16_t port = static_cast<uint16_t>(
            port_base_ + rng_.NextBelow(static_cast<uint64_t>(65536 - port_base_)));
        if (PortFree(protocol, port)) {
          return port;
        }
      }
      return 0;
    }
    uint16_t& next_port = protocol == IpProtocol::kTcp ? next_port_tcp_ : next_port_udp_;
    const int pool = 65536 - port_base_;
    for (int attempt = 0; attempt < pool; ++attempt) {
      const uint16_t port = next_port;
      next_port = next_port >= 65535 ? port_base_ : static_cast<uint16_t>(next_port + 1);
      if (PortFree(protocol, port)) {
        return port;
      }
    }
    return 0;
  }

  NatMapping mapping_;
  NatPortAllocation allocation_;
  bool symmetric_on_contention_;
  uint16_t port_base_;
  uint16_t next_port_udp_;
  uint16_t next_port_tcp_;
  Rng rng_;
  std::map<OutKey, std::unique_ptr<ModelEntry>> by_out_;
  std::map<std::pair<int, uint16_t>, OutKey> by_port_;
  std::map<std::pair<int, uint16_t>, PortUsers> port_users_;
};

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

struct Lcg {
  uint64_t state;
  uint64_t Next(uint64_t bound) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return (state >> 33) % bound;
  }
};

void CompareEntries(const NatTable::Entry* real, const ModelEntry* model, int step,
                    const char* what) {
  ASSERT_EQ(real == nullptr, model == nullptr) << what << " presence diverged at step " << step;
  if (real == nullptr) {
    return;
  }
  ASSERT_EQ(real->public_port, model->public_port) << what << " port diverged at step " << step;
  ASSERT_EQ(real->private_ep, model->private_ep) << what << " endpoint diverged at " << step;
  ASSERT_EQ(real->sessions.size(), model->sessions.size())
      << what << " session count diverged at step " << step;
  ASSERT_EQ(real->last_refresh.micros(), model->last_refresh.micros())
      << what << " refresh time diverged at step " << step;
}

struct Config {
  NatMapping mapping;
  NatPortAllocation allocation;
  bool contention;
};

void RunDifferential(const Config& config, uint64_t seed, int steps) {
  // A small pool keeps ports colliding and the wrap/exhaustion paths hot.
  const uint16_t port_base = 65000;
  NatTable table(config.mapping, config.allocation, port_base, Rng(seed), config.contention);
  ModelTable model(config.mapping, config.allocation, port_base, Rng(seed), config.contention);

  Lcg lcg{seed * 2654435761ULL + 1};
  int64_t now = 0;
  std::vector<uint16_t> seen_ports;  // every port ever allocated, for probes

  // Few addresses x few ports so §6.3 contention (two inside IPs on one
  // private port) occurs constantly.
  const auto private_ep = [&](uint64_t r) {
    return Endpoint(Ipv4Address(0x0a000001u + static_cast<uint32_t>(r % 3)),
                    static_cast<uint16_t>(5000 + r / 3 % 5));
  };
  const auto remote_ep = [&](uint64_t r) {
    return Endpoint(Ipv4Address(0x12000001u + static_cast<uint32_t>(r % 4)),
                    static_cast<uint16_t>(7000 + r / 4 % 3));
  };
  const auto protocol_of = [](uint64_t r) {
    return r % 2 == 0 ? IpProtocol::kUdp : IpProtocol::kTcp;
  };
  const NatFiltering kFilters[] = {NatFiltering::kEndpointIndependent,
                                   NatFiltering::kAddressDependent,
                                   NatFiltering::kAddressAndPortDependent};

  for (int step = 0; step < steps; ++step) {
    now += static_cast<int64_t>(lcg.Next(500'000));  // 0..0.5s per step
    const uint64_t op = lcg.Next(100);
    const IpProtocol protocol = protocol_of(lcg.Next(2));
    if (op < 40) {
      const Endpoint priv = private_ep(lcg.Next(15));
      const Endpoint remote = remote_ep(lcg.Next(12));
      NatTable::Entry* real = table.MapOutbound(protocol, priv, remote, SimTime(now));
      ModelEntry* mod = model.MapOutbound(protocol, priv, remote, SimTime(now));
      CompareEntries(real, mod, step, "MapOutbound");
      if (real != nullptr) {
        seen_ports.push_back(real->public_port);
      }
    } else if (op < 55) {
      const Endpoint priv = private_ep(lcg.Next(15));
      const Endpoint remote = remote_ep(lcg.Next(12));
      CompareEntries(table.FindOutbound(protocol, priv, remote),
                     model.FindOutbound(protocol, priv, remote), step, "FindOutbound");
    } else if (op < 65) {
      if (!seen_ports.empty()) {
        const uint16_t port = seen_ports[lcg.Next(seen_ports.size())];
        CompareEntries(table.FindByPublicPort(protocol, port),
                       model.FindByPublicPort(protocol, port), step, "FindByPublicPort");
      }
    } else if (op < 72) {
      const Endpoint priv = private_ep(lcg.Next(15));
      CompareEntries(table.FindByPrivateEndpoint(protocol, priv),
                     model.FindByPrivateEndpoint(protocol, priv), step, "FindByPrivateEndpoint");
    } else if (op < 82) {
      // Inbound filtering decision across all three policies.
      if (!seen_ports.empty()) {
        const uint16_t port = seen_ports[lcg.Next(seen_ports.size())];
        NatTable::Entry* real = table.FindByPublicPort(protocol, port);
        ModelEntry* mod = model.FindByPublicPort(protocol, port);
        CompareEntries(real, mod, step, "inbound lookup");
        if (real != nullptr && mod != nullptr) {
          const Endpoint remote = remote_ep(lcg.Next(12));
          const SimDuration session_timeout = Seconds(static_cast<int64_t>(1 + lcg.Next(90)));
          for (const NatFiltering filtering : kFilters) {
            ASSERT_EQ(
                table.AllowsInbound(*real, filtering, remote, SimTime(now), session_timeout),
                model.AllowsInbound(*mod, filtering, remote, SimTime(now), session_timeout))
                << "AllowsInbound diverged at step " << step;
          }
        }
      }
    } else if (op < 88) {
      // TCP lifetime tracking: flip flags on a live mapping and re-file it.
      if (!seen_ports.empty()) {
        const uint16_t port = seen_ports[lcg.Next(seen_ports.size())];
        NatTable::Entry* real = table.FindByPublicPort(IpProtocol::kTcp, port);
        ModelEntry* mod = model.FindByPublicPort(IpProtocol::kTcp, port);
        CompareEntries(real, mod, step, "tcp lookup");
        if (real != nullptr && mod != nullptr) {
          const uint64_t flags = lcg.Next(4);
          real->tcp_inbound_seen = mod->tcp_inbound_seen = true;
          real->tcp_established = mod->tcp_established = (flags & 1) != 0;
          real->tcp_closing = mod->tcp_closing = (flags & 2) != 0;
          table.Reclassify(real);
        }
      }
    } else if (op < 97) {
      const NatTable::Timeouts timeouts{Seconds(static_cast<int64_t>(1 + lcg.Next(120))),
                                        Seconds(static_cast<int64_t>(60 + lcg.Next(7200))),
                                        Seconds(static_cast<int64_t>(1 + lcg.Next(240)))};
      ASSERT_EQ(table.Expire(SimTime(now), timeouts), model.Expire(SimTime(now), timeouts))
          << "Expire count diverged at step " << step;
    } else {
      // NAT reboot.
      table.Clear();
      model.Clear();
    }
    ASSERT_EQ(table.size(), model.size()) << "size diverged at step " << step;
  }
}

class NatTableModelTest
    : public ::testing::TestWithParam<std::tuple<NatMapping, NatPortAllocation, bool>> {};

// 18 configs x 6000 steps = 108k differential ops.
TEST_P(NatTableModelTest, AgreesWithMapReference) {
  const auto [mapping, allocation, contention] = GetParam();
  const uint64_t seed = 1000 + static_cast<uint64_t>(mapping) * 100 +
                        static_cast<uint64_t>(allocation) * 10 + (contention ? 1 : 0);
  RunDifferential(Config{mapping, allocation, contention}, seed, 6000);
}

INSTANTIATE_TEST_SUITE_P(
    AllBehaviors, NatTableModelTest,
    ::testing::Combine(::testing::Values(NatMapping::kEndpointIndependent,
                                         NatMapping::kAddressDependent,
                                         NatMapping::kAddressAndPortDependent),
                       ::testing::Values(NatPortAllocation::kSequential,
                                         NatPortAllocation::kPortPreserving,
                                         NatPortAllocation::kRandom),
                       ::testing::Bool()));

}  // namespace
}  // namespace natpunch
