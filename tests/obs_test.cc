// Observability layer: metric semantics (bucket boundaries, percentile
// interpolation edges, counter wrap), registry lifecycle (find-or-create,
// Reset-keeps-registrations), the byte-stable JSON snapshot, and the
// Chrome-trace export's structural validity (what Perfetto requires to load
// it). The end-to-end tests prove the instrumentation is actually wired:
// a Fig. 5 punch moves the punch/NAT/loop metrics, and the fleet taxonomy
// partitions every Table 1 "no" into exactly one failure bucket.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <limits>
#include <string>

#include "src/core/udp_puncher.h"
#include "src/fleet/fleet.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/json_export.h"
#include "src/obs/metrics.h"
#include "src/rendezvous/server.h"
#include "src/scenario/scenario.h"

namespace natpunch {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;

// --- Minimal JSON syntax checker (no DOM) for the export tests ------------

struct JsonCursor {
  const char* p;
  const char* end;

  void SkipWs() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p)) != 0) {
      ++p;
    }
  }
  bool Eat(char c) {
    SkipWs();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }
};

bool SkipJsonValue(JsonCursor* c);

bool SkipJsonString(JsonCursor* c) {
  if (!c->Eat('"')) {
    return false;
  }
  while (c->p < c->end) {
    const char ch = *c->p++;
    if (ch == '"') {
      return true;
    }
    if (ch == '\\') {
      if (c->p >= c->end) {
        return false;
      }
      ++c->p;  // escaped char (\uXXXX hex digits pass as plain chars)
    }
  }
  return false;
}

bool SkipJsonValue(JsonCursor* c) {
  c->SkipWs();
  if (c->p >= c->end) {
    return false;
  }
  const char ch = *c->p;
  if (ch == '{') {
    ++c->p;
    if (c->Eat('}')) {
      return true;
    }
    do {
      if (!SkipJsonString(c) || !c->Eat(':') || !SkipJsonValue(c)) {
        return false;
      }
    } while (c->Eat(','));
    return c->Eat('}');
  }
  if (ch == '[') {
    ++c->p;
    if (c->Eat(']')) {
      return true;
    }
    do {
      if (!SkipJsonValue(c)) {
        return false;
      }
    } while (c->Eat(','));
    return c->Eat(']');
  }
  if (ch == '"') {
    return SkipJsonString(c);
  }
  if (ch == 't') {
    return std::string_view(c->p, c->end - c->p).substr(0, 4) == "true" && (c->p += 4) != nullptr;
  }
  if (ch == 'f') {
    return std::string_view(c->p, c->end - c->p).substr(0, 5) == "false" && (c->p += 5) != nullptr;
  }
  if (ch == 'n') {
    return std::string_view(c->p, c->end - c->p).substr(0, 4) == "null" && (c->p += 4) != nullptr;
  }
  // Number: sign, digits, dot, exponent — accept the superset loosely.
  const char* start = c->p;
  while (c->p < c->end &&
         (std::isdigit(static_cast<unsigned char>(*c->p)) != 0 || *c->p == '-' || *c->p == '+' ||
          *c->p == '.' || *c->p == 'e' || *c->p == 'E')) {
    ++c->p;
  }
  return c->p > start;
}

bool IsValidJson(const std::string& text) {
  JsonCursor c{text.data(), text.data() + text.size()};
  if (!SkipJsonValue(&c)) {
    return false;
  }
  c.SkipWs();
  return c.p == c.end;
}

size_t CountOccurrences(const std::string& text, const std::string& needle) {
  size_t n = 0;
  for (size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

// --- Metric semantics ------------------------------------------------------

TEST(HistogramTest, BucketBoundaries) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("h", {10, 20});
  for (const int64_t v : {9, 10, 19, 20, 25}) {
    h->Observe(v);
  }
  // Bucket 0 = [0,10), bucket 1 = [10,20), overflow = [20, inf).
  EXPECT_EQ(h->bucket_count(0), 1u);  // 9
  EXPECT_EQ(h->bucket_count(1), 2u);  // 10, 19 — lower edge inclusive
  EXPECT_EQ(h->bucket_count(2), 2u);  // 20, 25 — upper edge exclusive
  EXPECT_EQ(h->count(), 5u);
  EXPECT_EQ(h->sum(), 9 + 10 + 19 + 20 + 25);
  EXPECT_EQ(h->observed_min(), 9);
  EXPECT_EQ(h->observed_max(), 25);
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("h", {10});
  h->Observe(-5);
  EXPECT_EQ(h->bucket_count(0), 1u);
  EXPECT_EQ(h->observed_min(), 0);
  EXPECT_EQ(h->sum(), 0);
}

TEST(HistogramTest, PercentileEmptyIsZero) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("h", {10, 20});
  EXPECT_EQ(h->Percentile(0.0), 0.0);
  EXPECT_EQ(h->Percentile(0.5), 0.0);
  EXPECT_EQ(h->Percentile(1.0), 0.0);
  EXPECT_EQ(h->observed_min(), 0);
  EXPECT_EQ(h->observed_max(), 0);
}

TEST(HistogramTest, PercentileSingleSampleIsExact) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("h", {10, 20, 40});
  h->Observe(17);
  // Interpolation inside [10,20) would yield non-17 values; the clamp to
  // [min, max] pins every percentile to the one sample.
  EXPECT_EQ(h->Percentile(0.01), 17.0);
  EXPECT_EQ(h->Percentile(0.50), 17.0);
  EXPECT_EQ(h->Percentile(0.99), 17.0);
}

TEST(HistogramTest, PercentileAllInOverflowStaysDataBounded) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("h", {10});
  h->Observe(100);
  h->Observe(200);
  h->Observe(300);
  // The overflow bucket's upper edge is the observed max, so interpolation
  // runs over [10, 300] and the clamp keeps results within [100, 300].
  const double p50 = h->Percentile(0.50);
  EXPECT_GE(p50, 100.0);
  EXPECT_LE(p50, 300.0);
  EXPECT_EQ(h->Percentile(1.0), 300.0);
  EXPECT_EQ(h->Percentile(0.0), 100.0);
}

TEST(HistogramTest, PercentileInterpolatesWithinBucket) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("h", {100});
  for (int i = 0; i < 10; ++i) {
    h->Observe(50);
  }
  h->Observe(0);
  h->Observe(99);
  // 12 samples in bucket [0,100): target = 6 -> 0 + (6/12)*100 = 50.
  EXPECT_DOUBLE_EQ(h->Percentile(0.5), 50.0);
}

TEST(CounterTest, WrapsModulo2To64) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("c");
  c->Inc(std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(c->value(), std::numeric_limits<uint64_t>::max());
  c->Inc(2);
  EXPECT_EQ(c->value(), 1u);
}

TEST(GaugeTest, TracksHighWaterMark) {
  MetricsRegistry reg;
  Gauge* g = reg.GetGauge("g");
  g->Set(5);
  g->Set(12);
  g->Set(3);
  EXPECT_EQ(g->value(), 3);
  EXPECT_EQ(g->max(), 12);
  g->Add(-3);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(g->max(), 12);
}

TEST(NullSafeHelpersTest, NullHandlesAreNoOps) {
  obs::Inc(nullptr);
  obs::Inc(nullptr, 7);
  obs::Set(nullptr, 3);
  obs::Observe(nullptr, 9);  // must not crash — "metrics disabled" path
}

// --- Registry lifecycle ----------------------------------------------------

TEST(MetricsRegistryTest, FindOrCreateReturnsStableHandles) {
  MetricsRegistry reg;
  Counter* c1 = reg.GetCounter("x");
  Counter* c2 = reg.GetCounter("x");
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(reg.FindCounter("x"), c1);
  EXPECT_EQ(reg.FindCounter("y"), nullptr);

  Histogram* h1 = reg.GetHistogram("h", {10, 20});
  Histogram* h2 = reg.GetHistogram("h", {999});  // later bounds ignored
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->bounds().size(), 2u);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsRegistrations) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("c");
  Gauge* g = reg.GetGauge("g");
  Histogram* h = reg.GetHistogram("h", {10});
  c->Inc(5);
  g->Set(7);
  h->Observe(3);
  reg.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(g->max(), 0);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(h->bucket_count(0), 0u);
  // Same handles after Reset — components registered once keep recording.
  EXPECT_EQ(reg.GetCounter("c"), c);
  EXPECT_EQ(reg.GetGauge("g"), g);
  EXPECT_EQ(reg.GetHistogram("h", {10}), h);
  EXPECT_FALSE(reg.empty());
}

// --- JSON snapshot ---------------------------------------------------------

TEST(MetricsJsonTest, GoldenSnapshotIsByteStable) {
  MetricsRegistry reg;
  reg.GetCounter("b.count")->Inc(3);
  reg.GetCounter("a.count")->Inc(1);  // name-sorted: "a.count" prints first
  Gauge* g = reg.GetGauge("depth");
  g->Set(2);
  g->Set(1);
  Histogram* h = reg.GetHistogram("lat", {10, 20});
  h->Observe(5);
  h->Observe(15);
  // p50: target 1.0 lands in [0,10) -> 10.0; p95/p99 interpolate in [10,20)
  // to 19.0/19.8, clamped to the observed max of 15.
  const std::string expected =
      "{\"counters\":{\"a.count\":1,\"b.count\":3},"
      "\"gauges\":{\"depth\":{\"value\":1,\"max\":2}},"
      "\"histograms\":{\"lat\":{\"count\":2,\"sum\":20,\"min\":5,\"max\":15,"
      "\"p50\":10.000,\"p95\":15.000,\"p99\":15.000,"
      "\"buckets\":[[10,1],[20,1]],\"overflow\":0}}}";
  EXPECT_EQ(obs::MetricsJson(reg), expected);
  EXPECT_EQ(obs::MetricsJson(reg), expected) << "snapshotting must not mutate";
  EXPECT_TRUE(IsValidJson(obs::MetricsJson(reg)));
}

TEST(MetricsJsonTest, EmptyRegistryAndEscaping) {
  MetricsRegistry reg;
  EXPECT_EQ(obs::MetricsJson(reg),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
  reg.GetCounter("weird\"name\\with\ncontrol")->Inc();
  const std::string json = obs::MetricsJson(reg);
  EXPECT_TRUE(IsValidJson(json)) << json;
}

// --- Chrome trace export ---------------------------------------------------

TEST(ChromeTraceTest, ExportIsStructurallyValidForPerfetto) {
  Scenario::Options options;
  options.metrics = true;
  auto topo = MakeFig5(NatConfig{}, NatConfig{}, options);
  Network& net = topo.scenario->net();
  net.trace().set_enabled(true);

  // Drive real traffic through both NATs (same no-rendezvous punch as the
  // zero-alloc test: sequential port allocation pins both publics at 62000).
  auto sa = topo.a->udp().Bind(4321);
  auto sb = topo.b->udp().Bind(4321);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  const Endpoint a_pub(NatAIp(), 62000);
  const Endpoint b_pub(NatBIp(), 62000);
  const uint8_t msg[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*sa)->SendTo(b_pub, msg, sizeof(msg)).ok());
    ASSERT_TRUE((*sb)->SendTo(a_pub, msg, sizeof(msg)).ok());
    net.RunFor(Millis(100));
  }
  ASSERT_GT(net.trace().records().size(), 10u);

  const std::string json = obs::ChromeTraceJson(net.trace(), "obs_test");
  EXPECT_TRUE(IsValidJson(json)) << json.substr(0, 400);
  // The envelope Perfetto's JSON importer expects.
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.substr(json.size() - 2), "]}");
  // Process metadata plus one named thread row per interned node.
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"process_name\""), 1u);
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"thread_name\""), net.trace().name_count());
  EXPECT_NE(json.find("\"args\":{\"name\":\"A-nat\"}"), std::string::npos);
  // Every record became an instant event with a scope, matching counts.
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"i\""), net.trace().records().size());
  EXPECT_EQ(CountOccurrences(json, "\"s\":\"t\""), net.trace().records().size());
  // Categories come from the fixed taxonomy only.
  EXPECT_EQ(CountOccurrences(json, "\"cat\":\"net\"") +
                CountOccurrences(json, "\"cat\":\"nat\"") +
                CountOccurrences(json, "\"cat\":\"drop\"") +
                CountOccurrences(json, "\"cat\":\"fault\""),
            net.trace().records().size());
}

TEST(ChromeTraceTest, EmptyTraceStillValid) {
  TraceRecorder trace;
  const std::string json = obs::ChromeTraceJson(trace, "empty");
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
}

// --- End-to-end: the instrumentation is wired ------------------------------

TEST(ObsEndToEndTest, Fig5PunchMovesTheMetrics) {
  Scenario::Options options;
  options.seed = 7;
  options.metrics = true;
  auto topo = MakeFig5(NatConfig{}, NatConfig{}, options);
  Network& net = topo.scenario->net();
  ASSERT_NE(net.metrics(), nullptr);

  RendezvousServer server(topo.server, kServerPort);
  server.Start();
  UdpRendezvousClient ca(topo.a, server.endpoint(), 1);
  UdpRendezvousClient cb(topo.b, server.endpoint(), 2);
  ca.Register(4321, [](Result<Endpoint>) {});
  cb.Register(4321, [](Result<Endpoint>) {});
  UdpHolePuncher pa(&ca);
  UdpHolePuncher pb(&cb);
  net.RunFor(Seconds(2));

  bool punched = false;
  pa.ConnectToPeer(2, [&](Result<UdpP2pSession*> r) { punched = r.ok(); });
  net.RunFor(Seconds(15));
  ASSERT_TRUE(punched);

  const MetricsRegistry& reg = *net.metrics();
  EXPECT_GT(reg.FindCounter("loop.events_dispatched")->value(), 0u);
  EXPECT_GT(reg.FindGauge("loop.heap_depth")->max(), 0);
  // Both sides punched: initiator's attempt plus the passive-side punch-back.
  EXPECT_EQ(reg.FindCounter("punch.attempts")->value(), 2u);
  EXPECT_EQ(reg.FindCounter("punch.successes")->value(), 2u);
  EXPECT_EQ(reg.FindCounter("punch.failures")->value(), 0u);
  const Histogram* rtt = reg.FindHistogram("punch.rtt_ms");
  ASSERT_NE(rtt, nullptr);
  EXPECT_EQ(rtt->count(), 2u);
  EXPECT_GT(rtt->observed_max(), 0);
  // Each NAT created at least its rendezvous mapping (cone: one mapping per
  // private endpoint, reused toward the peer).
  EXPECT_GE(reg.FindCounter("nat.A-nat.mappings_created")->value(), 1u);
  EXPECT_GE(reg.FindCounter("nat.B-nat.mappings_created")->value(), 1u);
}

TEST(ObsEndToEndTest, DisabledMetricsRecordNothingAndSimulationMatches) {
  // The same punch with metrics off: registry stays absent and the
  // simulation is bit-identical (event count) — recording never steers.
  uint64_t events_with = 0;
  uint64_t events_without = 0;
  for (const bool metrics : {true, false}) {
    Scenario::Options options;
    options.seed = 7;
    options.metrics = metrics;
    auto topo = MakeFig5(NatConfig{}, NatConfig{}, options);
    Network& net = topo.scenario->net();
    auto sa = topo.a->udp().Bind(4321);
    auto sb = topo.b->udp().Bind(4321);
    ASSERT_TRUE(sa.ok());
    ASSERT_TRUE(sb.ok());
    const uint8_t msg[4] = {1, 2, 3, 4};
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE((*sa)->SendTo(Endpoint(NatBIp(), 62000), msg, sizeof(msg)).ok());
      ASSERT_TRUE((*sb)->SendTo(Endpoint(NatAIp(), 62000), msg, sizeof(msg)).ok());
      net.RunFor(Millis(100));
    }
    (metrics ? events_with : events_without) = net.event_loop().events_processed();
    EXPECT_EQ(net.metrics() != nullptr, metrics);
  }
  EXPECT_EQ(events_with, events_without);
}

TEST(ObsEndToEndTest, FleetTaxonomyPartitionsEveryFailure) {
  auto fleet = BuildFleet(PaperTable1Vendors(), /*seed=*/2005);
  fleet.resize(60);  // a representative slice keeps the test fast
  const Table1Result result = RunFleet(fleet, /*seed=*/6);

  auto check = [](const std::string& name, const VendorTally& t) {
    SCOPED_TRACE(name);
    const FailureTaxonomy& tax = t.taxonomy;
    // Every UDP/TCP "no" lands in exactly one taxonomy bucket.
    EXPECT_EQ(tax.udp_unreachable + tax.udp_inconsistent, t.udp_n - t.udp_yes);
    EXPECT_EQ(tax.tcp_unreachable + tax.tcp_inconsistent + tax.tcp_rejected,
              t.tcp_n - t.tcp_yes);
  };
  ASSERT_FALSE(result.rows.empty());
  for (const auto& [name, tally] : result.rows) {
    check(name, tally);
  }
  check("total", result.total);

  // The taxonomy participates in the parallel runner's bit-identical
  // contract (VendorTally::operator== includes it).
  EXPECT_EQ(RunFleetParallel(fleet, /*seed=*/6, 4), result);
}

}  // namespace
}  // namespace natpunch
