// The tentpole guarantee: once a hole-punched UDP session reaches steady
// state, forwarding a packet end-to-end (socket -> host -> NAT -> internet
// -> NAT -> host -> socket) performs ZERO heap allocations, even with
// packet tracing enabled. This binary replaces global operator new/delete
// with counting hooks; it must stay its own test target so the hooks never
// interfere with the other suites.

#include <gtest/gtest.h>

#include <execinfo.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>

#include "src/core/udp_puncher.h"
#include "src/nat/nat_table.h"
#include "src/obs/metrics.h"
#include "src/rendezvous/client.h"
#include "src/rendezvous/server.h"
#include "src/scenario/scenario.h"
#include "src/transport/host.h"
#include "src/util/flat_hash.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<uint64_t> g_allocs{0};

// Backtraces of the first few counted allocations, for actionable failure
// output. Captured with async-signal-unsafe-free machinery only (backtrace
// into a fixed buffer); symbolization happens lazily at report time.
constexpr int kMaxSamples = 4;
constexpr int kMaxFrames = 16;
void* g_sample_frames[kMaxSamples][kMaxFrames];
int g_sample_depth[kMaxSamples];
std::atomic<int> g_samples{0};

void CountAllocation() {
  if (!g_counting.load(std::memory_order_relaxed)) {
    return;
  }
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  int slot = g_samples.load(std::memory_order_relaxed);
  if (slot < kMaxSamples &&
      g_samples.compare_exchange_strong(slot, slot + 1, std::memory_order_relaxed)) {
    // backtrace() itself may allocate on first use; that's fine — samples
    // only exist on a failing run, and the suppression flag below keeps the
    // recursion from double-counting.
    g_counting.store(false, std::memory_order_relaxed);
    g_sample_depth[slot] = backtrace(g_sample_frames[slot], kMaxFrames);
    g_counting.store(true, std::memory_order_relaxed);
  }
}

std::string DescribeSamples() {
  std::string out = "allocation backtraces (first " +
                    std::to_string(g_samples.load()) + "):\n";
  for (int s = 0; s < g_samples.load() && s < kMaxSamples; ++s) {
    char** symbols = backtrace_symbols(g_sample_frames[s], g_sample_depth[s]);
    out += "--- alloc " + std::to_string(s) + "\n";
    if (symbols != nullptr) {
      for (int f = 0; f < g_sample_depth[s]; ++f) {
        out += "    ";
        out += symbols[f];
        out += "\n";
      }
      std::free(symbols);
    }
  }
  return out;
}

}  // namespace

void* operator new(size_t size) {
  CountAllocation();
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](size_t size) {
  CountAllocation();
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace natpunch {
namespace {

TEST(ZeroAllocTest, SteadyStatePunchedExchangeAllocatesNothing) {
  // Fig. 5: A and B behind distinct default (cone, port-restricted) NATs.
  // Sequential allocation from port_base gives each client the paper's
  // 62000 public port, so the punch needs no rendezvous server.
  Scenario::Options options;
  options.metrics = true;  // the guarantee must hold WITH metrics enabled
  auto topo = MakeFig5(NatConfig{}, NatConfig{}, options);
  Network& net = topo.scenario->net();
  net.trace().set_enabled(true);  // ...and WITH tracing on

  auto sa = topo.a->udp().Bind(4321);
  auto sb = topo.b->udp().Bind(4321);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  size_t a_bytes = 0;
  size_t b_bytes = 0;
  (*sa)->SetReceiveCallback([&](const Endpoint&, const Payload& p) { a_bytes += p.size(); });
  (*sb)->SetReceiveCallback([&](const Endpoint&, const Payload& p) { b_bytes += p.size(); });

  const Endpoint a_pub(NatAIp(), 62000);
  const Endpoint b_pub(NatBIp(), 62000);
  uint8_t msg[32];
  for (size_t i = 0; i < sizeof(msg); ++i) {
    msg[i] = static_cast<uint8_t>(i);
  }

  // Punch + warm-up. The first unsolicited arrivals are dropped; once both
  // sides have sent, the holes stay open. The warm-up must process at least
  // as many rounds as the measured phase so every arena (event-loop ring,
  // trace records vector, NAT tables, LAN delivery slots) reaches its
  // high-water capacity before counting starts.
  constexpr int kRounds = 100;
  for (int i = 0; i < kRounds + 20; ++i) {
    ASSERT_TRUE((*sa)->SendTo(b_pub, msg, sizeof(msg)).ok());
    ASSERT_TRUE((*sb)->SendTo(a_pub, msg, sizeof(msg)).ok());
    net.RunFor(Millis(100));
  }
  ASSERT_GT(a_bytes, 0u) << "punch failed: A never heard from B";
  ASSERT_GT(b_bytes, 0u) << "punch failed: B never heard from A";
  net.trace().Clear();  // keeps capacity; steady state records into it

  const size_t a_before = a_bytes;
  const size_t b_before = b_bytes;
  const obs::Counter* dispatched = net.metrics()->FindCounter("loop.events_dispatched");
  ASSERT_NE(dispatched, nullptr);
  const uint64_t dispatched_before = dispatched->value();
  g_allocs.store(0);
  g_samples.store(0);
  g_counting.store(true);
  for (int i = 0; i < kRounds; ++i) {
    (*sa)->SendTo(b_pub, msg, sizeof(msg));
    (*sb)->SendTo(a_pub, msg, sizeof(msg));
    net.RunFor(Millis(100));
  }
  g_counting.store(false);

  // Every steady-state packet was delivered...
  EXPECT_EQ(a_bytes - a_before, static_cast<size_t>(kRounds) * sizeof(msg));
  EXPECT_EQ(b_bytes - b_before, static_cast<size_t>(kRounds) * sizeof(msg));
  // ...tracing really was recording hops...
  EXPECT_GT(net.trace().records().size(), static_cast<size_t>(kRounds));
  // ...metrics really were recording (dispatch counter moved)...
  EXPECT_GT(dispatched->value(), dispatched_before + static_cast<uint64_t>(kRounds));
  // ...and not one byte came off the heap.
  EXPECT_EQ(g_allocs.load(), 0u) << DescribeSamples();
}

TEST(ZeroAllocTest, SteadyStateMappingChurnAllocatesNothing) {
  // The NAT table's pooled-entry guarantee: once the table has reached its
  // high-water size, continuous mapping churn — expiry tearing mappings down
  // and new outbound traffic recreating them — recycles entries, hash slots,
  // and session vectors without touching the heap.
  NatTable table(NatMapping::kEndpointIndependent, NatPortAllocation::kSequential, 62000, Rng(1));

  // A bounded endpoint population (the steady-state shape: the same inside
  // hosts keep talking) cycling through a table that holds half of them live
  // at any instant.
  constexpr uint32_t kEndpoints = 512;
  constexpr int64_t kLifetime = kEndpoints / 2;  // in churn steps
  const NatTable::Timeouts timeouts{Micros(kLifetime), Micros(kLifetime), Micros(kLifetime)};
  const auto private_ep = [](uint32_t i) {
    return Endpoint(Ipv4Address(0x0a000001u + i / 128), static_cast<uint16_t>(2000 + i % 128));
  };
  const Endpoint remotes[2] = {Endpoint(Ipv4Address::FromOctets(18, 0, 0, 1), 9000),
                               Endpoint(Ipv4Address::FromOctets(18, 0, 0, 2), 9001)};

  int64_t now = 0;
  const auto churn = [&](int steps) {
    for (int i = 0; i < steps; ++i) {
      const uint32_t idx = static_cast<uint32_t>(now) % kEndpoints;
      NatTable::Entry* entry = table.MapOutbound(IpProtocol::kUdp, private_ep(idx),
                                                 remotes[now % 2], SimTime(now));
      ASSERT_NE(entry, nullptr);
      ++now;
      table.Expire(SimTime(now), timeouts);
    }
  };

  // Warm-up: several full generations so the entry pool, every flat-hash
  // index, and the per-entry session vectors reach high water.
  churn(static_cast<int>(kEndpoints) * 6);
  const size_t live_before = table.size();
  ASSERT_GT(live_before, 0u);

  g_allocs.store(0);
  g_samples.store(0);
  g_counting.store(true);
  churn(static_cast<int>(kEndpoints) * 6);
  g_counting.store(false);

  EXPECT_EQ(table.size(), live_before);  // the churn really was steady-state
  EXPECT_EQ(g_allocs.load(), 0u) << DescribeSamples();
}

TEST(ZeroAllocTest, SwarmSteadyStateKeepalivesAndDataAllocateNothing) {
  // The bench_swarm configuration in miniature: dozens of punched sessions
  // multiplexed over one socket pair with keepalive jitter enabled. A warm
  // steady-state round — an empty-payload data tick on every session plus
  // whatever keepalive/expiry timers fall due, each re-arming its intrusive
  // handle through the timing wheel — must not allocate, and the session
  // slab pools must not grow (zero slab growth across 100 punched rounds,
  // with metrics AND tracing on).
  Scenario::Options options;
  options.metrics = true;
  auto topo = MakeFig5(NatConfig{}, NatConfig{}, options);
  Network& net = topo.scenario->net();
  net.trace().set_enabled(true);

  RendezvousServer server(topo.server, 3478);
  ASSERT_TRUE(server.Start().ok());
  UdpRendezvousClient ca(topo.a, server.endpoint(), 1);
  UdpRendezvousClient cb(topo.b, server.endpoint(), 2);
  ca.Register(4321, [](Result<Endpoint>) {});
  cb.Register(4321, [](Result<Endpoint>) {});
  UdpPunchConfig punch_config;
  punch_config.keepalive_interval = Seconds(2);
  punch_config.keepalive_jitter = Millis(500);
  punch_config.session_expiry = Seconds(120);
  UdpHolePuncher pa(&ca, punch_config);
  UdpHolePuncher pb(&cb, punch_config);
  std::vector<UdpP2pSession*> initiator;
  std::vector<UdpP2pSession*> responder;
  pb.SetIncomingSessionCallback([&](UdpP2pSession* s) { responder.push_back(s); });
  net.RunFor(Seconds(2));
  constexpr int kSessions = 32;
  for (int i = 0; i < kSessions; ++i) {
    pa.ConnectToPeer(2, [&](Result<UdpP2pSession*> r) {
      ASSERT_TRUE(r.ok());
      initiator.push_back(*r);
    });
    net.RunFor(Millis(700));
  }
  ASSERT_EQ(initiator.size(), static_cast<size_t>(kSessions));
  ASSERT_EQ(responder.size(), static_cast<size_t>(kSessions));

  // One steady-state round: every session sends an inline-capacity (empty)
  // datagram, then half a second of simulated time drains deliveries and
  // any keepalive/expiry timers that land in the window.
  const auto round = [&] {
    for (UdpP2pSession* s : initiator) {
      s->Send(Bytes{});
    }
    for (UdpP2pSession* s : responder) {
      s->Send(Bytes{});
    }
    net.RunFor(Millis(500));
  };

  // Warm-up past every high-water mark (event ring, wheel slot lists, heap
  // vector, flat-hash tables, socket buffers, trace record vector) AND
  // through several full keepalive generations, then count.
  for (int i = 0; i < 60; ++i) {
    round();
  }
  net.trace().Clear();  // keeps capacity; steady state records into it

  // Snapshot the session slab pools via their mem.* gauges: a steady-state
  // population must neither grow a slab nor leak a live object.
  obs::MetricsRegistry* registry = net.metrics();
  ASSERT_NE(registry, nullptr);
  const std::string pool_a = "mem.udp_sessions." + topo.a->name();
  const std::string pool_b = "mem.udp_sessions." + topo.b->name();
  const int64_t slabs_a = registry->GetGauge(pool_a + ".slabs")->value();
  const int64_t slabs_b = registry->GetGauge(pool_b + ".slabs")->value();
  const int64_t live_a = registry->GetGauge(pool_a + ".live")->value();
  const int64_t live_b = registry->GetGauge(pool_b + ".live")->value();
  ASSERT_GT(live_a + live_b, 0) << "session pools not wired to the gauges";

  g_allocs.store(0);
  g_samples.store(0);
  g_counting.store(true);
  for (int i = 0; i < 40; ++i) {
    round();
  }
  g_counting.store(false);

  for (UdpP2pSession* s : initiator) {
    EXPECT_TRUE(s->alive());
  }
  for (UdpP2pSession* s : responder) {
    EXPECT_TRUE(s->alive());
  }
  EXPECT_EQ(g_allocs.load(), 0u) << DescribeSamples();
  EXPECT_EQ(registry->GetGauge(pool_a + ".slabs")->value(), slabs_a) << "pool A grew a slab";
  EXPECT_EQ(registry->GetGauge(pool_b + ".slabs")->value(), slabs_b) << "pool B grew a slab";
  EXPECT_EQ(registry->GetGauge(pool_a + ".live")->value(), live_a) << "pool A leaked sessions";
  EXPECT_EQ(registry->GetGauge(pool_b + ".live")->value(), live_b) << "pool B leaked sessions";
}

TEST(ZeroAllocTest, TimerRearmChurnAndResetReuseAllocateNothing) {
  // The intrusive-handle guarantee in isolation: perpetual re-arming timers
  // migrating wheel -> heap -> dispatch, and handle reuse across Reset(),
  // never allocate once the loop's arenas are warm.
  struct Tick {
    EventLoop* loop = nullptr;
    uint64_t rng = 0;
    uint64_t fired = 0;
    TimerHandle handle;
    void Fire() {
      ++fired;
      rng = HashMix64(rng + 1);
      // Spread across wheel levels: anything from 1us to ~80s.
      loop->ScheduleTimerAfter(Micros(1 + static_cast<int64_t>(rng % 80000000ull)), &handle);
    }
  };
  EventLoop loop;
  std::vector<Tick> ticks(64);
  const auto arm_all = [&] {
    for (size_t i = 0; i < ticks.size(); ++i) {
      ticks[i].loop = &loop;
      ticks[i].rng = HashMix64(i * 7919 + 1);
      ticks[i].handle.Bind<&Tick::Fire>(&ticks[i]);
      loop.ScheduleTimerAfter(Micros(static_cast<int64_t>(i) + 1), &ticks[i].handle);
    }
  };
  arm_all();
  loop.RunUntil(SimTime(Seconds(600).micros()));  // warm every tier to high water

  g_allocs.store(0);
  g_samples.store(0);
  g_counting.store(true);
  loop.RunUntil(SimTime(Seconds(1200).micros()));
  // Reset idles every pending handle; re-arming afterwards reuses the same
  // arenas (ring, wheel lists, heap vector, timer hash) without growing.
  loop.Reset();
  arm_all();
  loop.RunUntil(SimTime(Seconds(600).micros()));
  g_counting.store(false);

  uint64_t total = 0;
  for (const Tick& t : ticks) {
    total += t.fired;
  }
  EXPECT_GT(total, 2000u);  // the churn really ran
  EXPECT_EQ(g_allocs.load(), 0u) << DescribeSamples();
}

TEST(ZeroAllocTest, JumboPayloadsAllocateButStillFlow) {
  // Control: payloads beyond Payload::kInlineCapacity must spill to the
  // heap (the counting hook sees them), proving the zero above is a
  // property of the inline path rather than a dead hook.
  auto topo = MakeFig5(NatConfig{}, NatConfig{});
  Network& net = topo.scenario->net();
  auto sa = topo.a->udp().Bind(4321);
  auto sb = topo.b->udp().Bind(4321);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  size_t b_bytes = 0;
  (*sb)->SetReceiveCallback([&](const Endpoint&, const Payload& p) { b_bytes += p.size(); });
  const Endpoint a_pub(NatAIp(), 62000);
  const Endpoint b_pub(NatBIp(), 62000);
  uint8_t big[Payload::kInlineCapacity + 64] = {};
  for (int i = 0; i < 20; ++i) {
    (*sa)->SendTo(b_pub, big, sizeof(big));
    (*sb)->SendTo(a_pub, big, sizeof(big));
    net.RunFor(Millis(100));
  }
  ASSERT_GT(b_bytes, 0u);

  g_allocs.store(0);
  g_samples.store(0);
  g_counting.store(true);
  (*sa)->SendTo(b_pub, big, sizeof(big));
  net.RunFor(Millis(100));
  g_counting.store(false);
  EXPECT_GT(g_allocs.load(), 0u);
}

}  // namespace
}  // namespace natpunch
