// Tests for the user-space TCP stack: handshake, data transfer, loss
// recovery, teardown, RST handling, bind/SO_REUSEADDR rules, and — most
// importantly for the paper — simultaneous open (§4.4) and the two OS accept
// policies (§4.3).

#include <gtest/gtest.h>

#include <numeric>

#include "src/netsim/network.h"
#include "src/transport/host.h"

namespace natpunch {
namespace {

class TcpTest : public ::testing::Test {
 protected:
  Host* MakeHost(const std::string& name, uint8_t last_octet,
                 TcpAcceptPolicy policy = TcpAcceptPolicy::kBsd, bool rst_closed = true) {
    HostConfig config;
    config.tcp.accept_policy = policy;
    config.tcp.rst_on_closed_port = rst_closed;
    config.tcp.initial_rto = Millis(500);
    config.tcp.time_wait = Seconds(2);
    Host* h = net_.Create<Host>(name, config);
    h->AttachTo(lan_, Ipv4Address::FromOctets(10, 0, 0, last_octet));
    return h;
  }

  void SetUp() override { lan_ = net_.CreateLan("lan", LanConfig{.latency = Millis(1)}); }

  Endpoint Ep(Host* h, uint16_t port) { return Endpoint(h->primary_address(), port); }

  Network net_{1};
  Lan* lan_ = nullptr;
};

TEST_F(TcpTest, ConnectAccept) {
  Host* a = MakeHost("a", 1);
  Host* b = MakeHost("b", 2);

  TcpSocket* listener = b->tcp().CreateSocket();
  ASSERT_TRUE(listener->Bind(7000).ok());
  TcpSocket* accepted = nullptr;
  ASSERT_TRUE(listener->Listen([&](TcpSocket* s) { accepted = s; }).ok());

  TcpSocket* client = a->tcp().CreateSocket();
  Status connect_status(ErrorCode::kInProgress);
  ASSERT_TRUE(client->Connect(Ep(b, 7000), [&](Status s) { connect_status = s; }).ok());

  net_.RunFor(Seconds(1));
  EXPECT_TRUE(connect_status.ok());
  ASSERT_NE(accepted, nullptr);
  EXPECT_EQ(client->state(), TcpState::kEstablished);
  EXPECT_EQ(accepted->state(), TcpState::kEstablished);
  EXPECT_TRUE(accepted->via_accept());
  EXPECT_FALSE(client->via_accept());
  EXPECT_EQ(accepted->remote_endpoint(), client->local_endpoint());
  EXPECT_EQ(client->remote_endpoint(), accepted->local_endpoint());
}

TEST_F(TcpTest, DataBothDirections) {
  Host* a = MakeHost("a", 1);
  Host* b = MakeHost("b", 2);
  TcpSocket* listener = b->tcp().CreateSocket();
  ASSERT_TRUE(listener->Bind(7000).ok());
  TcpSocket* accepted = nullptr;
  ASSERT_TRUE(listener->Listen([&](TcpSocket* s) { accepted = s; }).ok());

  TcpSocket* client = a->tcp().CreateSocket();
  Bytes client_got;
  Bytes server_got;
  client->SetDataCallback(
      [&](const Bytes& d) { client_got.insert(client_got.end(), d.begin(), d.end()); });
  ASSERT_TRUE(client
                  ->Connect(Ep(b, 7000),
                            [&](Status s) {
                              ASSERT_TRUE(s.ok());
                              client->Send(Bytes{'h', 'i'});
                            })
                  .ok());
  net_.RunFor(Millis(200));
  ASSERT_NE(accepted, nullptr);
  accepted->SetDataCallback([&](const Bytes& d) {
    server_got.insert(server_got.end(), d.begin(), d.end());
    accepted->Send(Bytes{'y', 'o'});
  });
  // Client data may have already landed before the callback was installed —
  // resend to be deterministic about ordering in this test.
  client->Send(Bytes{'h', 'i'});
  net_.RunFor(Seconds(1));
  EXPECT_EQ(server_got.size(), 2u);
  EXPECT_EQ(client_got, (Bytes{'y', 'o'}));
}

TEST_F(TcpTest, LargeTransferSegmentsAndReassembles) {
  Host* a = MakeHost("a", 1);
  Host* b = MakeHost("b", 2);
  TcpSocket* listener = b->tcp().CreateSocket();
  ASSERT_TRUE(listener->Bind(7000).ok());
  Bytes received;
  listener->Listen([&](TcpSocket* s) {
    s->SetDataCallback(
        [&](const Bytes& d) { received.insert(received.end(), d.begin(), d.end()); });
  });

  Bytes blob(100 * 1000);
  std::iota(blob.begin(), blob.end(), 0);
  TcpSocket* client = a->tcp().CreateSocket();
  client->Connect(Ep(b, 7000), [&](Status s) {
    ASSERT_TRUE(s.ok());
    client->Send(blob);
  });
  net_.RunFor(Seconds(10));
  ASSERT_EQ(received.size(), blob.size());
  EXPECT_EQ(received, blob);
  EXPECT_EQ(client->bytes_sent(), blob.size());
}

TEST_F(TcpTest, TransferSurvivesLoss) {
  lan_->set_config(LanConfig{.latency = Millis(1), .loss = 0.1});
  Host* a = MakeHost("a", 1);
  Host* b = MakeHost("b", 2);
  TcpSocket* listener = b->tcp().CreateSocket();
  ASSERT_TRUE(listener->Bind(7000).ok());
  Bytes received;
  listener->Listen([&](TcpSocket* s) {
    s->SetDataCallback(
        [&](const Bytes& d) { received.insert(received.end(), d.begin(), d.end()); });
  });

  Bytes blob(20 * 1000, 0x5a);
  TcpSocket* client = a->tcp().CreateSocket();
  client->Connect(Ep(b, 7000), [&](Status s) {
    if (s.ok()) {
      client->Send(blob);
    }
  });
  net_.RunFor(Seconds(120));
  EXPECT_EQ(received.size(), blob.size());
}

TEST_F(TcpTest, ConnectRefusedByClosedPort) {
  Host* a = MakeHost("a", 1);
  Host* b = MakeHost("b", 2);
  TcpSocket* client = a->tcp().CreateSocket();
  Status result;
  client->Connect(Ep(b, 7000), [&](Status s) { result = s; });
  net_.RunFor(Seconds(1));
  EXPECT_EQ(result.code(), ErrorCode::kConnectionRefused);
  EXPECT_EQ(client->state(), TcpState::kClosed);
}

TEST_F(TcpTest, ConnectTimesOutWhenSynsVanish) {
  Host* a = MakeHost("a", 1);
  Host* b = MakeHost("b", 2, TcpAcceptPolicy::kBsd, /*rst_closed=*/false);
  (void)b;
  TcpSocket* client = a->tcp().CreateSocket();
  Status result(ErrorCode::kInProgress);
  client->Connect(Ep(b, 7000), [&](Status s) { result = s; });
  net_.RunFor(Seconds(120));
  EXPECT_EQ(result.code(), ErrorCode::kTimedOut);
}

TEST_F(TcpTest, SynRetransmissionEventuallyConnects) {
  // Heavy loss: the first SYN(s) may die, but backoff retries get through.
  lan_->set_config(LanConfig{.latency = Millis(1), .loss = 0.5});
  Host* a = MakeHost("a", 1);
  Host* b = MakeHost("b", 2);
  TcpSocket* listener = b->tcp().CreateSocket();
  ASSERT_TRUE(listener->Bind(7000).ok());
  listener->Listen([](TcpSocket*) {});
  int successes = 0;
  for (int i = 0; i < 5; ++i) {
    TcpSocket* client = a->tcp().CreateSocket();
    client->Connect(Ep(b, 7000), [&](Status s) { successes += s.ok() ? 1 : 0; });
  }
  net_.RunFor(Seconds(120));
  EXPECT_GE(successes, 4);  // p(all retries of one connect lost) is tiny
}

TEST_F(TcpTest, BindConflictWithoutReuseAddr) {
  Host* a = MakeHost("a", 1);
  TcpSocket* s1 = a->tcp().CreateSocket();
  TcpSocket* s2 = a->tcp().CreateSocket();
  ASSERT_TRUE(s1->Bind(7000).ok());
  EXPECT_EQ(s2->Bind(7000).code(), ErrorCode::kAddressInUse);
}

TEST_F(TcpTest, ReuseAddrAllowsSharedPort) {
  // §4.1: every socket sharing the port must set the option.
  Host* a = MakeHost("a", 1);
  TcpSocket* s1 = a->tcp().CreateSocket();
  TcpSocket* s2 = a->tcp().CreateSocket();
  TcpSocket* s3 = a->tcp().CreateSocket();
  s1->SetReuseAddr(true);
  s2->SetReuseAddr(true);
  ASSERT_TRUE(s1->Bind(7000).ok());
  ASSERT_TRUE(s2->Bind(7000).ok());
  EXPECT_EQ(s3->Bind(7000).code(), ErrorCode::kAddressInUse);  // s3 didn't opt in
}

TEST_F(TcpTest, DuplicateFourTupleRejected) {
  Host* a = MakeHost("a", 1);
  Host* b = MakeHost("b", 2);
  TcpSocket* listener = b->tcp().CreateSocket();
  ASSERT_TRUE(listener->Bind(7000).ok());
  listener->Listen([](TcpSocket*) {});
  TcpSocket* c1 = a->tcp().CreateSocket();
  TcpSocket* c2 = a->tcp().CreateSocket();
  c1->SetReuseAddr(true);
  c2->SetReuseAddr(true);
  ASSERT_TRUE(c1->Bind(5000).ok());
  ASSERT_TRUE(c2->Bind(5000).ok());
  ASSERT_TRUE(c1->Connect(Ep(b, 7000), [](Status) {}).ok());
  EXPECT_EQ(c2->Connect(Ep(b, 7000), [](Status) {}).code(), ErrorCode::kAddressInUse);
}

TEST_F(TcpTest, SameLocalPortDifferentRemotes) {
  // The Fig. 7 arrangement: one local port, multiple outbound connections.
  Host* a = MakeHost("a", 1);
  Host* b = MakeHost("b", 2);
  Host* c = MakeHost("c", 3);
  for (Host* h : {b, c}) {
    TcpSocket* l = h->tcp().CreateSocket();
    ASSERT_TRUE(l->Bind(7000).ok());
    l->Listen([](TcpSocket*) {});
  }
  TcpSocket* c1 = a->tcp().CreateSocket();
  TcpSocket* c2 = a->tcp().CreateSocket();
  c1->SetReuseAddr(true);
  c2->SetReuseAddr(true);
  ASSERT_TRUE(c1->Bind(5000).ok());
  ASSERT_TRUE(c2->Bind(5000).ok());
  int ok = 0;
  c1->Connect(Ep(b, 7000), [&](Status s) { ok += s.ok(); });
  c2->Connect(Ep(c, 7000), [&](Status s) { ok += s.ok(); });
  net_.RunFor(Seconds(1));
  EXPECT_EQ(ok, 2);
}

TEST_F(TcpTest, SimultaneousOpenBsd) {
  // §4.4: SYNs cross; both connect() calls succeed; no listener involved.
  Host* a = MakeHost("a", 1, TcpAcceptPolicy::kBsd);
  Host* b = MakeHost("b", 2, TcpAcceptPolicy::kBsd);
  TcpSocket* ca = a->tcp().CreateSocket();
  TcpSocket* cb = b->tcp().CreateSocket();
  ASSERT_TRUE(ca->Bind(7000).ok());
  ASSERT_TRUE(cb->Bind(7000).ok());
  Status ra(ErrorCode::kInProgress);
  Status rb(ErrorCode::kInProgress);
  ca->Connect(Ep(b, 7000), [&](Status s) { ra = s; });
  cb->Connect(Ep(a, 7000), [&](Status s) { rb = s; });
  net_.RunFor(Seconds(2));
  EXPECT_TRUE(ra.ok()) << ra.ToString();
  EXPECT_TRUE(rb.ok()) << rb.ToString();
  EXPECT_EQ(ca->state(), TcpState::kEstablished);
  EXPECT_EQ(cb->state(), TcpState::kEstablished);

  // And the stream works.
  Bytes got;
  cb->SetDataCallback([&](const Bytes& d) { got.insert(got.end(), d.begin(), d.end()); });
  ca->Send(Bytes{'p', '2', 'p'});
  net_.RunFor(Seconds(1));
  EXPECT_EQ(got, (Bytes{'p', '2', 'p'}));
}

TEST_F(TcpTest, SimultaneousOpenLinuxPolicyDeliversViaAccept) {
  // §4.3 behavior 2 on both ends: all connect() calls fail with
  // "address in use", but each side receives a working stream via accept()
  // — the stream that "created itself on the wire" (§4.4).
  Host* a = MakeHost("a", 1, TcpAcceptPolicy::kLinuxWindows);
  Host* b = MakeHost("b", 2, TcpAcceptPolicy::kLinuxWindows);

  TcpSocket* accepted_a = nullptr;
  TcpSocket* accepted_b = nullptr;
  for (auto [host, slot] : {std::pair{a, &accepted_a}, std::pair{b, &accepted_b}}) {
    TcpSocket* l = host->tcp().CreateSocket();
    l->SetReuseAddr(true);
    ASSERT_TRUE(l->Bind(7000).ok());
    ASSERT_TRUE(l->Listen([slot](TcpSocket* s) { *slot = s; }).ok());
  }
  TcpSocket* ca = a->tcp().CreateSocket();
  TcpSocket* cb = b->tcp().CreateSocket();
  ca->SetReuseAddr(true);
  cb->SetReuseAddr(true);
  ASSERT_TRUE(ca->Bind(7000).ok());
  ASSERT_TRUE(cb->Bind(7000).ok());
  Status ra(ErrorCode::kInProgress);
  Status rb(ErrorCode::kInProgress);
  ca->Connect(Ep(b, 7000), [&](Status s) { ra = s; });
  cb->Connect(Ep(a, 7000), [&](Status s) { rb = s; });
  net_.RunFor(Seconds(2));

  EXPECT_EQ(ra.code(), ErrorCode::kAddressInUse);
  EXPECT_EQ(rb.code(), ErrorCode::kAddressInUse);
  ASSERT_NE(accepted_a, nullptr);
  ASSERT_NE(accepted_b, nullptr);
  EXPECT_EQ(accepted_a->state(), TcpState::kEstablished);
  EXPECT_EQ(accepted_b->state(), TcpState::kEstablished);

  Bytes got;
  accepted_b->SetDataCallback([&](const Bytes& d) { got.insert(got.end(), d.begin(), d.end()); });
  accepted_a->Send(Bytes{'o', 'k'});
  net_.RunFor(Seconds(1));
  EXPECT_EQ(got, (Bytes{'o', 'k'}));
}

TEST_F(TcpTest, MixedPoliciesStillProduceOneStreamEachSide) {
  Host* a = MakeHost("a", 1, TcpAcceptPolicy::kBsd);
  Host* b = MakeHost("b", 2, TcpAcceptPolicy::kLinuxWindows);
  TcpSocket* accepted_b = nullptr;
  TcpSocket* lb = b->tcp().CreateSocket();
  lb->SetReuseAddr(true);
  ASSERT_TRUE(lb->Bind(7000).ok());
  lb->Listen([&](TcpSocket* s) { accepted_b = s; });

  TcpSocket* ca = a->tcp().CreateSocket();
  TcpSocket* cb = b->tcp().CreateSocket();
  ca->SetReuseAddr(true);
  cb->SetReuseAddr(true);
  ASSERT_TRUE(ca->Bind(7000).ok());
  ASSERT_TRUE(cb->Bind(7000).ok());
  Status ra(ErrorCode::kInProgress);
  Status rb(ErrorCode::kInProgress);
  ca->Connect(Ep(b, 7000), [&](Status s) { ra = s; });
  cb->Connect(Ep(a, 7000), [&](Status s) { rb = s; });
  net_.RunFor(Seconds(2));

  // a (BSD, no listener) completes its connect; b's stack handed the
  // crossing SYN to its listener, so b sees accept + failed connect.
  EXPECT_TRUE(ra.ok()) << ra.ToString();
  EXPECT_EQ(rb.code(), ErrorCode::kAddressInUse);
  ASSERT_NE(accepted_b, nullptr);
  EXPECT_EQ(accepted_b->state(), TcpState::kEstablished);
  EXPECT_EQ(ca->state(), TcpState::kEstablished);
}

TEST_F(TcpTest, GracefulCloseBothSides) {
  Host* a = MakeHost("a", 1);
  Host* b = MakeHost("b", 2);
  TcpSocket* listener = b->tcp().CreateSocket();
  ASSERT_TRUE(listener->Bind(7000).ok());
  TcpSocket* accepted = nullptr;
  listener->Listen([&](TcpSocket* s) { accepted = s; });
  TcpSocket* client = a->tcp().CreateSocket();
  bool peer_eof = false;
  client->Connect(Ep(b, 7000), [](Status) {});
  net_.RunFor(Millis(100));
  ASSERT_NE(accepted, nullptr);
  accepted->SetClosedCallback([&](Status s) { peer_eof = s.ok(); });

  client->Close();
  net_.RunFor(Millis(100));
  EXPECT_TRUE(peer_eof);
  EXPECT_EQ(accepted->state(), TcpState::kCloseWait);
  EXPECT_EQ(client->state(), TcpState::kFinWait2);

  accepted->Close();
  net_.RunFor(Millis(100));
  EXPECT_EQ(accepted->state(), TcpState::kClosed);
  EXPECT_EQ(client->state(), TcpState::kTimeWait);
  net_.RunFor(Seconds(3));
  EXPECT_EQ(client->state(), TcpState::kClosed);
}

TEST_F(TcpTest, SimultaneousClose) {
  Host* a = MakeHost("a", 1);
  Host* b = MakeHost("b", 2);
  TcpSocket* listener = b->tcp().CreateSocket();
  ASSERT_TRUE(listener->Bind(7000).ok());
  TcpSocket* accepted = nullptr;
  listener->Listen([&](TcpSocket* s) { accepted = s; });
  TcpSocket* client = a->tcp().CreateSocket();
  client->Connect(Ep(b, 7000), [](Status) {});
  net_.RunFor(Millis(100));
  ASSERT_NE(accepted, nullptr);

  client->Close();
  accepted->Close();  // both FINs cross
  net_.RunFor(Seconds(5));
  EXPECT_EQ(client->state(), TcpState::kClosed);
  EXPECT_EQ(accepted->state(), TcpState::kClosed);
}

TEST_F(TcpTest, DataFlushedBeforeFin) {
  Host* a = MakeHost("a", 1);
  Host* b = MakeHost("b", 2);
  TcpSocket* listener = b->tcp().CreateSocket();
  ASSERT_TRUE(listener->Bind(7000).ok());
  Bytes received;
  bool eof = false;
  listener->Listen([&](TcpSocket* s) {
    s->SetDataCallback(
        [&](const Bytes& d) { received.insert(received.end(), d.begin(), d.end()); });
    s->SetClosedCallback([&](Status st) { eof = st.ok(); });
  });
  TcpSocket* client = a->tcp().CreateSocket();
  Bytes blob(5000, 0x42);
  client->Connect(Ep(b, 7000), [&](Status s) {
    ASSERT_TRUE(s.ok());
    client->Send(blob);
    client->Close();  // close with data still queued
  });
  net_.RunFor(Seconds(5));
  EXPECT_EQ(received.size(), blob.size());
  EXPECT_TRUE(eof);
}

TEST_F(TcpTest, AbortSendsRstPeerSeesReset) {
  Host* a = MakeHost("a", 1);
  Host* b = MakeHost("b", 2);
  TcpSocket* listener = b->tcp().CreateSocket();
  ASSERT_TRUE(listener->Bind(7000).ok());
  TcpSocket* accepted = nullptr;
  listener->Listen([&](TcpSocket* s) { accepted = s; });
  TcpSocket* client = a->tcp().CreateSocket();
  client->Connect(Ep(b, 7000), [](Status) {});
  net_.RunFor(Millis(100));
  ASSERT_NE(accepted, nullptr);
  Status peer_status;
  accepted->SetClosedCallback([&](Status s) { peer_status = s; });
  client->Abort();
  net_.RunFor(Millis(100));
  EXPECT_EQ(peer_status.code(), ErrorCode::kConnectionReset);
  EXPECT_EQ(accepted->state(), TcpState::kClosed);
}

TEST_F(TcpTest, SendOnUnconnectedFails) {
  Host* a = MakeHost("a", 1);
  TcpSocket* s = a->tcp().CreateSocket();
  EXPECT_EQ(s->Send(Bytes{1}).code(), ErrorCode::kNotConnected);
}

TEST_F(TcpTest, ListenerCloseStopsAccepting) {
  Host* a = MakeHost("a", 1);
  Host* b = MakeHost("b", 2);
  TcpSocket* listener = b->tcp().CreateSocket();
  ASSERT_TRUE(listener->Bind(7000).ok());
  listener->Listen([](TcpSocket*) { FAIL() << "accept after close"; });
  listener->Close();
  TcpSocket* client = a->tcp().CreateSocket();
  Status result(ErrorCode::kInProgress);
  client->Connect(Ep(b, 7000), [&](Status s) { result = s; });
  net_.RunFor(Seconds(2));
  EXPECT_EQ(result.code(), ErrorCode::kConnectionRefused);
}

TEST_F(TcpTest, PortReusableAfterListenerClose) {
  Host* b = MakeHost("b", 2);
  TcpSocket* l1 = b->tcp().CreateSocket();
  ASSERT_TRUE(l1->Bind(7000).ok());
  ASSERT_TRUE(l1->Listen([](TcpSocket*) {}).ok());
  l1->Close();
  TcpSocket* l2 = b->tcp().CreateSocket();
  EXPECT_TRUE(l2->Bind(7000).ok());
  EXPECT_TRUE(l2->Listen([](TcpSocket*) {}).ok());
}

}  // namespace
}  // namespace natpunch
