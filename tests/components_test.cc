// Component-level tests for the smaller core pieces: the peer and probe
// codecs, StunLikeServer behaviors, multi-peer punching from one socket,
// TCP puncher authentication against impostors, sequential-punch edge
// cases, and relaying over the TCP transport.

#include <gtest/gtest.h>

#include "src/core/peer_wire.h"
#include "src/core/probe_server.h"
#include "src/core/relay.h"
#include "src/core/sequential.h"
#include "src/core/tcp_puncher.h"
#include "src/core/udp_puncher.h"
#include "src/rendezvous/server.h"
#include "src/scenario/scenario.h"

namespace natpunch {
namespace {

TEST(PeerWireTest, RoundTrip) {
  PeerMessage msg;
  msg.type = PeerMsgType::kData;
  msg.nonce = 0x1234567890abcdefULL;
  msg.sender_id = 42;
  msg.payload = Bytes{9, 9, 9};
  auto decoded = DecodePeerMessage(EncodePeerMessage(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, msg.type);
  EXPECT_EQ(decoded->nonce, msg.nonce);
  EXPECT_EQ(decoded->sender_id, msg.sender_id);
  EXPECT_EQ(decoded->payload, msg.payload);
}

TEST(PeerWireTest, RejectsGarbageAndWrongMagic) {
  EXPECT_FALSE(DecodePeerMessage(Bytes{}).has_value());
  EXPECT_FALSE(DecodePeerMessage(Bytes{0x50}).has_value());
  EXPECT_FALSE(DecodePeerMessage(Bytes{0x51, 1, 0, 0}).has_value());  // probe magic
  Bytes truncated = EncodePeerMessage(PeerMessage{});
  truncated.pop_back();
  truncated.pop_back();
  truncated.pop_back();
  EXPECT_FALSE(DecodePeerMessage(truncated).has_value());
}

TEST(ProbeWireTest, RoundTrip) {
  ProbeMessage msg;
  msg.type = ProbeMsgType::kEchoReply;
  msg.txn = 77;
  msg.observed = Endpoint(Ipv4Address::FromOctets(155, 99, 25, 11), 62001);
  msg.source_tag = ProbeSourceTag::kPartner;
  auto decoded = DecodeProbeMessage(EncodeProbeMessage(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, msg.type);
  EXPECT_EQ(decoded->txn, msg.txn);
  EXPECT_EQ(decoded->observed, msg.observed);
  EXPECT_EQ(decoded->source_tag, msg.source_tag);
}

class StunServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = std::make_unique<Scenario>(Scenario::Options{});
    s1_host_ = scenario_->AddPublicHost("S1", Ipv4Address::FromOctets(18, 181, 0, 31));
    s2_host_ = scenario_->AddPublicHost("S2", Ipv4Address::FromOctets(18, 181, 0, 32));
    s1_ = std::make_unique<StunLikeServer>(s1_host_, 3478);
    s2_ = std::make_unique<StunLikeServer>(s2_host_, 3478);
    s1_->SetPartner(s2_->endpoint());
    ASSERT_TRUE(s1_->Start().ok());
    ASSERT_TRUE(s2_->Start().ok());
    client_host_ = scenario_->AddPublicHost("C", Ipv4Address::FromOctets(99, 1, 1, 1));
    client_ = *client_host_->udp().Bind(5000);
    client_->SetReceiveCallback([this](const Endpoint& from, const Payload& payload) {
      last_from_ = from;
      last_reply_ = DecodeProbeMessage(payload);
    });
  }

  void Send(ProbeMsgType type, const Endpoint& to, uint64_t txn = 1) {
    ProbeMessage request;
    request.type = type;
    request.txn = txn;
    client_->SendTo(to, EncodeProbeMessage(request));
    scenario_->net().RunFor(Seconds(1));
  }

  std::unique_ptr<Scenario> scenario_;
  Host* s1_host_ = nullptr;
  Host* s2_host_ = nullptr;
  Host* client_host_ = nullptr;
  std::unique_ptr<StunLikeServer> s1_, s2_;
  UdpSocket* client_ = nullptr;
  Endpoint last_from_;
  std::optional<ProbeMessage> last_reply_;
};

TEST_F(StunServerTest, EchoReportsObservedEndpoint) {
  Send(ProbeMsgType::kEchoRequest, s1_->endpoint());
  ASSERT_TRUE(last_reply_.has_value());
  EXPECT_EQ(last_reply_->type, ProbeMsgType::kEchoReply);
  EXPECT_EQ(last_reply_->source_tag, ProbeSourceTag::kMain);
  EXPECT_EQ(last_reply_->observed, Endpoint(client_host_->primary_address(), 5000));
  EXPECT_EQ(last_from_, s1_->endpoint());
}

TEST_F(StunServerTest, AltReplyComesFromAlternatePort) {
  Send(ProbeMsgType::kAltReplyRequest, s1_->endpoint());
  ASSERT_TRUE(last_reply_.has_value());
  EXPECT_EQ(last_reply_->source_tag, ProbeSourceTag::kAlt);
  EXPECT_EQ(last_from_, s1_->alt_endpoint());
}

TEST_F(StunServerTest, PartnerReplyComesFromPartner) {
  Send(ProbeMsgType::kPartnerReplyRequest, s1_->endpoint());
  ASSERT_TRUE(last_reply_.has_value());
  EXPECT_EQ(last_reply_->source_tag, ProbeSourceTag::kPartner);
  EXPECT_EQ(last_from_, s2_->endpoint());
}

TEST_F(StunServerTest, AltSocketAlsoEchoes) {
  Send(ProbeMsgType::kEchoRequest, s1_->alt_endpoint());
  ASSERT_TRUE(last_reply_.has_value());
  EXPECT_EQ(last_reply_->source_tag, ProbeSourceTag::kAlt);
}

// ---------------------------------------------------------------------------
// Multi-peer punching from a single socket
// ---------------------------------------------------------------------------

TEST(MultiPeerTest, OneSocketManySessions) {
  // A punches to B and C simultaneously — one local UDP socket, two
  // authenticated sessions, the whole point of §3.2's socket economy.
  Scenario::Options options;
  auto topo = MakeFig5(NatConfig{}, NatConfig{}, options);
  NattedSite site_c = topo.scenario->AddNattedSite(
      "C", NatConfig{}, Ipv4Address::FromOctets(66, 1, 1, 1),
      Ipv4Prefix(Ipv4Address::FromOctets(10, 2, 2, 0), 24), 1);
  RendezvousServer server(topo.server, kServerPort);
  ASSERT_TRUE(server.Start().ok());

  UdpRendezvousClient ca(topo.a, server.endpoint(), 1);
  UdpRendezvousClient cb(topo.b, server.endpoint(), 2);
  UdpRendezvousClient cc(site_c.host(0), server.endpoint(), 3);
  ca.Register(4321, [](Result<Endpoint>) {});
  cb.Register(4321, [](Result<Endpoint>) {});
  cc.Register(4321, [](Result<Endpoint>) {});
  UdpHolePuncher pa(&ca);
  UdpHolePuncher pb(&cb);
  UdpHolePuncher pc(&cc);
  Bytes b_got, c_got;
  pb.SetIncomingSessionCallback([&](UdpP2pSession* s) {
    s->SetReceiveCallback([&](const Bytes& p) { b_got = p; });
  });
  pc.SetIncomingSessionCallback([&](UdpP2pSession* s) {
    s->SetReceiveCallback([&](const Bytes& p) { c_got = p; });
  });
  topo.scenario->net().RunFor(Seconds(2));

  UdpP2pSession* to_b = nullptr;
  UdpP2pSession* to_c = nullptr;
  pa.ConnectToPeer(2, [&](Result<UdpP2pSession*> r) { to_b = r.ok() ? *r : nullptr; });
  pa.ConnectToPeer(3, [&](Result<UdpP2pSession*> r) { to_c = r.ok() ? *r : nullptr; });
  topo.scenario->net().RunFor(Seconds(10));
  ASSERT_NE(to_b, nullptr);
  ASSERT_NE(to_c, nullptr);
  EXPECT_EQ(pa.active_sessions(), 2u);

  to_b->Send(Bytes{'b'});
  to_c->Send(Bytes{'c'});
  topo.scenario->net().RunFor(Seconds(1));
  EXPECT_EQ(b_got, (Bytes{'b'}));
  EXPECT_EQ(c_got, (Bytes{'c'}));
  // One NAT mapping covers both peers plus S (endpoint-independent).
  EXPECT_EQ(topo.site_a.nat->active_mapping_count(), 1u);
}

// ---------------------------------------------------------------------------
// TCP puncher authentication against impostors
// ---------------------------------------------------------------------------

TEST(TcpAuthTest, ImpostorStreamIsRejected) {
  // A malicious host connects to A's punch listener and speaks the peer
  // protocol with a bogus nonce: the stream must be dropped and the real
  // punch must still complete.
  auto topo = MakeFig5(NatConfig{}, NatConfig{});
  RendezvousServer server(topo.server, kServerPort);
  ASSERT_TRUE(server.Start().ok());
  TcpRendezvousClient ca(topo.a, server.endpoint(), 1);
  TcpRendezvousClient cb(topo.b, server.endpoint(), 2);
  ca.Connect(4321, [](Result<Endpoint>) {});
  cb.Connect(4321, [](Result<Endpoint>) {});
  TcpHolePuncher pa(&ca);
  TcpHolePuncher pb(&cb);
  pb.SetIncomingStreamCallback([](TcpP2pStream*) {});
  topo.scenario->net().RunFor(Seconds(3));

  // The impostor lives on A's own LAN (it can reach A's private endpoint
  // directly, like the stray host of §3.4).
  Host* impostor = topo.scenario->AddHostToSite(&topo.site_a, "impostor",
                                                Ipv4Address::FromOctets(10, 0, 0, 66));
  bool impostor_won = false;
  Status impostor_status;
  TcpSocket* evil = impostor->tcp().CreateSocket();
  auto framer = std::make_shared<MessageFramer>();
  evil->SetDataCallback([&](const Bytes& data) {
    for (const Bytes& body : framer->Append(data)) {
      auto msg = DecodePeerMessage(body);
      if (msg && msg->type == PeerMsgType::kAuthOk) {
        impostor_won = true;
      }
    }
  });
  evil->SetClosedCallback([&](Status s) { impostor_status = s; });

  TcpP2pStream* stream = nullptr;
  pa.ConnectToPeer(2, [&](Result<TcpP2pStream*> r) { stream = r.ok() ? *r : nullptr; });
  // Give the punch a head start so A's listener exists (the introduction
  // costs one round trip to S), then barge in.
  topo.scenario->net().RunFor(Millis(100));
  evil->Connect(Endpoint(topo.a->primary_address(), 4321), [&](Status s) {
    if (s.ok()) {
      PeerMessage fake;
      fake.type = PeerMsgType::kAuth;
      fake.nonce = 0xbadbadbadULL;  // not the session nonce
      evil->Send(MessageFramer::Frame(EncodePeerMessage(fake)));
    }
  });
  topo.scenario->net().RunFor(Seconds(30));

  EXPECT_FALSE(impostor_won);
  EXPECT_EQ(impostor_status.code(), ErrorCode::kConnectionReset);  // aborted
  ASSERT_NE(stream, nullptr);  // the real punch was unaffected
  EXPECT_EQ(stream->remote_endpoint().ip, NatBIp());
}

// ---------------------------------------------------------------------------
// Sequential punching edge cases
// ---------------------------------------------------------------------------

TEST(SequentialEdgeTest, WorksAgainstRstingNat) {
  // §4.5 step 2 says the doomed connect may fail "due to a timeout or RST
  // from A's NAT" — both paths must leave the hole open.
  NatConfig rsting;
  rsting.unsolicited_tcp = NatUnsolicitedTcp::kRst;
  auto topo = MakeFig5(rsting, rsting);
  RendezvousServer server(topo.server, kServerPort);
  ASSERT_TRUE(server.Start().ok());
  TcpRendezvousClient ca(topo.a, server.endpoint(), 1);
  TcpRendezvousClient cb(topo.b, server.endpoint(), 2);
  ca.Connect(4321, [](Result<Endpoint>) {});
  cb.Connect(4321, [](Result<Endpoint>) {});
  SequentialPuncher pa(&ca);
  SequentialPuncher pb(&cb);
  pb.SetIncomingStreamCallback([](TcpP2pStream*) {});
  topo.scenario->net().RunFor(Seconds(3));
  Result<TcpP2pStream*> result = Status(ErrorCode::kInProgress);
  pa.ConnectToPeer(2, [&](Result<TcpP2pStream*> r) { result = std::move(r); });
  topo.scenario->net().RunFor(Seconds(30));
  EXPECT_TRUE(result.ok()) << result.status().ToString();
}

TEST(SequentialEdgeTest, FailsAgainstSymmetricNat) {
  NatConfig symmetric;
  symmetric.mapping = NatMapping::kAddressAndPortDependent;
  auto topo = MakeFig5(symmetric, NatConfig{});
  RendezvousServer server(topo.server, kServerPort);
  ASSERT_TRUE(server.Start().ok());
  TcpRendezvousClient ca(topo.a, server.endpoint(), 1);
  TcpRendezvousClient cb(topo.b, server.endpoint(), 2);
  ca.Connect(4321, [](Result<Endpoint>) {});
  cb.Connect(4321, [](Result<Endpoint>) {});
  SequentialPuncher pa(&ca);
  SequentialPuncher pb(&cb);
  topo.scenario->net().RunFor(Seconds(3));
  Result<TcpP2pStream*> result = Status(ErrorCode::kInProgress);
  pa.ConnectToPeer(2, [&](Result<TcpP2pStream*> r) { result = std::move(r); });
  topo.scenario->net().RunFor(Seconds(60));
  EXPECT_FALSE(result.ok());
}

// ---------------------------------------------------------------------------
// Relaying over the TCP transport
// ---------------------------------------------------------------------------

TEST(TcpRelayTest, RelaysOverTcpRendezvous) {
  auto topo = MakeFig5(NatConfig{}, NatConfig{});
  RendezvousServer server(topo.server, kServerPort);
  ASSERT_TRUE(server.Start().ok());
  TcpRendezvousClient ca(topo.a, server.endpoint(), 1);
  TcpRendezvousClient cb(topo.b, server.endpoint(), 2);
  ca.Connect(4321, [](Result<Endpoint>) {});
  cb.Connect(4321, [](Result<Endpoint>) {});
  RelayHub hub_a(&ca);
  RelayHub hub_b(&cb);
  topo.scenario->net().RunFor(Seconds(3));

  Bytes got;
  hub_b.SetIncomingChannelCallback([&](RelayChannel* c) {
    c->SetReceiveCallback([&](const Bytes& p) { got = p; });
  });
  hub_a.OpenChannel(2)->Send(Bytes{'t', 'c', 'p', '!'});
  topo.scenario->net().RunFor(Seconds(2));
  EXPECT_EQ(got, (Bytes{'t', 'c', 'p', '!'}));
  EXPECT_EQ(server.stats().relayed_messages, 1u);
}

}  // namespace
}  // namespace natpunch
