// Trace-level tests: assert the paper's packet-by-packet narrative against
// the recorded hops, plus hairpin invariants across topologies.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "src/core/udp_puncher.h"
#include "src/netsim/trace.h"
#include "src/rendezvous/server.h"
#include "src/scenario/scenario.h"

namespace natpunch {
namespace {

TEST(PunchTraceTest, FirstProbeDroppedAsUnsolicitedThenHolesOpen) {
  // §3.4's exact narrative with asymmetric timing: A's first message to
  // B's public endpoint reaches B's NAT before B has punched, and is
  // dropped as unsolicited; once B's first message crosses B's own NAT,
  // holes are open in both directions.
  Scenario::Options options;
  auto topo = MakeFig5(NatConfig{}, NatConfig{}, options);
  topo.site_b.lan->set_config(LanConfig{.latency = Millis(50)});  // B is slow
  Network& net = topo.scenario->net();
  RendezvousServer server(topo.server, kServerPort);
  ASSERT_TRUE(server.Start().ok());
  UdpRendezvousClient ca(topo.a, server.endpoint(), 1);
  UdpRendezvousClient cb(topo.b, server.endpoint(), 2);
  ca.Register(4321, [](Result<Endpoint>) {});
  cb.Register(4321, [](Result<Endpoint>) {});
  UdpHolePuncher pa(&ca);
  UdpHolePuncher pb(&cb);
  net.RunFor(Seconds(2));

  net.trace().set_enabled(true);
  UdpP2pSession* session = nullptr;
  pa.ConnectToPeer(2, [&](Result<UdpP2pSession*> r) { session = r.ok() ? *r : nullptr; });
  net.RunFor(Seconds(10));
  ASSERT_NE(session, nullptr);

  // B's NAT dropped at least one of A's early probes as unsolicited...
  EXPECT_GE(net.trace().Count(TraceEvent::kNatDropUnsolicited, "B-nat"), 1u);
  // ...but A's NAT never dropped B's probes: A punched first, so its own
  // filter was already open when B's traffic arrived.
  EXPECT_EQ(net.trace().Count(TraceEvent::kNatDropUnsolicited, "A-nat"), 0u);
  // And both NATs translated in both directions once the holes opened.
  EXPECT_GE(net.trace().Count(TraceEvent::kNatTranslateIn, "A-nat"), 1u);
  EXPECT_GE(net.trace().Count(TraceEvent::kNatTranslateIn, "B-nat"), 1u);
}

TEST(PunchTraceTest, PrivateProbesLeakAndDieOnGlobalRealm) {
  // Fig. 5: A's probes toward B's private address (different subnet) route
  // out through NAT A and die on the global realm as leaked RFC 1918
  // destinations.
  auto topo = MakeFig5(NatConfig{}, NatConfig{});
  Network& net = topo.scenario->net();
  RendezvousServer server(topo.server, kServerPort);
  ASSERT_TRUE(server.Start().ok());
  UdpRendezvousClient ca(topo.a, server.endpoint(), 1);
  UdpRendezvousClient cb(topo.b, server.endpoint(), 2);
  ca.Register(4321, [](Result<Endpoint>) {});
  cb.Register(4321, [](Result<Endpoint>) {});
  UdpHolePuncher pa(&ca);
  UdpHolePuncher pb(&cb);
  net.RunFor(Seconds(2));
  net.trace().set_enabled(true);
  UdpP2pSession* session = nullptr;
  pa.ConnectToPeer(2, [&](Result<UdpP2pSession*> r) { session = r.ok() ? *r : nullptr; });
  net.RunFor(Seconds(10));
  ASSERT_NE(session, nullptr);
  EXPECT_GE(net.trace().Count(TraceEvent::kDropPrivateLeak), 1u);
}

// ---------------------------------------------------------------------------
// Hairpin invariants: common-NAT public-only punching succeeds iff the NAT
// hairpins (for each protocol); multi-level punching succeeds iff the outer
// NAT hairpins.
// ---------------------------------------------------------------------------

using HairpinParam = std::tuple<bool /*hairpin*/, bool /*multilevel*/>;

class HairpinInvariantTest : public ::testing::TestWithParam<HairpinParam> {};

TEST_P(HairpinInvariantTest, UdpSuccessIffHairpin) {
  const auto [hairpin, multilevel] = GetParam();
  NatConfig outer;
  outer.hairpin_udp = hairpin;

  std::unique_ptr<Scenario> scenario;
  Host* server_host = nullptr;
  Host* a = nullptr;
  Host* b = nullptr;
  if (multilevel) {
    auto topo = MakeFig6(outer, NatConfig{}, NatConfig{});
    scenario = std::move(topo.scenario);
    server_host = topo.server;
    a = topo.a;
    b = topo.b;
  } else {
    auto topo = MakeFig4(outer);
    scenario = std::move(topo.scenario);
    server_host = topo.server;
    a = topo.a;
    b = topo.b;
  }
  RendezvousServer server(server_host, kServerPort);
  ASSERT_TRUE(server.Start().ok());
  UdpRendezvousClient ca(a, server.endpoint(), 1);
  UdpRendezvousClient cb(b, server.endpoint(), 2);
  ca.Register(4321, [](Result<Endpoint>) {});
  cb.Register(4321, [](Result<Endpoint>) {});
  UdpPunchConfig punch;
  punch.try_private_endpoint = false;  // force the public/hairpin path
  UdpHolePuncher pa(&ca, punch);
  UdpHolePuncher pb(&cb, punch);
  scenario->net().RunFor(Seconds(2));

  bool success = false;
  pa.ConnectToPeer(2, [&](Result<UdpP2pSession*> r) { success = r.ok(); });
  scenario->net().RunFor(Seconds(12));
  EXPECT_EQ(success, hairpin) << "hairpin=" << hairpin << " multilevel=" << multilevel;
}

INSTANTIATE_TEST_SUITE_P(Topologies, HairpinInvariantTest,
                         ::testing::Combine(::testing::Bool(), ::testing::Bool()));

// In the multi-level world the private endpoints are USELESS (different
// realms) while behind a common NAT they are the preferred path — run the
// complement: private candidates enabled.
TEST(HairpinInvariantTest2, PrivateCandidatesRescueCommonNatButNotMultilevel) {
  // Common NAT, no hairpin, private candidates on: succeeds via LAN.
  {
    auto topo = MakeFig4(NatConfig{});
    RendezvousServer server(topo.server, kServerPort);
    ASSERT_TRUE(server.Start().ok());
    UdpRendezvousClient ca(topo.a, server.endpoint(), 1);
    UdpRendezvousClient cb(topo.b, server.endpoint(), 2);
    ca.Register(4321, [](Result<Endpoint>) {});
    cb.Register(4321, [](Result<Endpoint>) {});
    UdpHolePuncher pa(&ca);
    UdpHolePuncher pb(&cb);
    topo.scenario->net().RunFor(Seconds(2));
    bool success = false;
    pa.ConnectToPeer(2, [&](Result<UdpP2pSession*> r) { success = r.ok(); });
    topo.scenario->net().RunFor(Seconds(12));
    EXPECT_TRUE(success);
  }
  // Multi-level, no hairpin, private candidates on: still fails — the
  // clients' private realms are disjoint (§3.5's whole point).
  {
    auto topo = MakeFig6(NatConfig{}, NatConfig{}, NatConfig{});
    RendezvousServer server(topo.server, kServerPort);
    ASSERT_TRUE(server.Start().ok());
    UdpRendezvousClient ca(topo.a, server.endpoint(), 1);
    UdpRendezvousClient cb(topo.b, server.endpoint(), 2);
    ca.Register(4321, [](Result<Endpoint>) {});
    cb.Register(4321, [](Result<Endpoint>) {});
    UdpHolePuncher pa(&ca);
    UdpHolePuncher pb(&cb);
    topo.scenario->net().RunFor(Seconds(2));
    bool success = false;
    pa.ConnectToPeer(2, [&](Result<UdpP2pSession*> r) { success = r.ok(); });
    topo.scenario->net().RunFor(Seconds(12));
    EXPECT_FALSE(success);
  }
}

TEST(TraceDetailTest, OverflowingAppendLeavesVisibleSentinel) {
  TraceDetail d("head=");
  d.Append(std::string(100, 'y'));
  EXPECT_TRUE(d.truncated());
  EXPECT_EQ(d.view().size(), TraceDetail::kCapacity);
  // The last three bytes are the UTF-8 ellipsis, so a reader of the dump can
  // tell this record was cut, unlike the old silent fill-to-capacity.
  EXPECT_EQ(d.view().substr(TraceDetail::kCapacity - 3), "\xe2\x80\xa6");
  EXPECT_EQ(d.view().substr(0, 5), "head=");
}

TEST(TraceDetailTest, ExactFitIsNotTruncated) {
  TraceDetail d;
  d.Append(std::string(TraceDetail::kCapacity, 'z'));
  EXPECT_FALSE(d.truncated());
  EXPECT_EQ(d.view(), std::string(TraceDetail::kCapacity, 'z'));
}

TEST(TraceDetailTest, AppendAfterTruncationIsNoOp) {
  TraceDetail d(std::string(200, 'a'));
  ASSERT_TRUE(d.truncated());
  const std::string before(d.view());
  d.Append("more");
  d.Append(uint64_t{12345});
  EXPECT_EQ(d.view(), before);  // sentinel never overwritten
}

}  // namespace
}  // namespace natpunch
