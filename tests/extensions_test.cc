// Tests for the extension features beyond the paper's core evaluation:
// Basic NAT (§2.1 — "the principles and techniques apply equally well, if
// sometimes trivially, to Basic NAT"), the §6.3 port-contention misbehavior,
// and the multi-client NAT Check the paper planned as future work.

#include <gtest/gtest.h>

#include "src/core/udp_puncher.h"
#include "src/natcheck/client.h"
#include "src/natcheck/multi_client.h"
#include "src/natcheck/servers.h"
#include "src/rendezvous/server.h"
#include "src/scenario/scenario.h"

namespace natpunch {
namespace {

NatConfig BasicNat() {
  NatConfig config;
  config.basic_nat = true;
  return config;
}

// ---------------------------------------------------------------------------
// Basic NAT
// ---------------------------------------------------------------------------

class BasicNatTest : public ::testing::Test {
 protected:
  void Build(const NatConfig& nat) {
    topo_ = MakeFig5(nat, NatConfig{});
    observer_sock_ = *topo_.server->udp().Bind(kServerPort);
    observer_sock_->SetReceiveCallback([this](const Endpoint& from, const Payload&) {
      observed_ = from;
      observer_sock_->SendTo(from, Bytes{'a'});
    });
  }

  Fig5Topology topo_;
  UdpSocket* observer_sock_ = nullptr;
  Endpoint observed_;
};

TEST_F(BasicNatTest, TranslatesAddressOnlyPreservingPort) {
  Build(BasicNat());
  auto sock = topo_.a->udp().Bind(4321);
  Bytes reply;
  (*sock)->SetReceiveCallback([&](const Endpoint&, const Payload& p) { reply = p.ToBytes(); });
  (*sock)->SendTo(Endpoint(ServerIp(), kServerPort), Bytes{1});
  topo_.scenario->net().RunFor(Seconds(1));
  // Port preserved, address from the pool (public_ip + 1..N).
  EXPECT_EQ(observed_.port, 4321);
  EXPECT_NE(observed_.ip, topo_.a->primary_address());
  EXPECT_NE(observed_.ip, NatAIp());
  EXPECT_EQ(observed_.ip, Ipv4Address(NatAIp().bits() + 1));
  EXPECT_EQ(reply, (Bytes{'a'}));  // inbound de-translation works
}

TEST_F(BasicNatTest, DistinctHostsGetDistinctAddresses) {
  Build(BasicNat());
  Host* second = topo_.scenario->AddHostToSite(&topo_.site_a, "second",
                                               Ipv4Address::FromOctets(10, 0, 0, 9));
  auto s1 = topo_.a->udp().Bind(4321);
  auto s2 = second->udp().Bind(4321);  // same private port: fine for Basic NAT
  (*s1)->SendTo(Endpoint(ServerIp(), kServerPort), Bytes{1});
  topo_.scenario->net().RunFor(Seconds(1));
  const Endpoint first_public = observed_;
  (*s2)->SendTo(Endpoint(ServerIp(), kServerPort), Bytes{2});
  topo_.scenario->net().RunFor(Seconds(1));
  EXPECT_NE(observed_.ip, first_public.ip);
  EXPECT_EQ(observed_.port, 4321);  // both ports preserved
}

TEST_F(BasicNatTest, ConsistentTranslationAcrossDestinations) {
  Build(BasicNat());
  auto sock = topo_.a->udp().Bind(4321);
  (*sock)->SendTo(Endpoint(ServerIp(), kServerPort), Bytes{1});
  topo_.scenario->net().RunFor(Seconds(1));
  const Endpoint first = observed_;
  auto other = topo_.server->udp().Bind(5678);
  (*other)->SetReceiveCallback([this, s = *other](const Endpoint& from, const Payload&) {
    observed_ = from;
  });
  (*sock)->SendTo(Endpoint(ServerIp(), 5678), Bytes{2});
  topo_.scenario->net().RunFor(Seconds(1));
  EXPECT_EQ(observed_, first);  // trivially endpoint-independent
}

TEST_F(BasicNatTest, FilteringStillApplies) {
  Build(BasicNat());  // APD filtering default
  auto sock = topo_.a->udp().Bind(4321);
  bool received = false;
  (*sock)->SetReceiveCallback([&](const Endpoint&, const Payload&) { received = true; });
  (*sock)->SendTo(Endpoint(ServerIp(), kServerPort), Bytes{1});
  topo_.scenario->net().RunFor(Seconds(1));
  received = false;
  // A third party fires at the assigned public address: filtered.
  auto stray = topo_.b->udp().Bind(4321);
  (*stray)->SendTo(Endpoint(Ipv4Address(NatAIp().bits() + 1), 4321), Bytes{9});
  topo_.scenario->net().RunFor(Seconds(1));
  EXPECT_FALSE(received);
  EXPECT_GE(topo_.site_a.nat->stats().dropped_unsolicited, 1u);
}

TEST_F(BasicNatTest, PoolExhaustionDropsNewHosts) {
  NatConfig tiny = BasicNat();
  tiny.basic_pool_size = 1;
  Build(tiny);
  Host* second = topo_.scenario->AddHostToSite(&topo_.site_a, "second",
                                               Ipv4Address::FromOctets(10, 0, 0, 9));
  auto s1 = topo_.a->udp().Bind(4321);
  (*s1)->SendTo(Endpoint(ServerIp(), kServerPort), Bytes{1});
  topo_.scenario->net().RunFor(Seconds(1));
  const Endpoint first = observed_;
  observed_ = Endpoint();
  auto s2 = second->udp().Bind(4321);
  (*s2)->SendTo(Endpoint(ServerIp(), kServerPort), Bytes{2});
  topo_.scenario->net().RunFor(Seconds(1));
  EXPECT_TRUE(observed_.IsUnspecified());  // second host got nothing
  EXPECT_EQ(first.ip, Ipv4Address(NatAIp().bits() + 1));
}

TEST_F(BasicNatTest, HolePunchingWorksTrivially) {
  // §2.1: "the principles and techniques ... apply equally well (if
  // sometimes trivially) to Basic NAT."
  auto topo = MakeFig5(BasicNat(), NatConfig{});
  RendezvousServer server(topo.server, kServerPort);
  ASSERT_TRUE(server.Start().ok());
  UdpRendezvousClient ca(topo.a, server.endpoint(), 1);
  UdpRendezvousClient cb(topo.b, server.endpoint(), 2);
  ca.Register(4321, [](Result<Endpoint>) {});
  cb.Register(4321, [](Result<Endpoint>) {});
  UdpHolePuncher pa(&ca);
  UdpHolePuncher pb(&cb);
  topo.scenario->net().RunFor(Seconds(2));
  EXPECT_EQ(ca.public_endpoint().port, 4321);  // port preserved by Basic NAT
  UdpP2pSession* session = nullptr;
  pa.ConnectToPeer(2, [&](Result<UdpP2pSession*> r) { session = r.ok() ? *r : nullptr; });
  topo.scenario->net().RunFor(Seconds(10));
  ASSERT_NE(session, nullptr);
}

TEST_F(BasicNatTest, NatCheckClassifiesBasicNatCompatible) {
  Scenario scenario{Scenario::Options{}};
  Host* s1 = scenario.AddPublicHost("S1", Ipv4Address::FromOctets(18, 181, 0, 31));
  Host* s2 = scenario.AddPublicHost("S2", Ipv4Address::FromOctets(18, 181, 0, 32));
  Host* s3 = scenario.AddPublicHost("S3", Ipv4Address::FromOctets(18, 181, 0, 33));
  NattedSite site = scenario.AddNattedSite(
      "dev", BasicNat(), Ipv4Address::FromOctets(155, 99, 25, 11),
      Ipv4Prefix(Ipv4Address::FromOctets(10, 0, 0, 0), 24), 1);
  NatCheckServers servers(s1, s2, s3);
  ASSERT_TRUE(servers.Start().ok());
  NatCheckServerAddrs addrs{servers.udp_endpoint(1), servers.udp_endpoint(2),
                            servers.tcp_endpoint(1), servers.tcp_endpoint(2),
                            servers.tcp_endpoint(3)};
  NatCheckClient client(site.host(0), addrs);
  NatCheckReport report;
  client.Run(4321, [&](Result<NatCheckReport> r) {
    if (r.ok()) {
      report = *r;
    }
  });
  scenario.net().RunFor(Seconds(90));
  EXPECT_TRUE(report.UdpHolePunchCompatible());
  EXPECT_TRUE(report.TcpHolePunchCompatible());
  // Observed at a pool address with the private port preserved.
  EXPECT_EQ(report.udp_public_1.ip, Ipv4Address(NatAIp().bits() + 1));
  EXPECT_EQ(report.udp_public_1.port, 4321);
}

// ---------------------------------------------------------------------------
// Port-contention switching (§6.3) and the multi-client check
// ---------------------------------------------------------------------------

class ContentionTest : public ::testing::Test {
 protected:
  void Build(bool switches) {
    NatConfig nat;
    nat.symmetric_on_port_contention = switches;
    topo_ = MakeFig5(nat, NatConfig{});
    // A second host behind NAT A sharing the private port.
    second_ = topo_.scenario->AddHostToSite(&topo_.site_a, "second",
                                            Ipv4Address::FromOctets(10, 0, 0, 9));
    s1_host_ = topo_.server;
    s2_host_ = topo_.scenario->AddPublicHost("S2b", Ipv4Address::FromOctets(18, 181, 0, 32));
    servers_ = std::make_unique<NatCheckServers>(
        s1_host_, s2_host_,
        topo_.scenario->AddPublicHost("S3b", Ipv4Address::FromOctets(18, 181, 0, 33)));
    ASSERT_TRUE(servers_->Start().ok());
  }

  MultiClientReport RunCheck() {
    MultiClientNatCheck check(topo_.a, second_, servers_->udp_endpoint(1),
                              servers_->udp_endpoint(2));
    MultiClientReport report;
    bool done = false;
    check.Run([&](Result<MultiClientReport> r) {
      done = true;
      if (r.ok()) {
        report = *r;
      }
    });
    topo_.scenario->net().RunFor(Seconds(30));
    EXPECT_TRUE(done);
    return report;
  }

  Fig5Topology topo_;
  Host* second_ = nullptr;
  Host* s1_host_ = nullptr;
  Host* s2_host_ = nullptr;
  std::unique_ptr<NatCheckServers> servers_;
};

TEST_F(ContentionTest, WellBehavedNatStaysConsistent) {
  Build(/*switches=*/false);
  MultiClientReport report = RunCheck();
  EXPECT_TRUE(report.solo_consistent);
  EXPECT_TRUE(report.client2_consistent);
  EXPECT_TRUE(report.contended_consistent);
  EXPECT_FALSE(report.SwitchesUnderContention());
}

TEST_F(ContentionTest, SwitchingNatDetectedOnlyByMultiClientCheck) {
  Build(/*switches=*/true);
  MultiClientReport report = RunCheck();
  // Solo it looked perfectly cone — the single-client NAT Check (and hence
  // Table 1) would classify it as hole-punching compatible.
  EXPECT_TRUE(report.solo_consistent);
  // Under contention the mapping went symmetric.
  EXPECT_FALSE(report.contended_consistent);
  EXPECT_TRUE(report.SwitchesUnderContention());
}

TEST_F(ContentionTest, DistinctPortsAvoidTheSwitch) {
  Build(/*switches=*/true);
  // Clients on different private ports never contend.
  MultiClientNatCheck::Config config;
  config.shared_private_port = 4321;
  MultiClientNatCheck check(topo_.a, second_, servers_->udp_endpoint(1),
                            servers_->udp_endpoint(2), config);
  // Pre-bind the second client elsewhere so its later bind on 4321 fails —
  // instead just verify directly: first client alone stays consistent even
  // after the second client uses a DIFFERENT port.
  auto other = second_->udp().Bind(9999);
  (*other)->SendTo(servers_->udp_endpoint(1), EncodeNcMessage(NcMessage{}));
  MultiClientReport report;
  bool done = false;
  check.Run([&](Result<MultiClientReport> r) {
    done = true;
    if (r.ok()) {
      report = *r;
    }
  });
  topo_.scenario->net().RunFor(Seconds(30));
  ASSERT_TRUE(done);
  // The shared-port phases still contend (4321 on both), so the switch is
  // detected; the 9999 flow changed nothing.
  EXPECT_TRUE(report.SwitchesUnderContention());
}

}  // namespace
}  // namespace natpunch
