// Wire-format armor regression tests (hostile-network hardening).
//
// Table-driven over every decoder in the tree: natcheck, rendezvous (both
// address modes), peer-wire, TURN, and the STUN-like probe codec. The
// properties mirror the fuzz harnesses in fuzz/ so a plain gcc+ctest run
// still exercises every rejection path the fuzzer covers:
//
//   - well-formed frames round-trip byte-for-byte;
//   - every truncation length is rejected (no partial reads);
//   - trailing bytes are rejected (exact-length frames only);
//   - out-of-range enum bytes are rejected;
//   - any single-bit flip either fails to decode or yields a frame that
//     re-encodes identically (canonical decode — no tolerated garbage);
//   - no decoder throws on arbitrary bytes.

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "src/core/peer_wire.h"
#include "src/core/probe_server.h"
#include "src/core/turn.h"
#include "src/natcheck/messages.h"
#include "src/rendezvous/messages.h"
#include "src/util/rng.h"

namespace natpunch {
namespace {

ConstByteSpan Span(const Bytes& b) { return ConstByteSpan(b.data(), b.size()); }

// One decoder under test: a family of valid frames plus type-erased
// decode / decode-then-reencode hooks.
struct CodecCase {
  std::string name;
  std::vector<Bytes> valid;
  std::function<bool(const Bytes&)> decodes;
  std::function<Bytes(const Bytes&)> reencode;  // precondition: decodes(b)
};

std::vector<CodecCase> AllCodecs() {
  std::vector<CodecCase> cases;

  {
    CodecCase c;
    c.name = "nc_message";
    for (uint8_t t = 1; t <= 11; ++t) {
      NcMessage m;
      m.type = static_cast<NcMsgType>(t);
      m.session = 0x1122334455667788;
      m.server_index = 2;
      m.observed = Endpoint(Ipv4Address::FromOctets(10, 0, 0, 1), 4321);
      m.verdict = NcProbeVerdict::kConnected;
      c.valid.push_back(EncodeNcMessage(m));
    }
    c.decodes = [](const Bytes& b) { return DecodeNcMessage(Span(b)).has_value(); };
    c.reencode = [](const Bytes& b) { return EncodeNcMessage(*DecodeNcMessage(Span(b))); };
    cases.push_back(std::move(c));
  }

  for (const bool obfuscate : {false, true}) {
    CodecCase c;
    c.name = obfuscate ? "rendezvous_message/obfuscated" : "rendezvous_message/plain";
    for (uint8_t t = 1; t <= 11; ++t) {
      RendezvousMessage m;
      m.type = static_cast<RvMsgType>(t);
      m.strategy = ConnectStrategy::kRelayOnly;
      m.client_id = 7;
      m.target_id = 9;
      m.nonce = 0xDEADBEEFCAFEF00D;
      m.epoch = 3;
      m.public_ep = Endpoint(Ipv4Address::FromOctets(192, 168, 1, 1), 5000);
      m.private_ep = Endpoint(Ipv4Address::FromOctets(10, 0, 0, 2), 6000);
      m.payload = Bytes{1, 2, 3};
      c.valid.push_back(EncodeRendezvousMessage(m, obfuscate));
    }
    c.decodes = [obfuscate](const Bytes& b) {
      return DecodeRendezvousMessage(Span(b), obfuscate).has_value();
    };
    c.reencode = [obfuscate](const Bytes& b) {
      return EncodeRendezvousMessage(*DecodeRendezvousMessage(Span(b), obfuscate), obfuscate);
    };
    cases.push_back(std::move(c));
  }

  {
    CodecCase c;
    c.name = "peer_message";
    for (uint8_t t = 1; t <= 6; ++t) {
      PeerMessage m;
      m.type = static_cast<PeerMsgType>(t);
      m.nonce = 0xFEEDFACE;
      m.sender_id = 42;
      m.payload = Bytes{9, 8, 7, 6};
      c.valid.push_back(EncodePeerMessage(m));
    }
    c.decodes = [](const Bytes& b) { return DecodePeerMessage(Span(b)).has_value(); };
    c.reencode = [](const Bytes& b) { return EncodePeerMessage(*DecodePeerMessage(Span(b))); };
    cases.push_back(std::move(c));
  }

  {
    CodecCase c;
    c.name = "turn_message";
    for (uint8_t t = 1; t <= 5; ++t) {
      TurnMessage m;
      m.type = static_cast<TurnMsgType>(t);
      m.peer = Endpoint(Ipv4Address::FromOctets(8, 8, 8, 8), 3478);
      m.payload = Bytes{5, 4, 3};
      c.valid.push_back(EncodeTurnMessage(m));
    }
    c.decodes = [](const Bytes& b) { return DecodeTurnMessage(Span(b)).has_value(); };
    c.reencode = [](const Bytes& b) { return EncodeTurnMessage(*DecodeTurnMessage(Span(b))); };
    cases.push_back(std::move(c));
  }

  {
    CodecCase c;
    c.name = "probe_message";
    for (uint8_t t = 1; t <= 5; ++t) {
      ProbeMessage m;
      m.type = static_cast<ProbeMsgType>(t);
      m.txn = 0xABCDEF;
      m.observed = Endpoint(Ipv4Address::FromOctets(1, 2, 3, 4), 9000);
      m.source_tag = ProbeSourceTag::kAlt;
      c.valid.push_back(EncodeProbeMessage(m));
    }
    c.decodes = [](const Bytes& b) { return DecodeProbeMessage(Span(b)).has_value(); };
    c.reencode = [](const Bytes& b) { return EncodeProbeMessage(*DecodeProbeMessage(Span(b))); };
    cases.push_back(std::move(c));
  }

  return cases;
}

TEST(WireArmorTest, ValidFramesRoundTripExactly) {
  for (const auto& c : AllCodecs()) {
    for (const Bytes& frame : c.valid) {
      ASSERT_TRUE(c.decodes(frame)) << c.name;
      EXPECT_EQ(c.reencode(frame), frame) << c.name;
    }
  }
}

TEST(WireArmorTest, EveryTruncationLengthRejected) {
  for (const auto& c : AllCodecs()) {
    const Bytes& frame = c.valid.front();
    for (size_t n = 0; n < frame.size(); ++n) {
      const Bytes cut(frame.begin(), frame.begin() + static_cast<ptrdiff_t>(n));
      EXPECT_FALSE(c.decodes(cut)) << c.name << " accepted a " << n << "-byte prefix of a "
                                   << frame.size() << "-byte frame";
    }
  }
}

TEST(WireArmorTest, TrailingBytesRejected) {
  for (const auto& c : AllCodecs()) {
    for (const Bytes& frame : c.valid) {
      Bytes padded = frame;
      padded.push_back(0);
      EXPECT_FALSE(c.decodes(padded)) << c.name << " accepted one trailing byte";
      padded.insert(padded.end(), 15, 0xFF);
      EXPECT_FALSE(c.decodes(padded)) << c.name << " accepted trailing garbage";
    }
  }
}

TEST(WireArmorTest, SingleBitFlipsFailOrStayCanonical) {
  for (const auto& c : AllCodecs()) {
    const Bytes& frame = c.valid.front();
    for (size_t bit = 0; bit < frame.size() * 8; ++bit) {
      Bytes mutant = frame;
      mutant[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      if (c.decodes(mutant)) {
        // Accepting a flipped frame is fine only if the decode is canonical:
        // the flipped bit landed in a free-form field, not tolerated garbage.
        EXPECT_EQ(c.reencode(mutant), mutant)
            << c.name << " accepted bit flip " << bit << " non-canonically";
      }
    }
  }
}

TEST(WireArmorTest, OutOfRangeEnumBytesRejected) {
  // Type is byte 1 in every codec (byte 2 for rendezvous, after the version).
  struct EnumProbe {
    size_t codec_index;  // into AllCodecs()
    size_t byte;
    std::vector<uint8_t> bad;
  };
  auto codecs = AllCodecs();
  const std::vector<EnumProbe> probes = {
      {0, 1, {0, 12, 0xFF}},   // nc type (valid 1..11)
      {0, 17, {3, 0xFF}},      // nc verdict (valid 0..2)
      {0, 10, {4, 0xFF}},      // nc server_index (valid 0..3)
      {1, 2, {0, 12, 0xFF}},   // rendezvous type (valid 1..11)
      {1, 3, {0, 6, 0xFF}},    // rendezvous strategy (valid 1..5)
      {3, 1, {0, 7, 0xFF}},    // peer type (valid 1..6)
      {4, 1, {0, 6, 0xFF}},    // turn type (valid 1..5)
      {5, 1, {0, 6, 0xFF}},    // probe type (valid 1..5)
      {5, 16, {3, 0xFF}},      // probe source tag (valid 0..2)
  };
  for (const auto& p : probes) {
    const auto& c = codecs[p.codec_index];
    for (uint8_t v : p.bad) {
      Bytes mutant = c.valid.front();
      ASSERT_LT(p.byte, mutant.size()) << c.name;
      mutant[p.byte] = v;
      EXPECT_FALSE(c.decodes(mutant))
          << c.name << " accepted enum byte " << int(v) << " at offset " << p.byte;
    }
  }
}

TEST(WireArmorTest, RandomGarbageNeverThrows) {
  auto codecs = AllCodecs();
  Rng rng(0x41524d4f52);  // "ARMOR"
  for (int i = 0; i < 2000; ++i) {
    Bytes garbage(rng.NextBelow(128));
    for (auto& b : garbage) {
      b = static_cast<uint8_t>(rng.NextBelow(256));
    }
    // Half the samples get a valid magic so they reach deeper into decode.
    if (!garbage.empty() && rng.NextBool(0.5)) {
      static constexpr uint8_t kMagics[] = {0x52, 0x50, 0x4e, 0x54, 0x51};
      garbage[0] = kMagics[rng.NextBelow(5)];
    }
    for (const auto& c : codecs) {
      EXPECT_NO_THROW({
        if (c.decodes(garbage)) {
          EXPECT_EQ(c.reencode(garbage), garbage) << c.name;
        }
      });
    }
  }
}

// ---------------------------------------------------------------------------
// MessageFramer armor
// ---------------------------------------------------------------------------

TEST(WireArmorFramerTest, ReassemblesAcrossArbitraryChunks) {
  const Bytes body1{1, 2, 3, 4, 5};
  const Bytes body2{};
  const Bytes body3(300, 0xAB);
  Bytes stream;
  for (const Bytes* b : {&body1, &body2, &body3}) {
    const Bytes framed = MessageFramer::Frame(*b);
    stream.insert(stream.end(), framed.begin(), framed.end());
  }
  for (size_t chunk = 1; chunk <= 7; ++chunk) {
    MessageFramer framer;
    std::vector<Bytes> got;
    for (size_t pos = 0; pos < stream.size(); pos += chunk) {
      const size_t n = std::min(chunk, stream.size() - pos);
      auto out = framer.Append(
          Bytes(stream.begin() + static_cast<ptrdiff_t>(pos),
                stream.begin() + static_cast<ptrdiff_t>(pos + n)));
      got.insert(got.end(), out.begin(), out.end());
    }
    ASSERT_EQ(got.size(), 3u) << "chunk=" << chunk;
    EXPECT_EQ(got[0], body1);
    EXPECT_EQ(got[1], body2);
    EXPECT_EQ(got[2], body3);
    EXPECT_FALSE(framer.poisoned());
  }
}

TEST(WireArmorFramerTest, OversizeLengthPrefixPoisonsTheStream) {
  MessageFramer framer;
  // A hostile 0xFFFF length prefix: no legitimate message is this large,
  // and buffering toward it would hold 64 KiB hostage per connection.
  Bytes hostile{0xFF, 0xFF};
  hostile.insert(hostile.end(), 32, 0x00);
  auto out = framer.Append(hostile);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(framer.poisoned());
  EXPECT_EQ(framer.oversize_frames(), 1u);
  // Once poisoned the buffer was dropped; even a now-valid frame is not
  // trusted, because the stream lost framing alignment for good.
  auto after = framer.Append(MessageFramer::Frame(Bytes{1, 2, 3}));
  EXPECT_EQ(after.size(), 1u);  // mechanically still parses...
  EXPECT_TRUE(framer.poisoned());  // ...but the owner must tear down
}

TEST(WireArmorFramerTest, FrameAtTheCapIsAcceptedOnePastIsNot) {
  {
    MessageFramer framer;
    const Bytes body(MessageFramer::kDefaultMaxFrame, 0x5A);
    auto out = framer.Append(MessageFramer::Frame(body));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].size(), MessageFramer::kDefaultMaxFrame);
    EXPECT_FALSE(framer.poisoned());
  }
  {
    MessageFramer framer;
    const Bytes body(MessageFramer::kDefaultMaxFrame + 1, 0x5A);
    auto out = framer.Append(MessageFramer::Frame(body));
    EXPECT_TRUE(out.empty());
    EXPECT_TRUE(framer.poisoned());
  }
}

// Data-bearing boundaries (TcpP2pStream, the relay-carrying rendezvous
// connection) raise the cap to the u16 prefix's ceiling: a 16 KiB bulk
// chunk — well over the control-plane default — must pass un-poisoned.
// Regression guard: the 8 KiB default once poisoned p2p file transfers.
TEST(WireArmorFramerTest, DataTierCapAcceptsBulkChunks) {
  static_assert(MessageFramer::kMaxDataFrame == 65535,
                "data cap must match the u16 length prefix ceiling");
  MessageFramer framer;
  framer.set_max_frame(MessageFramer::kMaxDataFrame);
  const Bytes chunk(16 * 1024 + 64, 0xC3);  // bulk payload + message header room
  auto out = framer.Append(MessageFramer::Frame(chunk));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], chunk);
  EXPECT_FALSE(framer.poisoned());

  const Bytes max_body(MessageFramer::kMaxDataFrame, 0x3C);
  out = framer.Append(MessageFramer::Frame(max_body));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].size(), MessageFramer::kMaxDataFrame);
  EXPECT_FALSE(framer.poisoned());
}

}  // namespace
}  // namespace natpunch
