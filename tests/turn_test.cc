// Tests for the TURN-style data-plane relay (§2.2's "relatively secure"
// relaying): allocation, address-based permissions, bidirectional relaying
// between peers behind hostile (symmetric) NATs, and lifetime expiry.

#include <gtest/gtest.h>

#include "src/core/turn.h"
#include "src/scenario/scenario.h"

namespace natpunch {
namespace {

TEST(TurnCodecTest, RoundTrip) {
  TurnMessage msg;
  msg.type = TurnMsgType::kSend;
  msg.peer = Endpoint(Ipv4Address::FromOctets(138, 76, 29, 7), 31000);
  msg.payload = Bytes{1, 2, 3, 4};
  auto decoded = DecodeTurnMessage(EncodeTurnMessage(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, msg.type);
  EXPECT_EQ(decoded->peer, msg.peer);
  EXPECT_EQ(decoded->payload, msg.payload);
  EXPECT_FALSE(DecodeTurnMessage(Bytes{0x55, 1}).has_value());
}

class TurnTest : public ::testing::Test {
 protected:
  void Build(const NatConfig& nat_a, const NatConfig& nat_b) {
    topo_ = MakeFig5(nat_a, nat_b);
    turn_host_ = topo_.scenario->AddPublicHost("turn", Ipv4Address::FromOctets(18, 181, 0, 40));
    server_ = std::make_unique<TurnServer>(turn_host_);
    ASSERT_TRUE(server_->Start().ok());
  }

  NatConfig Symmetric() {
    NatConfig config;
    config.mapping = NatMapping::kAddressAndPortDependent;
    return config;
  }

  Fig5Topology topo_;
  Host* turn_host_ = nullptr;
  std::unique_ptr<TurnServer> server_;
};

TEST_F(TurnTest, AllocateReturnsPublicRelayedEndpoint) {
  Build(NatConfig{}, NatConfig{});
  TurnClient client(topo_.a, server_->endpoint());
  Result<Endpoint> relayed = Status(ErrorCode::kInProgress);
  client.Allocate(0, [&](Result<Endpoint> r) { relayed = std::move(r); });
  topo_.scenario->net().RunFor(Seconds(3));
  ASSERT_TRUE(relayed.ok());
  EXPECT_EQ(relayed->ip, turn_host_->primary_address());
  EXPECT_FALSE(relayed->ip.IsPrivate());
  EXPECT_EQ(server_->active_allocations(), 1u);
}

TEST_F(TurnTest, AllocationRetriesSurviveLoss) {
  Scenario::Options options;
  options.internet_loss = 0.4;
  options.seed = 5;
  topo_ = MakeFig5(NatConfig{}, NatConfig{}, options);
  turn_host_ = topo_.scenario->AddPublicHost("turn", Ipv4Address::FromOctets(18, 181, 0, 40));
  server_ = std::make_unique<TurnServer>(turn_host_);
  ASSERT_TRUE(server_->Start().ok());
  TurnClient client(topo_.a, server_->endpoint());
  Result<Endpoint> relayed = Status(ErrorCode::kInProgress);
  client.Allocate(0, [&](Result<Endpoint> r) { relayed = std::move(r); });
  topo_.scenario->net().RunFor(Seconds(10));
  EXPECT_TRUE(relayed.ok());
}

TEST_F(TurnTest, RelaysBetweenSymmetricNattedPeers) {
  // The worst case for punching, fully served by TURN: A allocates, B sends
  // plain datagrams at the relayed endpoint, A answers through kSend.
  Build(Symmetric(), Symmetric());
  Network& net = topo_.scenario->net();

  TurnClient a(topo_.a, server_->endpoint());
  Result<Endpoint> relayed = Status(ErrorCode::kInProgress);
  a.Allocate(0, [&](Result<Endpoint> r) { relayed = std::move(r); });
  net.RunFor(Seconds(3));
  ASSERT_TRUE(relayed.ok());

  // B talks to the relayed endpoint from an ordinary socket.
  auto b_sock = topo_.b->udp().Bind(4444);
  Bytes b_got;
  Endpoint b_got_from;
  (*b_sock)->SetReceiveCallback([&](const Endpoint& from, const Payload& p) {
    b_got = p.ToBytes();
    b_got_from = from;
  });

  // A permits B's (address-level) identity — the port B will appear from is
  // unpredictable behind its symmetric NAT, which is exactly why TURN
  // permissions are address-based.
  ASSERT_TRUE(a.Permit(NatBIp()).ok());
  Endpoint a_got_from;
  Bytes a_got;
  a.SetReceiveCallback([&](const Endpoint& from, const Bytes& p) {
    a_got = p;
    a_got_from = from;
  });

  (*b_sock)->SendTo(*relayed, Bytes{'h', 'i', 'A'});
  net.RunFor(Seconds(2));
  EXPECT_EQ(a_got, (Bytes{'h', 'i', 'A'}));
  EXPECT_EQ(a_got_from.ip, NatBIp());

  // A answers via the relay; B sees the relayed endpoint as the source.
  a.SendTo(a_got_from, Bytes{'h', 'i', 'B'});
  net.RunFor(Seconds(2));
  EXPECT_EQ(b_got, (Bytes{'h', 'i', 'B'}));
  EXPECT_EQ(b_got_from, *relayed);
  EXPECT_EQ(server_->stats().relayed_to_client, 1u);
  EXPECT_EQ(server_->stats().relayed_to_peer, 1u);
}

TEST_F(TurnTest, NoPermissionNoDelivery) {
  Build(NatConfig{}, NatConfig{});
  Network& net = topo_.scenario->net();
  TurnClient a(topo_.a, server_->endpoint());
  Result<Endpoint> relayed = Status(ErrorCode::kInProgress);
  a.Allocate(0, [&](Result<Endpoint> r) { relayed = std::move(r); });
  net.RunFor(Seconds(3));
  ASSERT_TRUE(relayed.ok());
  bool got = false;
  a.SetReceiveCallback([&](const Endpoint&, const Bytes&) { got = true; });

  auto b_sock = topo_.b->udp().Bind(4444);
  (*b_sock)->SendTo(*relayed, Bytes{9});
  net.RunFor(Seconds(2));
  EXPECT_FALSE(got);
  EXPECT_EQ(server_->stats().denied_no_permission, 1u);
}

TEST_F(TurnTest, SendBeforeAllocateFails) {
  Build(NatConfig{}, NatConfig{});
  TurnClient a(topo_.a, server_->endpoint());
  EXPECT_EQ(a.SendTo(Endpoint(NatBIp(), 1), Bytes{1}).code(), ErrorCode::kNotConnected);
  EXPECT_EQ(a.Permit(NatBIp()).code(), ErrorCode::kNotConnected);
}

TEST_F(TurnTest, IdleAllocationExpiresRefreshedOneSurvives) {
  TurnServerConfig config;
  config.allocation_lifetime = Seconds(30);
  Build(NatConfig{}, NatConfig{});
  server_ = std::make_unique<TurnServer>(
      topo_.scenario->AddPublicHost("turn2", Ipv4Address::FromOctets(18, 181, 0, 41)), config);
  ASSERT_TRUE(server_->Start().ok());
  Network& net = topo_.scenario->net();

  // Client with refresh faster than the lifetime survives.
  TurnClient::Config fast;
  fast.refresh_interval = Seconds(10);
  TurnClient keeper(topo_.a, server_->endpoint(), fast);
  keeper.Allocate(0, [](Result<Endpoint>) {});
  // Client whose refresh is slower than the lifetime expires.
  TurnClient::Config slow;
  slow.refresh_interval = Seconds(120);
  TurnClient loser(topo_.b, server_->endpoint(), slow);
  loser.Allocate(0, [](Result<Endpoint>) {});
  net.RunFor(Seconds(3));
  EXPECT_EQ(server_->active_allocations(), 2u);

  net.RunFor(Seconds(60));
  EXPECT_EQ(server_->active_allocations(), 1u);
  EXPECT_GE(server_->stats().expired_allocations, 1u);
}

}  // namespace
}  // namespace natpunch
