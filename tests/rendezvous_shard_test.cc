// Sharded rendezvous tier: consistent-hash ownership, the v3 inter-shard
// wire protocol, cross-shard lookups, replication, and replica failover.
//
// The chaos-facing tests state the downtime bound explicitly: a client that
// loses its home shard must be re-registered on the ring successor within
// (failover_missed_keepalives + 1) keepalive intervals plus one
// registration round-trip, and every such failover must be visible in the
// replica shard's replica_promotions counter.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/rendezvous/client.h"
#include "src/rendezvous/ring.h"
#include "src/rendezvous/server.h"
#include "src/rendezvous/shard_messages.h"
#include "src/scenario/scenario.h"

namespace natpunch {
namespace {

// ---------------------------------------------------------------------------
// ShardRing: ownership properties and the modulo differential
// ---------------------------------------------------------------------------

std::vector<Endpoint> MakeShardEndpoints(int n) {
  std::vector<Endpoint> eps;
  eps.reserve(n);
  for (int i = 0; i < n; ++i) {
    eps.emplace_back(Ipv4Address::FromOctets(18, 181, 0, static_cast<uint8_t>(50 + i)),
                     kServerPort);
  }
  return eps;
}

TEST(ShardRingTest, IndependentlyBuiltRingsAgree) {
  // Clients and servers each build their own ring from the shard list;
  // ownership must be a pure function of that list.
  const auto eps = MakeShardEndpoints(5);
  ShardRing a(eps);
  ShardRing b(eps);
  std::mt19937_64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t id = rng();
    ASSERT_EQ(a.HomeShard(id), b.HomeShard(id));
    ASSERT_EQ(a.ReplicaShard(id), b.ReplicaShard(id));
  }
}

TEST(ShardRingTest, OwnerLadderIsAPermutationOfAllShards) {
  const int n = 5;
  ShardRing ring(MakeShardEndpoints(n));
  std::mt19937_64 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t id = rng();
    std::set<uint32_t> owners;
    for (uint32_t k = 0; k < n; ++k) {
      owners.insert(ring.NthOwner(id, k));
    }
    ASSERT_EQ(owners.size(), static_cast<size_t>(n)) << "ladder repeats a shard";
    // Home and replica are always distinct shards (the replica is useful).
    ASSERT_NE(ring.HomeShard(id), ring.ReplicaShard(id));
    // The ladder wraps modulo the shard count.
    ASSERT_EQ(ring.NthOwner(id, 0), ring.NthOwner(id, n));
  }
}

TEST(ShardRingTest, OwnershipIsTolerablyBalanced) {
  const int n = 5;
  ShardRing ring(MakeShardEndpoints(n));
  std::vector<int> counts(n, 0);
  std::mt19937_64 rng(13);
  const int kIds = 20000;
  for (int i = 0; i < kIds; ++i) {
    ++counts[ring.HomeShard(rng())];
  }
  for (int s = 0; s < n; ++s) {
    // Perfect balance is 20%; 64 vnodes keeps every shard within [10%, 32%].
    EXPECT_GT(counts[s], kIds / 10) << "shard " << s << " starved";
    EXPECT_LT(counts[s], kIds * 32 / 100) << "shard " << s << " overloaded";
  }
}

TEST(ShardRingTest, RemapDifferentialAgainstNaiveModuloOracle) {
  // The reason the ring exists: adding a shard must move only the arcs the
  // new shard claims (~1/(n+1) of keys), where the naive modulo oracle
  // (home = id % n) reshuffles most of the space.
  const auto eps4 = MakeShardEndpoints(4);
  const auto eps5 = MakeShardEndpoints(5);
  ShardRing ring4(eps4);
  ShardRing ring5(eps5);
  std::mt19937_64 rng(17);
  const int kIds = 20000;
  int ring_moved = 0;
  int modulo_moved = 0;
  for (int i = 0; i < kIds; ++i) {
    const uint64_t id = rng();
    if (ring4.HomeShard(id) != ring5.HomeShard(id)) {
      ++ring_moved;
    }
    if (id % 4 != id % 5) {
      ++modulo_moved;
    }
  }
  const double ring_frac = static_cast<double>(ring_moved) / kIds;
  const double modulo_frac = static_cast<double>(modulo_moved) / kIds;
  EXPECT_GT(ring_frac, 0.05);  // the new shard did claim keys
  EXPECT_LT(ring_frac, 0.35);  // ...but only about its fair 1/5 share
  EXPECT_GT(modulo_frac, 0.70);
  EXPECT_LT(ring_frac, modulo_frac / 2.0)
      << "consistent hashing lost its remap advantage over modulo";
}

// ---------------------------------------------------------------------------
// v3 inter-shard codec: round trip + wire armor
// ---------------------------------------------------------------------------

ShardMessage SampleShardMessage(ShardMsgType type) {
  ShardMessage msg;
  msg.type = type;
  msg.src_shard = 3;
  msg.found = type == ShardMsgType::kForwardReply ? 1 : 0;
  msg.client_id = 0x1111222233334444ULL;
  msg.target_id = 0x5555666677778888ULL;
  msg.nonce = 0xDEADBEEFCAFEF00DULL;
  msg.strategy = ConnectStrategy::kPredicted;
  msg.public_ep = Endpoint(Ipv4Address::FromOctets(155, 99, 25, 11), 62000);
  msg.private_ep = Endpoint(Ipv4Address::FromOctets(10, 0, 0, 2), 4321);
  msg.payload = {1, 2, 3, 4, 5};
  return msg;
}

TEST(ShardMessageTest, RoundTripsEveryTypeCanonically) {
  for (const ShardMsgType type :
       {ShardMsgType::kForwardConnect, ShardMsgType::kForwardReply, ShardMsgType::kReplicate,
        ShardMsgType::kForwardRelay}) {
    const ShardMessage msg = SampleShardMessage(type);
    const Bytes wire = EncodeShardMessage(msg);
    auto decoded = DecodeShardMessage(wire);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->type, msg.type);
    EXPECT_EQ(decoded->src_shard, msg.src_shard);
    EXPECT_EQ(decoded->found, msg.found);
    EXPECT_EQ(decoded->client_id, msg.client_id);
    EXPECT_EQ(decoded->target_id, msg.target_id);
    EXPECT_EQ(decoded->nonce, msg.nonce);
    EXPECT_EQ(decoded->strategy, msg.strategy);
    EXPECT_EQ(decoded->public_ep, msg.public_ep);
    EXPECT_EQ(decoded->private_ep, msg.private_ep);
    EXPECT_EQ(decoded->payload, msg.payload);
    // Canonical re-encode: the accepted frame is the only spelling.
    EXPECT_EQ(EncodeShardMessage(*decoded), wire);
  }
}

TEST(ShardMessageTest, ArmorRejectsHostileShapes) {
  const Bytes wire = EncodeShardMessage(SampleShardMessage(ShardMsgType::kForwardConnect));

  EXPECT_FALSE(DecodeShardMessage(Bytes{}).has_value());

  Bytes bad_magic = wire;
  bad_magic[0] = 0x52;  // the client protocol's magic is not ours
  EXPECT_FALSE(DecodeShardMessage(bad_magic).has_value());

  Bytes bad_version = wire;
  bad_version[1] = 2;
  EXPECT_FALSE(DecodeShardMessage(bad_version).has_value());

  for (const uint8_t type : {0, 5, 0xFF}) {
    Bytes bad_type = wire;
    bad_type[2] = type;
    EXPECT_FALSE(DecodeShardMessage(bad_type).has_value()) << "type " << int(type);
  }
  for (const uint8_t strategy : {0, 6, 0xFF}) {
    Bytes bad_strategy = wire;
    bad_strategy[3] = strategy;
    EXPECT_FALSE(DecodeShardMessage(bad_strategy).has_value()) << "strategy " << int(strategy);
  }
  for (const uint8_t found : {2, 0xFF}) {
    Bytes bad_found = wire;
    bad_found[4] = found;
    EXPECT_FALSE(DecodeShardMessage(bad_found).has_value()) << "found " << int(found);
  }

  // Every truncation (exact-length decode).
  for (size_t n = 0; n < wire.size(); ++n) {
    EXPECT_FALSE(DecodeShardMessage(ConstByteSpan(wire.data(), n)).has_value()) << "len " << n;
  }
  // Trailing garbage (AtEnd armor).
  Bytes trailing = wire;
  trailing.push_back(0);
  EXPECT_FALSE(DecodeShardMessage(trailing).has_value());
}

// ---------------------------------------------------------------------------
// End-to-end sharded tier
// ---------------------------------------------------------------------------

struct ShardClient {
  Host* host = nullptr;
  std::unique_ptr<UdpRendezvousClient> client;
  Endpoint public_ep;
};

class ShardedTierTest : public ::testing::Test {
 protected:
  static constexpr SimDuration kKeepAlive = Seconds(1);

  void BuildTier(int n_shards) {
    Scenario::Options options;
    options.seed = 99;
    options.metrics = true;
    scenario_ = std::make_unique<Scenario>(options);
    shard_eps_ = MakeShardEndpoints(n_shards);
    for (int i = 0; i < n_shards; ++i) {
      Host* host = scenario_->AddPublicHost("S" + std::to_string(i), shard_eps_[i].ip);
      RendezvousServer::Options so;
      so.shard.shards = shard_eps_;
      so.shard.index = static_cast<uint32_t>(i);
      servers_.push_back(std::make_unique<RendezvousServer>(host, kServerPort, so));
      ASSERT_TRUE(servers_.back()->Start().ok());
    }
    ring_ = ShardRing(shard_eps_);
  }

  // A NATted client that registers with its home shard and keeps alive.
  ShardClient& AddClient(uint64_t id) {
    const auto idx = static_cast<uint8_t>(clients_.size());
    NattedSite site = scenario_->AddNattedSite(
        "c" + std::to_string(id), NatConfig{}, Ipv4Address::FromOctets(20, 1, idx, 1),
        Ipv4Prefix(Ipv4Address::FromOctets(10, 0, 0, 0), 24), 1);
    auto holder = std::make_unique<ShardClient>();
    ShardClient* c = holder.get();
    c->host = site.host(0);
    c->client = std::make_unique<UdpRendezvousClient>(c->host, ring_, id);
    c->client->Register(4321, [c](Result<Endpoint> r) {
      if (r.ok()) {
        c->public_ep = *r;
      }
    });
    c->client->StartKeepAlive(kKeepAlive);
    clients_.push_back(std::move(holder));
    return *clients_.back();
  }

  // First id >= `from` homed on `shard`.
  uint64_t IdHomedOn(uint32_t shard, uint64_t from = 1) const {
    for (uint64_t id = from;; ++id) {
      if (ring_.HomeShard(id) == shard) {
        return id;
      }
    }
  }

  uint64_t TotalPromotions() const {
    uint64_t total = 0;
    for (const auto& server : servers_) {
      total += server->stats().replica_promotions;
    }
    return total;
  }

  Network& net() { return scenario_->net(); }

  std::unique_ptr<Scenario> scenario_;
  std::vector<Endpoint> shard_eps_;
  std::vector<std::unique_ptr<RendezvousServer>> servers_;
  std::vector<std::unique_ptr<ShardClient>> clients_;
  ShardRing ring_;
};

TEST_F(ShardedTierTest, CrossShardConnectIntroducesBothSides) {
  BuildTier(4);
  const uint64_t a_id = IdHomedOn(0);
  const uint64_t b_id = IdHomedOn(1);
  ShardClient& a = AddClient(a_id);
  ShardClient& b = AddClient(b_id);
  net().RunFor(Seconds(2));
  ASSERT_TRUE(a.client->registered());
  ASSERT_TRUE(b.client->registered());

  // B waits for the introduction; A asks its home shard, which must forward.
  RendezvousMessage forwarded;
  int forwards_seen = 0;
  b.client->SetConnectForwardHandler(ConnectStrategy::kHolePunch,
                                     [&](const RendezvousMessage& msg) {
                                       forwarded = msg;
                                       ++forwards_seen;
                                     });
  Result<RendezvousMessage> ack = Status(ErrorCode::kTimedOut, "no ack");
  a.client->RequestConnect(b_id, ConnectStrategy::kHolePunch, /*nonce=*/0xABCD,
                           [&](Result<RendezvousMessage> r) { ack = std::move(r); });
  net().RunFor(Seconds(2));

  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->public_ep, b.public_ep);
  ASSERT_GE(forwards_seen, 1);
  EXPECT_EQ(forwarded.client_id, a_id);
  EXPECT_EQ(forwarded.nonce, 0xABCDu);
  EXPECT_EQ(forwarded.public_ep, a.public_ep);

  // The lookup crossed shards: A's home forwarded, B's home answered.
  EXPECT_GE(servers_[0]->stats().forwards, 1u);
  EXPECT_GE(servers_[1]->stats().forward_replies, 1u);
  EXPECT_EQ(servers_[0]->stats().unknown_targets, 0u);
}

TEST_F(ShardedTierTest, SameShardConnectStaysLocal) {
  BuildTier(4);
  const uint64_t a_id = IdHomedOn(2);
  const uint64_t b_id = IdHomedOn(2, a_id + 1);
  ShardClient& a = AddClient(a_id);
  ShardClient& b = AddClient(b_id);
  net().RunFor(Seconds(2));

  b.client->SetConnectForwardHandler(ConnectStrategy::kHolePunch,
                                     [](const RendezvousMessage&) {});
  Result<RendezvousMessage> ack = Status(ErrorCode::kTimedOut, "no ack");
  a.client->RequestConnect(b_id, ConnectStrategy::kHolePunch, 1,
                           [&](Result<RendezvousMessage> r) { ack = std::move(r); });
  net().RunFor(Seconds(2));

  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(servers_[2]->stats().forwards, 0u);  // answered from its own table
}

TEST_F(ShardedTierTest, CrossShardRelayDeliversExactlyOnce) {
  BuildTier(4);
  const uint64_t a_id = IdHomedOn(0);
  const uint64_t b_id = IdHomedOn(3);
  ShardClient& a = AddClient(a_id);
  ShardClient& b = AddClient(b_id);
  net().RunFor(Seconds(2));

  int deliveries = 0;
  Bytes got;
  b.client->SetRelayHandler([&](uint64_t from_id, const Bytes& payload) {
    EXPECT_EQ(from_id, a_id);
    got = payload;
    ++deliveries;
  });
  a.client->SendRelay(b_id, Bytes{9, 8, 7});
  net().RunFor(Seconds(2));

  // Forwarded to both owners (home + replica) but delivered only from the
  // authoritative record — the replica copy must not double-deliver.
  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(got, (Bytes{9, 8, 7}));
}

TEST_F(ShardedTierTest, RegistrationIsReplicatedToRingSuccessor) {
  BuildTier(4);
  const uint64_t id = IdHomedOn(1);
  AddClient(id);
  net().RunFor(Seconds(2));

  const uint32_t home = ring_.HomeShard(id);
  const uint32_t replica = ring_.ReplicaShard(id);
  EXPECT_GE(servers_[home]->stats().replications_sent, 1u);
  EXPECT_GE(servers_[replica]->stats().replicas_stored, 1u);
  // The copy counts as a known client on the replica, ready for promotion.
  EXPECT_EQ(servers_[replica]->client_count(), 1u);
}

TEST_F(ShardedTierTest, ShardKillFailsOverToReplicaWithinBound) {
  BuildTier(4);
  // Two clients homed on every shard; every one keeps alive at 1 s.
  std::vector<uint64_t> ids;
  for (uint32_t shard = 0; shard < 4; ++shard) {
    const uint64_t first = IdHomedOn(shard);
    const uint64_t second = IdHomedOn(shard, first + 1);
    ids.push_back(first);
    ids.push_back(second);
    AddClient(first);
    AddClient(second);
  }
  net().RunFor(Seconds(3));
  for (const auto& c : clients_) {
    ASSERT_TRUE(c->client->registered());
  }

  // Chaos: kill shard 0 outright. Affected = clients homed there.
  const uint32_t dead = 0;
  std::vector<size_t> affected;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (ring_.HomeShard(ids[i]) == dead) {
      affected.push_back(i);
    }
  }
  ASSERT_FALSE(affected.empty()) << "seed produced no clients on shard 0";
  servers_[dead]->Stop();
  const SimTime killed_at = net().event_loop().now();

  // Stated bound: (failover_missed_keepalives + 1) keepalive intervals to
  // declare the shard dead, plus one registration round-trip (well under one
  // extra interval here). Run to the bound and demand full recovery.
  const RendezvousClientOptions defaults;
  const SimDuration bound =
      kKeepAlive * (defaults.failover_missed_keepalives + 1) + Seconds(1);
  net().RunFor(bound);

  for (const size_t i : affected) {
    const auto& client = clients_[i]->client;
    EXPECT_TRUE(client->registered()) << "client " << ids[i] << " still down past the bound";
    EXPECT_EQ(client->failovers(), 1u) << "client " << ids[i];
    EXPECT_EQ(client->current_shard(), ring_.ReplicaShard(ids[i]))
        << "client " << ids[i] << " did not land on its ring successor";
    EXPECT_LE(net().event_loop().now() - killed_at, bound);
  }
  // Unaffected clients never moved.
  for (size_t i = 0; i < ids.size(); ++i) {
    if (std::find(affected.begin(), affected.end(), i) == affected.end()) {
      EXPECT_EQ(clients_[i]->client->failovers(), 0u) << "client " << ids[i];
    }
  }
  // Accounting: every failover shows up as exactly one replica promotion.
  EXPECT_EQ(TotalPromotions(), affected.size());
}

TEST_F(ShardedTierTest, FailedOverClientIsStillReachableCrossShard) {
  BuildTier(4);
  const uint64_t target_id = IdHomedOn(0);
  // Requester homed on neither the dead shard nor the target's replica.
  const uint32_t replica = ring_.ReplicaShard(target_id);
  uint64_t req_id = target_id + 1;
  while (ring_.HomeShard(req_id) == 0 || ring_.HomeShard(req_id) == replica) {
    ++req_id;
  }
  ShardClient& target = AddClient(target_id);
  ShardClient& requester = AddClient(req_id);
  net().RunFor(Seconds(3));

  servers_[0]->Stop();
  const RendezvousClientOptions defaults;
  net().RunFor(kKeepAlive * (defaults.failover_missed_keepalives + 1) + Seconds(1));
  ASSERT_EQ(target.client->failovers(), 1u);
  ASSERT_TRUE(target.client->registered());

  // The requester's shard forwards to both owners; the dead home stays
  // silent and the promoted replica answers.
  target.client->SetConnectForwardHandler(ConnectStrategy::kHolePunch,
                                          [](const RendezvousMessage&) {});
  Result<RendezvousMessage> ack = Status(ErrorCode::kTimedOut, "no ack");
  requester.client->RequestConnect(target_id, ConnectStrategy::kHolePunch, 77,
                                   [&](Result<RendezvousMessage> r) { ack = std::move(r); });
  net().RunFor(Seconds(3));
  ASSERT_TRUE(ack.ok()) << "lookup for a failed-over peer did not reach the replica";
  EXPECT_EQ(ack->public_ep, target.public_ep);
}

TEST_F(ShardedTierTest, RequestsDuringRehomingFailFastAsNotConnected) {
  BuildTier(2);
  const uint64_t id = IdHomedOn(0);
  ShardClient& c = AddClient(id);
  net().RunFor(Seconds(2));
  ASSERT_TRUE(c.client->registered());
  EXPECT_FALSE(c.client->rehoming());

  servers_[0]->Stop();
  const RendezvousClientOptions defaults;
  net().RunFor(kKeepAlive * (defaults.failover_missed_keepalives + 1));
  // Somewhere in that window the client declared the shard dead; while the
  // re-registration is in flight, connect requests fail fast with
  // kNotConnected — the signal ResilientSessionManager treats as
  // retry-without-cost instead of a burned re-punch attempt.
  if (c.client->rehoming()) {
    bool called = false;
    Result<RendezvousMessage> r = Status(ErrorCode::kTimedOut, "callback not invoked");
    c.client->RequestConnect(999, ConnectStrategy::kHolePunch, 1,
                             [&](Result<RendezvousMessage> res) {
                               called = true;
                               r = std::move(res);
                             });
    EXPECT_TRUE(called) << "rehoming RequestConnect must fail synchronously";
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::kNotConnected);
  }
  net().RunFor(Seconds(2));
  EXPECT_TRUE(c.client->registered());
  EXPECT_FALSE(c.client->rehoming());
}

// ---------------------------------------------------------------------------
// Sharding off: byte-identical to the standalone server
// ---------------------------------------------------------------------------

// One fixed workload — registration, keepalives, an introduction, a relay —
// captured as a full packet trace. Run standalone and as a one-shard "tier";
// the dumps must match byte for byte, proving the sharding hooks are inert
// until a second shard exists.
std::string RunSingleServerWorkload(bool as_one_shard_ring) {
  Scenario::Options options;
  options.seed = 4242;
  Scenario scenario(options);
  Network& net = scenario.net();
  net.trace().set_enabled(true);

  Host* server_host = scenario.AddPublicHost("S", ServerIp());
  const Endpoint server_ep(ServerIp(), kServerPort);
  RendezvousServer::Options so;
  if (as_one_shard_ring) {
    so.shard.shards = {server_ep};
    so.shard.index = 0;
  }
  RendezvousServer server(server_host, kServerPort, so);
  EXPECT_TRUE(server.Start().ok());

  NattedSite site_a = scenario.AddNattedSite("A", NatConfig{}, NatAIp(),
                                             Ipv4Prefix(Ipv4Address::FromOctets(10, 0, 0, 0), 24), 1);
  NattedSite site_b = scenario.AddNattedSite("B", NatConfig{}, NatBIp(),
                                             Ipv4Prefix(Ipv4Address::FromOctets(10, 1, 1, 0), 24), 1);

  auto make_client = [&](Host* host, uint64_t id) {
    return as_one_shard_ring
               ? std::make_unique<UdpRendezvousClient>(host, ShardRing({server_ep}), id)
               : std::make_unique<UdpRendezvousClient>(host, server_ep, id);
  };
  auto ca = make_client(site_a.host(0), 1);
  auto cb = make_client(site_b.host(0), 2);
  ca->Register(4321, [](Result<Endpoint>) {});
  cb->Register(4321, [](Result<Endpoint>) {});
  ca->StartKeepAlive(Seconds(5));
  cb->StartKeepAlive(Seconds(5));
  net.RunFor(Seconds(2));

  cb->SetConnectForwardHandler(ConnectStrategy::kHolePunch, [](const RendezvousMessage&) {});
  cb->SetRelayHandler([](uint64_t, const Bytes&) {});
  ca->RequestConnect(2, ConnectStrategy::kHolePunch, 0x1234,
                     [](Result<RendezvousMessage>) {});
  net.RunFor(Seconds(2));
  ca->SendRelay(2, Bytes{1, 2, 3});
  net.RunFor(Seconds(12));  // a few keepalive rounds

  return net.trace().Dump();
}

TEST(ShardedTierByteIdentity, OneShardRingMatchesStandaloneTraceExactly) {
  const std::string standalone = RunSingleServerWorkload(/*as_one_shard_ring=*/false);
  const std::string one_shard = RunSingleServerWorkload(/*as_one_shard_ring=*/true);
  ASSERT_FALSE(standalone.empty());
  EXPECT_EQ(standalone, one_shard);
}

}  // namespace
}  // namespace natpunch
