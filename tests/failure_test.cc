// Failure injection: NAT reboots (translation state flushed) and rendezvous
// server outages. These pin down the paper's resilience story: punched
// sessions are independent of S, die with the NAT state, and recover by
// re-running the punch on demand.

#include <gtest/gtest.h>

#include "src/core/tcp_puncher.h"
#include "src/core/udp_puncher.h"
#include "src/rendezvous/server.h"
#include "src/scenario/scenario.h"

namespace natpunch {
namespace {

class FailureTest : public ::testing::Test {
 protected:
  void Build() {
    topo_ = MakeFig5(NatConfig{}, NatConfig{});
    server_ = std::make_unique<RendezvousServer>(topo_.server, kServerPort);
    ASSERT_TRUE(server_->Start().ok());
    ca_ = std::make_unique<UdpRendezvousClient>(topo_.a, server_->endpoint(), 1);
    cb_ = std::make_unique<UdpRendezvousClient>(topo_.b, server_->endpoint(), 2);
    ca_->Register(4321, [](Result<Endpoint>) {});
    cb_->Register(4321, [](Result<Endpoint>) {});
    UdpPunchConfig punch;
    punch.keepalive_interval = Seconds(10);
    punch.session_expiry = Seconds(30);
    pa_ = std::make_unique<UdpHolePuncher>(ca_.get(), punch);
    pb_ = std::make_unique<UdpHolePuncher>(cb_.get(), punch);
    pb_->SetIncomingSessionCallback([this](UdpP2pSession* s) {
      incoming_ = s;
      s->SetReceiveCallback([this](const Bytes&) { ++b_received_; });
    });
    topo_.scenario->net().RunFor(Seconds(2));
  }

  UdpP2pSession* Punch() {
    UdpP2pSession* session = nullptr;
    pa_->ConnectToPeer(2, [&](Result<UdpP2pSession*> r) { session = r.ok() ? *r : nullptr; });
    topo_.scenario->net().RunFor(Seconds(10));
    return session;
  }

  bool SendWorks(UdpP2pSession* session) {
    const int before = b_received_;
    session->Send(Bytes{1});
    topo_.scenario->net().RunFor(Seconds(2));
    return b_received_ > before;
  }

  Fig5Topology topo_;
  std::unique_ptr<RendezvousServer> server_;
  std::unique_ptr<UdpRendezvousClient> ca_, cb_;
  std::unique_ptr<UdpHolePuncher> pa_, pb_;
  UdpP2pSession* incoming_ = nullptr;
  int b_received_ = 0;
};

TEST_F(FailureTest, PunchedSessionSurvivesServerOutage) {
  // The central economic claim: S is needed only for the introduction.
  Build();
  UdpP2pSession* session = Punch();
  ASSERT_NE(session, nullptr);
  ASSERT_TRUE(SendWorks(session));

  server_->Stop();
  topo_.scenario->net().RunFor(Seconds(5));
  EXPECT_TRUE(SendWorks(session));  // peer traffic unaffected
}

TEST_F(FailureTest, NewPunchFailsWhileServerDown) {
  Build();
  server_->Stop();
  topo_.scenario->net().RunFor(Seconds(1));
  Status result;
  pa_->ConnectToPeer(2, [&](Result<UdpP2pSession*> r) {
    result = r.ok() ? Status::Ok() : r.status();
  });
  topo_.scenario->net().RunFor(Seconds(15));
  EXPECT_EQ(result.code(), ErrorCode::kTimedOut);
}

TEST_F(FailureTest, NatRebootKillsSessionRepunchRecovers) {
  Build();
  UdpP2pSession* session = Punch();
  ASSERT_NE(session, nullptr);
  ASSERT_TRUE(SendWorks(session));

  // Reboot A's NAT: every translation is gone.
  topo_.site_a.nat->FlushMappings();
  EXPECT_EQ(topo_.site_a.nat->active_mapping_count(), 0u);
  EXPECT_FALSE(SendWorks(session));

  // The session watchdog notices the silence...
  bool died = false;
  session->SetDeadCallback([&](Status) { died = true; });
  topo_.scenario->net().RunFor(Seconds(40));
  EXPECT_TRUE(died);

  // ...and an on-demand re-punch restores connectivity. (Registration
  // traffic re-established A's mapping with S automatically: the client
  // keeps talking to S, which re-opens its own session through the NAT.)
  ca_->StartKeepAlive(Seconds(2));
  topo_.scenario->net().RunFor(Seconds(5));
  UdpP2pSession* fresh = Punch();
  ASSERT_NE(fresh, nullptr);
  EXPECT_TRUE(SendWorks(fresh));
}

TEST_F(FailureTest, PunchedTcpStreamSurvivesServerOutage) {
  // The §4.2 analogue of the UDP economic claim: once the simultaneous
  // open completes, the stream runs NAT-to-NAT and S can vanish.
  auto topo = MakeFig5(NatConfig{}, NatConfig{});
  RendezvousServer server(topo.server, kServerPort);
  ASSERT_TRUE(server.Start().ok());
  TcpRendezvousClient ca(topo.a, server.endpoint(), 1);
  TcpRendezvousClient cb(topo.b, server.endpoint(), 2);
  ca.Connect(4321, [](Result<Endpoint>) {});
  cb.Connect(4321, [](Result<Endpoint>) {});
  TcpHolePuncher pa(&ca);
  TcpHolePuncher pb(&cb);
  int b_received = 0;
  pb.SetIncomingStreamCallback([&](TcpP2pStream* s) {
    s->SetReceiveCallback([&](const Bytes& data) { b_received += static_cast<int>(data.size()); });
  });
  topo.scenario->net().RunFor(Seconds(3));
  TcpP2pStream* stream = nullptr;
  pa.ConnectToPeer(2, [&](Result<TcpP2pStream*> r) { stream = r.ok() ? *r : nullptr; });
  topo.scenario->net().RunFor(Seconds(20));
  ASSERT_NE(stream, nullptr);

  server.Stop();
  topo.scenario->net().RunFor(Seconds(5));
  ASSERT_TRUE(stream->alive());
  stream->Send(Bytes(512, 7));
  topo.scenario->net().RunFor(Seconds(5));
  EXPECT_TRUE(stream->alive());
  EXPECT_EQ(b_received, 512);
}

TEST_F(FailureTest, NatRebootBreaksEstablishedTcpStream) {
  auto topo = MakeFig5(NatConfig{}, NatConfig{});
  RendezvousServer server(topo.server, kServerPort);
  ASSERT_TRUE(server.Start().ok());
  TcpRendezvousClient ca(topo.a, server.endpoint(), 1);
  TcpRendezvousClient cb(topo.b, server.endpoint(), 2);
  ca.Connect(4321, [](Result<Endpoint>) {});
  cb.Connect(4321, [](Result<Endpoint>) {});
  TcpHolePuncher pa(&ca);
  TcpHolePuncher pb(&cb);
  TcpP2pStream* incoming = nullptr;
  pb.SetIncomingStreamCallback([&](TcpP2pStream* s) { incoming = s; });
  topo.scenario->net().RunFor(Seconds(3));
  TcpP2pStream* stream = nullptr;
  pa.ConnectToPeer(2, [&](Result<TcpP2pStream*> r) { stream = r.ok() ? *r : nullptr; });
  topo.scenario->net().RunFor(Seconds(20));
  ASSERT_NE(stream, nullptr);

  topo.site_b.nat->FlushMappings();
  // Data now dies at B's NAT; A's retransmissions exhaust and reset.
  Status closed;
  stream->SetClosedCallback([&](Status s) { closed = s; });
  stream->Send(Bytes(1000, 1));
  topo.scenario->net().RunFor(Seconds(300));
  EXPECT_FALSE(stream->alive());
  EXPECT_EQ(closed.code(), ErrorCode::kTimedOut);
}

TEST_F(FailureTest, ServerRestartAllowsReRegistration) {
  Build();
  server_->Stop();
  topo_.scenario->net().RunFor(Seconds(1));
  ASSERT_TRUE(server_->Start().ok());
  // Clients re-register (fresh client objects, as an app reconnect would).
  UdpRendezvousClient ca2(topo_.a, server_->endpoint(), 1);
  UdpRendezvousClient cb2(topo_.b, server_->endpoint(), 2);
  bool ra = false;
  bool rb = false;
  ca2.Register(5555, [&](Result<Endpoint> r) { ra = r.ok(); });
  cb2.Register(5555, [&](Result<Endpoint> r) { rb = r.ok(); });
  UdpHolePuncher pa2(&ca2);
  UdpHolePuncher pb2(&cb2);
  topo_.scenario->net().RunFor(Seconds(3));
  EXPECT_TRUE(ra);
  EXPECT_TRUE(rb);
  UdpP2pSession* session = nullptr;
  pa2.ConnectToPeer(2, [&](Result<UdpP2pSession*> r) { session = r.ok() ? *r : nullptr; });
  topo_.scenario->net().RunFor(Seconds(10));
  EXPECT_NE(session, nullptr);
}

}  // namespace
}  // namespace natpunch
