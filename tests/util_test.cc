// Unit tests for src/util: Result/Status, Rng, byte serialization.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/util/bytes.h"
#include "src/util/result.h"
#include "src/util/rng.h"

namespace natpunch {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s(ErrorCode::kAddressInUse, "port 80");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kAddressInUse);
  EXPECT_EQ(s.ToString(), "ADDRESS_IN_USE: port 80");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kAborted); ++c) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.code(), ErrorCode::kOk);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status(ErrorCode::kTimedOut, "slow");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kTimedOut);
  EXPECT_EQ(r.status().message(), "slow");
}

TEST(ResultTest, ImplicitErrorCode) {
  Result<std::string> r = ErrorCode::kClosed;
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kClosed);
}

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.NextBelow(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.Fork();
  EXPECT_NE(parent.NextU64(), child.NextU64());
}

TEST(BytesTest, RoundTripIntegers) {
  ByteWriter w;
  w.WriteU8(0xab);
  w.WriteU16(0x1234);
  w.WriteU32(0xdeadbeef);
  w.WriteU64(0x0123456789abcdefULL);
  ByteReader r(w.data());
  EXPECT_EQ(r.ReadU8(), 0xab);
  EXPECT_EQ(r.ReadU16(), 0x1234);
  EXPECT_EQ(r.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(r.ReadU64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, BigEndianLayout) {
  ByteWriter w;
  w.WriteU32(0x0a000001);  // 10.0.0.1 — address bytes must appear in wire order
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x0a);
  EXPECT_EQ(w.data()[1], 0x00);
  EXPECT_EQ(w.data()[2], 0x00);
  EXPECT_EQ(w.data()[3], 0x01);
}

TEST(BytesTest, RoundTripStringsAndBytes) {
  ByteWriter w;
  w.WriteString("hole punching");
  w.WriteBytes(Bytes{1, 2, 3});
  ByteReader r(w.data());
  EXPECT_EQ(r.ReadString(), "hole punching");
  EXPECT_EQ(r.ReadBytes(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(r.ok());
}

TEST(BytesTest, ShortReadMarksBad) {
  ByteWriter w;
  w.WriteU16(7);
  ByteReader r(w.data());
  r.ReadU32();
  EXPECT_FALSE(r.ok());
}

TEST(BytesTest, TruncatedLengthPrefixMarksBad) {
  ByteWriter w;
  w.WriteU16(100);  // claims 100 bytes follow; none do
  ByteReader r(w.data());
  EXPECT_TRUE(r.ReadBytes().empty());
  EXPECT_FALSE(r.ok());
}

TEST(BytesTest, EmptyPayloadRoundTrip) {
  ByteWriter w;
  w.WriteBytes(Bytes{});
  ByteReader r(w.data());
  EXPECT_TRUE(r.ReadBytes().empty());
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

}  // namespace
}  // namespace natpunch
