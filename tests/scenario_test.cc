// Tests for the canned topologies: addressing, routing, and that each
// figure's world has the connectivity properties its experiments assume.

#include <gtest/gtest.h>

#include "src/scenario/scenario.h"

namespace natpunch {
namespace {

// Round-trip UDP echo probe: true if `from` can reach `to_ep` and get an
// answer back within a second.
bool EchoWorks(Network& net, Host* from, Host* to, uint16_t port) {
  auto server = to->udp().Bind(port);
  if (!server.ok()) {
    return false;
  }
  (*server)->SetReceiveCallback([s = *server](const Endpoint& peer, const Payload& p) {
    s->SendTo(peer, p);
  });
  auto client = from->udp().Bind(0);
  bool echoed = false;
  (*client)->SetReceiveCallback([&](const Endpoint&, const Payload&) { echoed = true; });
  (*client)->SendTo(Endpoint(to->primary_address(), port), Bytes{1});
  net.RunFor(Seconds(1));
  (*server)->Close();
  (*client)->Close();
  return echoed;
}

TEST(ScenarioTest, PaperAddressesInFig5) {
  auto topo = MakeFig5(NatConfig{}, NatConfig{});
  EXPECT_EQ(topo.server->primary_address(), ServerIp());
  EXPECT_EQ(topo.site_a.nat->public_ip(), NatAIp());
  EXPECT_EQ(topo.site_b.nat->public_ip(), NatBIp());
  EXPECT_EQ(topo.b->primary_address(), Ipv4Address::FromOctets(10, 1, 1, 3));
  EXPECT_TRUE(topo.a->primary_address().IsPrivate());
}

TEST(ScenarioTest, Fig5ClientsReachServerNotEachOther) {
  auto topo = MakeFig5(NatConfig{}, NatConfig{});
  Network& net = topo.scenario->net();
  EXPECT_TRUE(EchoWorks(net, topo.a, topo.server, 9001));
  EXPECT_TRUE(EchoWorks(net, topo.b, topo.server, 9002));
  // Direct client-to-client via private addresses must not work.
  auto sock = topo.a->udp().Bind(0);
  bool received = false;
  auto sink = topo.b->udp().Bind(9003);
  (*sink)->SetReceiveCallback([&](const Endpoint&, const Payload&) { received = true; });
  (*sock)->SendTo(Endpoint(topo.b->primary_address(), 9003), Bytes{1});
  net.RunFor(Seconds(1));
  EXPECT_FALSE(received);
}

TEST(ScenarioTest, Fig4ClientsShareLanAndNat) {
  auto topo = MakeFig4(NatConfig{});
  Network& net = topo.scenario->net();
  // Same-LAN direct reachability.
  EXPECT_TRUE(EchoWorks(net, topo.a, topo.b, 9004));
  // Both reach the server through the single NAT.
  EXPECT_TRUE(EchoWorks(net, topo.a, topo.server, 9005));
  EXPECT_TRUE(EchoWorks(net, topo.b, topo.server, 9006));
  EXPECT_GE(topo.site.nat->active_mapping_count(), 2u);
}

TEST(ScenarioTest, Fig6TwoLevelsOfTranslation) {
  auto topo = MakeFig6(NatConfig{}, NatConfig{}, NatConfig{});
  Network& net = topo.scenario->net();
  EXPECT_TRUE(EchoWorks(net, topo.a, topo.server, 9007));
  // Both the consumer NAT and the ISP NAT hold a mapping for the session.
  EXPECT_GE(topo.site_a.nat->active_mapping_count(), 1u);
  EXPECT_GE(topo.isp.nat->active_mapping_count(), 1u);
  // The ISP realm address of NAT A is private.
  EXPECT_TRUE(topo.site_a.nat->public_ip().IsPrivate());
  EXPECT_FALSE(topo.isp.nat->public_ip().IsPrivate());
}

TEST(ScenarioTest, AddHostToSiteIsRoutable) {
  auto topo = MakeFig5(NatConfig{}, NatConfig{});
  Host* extra =
      topo.scenario->AddHostToSite(&topo.site_a, "x", Ipv4Address::FromOctets(10, 0, 0, 77));
  Network& net = topo.scenario->net();
  EXPECT_TRUE(EchoWorks(net, extra, topo.server, 9008));
  EXPECT_TRUE(EchoWorks(net, extra, topo.a, 9009));
}

TEST(ScenarioTest, LossySegmentConfigApplies) {
  Scenario::Options options;
  options.internet_loss = 1.0;  // everything dies on the global realm
  auto topo = MakeFig5(NatConfig{}, NatConfig{}, options);
  Network& net = topo.scenario->net();
  EXPECT_FALSE(EchoWorks(net, topo.a, topo.server, 9010));
  // But the private LAN is unaffected.
  auto topo2 = MakeFig4(NatConfig{}, options);
  EXPECT_TRUE(EchoWorks(topo2.scenario->net(), topo2.a, topo2.b, 9011));
}

TEST(ScenarioTest, SeedsChangeOnlyRandomness) {
  for (uint64_t seed : {1u, 2u}) {
    Scenario::Options options;
    options.seed = seed;
    auto topo = MakeFig5(NatConfig{}, NatConfig{}, options);
    EXPECT_EQ(topo.site_a.nat->public_ip(), NatAIp());  // structure invariant
  }
}

}  // namespace
}  // namespace natpunch
