// Hierarchical timing wheel tests: exact dispatch order (the wheel is a
// staging tier under the heap, so pops must keep the strict (time, sequence)
// total order the golden traces depend on), slot rollover, far-future
// overflow parking, cancellation from every residence state, Reset() reuse,
// and a randomized wheel-vs-heap differential oracle. The scenario-level
// check at the bottom replays a full punch scenario with the wheel on and
// off and requires byte-identical Trace::Dump() output.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/udp_puncher.h"
#include "src/netsim/event_loop.h"
#include "src/rendezvous/client.h"
#include "src/rendezvous/server.h"
#include "src/scenario/scenario.h"
#include "src/util/flat_hash.h"

namespace natpunch {
namespace {

// One L0 slot is 2^14 us; one L0 window is 64 slots.
constexpr int64_t kSlotUs = 1 << 14;
constexpr int64_t kWindowUs = 64 * kSlotUs;

struct FireLog {
  EventLoop* loop = nullptr;
  std::vector<std::string>* log = nullptr;
  int tag = 0;
  TimerHandle handle;

  void Fire() {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "t%d@%lld", tag,
                  static_cast<long long>(loop->now().micros()));
    log->push_back(buf);
  }
};

TEST(TimerWheelTest, SlotRolloverKeepsExactOrderAcrossWindows) {
  EventLoop loop;
  std::vector<std::string> log;
  // Deadlines straddling several L0 windows and one L1 boundary, scheduled
  // out of deadline order so the wheel has to do the sorting.
  const int64_t deadlines[] = {3 * kWindowUs + 5,  kSlotUs / 2,       kWindowUs - 1,
                               kWindowUs,          kWindowUs + 1,     2 * kWindowUs + kSlotUs,
                               65 * kWindowUs + 7, 5 * kWindowUs + 3, kSlotUs * 63};
  std::vector<FireLog> timers(std::size(deadlines));
  for (size_t i = 0; i < timers.size(); ++i) {
    timers[i].loop = &loop;
    timers[i].log = &log;
    timers[i].tag = static_cast<int>(i);
    timers[i].handle.Bind<&FireLog::Fire>(&timers[i]);
    loop.ScheduleTimerAt(SimTime(deadlines[i]), &timers[i].handle);
  }
  loop.RunUntil(SimTime(70 * kWindowUs));
  ASSERT_EQ(log.size(), timers.size());
  // Expected: ascending deadline order.
  EXPECT_EQ(log[0], "t1@8192");
  EXPECT_EQ(log[1], "t8@1032192");
  EXPECT_EQ(log[2], "t2@1048575");
  EXPECT_EQ(log[3], "t3@1048576");
  EXPECT_EQ(log[4], "t4@1048577");
  EXPECT_EQ(log[5], "t5@2113536");
  EXPECT_EQ(log[6], "t0@3145733");
  EXPECT_EQ(log[7], "t7@5242883");
  EXPECT_EQ(log[8], "t6@68157447");
}

TEST(TimerWheelTest, SameDeadlineTieBreaksByScheduleOrderWithClosures) {
  for (const bool wheel : {true, false}) {
    EventLoop loop;
    loop.SetTimerWheelEnabled(wheel);
    std::vector<std::string> log;
    const int64_t when = 2 * kWindowUs + 17;
    FireLog t1{&loop, &log, 1, {}};
    FireLog t2{&loop, &log, 2, {}};
    t1.handle.Bind<&FireLog::Fire>(&t1);
    t2.handle.Bind<&FireLog::Fire>(&t2);
    loop.ScheduleAt(SimTime(when), [&] { log.push_back("c0"); });
    loop.ScheduleTimerAt(SimTime(when), &t1.handle);
    loop.ScheduleAt(SimTime(when), [&] { log.push_back("c1"); });
    loop.ScheduleTimerAt(SimTime(when), &t2.handle);
    loop.RunUntil(SimTime(3 * kWindowUs));
    ASSERT_EQ(log.size(), 4u) << "wheel=" << wheel;
    EXPECT_EQ(log[0], "c0");
    EXPECT_EQ(log[1], "t1@" + std::to_string(when));
    EXPECT_EQ(log[2], "c1");
    EXPECT_EQ(log[3], "t2@" + std::to_string(when));
  }
}

TEST(TimerWheelTest, FarFutureTimerParksInOverflowAndFiresExactly) {
  EventLoop loop;
  std::vector<std::string> log;
  FireLog farfut{&loop, &log, 9, {}};
  farfut.handle.Bind<&FireLog::Fire>(&farfut);
  // ~100 simulated hours: past the level-3 horizon (~76 h), so the handle
  // parks in the overflow list and must survive several rescans.
  const int64_t when = 100ll * 3600 * 1000000 + 12345;
  loop.ScheduleTimerAt(SimTime(when), &farfut.handle);
  EXPECT_EQ(loop.wheel_pending(), 1u);
  // Keep the loop busy along the way so the cursor actually travels.
  FireLog hourly{&loop, &log, 1, {}};
  hourly.handle.Bind<&FireLog::Fire>(&hourly);
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 120) {
      loop.ScheduleAfter(Micros(3600ll * 1000000), hop);
    }
  };
  loop.ScheduleAfter(Micros(3600ll * 1000000), hop);
  loop.RunUntil(SimTime(when + 1));
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "t9@" + std::to_string(when));
}

TEST(TimerWheelTest, CancelWorksFromEveryResidence) {
  EventLoop loop;
  std::vector<std::string> log;
  // One timer per residence tier: level 0 (heap after flush), level 1+,
  // and the overflow list.
  FireLog near{&loop, &log, 0, {}};
  FireLog mid{&loop, &log, 1, {}};
  FireLog far{&loop, &log, 2, {}};
  for (FireLog* t : {&near, &mid, &far}) {
    t->handle.Bind<&FireLog::Fire>(t);
  }
  loop.ScheduleTimerAt(SimTime(kSlotUs * 3), &near.handle);
  loop.ScheduleTimerAt(SimTime(kWindowUs * 7), &mid.handle);
  loop.ScheduleTimerAt(SimTime(200ll * 3600 * 1000000), &far.handle);
  EXPECT_TRUE(near.handle.pending());
  EXPECT_TRUE(near.handle.Cancel());
  EXPECT_FALSE(near.handle.pending());
  EXPECT_FALSE(near.handle.Cancel());  // second cancel is a no-op
  EXPECT_TRUE(mid.handle.Cancel());
  EXPECT_TRUE(far.handle.Cancel());
  EXPECT_EQ(loop.wheel_pending(), 0u);
  loop.RunUntil(SimTime(kWindowUs * 10));
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(loop.pending_count(), 0u);
}

TEST(TimerWheelTest, CancelDuringCascadeWindow) {
  // A timer cancelled by an earlier-firing timer in the *same* L0 window:
  // by then the victim has cascaded down to level 0 / the heap, so this
  // exercises unlink-after-migration rather than the easy in-slot unlink.
  EventLoop loop;
  std::vector<std::string> log;
  FireLog victim{&loop, &log, 7, {}};
  victim.handle.Bind<&FireLog::Fire>(&victim);
  struct Killer {
    TimerHandle* target;
    TimerHandle handle;
    void Fire() { target->Cancel(); }
  } killer{&victim.handle, {}};
  killer.handle.Bind<&Killer::Fire>(&killer);
  // Same L1 slot (same window), killer a few slots earlier.
  loop.ScheduleTimerAt(SimTime(5 * kWindowUs + 2 * kSlotUs), &killer.handle);
  loop.ScheduleTimerAt(SimTime(5 * kWindowUs + 9 * kSlotUs), &victim.handle);
  loop.RunUntil(SimTime(6 * kWindowUs));
  EXPECT_TRUE(log.empty());
  EXPECT_FALSE(victim.handle.pending());
}

TEST(TimerWheelTest, RearmPendingHandleMovesDeadline) {
  EventLoop loop;
  std::vector<std::string> log;
  FireLog t{&loop, &log, 3, {}};
  t.handle.Bind<&FireLog::Fire>(&t);
  loop.ScheduleTimerAt(SimTime(4 * kWindowUs), &t.handle);
  // Pull it earlier, then push it later: only the final deadline fires.
  loop.ScheduleTimerAt(SimTime(kWindowUs), &t.handle);
  loop.ScheduleTimerAt(SimTime(2 * kWindowUs + 5), &t.handle);
  loop.RunUntil(SimTime(8 * kWindowUs));
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "t3@" + std::to_string(2 * kWindowUs + 5));
}

TEST(TimerWheelTest, ResetIdlesWheelTimersAndHandlesAreReusable) {
  EventLoop loop;
  std::vector<std::string> log;
  std::vector<FireLog> timers(8);
  for (size_t i = 0; i < timers.size(); ++i) {
    timers[i].loop = &loop;
    timers[i].log = &log;
    timers[i].tag = static_cast<int>(i);
    timers[i].handle.Bind<&FireLog::Fire>(&timers[i]);
    loop.ScheduleTimerAt(SimTime(static_cast<int64_t>(i + 1) * kWindowUs), &timers[i].handle);
  }
  loop.RunUntil(SimTime(2 * kWindowUs + 1));  // fire the first two
  EXPECT_EQ(log.size(), 2u);
  loop.Reset();
  EXPECT_EQ(loop.pending_count(), 0u);
  EXPECT_EQ(loop.wheel_pending(), 0u);
  for (FireLog& t : timers) {
    EXPECT_FALSE(t.handle.pending());
  }
  // The same handles re-arm cleanly on the reset loop (time restarted at 0).
  log.clear();
  for (size_t i = 0; i < timers.size(); ++i) {
    loop.ScheduleTimerAt(SimTime(static_cast<int64_t>(i + 1) * kSlotUs), &timers[i].handle);
  }
  loop.RunUntil(SimTime(kWindowUs));
  EXPECT_EQ(log.size(), timers.size());
}

TEST(TimerWheelTest, DestructorCancelsPendingTimer) {
  EventLoop loop;
  std::vector<std::string> log;
  {
    FireLog doomed{&loop, &log, 4, {}};
    doomed.handle.Bind<&FireLog::Fire>(&doomed);
    loop.ScheduleTimerAt(SimTime(3 * kWindowUs), &doomed.handle);
  }  // handle destroyed while parked in the wheel
  loop.RunUntil(SimTime(5 * kWindowUs));
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(loop.pending_count(), 0u);
}

// ---------------------------------------------------------------------------
// Randomized differential oracle: wheel on vs wheel off (pure heap) must
// produce identical dispatch sequences under schedule/cancel/re-arm churn.
// ---------------------------------------------------------------------------

struct DiffTimer {
  EventLoop* loop;
  std::vector<std::string>* log;
  int tag;
  TimerHandle handle;
  uint64_t rng;
  int64_t horizon;
  int64_t max_step;

  void Fire() {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "t%d@%lld", tag,
                  static_cast<long long>(loop->now().micros()));
    log->push_back(buf);
    rng = HashMix64(rng + 1);
    const int64_t step = 1 + static_cast<int64_t>(rng % static_cast<uint64_t>(max_step));
    if (loop->now().micros() + step < horizon) {
      loop->ScheduleTimerAfter(Micros(step), &handle);
    }
  }
};

std::vector<std::string> DifferentialRun(bool wheel, uint64_t seed, int n_timers,
                                         int64_t horizon, int64_t max_step) {
  EventLoop loop;
  loop.SetTimerWheelEnabled(wheel);
  std::vector<std::string> log;
  std::vector<DiffTimer> recs(n_timers);
  uint64_t rng = seed;
  for (int i = 0; i < n_timers; ++i) {
    recs[i].loop = &loop;
    recs[i].log = &log;
    recs[i].tag = i;
    recs[i].rng = HashMix64(seed * 1000 + static_cast<uint64_t>(i));
    recs[i].horizon = horizon;
    recs[i].max_step = max_step;
    recs[i].handle.Bind<&DiffTimer::Fire>(&recs[i]);
    rng = HashMix64(rng);
    loop.ScheduleTimerAfter(Micros(1 + rng % static_cast<uint64_t>(max_step)),
                            &recs[i].handle);
  }
  // Interleave closure events that cancel or re-arm random victims, so the
  // oracle also covers mixed closure/timer tie-breaking.
  for (int k = 0; k < 120; ++k) {
    rng = HashMix64(rng);
    const int64_t when = static_cast<int64_t>(rng % static_cast<uint64_t>(horizon));
    const int victim = static_cast<int>(HashMix64(rng) % static_cast<uint64_t>(n_timers));
    loop.ScheduleAt(SimTime(when), [&loop, &log, &recs, victim, when] {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "c%d@%lld", victim, static_cast<long long>(when));
      log.push_back(buf);
      if (victim % 3 == 0) {
        recs[victim].handle.Cancel();
      } else if (victim % 3 == 1) {
        loop.ScheduleTimerAfter(Micros(1 + victim * 12345), &recs[victim].handle);
      }
    });
  }
  loop.RunUntil(SimTime(horizon));
  return log;
}

TEST(TimerWheelDifferentialTest, MatchesHeapOnlyOrderAcrossAllLevels) {
  struct Config {
    int n_timers;
    int64_t horizon;
    int64_t max_step;
  };
  // Short/dense exercises L0/L1 windows; medium crosses L2/L3 boundaries;
  // long/sparse crosses the overflow horizon (~76 h).
  const Config configs[] = {
      {24, 120000000ll, 7000000ll},
      {16, 9000000000ll, 500000000ll},
      {8, 600000000000ll, 90000000000ll},
  };
  for (const Config& cfg : configs) {
    for (uint64_t seed = 1; seed <= 10; ++seed) {
      const auto with_wheel =
          DifferentialRun(true, seed, cfg.n_timers, cfg.horizon, cfg.max_step);
      const auto heap_only =
          DifferentialRun(false, seed, cfg.n_timers, cfg.horizon, cfg.max_step);
      ASSERT_EQ(with_wheel, heap_only)
          << "dispatch order diverged: seed=" << seed << " horizon=" << cfg.horizon;
    }
  }
}

// ---------------------------------------------------------------------------
// Scenario-level oracle: a full punch + keepalive + expiry scenario must
// trace byte-identically whether timers stage through the wheel or go
// straight to the heap.
// ---------------------------------------------------------------------------

std::string PunchScenarioTrace(bool wheel_enabled) {
  Scenario::Options options;
  options.seed = 77;
  auto topo = MakeFig5(NatConfig{}, NatConfig{}, options);
  Network& net = topo.scenario->net();
  net.event_loop().SetTimerWheelEnabled(wheel_enabled);
  net.trace().set_enabled(true);

  RendezvousServer server(topo.server, 3478);
  if (!server.Start().ok()) {
    return "server start failed";
  }
  UdpRendezvousClient ca(topo.a, server.endpoint(), 1);
  UdpRendezvousClient cb(topo.b, server.endpoint(), 2);
  ca.Register(4321, [](Result<Endpoint>) {});
  cb.Register(4321, [](Result<Endpoint>) {});
  UdpPunchConfig punch_config;
  punch_config.keepalive_interval = Seconds(3);
  punch_config.session_expiry = Seconds(10);
  UdpHolePuncher pa(&ca, punch_config);
  UdpHolePuncher pb(&cb, punch_config);
  UdpP2pSession* incoming = nullptr;
  pb.SetIncomingSessionCallback([&](UdpP2pSession* s) { incoming = s; });
  net.RunFor(Seconds(2));
  UdpP2pSession* session = nullptr;
  pa.ConnectToPeer(2, [&](Result<UdpP2pSession*> r) { session = r.ok() ? *r : nullptr; });
  net.RunFor(Seconds(10));
  if (session == nullptr) {
    return "punch failed";
  }
  // Keepalive-sustained quiet period, a data burst, then silence long
  // enough for the responder's expiry watchdog to run its course.
  net.RunFor(Seconds(20));
  for (int i = 0; i < 5; ++i) {
    session->Send(Bytes{static_cast<uint8_t>(i)});
    net.RunFor(Millis(250));
  }
  session->Close();
  net.RunFor(Seconds(25));
  return net.trace().Dump();
}

TEST(TimerWheelDifferentialTest, PunchScenarioTraceByteIdentical) {
  const std::string with_wheel = PunchScenarioTrace(true);
  const std::string heap_only = PunchScenarioTrace(false);
  ASSERT_GT(with_wheel.size(), 1000u);  // the scenario really ran
  EXPECT_EQ(with_wheel, heap_only);
}

TEST(TimerWheelTest, LoopMetricsCountWheelAndHeapAdmissions) {
  Network net(1);
  obs::MetricsRegistry* reg = net.EnableMetrics();
  EventLoop& loop = net.event_loop();
  std::vector<std::string> log;
  FireLog near{&loop, &log, 0, {}};
  FireLog far{&loop, &log, 1, {}};
  near.handle.Bind<&FireLog::Fire>(&near);
  far.handle.Bind<&FireLog::Fire>(&far);
  const obs::Counter* wheel_ct = reg->FindCounter("loop.timers_wheel");
  const obs::Counter* heap_ct = reg->FindCounter("loop.timers_heap");
  const obs::Counter* cascades = reg->FindCounter("loop.wheel_cascades");
  ASSERT_NE(wheel_ct, nullptr);
  ASSERT_NE(heap_ct, nullptr);
  ASSERT_NE(cascades, nullptr);
  loop.ScheduleTimerAt(SimTime(5 * kWindowUs), &near.handle);  // wheel path
  EXPECT_EQ(wheel_ct->value(), 1u);
  loop.SetTimerWheelEnabled(false);
  loop.ScheduleTimerAt(SimTime(6 * kWindowUs), &far.handle);  // forced heap path
  EXPECT_EQ(heap_ct->value(), 1u);
  loop.SetTimerWheelEnabled(true);
  loop.RunUntil(SimTime(7 * kWindowUs));
  EXPECT_EQ(log.size(), 2u);
}

}  // namespace
}  // namespace natpunch
