// Cross-cutting coverage: the §3.4 wrong-host/ICMP candidate pruning path,
// Fig. 6 TCP punching as a test (not just a bench), prediction degeneracy
// on cone NATs, rendezvous TCP disconnects, logging, and event-loop corner
// cases.

#include <gtest/gtest.h>

#include "src/core/prediction.h"
#include "src/core/probe_server.h"
#include "src/core/tcp_puncher.h"
#include "src/core/udp_puncher.h"
#include "src/rendezvous/server.h"
#include "src/scenario/scenario.h"
#include "src/util/logging.h"

namespace natpunch {
namespace {

TEST(StrayIcmpTest, DeadPrivateCandidatePrunedPunchStillSucceeds) {
  // §3.4: A's probes to B's private endpoint reach a host on A's own
  // network with the same address. Here that host has no socket bound, so
  // it answers with ICMP port-unreachable — the puncher prunes the dead
  // candidate and wins via the public path.
  Scenario scenario{Scenario::Options{}};
  Host* server_host = scenario.AddPublicHost("S", ServerIp());
  // Both private networks use the SAME prefix (the paper notes vendors'
  // default DHCP pools collide constantly).
  NattedSite site_a = scenario.AddNattedSite(
      "A", NatConfig{}, NatAIp(), Ipv4Prefix(Ipv4Address::FromOctets(10, 0, 0, 0), 24), 1);
  NattedSite site_b = scenario.AddNattedSite(
      "B", NatConfig{}, NatBIp(), Ipv4Prefix(Ipv4Address::FromOctets(10, 0, 0, 0), 24), 2);
  Host* a = site_a.host(0);   // 10.0.0.2
  Host* b = site_b.host(1);   // 10.0.0.3 behind NAT B
  // The stray: same address as B, on A's network, no UDP socket at 4321.
  Host* stray = scenario.AddHostToSite(&site_a, "stray", Ipv4Address::FromOctets(10, 0, 0, 3));
  (void)stray;

  scenario.net().trace().set_enabled(true);
  RendezvousServer server(server_host, kServerPort);
  ASSERT_TRUE(server.Start().ok());
  UdpRendezvousClient ca(a, server.endpoint(), 1);
  UdpRendezvousClient cb(b, server.endpoint(), 2);
  ca.Register(4321, [](Result<Endpoint>) {});
  cb.Register(4321, [](Result<Endpoint>) {});
  UdpHolePuncher pa(&ca);
  UdpHolePuncher pb(&cb);
  scenario.net().RunFor(Seconds(2));

  UdpP2pSession* session = nullptr;
  pa.ConnectToPeer(2, [&](Result<UdpP2pSession*> r) { session = r.ok() ? *r : nullptr; });
  scenario.net().RunFor(Seconds(10));
  ASSERT_NE(session, nullptr);
  EXPECT_FALSE(session->used_private_endpoint());
  EXPECT_EQ(session->peer_endpoint().ip, NatBIp());
}

TEST(Fig6TcpTest, MultiLevelTcpPunchNeedsHairpin) {
  for (const bool hairpin : {false, true}) {
    NatConfig isp;
    isp.hairpin_tcp = hairpin;
    auto topo = MakeFig6(isp, NatConfig{}, NatConfig{});
    RendezvousServer server(topo.server, kServerPort);
    ASSERT_TRUE(server.Start().ok());
    TcpRendezvousClient ca(topo.a, server.endpoint(), 1);
    TcpRendezvousClient cb(topo.b, server.endpoint(), 2);
    ca.Connect(4321, [](Result<Endpoint>) {});
    cb.Connect(4321, [](Result<Endpoint>) {});
    TcpPunchConfig punch;
    punch.punch_timeout = Seconds(20);
    TcpHolePuncher pa(&ca, punch);
    TcpHolePuncher pb(&cb, punch);
    pb.SetIncomingStreamCallback([](TcpP2pStream*) {});
    topo.scenario->net().RunFor(Seconds(3));
    bool success = false;
    pa.ConnectToPeer(2, [&](Result<TcpP2pStream*> r) { success = r.ok(); });
    topo.scenario->net().RunFor(Seconds(30));
    EXPECT_EQ(success, hairpin);
  }
}

TEST(PredictionDegenerateTest, ConeNatsPredictDeltaZeroAndPunch) {
  // On cone NATs prediction measures delta 0 and the predicted endpoint is
  // simply the current one — the procedure degenerates to normal punching.
  auto topo = MakeFig5(NatConfig{}, NatConfig{});
  RendezvousServer server(topo.server, kServerPort);
  ASSERT_TRUE(server.Start().ok());
  Host* stun2_host = topo.scenario->AddPublicHost("S2", Ipv4Address::FromOctets(18, 181, 0, 32));
  StunLikeServer stun1(topo.server, 3478);
  StunLikeServer stun2(stun2_host, 3478);
  ASSERT_TRUE(stun1.Start().ok());
  ASSERT_TRUE(stun2.Start().ok());
  UdpRendezvousClient ca(topo.a, server.endpoint(), 1);
  UdpRendezvousClient cb(topo.b, server.endpoint(), 2);
  ca.Register(4321, [](Result<Endpoint>) {});
  cb.Register(4321, [](Result<Endpoint>) {});
  UdpHolePuncher pa(&ca);
  UdpHolePuncher pb(&cb);
  PredictivePuncher predict_a(&pa, stun1.endpoint(), stun2.endpoint());
  PredictivePuncher predict_b(&pb, stun1.endpoint(), stun2.endpoint());
  pb.SetIncomingSessionCallback([](UdpP2pSession*) {});
  topo.scenario->net().RunFor(Seconds(2));
  UdpP2pSession* session = nullptr;
  predict_a.ConnectToPeer(2, [&](Result<UdpP2pSession*> r) { session = r.ok() ? *r : nullptr; });
  topo.scenario->net().RunFor(Seconds(15));
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->peer_endpoint(), cb.public_endpoint());  // delta was 0
}

TEST(RendezvousTcpTest, DisconnectDropsRegistrationUdpSurvives) {
  auto topo = MakeFig5(NatConfig{}, NatConfig{});
  RendezvousServer server(topo.server, kServerPort);
  ASSERT_TRUE(server.Start().ok());
  // Register B over both transports, A over UDP only.
  UdpRendezvousClient ua(topo.a, server.endpoint(), 1);
  UdpRendezvousClient ub(topo.b, server.endpoint(), 2);
  TcpRendezvousClient tb(topo.b, server.endpoint(), 2);
  ua.Register(4321, [](Result<Endpoint>) {});
  ub.Register(4321, [](Result<Endpoint>) {});
  tb.Connect(4321, [](Result<Endpoint>) {});
  topo.scenario->net().RunFor(Seconds(3));
  EXPECT_EQ(server.client_count(), 2u);

  tb.CloseConnection();
  topo.scenario->net().RunFor(Seconds(2));
  // B is still reachable for UDP introductions.
  Result<RendezvousMessage> ack = Status(ErrorCode::kInProgress);
  ua.RequestConnect(2, ConnectStrategy::kHolePunch, 1,
                    [&](Result<RendezvousMessage> r) { ack = std::move(r); });
  topo.scenario->net().RunFor(Seconds(3));
  EXPECT_TRUE(ack.ok());
}

TEST(LoggingTest, SinkAndLevelsWork) {
  std::string captured;
  SetLogSink([&](const std::string& line) { captured += line; });
  SetLogLevel(LogLevel::kInfo);
  NP_LOG(Debug) << "invisible";
  NP_LOG(Info) << "visible " << 42;
  SetLogLevel(LogLevel::kWarning);
  NP_LOG(Info) << "also invisible";
  NP_LOG(Error) << "loud";
  SetLogSink(nullptr);
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(captured.find("invisible"), std::string::npos);
  EXPECT_NE(captured.find("visible 42"), std::string::npos);
  EXPECT_NE(captured.find("loud"), std::string::npos);
}

TEST(EventLoopEdgeTest, CancelFromWithinEvent) {
  EventLoop loop;
  bool second_ran = false;
  EventLoop::EventId second = 0;
  loop.ScheduleAt(SimTime(10), [&] { loop.Cancel(second); });
  second = loop.ScheduleAt(SimTime(20), [&] { second_ran = true; });
  loop.RunUntilIdle();
  EXPECT_FALSE(second_ran);
}

TEST(EventLoopEdgeTest, ScheduleInPastClampsToNow) {
  EventLoop loop;
  loop.RunUntil(SimTime(1000));
  bool ran = false;
  loop.ScheduleAt(SimTime(5), [&] { ran = true; });
  EXPECT_EQ(loop.now().micros(), 1000);
  loop.RunUntilIdle();
  EXPECT_TRUE(ran);
  EXPECT_EQ(loop.now().micros(), 1000);  // fired "immediately", no time travel
}

TEST(EventLoopEdgeTest, SelfCancelIsHarmless) {
  EventLoop loop;
  EventLoop::EventId id = 0;
  id = loop.ScheduleAt(SimTime(5), [&] {
    EXPECT_FALSE(loop.Cancel(id));  // already dequeued while running
  });
  loop.RunUntilIdle();
}

}  // namespace
}  // namespace natpunch
