file(REMOVE_RECURSE
  "CMakeFiles/tcp_robustness_test.dir/tcp_robustness_test.cc.o"
  "CMakeFiles/tcp_robustness_test.dir/tcp_robustness_test.cc.o.d"
  "tcp_robustness_test"
  "tcp_robustness_test.pdb"
  "tcp_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
