# Empty dependencies file for natcheck_test.
# This may be replaced when dependencies are built.
