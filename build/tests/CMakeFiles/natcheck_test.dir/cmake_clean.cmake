file(REMOVE_RECURSE
  "CMakeFiles/natcheck_test.dir/natcheck_test.cc.o"
  "CMakeFiles/natcheck_test.dir/natcheck_test.cc.o.d"
  "natcheck_test"
  "natcheck_test.pdb"
  "natcheck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/natcheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
