# Empty compiler generated dependencies file for natcheck_test.
# This may be replaced when dependencies are built.
