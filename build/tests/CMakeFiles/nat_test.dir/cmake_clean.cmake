file(REMOVE_RECURSE
  "CMakeFiles/nat_test.dir/nat_test.cc.o"
  "CMakeFiles/nat_test.dir/nat_test.cc.o.d"
  "nat_test"
  "nat_test.pdb"
  "nat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
