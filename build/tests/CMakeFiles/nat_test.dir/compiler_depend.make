# Empty compiler generated dependencies file for nat_test.
# This may be replaced when dependencies are built.
