# Empty dependencies file for turn_test.
# This may be replaced when dependencies are built.
