file(REMOVE_RECURSE
  "CMakeFiles/turn_test.dir/turn_test.cc.o"
  "CMakeFiles/turn_test.dir/turn_test.cc.o.d"
  "turn_test"
  "turn_test.pdb"
  "turn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
