
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/netsim_test.cc" "tests/CMakeFiles/netsim_test.dir/netsim_test.cc.o" "gcc" "tests/CMakeFiles/netsim_test.dir/netsim_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fleet/CMakeFiles/natpunch_fleet.dir/DependInfo.cmake"
  "/root/repo/build/src/natcheck/CMakeFiles/natpunch_natcheck.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/natpunch_core.dir/DependInfo.cmake"
  "/root/repo/build/src/scenario/CMakeFiles/natpunch_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/rendezvous/CMakeFiles/natpunch_rendezvous.dir/DependInfo.cmake"
  "/root/repo/build/src/nat/CMakeFiles/natpunch_nat.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/natpunch_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/natpunch_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/natpunch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
