# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/netsim_test[1]_include.cmake")
include("/root/repo/build/tests/udp_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_test[1]_include.cmake")
include("/root/repo/build/tests/nat_test[1]_include.cmake")
include("/root/repo/build/tests/rendezvous_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/natcheck_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/components_test[1]_include.cmake")
include("/root/repo/build/tests/turn_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
