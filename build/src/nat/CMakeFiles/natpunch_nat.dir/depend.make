# Empty dependencies file for natpunch_nat.
# This may be replaced when dependencies are built.
