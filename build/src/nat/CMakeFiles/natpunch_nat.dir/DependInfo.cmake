
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nat/nat_config.cc" "src/nat/CMakeFiles/natpunch_nat.dir/nat_config.cc.o" "gcc" "src/nat/CMakeFiles/natpunch_nat.dir/nat_config.cc.o.d"
  "/root/repo/src/nat/nat_device.cc" "src/nat/CMakeFiles/natpunch_nat.dir/nat_device.cc.o" "gcc" "src/nat/CMakeFiles/natpunch_nat.dir/nat_device.cc.o.d"
  "/root/repo/src/nat/nat_table.cc" "src/nat/CMakeFiles/natpunch_nat.dir/nat_table.cc.o" "gcc" "src/nat/CMakeFiles/natpunch_nat.dir/nat_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netsim/CMakeFiles/natpunch_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/natpunch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
