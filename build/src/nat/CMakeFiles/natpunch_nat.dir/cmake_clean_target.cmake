file(REMOVE_RECURSE
  "libnatpunch_nat.a"
)
