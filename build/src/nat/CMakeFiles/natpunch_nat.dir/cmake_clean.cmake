file(REMOVE_RECURSE
  "CMakeFiles/natpunch_nat.dir/nat_config.cc.o"
  "CMakeFiles/natpunch_nat.dir/nat_config.cc.o.d"
  "CMakeFiles/natpunch_nat.dir/nat_device.cc.o"
  "CMakeFiles/natpunch_nat.dir/nat_device.cc.o.d"
  "CMakeFiles/natpunch_nat.dir/nat_table.cc.o"
  "CMakeFiles/natpunch_nat.dir/nat_table.cc.o.d"
  "libnatpunch_nat.a"
  "libnatpunch_nat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/natpunch_nat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
