file(REMOVE_RECURSE
  "CMakeFiles/natpunch_transport.dir/host.cc.o"
  "CMakeFiles/natpunch_transport.dir/host.cc.o.d"
  "CMakeFiles/natpunch_transport.dir/tcp.cc.o"
  "CMakeFiles/natpunch_transport.dir/tcp.cc.o.d"
  "CMakeFiles/natpunch_transport.dir/udp.cc.o"
  "CMakeFiles/natpunch_transport.dir/udp.cc.o.d"
  "libnatpunch_transport.a"
  "libnatpunch_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/natpunch_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
