# Empty dependencies file for natpunch_transport.
# This may be replaced when dependencies are built.
