file(REMOVE_RECURSE
  "libnatpunch_transport.a"
)
