# Empty dependencies file for natpunch_core.
# This may be replaced when dependencies are built.
