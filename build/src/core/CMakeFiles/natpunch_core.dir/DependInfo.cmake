
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/connector.cc" "src/core/CMakeFiles/natpunch_core.dir/connector.cc.o" "gcc" "src/core/CMakeFiles/natpunch_core.dir/connector.cc.o.d"
  "/root/repo/src/core/nat_prober.cc" "src/core/CMakeFiles/natpunch_core.dir/nat_prober.cc.o" "gcc" "src/core/CMakeFiles/natpunch_core.dir/nat_prober.cc.o.d"
  "/root/repo/src/core/peer_wire.cc" "src/core/CMakeFiles/natpunch_core.dir/peer_wire.cc.o" "gcc" "src/core/CMakeFiles/natpunch_core.dir/peer_wire.cc.o.d"
  "/root/repo/src/core/prediction.cc" "src/core/CMakeFiles/natpunch_core.dir/prediction.cc.o" "gcc" "src/core/CMakeFiles/natpunch_core.dir/prediction.cc.o.d"
  "/root/repo/src/core/probe_server.cc" "src/core/CMakeFiles/natpunch_core.dir/probe_server.cc.o" "gcc" "src/core/CMakeFiles/natpunch_core.dir/probe_server.cc.o.d"
  "/root/repo/src/core/relay.cc" "src/core/CMakeFiles/natpunch_core.dir/relay.cc.o" "gcc" "src/core/CMakeFiles/natpunch_core.dir/relay.cc.o.d"
  "/root/repo/src/core/sequential.cc" "src/core/CMakeFiles/natpunch_core.dir/sequential.cc.o" "gcc" "src/core/CMakeFiles/natpunch_core.dir/sequential.cc.o.d"
  "/root/repo/src/core/tcp_puncher.cc" "src/core/CMakeFiles/natpunch_core.dir/tcp_puncher.cc.o" "gcc" "src/core/CMakeFiles/natpunch_core.dir/tcp_puncher.cc.o.d"
  "/root/repo/src/core/tcp_stream.cc" "src/core/CMakeFiles/natpunch_core.dir/tcp_stream.cc.o" "gcc" "src/core/CMakeFiles/natpunch_core.dir/tcp_stream.cc.o.d"
  "/root/repo/src/core/turn.cc" "src/core/CMakeFiles/natpunch_core.dir/turn.cc.o" "gcc" "src/core/CMakeFiles/natpunch_core.dir/turn.cc.o.d"
  "/root/repo/src/core/udp_puncher.cc" "src/core/CMakeFiles/natpunch_core.dir/udp_puncher.cc.o" "gcc" "src/core/CMakeFiles/natpunch_core.dir/udp_puncher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rendezvous/CMakeFiles/natpunch_rendezvous.dir/DependInfo.cmake"
  "/root/repo/build/src/nat/CMakeFiles/natpunch_nat.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/natpunch_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/natpunch_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/natpunch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
