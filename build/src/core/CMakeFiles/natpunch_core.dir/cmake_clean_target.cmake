file(REMOVE_RECURSE
  "libnatpunch_core.a"
)
