file(REMOVE_RECURSE
  "CMakeFiles/natpunch_core.dir/connector.cc.o"
  "CMakeFiles/natpunch_core.dir/connector.cc.o.d"
  "CMakeFiles/natpunch_core.dir/nat_prober.cc.o"
  "CMakeFiles/natpunch_core.dir/nat_prober.cc.o.d"
  "CMakeFiles/natpunch_core.dir/peer_wire.cc.o"
  "CMakeFiles/natpunch_core.dir/peer_wire.cc.o.d"
  "CMakeFiles/natpunch_core.dir/prediction.cc.o"
  "CMakeFiles/natpunch_core.dir/prediction.cc.o.d"
  "CMakeFiles/natpunch_core.dir/probe_server.cc.o"
  "CMakeFiles/natpunch_core.dir/probe_server.cc.o.d"
  "CMakeFiles/natpunch_core.dir/relay.cc.o"
  "CMakeFiles/natpunch_core.dir/relay.cc.o.d"
  "CMakeFiles/natpunch_core.dir/sequential.cc.o"
  "CMakeFiles/natpunch_core.dir/sequential.cc.o.d"
  "CMakeFiles/natpunch_core.dir/tcp_puncher.cc.o"
  "CMakeFiles/natpunch_core.dir/tcp_puncher.cc.o.d"
  "CMakeFiles/natpunch_core.dir/tcp_stream.cc.o"
  "CMakeFiles/natpunch_core.dir/tcp_stream.cc.o.d"
  "CMakeFiles/natpunch_core.dir/turn.cc.o"
  "CMakeFiles/natpunch_core.dir/turn.cc.o.d"
  "CMakeFiles/natpunch_core.dir/udp_puncher.cc.o"
  "CMakeFiles/natpunch_core.dir/udp_puncher.cc.o.d"
  "libnatpunch_core.a"
  "libnatpunch_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/natpunch_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
