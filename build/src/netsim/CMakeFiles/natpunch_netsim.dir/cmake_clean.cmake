file(REMOVE_RECURSE
  "CMakeFiles/natpunch_netsim.dir/address.cc.o"
  "CMakeFiles/natpunch_netsim.dir/address.cc.o.d"
  "CMakeFiles/natpunch_netsim.dir/event_loop.cc.o"
  "CMakeFiles/natpunch_netsim.dir/event_loop.cc.o.d"
  "CMakeFiles/natpunch_netsim.dir/lan.cc.o"
  "CMakeFiles/natpunch_netsim.dir/lan.cc.o.d"
  "CMakeFiles/natpunch_netsim.dir/network.cc.o"
  "CMakeFiles/natpunch_netsim.dir/network.cc.o.d"
  "CMakeFiles/natpunch_netsim.dir/node.cc.o"
  "CMakeFiles/natpunch_netsim.dir/node.cc.o.d"
  "CMakeFiles/natpunch_netsim.dir/packet.cc.o"
  "CMakeFiles/natpunch_netsim.dir/packet.cc.o.d"
  "CMakeFiles/natpunch_netsim.dir/sim_time.cc.o"
  "CMakeFiles/natpunch_netsim.dir/sim_time.cc.o.d"
  "CMakeFiles/natpunch_netsim.dir/trace.cc.o"
  "CMakeFiles/natpunch_netsim.dir/trace.cc.o.d"
  "libnatpunch_netsim.a"
  "libnatpunch_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/natpunch_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
