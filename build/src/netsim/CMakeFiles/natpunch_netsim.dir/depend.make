# Empty dependencies file for natpunch_netsim.
# This may be replaced when dependencies are built.
