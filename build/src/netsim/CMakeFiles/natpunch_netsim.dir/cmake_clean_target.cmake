file(REMOVE_RECURSE
  "libnatpunch_netsim.a"
)
