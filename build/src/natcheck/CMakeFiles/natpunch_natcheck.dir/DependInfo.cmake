
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/natcheck/client.cc" "src/natcheck/CMakeFiles/natpunch_natcheck.dir/client.cc.o" "gcc" "src/natcheck/CMakeFiles/natpunch_natcheck.dir/client.cc.o.d"
  "/root/repo/src/natcheck/messages.cc" "src/natcheck/CMakeFiles/natpunch_natcheck.dir/messages.cc.o" "gcc" "src/natcheck/CMakeFiles/natpunch_natcheck.dir/messages.cc.o.d"
  "/root/repo/src/natcheck/multi_client.cc" "src/natcheck/CMakeFiles/natpunch_natcheck.dir/multi_client.cc.o" "gcc" "src/natcheck/CMakeFiles/natpunch_natcheck.dir/multi_client.cc.o.d"
  "/root/repo/src/natcheck/servers.cc" "src/natcheck/CMakeFiles/natpunch_natcheck.dir/servers.cc.o" "gcc" "src/natcheck/CMakeFiles/natpunch_natcheck.dir/servers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rendezvous/CMakeFiles/natpunch_rendezvous.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/natpunch_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/natpunch_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/natpunch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
