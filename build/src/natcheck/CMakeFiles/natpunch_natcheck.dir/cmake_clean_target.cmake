file(REMOVE_RECURSE
  "libnatpunch_natcheck.a"
)
