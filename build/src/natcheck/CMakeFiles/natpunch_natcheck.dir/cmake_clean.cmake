file(REMOVE_RECURSE
  "CMakeFiles/natpunch_natcheck.dir/client.cc.o"
  "CMakeFiles/natpunch_natcheck.dir/client.cc.o.d"
  "CMakeFiles/natpunch_natcheck.dir/messages.cc.o"
  "CMakeFiles/natpunch_natcheck.dir/messages.cc.o.d"
  "CMakeFiles/natpunch_natcheck.dir/multi_client.cc.o"
  "CMakeFiles/natpunch_natcheck.dir/multi_client.cc.o.d"
  "CMakeFiles/natpunch_natcheck.dir/servers.cc.o"
  "CMakeFiles/natpunch_natcheck.dir/servers.cc.o.d"
  "libnatpunch_natcheck.a"
  "libnatpunch_natcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/natpunch_natcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
