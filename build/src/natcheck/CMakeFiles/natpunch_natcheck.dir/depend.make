# Empty dependencies file for natpunch_natcheck.
# This may be replaced when dependencies are built.
