file(REMOVE_RECURSE
  "libnatpunch_fleet.a"
)
