file(REMOVE_RECURSE
  "CMakeFiles/natpunch_fleet.dir/fleet.cc.o"
  "CMakeFiles/natpunch_fleet.dir/fleet.cc.o.d"
  "libnatpunch_fleet.a"
  "libnatpunch_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/natpunch_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
