# Empty compiler generated dependencies file for natpunch_fleet.
# This may be replaced when dependencies are built.
