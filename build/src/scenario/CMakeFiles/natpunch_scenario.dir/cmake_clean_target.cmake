file(REMOVE_RECURSE
  "libnatpunch_scenario.a"
)
