# Empty dependencies file for natpunch_scenario.
# This may be replaced when dependencies are built.
