file(REMOVE_RECURSE
  "CMakeFiles/natpunch_scenario.dir/scenario.cc.o"
  "CMakeFiles/natpunch_scenario.dir/scenario.cc.o.d"
  "libnatpunch_scenario.a"
  "libnatpunch_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/natpunch_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
