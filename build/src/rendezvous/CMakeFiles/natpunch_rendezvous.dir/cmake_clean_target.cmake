file(REMOVE_RECURSE
  "libnatpunch_rendezvous.a"
)
