file(REMOVE_RECURSE
  "CMakeFiles/natpunch_rendezvous.dir/client.cc.o"
  "CMakeFiles/natpunch_rendezvous.dir/client.cc.o.d"
  "CMakeFiles/natpunch_rendezvous.dir/messages.cc.o"
  "CMakeFiles/natpunch_rendezvous.dir/messages.cc.o.d"
  "CMakeFiles/natpunch_rendezvous.dir/server.cc.o"
  "CMakeFiles/natpunch_rendezvous.dir/server.cc.o.d"
  "libnatpunch_rendezvous.a"
  "libnatpunch_rendezvous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/natpunch_rendezvous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
