# Empty compiler generated dependencies file for natpunch_rendezvous.
# This may be replaced when dependencies are built.
