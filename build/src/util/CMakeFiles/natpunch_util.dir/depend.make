# Empty dependencies file for natpunch_util.
# This may be replaced when dependencies are built.
