file(REMOVE_RECURSE
  "libnatpunch_util.a"
)
