file(REMOVE_RECURSE
  "CMakeFiles/natpunch_util.dir/bytes.cc.o"
  "CMakeFiles/natpunch_util.dir/bytes.cc.o.d"
  "CMakeFiles/natpunch_util.dir/logging.cc.o"
  "CMakeFiles/natpunch_util.dir/logging.cc.o.d"
  "CMakeFiles/natpunch_util.dir/result.cc.o"
  "CMakeFiles/natpunch_util.dir/result.cc.o.d"
  "CMakeFiles/natpunch_util.dir/rng.cc.o"
  "CMakeFiles/natpunch_util.dir/rng.cc.o.d"
  "libnatpunch_util.a"
  "libnatpunch_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/natpunch_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
