file(REMOVE_RECURSE
  "../examples/voip_call"
  "../examples/voip_call.pdb"
  "CMakeFiles/voip_call.dir/voip_call.cpp.o"
  "CMakeFiles/voip_call.dir/voip_call.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voip_call.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
