# Empty compiler generated dependencies file for gaming_lobby.
# This may be replaced when dependencies are built.
