file(REMOVE_RECURSE
  "../examples/gaming_lobby"
  "../examples/gaming_lobby.pdb"
  "CMakeFiles/gaming_lobby.dir/gaming_lobby.cpp.o"
  "CMakeFiles/gaming_lobby.dir/gaming_lobby.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaming_lobby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
