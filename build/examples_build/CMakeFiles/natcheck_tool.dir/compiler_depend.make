# Empty compiler generated dependencies file for natcheck_tool.
# This may be replaced when dependencies are built.
