file(REMOVE_RECURSE
  "../examples/natcheck_tool"
  "../examples/natcheck_tool.pdb"
  "CMakeFiles/natcheck_tool.dir/natcheck_tool.cpp.o"
  "CMakeFiles/natcheck_tool.dir/natcheck_tool.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/natcheck_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
