# Empty compiler generated dependencies file for p2p_chat.
# This may be replaced when dependencies are built.
