file(REMOVE_RECURSE
  "../examples/p2p_chat"
  "../examples/p2p_chat.pdb"
  "CMakeFiles/p2p_chat.dir/p2p_chat.cpp.o"
  "CMakeFiles/p2p_chat.dir/p2p_chat.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_chat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
