file(REMOVE_RECURSE
  "../bench/bench_fig5_different_nats"
  "../bench/bench_fig5_different_nats.pdb"
  "CMakeFiles/bench_fig5_different_nats.dir/bench_fig5_different_nats.cc.o"
  "CMakeFiles/bench_fig5_different_nats.dir/bench_fig5_different_nats.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_different_nats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
