# Empty compiler generated dependencies file for bench_fig5_different_nats.
# This may be replaced when dependencies are built.
