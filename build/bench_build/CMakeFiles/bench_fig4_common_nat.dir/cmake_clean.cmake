file(REMOVE_RECURSE
  "../bench/bench_fig4_common_nat"
  "../bench/bench_fig4_common_nat.pdb"
  "CMakeFiles/bench_fig4_common_nat.dir/bench_fig4_common_nat.cc.o"
  "CMakeFiles/bench_fig4_common_nat.dir/bench_fig4_common_nat.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_common_nat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
