# Empty dependencies file for bench_fig4_common_nat.
# This may be replaced when dependencies are built.
