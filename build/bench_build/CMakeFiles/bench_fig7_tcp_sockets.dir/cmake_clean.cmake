file(REMOVE_RECURSE
  "../bench/bench_fig7_tcp_sockets"
  "../bench/bench_fig7_tcp_sockets.pdb"
  "CMakeFiles/bench_fig7_tcp_sockets.dir/bench_fig7_tcp_sockets.cc.o"
  "CMakeFiles/bench_fig7_tcp_sockets.dir/bench_fig7_tcp_sockets.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_tcp_sockets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
