# Empty dependencies file for bench_fig7_tcp_sockets.
# This may be replaced when dependencies are built.
