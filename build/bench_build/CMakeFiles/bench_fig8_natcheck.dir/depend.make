# Empty dependencies file for bench_fig8_natcheck.
# This may be replaced when dependencies are built.
