file(REMOVE_RECURSE
  "../bench/bench_fig8_natcheck"
  "../bench/bench_fig8_natcheck.pdb"
  "CMakeFiles/bench_fig8_natcheck.dir/bench_fig8_natcheck.cc.o"
  "CMakeFiles/bench_fig8_natcheck.dir/bench_fig8_natcheck.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_natcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
