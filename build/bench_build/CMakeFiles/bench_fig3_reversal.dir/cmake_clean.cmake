file(REMOVE_RECURSE
  "../bench/bench_fig3_reversal"
  "../bench/bench_fig3_reversal.pdb"
  "CMakeFiles/bench_fig3_reversal.dir/bench_fig3_reversal.cc.o"
  "CMakeFiles/bench_fig3_reversal.dir/bench_fig3_reversal.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_reversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
