# Empty dependencies file for bench_fig2_relaying.
# This may be replaced when dependencies are built.
