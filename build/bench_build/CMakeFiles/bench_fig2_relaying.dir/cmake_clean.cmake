file(REMOVE_RECURSE
  "../bench/bench_fig2_relaying"
  "../bench/bench_fig2_relaying.pdb"
  "CMakeFiles/bench_fig2_relaying.dir/bench_fig2_relaying.cc.o"
  "CMakeFiles/bench_fig2_relaying.dir/bench_fig2_relaying.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_relaying.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
