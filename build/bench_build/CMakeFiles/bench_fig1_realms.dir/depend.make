# Empty dependencies file for bench_fig1_realms.
# This may be replaced when dependencies are built.
