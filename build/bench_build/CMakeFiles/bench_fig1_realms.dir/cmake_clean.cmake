file(REMOVE_RECURSE
  "../bench/bench_fig1_realms"
  "../bench/bench_fig1_realms.pdb"
  "CMakeFiles/bench_fig1_realms.dir/bench_fig1_realms.cc.o"
  "CMakeFiles/bench_fig1_realms.dir/bench_fig1_realms.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_realms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
