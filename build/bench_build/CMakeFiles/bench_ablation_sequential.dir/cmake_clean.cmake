file(REMOVE_RECURSE
  "../bench/bench_ablation_sequential"
  "../bench/bench_ablation_sequential.pdb"
  "CMakeFiles/bench_ablation_sequential.dir/bench_ablation_sequential.cc.o"
  "CMakeFiles/bench_ablation_sequential.dir/bench_ablation_sequential.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sequential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
