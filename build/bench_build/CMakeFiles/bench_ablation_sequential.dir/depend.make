# Empty dependencies file for bench_ablation_sequential.
# This may be replaced when dependencies are built.
