# Empty dependencies file for bench_fig6_multilevel.
# This may be replaced when dependencies are built.
