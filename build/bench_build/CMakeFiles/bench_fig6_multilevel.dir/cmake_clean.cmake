file(REMOVE_RECURSE
  "../bench/bench_fig6_multilevel"
  "../bench/bench_fig6_multilevel.pdb"
  "CMakeFiles/bench_fig6_multilevel.dir/bench_fig6_multilevel.cc.o"
  "CMakeFiles/bench_fig6_multilevel.dir/bench_fig6_multilevel.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_multilevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
