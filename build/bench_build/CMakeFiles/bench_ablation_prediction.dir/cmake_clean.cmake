file(REMOVE_RECURSE
  "../bench/bench_ablation_prediction"
  "../bench/bench_ablation_prediction.pdb"
  "CMakeFiles/bench_ablation_prediction.dir/bench_ablation_prediction.cc.o"
  "CMakeFiles/bench_ablation_prediction.dir/bench_ablation_prediction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
