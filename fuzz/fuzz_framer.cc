// Fuzz target: the u16-length-prefixed TCP framer fed an attacker-controlled
// byte stream in attacker-controlled chunk sizes, with every reassembled
// frame pushed through the rendezvous decoder (the framer's main consumer).
//
// The first input byte seeds the chunking pattern so the fuzzer can explore
// reassembly across arbitrary segment boundaries; the rest is the stream.

#include <algorithm>

#include "fuzz/fuzz_common.h"
#include "src/rendezvous/messages.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace natpunch;
  if (size == 0) {
    return 0;
  }
  uint32_t chunk_seed = data[0];
  MessageFramer framer;
  size_t pos = 1;
  while (pos < size) {
    // Chunk sizes cycle through 1..17 bytes driven by the seed byte — small
    // enough to split every header and length prefix across reads.
    const size_t chunk = 1 + (chunk_seed % 17);
    chunk_seed = chunk_seed * 1103515245u + 12345u;
    const size_t n = std::min(chunk, size - pos);
    for (const Bytes& body : framer.Append(Bytes(data + pos, data + pos + n))) {
      if (body.size() > MessageFramer::kDefaultMaxFrame) {
        std::abort();  // the oversize guard must never emit such a frame
      }
      auto msg = DecodeRendezvousMessage(ConstByteSpan(body.data(), body.size()),
                                         /*obfuscate_addresses=*/false);
      if (msg) {
        fuzz::CheckCanonical(body.data(), body.size(),
                             EncodeRendezvousMessage(*msg, false), "framer/rendezvous");
      }
    }
    if (framer.poisoned()) {
      break;  // a real owner tears the connection down here
    }
    pos += n;
  }
  return 0;
}
