// Corpus-replay driver for builds without libFuzzer (gcc, plain ctest).
//
// Each fuzz target defines LLVMFuzzerTestOneInput; under clang the libFuzzer
// runtime supplies main() and mutates inputs, while this file supplies a
// main() that simply replays every file named on the command line (or every
// regular file inside a directory argument). That turns the committed seed
// corpus into a deterministic regression test: any input that ever crashed a
// decoder is checked in and re-run on every build, fuzzer or not.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

int RunFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) {
          if (RunFile(entry.path()) != 0) {
            return 1;
          }
          ++replayed;
        }
      }
    } else {
      if (RunFile(arg) != 0) {
        return 1;
      }
      ++replayed;
    }
  }
  std::printf("replayed %d corpus inputs without a crash\n", replayed);
  return 0;
}
