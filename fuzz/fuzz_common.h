// Shared helpers for the decoder fuzz targets.
//
// Every target enforces the same two properties on attacker-controlled
// bytes:
//   1. No decoder may crash, throw, or trip ASan/UBSan — garbage decodes to
//      nullopt, nothing else.
//   2. Canonical decode: any accepted frame must re-encode to exactly the
//      bytes that arrived. If it does not, the decoder accepted a non-wire
//      form (trailing bytes, a tolerated bad enum, a normalized field) and
//      two honest implementations could disagree about what was said.

#ifndef FUZZ_FUZZ_COMMON_H_
#define FUZZ_FUZZ_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/util/bytes.h"

namespace natpunch::fuzz {

inline ConstByteSpan Span(const uint8_t* data, size_t size) {
  return ConstByteSpan(data, size);
}

// Abort (so the fuzzer records a crash) when an accepted input fails to
// round-trip byte-for-byte.
inline void CheckCanonical(const uint8_t* data, size_t size, const Bytes& reencoded,
                           const char* target) {
  if (reencoded.size() == size && std::memcmp(reencoded.data(), data, size) == 0) {
    return;
  }
  std::fprintf(stderr, "%s: accepted frame re-encodes differently (%zu -> %zu bytes)\n",
               target, size, reencoded.size());
  std::abort();
}

}  // namespace natpunch::fuzz

#endif  // FUZZ_FUZZ_COMMON_H_
