// Fuzz target: natcheck UDP/TCP control messages (magic 0x4e).

#include "fuzz/fuzz_common.h"
#include "src/natcheck/messages.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace natpunch;
  auto msg = DecodeNcMessage(fuzz::Span(data, size));
  if (msg) {
    fuzz::CheckCanonical(data, size, EncodeNcMessage(*msg), "nc_message");
  }
  return 0;
}
