// Fuzz target: inter-shard messages (magic 0x53, version 3). Shard frames
// travel between trusted servers but cross the same hostile networks as
// client traffic, so the decoder carries the full wire armor: any accepted
// frame must re-encode byte-identically. No obfuscation modes — there is no
// NAT between shards to hide addresses from.

#include "fuzz/fuzz_common.h"
#include "src/rendezvous/shard_messages.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace natpunch;
  auto msg = DecodeShardMessage(fuzz::Span(data, size));
  if (msg) {
    fuzz::CheckCanonical(data, size, EncodeShardMessage(*msg), "shard_message");
  }
  return 0;
}
