// Fuzz target: rendezvous protocol messages (magic 0x52), both address
// modes. Obfuscation is an involution (IP complement), so each mode must
// independently satisfy the canonical-decode property.

#include "fuzz/fuzz_common.h"
#include "src/rendezvous/messages.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace natpunch;
  for (const bool obfuscate : {false, true}) {
    auto msg = DecodeRendezvousMessage(fuzz::Span(data, size), obfuscate);
    if (msg) {
      fuzz::CheckCanonical(data, size, EncodeRendezvousMessage(*msg, obfuscate),
                           obfuscate ? "rendezvous_message/obfuscated"
                                     : "rendezvous_message/plain");
    }
  }
  return 0;
}
