// Fuzz target: peer-wire datagrams and TCP frame bodies (magic 0x50).

#include "fuzz/fuzz_common.h"
#include "src/core/peer_wire.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace natpunch;
  auto msg = DecodePeerMessage(fuzz::Span(data, size));
  if (msg) {
    fuzz::CheckCanonical(data, size, EncodePeerMessage(*msg), "peer_message");
  }
  return 0;
}
