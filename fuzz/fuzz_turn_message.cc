// Fuzz target: TURN-style relay control/data messages (magic 0x54).

#include "fuzz/fuzz_common.h"
#include "src/core/turn.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace natpunch;
  auto msg = DecodeTurnMessage(fuzz::Span(data, size));
  if (msg) {
    fuzz::CheckCanonical(data, size, EncodeTurnMessage(*msg), "turn_message");
  }
  return 0;
}
