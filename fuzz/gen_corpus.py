#!/usr/bin/env python3
"""Generate the seed corpus for the decoder fuzz targets.

Deterministic (fixed PRNG seed): re-running regenerates byte-identical
files, so the committed corpus never churns. Each target gets well-formed
frames of every message type plus the classic hostile shapes — truncations,
single-bit flips, trailing bytes, bad enums, oversized length prefixes —
exactly the rejection paths the armor added. The corpus doubles as the
input set for the standalone replay drivers run under ctest.
"""

import pathlib
import random
import struct

ROOT = pathlib.Path(__file__).resolve().parent / "corpus"
RNG = random.Random(0x4E415450)  # "NATP"


def be16(v):
    return struct.pack(">H", v)


def be32(v):
    return struct.pack(">I", v)


def be64(v):
    return struct.pack(">Q", v)


def nc_message(mtype=1, session=0x1122334455667788, server_index=1,
               ip=0x0A000001, port=4321, verdict=2):
    return (bytes([0x4E, mtype]) + be64(session) + bytes([server_index]) +
            be32(ip) + be16(port) + bytes([verdict]))


def rendezvous_message(mtype=1, strategy=1, client=1, target=2,
                       nonce=0xDEADBEEF, epoch=7, payload=b"hi"):
    def endpoint(ip, port):
        return be32(ip) + be16(port)

    return (bytes([0x52, 0x02, mtype, strategy]) + be64(client) + be64(target) +
            be64(nonce) + be64(epoch) + endpoint(0xC0A80101, 5000) +
            endpoint(0x0A000002, 6000) + be16(len(payload)) + payload)


def peer_message(mtype=1, nonce=0xFEEDFACE, sender=42, payload=b"data"):
    return (bytes([0x50, mtype]) + be64(nonce) + be64(sender) +
            be16(len(payload)) + payload)


def turn_message(mtype=1, ip=0x08080808, port=3478, payload=b"relay"):
    return (bytes([0x54, mtype]) + be32(ip) + be16(port) +
            be16(len(payload)) + payload)


def probe_message(mtype=1, txn=0xABCDEF, ip=0x01020304, port=9000, tag=0):
    return (bytes([0x51, mtype]) + be64(txn) + be32(ip) + be16(port) +
            bytes([tag]))


def shard_message(mtype=1, strategy=1, found=0, src_shard=2, client=1,
                  target=2, nonce=0xC0FFEE, payload=b"fw"):
    def endpoint(ip, port):
        return be32(ip) + be16(port)

    return (bytes([0x53, 0x03, mtype, strategy, found]) + be32(src_shard) +
            be64(client) + be64(target) + be64(nonce) +
            endpoint(0x9B63190B, 62000) + endpoint(0x0A000002, 4321) +
            be16(len(payload)) + payload)


def mutations(frame):
    """Hostile variants of one well-formed frame."""
    out = []
    # Every truncation length (prefixes are the cheap attacker move).
    out += [frame[:n] for n in range(len(frame))]
    # A handful of single-bit flips, including the magic and the tail.
    for _ in range(8):
        i = RNG.randrange(len(frame))
        b = bytearray(frame)
        b[i] ^= 1 << RNG.randrange(8)
        out.append(bytes(b))
    # Trailing garbage must be rejected (AtEnd armor).
    out.append(frame + b"\x00")
    out.append(frame + bytes(RNG.randrange(256) for _ in range(16)))
    # Enum bytes out of range.
    for i in (1, len(frame) - 1):
        b = bytearray(frame)
        b[i] = 0xFF
        out.append(bytes(b))
    return out


def write(target, frames):
    directory = ROOT / target
    directory.mkdir(parents=True, exist_ok=True)
    for idx, frame in enumerate(frames):
        (directory / f"seed_{idx:03d}.bin").write_bytes(frame)
    print(f"{target}: {len(frames)} seeds")


def main():
    nc = [nc_message(mtype=t) for t in range(1, 9)]
    write("nc_message", nc + mutations(nc[0]))

    rv = [rendezvous_message(mtype=t) for t in range(1, 9)]
    rv += [rendezvous_message(strategy=s) for s in range(1, 6)]
    rv += [rendezvous_message(payload=b"")]
    rv += [rendezvous_message(payload=bytes(200))]
    write("rendezvous_message", rv + mutations(rv[0]))

    pw = [peer_message(mtype=t) for t in range(1, 6)]
    pw += [peer_message(payload=b""), peer_message(payload=bytes(300))]
    write("peer_message", pw + mutations(pw[0]))

    tn = [turn_message(mtype=t) for t in range(1, 6)]
    tn += [turn_message(payload=b"")]
    write("turn_message", tn + mutations(tn[0]))

    pb = [probe_message(mtype=t, tag=g) for t in range(1, 5) for g in range(3)]
    write("probe_message", pb + mutations(pb[0]))

    # Framer streams: chunk-seed byte + framed messages, then hostile frames.
    def framed(body):
        return be16(len(body)) + body

    streams = [
        bytes([3]) + framed(rendezvous_message()) + framed(rendezvous_message(mtype=2)),
        bytes([7]) + framed(b""),  # empty frame
        bytes([1]) + framed(rendezvous_message())[:-3],  # cut mid-frame
        bytes([5]) + be16(0xFFFF) + bytes(64),  # oversize prefix -> poisoned
        bytes([11]) + be16(8193) + bytes(32),  # one past the 8 KiB cap
        bytes([2]) + framed(bytes(RNG.randrange(256) for _ in range(50))),
    ]
    for _ in range(6):
        streams.append(bytes(RNG.randrange(256) for _ in range(RNG.randrange(1, 120))))
    write("framer", streams)

    # Inter-shard frames (appended last: earlier targets' RNG draws must not
    # move, or the committed corpora above would churn).
    sh = [shard_message(mtype=t) for t in range(1, 5)]
    sh += [shard_message(strategy=s) for s in range(1, 6)]
    sh += [shard_message(mtype=2, found=1)]
    sh += [shard_message(payload=b""), shard_message(payload=bytes(200))]
    write("shard_message", sh + mutations(sh[0]))


if __name__ == "__main__":
    main()
