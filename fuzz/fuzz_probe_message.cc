// Fuzz target: STUN-like probe echo messages (magic 0x51).

#include "fuzz/fuzz_common.h"
#include "src/core/probe_server.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace natpunch;
  auto msg = DecodeProbeMessage(fuzz::Span(data, size));
  if (msg) {
    fuzz::CheckCanonical(data, size, EncodeProbeMessage(*msg), "probe_message");
  }
  return 0;
}
