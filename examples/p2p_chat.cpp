// p2p_chat: a teleconferencing-style text session over hole-punched TCP
// (the paper's motivating application class), with automatic fallback to
// relaying when the NATs won't cooperate.
//
// Runs the same scripted conversation twice:
//   * behind well-behaved cone NATs  -> direct punched TCP stream
//   * behind symmetric NATs          -> hole punch fails, relay through S
// and prints the transcript with per-message latency and the path used.

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/relay.h"
#include "src/core/tcp_puncher.h"
#include "src/rendezvous/server.h"
#include "src/scenario/scenario.h"

using namespace natpunch;

namespace {

struct ChatLine {
  const char* who;
  const char* text;
};
const ChatLine kScript[] = {
    {"alice", "you there?"},
    {"bob", "yep! did we punch through?"},
    {"alice", "checking the path below :)"},
    {"bob", "NATs can't stop us"},
};

void RunChat(const char* label, const NatConfig& nat) {
  std::printf("--- %s ---\n", label);
  Fig5Topology topo = MakeFig5(nat, nat);
  Network& net = topo.scenario->net();
  RendezvousServer server(topo.server, kServerPort);
  server.Start();

  TcpRendezvousClient alice(topo.a, server.endpoint(), 1);
  TcpRendezvousClient bob(topo.b, server.endpoint(), 2);
  alice.Connect(4321, [](Result<Endpoint>) {});
  bob.Connect(4321, [](Result<Endpoint>) {});
  TcpPunchConfig punch_config;
  punch_config.punch_timeout = Seconds(8);  // give up fast, fall back
  TcpHolePuncher alice_puncher(&alice, punch_config);
  TcpHolePuncher bob_puncher(&bob, punch_config);
  RelayHub alice_relay(&alice);
  RelayHub bob_relay(&bob);

  // Bob's side: accept whatever arrives (punched stream or relay channel)
  // and print it.
  auto print_line = [&net](const char* who, const Bytes& payload) {
    std::printf("  [%7.2fs] <%s> %.*s\n", net.now().micros() / 1e6, who,
                static_cast<int>(payload.size()),
                reinterpret_cast<const char*>(payload.data()));
  };
  TcpP2pStream* bob_stream = nullptr;
  bob_puncher.SetIncomingStreamCallback([&](TcpP2pStream* stream) {
    bob_stream = stream;
    stream->SetReceiveCallback([&](const Bytes& p) { print_line("alice", p); });
  });
  RelayChannel* bob_channel = bob_relay.OpenChannel(1);
  bob_channel->SetReceiveCallback([&](const Bytes& p) { print_line("alice", p); });
  net.RunFor(Seconds(3));

  // Alice connects: punch, then fall back to relay.
  TcpP2pStream* alice_stream = nullptr;
  RelayChannel* alice_channel = nullptr;
  alice_puncher.ConnectToPeer(2, [&](Result<TcpP2pStream*> r) {
    if (r.ok()) {
      alice_stream = *r;
      alice_stream->SetReceiveCallback([&](const Bytes& p) { print_line("bob", p); });
    } else {
      std::printf("  (punch failed: %s -> relaying through S)\n",
                  r.status().ToString().c_str());
      alice_channel = alice_relay.OpenChannel(2);
      alice_channel->SetReceiveCallback([&](const Bytes& p) { print_line("bob", p); });
    }
  });
  net.RunFor(Seconds(12));

  auto alice_send = [&](const Bytes& p) {
    if (alice_stream != nullptr) {
      alice_stream->Send(p);
    } else if (alice_channel != nullptr) {
      alice_channel->Send(p);
    }
  };
  auto bob_send = [&](const Bytes& p) {
    if (bob_stream != nullptr) {
      bob_stream->Send(p);
    } else {
      bob_channel->Send(p);
    }
  };

  for (const ChatLine& line : kScript) {
    const Bytes payload(line.text, line.text + std::string(line.text).size());
    if (std::string(line.who) == "alice") {
      alice_send(payload);
    } else {
      bob_send(payload);
    }
    net.RunFor(Millis(500));
  }
  net.RunFor(Seconds(2));

  std::printf("  path: %s", alice_stream != nullptr ? "direct punched TCP stream" : "relay via S");
  if (alice_stream != nullptr) {
    std::printf(" (obtained via %s, punched in %s)",
                alice_stream->via_accept() ? "accept()" : "connect()",
                alice_stream->punch_elapsed().ToString().c_str());
  }
  std::printf("\n  server relayed %llu bytes of chat\n\n",
              static_cast<unsigned long long>(server.stats().relayed_bytes));
}

}  // namespace

int main() {
  std::printf("p2p chat with punch-then-relay fallback\n\n");
  RunChat("cone NATs (the 64%+ case)", NatConfig{});
  NatConfig symmetric;
  symmetric.mapping = NatMapping::kAddressAndPortDependent;
  RunChat("symmetric NATs (punching impossible)", symmetric);
  return 0;
}
