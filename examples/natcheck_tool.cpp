// natcheck_tool: the NAT Check utility itself (§6.1) as a command-line
// program. Configure the simulated NAT under test with flags, run the full
// three-server check, and print the report the paper's volunteers would
// have submitted.
//
// Usage:
//   natcheck_tool [mapping=cone|addr|sym] [filtering=ei|ad|apd]
//                 [tcp=drop|rst|icmp] [hairpin=0|1] [hairpin_filtered=0|1]
//                 [ports=seq|rand|preserve] [payload_rewrite=0|1]

#include <cstdio>
#include <cstring>
#include <string>

#include "src/natcheck/client.h"
#include "src/natcheck/servers.h"
#include "src/scenario/scenario.h"

using namespace natpunch;

namespace {

bool ParseFlag(const std::string& arg, const char* key, std::string* value) {
  const std::string prefix = std::string(key) + "=";
  if (arg.rfind(prefix, 0) != 0) {
    return false;
  }
  *value = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  NatConfig nat;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "mapping", &value)) {
      nat.mapping = value == "cone"   ? NatMapping::kEndpointIndependent
                    : value == "addr" ? NatMapping::kAddressDependent
                                      : NatMapping::kAddressAndPortDependent;
    } else if (ParseFlag(arg, "filtering", &value)) {
      nat.filtering = value == "ei"   ? NatFiltering::kEndpointIndependent
                      : value == "ad" ? NatFiltering::kAddressDependent
                                      : NatFiltering::kAddressAndPortDependent;
    } else if (ParseFlag(arg, "tcp", &value)) {
      nat.unsolicited_tcp = value == "rst"    ? NatUnsolicitedTcp::kRst
                            : value == "icmp" ? NatUnsolicitedTcp::kIcmp
                                              : NatUnsolicitedTcp::kDrop;
    } else if (ParseFlag(arg, "hairpin", &value)) {
      nat.hairpin_udp = nat.hairpin_tcp = value == "1";
    } else if (ParseFlag(arg, "hairpin_filtered", &value)) {
      nat.hairpin_filtered = value == "1";
    } else if (ParseFlag(arg, "ports", &value)) {
      nat.port_allocation = value == "rand"       ? NatPortAllocation::kRandom
                            : value == "preserve" ? NatPortAllocation::kPortPreserving
                                                  : NatPortAllocation::kSequential;
    } else if (ParseFlag(arg, "payload_rewrite", &value)) {
      nat.rewrite_payload_addresses = value == "1";
    } else {
      std::printf("unknown argument: %s (see header comment for usage)\n", arg.c_str());
      return 2;
    }
  }

  std::printf("NAT under test: %s\n\n", nat.ToString().c_str());

  Scenario scenario{Scenario::Options{}};
  Host* s1 = scenario.AddPublicHost("S1", Ipv4Address::FromOctets(18, 181, 0, 31));
  Host* s2 = scenario.AddPublicHost("S2", Ipv4Address::FromOctets(18, 181, 0, 32));
  Host* s3 = scenario.AddPublicHost("S3", Ipv4Address::FromOctets(18, 181, 0, 33));
  NattedSite site = scenario.AddNattedSite(
      "dut", nat, Ipv4Address::FromOctets(155, 99, 25, 11),
      Ipv4Prefix(Ipv4Address::FromOctets(10, 0, 0, 0), 24), 1);

  NatCheckServers servers(s1, s2, s3);
  if (!servers.Start().ok()) {
    return 1;
  }
  NatCheckServerAddrs addrs{servers.udp_endpoint(1), servers.udp_endpoint(2),
                            servers.tcp_endpoint(1), servers.tcp_endpoint(2),
                            servers.tcp_endpoint(3)};
  NatCheckClient client(site.host(0), addrs);
  bool printed = false;
  client.Run(4321, [&](Result<NatCheckReport> result) {
    printed = true;
    if (!result.ok()) {
      std::printf("NAT check failed: %s\n", result.status().ToString().c_str());
      return;
    }
    const NatCheckReport& r = *result;
    std::printf("UDP test:\n");
    std::printf("  public endpoint via server 1 : %s\n", r.udp_public_1.ToString().c_str());
    std::printf("  public endpoint via server 2 : %s\n", r.udp_public_2.ToString().c_str());
    std::printf("  consistent translation       : %s\n", r.udp_consistent ? "yes" : "NO");
    std::printf("  filters unsolicited traffic  : %s\n",
                r.udp_filters_unsolicited ? "yes" : "no");
    std::printf("  hairpin translation          : %s\n", r.udp_hairpin ? "yes" : "no");
    std::printf("TCP test:\n");
    std::printf("  public endpoint via server 1 : %s\n", r.tcp_public_1.ToString().c_str());
    std::printf("  public endpoint via server 2 : %s\n", r.tcp_public_2.ToString().c_str());
    std::printf("  consistent translation       : %s\n", r.tcp_consistent ? "yes" : "NO");
    std::printf("  unsolicited SYN handling     : %s\n",
                r.tcp_rejects_unsolicited  ? "actively rejected (RST/ICMP)"
                : r.tcp_unsolicited_passed ? "passed through (no filtering)"
                                           : "silently dropped (ideal)");
    std::printf("  simultaneous open with s3    : %s\n",
                r.tcp_punch_connect_ok ? "succeeded" : "n/a");
    std::printf("  hairpin translation          : %s\n", r.tcp_hairpin ? "yes" : "no");
    std::printf("\nVERDICT: UDP hole punching %s, TCP hole punching %s\n",
                r.UdpHolePunchCompatible() ? "COMPATIBLE" : "NOT compatible",
                r.TcpHolePunchCompatible() ? "COMPATIBLE" : "NOT compatible");
  });
  scenario.net().RunFor(Seconds(90));
  return printed ? 0 : 1;
}
