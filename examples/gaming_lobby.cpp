// gaming_lobby: six players with a realistic mix of NAT situations join one
// lobby (rendezvous server) and mesh-connect pairwise over UDP — hole
// punching where the NATs allow it, relaying where they don't. Prints the
// resulting connection matrix, like the network diagnostics screen of an
// online game (one of the paper's motivating applications).

#include <cstdio>
#include <memory>
#include <vector>

#include "src/core/connector.h"
#include "src/rendezvous/server.h"
#include "src/scenario/scenario.h"

using namespace natpunch;

namespace {

struct Player {
  std::string name;
  Host* host = nullptr;
  std::unique_ptr<UdpRendezvousClient> rendezvous;
  std::unique_ptr<UdpConnector> connector;
  std::vector<P2pChannel*> channels;
};

}  // namespace

int main() {
  std::printf("six-player lobby: punch where possible, relay where not\n\n");

  Scenario scenario{Scenario::Options{}};
  Host* server_host = scenario.AddPublicHost("lobby", ServerIp());
  RendezvousServer lobby(server_host, kServerPort);
  lobby.Start();

  // NAT situations: cone, cone (same flat as p1: common NAT), full cone,
  // symmetric, RST-happy cone, and one player with a public address.
  NatConfig cone;
  NatConfig full_cone;
  full_cone.filtering = NatFiltering::kEndpointIndependent;
  NatConfig symmetric;
  symmetric.mapping = NatMapping::kAddressAndPortDependent;
  NatConfig rsting;
  rsting.unsolicited_tcp = NatUnsolicitedTcp::kRst;  // UDP unaffected

  std::vector<Player> players(6);
  NattedSite flat = scenario.AddNattedSite(
      "flat", cone, Ipv4Address::FromOctets(155, 99, 25, 11),
      Ipv4Prefix(Ipv4Address::FromOctets(10, 0, 0, 0), 24), 2);
  players[0] = {"ana (cone)", flat.host(0), nullptr, nullptr, {}};
  players[1] = {"bo (same NAT)", flat.host(1), nullptr, nullptr, {}};
  NattedSite site2 = scenario.AddNattedSite(
      "p2", full_cone, Ipv4Address::FromOctets(138, 76, 29, 7),
      Ipv4Prefix(Ipv4Address::FromOctets(10, 1, 1, 0), 24), 1);
  players[2] = {"cy (full cone)", site2.host(0), nullptr, nullptr, {}};
  NattedSite site3 = scenario.AddNattedSite(
      "p3", symmetric, Ipv4Address::FromOctets(66, 10, 0, 1),
      Ipv4Prefix(Ipv4Address::FromOctets(10, 2, 2, 0), 24), 1);
  players[3] = {"di (symmetric)", site3.host(0), nullptr, nullptr, {}};
  NattedSite site4 = scenario.AddNattedSite(
      "p4", rsting, Ipv4Address::FromOctets(77, 20, 0, 1),
      Ipv4Prefix(Ipv4Address::FromOctets(10, 3, 3, 0), 24), 1);
  players[4] = {"ed (rsting NAT)", site4.host(0), nullptr, nullptr, {}};
  players[5] = {"fi (public)",
                scenario.AddPublicHost("fi", Ipv4Address::FromOctets(99, 5, 5, 5)), nullptr,
                nullptr, {}};

  Network& net = scenario.net();
  for (size_t i = 0; i < players.size(); ++i) {
    players[i].rendezvous = std::make_unique<UdpRendezvousClient>(
        players[i].host, lobby.endpoint(), static_cast<uint64_t>(i + 1));
    players[i].rendezvous->Register(4321, [](Result<Endpoint>) {});
    UdpConnector::Options options;
    options.punch.punch_timeout = Seconds(6);
    players[i].connector =
        std::make_unique<UdpConnector>(players[i].rendezvous.get(), options);
    players[i].connector->SetIncomingChannelCallback([](P2pChannel*) {});
  }
  net.RunFor(Seconds(2));

  // Mesh-connect: every player dials every higher-numbered player.
  std::vector<std::vector<std::string>> matrix(players.size(),
                                               std::vector<std::string>(players.size(), "-"));
  for (size_t i = 0; i < players.size(); ++i) {
    for (size_t j = i + 1; j < players.size(); ++j) {
      players[i].connector->Connect(static_cast<uint64_t>(j + 1),
                                    [&, i, j](Result<P2pChannel*> r) {
        if (!r.ok()) {
          matrix[i][j] = "fail";
          return;
        }
        P2pChannel* channel = *r;
        players[i].channels.push_back(channel);
        std::string how = channel->kind() == P2pChannel::Kind::kPunched
                              ? (channel->session()->used_private_endpoint() ? "LAN" : "punch")
                              : "relay";
        matrix[i][j] = how;
      });
    }
  }
  net.RunFor(Seconds(30));

  std::printf("%-18s", "");
  for (const Player& p : players) {
    std::printf("%-9.7s", p.name.c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < players.size(); ++i) {
    std::printf("%-18s", players[i].name.c_str());
    for (size_t j = 0; j < players.size(); ++j) {
      std::printf("%-9s", i == j ? "." : (i < j ? matrix[i][j].c_str() : matrix[j][i].c_str()));
    }
    std::printf("\n");
  }

  int punched = 0, lan = 0, relayed = 0;
  for (size_t i = 0; i < players.size(); ++i) {
    for (size_t j = i + 1; j < players.size(); ++j) {
      punched += matrix[i][j] == "punch" ? 1 : 0;
      lan += matrix[i][j] == "LAN" ? 1 : 0;
      relayed += matrix[i][j] == "relay" ? 1 : 0;
    }
  }
  std::printf(
      "\n%d pairs direct (punched), %d via shared LAN (private endpoints, §3.3),\n"
      "%d relayed (symmetric NAT involved). Lobby server relayed %llu bytes.\n",
      punched, lan, relayed, static_cast<unsigned long long>(lobby.stats().relayed_bytes));
  return 0;
}
