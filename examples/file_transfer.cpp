// file_transfer: move a 2 MB "file" between NATed peers over a hole-punched
// TCP stream, and compare against pushing the same file through the relay —
// quantifying why P2P systems punch first and relay last (§2.2).

#include <cstdio>
#include <numeric>

#include "src/core/relay.h"
#include "src/core/tcp_puncher.h"
#include "src/rendezvous/server.h"
#include "src/scenario/scenario.h"

using namespace natpunch;

namespace {

constexpr size_t kFileSize = 2 * 1024 * 1024;
constexpr size_t kChunk = 16 * 1024;  // relay message / stream write size

Bytes MakeFile() {
  Bytes file(kFileSize);
  std::iota(file.begin(), file.end(), 0);
  return file;
}

}  // namespace

int main() {
  std::printf("2 MB file transfer between NATed peers\n\n");
  const Bytes file = MakeFile();

  Fig5Topology topo = MakeFig5(NatConfig{}, NatConfig{});
  Network& net = topo.scenario->net();
  // A 10 Mbit/s shared internet segment: relayed traffic crosses it twice
  // (A->S and S->B), punched traffic once.
  LanConfig internet_config = topo.scenario->internet()->config();
  internet_config.bandwidth_bps = 10e6;
  topo.scenario->internet()->set_config(internet_config);
  RendezvousServer server(topo.server, kServerPort);
  server.Start();
  TcpRendezvousClient alice(topo.a, server.endpoint(), 1);
  TcpRendezvousClient bob(topo.b, server.endpoint(), 2);
  alice.Connect(4321, [](Result<Endpoint>) {});
  bob.Connect(4321, [](Result<Endpoint>) {});
  TcpHolePuncher alice_puncher(&alice);
  TcpHolePuncher bob_puncher(&bob);
  RelayHub alice_relay(&alice);
  RelayHub bob_relay(&bob);

  // Receiver side: collect bytes from either path.
  Bytes received_direct;
  Bytes received_relayed;
  bob_puncher.SetIncomingStreamCallback([&](TcpP2pStream* stream) {
    stream->SetReceiveCallback([&](const Bytes& chunk) {
      received_direct.insert(received_direct.end(), chunk.begin(), chunk.end());
    });
  });
  bob_relay.OpenChannel(1)->SetReceiveCallback([&](const Bytes& chunk) {
    received_relayed.insert(received_relayed.end(), chunk.begin(), chunk.end());
  });
  net.RunFor(Seconds(3));

  // --- Direct punched transfer ---
  TcpP2pStream* stream = nullptr;
  alice_puncher.ConnectToPeer(2, [&](Result<TcpP2pStream*> r) {
    if (r.ok()) {
      stream = *r;
    }
  });
  net.RunFor(Seconds(10));
  if (stream == nullptr) {
    std::printf("punch failed; aborting\n");
    return 1;
  }
  std::printf("hole punched in %s; sending %zu bytes direct...\n",
              stream->punch_elapsed().ToString().c_str(), file.size());
  const SimTime direct_start = net.now();
  for (size_t off = 0; off < file.size(); off += kChunk) {
    const size_t len = std::min(kChunk, file.size() - off);
    stream->Send(Bytes(file.begin() + off, file.begin() + off + len));
  }
  for (int i = 0; i < 2400 && received_direct.size() < file.size(); ++i) {
    net.RunFor(Millis(50));
  }
  const double direct_secs = (net.now() - direct_start).seconds();
  const bool direct_ok = received_direct == file;
  const uint64_t relayed_during_direct = server.stats().relayed_bytes;
  std::printf("  direct : %s, %.1f s simulated, %.2f MB/s, %llu bytes via S\n",
              direct_ok ? "intact" : "CORRUPT",
              direct_secs, file.size() / 1e6 / direct_secs,
              static_cast<unsigned long long>(relayed_during_direct));

  // --- Relayed transfer of the same file ---
  RelayChannel* channel = alice_relay.OpenChannel(2);
  const SimTime relay_start = net.now();
  for (size_t off = 0; off < file.size(); off += kChunk) {
    const size_t len = std::min(kChunk, file.size() - off);
    channel->Send(Bytes(file.begin() + off, file.begin() + off + len));
  }
  for (int i = 0; i < 2400 && received_relayed.size() < file.size(); ++i) {
    net.RunFor(Millis(50));
  }
  const double relay_secs = (net.now() - relay_start).seconds();
  const bool relay_ok = received_relayed == file;
  std::printf("  relayed: %s, %.1f s simulated, %.2f MB/s, %llu bytes via S\n",
              relay_ok ? "intact" : "CORRUPT", relay_secs,
              file.size() / 1e6 / relay_secs,
              static_cast<unsigned long long>(server.stats().relayed_bytes -
                                              relayed_during_direct));
  std::printf(
      "\nEvery relayed byte crosses S's uplink twice; the punched path costs S\n"
      "nothing after the introduction — the paper's case for hole punching.\n");
  return direct_ok && relay_ok ? 0 : 1;
}
