// Quickstart: punch a UDP hole between two peers behind different NATs and
// exchange messages — the paper's §3.2 flow end to end, in ~80 lines.
//
//   1. Build the Figure 5 world: server S on the public internet, client A
//      behind NAT A, client B behind NAT B.
//   2. Both clients register with S over UDP; S records each client's
//      private endpoint (self-reported) and public endpoint (observed).
//   3. A asks S for an introduction to B; both sides probe each other's
//      public+private endpoints and lock in the first that answers.
//   4. Messages then flow peer-to-peer — zero bytes through S.

#include <cstdio>

#include "src/core/udp_puncher.h"
#include "src/util/logging.h"
#include "src/rendezvous/server.h"
#include "src/scenario/scenario.h"

using namespace natpunch;

int main() {
  SetLogLevel(LogLevel::kInfo);  // narrate the protocol steps

  // --- 1. The network ---------------------------------------------------
  Fig5Topology topo = MakeFig5(NatConfig{}, NatConfig{});
  Network& net = topo.scenario->net();

  // --- 2. Rendezvous ------------------------------------------------------
  RendezvousServer server(topo.server, kServerPort);
  if (!server.Start().ok()) {
    return 1;
  }
  UdpRendezvousClient alice(topo.a, server.endpoint(), /*client_id=*/1);
  UdpRendezvousClient bob(topo.b, server.endpoint(), /*client_id=*/2);
  alice.Register(4321, [](Result<Endpoint> r) {
    std::printf("[alice] registered; S sees me at %s\n", r->ToString().c_str());
  });
  bob.Register(4321, [](Result<Endpoint> r) {
    std::printf("[bob]   registered; S sees me at %s\n", r->ToString().c_str());
  });

  UdpHolePuncher alice_puncher(&alice);
  UdpHolePuncher bob_puncher(&bob);
  bob_puncher.SetIncomingSessionCallback([](UdpP2pSession* session) {
    std::printf("[bob]   peer %llu punched through to me at %s\n",
                static_cast<unsigned long long>(session->peer_id()),
                session->peer_endpoint().ToString().c_str());
    session->SetReceiveCallback([session](const Bytes& payload) {
      std::printf("[bob]   got \"%.*s\" -> replying\n", static_cast<int>(payload.size()),
                  reinterpret_cast<const char*>(payload.data()));
      const char kReply[] = "hi alice, no relay needed!";
      session->Send(Bytes(kReply, kReply + sizeof(kReply) - 1));
    });
  });
  net.RunFor(Seconds(2));

  // --- 3. Punch -----------------------------------------------------------
  UdpP2pSession* to_bob = nullptr;
  alice_puncher.ConnectToPeer(2, [&](Result<UdpP2pSession*> r) {
    if (!r.ok()) {
      std::printf("[alice] punch failed: %s\n", r.status().ToString().c_str());
      return;
    }
    to_bob = *r;
    std::printf("[alice] punched! bob is at %s (%s endpoint), took %s\n",
                to_bob->peer_endpoint().ToString().c_str(),
                to_bob->used_private_endpoint() ? "private" : "public",
                to_bob->punch_elapsed().ToString().c_str());
  });
  net.RunFor(Seconds(5));
  if (to_bob == nullptr) {
    return 1;
  }

  // --- 4. Talk ------------------------------------------------------------
  to_bob->SetReceiveCallback([](const Bytes& payload) {
    std::printf("[alice] got \"%.*s\"\n", static_cast<int>(payload.size()),
                reinterpret_cast<const char*>(payload.data()));
  });
  const char kHello[] = "hello bob, this is direct!";
  to_bob->Send(Bytes(kHello, kHello + sizeof(kHello) - 1));
  net.RunFor(Seconds(2));

  std::printf("\nbytes relayed through S after punching: %llu (the whole point)\n",
              static_cast<unsigned long long>(server.stats().relayed_bytes));
  return 0;
}
