// voip_call: a Voice-over-IP call — the paper's flagship motivating
// application — over a hole-punched UDP session. Caller streams 50
// frames/second; the callee measures received frames and inter-arrival
// jitter. Mid-call, the caller's NAT "reboots" (all translation state
// flushed, as consumer routers do); the application detects the dead
// session and re-punches on demand (§3.6), and the call continues.

#include <cstdio>
#include <vector>

#include "src/core/udp_puncher.h"
#include "src/rendezvous/server.h"
#include "src/scenario/scenario.h"

using namespace natpunch;

namespace {

constexpr SimDuration kFrameInterval = Millis(20);  // 50 fps voice framing
constexpr size_t kFrameBytes = 160;                 // ~G.711 20 ms payload

struct CallStats {
  int frames_sent = 0;
  int frames_received = 0;
  std::vector<double> interarrival_ms;

  double LossPct() const {
    return frames_sent == 0
               ? 0
               : 100.0 * (frames_sent - frames_received) / frames_sent;
  }
  double JitterMs() const {
    // Mean absolute deviation of inter-arrival times from the 20 ms ideal.
    if (interarrival_ms.empty()) {
      return 0;
    }
    double sum = 0;
    for (double d : interarrival_ms) {
      sum += d > 20 ? d - 20 : 20 - d;
    }
    return sum / static_cast<double>(interarrival_ms.size());
  }
};

}  // namespace

int main() {
  std::printf("VoIP call over hole-punched UDP, with a mid-call NAT reboot\n\n");

  Scenario::Options options;
  options.internet_latency = Millis(30);
  auto topo = MakeFig5(NatConfig{}, NatConfig{}, options);
  Network& net = topo.scenario->net();
  RendezvousServer server(topo.server, kServerPort);
  server.Start();

  UdpRendezvousClient caller(topo.a, server.endpoint(), 1);
  UdpRendezvousClient callee(topo.b, server.endpoint(), 2);
  caller.Register(4321, [](Result<Endpoint>) {});
  callee.Register(4321, [](Result<Endpoint>) {});
  caller.StartKeepAlive(Seconds(5));  // keeps S able to re-introduce us
  callee.StartKeepAlive(Seconds(5));

  UdpPunchConfig punch;
  punch.session_expiry = Seconds(3);      // voice apps notice silence fast
  punch.keepalive_interval = Seconds(1);  // media-path heartbeats
  UdpHolePuncher caller_punch(&caller, punch);
  UdpHolePuncher callee_punch(&callee, punch);

  CallStats stats;
  SimTime last_arrival;
  callee_punch.SetIncomingSessionCallback([&](UdpP2pSession* session) {
    session->SetReceiveCallback([&, session](const Bytes&) {
      if (stats.frames_received > 0) {
        stats.interarrival_ms.push_back((net.now() - last_arrival).micros() / 1000.0);
      }
      last_arrival = net.now();
      ++stats.frames_received;
      (void)session;
    });
  });
  net.RunFor(Seconds(2));

  // --- Establish the call ---
  UdpP2pSession* media = nullptr;
  bool media_dead = false;
  auto establish = [&](const char* label) {
    media = nullptr;
    media_dead = false;
    caller_punch.ConnectToPeer(2, [&, label](Result<UdpP2pSession*> r) {
      if (!r.ok()) {
        std::printf("[caller] %s punch failed: %s\n", label, r.status().ToString().c_str());
        return;
      }
      media = *r;
      media->SetDeadCallback([&](Status) { media_dead = true; });
      std::printf("[caller] %s: media path to %s in %s\n", label,
                  media->peer_endpoint().ToString().c_str(),
                  media->punch_elapsed().ToString().c_str());
    });
    net.RunFor(Seconds(2));
  };
  establish("call setup");
  if (media == nullptr) {
    return 1;
  }

  // --- Stream voice frames; reboot the NAT at t+4s; recover ---
  bool rebooted = false;
  int recoveries = 0;
  const SimTime call_start = net.now();
  for (int frame = 0; frame < 50 * 12; ++frame) {  // 12 seconds of audio
    if (!rebooted && net.now() - call_start > Seconds(4)) {
      std::printf("[world ] caller's NAT reboots! all mappings flushed\n");
      topo.site_a.nat->FlushMappings();
      rebooted = true;
    }
    if (media_dead && recoveries < 3) {
      std::printf("[caller] media silence detected at t=%.1fs -> re-punching\n",
                  (net.now() - call_start).seconds());
      establish("re-punch");
      if (media != nullptr) {
        ++recoveries;
      }
    }
    if (media != nullptr && media->alive()) {
      media->Send(Bytes(kFrameBytes, static_cast<uint8_t>(frame)));
      ++stats.frames_sent;
    }
    net.RunFor(kFrameInterval);
  }
  net.RunFor(Seconds(1));

  // --- Call quality report ---
  std::printf("\ncall report (12 s of audio, one NAT reboot):\n");
  std::printf("  frames sent        : %d\n", stats.frames_sent);
  std::printf("  frames received    : %d (%.1f%% lost, all during the outage)\n",
              stats.frames_received, stats.LossPct());
  std::printf("  inter-arrival jitter: %.2f ms around the 20 ms ideal\n", stats.JitterMs());
  std::printf("  recovered via re-punch: %s (%d re-punch%s)\n", recoveries > 0 ? "yes" : "no",
              recoveries, recoveries == 1 ? "" : "es");
  std::printf(
      "\nThe outage window is the session-expiry detection time plus one punch;\n"
      "production VoIP stacks shrink it with media-path heartbeats — here the\n"
      "§3.6 'detect and re-run hole punching on demand' loop is the whole fix.\n");
  return recoveries > 0 ? 0 : 1;
}
