// Small-buffer-optimized packet payload.
//
// Every protocol in this repo (rendezvous wire, peer wire, TURN, natcheck,
// prediction probes) sends messages well under 64 bytes; only TCP bulk
// transfer produces jumbo segments. Payload stores up to kInlineCapacity
// bytes inline inside the Packet itself and falls back to a heap buffer only
// beyond that, so the steady-state hole-punching hot path — clone at the
// sender, move hop-to-hop, rewrite in the NAT — performs zero heap
// allocations per packet.

#ifndef SRC_NETSIM_PAYLOAD_H_
#define SRC_NETSIM_PAYLOAD_H_

#include <cstdint>
#include <cstring>

#include "src/util/bytes.h"

namespace natpunch {

class Payload {
 public:
  static constexpr size_t kInlineCapacity = 64;

  Payload() = default;

  Payload(const uint8_t* data, size_t size) { assign(data, size); }
  Payload(const Bytes& bytes) { assign(bytes.data(), bytes.size()); }  // NOLINT: implicit
  Payload(Bytes&& bytes) { assign(bytes.data(), bytes.size()); }       // NOLINT: implicit

  Payload(const Payload& other) { assign(other.data(), other.size_); }
  Payload& operator=(const Payload& other) {
    if (this != &other) assign(other.data(), other.size_);
    return *this;
  }

  Payload(Payload&& other) noexcept { Steal(other); }
  Payload& operator=(Payload&& other) noexcept {
    if (this != &other) {
      Release();
      Steal(other);
    }
    return *this;
  }

  ~Payload() { Release(); }

  operator ConstByteSpan() const { return ConstByteSpan(data(), size_); }  // NOLINT: implicit

  const uint8_t* data() const { return is_heap() ? heap_data_ : inline_; }
  uint8_t* data() { return is_heap() ? heap_data_ : inline_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool is_inline() const { return !is_heap(); }

  const uint8_t* begin() const { return data(); }
  const uint8_t* end() const { return data() + size_; }
  uint8_t* begin() { return data(); }
  uint8_t* end() { return data() + size_; }

  uint8_t& operator[](size_t i) { return data()[i]; }
  const uint8_t& operator[](size_t i) const { return data()[i]; }

  void clear() {
    // Keeps any heap buffer for reuse; a cleared jumbo payload re-filled with
    // a small message stays on its old buffer, which is fine — capacity only
    // ever grows.
    size_ = 0;
  }

  void assign(const uint8_t* data, size_t size) {
    Reserve(size);
    if (size > 0) std::memcpy(this->data(), data, size);
    size_ = static_cast<uint32_t>(size);
  }

  void append(const uint8_t* data, size_t size) {
    size_t old_size = size_;
    resize(old_size + size);
    if (size > 0) std::memcpy(this->data() + old_size, data, size);
  }

  // Value-preserving; new bytes are zero-filled.
  void resize(size_t new_size) {
    if (new_size > Capacity()) {
      size_t new_cap = Capacity() * 2;
      if (new_cap < new_size) new_cap = new_size;
      uint8_t* buf = new uint8_t[new_cap];
      if (size_ > 0) std::memcpy(buf, data(), size_);
      Release();
      heap_data_ = buf;
      heap_capacity_ = static_cast<uint32_t>(new_cap);
    }
    if (new_size > size_) std::memset(data() + size_, 0, new_size - size_);
    size_ = static_cast<uint32_t>(new_size);
  }

  Bytes ToBytes() const { return Bytes(begin(), end()); }

  friend bool operator==(const Payload& a, const Payload& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.data(), b.data(), a.size_) == 0);
  }
  friend bool operator==(const Payload& a, const Bytes& b) {
    return a.size_ == b.size() &&
           (a.size_ == 0 || std::memcmp(a.data(), b.data(), a.size_) == 0);
  }
  friend bool operator==(const Bytes& a, const Payload& b) { return b == a; }

 private:
  // The heap flag is the capacity itself: a heap buffer always has
  // capacity > 0, the inline buffer always reports 0. Folding the bool away
  // (and narrowing capacity to u32) trims Payload from 80 to 72 bytes —
  // which the Lan per-delivery pools multiply by every in-flight packet.
  bool is_heap() const { return heap_capacity_ != 0; }
  size_t Capacity() const { return is_heap() ? heap_capacity_ : kInlineCapacity; }

  // Ensures capacity >= size without preserving contents.
  void Reserve(size_t size) {
    if (size <= Capacity()) return;
    Release();
    heap_data_ = new uint8_t[size];
    heap_capacity_ = static_cast<uint32_t>(size);
  }

  void Release() {
    if (is_heap()) {
      delete[] heap_data_;
      heap_capacity_ = 0;
    }
  }

  void Steal(Payload& other) noexcept {
    if (other.is_heap()) {
      heap_data_ = other.heap_data_;
      heap_capacity_ = other.heap_capacity_;
      other.heap_capacity_ = 0;
    } else {
      heap_capacity_ = 0;
      if (other.size_ > 0) std::memcpy(inline_, other.inline_, other.size_);
    }
    size_ = other.size_;
    other.size_ = 0;
  }

  union {
    uint8_t inline_[kInlineCapacity];
    uint8_t* heap_data_;
  };
  // Separate from the union so clear() can keep a heap buffer for reuse.
  uint32_t heap_capacity_ = 0;
  uint32_t size_ = 0;
};

static_assert(sizeof(Payload) == 72, "Payload footprint budget (64 inline + 8 meta)");

}  // namespace natpunch

#endif  // SRC_NETSIM_PAYLOAD_H_
