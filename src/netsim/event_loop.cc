#include "src/netsim/event_loop.h"

#include <algorithm>

namespace natpunch {

EventLoop::EventId EventLoop::ScheduleAt(SimTime at, std::function<void()> fn) {
  const int64_t t = std::max(at.micros(), now_.micros());
  const EventId id = next_id_++;
  const Key key{t, id};
  queue_.emplace(key, std::move(fn));
  index_.emplace(id, key);
  return id;
}

EventLoop::EventId EventLoop::ScheduleAfter(SimDuration delay, std::function<void()> fn) {
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool EventLoop::Cancel(EventId id) {
  auto it = index_.find(id);
  if (it == index_.end()) {
    return false;
  }
  queue_.erase(it->second);
  index_.erase(it);
  return true;
}

bool EventLoop::RunOne() {
  if (queue_.empty()) {
    return false;
  }
  auto it = queue_.begin();
  now_ = SimTime(it->first.first);
  auto fn = std::move(it->second);
  index_.erase(it->first.second);
  queue_.erase(it);
  ++events_processed_;
  fn();
  return true;
}

void EventLoop::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.begin()->first.first <= deadline.micros()) {
    RunOne();
  }
  now_ = std::max(now_, deadline);
}

size_t EventLoop::RunUntilIdle(size_t max_events) {
  size_t n = 0;
  while (n < max_events && RunOne()) {
    ++n;
  }
  return n;
}

}  // namespace natpunch
