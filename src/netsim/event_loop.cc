#include "src/netsim/event_loop.h"

#include <algorithm>
#include <utility>

#include "src/obs/metrics.h"

namespace natpunch {

void EventLoop::HeapPush(HeapEntry entry) {
  size_t i = heap_.size();
  heap_.push_back(entry);
  while (i > 0) {
    const size_t parent = (i - 1) >> 2;
    if (!Earlier(entry, heap_[parent])) {
      break;
    }
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void EventLoop::HeapPopTop() {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const size_t n = heap_.size();
  if (n == 0) {
    return;
  }
  size_t i = 0;
  for (;;) {
    const size_t first_child = (i << 2) + 1;
    if (first_child >= n) {
      break;
    }
    size_t best = first_child;
    const size_t end = std::min(first_child + 4, n);
    for (size_t c = first_child + 1; c < end; ++c) {
      if (Earlier(heap_[c], heap_[best])) {
        best = c;
      }
    }
    if (!Earlier(heap_[best], last)) {
      break;
    }
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

EventLoop::EventId EventLoop::ScheduleAt(SimTime at, std::function<void()> fn) {
  const int64_t t = std::max(at.micros(), now_.micros());
  EnsureSlotCapacity();
  const EventId id = next_id_++;
  Slot& slot = slots_[static_cast<size_t>(id) & ring_mask_];
  slot.fn = std::move(fn);
  slot.pending = true;
  HeapPush(HeapEntry{t, id});
  ++live_;
  obs::Set(metric_heap_depth_, static_cast<int64_t>(live_));
  return id;
}

void EventLoop::EnsureSlotCapacity() {
  if (next_id_ - base_id_ < slots_.size()) {
    return;
  }
  if (slots_.empty()) {
    slots_.resize(64);
    ring_mask_ = 63;
    return;
  }
  // The live id window filled the ring: double it and re-place the window at
  // the new mask. Amortized across the run; steady state never gets here.
  std::vector<Slot> bigger(slots_.size() * 2);
  const size_t new_mask = bigger.size() - 1;
  for (EventId id = base_id_; id < next_id_; ++id) {
    bigger[static_cast<size_t>(id) & new_mask] =
        std::move(slots_[static_cast<size_t>(id) & ring_mask_]);
  }
  slots_ = std::move(bigger);
  ring_mask_ = new_mask;
}

void EventLoop::Reset() {
  // Only the live id window can hold closures: fired and cancelled slots are
  // nulled on retirement, and ids below base_id_ were compacted past. A fleet
  // worker Resets once per device simulation, so clearing the (typically
  // tiny) window instead of the whole ring matters at scale.
  for (EventId id = base_id_; id < next_id_; ++id) {
    Slot& slot = slots_[static_cast<size_t>(id) & ring_mask_];
    slot.fn = nullptr;  // destroys pending closures (and anything they own)
    slot.pending = false;
  }
  heap_.clear();
  live_ = 0;
  now_ = SimTime();
  next_id_ = 1;
  base_id_ = 1;
  events_processed_ = 0;
}

EventLoop::Slot* EventLoop::SlotFor(EventId id) {
  if (id < base_id_ || id >= next_id_) {
    return nullptr;
  }
  return &slots_[static_cast<size_t>(id) & ring_mask_];
}

void EventLoop::CompactFront() {
  while (base_id_ < next_id_ && !slots_[static_cast<size_t>(base_id_) & ring_mask_].pending) {
    ++base_id_;
  }
}

void EventLoop::PopDead() {
  while (!heap_.empty()) {
    Slot* slot = SlotFor(heap_.front().id);
    if (slot != nullptr && slot->pending) {
      return;
    }
    HeapPopTop();
  }
}

bool EventLoop::Cancel(EventId id) {
  Slot* slot = SlotFor(id);
  if (slot == nullptr || !slot->pending) {
    return false;
  }
  slot->pending = false;
  slot->fn = nullptr;  // tombstone: the heap entry dies lazily in PopDead
  --live_;
  CompactFront();
  return true;
}

void EventLoop::DispatchTop() {
  const HeapEntry top = heap_.front();
  HeapPopTop();
  Slot* slot = SlotFor(top.id);
  std::function<void()> fn = std::move(slot->fn);
  slot->pending = false;
  slot->fn = nullptr;
  --live_;
  CompactFront();  // `slot` is dead past this point
  now_ = SimTime(top.time);
  ++events_processed_;
  obs::Inc(metric_dispatched_);
  fn();
}

bool EventLoop::RunOne() {
  PopDead();
  if (heap_.empty()) {
    return false;
  }
  DispatchTop();
  return true;
}

void EventLoop::RunUntil(SimTime deadline) {
  // One PopDead per dispatch: the loop peeks the live top itself instead of
  // delegating to RunOne (which would re-PopDead an already-clean heap —
  // measurably half the PopDead traffic on the fleet workload).
  const int64_t limit = deadline.micros();
  for (;;) {
    PopDead();
    if (heap_.empty() || heap_.front().time > limit) {
      break;
    }
    DispatchTop();
  }
  now_ = std::max(now_, deadline);
}

size_t EventLoop::RunUntilIdle(size_t max_events) {
  size_t n = 0;
  while (n < max_events && RunOne()) {
    ++n;
  }
  return n;
}

}  // namespace natpunch
