#include "src/netsim/event_loop.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <utility>

#include "src/obs/metrics.h"

namespace natpunch {

namespace {
constexpr int64_t kNever = std::numeric_limits<int64_t>::max();

int Ctz(uint64_t bits) { return std::countr_zero(bits); }
}  // namespace

void EventLoop::HeapPush(HeapEntry entry) {
  size_t i = heap_.size();
  heap_.push_back(entry);
  while (i > 0) {
    const size_t parent = (i - 1) >> 2;
    if (!Earlier(entry, heap_[parent])) {
      break;
    }
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void EventLoop::HeapPopTop() {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const size_t n = heap_.size();
  if (n == 0) {
    return;
  }
  size_t i = 0;
  for (;;) {
    const size_t first_child = (i << 2) + 1;
    if (first_child >= n) {
      break;
    }
    size_t best = first_child;
    const size_t end = std::min(first_child + 4, n);
    for (size_t c = first_child + 1; c < end; ++c) {
      if (Earlier(heap_[c], heap_[best])) {
        best = c;
      }
    }
    if (!Earlier(heap_[best], last)) {
      break;
    }
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

EventLoop::EventId EventLoop::ScheduleAt(SimTime at, std::function<void()> fn) {
  const int64_t t = std::max(at.micros(), now_.micros());
  EnsureSlotCapacity();
  const uint64_t seq = next_seq_++;
  const EventId id = seq << 1;
  Slot& slot = slots_[static_cast<size_t>(seq) & ring_mask_];
  slot.fn = std::move(fn);
  slot.pending = true;
  HeapPush(HeapEntry{t, id});
  ++live_;
  obs::Set(metric_heap_depth_, static_cast<int64_t>(live_));
  return id;
}

void EventLoop::EnsureSlotCapacity() {
  if (next_seq_ - base_seq_ < slots_.size()) {
    return;
  }
  if (slots_.empty()) {
    slots_.resize(64);
    ring_mask_ = 63;
    return;
  }
  // Timer sequences retire without a dispatch or cancel of their own, so the
  // front of the window may be reclaimable even though nothing compacted it;
  // try that before paying for a bigger ring.
  CompactFront();
  if (next_seq_ - base_seq_ < slots_.size()) {
    return;
  }
  // The live sequence window filled the ring: double it and re-place the
  // window at the new mask. Amortized across the run; steady state never
  // gets here.
  std::vector<Slot> bigger(slots_.size() * 2);
  const size_t new_mask = bigger.size() - 1;
  for (uint64_t seq = base_seq_; seq < next_seq_; ++seq) {
    bigger[static_cast<size_t>(seq) & new_mask] =
        std::move(slots_[static_cast<size_t>(seq) & ring_mask_]);
  }
  slots_ = std::move(bigger);
  ring_mask_ = new_mask;
}

void EventLoop::Reset() {
  // Only the live sequence window can hold closures: fired and cancelled
  // slots are nulled on retirement, and sequences below base_seq_ were
  // compacted past. A fleet worker Resets once per device simulation, so
  // clearing the (typically tiny) window instead of the whole ring matters
  // at scale.
  for (uint64_t seq = base_seq_; seq < next_seq_; ++seq) {
    Slot& slot = slots_[static_cast<size_t>(seq) & ring_mask_];
    slot.fn = nullptr;  // destroys pending closures (and anything they own)
    slot.pending = false;
  }
  // Detach every armed timer so its handle reads !pending() and a later
  // destructor or re-arm is safe. Heap-resident timers are reachable through
  // their heap keys; wheel-resident ones through the slot lists.
  for (const HeapEntry& entry : heap_) {
    if (!IsTimerId(entry.id)) {
      continue;
    }
    TimerHandle** found = heap_timers_.Find(entry.id);
    if (found != nullptr) {
      (*found)->state_ = TimerHandle::State::kIdle;
    }
  }
  heap_timers_.Clear();
  for (int level = 0; level < kWheelLevels; ++level) {
    uint64_t bits = wheel_occupied_[level];
    while (bits != 0) {
      const int slot = Ctz(bits);
      bits &= bits - 1;
      for (TimerHandle* t = wheel_slots_[level][slot]; t != nullptr;) {
        TimerHandle* next = t->next_;
        t->state_ = TimerHandle::State::kIdle;
        t->prev_ = t->next_ = nullptr;
        t = next;
      }
      wheel_slots_[level][slot] = nullptr;
    }
    wheel_occupied_[level] = 0;
  }
  for (TimerHandle* t = overflow_head_; t != nullptr;) {
    TimerHandle* next = t->next_;
    t->state_ = TimerHandle::State::kIdle;
    t->prev_ = t->next_ = nullptr;
    t = next;
  }
  overflow_head_ = nullptr;
  wheel_cursor_ = 0;
  wheel_size_ = 0;
  wheel_lb_cache_ = -1;
  heap_.clear();
  live_ = 0;
  now_ = SimTime();
  next_seq_ = 1;
  base_seq_ = 1;
  events_processed_ = 0;
}

EventLoop::Slot* EventLoop::SlotFor(EventId id) {
  if (IsTimerId(id)) {
    return nullptr;
  }
  const uint64_t seq = SeqOf(id);
  if (seq < base_seq_ || seq >= next_seq_) {
    return nullptr;
  }
  return &slots_[static_cast<size_t>(seq) & ring_mask_];
}

void EventLoop::CompactFront() {
  // Timer sequences never mark their ring slot pending, so a long-armed
  // keepalive parked in the wheel does not pin the window open; only live
  // closure events do.
  while (base_seq_ < next_seq_ && !slots_[static_cast<size_t>(base_seq_) & ring_mask_].pending) {
    ++base_seq_;
  }
}

void EventLoop::PopDead() {
  while (!heap_.empty()) {
    const EventId id = heap_.front().id;
    if (IsTimerId(id)) {
      // A timer key whose id is absent from heap_timers_ was cancelled or
      // re-armed after migrating to the heap; the stale key dies here.
      if (heap_timers_.Find(id) != nullptr) {
        return;
      }
    } else {
      Slot* slot = SlotFor(id);
      if (slot != nullptr && slot->pending) {
        return;
      }
    }
    HeapPopTop();
  }
}

bool EventLoop::Cancel(EventId id) {
  Slot* slot = SlotFor(id);
  if (slot == nullptr || !slot->pending) {
    return false;
  }
  slot->pending = false;
  slot->fn = nullptr;  // tombstone: the heap entry dies lazily in PopDead
  --live_;
  CompactFront();
  return true;
}

// --- Timer tier -------------------------------------------------------------

void EventLoop::ScheduleTimerAt(SimTime at, TimerHandle* timer) {
  if (timer->state_ != TimerHandle::State::kIdle) {
    CancelTimer(timer);  // re-arm: the old deadline is dropped
  }
  const int64_t t = std::max(at.micros(), now_.micros());
  EnsureSlotCapacity();
  const uint64_t seq = next_seq_++;
  timer->loop_ = this;
  timer->id_ = (seq << 1) | kTimerKindBit;
  timer->deadline_ = t;
  ++live_;
  obs::Set(metric_heap_depth_, static_cast<int64_t>(live_));
  // A deadline landing in an already-flushed slot (or any deadline with the
  // wheel disabled) goes straight to the heap with its original key; the
  // ordering argument never depends on which tier admitted the timer.
  if (!wheel_enabled_ || SlotIndexFor(t) < wheel_cursor_) {
    obs::Inc(metric_timers_heap_);
    TimerToHeap(timer);
  } else {
    obs::Inc(metric_timers_wheel_);
    WheelFile(timer);
  }
}

bool EventLoop::CancelTimer(TimerHandle* timer) {
  switch (timer->state_) {
    case TimerHandle::State::kIdle:
      return false;
    case TimerHandle::State::kInWheel:
      WheelUnlink(timer);
      break;
    case TimerHandle::State::kInHeap:
      heap_timers_.Erase(timer->id_);  // the heap key dies lazily in PopDead
      break;
  }
  timer->state_ = TimerHandle::State::kIdle;
  --live_;
  return true;
}

void EventLoop::TimerToHeap(TimerHandle* timer) {
  timer->state_ = TimerHandle::State::kInHeap;
  HeapPush(HeapEntry{timer->deadline_, timer->id_});
  heap_timers_.InsertOrAssign(timer->id_, timer);
}

void EventLoop::WheelFile(TimerHandle* timer) {
  const uint64_t idx = SlotIndexFor(timer->deadline_);
  const uint64_t delta = idx - wheel_cursor_;
  int level = 0;
  uint64_t span = kWheelSlots;
  while (level < kWheelLevels && delta >= span) {
    ++level;
    span <<= kWheelSlotBits;
  }
  timer->state_ = TimerHandle::State::kInWheel;
  timer->prev_ = nullptr;
  if (level == kWheelLevels) {
    // Past the level-3 horizon (~76 h of simulated time): park in the
    // overflow list, rescanned whenever the cursor enters a new level-3
    // window.
    timer->level_ = kOverflowLevel;
    timer->next_ = overflow_head_;
    if (overflow_head_ != nullptr) {
      overflow_head_->prev_ = timer;
    }
    overflow_head_ = timer;
  } else {
    const auto slot = static_cast<uint8_t>((idx >> (kWheelSlotBits * level)) & (kWheelSlots - 1));
    timer->level_ = static_cast<uint8_t>(level);
    timer->slot_ = slot;
    timer->next_ = wheel_slots_[level][slot];
    if (timer->next_ != nullptr) {
      timer->next_->prev_ = timer;
    }
    wheel_slots_[level][slot] = timer;
    wheel_occupied_[level] |= 1ull << slot;
  }
  ++wheel_size_;
  wheel_lb_cache_ = -1;
}

void EventLoop::WheelUnlink(TimerHandle* timer) {
  if (timer->next_ != nullptr) {
    timer->next_->prev_ = timer->prev_;
  }
  if (timer->prev_ != nullptr) {
    timer->prev_->next_ = timer->next_;
  } else if (timer->level_ == kOverflowLevel) {
    overflow_head_ = timer->next_;
  } else {
    wheel_slots_[timer->level_][timer->slot_] = timer->next_;
    if (timer->next_ == nullptr) {
      wheel_occupied_[timer->level_] &= ~(1ull << timer->slot_);
    }
  }
  timer->prev_ = timer->next_ = nullptr;
  --wheel_size_;
  wheel_lb_cache_ = -1;
}

void EventLoop::WheelFlushSlot(uint64_t slot) {
  TimerHandle* t = wheel_slots_[0][slot];
  wheel_slots_[0][slot] = nullptr;
  wheel_occupied_[0] &= ~(1ull << slot);
  while (t != nullptr) {
    TimerHandle* next = t->next_;
    t->prev_ = t->next_ = nullptr;
    --wheel_size_;
    // The heap re-sorts by the original (deadline, id) key, so the arbitrary
    // slot-list order here is invisible to the dispatch sequence.
    TimerToHeap(t);
    t = next;
  }
}

void EventLoop::WheelCascade(int level) {
  const auto slot =
      static_cast<size_t>((wheel_cursor_ >> (kWheelSlotBits * level)) & (kWheelSlots - 1));
  TimerHandle* t = wheel_slots_[level][slot];
  if (t == nullptr) {
    return;
  }
  wheel_slots_[level][slot] = nullptr;
  wheel_occupied_[level] &= ~(1ull << slot);
  while (t != nullptr) {
    TimerHandle* next = t->next_;
    t->prev_ = t->next_ = nullptr;
    --wheel_size_;
    WheelFile(t);  // lands at a lower level: its delta is now < 64^level
    obs::Inc(metric_wheel_cascades_);
    t = next;
  }
}

void EventLoop::WheelRescanOverflow() {
  const uint64_t horizon = kWheelSlots * kWheelSlots * kWheelSlots * kWheelSlots;
  TimerHandle* t = overflow_head_;
  while (t != nullptr) {
    TimerHandle* next = t->next_;
    if (SlotIndexFor(t->deadline_) - wheel_cursor_ < horizon) {
      WheelUnlink(t);
      WheelFile(t);
      obs::Inc(metric_wheel_cascades_);
    }
    t = next;
  }
}

void EventLoop::WheelBoundaryCascade() {
  // Entering a new level-k window cascades that level's covering slot before
  // any of the window's level-0 slots flush; highest level first so a
  // level-3 entry can fall through 2 -> 1 -> 0 in one boundary crossing.
  // Runs the moment the cursor lands on a boundary (not lazily on the next
  // advance): WheelLowerBound relies on the covering slot being empty of
  // current-window entries whenever it looks, so it can classify any
  // occupant at the cursor's own position as next-wrap.
  if ((wheel_cursor_ & (kWheelSlots * kWheelSlots - 1)) == 0) {
    if ((wheel_cursor_ & (kWheelSlots * kWheelSlots * kWheelSlots - 1)) == 0) {
      WheelRescanOverflow();
      WheelCascade(3);
    }
    WheelCascade(2);
  }
  WheelCascade(1);
}

void EventLoop::WheelAdvanceTo(int64_t time_micros) {
  const uint64_t target = SlotIndexFor(time_micros);
  while (wheel_cursor_ <= target) {
    const uint64_t window_base = wheel_cursor_ & ~(kWheelSlots - 1);
    const uint64_t limit_idx = std::min(target, window_base + kWheelSlots - 1);
    uint64_t bits = wheel_occupied_[0] & (~0ull << (wheel_cursor_ & (kWheelSlots - 1)));
    while (bits != 0) {
      const auto pos = static_cast<uint64_t>(Ctz(bits));
      if (window_base + pos > limit_idx) {
        break;
      }
      WheelFlushSlot(pos);
      bits &= bits - 1;
    }
    wheel_cursor_ = limit_idx + 1;
    if ((wheel_cursor_ & (kWheelSlots - 1)) == 0) {
      WheelBoundaryCascade();
    }
  }
  wheel_lb_cache_ = -1;
}

int64_t EventLoop::WheelLowerBound() {
  if (wheel_lb_cache_ >= 0) {
    return wheel_lb_cache_;
  }
  int64_t best = kNever;
  // Level 0: slots at or after the cursor position belong to the current
  // window; occupied slots *below* it are not stale (those were flushed) but
  // wrapped — a delta just under 64 can land past the window boundary, in
  // which case the slot covers cursor+64-aligned time, not cursor-aligned.
  const uint64_t base0 = wheel_cursor_ & ~(kWheelSlots - 1);
  const uint64_t bits0 = wheel_occupied_[0] & (~0ull << (wheel_cursor_ & (kWheelSlots - 1)));
  if (bits0 != 0) {
    best = static_cast<int64_t>((base0 + static_cast<uint64_t>(Ctz(bits0)))
                                << kWheelGranularityBits);
  } else if (wheel_occupied_[0] != 0) {
    best = static_cast<int64_t>(
        (base0 + kWheelSlots + static_cast<uint64_t>(Ctz(wheel_occupied_[0])))
        << kWheelGranularityBits);
  }
  for (int level = 1; level < kWheelLevels; ++level) {
    uint64_t bits = wheel_occupied_[level];
    if (bits == 0) {
      continue;
    }
    const int shift = kWheelSlotBits * level;
    const uint64_t cursor_l = wheel_cursor_ >> shift;
    const uint64_t base_l = cursor_l & ~(kWheelSlots - 1);
    while (bits != 0) {
      const auto pos = static_cast<uint64_t>(Ctz(bits));
      bits &= bits - 1;
      // A position at or behind the cursor's own slot belongs to the next
      // wrap of this level (the covering slot was cascaded empty when the
      // cursor entered it).
      uint64_t abs_idx = base_l + pos;
      if (abs_idx <= cursor_l) {
        abs_idx += kWheelSlots;
      }
      const auto start =
          static_cast<int64_t>(abs_idx << (static_cast<uint64_t>(shift) + kWheelGranularityBits));
      best = std::min(best, start);
    }
  }
  for (TimerHandle* t = overflow_head_; t != nullptr; t = t->next_) {
    best = std::min(best, t->deadline_);
  }
  wheel_lb_cache_ = best;
  return best;
}

// --- Dispatch ---------------------------------------------------------------

bool EventLoop::PrepareTop(int64_t limit) {
  for (;;) {
    PopDead();
    if (wheel_size_ != 0) {
      const int64_t top = heap_.empty() ? kNever : heap_.front().time;
      const int64_t lb = WheelLowerBound();
      // A wheel timer might precede (or tie) the heap top: flush its slot
      // into the heap and re-evaluate. Equal times flush too — the wheel
      // entry may carry a smaller sequence than the heap top.
      if (lb <= top && lb <= limit) {
        WheelAdvanceTo(lb);
        continue;
      }
    }
    return !heap_.empty() && heap_.front().time <= limit;
  }
}

void EventLoop::DispatchTop() {
  const HeapEntry top = heap_.front();
  HeapPopTop();
  if (IsTimerId(top.id)) {
    TimerHandle* timer = *heap_timers_.Find(top.id);
    heap_timers_.Erase(top.id);
    timer->state_ = TimerHandle::State::kIdle;
    --live_;
    now_ = SimTime(top.time);
    ++events_processed_;
    obs::Inc(metric_dispatched_);
    timer->thunk_(timer);  // may re-arm the handle
    return;
  }
  Slot* slot = SlotFor(top.id);
  std::function<void()> fn = std::move(slot->fn);
  slot->pending = false;
  slot->fn = nullptr;
  --live_;
  CompactFront();  // `slot` is dead past this point
  now_ = SimTime(top.time);
  ++events_processed_;
  obs::Inc(metric_dispatched_);
  fn();
}

bool EventLoop::RunOne() {
  if (!PrepareTop(kNever)) {
    return false;
  }
  DispatchTop();
  return true;
}

void EventLoop::RunUntil(SimTime deadline) {
  // One PopDead per dispatch: PrepareTop peeks the live top itself instead
  // of delegating to RunOne (which would re-PopDead an already-clean heap —
  // measurably half the PopDead traffic on the fleet workload).
  const int64_t limit = deadline.micros();
  while (PrepareTop(limit)) {
    DispatchTop();
  }
  now_ = std::max(now_, deadline);
}

size_t EventLoop::RunUntilIdle(size_t max_events) {
  size_t n = 0;
  while (n < max_events && RunOne()) {
    ++n;
  }
  return n;
}

}  // namespace natpunch
