#include "src/netsim/event_loop.h"

#include <algorithm>
#include <utility>

#include "src/obs/metrics.h"

namespace natpunch {

EventLoop::EventId EventLoop::ScheduleAt(SimTime at, std::function<void()> fn) {
  const int64_t t = std::max(at.micros(), now_.micros());
  EnsureSlotCapacity();
  const EventId id = next_id_++;
  Slot& slot = slots_[static_cast<size_t>(id) & ring_mask_];
  slot.fn = std::move(fn);
  slot.pending = true;
  heap_.push_back(HeapEntry{t, id});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  obs::Set(metric_heap_depth_, static_cast<int64_t>(live_));
  return id;
}

void EventLoop::EnsureSlotCapacity() {
  if (next_id_ - base_id_ < slots_.size()) {
    return;
  }
  if (slots_.empty()) {
    slots_.resize(64);
    ring_mask_ = 63;
    return;
  }
  // The live id window filled the ring: double it and re-place the window at
  // the new mask. Amortized across the run; steady state never gets here.
  std::vector<Slot> bigger(slots_.size() * 2);
  const size_t new_mask = bigger.size() - 1;
  for (EventId id = base_id_; id < next_id_; ++id) {
    bigger[static_cast<size_t>(id) & new_mask] =
        std::move(slots_[static_cast<size_t>(id) & ring_mask_]);
  }
  slots_ = std::move(bigger);
  ring_mask_ = new_mask;
}

void EventLoop::Reset() {
  for (Slot& slot : slots_) {
    slot.fn = nullptr;  // destroys pending closures (and anything they own)
    slot.pending = false;
  }
  heap_.clear();
  live_ = 0;
  now_ = SimTime();
  next_id_ = 1;
  base_id_ = 1;
  events_processed_ = 0;
}

EventLoop::EventId EventLoop::ScheduleAfter(SimDuration delay, std::function<void()> fn) {
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventLoop::Slot* EventLoop::SlotFor(EventId id) {
  if (id < base_id_ || id >= next_id_) {
    return nullptr;
  }
  return &slots_[static_cast<size_t>(id) & ring_mask_];
}

void EventLoop::CompactFront() {
  while (base_id_ < next_id_ && !slots_[static_cast<size_t>(base_id_) & ring_mask_].pending) {
    ++base_id_;
  }
}

void EventLoop::PopDead() {
  while (!heap_.empty()) {
    Slot* slot = SlotFor(heap_.front().id);
    if (slot != nullptr && slot->pending) {
      return;
    }
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

bool EventLoop::Cancel(EventId id) {
  Slot* slot = SlotFor(id);
  if (slot == nullptr || !slot->pending) {
    return false;
  }
  slot->pending = false;
  slot->fn = nullptr;  // tombstone: the heap entry dies lazily in PopDead
  --live_;
  CompactFront();
  return true;
}

bool EventLoop::RunOne() {
  PopDead();
  if (heap_.empty()) {
    return false;
  }
  const HeapEntry top = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
  Slot* slot = SlotFor(top.id);
  std::function<void()> fn = std::move(slot->fn);
  slot->pending = false;
  slot->fn = nullptr;
  --live_;
  CompactFront();  // `slot` is dead past this point
  now_ = SimTime(top.time);
  ++events_processed_;
  obs::Inc(metric_dispatched_);
  fn();
  return true;
}

void EventLoop::RunUntil(SimTime deadline) {
  for (;;) {
    PopDead();
    if (heap_.empty() || heap_.front().time > deadline.micros()) {
      break;
    }
    RunOne();
  }
  now_ = std::max(now_, deadline);
}

size_t EventLoop::RunUntilIdle(size_t max_events) {
  size_t n = 0;
  while (n < max_events && RunOne()) {
    ++n;
  }
  return n;
}

}  // namespace natpunch
