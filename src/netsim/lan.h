// A Lan is one broadcast domain / address realm segment.
//
// The paper's Figure 1 topology maps directly: each private network is a Lan,
// and the "main" global realm is a Lan with is_global set (which additionally
// drops leaked RFC 1918 destinations, as real inter-domain routing would).
// Latency, jitter, and loss are per-Lan so experiments can, e.g., make one
// client's access link slower to control which SYN arrives first.

#ifndef SRC_NETSIM_LAN_H_
#define SRC_NETSIM_LAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/netsim/address.h"
#include "src/netsim/packet.h"
#include "src/netsim/sim_time.h"
#include "src/netsim/trace.h"

namespace natpunch {

namespace obs {
class Counter;
}  // namespace obs

class Network;
class Node;

// Gilbert-Elliott two-state burst-loss model. The channel wanders between a
// "good" and a "bad" state per transmitted packet; loss probability depends
// on the state, which is what produces the correlated loss bursts real
// access links exhibit (and that independent `loss` cannot). Disabled by
// default so it draws no randomness unless asked for.
struct GilbertElliottConfig {
  bool enabled = false;
  double p_good_to_bad = 0.01;  // per-packet transition probability good->bad
  double p_bad_to_good = 0.25;  // per-packet transition probability bad->good
  double loss_good = 0.0;       // loss probability while in the good state
  double loss_bad = 1.0;        // loss probability while in the bad state
};

// Adversarial in-flight mangling: seeded, deterministic byte-level hostility
// on top of the loss models. Each fault kind is independent and draws
// randomness only while its probability is non-zero, so enabling one (or
// none) never perturbs the RNG stream consumed by the others — golden traces
// for non-hostile configs stay bit-identical. Every applied fault is traced
// (kCorrupt/kDuplicate/kReorder/kTruncate) and counted via obs metrics
// (`lan.<name>.corrupted/duplicated/reordered/truncated`).
struct MangleConfig {
  double corrupt = 0.0;        // per-packet probability of flipping payload bits
  int corrupt_max_bits = 3;    // 1..corrupt_max_bits bits flipped per corruption
  double truncate = 0.0;       // probability of cutting the payload short
  double duplicate = 0.0;      // probability of delivering the packet twice
  double reorder = 0.0;        // probability of holding the packet back
  SimDuration reorder_hold = Millis(50);  // max extra hold; actual in [1us, hold]

  bool any() const { return corrupt > 0.0 || truncate > 0.0 || duplicate > 0.0 || reorder > 0.0; }
};

struct LanConfig {
  SimDuration latency = Millis(5);     // one-way propagation delay
  SimDuration jitter = Micros(0);      // extra uniform delay in [0, jitter]
  double loss = 0.0;                // independent per-packet loss probability
  GilbertElliottConfig burst{};     // correlated burst loss, on top of `loss`
  MangleConfig mangle{};            // adversarial corruption/dup/reorder/truncate
  // Shared-medium capacity in bits/s; 0 = infinite. Packets serialize one
  // at a time, so a saturated segment queues (and delays) everything on it.
  double bandwidth_bps = 0.0;
  bool is_global = false;  // the public Internet realm
};

class Lan {
 public:
  Lan(Network* network, std::string name, LanConfig config);

  Lan(const Lan&) = delete;
  Lan& operator=(const Lan&) = delete;

  const std::string& name() const { return name_; }
  const LanConfig& config() const { return config_; }
  void set_config(const LanConfig& config) { config_ = config; }

  // Administrative link state (fault injection: a partition takes the
  // segment down; every Transmit while down is dropped with kLinkDown).
  bool up() const { return up_; }
  void set_up(bool up) { up_ = up; }

  // Whether the Gilbert-Elliott channel currently sits in the bad state.
  bool burst_bad_state() const { return burst_bad_; }

  // Registered by Node::AttachTo.
  void Attach(Node* node, int iface, Ipv4Address ip);

  bool HasAddress(Ipv4Address ip) const;

  // Emit `packet` toward `next_hop` on this segment. Applies loss and delay,
  // then delivers to the attachment owning next_hop, if any. The packet is
  // consumed (parked in the pooled delivery slot) only when it survives the
  // loss/link checks.
  void Transmit(Node* sender, Ipv4Address next_hop, Packet&& packet);

  uint64_t packets_transmitted() const { return packets_; }
  uint64_t bytes_transmitted() const { return bytes_; }

 private:
  struct Attachment {
    Node* node;
    int iface;
    Ipv4Address ip;
  };

  // An in-flight delivery parked in a pooled slot so the scheduled callback
  // only captures {this, slot} — small and trivially copyable, so
  // std::function keeps it in its small-buffer storage instead of heap-
  // allocating a closure (with the Packet inside it) for every packet.
  struct PendingDelivery {
    Node* node = nullptr;
    int iface = 0;
    Packet packet;
  };

  void Deliver(uint32_t slot);
  // Applies the MangleConfig to a packet that survived the loss models.
  // Mutates the payload in place (corrupt/truncate) and reports via `extra`
  // how long a reordered packet is held past its computed delay and via
  // `duplicate` whether a second copy must be scheduled.
  void Mangle(Packet& packet, SimDuration& extra, bool& duplicate);
  uint32_t AcquireSlot();

  Network* network_;
  std::string name_;
  TraceNodeId trace_id_ = 0;
  LanConfig config_;
  bool up_ = true;
  bool burst_bad_ = false;  // Gilbert-Elliott channel state
  std::vector<Attachment> attachments_;
  SimTime medium_free_at_;  // when the shared medium finishes its last frame
  uint64_t packets_ = 0;
  uint64_t bytes_ = 0;
  std::vector<PendingDelivery> deliveries_;
  std::vector<uint32_t> free_slots_;
  // Null when the Network has no metrics registry (obs::Inc is null-safe).
  obs::Counter* metric_corrupted_ = nullptr;
  obs::Counter* metric_duplicated_ = nullptr;
  obs::Counter* metric_reordered_ = nullptr;
  obs::Counter* metric_truncated_ = nullptr;
};

}  // namespace natpunch

#endif  // SRC_NETSIM_LAN_H_
