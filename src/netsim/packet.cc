#include "src/netsim/packet.h"

namespace natpunch {

std::string_view IpProtocolName(IpProtocol p) {
  switch (p) {
    case IpProtocol::kUdp:
      return "UDP";
    case IpProtocol::kTcp:
      return "TCP";
    case IpProtocol::kIcmp:
      return "ICMP";
  }
  return "?";
}

std::string TcpHeader::FlagsString() const {
  std::string out;
  if (syn) {
    out += "SYN,";
  }
  if (ack) {
    out += "ACK,";
  }
  if (fin) {
    out += "FIN,";
  }
  if (rst) {
    out += "RST,";
  }
  if (!out.empty()) {
    out.pop_back();
  }
  return out;
}

size_t Packet::WireSize() const {
  constexpr size_t kIpHeader = 20;
  size_t transport = 8;  // UDP / ICMP
  if (protocol == IpProtocol::kTcp) {
    transport = 20;
  }
  return kIpHeader + transport + payload.size();
}

std::string Packet::Summary() const {
  std::string out(IpProtocolName(protocol));
  out += " " + src().ToString() + " -> " + dst().ToString();
  if (protocol == IpProtocol::kTcp) {
    out += " [" + tcp.FlagsString() + "]";
    out += " seq=" + std::to_string(tcp.seq);
    if (tcp.ack) {
      out += " ack=" + std::to_string(tcp.ack_seq);
    }
  }
  if (protocol == IpProtocol::kIcmp) {
    out += " code=" + std::to_string(icmp.code);
  }
  if (!payload.empty()) {
    out += " len=" + std::to_string(payload.size());
  }
  return out;
}

}  // namespace natpunch
