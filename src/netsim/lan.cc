#include "src/netsim/lan.h"

#include <algorithm>

#include "src/netsim/network.h"
#include "src/netsim/node.h"

namespace natpunch {

Lan::Lan(Network* network, std::string name, LanConfig config)
    : network_(network), name_(std::move(name)), config_(config) {
  trace_id_ = network_->trace().Intern(name_);
}

void Lan::Attach(Node* node, int iface, Ipv4Address ip) {
  attachments_.push_back(Attachment{node, iface, ip});
}

bool Lan::HasAddress(Ipv4Address ip) const {
  for (const auto& a : attachments_) {
    if (a.ip == ip) {
      return true;
    }
  }
  return false;
}

void Lan::Transmit(Node* sender, Ipv4Address next_hop, Packet&& packet) {
  ++packets_;
  const size_t wire_size = packet.WireSize();
  bytes_ += wire_size;

  if (!up_) {
    network_->trace().Record(network_->now(), trace_id_, TraceEvent::kLinkDown, packet);
    return;
  }

  if (config_.loss > 0.0 && network_->rng().NextBool(config_.loss)) {
    network_->trace().Record(network_->now(), trace_id_, TraceEvent::kDropLoss, packet);
    return;
  }

  if (config_.burst.enabled) {
    // Advance the Gilbert-Elliott channel one step per transmitted packet,
    // then apply the current state's loss probability.
    burst_bad_ = burst_bad_ ? !network_->rng().NextBool(config_.burst.p_bad_to_good)
                            : network_->rng().NextBool(config_.burst.p_good_to_bad);
    const double p = burst_bad_ ? config_.burst.loss_bad : config_.burst.loss_good;
    if (p > 0.0 && network_->rng().NextBool(p)) {
      network_->trace().Record(network_->now(), trace_id_, TraceEvent::kDropBurst, packet,
                               burst_bad_ ? "bad" : "good");
      return;
    }
  }

  // Single scan: prefer an attachment owning next_hop on another node, but
  // remember the first owner of any kind so a node may legitimately address
  // itself (loopback-style) when nothing else matches.
  const Attachment* target = nullptr;
  for (const auto& a : attachments_) {
    if (a.ip != next_hop) {
      continue;
    }
    if (a.node != sender) {
      target = &a;
      break;
    }
    if (target == nullptr) {
      target = &a;
    }
  }
  if (target == nullptr) {
    const TraceEvent event = (config_.is_global && packet.dst_ip.IsPrivate())
                                 ? TraceEvent::kDropPrivateLeak
                                 : TraceEvent::kDropNoNextHop;
    network_->trace().Record(network_->now(), trace_id_, event, packet,
                             Detail("next_hop=", next_hop));
    return;
  }

  SimDuration delay = config_.latency;
  if (config_.jitter.micros() > 0) {
    delay = delay + Micros(network_->rng().NextInRange(0, config_.jitter.micros()));
  }
  if (config_.bandwidth_bps > 0) {
    // Serialization on a shared medium: wait for the segment to go idle,
    // then occupy it for the frame's transmission time.
    const double tx_seconds = static_cast<double>(wire_size) * 8 / config_.bandwidth_bps;
    const SimDuration tx_time = Micros(static_cast<int64_t>(tx_seconds * 1e6));
    const SimTime start = std::max(network_->now(), medium_free_at_);
    medium_free_at_ = start + tx_time;
    delay = delay + (medium_free_at_ - network_->now());
  }

  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(deliveries_.size());
    deliveries_.emplace_back();
  }
  PendingDelivery& pending = deliveries_[slot];
  pending.node = target->node;
  pending.iface = target->iface;
  pending.packet = std::move(packet);
  network_->event_loop().ScheduleAfter(delay, [this, slot] { Deliver(slot); });
}

void Lan::Deliver(uint32_t slot) {
  // Move everything out and release the slot first: HandlePacket may
  // re-enter Transmit on this same Lan.
  Node* const node = deliveries_[slot].node;
  const int iface = deliveries_[slot].iface;
  Packet packet = std::move(deliveries_[slot].packet);
  deliveries_[slot].node = nullptr;
  free_slots_.push_back(slot);
  network_->trace().Record(network_->now(), node->trace_id(), TraceEvent::kDeliver, packet);
  node->HandlePacket(iface, std::move(packet));
}

}  // namespace natpunch
