#include "src/netsim/lan.h"

#include <algorithm>
#include <cstdio>

#include "src/netsim/network.h"
#include "src/netsim/node.h"
#include "src/obs/metrics.h"

namespace natpunch {

Lan::Lan(Network* network, std::string name, LanConfig config)
    : network_(network), name_(std::move(name)), config_(config) {
  trace_id_ = network_->trace().Intern(name_);
  if (obs::MetricsRegistry* reg = network_->metrics()) {
    char metric_name[96];
    const auto metric = [&](const char* suffix) {
      const int n =
          std::snprintf(metric_name, sizeof(metric_name), "lan.%s.%s", name_.c_str(), suffix);
      return reg->GetCounter(std::string_view(metric_name, static_cast<size_t>(n)));
    };
    metric_corrupted_ = metric("corrupted");
    metric_duplicated_ = metric("duplicated");
    metric_reordered_ = metric("reordered");
    metric_truncated_ = metric("truncated");
  }
}

void Lan::Attach(Node* node, int iface, Ipv4Address ip) {
  attachments_.push_back(Attachment{node, iface, ip});
}

bool Lan::HasAddress(Ipv4Address ip) const {
  for (const auto& a : attachments_) {
    if (a.ip == ip) {
      return true;
    }
  }
  return false;
}

void Lan::Transmit(Node* sender, Ipv4Address next_hop, Packet&& packet) {
  ++packets_;
  const size_t wire_size = packet.WireSize();
  bytes_ += wire_size;

  if (!up_) {
    network_->trace().Record(network_->now(), trace_id_, TraceEvent::kLinkDown, packet);
    return;
  }

  if (config_.loss > 0.0 && network_->rng().NextBool(config_.loss)) {
    network_->trace().Record(network_->now(), trace_id_, TraceEvent::kDropLoss, packet);
    return;
  }

  if (config_.burst.enabled) {
    // Advance the Gilbert-Elliott channel one step per transmitted packet,
    // then apply the current state's loss probability.
    burst_bad_ = burst_bad_ ? !network_->rng().NextBool(config_.burst.p_bad_to_good)
                            : network_->rng().NextBool(config_.burst.p_good_to_bad);
    const double p = burst_bad_ ? config_.burst.loss_bad : config_.burst.loss_good;
    if (p > 0.0 && network_->rng().NextBool(p)) {
      network_->trace().Record(network_->now(), trace_id_, TraceEvent::kDropBurst, packet,
                               burst_bad_ ? "bad" : "good");
      return;
    }
  }

  // Single scan: prefer an attachment owning next_hop on another node, but
  // remember the first owner of any kind so a node may legitimately address
  // itself (loopback-style) when nothing else matches.
  const Attachment* target = nullptr;
  for (const auto& a : attachments_) {
    if (a.ip != next_hop) {
      continue;
    }
    if (a.node != sender) {
      target = &a;
      break;
    }
    if (target == nullptr) {
      target = &a;
    }
  }
  if (target == nullptr) {
    const TraceEvent event = (config_.is_global && packet.dst_ip.IsPrivate())
                                 ? TraceEvent::kDropPrivateLeak
                                 : TraceEvent::kDropNoNextHop;
    network_->trace().Record(network_->now(), trace_id_, event, packet,
                             Detail("next_hop=", next_hop));
    return;
  }

  SimDuration delay = config_.latency;
  if (config_.jitter.micros() > 0) {
    delay = delay + Micros(network_->rng().NextInRange(0, config_.jitter.micros()));
  }
  if (config_.bandwidth_bps > 0) {
    // Serialization on a shared medium: wait for the segment to go idle,
    // then occupy it for the frame's transmission time.
    const double tx_seconds = static_cast<double>(wire_size) * 8 / config_.bandwidth_bps;
    const SimDuration tx_time = Micros(static_cast<int64_t>(tx_seconds * 1e6));
    const SimTime start = std::max(network_->now(), medium_free_at_);
    medium_free_at_ = start + tx_time;
    delay = delay + (medium_free_at_ - network_->now());
  }

  // Adversarial mangling happens after the loss models and target resolution
  // so a mangled packet is always one that would otherwise have been
  // delivered intact. Corruption/truncation mutate the payload in place
  // (the duplicate, if any, carries the same damage — real duplication
  // happens downstream of the corrupting link).
  SimDuration extra_hold = Micros(0);
  bool duplicate = false;
  if (config_.mangle.any()) {
    Mangle(packet, extra_hold, duplicate);
  }

  if (duplicate) {
    const uint32_t dup_slot = AcquireSlot();
    PendingDelivery& dup = deliveries_[dup_slot];
    dup.node = target->node;
    dup.iface = target->iface;
    dup.packet = packet;  // copy; the original is parked below
    network_->event_loop().ScheduleAfter(delay, [this, dup_slot] { Deliver(dup_slot); });
  }

  const uint32_t slot = AcquireSlot();
  PendingDelivery& pending = deliveries_[slot];
  pending.node = target->node;
  pending.iface = target->iface;
  pending.packet = std::move(packet);
  network_->event_loop().ScheduleAfter(delay + extra_hold, [this, slot] { Deliver(slot); });
}

uint32_t Lan::AcquireSlot() {
  if (!free_slots_.empty()) {
    const uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  const uint32_t slot = static_cast<uint32_t>(deliveries_.size());
  deliveries_.emplace_back();
  return slot;
}

void Lan::Mangle(Packet& packet, SimDuration& extra, bool& duplicate) {
  const MangleConfig& m = config_.mangle;
  Rng& rng = network_->rng();
  // Fixed draw order (corrupt, truncate, duplicate, reorder), each kind
  // drawing only when its probability is non-zero: replays are bit-identical
  // per seed and disabling a kind never shifts the stream of the others.
  if (m.corrupt > 0.0 && !packet.payload.empty() && rng.NextBool(m.corrupt)) {
    const uint64_t max_bits = m.corrupt_max_bits < 1 ? 1 : static_cast<uint64_t>(m.corrupt_max_bits);
    const uint64_t bits = 1 + rng.NextBelow(max_bits);
    for (uint64_t i = 0; i < bits; ++i) {
      const uint64_t bit = rng.NextBelow(static_cast<uint64_t>(packet.payload.size()) * 8);
      packet.payload[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    }
    network_->trace().Record(network_->now(), trace_id_, TraceEvent::kCorrupt, packet,
                             Detail("bits=", bits));
    obs::Inc(metric_corrupted_);
  }
  if (m.truncate > 0.0 && !packet.payload.empty() && rng.NextBool(m.truncate)) {
    const size_t new_size = static_cast<size_t>(rng.NextBelow(packet.payload.size()));
    network_->trace().Record(network_->now(), trace_id_, TraceEvent::kTruncate, packet,
                             Detail(uint64_t{packet.payload.size()}, "=>", uint64_t{new_size}));
    packet.payload.resize(new_size);
    obs::Inc(metric_truncated_);
  }
  if (m.duplicate > 0.0 && rng.NextBool(m.duplicate)) {
    duplicate = true;
    network_->trace().Record(network_->now(), trace_id_, TraceEvent::kDuplicate, packet);
    obs::Inc(metric_duplicated_);
  }
  if (m.reorder > 0.0 && rng.NextBool(m.reorder)) {
    const int64_t max_us = std::max<int64_t>(1, m.reorder_hold.micros());
    extra = Micros(rng.NextInRange(1, max_us));
    network_->trace().Record(network_->now(), trace_id_, TraceEvent::kReorder, packet,
                             Detail("hold_us=", static_cast<uint64_t>(extra.micros())));
    obs::Inc(metric_reordered_);
  }
}

void Lan::Deliver(uint32_t slot) {
  // Move everything out and release the slot first: HandlePacket may
  // re-enter Transmit on this same Lan.
  Node* const node = deliveries_[slot].node;
  const int iface = deliveries_[slot].iface;
  Packet packet = std::move(deliveries_[slot].packet);
  deliveries_[slot].node = nullptr;
  free_slots_.push_back(slot);
  network_->trace().Record(network_->now(), node->trace_id(), TraceEvent::kDeliver, packet);
  node->HandlePacket(iface, std::move(packet));
}

}  // namespace natpunch
