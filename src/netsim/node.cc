#include "src/netsim/node.h"

#include "src/netsim/lan.h"
#include "src/netsim/network.h"

namespace natpunch {

Node::Node(Network* network, std::string name) : network_(network), name_(std::move(name)) {
  trace_id_ = network_->trace().Intern(name_);
}

Node::~Node() = default;

int Node::AttachTo(Lan* lan, Ipv4Address ip, int prefix_length) {
  const int index = static_cast<int>(ifaces_.size());
  ifaces_.push_back(Iface{lan, ip});
  lan->Attach(this, index, ip);
  AddRoute(Ipv4Prefix(ip, prefix_length), index);
  return index;
}

void Node::AddRoute(Ipv4Prefix prefix, int iface, std::optional<Ipv4Address> gateway) {
  routes_.push_back(Route{prefix, iface, gateway});
  cached_iface_ = -1;  // the new route may shadow the cached decision
}

void Node::AddDefaultRoute(int iface, Ipv4Address gateway) {
  AddRoute(Ipv4Prefix(Ipv4Address(0), 0), iface, gateway);
}

int Node::RouteLookup(Ipv4Address dst, Ipv4Address* next_hop) const {
  int best = -1;
  int best_len = -1;
  const Route* best_route = nullptr;
  for (const auto& route : routes_) {
    if (route.prefix.length > best_len && route.prefix.Contains(dst)) {
      best = route.iface;
      best_len = route.prefix.length;
      best_route = &route;
    }
  }
  if (best >= 0 && next_hop != nullptr) {
    *next_hop = best_route->gateway.value_or(dst);
  }
  return best;
}

bool Node::OwnsAddress(Ipv4Address a) const {
  for (const auto& iface : ifaces_) {
    if (iface.ip == a) {
      return true;
    }
  }
  return false;
}

bool Node::SendPacket(Packet&& packet) {
  if (packet.id == 0) {
    packet.id = network_->NextPacketId();
  }
  Ipv4Address next_hop;
  int iface;
  if (cached_iface_ >= 0 && packet.dst_ip == cached_dst_) {
    iface = cached_iface_;
    next_hop = cached_next_hop_;
  } else {
    iface = RouteLookup(packet.dst_ip, &next_hop);
    if (iface < 0) {
      network_->trace().Record(network_->now(), trace_id_, TraceEvent::kDropNoRoute, packet);
      return false;
    }
    cached_dst_ = packet.dst_ip;
    cached_next_hop_ = next_hop;
    cached_iface_ = iface;
  }
  if (packet.src_ip.IsUnspecified()) {
    packet.src_ip = ifaces_[static_cast<size_t>(iface)].ip;
  }
  network_->trace().Record(network_->now(), trace_id_, TraceEvent::kSend, packet);
  ifaces_[static_cast<size_t>(iface)].lan->Transmit(this, next_hop, std::move(packet));
  return true;
}

}  // namespace natpunch
