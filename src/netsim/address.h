// IPv4 addresses, endpoints (address:port pairs), and prefixes.
//
// A session endpoint in the paper's terminology (§2.1) is an (IP address,
// port) pair; `Endpoint` is that type and is used uniformly by the socket
// API, the NAT translation tables, and the rendezvous wire protocol.

#ifndef SRC_NETSIM_ADDRESS_H_
#define SRC_NETSIM_ADDRESS_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace natpunch {

class Ipv4Address {
 public:
  constexpr Ipv4Address() : bits_(0) {}
  constexpr explicit Ipv4Address(uint32_t bits) : bits_(bits) {}

  static constexpr Ipv4Address FromOctets(uint8_t a, uint8_t b, uint8_t c, uint8_t d) {
    return Ipv4Address(static_cast<uint32_t>(a) << 24 | static_cast<uint32_t>(b) << 16 |
                       static_cast<uint32_t>(c) << 8 | static_cast<uint32_t>(d));
  }
  // Parses dotted-quad notation; nullopt on malformed input.
  static std::optional<Ipv4Address> Parse(std::string_view text);

  constexpr uint32_t bits() const { return bits_; }
  constexpr bool IsUnspecified() const { return bits_ == 0; }

  // True for RFC 1918 space (10/8, 172.16/12, 192.168/16). NATs and the
  // global "internet" LAN use this to drop leaked private destinations.
  bool IsPrivate() const;

  // Bitwise complement, the obfuscation the paper recommends (§3.1, §5.3)
  // to defeat NATs that blindly rewrite address-like payload bytes.
  constexpr Ipv4Address Complement() const { return Ipv4Address(~bits_); }

  std::string ToString() const;

  constexpr auto operator<=>(const Ipv4Address&) const = default;

 private:
  uint32_t bits_;
};

struct Endpoint {
  Ipv4Address ip;
  uint16_t port = 0;

  constexpr Endpoint() = default;
  constexpr Endpoint(Ipv4Address ip_in, uint16_t port_in) : ip(ip_in), port(port_in) {}

  constexpr bool IsUnspecified() const { return ip.IsUnspecified() && port == 0; }
  std::string ToString() const;
  static std::optional<Endpoint> Parse(std::string_view text);  // "a.b.c.d:port"

  constexpr auto operator<=>(const Endpoint&) const = default;
};

struct Ipv4Prefix {
  Ipv4Address base;
  int length = 0;  // 0..32

  constexpr Ipv4Prefix() = default;
  constexpr Ipv4Prefix(Ipv4Address base_in, int length_in) : base(base_in), length(length_in) {}
  static std::optional<Ipv4Prefix> Parse(std::string_view text);  // "a.b.c.d/len"

  bool Contains(Ipv4Address addr) const;
  std::string ToString() const;
};

struct EndpointHash {
  size_t operator()(const Endpoint& e) const {
    return std::hash<uint64_t>()(static_cast<uint64_t>(e.ip.bits()) << 16 | e.port);
  }
};

}  // namespace natpunch

#endif  // SRC_NETSIM_ADDRESS_H_
