#include "src/netsim/sim_time.h"

#include <cstdio>

namespace natpunch {

std::string SimDuration::ToString() const {
  char buf[32];
  if (micros_ % 1000000 == 0) {
    std::snprintf(buf, sizeof(buf), "%llds", static_cast<long long>(micros_ / 1000000));
  } else if (micros_ % 1000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldms", static_cast<long long>(micros_ / 1000));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(micros_));
  }
  return buf;
}

std::string SimTime::ToString() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%06llds", static_cast<long long>(micros_ / 1000000),
                static_cast<long long>(micros_ % 1000000));
  return buf;
}

}  // namespace natpunch
