// Deterministic discrete-event scheduler.
//
// Events fire in strict (time, insertion-sequence) order, so two events
// scheduled for the same instant run in the order they were scheduled. This
// determinism is load-bearing: the hole-punching experiments depend on
// reproducing exact packet interleavings (e.g. whether A's SYN reaches B's
// NAT before B's SYN leaves it).
//
// Two scheduling tiers share one insertion-sequence counter:
//
//  * ScheduleAt/ScheduleAfter — closure events (packet deliveries, one-shot
//    control work). A 4-ary min-heap of (time, sequence) keys with lazy
//    cancellation; callbacks live in a power-of-two ring buffer indexed by
//    sequence, which gives O(1) id lookup with no hashing and a steady-state
//    allocation-free packet path.
//
//  * ScheduleTimerAt/ScheduleTimerAfter — intrusive TimerHandle events for
//    the coarse periodic tier (keepalives, NAT mapping expiry, relay
//    watchdogs, TURN refresh). A handle embeds its list links, deadline, and
//    a member-function thunk in the owning object, so arming a timer
//    allocates nothing and dispatch is one indirect call — no std::function,
//    no type erasure. Far-out timers are parked in a hierarchical timing
//    wheel (4 levels x 64 slots) and only migrate into the heap shortly
//    before they are due, so a million armed keepalives cost the heap
//    nothing until their slot comes up.
//
// The wheel is a staging area, never a dispatch path: every timer enters the
// heap carrying its original (time, sequence) key before the clock reaches
// its slot, so the pop sequence is byte-identical to a heap-only scheduler
// (SetTimerWheelEnabled(false) is the differential oracle for exactly that
// claim). Both kinds of event share the sequence counter, so cross-tier ties
// at the same instant also fire in schedule order.

#ifndef SRC_NETSIM_EVENT_LOOP_H_
#define SRC_NETSIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/netsim/sim_time.h"
#include "src/util/flat_hash.h"

namespace natpunch {

namespace obs {
class Counter;
class Gauge;
}  // namespace obs

class EventLoop;

// Intrusive timer: the owning object embeds the handle and binds one of its
// member functions; arming, cancelling, and firing never allocate. A handle
// may be re-armed from its own callback (the self-rescheduling keepalive
// pattern) and cancels itself on destruction, so a destroyed session can
// never leave a dangling timer behind.
class TimerHandle {
 public:
  TimerHandle() = default;
  ~TimerHandle() { Cancel(); }

  TimerHandle(const TimerHandle&) = delete;
  TimerHandle& operator=(const TimerHandle&) = delete;

  // Bind `obj`'s member function as the callback: Bind<&Foo::Tick>(foo).
  // Rebinding while armed is allowed; the pending firing uses the new thunk.
  // `obj` must be the object this handle is embedded in (directly or via
  // nested members): the handle stores only the 32-bit offset between
  // itself and its owner, which is what keeps it at 56 bytes — at swarm
  // scale every handle byte is multiplied by hundreds of thousands of
  // sessions (see DESIGN.md "Memory footprint").
  template <auto Method, typename T>
  void Bind(T* obj) {
    const ptrdiff_t offset =
        reinterpret_cast<const char*>(obj) - reinterpret_cast<const char*>(this);
    obj_offset_ = static_cast<int32_t>(offset);
    thunk_ = [](TimerHandle* h) {
      auto* owner = reinterpret_cast<T*>(reinterpret_cast<char*>(h) + h->obj_offset_);
      (owner->*Method)();
    };
  }

  bool pending() const { return state_ != State::kIdle; }
  SimTime deadline() const { return SimTime(deadline_); }

  // Cancel if armed. Returns true if the timer was still pending.
  bool Cancel();

 private:
  friend class EventLoop;

  enum class State : uint8_t {
    kIdle,    // not armed
    kInWheel, // linked into a wheel slot (or the overflow list)
    kInHeap,  // migrated to the heap; heap_timers_ maps id -> this
  };

  EventLoop* loop_ = nullptr;
  void (*thunk_)(TimerHandle*) = nullptr;
  int64_t deadline_ = 0;  // micros
  uint64_t id_ = 0;       // full event id (kind bit set)
  TimerHandle* prev_ = nullptr;
  TimerHandle* next_ = nullptr;
  int32_t obj_offset_ = 0;  // owner address minus handle address (Bind)
  State state_ = State::kIdle;
  uint8_t level_ = 0;  // wheel position while kInWheel (kOverflowLevel = list)
  uint8_t slot_ = 0;
};
static_assert(sizeof(TimerHandle) == 56,
              "TimerHandle is a per-session multiplied cost; keep it tight");

class EventLoop {
 public:
  using EventId = uint64_t;
  static constexpr EventId kInvalidEventId = 0;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  SimTime now() const { return now_; }

  // Schedule `fn` to run at absolute time `at` (clamped to now).
  EventId ScheduleAt(SimTime at, std::function<void()> fn);
  // Schedule `fn` to run `delay` from now.
  EventId ScheduleAfter(SimDuration delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Cancel a pending event. Returns true if it was still pending.
  bool Cancel(EventId id);

  // Arm `timer` to fire at `at` (clamped to now) / after `delay`. An already
  // armed handle is re-armed (the old deadline is cancelled first). The
  // handle must stay alive and at a stable address until it fires or is
  // cancelled — it is linked into the loop's structures by pointer.
  void ScheduleTimerAt(SimTime at, TimerHandle* timer);
  void ScheduleTimerAfter(SimDuration delay, TimerHandle* timer) {
    ScheduleTimerAt(now_ + delay, timer);
  }
  // Cancel an armed timer. Returns true if it was still pending.
  bool CancelTimer(TimerHandle* timer);

  // Differential oracle switch: with the wheel off, timers go straight to
  // the heap at schedule time. Either mode produces the identical dispatch
  // sequence; tests compare trace dumps across the two to prove it. Flip
  // only while no timers are pending. Survives Reset().
  void SetTimerWheelEnabled(bool enabled) { wheel_enabled_ = enabled; }
  bool timer_wheel_enabled() const { return wheel_enabled_; }

  // Run the single earliest pending event, advancing the clock to it.
  // Returns false if no events are pending.
  bool RunOne();

  // Run all events with time <= deadline, then set the clock to deadline.
  void RunUntil(SimTime deadline);
  void RunFor(SimDuration d) { RunUntil(now_ + d); }

  // Run until the queue drains or `max_events` have fired. Returns the
  // number of events processed. A cap guards against runaway feedback loops
  // (e.g. two misconfigured nodes ping-ponging a packet forever).
  size_t RunUntilIdle(size_t max_events = 10'000'000);

  bool idle() const { return live_ == 0; }
  size_t pending_count() const { return live_; }
  uint64_t events_processed() const { return events_processed_; }
  // Timers currently parked in the wheel (not yet migrated to the heap).
  size_t wheel_pending() const { return wheel_size_; }

  // Return to the pristine just-constructed state (clock at 0, no pending
  // events, counters zeroed) while KEEPING the heap, ring, and timer-map
  // capacities, so a reused loop schedules without allocating. Pending
  // closures are destroyed and armed timers detach (their handles read
  // !pending()). Lets fleet workers run thousands of device simulations on
  // one arena. Attached metrics handles and the wheel-enabled flag survive a
  // Reset (the registry the handles live in is reset separately by
  // Network::Reset).
  void Reset();

  // Observability hookup (Network::EnableMetrics): `dispatched` counts every
  // fired event, `heap_depth` tracks the pending-event level and its
  // high-water mark, `timers_wheel`/`timers_heap` split timer arms by which
  // tier admitted them, and `wheel_cascades` counts entries re-filed when a
  // higher wheel level spills into a lower one. Any may be null; recording
  // is allocation-free.
  void AttachMetrics(obs::Counter* dispatched, obs::Gauge* heap_depth,
                     obs::Counter* timers_wheel = nullptr, obs::Counter* timers_heap = nullptr,
                     obs::Counter* wheel_cascades = nullptr) {
    metric_dispatched_ = dispatched;
    metric_heap_depth_ = heap_depth;
    metric_timers_wheel_ = timers_wheel;
    metric_timers_heap_ = timers_heap;
    metric_wheel_cascades_ = wheel_cascades;
  }

 private:
  // Event ids carry the scheduling tier in bit 0 (0 = closure event, 1 =
  // timer) over a shared sequence counter, so (time, id) comparisons order
  // cross-tier ties by schedule order and the heap entry stays 16 bytes.
  static constexpr uint64_t kTimerKindBit = 1;
  static uint64_t SeqOf(EventId id) { return id >> 1; }
  static bool IsTimerId(EventId id) { return (id & kTimerKindBit) != 0; }

  struct HeapEntry {
    int64_t time;  // micros
    EventId id;
  };
  static bool Earlier(const HeapEntry& a, const HeapEntry& b) {
    return a.time < b.time || (a.time == b.time && a.id < b.id);
  }
  // 4-ary min-heap primitives over heap_; the minimum sits at heap_[0].
  void HeapPush(HeapEntry entry);
  void HeapPopTop();

  struct Slot {
    std::function<void()> fn;
    bool pending = false;
  };

  // --- Hierarchical timing wheel (timer staging tier) -----------------------
  //
  // Geometry: 4 levels of 64 slots at a 2^14 us (~16.4 ms) base granularity.
  // Level k slot spans 64^k base slots, so the horizons are ~1.05 s, ~67 s,
  // ~72 min, and ~76 h; anything farther sits in an intrusive overflow list
  // rescanned each time the clock enters a new level-3 window. wheel_cursor_
  // is the absolute level-0 slot index of the next unflushed slot: every
  // slot below it has already been migrated into the heap, and a timer whose
  // slot is below the cursor is admitted straight to the heap.
  static constexpr int kWheelLevels = 4;
  static constexpr int kWheelSlotBits = 6;
  static constexpr uint64_t kWheelSlots = 1ull << kWheelSlotBits;
  static constexpr int kWheelGranularityBits = 14;
  static constexpr uint8_t kOverflowLevel = kWheelLevels;

  static uint64_t SlotIndexFor(int64_t time_micros) {
    return static_cast<uint64_t>(time_micros) >> kWheelGranularityBits;
  }

  // File an armed handle into the wheel level matching its distance from the
  // cursor (or the overflow list past the level-3 horizon).
  void WheelFile(TimerHandle* timer);
  void WheelUnlink(TimerHandle* timer);
  // Migrate every entry of level-0 slot `slot` into the heap.
  void WheelFlushSlot(uint64_t slot);
  // Re-file every entry of level `level`'s slot covering the cursor; runs
  // when the cursor enters a new level-`level` window.
  void WheelCascade(int level);
  // Re-file overflow entries that fell inside the level-3 horizon.
  void WheelRescanOverflow();
  // Cascade every level whose window the cursor just entered (cursor must
  // sit on a level-1 boundary). Called eagerly the moment the cursor lands
  // there so covering slots never hold current-window entries between
  // advances.
  void WheelBoundaryCascade();
  // Flush all slots whose start time is <= `time_micros` into the heap.
  void WheelAdvanceTo(int64_t time_micros);
  // Earliest possible deadline of any wheel-resident timer (slot start times
  // lower-bound the deadlines inside), or INT64_MAX when the wheel is empty.
  int64_t WheelLowerBound();

  // Move the timer into the heap tier: push its (deadline, id) key and index
  // the handle by id so cancellation and dispatch can find it.
  void TimerToHeap(TimerHandle* timer);

  // Ensure the heap top is the globally next event (all wheel slots at or
  // before its time flushed) and due at or before `limit`. Returns false if
  // nothing is due by `limit`.
  bool PrepareTop(int64_t limit);

  // Slot for a closure event id, or nullptr if the id was never issued /
  // already retired out of the window.
  Slot* SlotFor(EventId id);
  // Pop and run the heap top. Precondition: PrepareTop() returned true (the
  // top is live and every earlier timer has been flushed from the wheel).
  void DispatchTop();
  // Drop dead entries off the heap top: tombstoned closure slots and timer
  // ids no longer present in heap_timers_ (cancelled or re-armed).
  void PopDead();
  // Retire fully-processed slots from the front of the sequence window.
  void CompactFront();
  // Make room in the ring for one more sequence in [base_seq_, next_seq_].
  void EnsureSlotCapacity();

  SimTime now_;
  uint64_t next_seq_ = 1;
  uint64_t base_seq_ = 1;  // earliest sequence still in the ring window
  uint64_t events_processed_ = 0;
  size_t live_ = 0;  // scheduled, not yet fired or cancelled (both tiers)
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;  // ring buffer; size is a power of two
  size_t ring_mask_ = 0;     // slots_.size() - 1

  // Timer tier state. heap_timers_ maps the id of every live heap-resident
  // timer to its handle; a heap entry whose id misses the map is a stale key
  // from a cancel/re-arm and is dropped by PopDead. Indexing by id (not
  // handle pointer) makes a destroyed owner harmless: its destructor erases
  // the mapping and the orphaned heap key can never reach freed memory.
  FlatHashMap<uint64_t, TimerHandle*> heap_timers_;
  TimerHandle* wheel_slots_[kWheelLevels][kWheelSlots] = {};
  uint64_t wheel_occupied_[kWheelLevels] = {};  // per-level slot bitmaps
  TimerHandle* overflow_head_ = nullptr;
  uint64_t wheel_cursor_ = 0;  // absolute level-0 index of next unflushed slot
  size_t wheel_size_ = 0;      // wheel + overflow entries
  int64_t wheel_lb_cache_ = -1;  // memoized WheelLowerBound (-1 = dirty)
  bool wheel_enabled_ = true;

  obs::Counter* metric_dispatched_ = nullptr;
  obs::Gauge* metric_heap_depth_ = nullptr;
  obs::Counter* metric_timers_wheel_ = nullptr;
  obs::Counter* metric_timers_heap_ = nullptr;
  obs::Counter* metric_wheel_cascades_ = nullptr;
};

inline bool TimerHandle::Cancel() {
  return loop_ != nullptr && loop_->CancelTimer(this);
}

}  // namespace natpunch

#endif  // SRC_NETSIM_EVENT_LOOP_H_
