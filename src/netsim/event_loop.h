// Deterministic discrete-event scheduler.
//
// Events fire in strict (time, insertion-sequence) order, so two events
// scheduled for the same instant run in the order they were scheduled. This
// determinism is load-bearing: the hole-punching experiments depend on
// reproducing exact packet interleavings (e.g. whether A's SYN reaches B's
// NAT before B's SYN leaves it).
//
// Implementation: a 4-ary min-heap of (time, sequence) keys with lazy
// cancellation. The (time, id) key is a strict total order (ids are unique),
// so the pop sequence — and therefore every packet interleaving — is
// identical to any other correct priority queue; the wider fan-out just
// halves the tree depth and keeps sift paths in fewer cache lines, which
// matters at ~10M schedules per fleet run. Cancel() only flips the event's
// slot to non-pending; the tombstoned heap entry is discarded when it
// surfaces at the top. Callbacks
// live in a power-of-two ring buffer indexed by event id (ids are issued
// sequentially, so the slot for id i sits at i & ring_mask_), which gives
// O(1) id lookup with no hashing. Unlike the std::deque it replaced — which
// allocated and freed ~512-byte blocks continuously as the id window slid —
// the ring reaches a high-water size and then never touches the heap again,
// which is what keeps the steady-state packet path allocation-free.

#ifndef SRC_NETSIM_EVENT_LOOP_H_
#define SRC_NETSIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/netsim/sim_time.h"

namespace natpunch {

namespace obs {
class Counter;
class Gauge;
}  // namespace obs

class EventLoop {
 public:
  using EventId = uint64_t;
  static constexpr EventId kInvalidEventId = 0;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  SimTime now() const { return now_; }

  // Schedule `fn` to run at absolute time `at` (clamped to now).
  EventId ScheduleAt(SimTime at, std::function<void()> fn);
  // Schedule `fn` to run `delay` from now.
  EventId ScheduleAfter(SimDuration delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Cancel a pending event. Returns true if it was still pending.
  bool Cancel(EventId id);

  // Run the single earliest pending event, advancing the clock to it.
  // Returns false if no events are pending.
  bool RunOne();

  // Run all events with time <= deadline, then set the clock to deadline.
  void RunUntil(SimTime deadline);
  void RunFor(SimDuration d) { RunUntil(now_ + d); }

  // Run until the queue drains or `max_events` have fired. Returns the
  // number of events processed. A cap guards against runaway feedback loops
  // (e.g. two misconfigured nodes ping-ponging a packet forever).
  size_t RunUntilIdle(size_t max_events = 10'000'000);

  bool idle() const { return live_ == 0; }
  size_t pending_count() const { return live_; }
  uint64_t events_processed() const { return events_processed_; }

  // Return to the pristine just-constructed state (clock at 0, no pending
  // events, counters zeroed) while KEEPING the heap and ring capacities, so
  // a reused loop schedules without allocating. Pending closures are
  // destroyed. Lets fleet workers run thousands of device simulations on one
  // arena. Attached metrics handles survive a Reset (the registry they live
  // in is reset separately by Network::Reset).
  void Reset();

  // Observability hookup (Network::EnableMetrics): `dispatched` counts every
  // fired event, `heap_depth` tracks the pending-event level and its
  // high-water mark. Either may be null; recording is allocation-free.
  void AttachMetrics(obs::Counter* dispatched, obs::Gauge* heap_depth) {
    metric_dispatched_ = dispatched;
    metric_heap_depth_ = heap_depth;
  }

 private:
  struct HeapEntry {
    int64_t time;  // micros
    EventId id;
  };
  static bool Earlier(const HeapEntry& a, const HeapEntry& b) {
    return a.time < b.time || (a.time == b.time && a.id < b.id);
  }
  // 4-ary min-heap primitives over heap_; the minimum sits at heap_[0].
  void HeapPush(HeapEntry entry);
  void HeapPopTop();

  struct Slot {
    std::function<void()> fn;
    bool pending = false;
  };

  // Slot for `id`, or nullptr if the id was never issued / already retired
  // out of the window.
  Slot* SlotFor(EventId id);
  // Pop and run the heap top. Precondition: PopDead() has run and the heap
  // is non-empty (the top is live).
  void DispatchTop();
  // Drop tombstoned (cancelled) entries off the heap top so heap_.front()
  // is the earliest still-pending event.
  void PopDead();
  // Retire fully-processed slots from the front of the id window.
  void CompactFront();
  // Make room in the ring for one more id in [base_id_, next_id_].
  void EnsureSlotCapacity();

  SimTime now_;
  EventId next_id_ = 1;
  EventId base_id_ = 1;  // earliest id still in the ring window
  uint64_t events_processed_ = 0;
  size_t live_ = 0;  // scheduled, not yet fired or cancelled
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;  // ring buffer; size is a power of two
  size_t ring_mask_ = 0;     // slots_.size() - 1
  obs::Counter* metric_dispatched_ = nullptr;
  obs::Gauge* metric_heap_depth_ = nullptr;
};

}  // namespace natpunch

#endif  // SRC_NETSIM_EVENT_LOOP_H_
