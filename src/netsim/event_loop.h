// Deterministic discrete-event scheduler.
//
// Events fire in strict (time, insertion-sequence) order, so two events
// scheduled for the same instant run in the order they were scheduled. This
// determinism is load-bearing: the hole-punching experiments depend on
// reproducing exact packet interleavings (e.g. whether A's SYN reaches B's
// NAT before B's SYN leaves it).

#ifndef SRC_NETSIM_EVENT_LOOP_H_
#define SRC_NETSIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <utility>

#include "src/netsim/sim_time.h"

namespace natpunch {

class EventLoop {
 public:
  using EventId = uint64_t;
  static constexpr EventId kInvalidEventId = 0;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  SimTime now() const { return now_; }

  // Schedule `fn` to run at absolute time `at` (clamped to now).
  EventId ScheduleAt(SimTime at, std::function<void()> fn);
  // Schedule `fn` to run `delay` from now.
  EventId ScheduleAfter(SimDuration delay, std::function<void()> fn);

  // Cancel a pending event. Returns true if it was still pending.
  bool Cancel(EventId id);

  // Run the single earliest pending event, advancing the clock to it.
  // Returns false if no events are pending.
  bool RunOne();

  // Run all events with time <= deadline, then set the clock to deadline.
  void RunUntil(SimTime deadline);
  void RunFor(SimDuration d) { RunUntil(now_ + d); }

  // Run until the queue drains or `max_events` have fired. Returns the
  // number of events processed. A cap guards against runaway feedback loops
  // (e.g. two misconfigured nodes ping-ponging a packet forever).
  size_t RunUntilIdle(size_t max_events = 10'000'000);

  bool idle() const { return queue_.empty(); }
  size_t pending_count() const { return queue_.size(); }
  uint64_t events_processed() const { return events_processed_; }

 private:
  using Key = std::pair<int64_t, EventId>;  // (time micros, sequence)

  SimTime now_;
  EventId next_id_ = 1;
  uint64_t events_processed_ = 0;
  std::map<Key, std::function<void()>> queue_;
  std::unordered_map<EventId, Key> index_;
};

}  // namespace natpunch

#endif  // SRC_NETSIM_EVENT_LOOP_H_
