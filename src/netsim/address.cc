#include "src/netsim/address.h"

#include <cstdio>
#include <cstdlib>

namespace natpunch {

std::optional<Ipv4Address> Ipv4Address::Parse(std::string_view text) {
  uint32_t octets[4];
  int index = 0;
  uint32_t current = 0;
  bool have_digit = false;
  for (char c : text) {
    if (c >= '0' && c <= '9') {
      current = current * 10 + static_cast<uint32_t>(c - '0');
      if (current > 255) {
        return std::nullopt;
      }
      have_digit = true;
    } else if (c == '.') {
      if (!have_digit || index >= 3) {
        return std::nullopt;
      }
      octets[index++] = current;
      current = 0;
      have_digit = false;
    } else {
      return std::nullopt;
    }
  }
  if (!have_digit || index != 3) {
    return std::nullopt;
  }
  octets[3] = current;
  return FromOctets(static_cast<uint8_t>(octets[0]), static_cast<uint8_t>(octets[1]),
                    static_cast<uint8_t>(octets[2]), static_cast<uint8_t>(octets[3]));
}

bool Ipv4Address::IsPrivate() const {
  const uint32_t b = bits_;
  if ((b >> 24) == 10) {
    return true;
  }
  if ((b >> 20) == ((172u << 4) | 1)) {  // 172.16.0.0/12
    return true;
  }
  if ((b >> 16) == ((192u << 8) | 168)) {  // 192.168.0.0/16
    return true;
  }
  return false;
}

std::string Ipv4Address::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", bits_ >> 24, (bits_ >> 16) & 0xff,
                (bits_ >> 8) & 0xff, bits_ & 0xff);
  return buf;
}

std::string Endpoint::ToString() const {
  return ip.ToString() + ":" + std::to_string(port);
}

std::optional<Endpoint> Endpoint::Parse(std::string_view text) {
  const size_t colon = text.rfind(':');
  if (colon == std::string_view::npos) {
    return std::nullopt;
  }
  auto ip = Ipv4Address::Parse(text.substr(0, colon));
  if (!ip) {
    return std::nullopt;
  }
  uint32_t port = 0;
  const std::string_view port_text = text.substr(colon + 1);
  if (port_text.empty()) {
    return std::nullopt;
  }
  for (char c : port_text) {
    if (c < '0' || c > '9') {
      return std::nullopt;
    }
    port = port * 10 + static_cast<uint32_t>(c - '0');
    if (port > 65535) {
      return std::nullopt;
    }
  }
  return Endpoint(*ip, static_cast<uint16_t>(port));
}

std::optional<Ipv4Prefix> Ipv4Prefix::Parse(std::string_view text) {
  const size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    return std::nullopt;
  }
  auto base = Ipv4Address::Parse(text.substr(0, slash));
  if (!base) {
    return std::nullopt;
  }
  int length = 0;
  const std::string_view len_text = text.substr(slash + 1);
  if (len_text.empty() || len_text.size() > 2) {
    return std::nullopt;
  }
  for (char c : len_text) {
    if (c < '0' || c > '9') {
      return std::nullopt;
    }
    length = length * 10 + (c - '0');
  }
  if (length > 32) {
    return std::nullopt;
  }
  return Ipv4Prefix(*base, length);
}

bool Ipv4Prefix::Contains(Ipv4Address addr) const {
  if (length == 0) {
    return true;
  }
  const uint32_t mask = length >= 32 ? 0xffffffffu : ~((1u << (32 - length)) - 1);
  return (addr.bits() & mask) == (base.bits() & mask);
}

std::string Ipv4Prefix::ToString() const {
  return base.ToString() + "/" + std::to_string(length);
}

}  // namespace natpunch
