// Virtual time for the discrete-event simulator.
//
// All protocol timing in this library (retransmission timers, NAT idle
// timeouts, keep-alive intervals, hole punch retry delays) is expressed in
// SimDuration and evaluated against the simulated clock, never the wall
// clock. This is what makes the paper's timing races — SYNs crossing on the
// wire, a first packet arriving before the far side has punched — exactly
// reproducible and sweepable in benchmarks.

#ifndef SRC_NETSIM_SIM_TIME_H_
#define SRC_NETSIM_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace natpunch {

class SimDuration {
 public:
  constexpr SimDuration() : micros_(0) {}
  constexpr explicit SimDuration(int64_t micros) : micros_(micros) {}

  constexpr int64_t micros() const { return micros_; }
  constexpr int64_t millis() const { return micros_ / 1000; }
  constexpr double seconds() const { return static_cast<double>(micros_) / 1e6; }

  constexpr SimDuration operator+(SimDuration o) const { return SimDuration(micros_ + o.micros_); }
  constexpr SimDuration operator-(SimDuration o) const { return SimDuration(micros_ - o.micros_); }
  constexpr SimDuration operator*(int64_t k) const { return SimDuration(micros_ * k); }
  constexpr SimDuration operator/(int64_t k) const { return SimDuration(micros_ / k); }
  constexpr auto operator<=>(const SimDuration&) const = default;

  std::string ToString() const;

 private:
  int64_t micros_;
};

constexpr SimDuration Micros(int64_t n) { return SimDuration(n); }
constexpr SimDuration Millis(int64_t n) { return SimDuration(n * 1000); }
constexpr SimDuration Seconds(int64_t n) { return SimDuration(n * 1000000); }

class SimTime {
 public:
  constexpr SimTime() : micros_(0) {}
  constexpr explicit SimTime(int64_t micros) : micros_(micros) {}

  constexpr int64_t micros() const { return micros_; }

  constexpr SimTime operator+(SimDuration d) const { return SimTime(micros_ + d.micros()); }
  constexpr SimTime operator-(SimDuration d) const { return SimTime(micros_ - d.micros()); }
  constexpr SimDuration operator-(SimTime o) const { return SimDuration(micros_ - o.micros_); }
  constexpr auto operator<=>(const SimTime&) const = default;

  std::string ToString() const;

 private:
  int64_t micros_;
};

}  // namespace natpunch

#endif  // SRC_NETSIM_SIM_TIME_H_
