#include "src/netsim/fault.h"

#include <utility>

namespace natpunch {

void FaultScheduler::Execute(const std::string& node, const std::string& label,
                             const std::function<void()>& action) {
  ++faults_executed_;
  network_->trace().RecordEvent(network_->now(), node, TraceEvent::kFault, label);
  action();
}

void FaultScheduler::Schedule(SimTime at, std::string node, std::string label,
                              std::function<void()> action) {
  ++faults_scheduled_;
  network_->event_loop().ScheduleAt(
      at, [this, node = std::move(node), label = std::move(label),
           action = std::move(action)] { Execute(node, label, action); });
}

void FaultScheduler::LinkDown(SimTime at, Lan* lan, SimDuration downtime) {
  Schedule(at, lan->name(), "link down", [lan] { lan->set_up(false); });
  if (downtime.micros() > 0) {
    LinkUp(at + downtime, lan);
  }
}

void FaultScheduler::LinkUp(SimTime at, Lan* lan) {
  Schedule(at, lan->name(), "link up", [lan] { lan->set_up(true); });
}

void FaultScheduler::LatencySpike(SimTime at, Lan* lan, SimDuration extra,
                                  SimDuration duration) {
  Schedule(at, lan->name(), "latency spike +" + extra.ToString(), [this, lan, extra, duration] {
    const SimDuration before = lan->config().latency;
    LanConfig spiked = lan->config();
    spiked.latency = before + extra;
    lan->set_config(spiked);
    Schedule(network_->now() + duration, lan->name(), "latency restore", [lan, before] {
      LanConfig restored = lan->config();
      restored.latency = before;
      lan->set_config(restored);
    });
  });
}

void FaultScheduler::BurstLoss(SimTime at, Lan* lan, const GilbertElliottConfig& params,
                               SimDuration duration) {
  Schedule(at, lan->name(), "burst loss start", [this, lan, params, duration] {
    const GilbertElliottConfig before = lan->config().burst;
    LanConfig bursty = lan->config();
    bursty.burst = params;
    bursty.burst.enabled = true;
    lan->set_config(bursty);
    Schedule(network_->now() + duration, lan->name(), "burst loss end", [lan, before] {
      LanConfig restored = lan->config();
      restored.burst = before;
      lan->set_config(restored);
    });
  });
}

void FaultScheduler::Mangle(SimTime at, Lan* lan, const MangleConfig& params,
                            SimDuration duration) {
  Schedule(at, lan->name(), "mangle start", [this, lan, params, duration] {
    const MangleConfig before = lan->config().mangle;
    LanConfig hostile = lan->config();
    hostile.mangle = params;
    lan->set_config(hostile);
    if (duration.micros() > 0) {
      Schedule(network_->now() + duration, lan->name(), "mangle end", [lan, before] {
        LanConfig restored = lan->config();
        restored.mangle = before;
        lan->set_config(restored);
      });
    }
  });
}

void FaultScheduler::At(SimTime at, std::string label, std::function<void()> action) {
  Schedule(at, "fault", std::move(label), std::move(action));
}

}  // namespace natpunch
