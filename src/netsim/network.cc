#include "src/netsim/network.h"

#include "src/util/logging.h"

namespace natpunch {

Network::Network(uint64_t seed) : rng_(seed) {
  SetLogTimeSource([this] { return loop_.now().micros(); });
}

Network::~Network() { SetLogTimeSource(nullptr); }

Lan* Network::CreateLan(std::string name, LanConfig config) {
  lans_.push_back(std::make_unique<Lan>(this, std::move(name), config));
  return lans_.back().get();
}

obs::MetricsRegistry* Network::EnableMetrics() {
  if (metrics_ == nullptr) {
    metrics_ = std::make_unique<obs::MetricsRegistry>();
    loop_.AttachMetrics(metrics_->GetCounter("loop.events_dispatched"),
                        metrics_->GetGauge("loop.heap_depth"),
                        metrics_->GetCounter("loop.timers_wheel"),
                        metrics_->GetCounter("loop.timers_heap"),
                        metrics_->GetCounter("loop.wheel_cascades"));
  }
  return metrics_.get();
}

void Network::Reset(uint64_t seed) {
  // Pending event closures may capture nodes/lans; destroy them first.
  loop_.Reset();
  // Nodes reference Lans (attachments), so nodes go before lans.
  nodes_.clear();
  lans_.clear();
  trace_.ClearAll();
  // Values restart per run; registrations (and their capacity) survive so
  // the next run's nodes re-register without allocating.
  if (metrics_ != nullptr) {
    metrics_->Reset();
  }
  rng_ = Rng(seed);
  next_packet_id_ = 1;
}

}  // namespace natpunch
