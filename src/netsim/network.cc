#include "src/netsim/network.h"

#include "src/util/logging.h"

namespace natpunch {

Network::Network(uint64_t seed) : rng_(seed) {
  SetLogTimeSource([this] { return loop_.now().micros(); });
}

Network::~Network() { SetLogTimeSource(nullptr); }

Lan* Network::CreateLan(std::string name, LanConfig config) {
  lans_.push_back(std::make_unique<Lan>(this, std::move(name), config));
  return lans_.back().get();
}

void Network::Reset(uint64_t seed) {
  // Pending event closures may capture nodes/lans; destroy them first.
  loop_.Reset();
  // Nodes reference Lans (attachments), so nodes go before lans.
  nodes_.clear();
  lans_.clear();
  trace_.ClearAll();
  rng_ = Rng(seed);
  next_packet_id_ = 1;
}

}  // namespace natpunch
