#include "src/netsim/network.h"

#include "src/util/logging.h"

namespace natpunch {

Network::Network(uint64_t seed) : rng_(seed) {
  SetLogTimeSource([this] { return loop_.now().micros(); });
}

Network::~Network() { SetLogTimeSource(nullptr); }

Lan* Network::CreateLan(std::string name, LanConfig config) {
  lans_.push_back(std::make_unique<Lan>(this, std::move(name), config));
  return lans_.back().get();
}

}  // namespace natpunch
