// Packet-level trace capture.
//
// Every hop (send, deliver, drop, NAT translation) can be recorded with the
// reason, which lets tests assert statements from the paper directly — e.g.
// "B's NAT dropped A's first SYN as unsolicited" or "NAT C hairpinned the
// datagram back inside". Disabled by default; recording costs nothing when
// off.
//
// The recorder is allocation-free on the hot path: node names are interned
// once (Node/Lan cache their TraceNodeId at construction) and the per-record
// detail text lives in a bounded inline buffer instead of a std::string, so
// recording a hop never touches the heap once the records vector has warmed
// up its capacity.

#ifndef SRC_NETSIM_TRACE_H_
#define SRC_NETSIM_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/netsim/packet.h"
#include "src/netsim/sim_time.h"

namespace natpunch {

enum class TraceEvent {
  kSend,                // node emitted a packet onto a LAN
  kDeliver,             // packet handed to a node's protocol stack
  kForward,             // router/NAT re-emitted a packet
  kDropLoss,            // random link loss
  kDropNoRoute,         // no routing table entry
  kDropNoNextHop,       // next hop not present on the LAN (no "ARP" answer)
  kDropTtl,             // TTL expired
  kDropPrivateLeak,     // private address routed onto the global realm
  kNatTranslateOut,     // NAT rewrote an outbound packet
  kNatTranslateIn,      // NAT rewrote an inbound packet
  kNatHairpin,          // NAT looped a packet back to the private side (§3.5)
  kNatDropUnsolicited,  // NAT silently dropped unsolicited inbound (§5.2 good)
  kNatRejectRst,        // NAT answered unsolicited SYN with RST (§5.2 bad)
  kNatRejectIcmp,       // NAT answered unsolicited packet with ICMP (§5.2 bad)
  kNatDropNoMapping,    // inbound with no matching translation
  kNatPayloadRewrite,   // NAT blindly rewrote an address inside the payload (§5.3)
  kLinkDown,            // packet dropped because the segment is administratively down
  kDropBurst,           // Gilbert-Elliott burst-loss drop (bad state)
  kFault,               // fault-injection engine executed a scheduled fault
  kCorrupt,             // adversarial fault: payload bits flipped in flight
  kDuplicate,           // adversarial fault: packet delivered twice
  kReorder,             // adversarial fault: packet held back past its peers
  kTruncate,            // adversarial fault: payload cut short in flight
};

std::string_view TraceEventName(TraceEvent e);

// Interned node name; index into the recorder's name table. 0 is the empty
// name.
using TraceNodeId = uint32_t;

// Bounded inline detail text. Every detail the simulator itself produces
// ("ip:port=>ip:port" at worst) fits; an append past the capacity replaces
// the tail with a "…" sentinel so a clipped diagnostic can never be read as
// complete. Building one never allocates, which is what lets the always-on
// NAT translate/drop paths record rich reasons without perturbing the
// zero-allocation packet path.
class TraceDetail {
 public:
  static constexpr size_t kCapacity = 55;

  TraceDetail() = default;
  TraceDetail(const char* text) { Append(std::string_view(text)); }    // NOLINT: implicit
  TraceDetail(std::string_view text) { Append(text); }                 // NOLINT: implicit
  TraceDetail(const std::string& text) { Append(std::string_view(text)); }  // NOLINT: implicit

  bool empty() const { return size() == 0; }
  std::string_view view() const { return std::string_view(buf_, size()); }
  // True when any Append overflowed the buffer; view() then ends in "…".
  bool truncated() const { return (size_ & kTruncatedBit) != 0; }

  TraceDetail& Append(std::string_view text);
  TraceDetail& Append(const Endpoint& ep);  // "a.b.c.d:port"
  TraceDetail& Append(Ipv4Address ip);      // "a.b.c.d"
  TraceDetail& Append(uint64_t value);

 private:
  // The truncation flag rides the high bit of size_ (size <= 55 < 128) so
  // the sentinel costs no extra record bytes.
  static constexpr uint8_t kTruncatedBit = 0x80;

  size_t size() const { return size_ & ~kTruncatedBit; }

  uint8_t size_ = 0;
  char buf_[kCapacity];
};

// Variadic builder: Detail(private_ep, "=>", mapped_ep).
template <typename... Parts>
TraceDetail Detail(const Parts&... parts) {
  TraceDetail d;
  (d.Append(parts), ...);
  return d;
}

class TraceRecorder;

struct TraceRecord {
  SimTime time;
  TraceNodeId node = 0;
  TraceEvent event = TraceEvent::kSend;
  uint64_t packet_id = 0;
  IpProtocol protocol = IpProtocol::kUdp;
  Endpoint src;
  Endpoint dst;
  TraceDetail detail;

  // Needs the recorder that produced the record to resolve the node name.
  std::string ToString(const TraceRecorder& trace) const;
};

class TraceRecorder {
 public:
  TraceRecorder() { names_.emplace_back(); }  // id 0 = ""

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // Find-or-add `name` in the table. Nodes and Lans intern once at
  // construction and record with the id thereafter.
  TraceNodeId Intern(std::string_view name);
  const std::string& NodeName(TraceNodeId id) const { return names_[id]; }
  // Number of interned names including id 0 (the empty name); every node id
  // is < name_count(). The Chrome-trace exporter iterates this to emit one
  // named timeline row per node.
  size_t name_count() const { return names_.size(); }

  void Record(SimTime time, TraceNodeId node, TraceEvent event, const Packet& packet,
              TraceDetail detail = TraceDetail()) {
    if (!enabled_) {
      return;
    }
    records_.push_back(TraceRecord{time, node, event, packet.id, packet.protocol, packet.src(),
                                   packet.dst(), detail});
  }

  // Convenience overload interning on the fly; test and tooling code keeps
  // passing plain strings.
  void Record(SimTime time, const std::string& node, TraceEvent event, const Packet& packet,
              TraceDetail detail = TraceDetail()) {
    if (!enabled_) {
      return;
    }
    Record(time, Intern(node), event, packet, detail);
  }

  // Record an event with no associated packet (fault-injection actions,
  // link state changes). packet_id stays 0 and the endpoints unspecified.
  void RecordEvent(SimTime time, TraceNodeId node, TraceEvent event, TraceDetail detail);
  void RecordEvent(SimTime time, const std::string& node, TraceEvent event, TraceDetail detail) {
    if (!enabled_) {
      return;
    }
    RecordEvent(time, Intern(node), event, detail);
  }

  const std::vector<TraceRecord>& records() const { return records_; }
  // Drops the records but keeps the vector capacity and the name table, so a
  // warmed-up recorder stays allocation-free after a Clear().
  void Clear() { records_.clear(); }
  // Full reset: also forgets interned names (Network::Reset).
  void ClearAll() {
    records_.clear();
    names_.resize(1);
    ids_.clear();
  }

  // Number of records matching `event` (optionally restricted to a node).
  size_t Count(TraceEvent event) const;
  size_t Count(TraceEvent event, TraceNodeId node) const;
  size_t Count(TraceEvent event, const std::string& node) const;

  // Dump all records, one line each; handy in failing tests.
  std::string Dump() const;

 private:
  // Heterogeneous lookup so Intern(string_view) — which every Node/Lan
  // constructor calls — never materializes a temporary std::string.
  struct NameHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const { return std::hash<std::string_view>{}(s); }
  };

  bool enabled_ = false;
  std::vector<TraceRecord> records_;
  std::vector<std::string> names_;  // id -> name
  std::unordered_map<std::string, TraceNodeId, NameHash, std::equal_to<>> ids_;  // name -> id
};

}  // namespace natpunch

#endif  // SRC_NETSIM_TRACE_H_
