// Packet-level trace capture.
//
// Every hop (send, deliver, drop, NAT translation) can be recorded with the
// reason, which lets tests assert statements from the paper directly — e.g.
// "B's NAT dropped A's first SYN as unsolicited" or "NAT C hairpinned the
// datagram back inside". Disabled by default; recording costs nothing when
// off.

#ifndef SRC_NETSIM_TRACE_H_
#define SRC_NETSIM_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/netsim/packet.h"
#include "src/netsim/sim_time.h"

namespace natpunch {

enum class TraceEvent {
  kSend,                // node emitted a packet onto a LAN
  kDeliver,             // packet handed to a node's protocol stack
  kForward,             // router/NAT re-emitted a packet
  kDropLoss,            // random link loss
  kDropNoRoute,         // no routing table entry
  kDropNoNextHop,       // next hop not present on the LAN (no "ARP" answer)
  kDropTtl,             // TTL expired
  kDropPrivateLeak,     // private address routed onto the global realm
  kNatTranslateOut,     // NAT rewrote an outbound packet
  kNatTranslateIn,      // NAT rewrote an inbound packet
  kNatHairpin,          // NAT looped a packet back to the private side (§3.5)
  kNatDropUnsolicited,  // NAT silently dropped unsolicited inbound (§5.2 good)
  kNatRejectRst,        // NAT answered unsolicited SYN with RST (§5.2 bad)
  kNatRejectIcmp,       // NAT answered unsolicited packet with ICMP (§5.2 bad)
  kNatDropNoMapping,    // inbound with no matching translation
  kNatPayloadRewrite,   // NAT blindly rewrote an address inside the payload (§5.3)
  kLinkDown,            // packet dropped because the segment is administratively down
  kDropBurst,           // Gilbert-Elliott burst-loss drop (bad state)
  kFault,               // fault-injection engine executed a scheduled fault
};

std::string_view TraceEventName(TraceEvent e);

struct TraceRecord {
  SimTime time;
  std::string node;
  TraceEvent event = TraceEvent::kSend;
  uint64_t packet_id = 0;
  IpProtocol protocol = IpProtocol::kUdp;
  Endpoint src;
  Endpoint dst;
  std::string detail;

  std::string ToString() const;
};

class TraceRecorder {
 public:
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void Record(SimTime time, const std::string& node, TraceEvent event, const Packet& packet,
              std::string detail = "");

  // Record an event with no associated packet (fault-injection actions,
  // link state changes). packet_id stays 0 and the endpoints unspecified.
  void RecordEvent(SimTime time, const std::string& node, TraceEvent event, std::string detail);

  const std::vector<TraceRecord>& records() const { return records_; }
  void Clear() { records_.clear(); }

  // Number of records matching `event` (optionally restricted to a node).
  size_t Count(TraceEvent event) const;
  size_t Count(TraceEvent event, const std::string& node) const;

  // Dump all records, one line each; handy in failing tests.
  std::string Dump() const;

 private:
  bool enabled_ = false;
  std::vector<TraceRecord> records_;
};

}  // namespace natpunch

#endif  // SRC_NETSIM_TRACE_H_
