// Base class for simulated network devices.
//
// A Node owns a set of interfaces, each attached to a Lan with an IPv4
// address, plus a small longest-prefix-match routing table. Hosts, NAT
// boxes, and the rendezvous servers are all Node subclasses; the only
// virtual is HandlePacket, invoked by the Lan when a packet is delivered to
// one of the node's interfaces.

#ifndef SRC_NETSIM_NODE_H_
#define SRC_NETSIM_NODE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/netsim/address.h"
#include "src/netsim/packet.h"
#include "src/netsim/trace.h"

namespace natpunch {

class Lan;
class Network;

class Node {
 public:
  Node(Network* network, std::string name);
  virtual ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // Attach an interface to `lan` with address `ip`; installs the connected
  // (on-link) route for ip/prefix_length. Returns the interface index.
  int AttachTo(Lan* lan, Ipv4Address ip, int prefix_length = 24);

  // Static routes. A route without a gateway treats the destination itself
  // as the on-link next hop.
  void AddRoute(Ipv4Prefix prefix, int iface, std::optional<Ipv4Address> gateway = std::nullopt);
  void AddDefaultRoute(int iface, Ipv4Address gateway);

  // Called by the Lan when a packet is delivered to interface `iface`.
  // Takes the packet by rvalue reference: forwarding devices mutate it in
  // place and re-emit it, so the delivery→translate→transmit chain moves the
  // Packet exactly twice (out of the Lan's slot pool and back in) instead of
  // once per call frame.
  virtual void HandlePacket(int iface, Packet&& packet) = 0;

  // Route `packet` by destination and emit it on the selected interface.
  // Fills in src_ip from the egress interface when unset. Returns false
  // (and records a trace drop) when no route matches.
  bool SendPacket(Packet&& packet);

  // Longest-prefix-match lookup. Returns the interface index and sets
  // *next_hop, or -1 when no route matches.
  int RouteLookup(Ipv4Address dst, Ipv4Address* next_hop) const;

  Ipv4Address iface_ip(int iface) const { return ifaces_[static_cast<size_t>(iface)].ip; }
  Lan* iface_lan(int iface) const { return ifaces_[static_cast<size_t>(iface)].lan; }
  size_t iface_count() const { return ifaces_.size(); }
  bool OwnsAddress(Ipv4Address a) const;

  const std::string& name() const { return name_; }
  // Interned name for allocation-free trace recording.
  TraceNodeId trace_id() const { return trace_id_; }
  Network* network() const { return network_; }

 protected:
  Network* network_;
  std::string name_;
  TraceNodeId trace_id_ = 0;

 private:
  struct Iface {
    Lan* lan;
    Ipv4Address ip;
  };
  struct Route {
    Ipv4Prefix prefix;
    int iface;
    std::optional<Ipv4Address> gateway;
  };

  std::vector<Iface> ifaces_;
  std::vector<Route> routes_;

  // One-entry route cache for SendPacket. Most nodes converse with a handful
  // of destinations, and the routing table is static after topology setup,
  // so the longest-prefix scan is pure per destination between AddRoute
  // calls (which invalidate the cache).
  Ipv4Address cached_dst_;
  Ipv4Address cached_next_hop_;
  int cached_iface_ = -1;
};

}  // namespace natpunch

#endif  // SRC_NETSIM_NODE_H_
