#include "src/netsim/trace.h"

namespace natpunch {

std::string_view TraceEventName(TraceEvent e) {
  switch (e) {
    case TraceEvent::kSend:
      return "SEND";
    case TraceEvent::kDeliver:
      return "DELIVER";
    case TraceEvent::kForward:
      return "FORWARD";
    case TraceEvent::kDropLoss:
      return "DROP_LOSS";
    case TraceEvent::kDropNoRoute:
      return "DROP_NO_ROUTE";
    case TraceEvent::kDropNoNextHop:
      return "DROP_NO_NEXT_HOP";
    case TraceEvent::kDropTtl:
      return "DROP_TTL";
    case TraceEvent::kDropPrivateLeak:
      return "DROP_PRIVATE_LEAK";
    case TraceEvent::kNatTranslateOut:
      return "NAT_OUT";
    case TraceEvent::kNatTranslateIn:
      return "NAT_IN";
    case TraceEvent::kNatHairpin:
      return "NAT_HAIRPIN";
    case TraceEvent::kNatDropUnsolicited:
      return "NAT_DROP_UNSOLICITED";
    case TraceEvent::kNatRejectRst:
      return "NAT_REJECT_RST";
    case TraceEvent::kNatRejectIcmp:
      return "NAT_REJECT_ICMP";
    case TraceEvent::kNatDropNoMapping:
      return "NAT_DROP_NO_MAPPING";
    case TraceEvent::kNatPayloadRewrite:
      return "NAT_PAYLOAD_REWRITE";
    case TraceEvent::kLinkDown:
      return "LINK_DOWN";
    case TraceEvent::kDropBurst:
      return "DROP_BURST";
    case TraceEvent::kFault:
      return "FAULT";
  }
  return "?";
}

std::string TraceRecord::ToString() const {
  std::string out = time.ToString() + " " + node + " " + std::string(TraceEventName(event)) + " " +
                    std::string(IpProtocolName(protocol)) + " " + src.ToString() + "->" +
                    dst.ToString() + " #" + std::to_string(packet_id);
  if (!detail.empty()) {
    out += " (" + detail + ")";
  }
  return out;
}

void TraceRecorder::Record(SimTime time, const std::string& node, TraceEvent event,
                           const Packet& packet, std::string detail) {
  if (!enabled_) {
    return;
  }
  records_.push_back(TraceRecord{time, node, event, packet.id, packet.protocol, packet.src(),
                                 packet.dst(), std::move(detail)});
}

void TraceRecorder::RecordEvent(SimTime time, const std::string& node, TraceEvent event,
                                std::string detail) {
  if (!enabled_) {
    return;
  }
  TraceRecord record;
  record.time = time;
  record.node = node;
  record.event = event;
  record.detail = std::move(detail);
  records_.push_back(std::move(record));
}

size_t TraceRecorder::Count(TraceEvent event) const {
  size_t n = 0;
  for (const auto& r : records_) {
    if (r.event == event) {
      ++n;
    }
  }
  return n;
}

size_t TraceRecorder::Count(TraceEvent event, const std::string& node) const {
  size_t n = 0;
  for (const auto& r : records_) {
    if (r.event == event && r.node == node) {
      ++n;
    }
  }
  return n;
}

std::string TraceRecorder::Dump() const {
  std::string out;
  for (const auto& r : records_) {
    out += r.ToString();
    out.push_back('\n');
  }
  return out;
}

}  // namespace natpunch
