#include "src/netsim/trace.h"

#include <cstdio>
#include <cstring>

namespace natpunch {

std::string_view TraceEventName(TraceEvent e) {
  switch (e) {
    case TraceEvent::kSend:
      return "SEND";
    case TraceEvent::kDeliver:
      return "DELIVER";
    case TraceEvent::kForward:
      return "FORWARD";
    case TraceEvent::kDropLoss:
      return "DROP_LOSS";
    case TraceEvent::kDropNoRoute:
      return "DROP_NO_ROUTE";
    case TraceEvent::kDropNoNextHop:
      return "DROP_NO_NEXT_HOP";
    case TraceEvent::kDropTtl:
      return "DROP_TTL";
    case TraceEvent::kDropPrivateLeak:
      return "DROP_PRIVATE_LEAK";
    case TraceEvent::kNatTranslateOut:
      return "NAT_OUT";
    case TraceEvent::kNatTranslateIn:
      return "NAT_IN";
    case TraceEvent::kNatHairpin:
      return "NAT_HAIRPIN";
    case TraceEvent::kNatDropUnsolicited:
      return "NAT_DROP_UNSOLICITED";
    case TraceEvent::kNatRejectRst:
      return "NAT_REJECT_RST";
    case TraceEvent::kNatRejectIcmp:
      return "NAT_REJECT_ICMP";
    case TraceEvent::kNatDropNoMapping:
      return "NAT_DROP_NO_MAPPING";
    case TraceEvent::kNatPayloadRewrite:
      return "NAT_PAYLOAD_REWRITE";
    case TraceEvent::kLinkDown:
      return "LINK_DOWN";
    case TraceEvent::kDropBurst:
      return "DROP_BURST";
    case TraceEvent::kFault:
      return "FAULT";
    case TraceEvent::kCorrupt:
      return "CORRUPT";
    case TraceEvent::kDuplicate:
      return "DUPLICATE";
    case TraceEvent::kReorder:
      return "REORDER";
    case TraceEvent::kTruncate:
      return "TRUNCATE";
  }
  return "?";
}

TraceDetail& TraceDetail::Append(std::string_view text) {
  if (truncated()) {
    return *this;  // tail already replaced by the sentinel; keep it last
  }
  const size_t used = size();
  size_t n = text.size();
  if (n <= kCapacity - used) {
    std::memcpy(buf_ + used, text.data(), n);
    size_ = static_cast<uint8_t>(used + n);
    return *this;
  }
  // Overflow: fill the buffer, then overwrite the last three bytes with a
  // UTF-8 ellipsis so the clipped detail is visibly incomplete.
  static_assert(kCapacity >= 3, "no room for the truncation sentinel");
  n = kCapacity - used;
  std::memcpy(buf_ + used, text.data(), n);
  std::memcpy(buf_ + kCapacity - 3, "\xe2\x80\xa6", 3);
  size_ = static_cast<uint8_t>(kCapacity) | kTruncatedBit;
  return *this;
}

TraceDetail& TraceDetail::Append(Ipv4Address ip) {
  char tmp[16];
  const uint32_t b = ip.bits();
  const int n = std::snprintf(tmp, sizeof(tmp), "%u.%u.%u.%u", (b >> 24) & 0xff, (b >> 16) & 0xff,
                              (b >> 8) & 0xff, b & 0xff);
  return Append(std::string_view(tmp, static_cast<size_t>(n)));
}

TraceDetail& TraceDetail::Append(const Endpoint& ep) {
  Append(ep.ip);
  char tmp[8];
  const int n = std::snprintf(tmp, sizeof(tmp), ":%u", ep.port);
  return Append(std::string_view(tmp, static_cast<size_t>(n)));
}

TraceDetail& TraceDetail::Append(uint64_t value) {
  char tmp[24];
  const int n = std::snprintf(tmp, sizeof(tmp), "%llu", static_cast<unsigned long long>(value));
  return Append(std::string_view(tmp, static_cast<size_t>(n)));
}

std::string TraceRecord::ToString(const TraceRecorder& trace) const {
  std::string out = time.ToString() + " " + trace.NodeName(node) + " " +
                    std::string(TraceEventName(event)) + " " +
                    std::string(IpProtocolName(protocol)) + " " + src.ToString() + "->" +
                    dst.ToString() + " #" + std::to_string(packet_id);
  if (!detail.empty()) {
    out += " (";
    out += detail.view();
    out += ")";
  }
  return out;
}

TraceNodeId TraceRecorder::Intern(std::string_view name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) {
    return it->second;
  }
  const TraceNodeId id = static_cast<TraceNodeId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

void TraceRecorder::RecordEvent(SimTime time, TraceNodeId node, TraceEvent event,
                                TraceDetail detail) {
  if (!enabled_) {
    return;
  }
  TraceRecord record;
  record.time = time;
  record.node = node;
  record.event = event;
  record.detail = detail;
  records_.push_back(record);
}

size_t TraceRecorder::Count(TraceEvent event) const {
  size_t n = 0;
  for (const auto& r : records_) {
    if (r.event == event) {
      ++n;
    }
  }
  return n;
}

size_t TraceRecorder::Count(TraceEvent event, TraceNodeId node) const {
  size_t n = 0;
  for (const auto& r : records_) {
    if (r.event == event && r.node == node) {
      ++n;
    }
  }
  return n;
}

size_t TraceRecorder::Count(TraceEvent event, const std::string& node) const {
  auto it = ids_.find(node);
  if (it == ids_.end()) {
    return 0;
  }
  return Count(event, it->second);
}

std::string TraceRecorder::Dump() const {
  std::string out;
  for (const auto& r : records_) {
    out += r.ToString(*this);
    out.push_back('\n');
  }
  return out;
}

}  // namespace natpunch
