// Deterministic fault-injection engine.
//
// A FaultScheduler executes a scripted timeline of faults against a running
// Network: link partitions (up/down), latency spikes, Gilbert-Elliott burst
// loss windows, and arbitrary custom actions (NAT reboots, rendezvous server
// restarts — anything a higher layer exposes as a callback). The timeline is
// data: the same plan against the same seed reproduces the same trace
// bit-for-bit, which is what lets chaos tests assert determinism and chaos
// benches sweep seeds. Every executed fault emits a kFault trace event (plus
// the per-packet kLinkDown/kDropBurst events the faulted components record),
// so a chaos run is auditable from the trace alone.

#ifndef SRC_NETSIM_FAULT_H_
#define SRC_NETSIM_FAULT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/netsim/network.h"

namespace natpunch {

class FaultScheduler {
 public:
  explicit FaultScheduler(Network* network) : network_(network) {}

  FaultScheduler(const FaultScheduler&) = delete;
  FaultScheduler& operator=(const FaultScheduler&) = delete;

  // Take `lan` down at `at`; bring it back after `downtime` (0 = stays down).
  void LinkDown(SimTime at, Lan* lan, SimDuration downtime);
  void LinkUp(SimTime at, Lan* lan);

  // Add `extra` one-way latency to `lan` during [at, at+duration). The
  // restore re-applies the latency captured when the spike started, so
  // non-overlapping spikes compose; overlapping spikes on one Lan restore to
  // the spiked value and are a plan-authoring error.
  void LatencySpike(SimTime at, Lan* lan, SimDuration extra, SimDuration duration);

  // Run `lan` under the Gilbert-Elliott parameters during [at, at+duration),
  // then restore the previous burst configuration.
  void BurstLoss(SimTime at, Lan* lan, const GilbertElliottConfig& params,
                 SimDuration duration);

  // Run `lan` under adversarial packet mangling (corruption, duplication,
  // reordering, truncation) during [at, at+duration), then restore the
  // previous mangle configuration. duration 0 = hostile until further notice.
  void Mangle(SimTime at, Lan* lan, const MangleConfig& params, SimDuration duration);

  // Execute an arbitrary fault action (NAT reboot via NatDevice::Reboot,
  // rendezvous server stop/start, mapping churn, ...). `label` names the
  // fault in the kFault trace event.
  void At(SimTime at, std::string label, std::function<void()> action);

  size_t faults_executed() const { return faults_executed_; }
  size_t faults_scheduled() const { return faults_scheduled_; }

 private:
  void Execute(const std::string& node, const std::string& label,
               const std::function<void()>& action);
  void Schedule(SimTime at, std::string node, std::string label, std::function<void()> action);

  Network* network_;
  size_t faults_executed_ = 0;
  size_t faults_scheduled_ = 0;
};

}  // namespace natpunch

#endif  // SRC_NETSIM_FAULT_H_
