// Network: the root object owning the event loop, RNG, trace recorder, and
// every Lan and Node in a simulation.
//
// Typical use:
//   Network net(/*seed=*/42);
//   Lan* internet = net.CreateLan("internet", {.latency = Millis(20), .is_global = true});
//   auto* host = net.Create<Host>("A");
//   host->AttachTo(internet, Ipv4Address::FromOctets(18, 181, 0, 31));
//   net.RunFor(Seconds(5));

#ifndef SRC_NETSIM_NETWORK_H_
#define SRC_NETSIM_NETWORK_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/netsim/event_loop.h"
#include "src/netsim/lan.h"
#include "src/netsim/node.h"
#include "src/netsim/trace.h"
#include "src/obs/metrics.h"
#include "src/util/rng.h"

namespace natpunch {

class Network {
 public:
  explicit Network(uint64_t seed = 1);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  EventLoop& event_loop() { return loop_; }
  SimTime now() const { return loop_.now(); }
  Rng& rng() { return rng_; }
  TraceRecorder& trace() { return trace_; }

  // Observability. EnableMetrics creates the registry (idempotent) and wires
  // the event loop's dispatch counter and heap-depth gauge; it must run
  // BEFORE nodes are created so they can register their metrics at
  // construction (Scenario::Options.metrics does this). metrics() is null
  // until then — instrumented components treat null as "disabled" and skip
  // recording entirely.
  obs::MetricsRegistry* EnableMetrics();
  obs::MetricsRegistry* metrics() const { return metrics_.get(); }

  Lan* CreateLan(std::string name, LanConfig config = LanConfig{});

  // Construct a node of type T (constructor signature T(Network*, args...))
  // owned by this Network.
  template <typename T, typename... Args>
  T* Create(Args&&... args) {
    auto node = std::make_unique<T>(this, std::forward<Args>(args)...);
    T* raw = node.get();
    nodes_.push_back(std::move(node));
    return raw;
  }

  uint64_t NextPacketId() { return next_packet_id_++; }

  // Tear down every Node and Lan and return to the state of a freshly
  // constructed Network(seed) — clock at 0, packet ids restarting at 1, no
  // trace records or interned names — while keeping the event loop's and
  // trace recorder's warmed-up capacities. A reused arena runs the next
  // simulation bit-identically to a fresh Network but without the per-run
  // allocation storm; the fleet runner leans on this.
  void Reset(uint64_t seed);

  void RunFor(SimDuration d) { loop_.RunFor(d); }
  void RunUntil(SimTime t) { loop_.RunUntil(t); }
  size_t RunUntilIdle(size_t max_events = 10'000'000) { return loop_.RunUntilIdle(max_events); }

 private:
  EventLoop loop_;
  Rng rng_;
  TraceRecorder trace_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::vector<std::unique_ptr<Lan>> lans_;
  std::vector<std::unique_ptr<Node>> nodes_;
  uint64_t next_packet_id_ = 1;
};

}  // namespace natpunch

#endif  // SRC_NETSIM_NETWORK_H_
