// The simulator's packet model.
//
// One Packet struct covers UDP datagrams, TCP segments, and the ICMP error
// reports some NATs send in response to unsolicited SYNs (§5.2). The TCP
// header carries just the fields the RFC 793 state machine needs; options,
// checksums, and fragmentation are out of scope because no experiment in the
// paper depends on them.

#ifndef SRC_NETSIM_PACKET_H_
#define SRC_NETSIM_PACKET_H_

#include <cstdint>
#include <string>

#include "src/netsim/address.h"
#include "src/netsim/payload.h"
#include "src/util/bytes.h"

namespace natpunch {

enum class IpProtocol : uint8_t {
  kUdp = 17,
  kTcp = 6,
  kIcmp = 1,
};

std::string_view IpProtocolName(IpProtocol p);

struct TcpHeader {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;
  uint32_t seq = 0;
  uint32_t ack_seq = 0;
  uint32_t window = 0;

  std::string FlagsString() const;
};

enum class IcmpType : uint8_t {
  kDestinationUnreachable = 3,
};

// ICMP error payloads embed enough of the original packet to let the sender
// match the error to a session, mirroring the real ICMP quotation rule.
struct IcmpHeader {
  IcmpType type = IcmpType::kDestinationUnreachable;
  uint8_t code = 0;  // 3 = port unreachable, 13 = administratively prohibited
  IpProtocol original_protocol = IpProtocol::kUdp;
  Endpoint original_src;
  Endpoint original_dst;
};

// Field order is deliberate: the fixed-size header fields pack ahead of the
// 72-byte payload so the whole struct lands on 136 bytes — every in-flight
// packet sits in a Lan delivery pool slot, so swarm-scale bursts multiply
// this size by hundreds of thousands.
struct Packet {
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  IpProtocol protocol = IpProtocol::kUdp;
  TcpHeader tcp;    // meaningful iff protocol == kTcp
  IcmpHeader icmp;  // meaningful iff protocol == kIcmp
  int ttl = 64;
  uint64_t id = 0;  // unique per packet, assigned by Network, for tracing
  Payload payload;  // small-buffer optimized: no heap for messages <= 64 bytes

  Endpoint src() const { return Endpoint(src_ip, src_port); }
  Endpoint dst() const { return Endpoint(dst_ip, dst_port); }
  void set_src(Endpoint e) {
    src_ip = e.ip;
    src_port = e.port;
  }
  void set_dst(Endpoint e) {
    dst_ip = e.ip;
    dst_port = e.port;
  }

  // Total size in bytes as a real packet would be (IP + transport headers +
  // payload); used by benchmarks that account bandwidth.
  size_t WireSize() const;

  std::string Summary() const;
};

static_assert(sizeof(Packet) <= 136, "Packet footprint budget; see DESIGN.md Memory footprint");

}  // namespace natpunch

#endif  // SRC_NETSIM_PACKET_H_
