// Asynchronous UDP sockets over the simulator.
//
// Matches the shape of a Berkeley UDP socket: bind to a local port, send
// datagrams anywhere, and receive via callback. A single UDP socket can talk
// to the rendezvous server and to any number of peers simultaneously, which
// is exactly the property UDP hole punching relies on (§3.2).

#ifndef SRC_TRANSPORT_UDP_H_
#define SRC_TRANSPORT_UDP_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "src/netsim/address.h"
#include "src/netsim/packet.h"
#include "src/util/bytes.h"
#include "src/util/flat_hash.h"
#include "src/util/result.h"

namespace natpunch {

class Host;
class UdpStack;

class UdpSocket {
 public:
  using ReceiveCallback = std::function<void(const Endpoint& from, const Payload& payload)>;
  // Invoked when an ICMP error arrives for a datagram this socket sent.
  using ErrorCallback = std::function<void(const Endpoint& dst, ErrorCode code)>;

  UdpSocket(UdpStack* stack, uint16_t port);

  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  // Send a datagram to `dst` from this socket's port. Bytes converts
  // implicitly, so existing `SendTo(dst, writer.Take())` call sites work.
  Status SendTo(const Endpoint& dst, Payload payload);
  // Zero-copy variant: builds the payload straight into the packet's inline
  // buffer; the steady-state path for messages <= Payload::kInlineCapacity.
  Status SendTo(const Endpoint& dst, const uint8_t* data, size_t len) {
    return SendTo(dst, Payload(data, len));
  }

  void SetReceiveCallback(ReceiveCallback cb) { receive_cb_ = std::move(cb); }
  void SetErrorCallback(ErrorCallback cb) { error_cb_ = std::move(cb); }

  uint16_t local_port() const { return port_; }
  bool closed() const { return closed_; }
  Host* host() const;

  // Unbind. The socket object remains valid until the stack reclaims it at
  // the next event-loop turn; no callbacks fire after Close().
  void Close();

 private:
  friend class UdpStack;

  void Deliver(const Endpoint& from, const Payload& payload);
  void DeliverError(const Endpoint& dst, ErrorCode code);

  UdpStack* stack_;
  uint16_t port_;
  bool closed_ = false;
  ReceiveCallback receive_cb_;
  ErrorCallback error_cb_;
  uint64_t datagrams_sent_ = 0;
  uint64_t datagrams_received_ = 0;
};

class UdpStack {
 public:
  explicit UdpStack(Host* host) : host_(host) {}

  // Bind a new socket. port == 0 picks an ephemeral port. Fails with
  // kAddressInUse when the port is taken.
  Result<UdpSocket*> Bind(uint16_t port = 0);

  // Called by Host demux.
  void HandlePacket(const Packet& packet);
  void HandleIcmpError(const Packet& icmp);

  bool IsPortBound(uint16_t port) const;

  Host* host() const { return host_; }

 private:
  friend class UdpSocket;

  void ScheduleReclaim(uint16_t port);

  Host* host_;
  // Port demux. Flat hash: this lookup runs once per delivered datagram.
  FlatHashMap<uint16_t, std::unique_ptr<UdpSocket>> sockets_;
};

}  // namespace natpunch

#endif  // SRC_TRANSPORT_UDP_H_
