// Host: an end system with a UDP stack and a TCP stack.
//
// Hosts never forward packets; anything not addressed to one of their
// interfaces is dropped, and segments/datagrams for closed ports elicit the
// usual RST / ICMP port-unreachable responses (configurable, because those
// responses are part of what hole punching has to tolerate — a punch probe
// that reaches the *wrong* host on a private network draws exactly these).

#ifndef SRC_TRANSPORT_HOST_H_
#define SRC_TRANSPORT_HOST_H_

#include <memory>
#include <string>

#include "src/netsim/network.h"
#include "src/netsim/node.h"
#include "src/transport/tcp.h"
#include "src/transport/udp.h"

namespace natpunch {

namespace obs {
class Counter;
}  // namespace obs

struct HostConfig {
  TcpConfig tcp;
  // Real hosts answer datagrams to closed UDP ports with ICMP port
  // unreachable; that error is how a puncher learns a candidate is dead.
  bool icmp_on_closed_udp_port = true;
};

class Host : public Node {
 public:
  Host(Network* network, std::string name, HostConfig config = HostConfig{});
  ~Host() override;

  UdpStack& udp() { return *udp_; }
  TcpStack& tcp() { return *tcp_; }
  const HostConfig& config() const { return config_; }

  void HandlePacket(int iface, Packet&& packet) override;

  // First interface's address; hosts in this library are single-homed.
  Ipv4Address primary_address() const;

  // Next free ephemeral port (49152-65535) for the given protocol.
  uint16_t AllocateEphemeralPort(IpProtocol protocol);

  EventLoop& loop();
  Rng& rng();

  // Transport stacks emit through this so every packet goes via routing.
  void SendFromTransport(Packet&& packet);

  // Wire armor accounting: every protocol endpoint on this host (rendezvous,
  // natcheck, TURN, puncher, framed TCP streams) calls this when it drops a
  // frame that failed strict decoding. Counted locally always and as the
  // `wire.<host>.malformed_drops` metric when metrics are enabled, so a
  // hostile-network run can audit exactly where garbage was shed.
  void CountMalformedDrop();
  uint64_t malformed_drops() const { return malformed_drops_; }

 private:
  HostConfig config_;
  std::unique_ptr<UdpStack> udp_;
  std::unique_ptr<TcpStack> tcp_;
  uint16_t next_ephemeral_ = 49152;
  uint64_t malformed_drops_ = 0;
  obs::Counter* metric_malformed_ = nullptr;  // null when metrics disabled
};

}  // namespace natpunch

#endif  // SRC_TRANSPORT_HOST_H_
