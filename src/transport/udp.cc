#include "src/transport/udp.h"

#include "src/transport/host.h"
#include "src/util/logging.h"

namespace natpunch {

UdpSocket::UdpSocket(UdpStack* stack, uint16_t port) : stack_(stack), port_(port) {}

Host* UdpSocket::host() const { return stack_->host(); }

Status UdpSocket::SendTo(const Endpoint& dst, Payload payload) {
  if (closed_) {
    return Status(ErrorCode::kClosed);
  }
  if (dst.ip.IsUnspecified()) {
    return Status(ErrorCode::kInvalidArgument, "unspecified destination");
  }
  Packet packet;
  packet.protocol = IpProtocol::kUdp;
  packet.src_port = port_;
  packet.set_dst(dst);
  packet.payload = std::move(payload);
  ++datagrams_sent_;
  stack_->host()->SendFromTransport(std::move(packet));
  return Status::Ok();
}

void UdpSocket::Close() {
  if (closed_) {
    return;
  }
  closed_ = true;
  receive_cb_ = nullptr;
  error_cb_ = nullptr;
  stack_->ScheduleReclaim(port_);
}

void UdpSocket::Deliver(const Endpoint& from, const Payload& payload) {
  if (closed_) {
    return;
  }
  ++datagrams_received_;
  if (receive_cb_) {
    receive_cb_(from, payload);
  }
}

void UdpSocket::DeliverError(const Endpoint& dst, ErrorCode code) {
  if (closed_) {
    return;
  }
  if (error_cb_) {
    error_cb_(dst, code);
  }
}

Result<UdpSocket*> UdpStack::Bind(uint16_t port) {
  if (port == 0) {
    port = host_->AllocateEphemeralPort(IpProtocol::kUdp);
    if (port == 0) {
      return Status(ErrorCode::kAddressInUse, "ephemeral ports exhausted");
    }
  } else {
    std::unique_ptr<UdpSocket>* existing = sockets_.Find(port);
    if (existing != nullptr && !(*existing)->closed()) {
      return Status(ErrorCode::kAddressInUse, "UDP port " + std::to_string(port));
    }
  }
  auto socket = std::make_unique<UdpSocket>(this, port);
  UdpSocket* raw = socket.get();
  *sockets_.FindOrInsert(port) = std::move(socket);
  return raw;
}

bool UdpStack::IsPortBound(uint16_t port) const {
  const std::unique_ptr<UdpSocket>* socket = sockets_.Find(port);
  return socket != nullptr && !(*socket)->closed();
}

void UdpStack::HandlePacket(const Packet& packet) {
  std::unique_ptr<UdpSocket>* socket = sockets_.Find(packet.dst_port);
  if (socket == nullptr || (*socket)->closed()) {
    if (host_->config().icmp_on_closed_udp_port) {
      Packet icmp;
      icmp.protocol = IpProtocol::kIcmp;
      icmp.icmp.type = IcmpType::kDestinationUnreachable;
      icmp.icmp.code = 3;  // port unreachable
      icmp.icmp.original_protocol = IpProtocol::kUdp;
      icmp.icmp.original_src = packet.src();
      icmp.icmp.original_dst = packet.dst();
      icmp.set_dst(Endpoint(packet.src_ip, 0));
      host_->SendFromTransport(std::move(icmp));
    }
    return;
  }
  (*socket)->Deliver(packet.src(), packet.payload);
}

void UdpStack::HandleIcmpError(const Packet& icmp) {
  // The quoted original packet was sent by us: original_src.port identifies
  // the local socket, original_dst is the unreachable destination.
  std::unique_ptr<UdpSocket>* socket = sockets_.Find(icmp.icmp.original_src.port);
  if (socket == nullptr || (*socket)->closed()) {
    return;
  }
  const ErrorCode code =
      icmp.icmp.code == 3 ? ErrorCode::kConnectionRefused : ErrorCode::kHostUnreachable;
  (*socket)->DeliverError(icmp.icmp.original_dst, code);
}

void UdpStack::ScheduleReclaim(uint16_t port) {
  host_->loop().ScheduleAfter(Micros(0), [this, port] {
    std::unique_ptr<UdpSocket>* socket = sockets_.Find(port);
    if (socket != nullptr && (*socket)->closed()) {
      sockets_.Erase(port);
    }
  });
}

}  // namespace natpunch
