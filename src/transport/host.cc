#include "src/transport/host.h"

#include <cstdio>

#include "src/obs/metrics.h"
#include "src/util/logging.h"

namespace natpunch {

Host::Host(Network* network, std::string name, HostConfig config)
    : Node(network, std::move(name)), config_(config) {
  udp_ = std::make_unique<UdpStack>(this);
  tcp_ = std::make_unique<TcpStack>(this, config_.tcp);
  if (obs::MetricsRegistry* reg = network_->metrics()) {
    char metric_name[96];
    const int n = std::snprintf(metric_name, sizeof(metric_name), "wire.%s.malformed_drops",
                                name_.c_str());
    metric_malformed_ = reg->GetCounter(std::string_view(metric_name, static_cast<size_t>(n)));
  }
}

Host::~Host() = default;

Ipv4Address Host::primary_address() const {
  return iface_count() > 0 ? iface_ip(0) : Ipv4Address();
}

EventLoop& Host::loop() { return network_->event_loop(); }
Rng& Host::rng() { return network_->rng(); }

uint16_t Host::AllocateEphemeralPort(IpProtocol protocol) {
  for (int attempts = 0; attempts < 16384; ++attempts) {
    const uint16_t port = next_ephemeral_;
    next_ephemeral_ = next_ephemeral_ >= 65535 ? 49152 : static_cast<uint16_t>(next_ephemeral_ + 1);
    const bool in_use =
        protocol == IpProtocol::kTcp ? tcp_->IsPortBound(port) : udp_->IsPortBound(port);
    if (!in_use) {
      return port;
    }
  }
  return 0;
}

void Host::SendFromTransport(Packet&& packet) { SendPacket(std::move(packet)); }

void Host::CountMalformedDrop() {
  ++malformed_drops_;
  obs::Inc(metric_malformed_);
}

void Host::HandlePacket(int iface, Packet&& packet) {
  (void)iface;
  if (!OwnsAddress(packet.dst_ip)) {
    // Hosts do not forward.
    return;
  }
  switch (packet.protocol) {
    case IpProtocol::kUdp:
      udp_->HandlePacket(packet);
      break;
    case IpProtocol::kTcp:
      tcp_->HandlePacket(packet);
      break;
    case IpProtocol::kIcmp:
      if (packet.icmp.original_protocol == IpProtocol::kUdp) {
        udp_->HandleIcmpError(packet);
      } else if (packet.icmp.original_protocol == IpProtocol::kTcp) {
        tcp_->HandleIcmpError(packet);
      }
      break;
  }
}

}  // namespace natpunch
