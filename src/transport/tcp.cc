#include "src/transport/tcp.h"

#include <algorithm>
#include <cstdio>

#include "src/obs/metrics.h"
#include "src/transport/host.h"
#include "src/util/logging.h"

namespace natpunch {

std::string_view TcpStateName(TcpState s) {
  switch (s) {
    case TcpState::kClosed:
      return "CLOSED";
    case TcpState::kListen:
      return "LISTEN";
    case TcpState::kSynSent:
      return "SYN_SENT";
    case TcpState::kSynReceived:
      return "SYN_RCVD";
    case TcpState::kEstablished:
      return "ESTABLISHED";
    case TcpState::kFinWait1:
      return "FIN_WAIT_1";
    case TcpState::kFinWait2:
      return "FIN_WAIT_2";
    case TcpState::kCloseWait:
      return "CLOSE_WAIT";
    case TcpState::kClosing:
      return "CLOSING";
    case TcpState::kLastAck:
      return "LAST_ACK";
    case TcpState::kTimeWait:
      return "TIME_WAIT";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// TcpSocket
// ---------------------------------------------------------------------------

TcpSocket::TcpSocket(TcpStack* stack)
    : stack_(stack), current_rto_(stack->config().initial_rto) {}

Host* TcpSocket::host() const { return stack_->host(); }

Status TcpSocket::Bind(uint16_t port) {
  if (bound_) {
    return Status(ErrorCode::kInvalidArgument, "already bound");
  }
  if (port == 0) {
    port = host()->AllocateEphemeralPort(IpProtocol::kTcp);
    if (port == 0) {
      return Status(ErrorCode::kAddressInUse, "ephemeral ports exhausted");
    }
  }
  Status status = stack_->RegisterBind(this, port);
  if (!status.ok()) {
    return status;
  }
  tuple_.local = Endpoint(host()->primary_address(), port);
  bound_ = true;
  bind_registered_ = true;
  return Status::Ok();
}

Status TcpSocket::Listen(AcceptCallback on_accept) {
  if (state_ != TcpState::kClosed || via_accept_) {
    return Status(ErrorCode::kInvalidArgument, "socket not in CLOSED state");
  }
  if (!bound_) {
    return Status(ErrorCode::kInvalidArgument, "listen on unbound socket");
  }
  Status status = stack_->RegisterListener(this);
  if (!status.ok()) {
    return status;
  }
  state_ = TcpState::kListen;
  accept_cb_ = std::move(on_accept);
  return Status::Ok();
}

Status TcpSocket::Connect(const Endpoint& remote, ConnectCallback on_connect) {
  if (state_ != TcpState::kClosed || via_accept_ || doomed_) {
    return Status(ErrorCode::kInvalidArgument, "socket not connectable");
  }
  if (remote.ip.IsUnspecified() || remote.port == 0) {
    return Status(ErrorCode::kInvalidArgument, "bad remote endpoint");
  }
  if (!bound_) {
    Status status = Bind(0);
    if (!status.ok()) {
      return status;
    }
  }
  tuple_.remote = remote;
  Status status = stack_->RegisterConnection(this);
  if (!status.ok()) {
    tuple_.remote = Endpoint();
    return status;
  }
  registered_tuple_ = true;
  connect_cb_ = std::move(on_connect);

  iss_ = stack_->GenerateIss();
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  buffer_base_ = snd_nxt_;
  state_ = TcpState::kSynSent;
  retransmit_count_ = 0;
  current_rto_ = stack_->config().initial_rto;
  SendControl(/*syn=*/true, /*ack=*/false, /*fin=*/false, /*rst=*/false, iss_, 0);
  ArmRetransmit();
  return Status::Ok();
}

Status TcpSocket::Send(Bytes data) {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait) {
    return Status(ErrorCode::kNotConnected);
  }
  send_buffer_.insert(send_buffer_.end(), data.begin(), data.end());
  TrySendData();
  return Status::Ok();
}

void TcpSocket::Close() {
  switch (state_) {
    case TcpState::kListen:
      stack_->UnregisterListener(this);
      if (bind_registered_) {
        stack_->UnregisterBind(this);
        bind_registered_ = false;
      }
      accept_cb_ = nullptr;
      state_ = TcpState::kClosed;
      break;
    case TcpState::kSynSent:
      connect_cb_ = nullptr;
      Teardown();
      break;
    case TcpState::kSynReceived:
      // Will FIN immediately after establishing.
      fin_queued_ = true;
      break;
    case TcpState::kEstablished:
      fin_queued_ = true;
      state_ = TcpState::kFinWait1;
      TrySendData();
      break;
    case TcpState::kCloseWait:
      fin_queued_ = true;
      state_ = TcpState::kLastAck;
      TrySendData();
      break;
    default:
      break;
  }
}

void TcpSocket::Abort() {
  switch (state_) {
    case TcpState::kSynReceived:
    case TcpState::kEstablished:
    case TcpState::kFinWait1:
    case TcpState::kFinWait2:
    case TcpState::kCloseWait:
    case TcpState::kClosing:
    case TcpState::kLastAck:
      SendControl(false, true, false, /*rst=*/true, snd_nxt_, rcv_nxt_);
      break;
    case TcpState::kListen:
      Close();
      return;
    default:
      break;
  }
  connect_cb_ = nullptr;
  closed_cb_ = nullptr;
  Teardown();
}

void TcpSocket::SendControl(bool syn, bool ack, bool fin, bool rst, uint32_t seq,
                            uint32_t ack_seq) {
  Packet p;
  p.protocol = IpProtocol::kTcp;
  p.set_src(tuple_.local);
  p.set_dst(tuple_.remote);
  p.tcp.syn = syn;
  p.tcp.ack = ack;
  p.tcp.fin = fin;
  p.tcp.rst = rst;
  p.tcp.seq = seq;
  p.tcp.ack_seq = ack_seq;
  p.tcp.window = stack_->config().receive_window;
  if (rst) {
    obs::Inc(stack_->metric_rsts_sent_);
  }
  host()->SendFromTransport(std::move(p));
}

void TcpSocket::SendDataSegment(uint32_t seq, Bytes payload, bool fin) {
  Packet p;
  p.protocol = IpProtocol::kTcp;
  p.set_src(tuple_.local);
  p.set_dst(tuple_.remote);
  p.tcp.ack = true;
  p.tcp.fin = fin;
  p.tcp.seq = seq;
  p.tcp.ack_seq = rcv_nxt_;
  p.tcp.window = stack_->config().receive_window;
  bytes_sent_ += payload.size();
  p.payload = std::move(payload);
  host()->SendFromTransport(std::move(p));
}

void TcpSocket::SendAck() { SendControl(false, true, false, false, snd_nxt_, rcv_nxt_); }

void TcpSocket::EnterEstablished() {
  state_ = TcpState::kEstablished;
  CancelRetransmit();
  retransmit_count_ = 0;
  current_rto_ = stack_->config().initial_rto;

  if (parent_listener_ != nullptr && !accept_delivered_) {
    accept_delivered_ = true;
    TcpSocket* listener = parent_listener_;
    if (listener->state_ == TcpState::kListen && listener->accept_cb_) {
      listener->accept_cb_(this);
    } else {
      // Listener went away before the handshake completed.
      Abort();
      return;
    }
  } else if (connect_cb_) {
    auto cb = std::move(connect_cb_);
    connect_cb_ = nullptr;
    cb(Status::Ok());
  }
  if (fin_queued_ && state_ == TcpState::kEstablished) {
    state_ = TcpState::kFinWait1;
  }
  TrySendData();
}

void TcpSocket::FailConnect(const Status& status) {
  CancelRetransmit();
  Teardown();
  if (connect_cb_) {
    auto cb = std::move(connect_cb_);
    connect_cb_ = nullptr;
    cb(status);
  }
}

void TcpSocket::HandleRst(const Status& status) {
  const bool was_connecting =
      (state_ == TcpState::kSynSent) ||
      (state_ == TcpState::kSynReceived && parent_listener_ == nullptr);
  CancelRetransmit();
  if (was_connecting) {
    FailConnect(status);
    return;
  }
  const bool notify = state_ == TcpState::kEstablished || state_ == TcpState::kFinWait1 ||
                      state_ == TcpState::kFinWait2 || state_ == TcpState::kCloseWait ||
                      state_ == TcpState::kClosing;
  Teardown();
  if (notify && closed_cb_) {
    auto cb = std::move(closed_cb_);
    closed_cb_ = nullptr;
    cb(status);
  }
}

void TcpSocket::HandleSegment(const Packet& p) {
  switch (state_) {
    case TcpState::kSynSent:
      HandleSegmentSynSent(p);
      break;
    case TcpState::kSynReceived:
      HandleSegmentSynReceived(p);
      break;
    case TcpState::kEstablished:
    case TcpState::kFinWait1:
    case TcpState::kFinWait2:
    case TcpState::kCloseWait:
    case TcpState::kClosing:
    case TcpState::kLastAck:
    case TcpState::kTimeWait:
      HandleSegmentConnected(p);
      break;
    default:
      break;
  }
}

void TcpSocket::HandleSegmentSynSent(const Packet& p) {
  if (p.tcp.rst) {
    // Accept the reset if it plausibly refers to our SYN.
    if (!p.tcp.ack || p.tcp.ack_seq == snd_nxt_) {
      FailConnect(Status(ErrorCode::kConnectionRefused, "RST in response to SYN"));
    }
    return;
  }
  if (p.tcp.syn && p.tcp.ack) {
    if (p.tcp.ack_seq != snd_nxt_) {
      SendControl(false, false, false, /*rst=*/true, p.tcp.ack_seq, 0);
      return;
    }
    irs_ = p.tcp.seq;
    rcv_nxt_ = p.tcp.seq + 1;
    snd_una_ = p.tcp.ack_seq;
    snd_wnd_ = p.tcp.window;
    SendAck();
    EnterEstablished();
    return;
  }
  if (p.tcp.syn) {
    // Simultaneous open (§4.4): answer with a SYN-ACK whose SYN part replays
    // our original SYN, same sequence number.
    obs::Inc(stack_->metric_simultaneous_opens_);
    irs_ = p.tcp.seq;
    rcv_nxt_ = p.tcp.seq + 1;
    snd_wnd_ = p.tcp.window;
    state_ = TcpState::kSynReceived;
    retransmit_count_ = 0;
    SendControl(/*syn=*/true, /*ack=*/true, false, false, iss_, rcv_nxt_);
    ArmRetransmit();
    return;
  }
  // A stray ACK with nothing useful: reset it.
  if (p.tcp.ack && p.tcp.ack_seq != snd_nxt_) {
    SendControl(false, false, false, /*rst=*/true, p.tcp.ack_seq, 0);
  }
}

void TcpSocket::HandleSegmentSynReceived(const Packet& p) {
  if (p.tcp.rst) {
    HandleRst(Status(ErrorCode::kConnectionReset, "RST during handshake"));
    return;
  }
  if (p.tcp.syn && !p.tcp.ack) {
    if (p.tcp.seq == irs_) {
      // Duplicate of the SYN that got us here; re-send our SYN-ACK.
      SendControl(true, true, false, false, iss_, rcv_nxt_);
    }
    return;
  }
  if (p.tcp.ack) {
    if (p.tcp.ack_seq == snd_nxt_) {
      snd_una_ = p.tcp.ack_seq;
      snd_wnd_ = p.tcp.window;
      if (p.tcp.syn) {
        // The peer's SYN-ACK in a crossed handshake; acknowledge it so the
        // peer's retransmit timer stops.
        SendAck();
      }
      EnterEstablished();
      if (!p.payload.empty() || p.tcp.fin) {
        ProcessPayload(p);
      }
    } else {
      SendControl(false, false, false, /*rst=*/true, p.tcp.ack_seq, 0);
    }
  }
}

void TcpSocket::HandleSegmentConnected(const Packet& p) {
  if (p.tcp.rst) {
    if (state_ == TcpState::kTimeWait) {
      Teardown();
      return;
    }
    HandleRst(Status(ErrorCode::kConnectionReset));
    return;
  }
  if (state_ == TcpState::kTimeWait) {
    if (p.tcp.fin) {
      SendAck();
    }
    return;
  }
  if (p.tcp.syn && !p.tcp.ack) {
    // Stray or duplicate SYN on a live connection: re-acknowledge.
    SendAck();
    return;
  }
  if (p.tcp.ack) {
    snd_wnd_ = p.tcp.window;
    ProcessAck(p.tcp.ack_seq);
    if (state_ == TcpState::kClosed) {
      return;  // LAST_ACK completed inside ProcessAck
    }
  }
  ProcessPayload(p);
  TrySendData();
}

void TcpSocket::ProcessAck(uint32_t ack_seq) {
  if (SeqGt(ack_seq, snd_nxt_)) {
    SendAck();  // ack for data we never sent; resynchronize
    return;
  }
  if (!SeqGt(ack_seq, snd_una_)) {
    return;  // duplicate / old ack
  }
  snd_una_ = ack_seq;

  // Pop acknowledged bytes off the send buffer (clamped: the FIN occupies
  // sequence space but no buffer byte).
  uint32_t advance = ack_seq - buffer_base_;
  if (advance > send_buffer_.size()) {
    advance = static_cast<uint32_t>(send_buffer_.size());
  }
  send_buffer_.erase(send_buffer_.begin(), send_buffer_.begin() + advance);
  buffer_base_ += advance;

  retransmit_count_ = 0;
  current_rto_ = stack_->config().initial_rto;
  if (snd_una_ == snd_nxt_) {
    CancelRetransmit();
  } else {
    ArmRetransmit();
  }

  if (fin_sent_ && SeqGt(snd_una_, fin_seq_)) {
    // Our FIN is acknowledged.
    switch (state_) {
      case TcpState::kFinWait1:
        state_ = TcpState::kFinWait2;
        break;
      case TcpState::kClosing:
        EnterTimeWait();
        break;
      case TcpState::kLastAck:
        Teardown();
        break;
      default:
        break;
    }
  }
}

void TcpSocket::ProcessPayload(const Packet& p) {
  bool should_ack = false;
  const uint32_t seg_seq = p.tcp.seq;
  const uint32_t seg_len = static_cast<uint32_t>(p.payload.size());

  if (seg_len > 0) {
    if (SeqGt(seg_seq, rcv_nxt_)) {
      // Future data: stash for reassembly, send a duplicate ACK.
      out_of_order_.emplace(seg_seq, p.payload.ToBytes());
      should_ack = true;
    } else if (SeqGt(seg_seq + seg_len, rcv_nxt_)) {
      const uint32_t offset = rcv_nxt_ - seg_seq;
      Bytes fresh(p.payload.begin() + offset, p.payload.end());
      rcv_nxt_ += static_cast<uint32_t>(fresh.size());
      bytes_received_ += fresh.size();
      should_ack = true;
      if (data_cb_) {
        // Invoke a copy: the callback may replace itself (e.g. a hole
        // puncher handing the socket to the application's stream wrapper).
        auto cb = data_cb_;
        cb(fresh);
      }
      // Drain any now-contiguous out-of-order segments.
      auto it = out_of_order_.begin();
      while (it != out_of_order_.end() && SeqLe(it->first, rcv_nxt_)) {
        const uint32_t o_seq = it->first;
        const Bytes& o_data = it->second;
        if (SeqGt(o_seq + static_cast<uint32_t>(o_data.size()), rcv_nxt_)) {
          const uint32_t skip = rcv_nxt_ - o_seq;
          Bytes extra(o_data.begin() + skip, o_data.end());
          rcv_nxt_ += static_cast<uint32_t>(extra.size());
          bytes_received_ += extra.size();
          if (data_cb_) {
            auto cb = data_cb_;
            cb(extra);
          }
        }
        it = out_of_order_.erase(it);
      }
    } else {
      should_ack = true;  // entirely old data; re-ack
    }
  }

  if (p.tcp.fin) {
    const uint32_t fin_seq = seg_seq + seg_len;
    if (fin_seq == rcv_nxt_ && !peer_fin_seen_) {
      peer_fin_seen_ = true;
      peer_fin_seq_ = fin_seq;
      rcv_nxt_ += 1;
      should_ack = true;
      const bool fin_acked = fin_sent_ && SeqGt(snd_una_, fin_seq_);
      switch (state_) {
        case TcpState::kEstablished:
          state_ = TcpState::kCloseWait;
          break;
        case TcpState::kFinWait1:
          if (fin_acked) {
            EnterTimeWait();
          } else {
            state_ = TcpState::kClosing;
          }
          break;
        case TcpState::kFinWait2:
          EnterTimeWait();
          break;
        default:
          break;
      }
      if (closed_cb_) {
        // EOF from the peer.
        auto cb = closed_cb_;
        cb(Status::Ok());
      }
    } else if (SeqLt(fin_seq, rcv_nxt_)) {
      should_ack = true;  // retransmitted FIN
    }
  }

  if (should_ack) {
    SendAck();
  }
}

void TcpSocket::MaybeSendFin() {
  const uint32_t data_end = buffer_base_ + static_cast<uint32_t>(send_buffer_.size());
  const uint32_t unsent = SeqGt(data_end, snd_nxt_) ? data_end - snd_nxt_ : 0;
  if (!fin_queued_ || fin_sent_ || unsent != 0) {
    return;
  }
  if (state_ != TcpState::kFinWait1 && state_ != TcpState::kLastAck &&
      state_ != TcpState::kClosing) {
    return;
  }
  fin_seq_ = snd_nxt_;
  SendControl(false, true, /*fin=*/true, false, snd_nxt_, rcv_nxt_);
  snd_nxt_ += 1;
  fin_sent_ = true;
  ArmRetransmit();
}

void TcpSocket::TrySendData() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait &&
      state_ != TcpState::kFinWait1 && state_ != TcpState::kLastAck &&
      state_ != TcpState::kClosing) {
    return;
  }
  const TcpConfig& config = stack_->config();
  for (;;) {
    const uint32_t in_flight = snd_nxt_ - snd_una_;
    const uint32_t buffered = static_cast<uint32_t>(send_buffer_.size());
    const uint32_t data_end = buffer_base_ + buffered;
    // The FIN occupies sequence space past the data, so clamp: once it is
    // sent, snd_nxt_ sits one past data_end.
    const uint32_t unsent = SeqGt(data_end, snd_nxt_) ? data_end - snd_nxt_ : 0;
    if (unsent == 0) {
      break;
    }
    uint32_t can_send = std::min(unsent, config.mss);
    const uint32_t window_room = snd_wnd_ > in_flight ? snd_wnd_ - in_flight : 0;
    can_send = std::min(can_send, window_room);
    if (can_send == 0) {
      break;
    }
    const uint32_t offset = snd_nxt_ - buffer_base_;
    Bytes payload(send_buffer_.begin() + offset, send_buffer_.begin() + offset + can_send);
    const bool last_chunk = (unsent == can_send);
    const bool add_fin = fin_queued_ && !fin_sent_ && last_chunk &&
                         (state_ == TcpState::kFinWait1 || state_ == TcpState::kLastAck ||
                          state_ == TcpState::kClosing);
    SendDataSegment(snd_nxt_, std::move(payload), add_fin);
    snd_nxt_ += can_send;
    if (add_fin) {
      fin_seq_ = snd_nxt_;
      snd_nxt_ += 1;
      fin_sent_ = true;
    }
    ArmRetransmit();
  }
  MaybeSendFin();
}

void TcpSocket::ArmRetransmit() {
  CancelRetransmit();
  retransmit_event_ =
      host()->loop().ScheduleAfter(current_rto_, [this] { OnRetransmitTimeout(); });
}

void TcpSocket::CancelRetransmit() {
  if (retransmit_event_ != EventLoop::kInvalidEventId) {
    host()->loop().Cancel(retransmit_event_);
    retransmit_event_ = EventLoop::kInvalidEventId;
  }
}

void TcpSocket::OnRetransmitTimeout() {
  retransmit_event_ = EventLoop::kInvalidEventId;
  ++retransmit_count_;
  obs::Inc(stack_->metric_retransmits_);
  const TcpConfig& config = stack_->config();

  if (state_ == TcpState::kSynSent) {
    if (retransmit_count_ > config.syn_max_retries) {
      FailConnect(Status(ErrorCode::kTimedOut, "SYN retries exhausted"));
      return;
    }
    SendControl(true, false, false, false, iss_, 0);
  } else if (state_ == TcpState::kSynReceived) {
    if (retransmit_count_ > config.syn_max_retries) {
      if (parent_listener_ == nullptr) {
        FailConnect(Status(ErrorCode::kTimedOut, "SYN-ACK retries exhausted"));
      } else {
        Teardown();
      }
      return;
    }
    SendControl(true, true, false, false, iss_, rcv_nxt_);
  } else {
    if (retransmit_count_ > config.data_max_retries) {
      SendControl(false, true, false, /*rst=*/true, snd_nxt_, rcv_nxt_);
      const bool notify = closed_cb_ != nullptr;
      auto cb = std::move(closed_cb_);
      Teardown();
      if (notify) {
        cb(Status(ErrorCode::kTimedOut, "data retries exhausted"));
      }
      return;
    }
    // Go-back to the first unacknowledged byte.
    const uint32_t buffered = static_cast<uint32_t>(send_buffer_.size());
    const uint32_t data_end = buffer_base_ + buffered;
    if (SeqLt(snd_una_, data_end)) {
      const uint32_t offset = snd_una_ - buffer_base_;
      const uint32_t len = std::min(config.mss, data_end - snd_una_);
      Bytes payload(send_buffer_.begin() + offset, send_buffer_.begin() + offset + len);
      const bool with_fin = fin_sent_ && (snd_una_ + len == fin_seq_);
      bytes_sent_ -= payload.size();  // don't double-count retransmissions
      SendDataSegment(snd_una_, std::move(payload), with_fin);
    } else if (fin_sent_ && SeqLe(snd_una_, fin_seq_)) {
      SendControl(false, true, /*fin=*/true, false, fin_seq_, rcv_nxt_);
    } else {
      return;  // nothing outstanding
    }
  }

  current_rto_ = std::min(current_rto_ * 2, config.max_rto);
  ArmRetransmit();
}

void TcpSocket::EnterTimeWait() {
  state_ = TcpState::kTimeWait;
  CancelRetransmit();
  if (time_wait_event_ == EventLoop::kInvalidEventId) {
    time_wait_event_ =
        host()->loop().ScheduleAfter(stack_->config().time_wait, [this] { Teardown(); });
  }
}

void TcpSocket::Teardown() {
  CancelRetransmit();
  if (time_wait_event_ != EventLoop::kInvalidEventId) {
    host()->loop().Cancel(time_wait_event_);
    time_wait_event_ = EventLoop::kInvalidEventId;
  }
  if (registered_tuple_) {
    stack_->UnregisterConnection(this);
    registered_tuple_ = false;
  }
  if (bind_registered_) {
    // A fully torn-down connection no longer holds its port (our model has
    // no lingering bind for dead sockets; apps that want the port again
    // simply re-bind).
    stack_->UnregisterBind(this);
    bind_registered_ = false;
  }
  state_ = TcpState::kClosed;
}

// ---------------------------------------------------------------------------
// TcpStack
// ---------------------------------------------------------------------------

TcpStack::TcpStack(Host* host, TcpConfig config) : host_(host), config_(config) {
  if (obs::MetricsRegistry* reg = host->network()->metrics()) {
    char name[96];
    const auto metric = [&](const char* suffix) {
      const int n = std::snprintf(name, sizeof(name), "tcp.%s.%s", host->name().c_str(), suffix);
      return reg->GetCounter(std::string_view(name, static_cast<size_t>(n)));
    };
    metric_retransmits_ = metric("retransmits");
    metric_simultaneous_opens_ = metric("simultaneous_opens");
    metric_rsts_sent_ = metric("rsts_sent");
    socket_pool_.AttachMetrics(reg, "tcp_sockets." + host->name());
  }
}

TcpStack::~TcpStack() {
  for (TcpSocket* socket : sockets_) {
    socket_pool_.Delete(socket);
  }
}

TcpSocket* TcpStack::CreateSocket() {
  sockets_.push_back(socket_pool_.New(this));
  return sockets_.back();
}

bool TcpStack::IsPortBound(uint16_t port) const {
  return bound_.Contains(port) || listeners_.Contains(port);
}

Status TcpStack::RegisterBind(TcpSocket* socket, uint16_t port) {
  std::vector<TcpSocket*>* sharers = bound_.Find(port);
  if (sharers != nullptr) {
    for (TcpSocket* other : *sharers) {
      if (!other->reuse_addr() || !socket->reuse_addr()) {
        return Status(ErrorCode::kAddressInUse, "TCP port " + std::to_string(port));
      }
    }
  }
  bound_.FindOrInsert(port)->push_back(socket);
  return Status::Ok();
}

void TcpStack::UnregisterBind(TcpSocket* socket) {
  std::vector<TcpSocket*>* sharers = bound_.Find(socket->local_port());
  if (sharers == nullptr) {
    return;
  }
  for (auto it = sharers->begin(); it != sharers->end(); ++it) {
    if (*it == socket) {
      sharers->erase(it);
      break;
    }
  }
  if (sharers->empty()) {
    bound_.Erase(socket->local_port());
  }
}

Status TcpStack::RegisterListener(TcpSocket* socket) {
  bool inserted = false;
  TcpSocket** slot = listeners_.FindOrInsert(socket->local_port(), &inserted);
  if (!inserted) {
    return Status(ErrorCode::kAddressInUse,
                  "listener exists on port " + std::to_string(socket->local_port()));
  }
  *slot = socket;
  return Status::Ok();
}

void TcpStack::UnregisterListener(TcpSocket* socket) {
  TcpSocket** slot = listeners_.Find(socket->local_port());
  if (slot != nullptr && *slot == socket) {
    listeners_.Erase(socket->local_port());
  }
}

Status TcpStack::RegisterConnection(TcpSocket* socket) {
  bool inserted = false;
  TcpSocket** slot = connections_.FindOrInsert(socket->tuple_, &inserted);
  if (!inserted) {
    return Status(ErrorCode::kAddressInUse, "4-tuple in use: " + socket->tuple_.ToString());
  }
  *slot = socket;
  return Status::Ok();
}

void TcpStack::UnregisterConnection(TcpSocket* socket) {
  TcpSocket** slot = connections_.Find(socket->tuple_);
  if (slot != nullptr && *slot == socket) {
    connections_.Erase(socket->tuple_);
  }
}

uint32_t TcpStack::GenerateIss() { return static_cast<uint32_t>(host_->rng().NextU64()); }

void TcpStack::SendRstFor(const Packet& packet) {
  if (packet.tcp.rst || !config_.rst_on_closed_port) {
    return;
  }
  Packet rst;
  rst.protocol = IpProtocol::kTcp;
  rst.set_src(packet.dst());
  rst.set_dst(packet.src());
  rst.tcp.rst = true;
  if (packet.tcp.ack) {
    rst.tcp.seq = packet.tcp.ack_seq;
  } else {
    rst.tcp.ack = true;
    rst.tcp.seq = 0;
    rst.tcp.ack_seq = packet.tcp.seq + static_cast<uint32_t>(packet.payload.size()) +
                      (packet.tcp.syn ? 1 : 0) + (packet.tcp.fin ? 1 : 0);
  }
  obs::Inc(metric_rsts_sent_);
  host_->SendFromTransport(std::move(rst));
}

void TcpStack::SpawnFromListener(TcpSocket* listener, const Packet& syn,
                                 std::optional<uint32_t> replay_iss) {
  TcpSocket* child = CreateSocket();
  child->via_accept_ = true;
  child->parent_listener_ = listener;
  child->tuple_ = FourTuple{syn.dst(), syn.src()};
  child->bound_ = true;  // implicitly bound to the listener's port
  Status status = RegisterConnection(child);
  if (!status.ok()) {
    return;  // tuple collision; drop the SYN, peer will retransmit
  }
  child->registered_tuple_ = true;
  child->irs_ = syn.tcp.seq;
  child->rcv_nxt_ = syn.tcp.seq + 1;
  child->iss_ = replay_iss.has_value() ? *replay_iss : GenerateIss();
  child->snd_una_ = child->iss_;
  child->snd_nxt_ = child->iss_ + 1;
  child->buffer_base_ = child->snd_nxt_;
  child->snd_wnd_ = syn.tcp.window;
  child->state_ = TcpState::kSynReceived;
  child->SendControl(true, true, false, false, child->iss_, child->rcv_nxt_);
  child->ArmRetransmit();
}

void TcpStack::HandlePacket(const Packet& packet) {
  const FourTuple tuple{packet.dst(), packet.src()};
  TcpSocket** conn_slot = connections_.Find(tuple);
  TcpSocket* conn = conn_slot != nullptr ? *conn_slot : nullptr;
  TcpSocket** listen_slot = listeners_.Find(packet.dst_port);
  TcpSocket* listener = listen_slot != nullptr ? *listen_slot : nullptr;

  const bool bare_syn = packet.tcp.syn && !packet.tcp.ack && !packet.tcp.rst;
  if (bare_syn) {
    if (conn != nullptr && conn->state() == TcpState::kSynSent && listener != nullptr &&
        config_.accept_policy == TcpAcceptPolicy::kLinuxWindows) {
      // §4.3 behavior 2: the listen socket wins. The in-progress connect is
      // doomed to fail with EADDRINUSE, and the spawned connection replays
      // the doomed socket's ISS so the wire protocol stays coherent.
      const uint32_t replay_iss = conn->iss_;
      TcpSocket* doomed = conn;
      doomed->doomed_ = true;
      doomed->CancelRetransmit();
      UnregisterConnection(doomed);
      doomed->registered_tuple_ = false;
      doomed->state_ = TcpState::kClosed;
      host_->loop().ScheduleAfter(Micros(0), [doomed] {
        if (doomed->connect_cb_) {
          auto cb = std::move(doomed->connect_cb_);
          doomed->connect_cb_ = nullptr;
          cb(Status(ErrorCode::kAddressInUse, "connection taken over by listener"));
        }
      });
      SpawnFromListener(listener, packet, replay_iss);
      return;
    }
    if (conn != nullptr) {
      conn->HandleSegment(packet);
      return;
    }
    if (listener != nullptr) {
      SpawnFromListener(listener, packet, std::nullopt);
      return;
    }
    SendRstFor(packet);
    return;
  }

  if (conn != nullptr) {
    conn->HandleSegment(packet);
    return;
  }
  SendRstFor(packet);
}

void TcpStack::HandleIcmpError(const Packet& icmp) {
  const FourTuple tuple{icmp.icmp.original_src, icmp.icmp.original_dst};
  TcpSocket* const* slot = connections_.Find(tuple);
  if (slot == nullptr) {
    return;
  }
  TcpSocket* conn = *slot;
  if (conn->state() == TcpState::kSynSent) {
    // "Host unreachable" / "port unreachable" style hard errors abort the
    // connection attempt; the hole punching layer retries (§4.2 step 4).
    conn->FailConnect(Status(ErrorCode::kHostUnreachable, "ICMP error"));
  }
}

}  // namespace natpunch
