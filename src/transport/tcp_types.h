// Shared TCP types: connection states, the 4-tuple session key (§2.1), and
// modulo-2^32 sequence arithmetic.

#ifndef SRC_TRANSPORT_TCP_TYPES_H_
#define SRC_TRANSPORT_TCP_TYPES_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "src/netsim/address.h"
#include "src/netsim/sim_time.h"

namespace natpunch {

// RFC 793 connection states.
enum class TcpState {
  kClosed,
  kListen,
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kClosing,
  kLastAck,
  kTimeWait,
};

std::string_view TcpStateName(TcpState s);

// Which OS-observed behavior a host's TCP exhibits when a SYN arrives whose
// 4-tuple matches an in-progress outbound connect AND a listen socket exists
// on the same local port (paper §4.3).
enum class TcpAcceptPolicy {
  // The SYN is matched to the connecting socket: the application's
  // connect() succeeds; nothing appears on the listen socket. Observed on
  // BSD-derived stacks.
  kBsd,
  // The SYN is handed to the listen socket: accept() yields a new working
  // socket, and the original connect() later fails with EADDRINUSE.
  // Observed on Linux and Windows.
  kLinuxWindows,
};

struct TcpConfig {
  TcpAcceptPolicy accept_policy = TcpAcceptPolicy::kBsd;
  SimDuration initial_rto = Seconds(1);   // RFC 6298 initial retransmission timeout
  SimDuration max_rto = Seconds(16);      // backoff cap
  int syn_max_retries = 5;                // SYN retransmissions before ETIMEDOUT
  int data_max_retries = 8;               // data retransmissions before reset
  SimDuration time_wait = Seconds(10);    // 2*MSL, shortened for simulation
  uint32_t mss = 1400;                    // max payload bytes per segment
  uint32_t receive_window = 65535;
  // Whether this host answers segments for closed ports with RST (real hosts
  // do; disabling models a host-firewall DROP policy).
  bool rst_on_closed_port = true;
};

// A TCP/UDP session from the perspective of one host: (local, remote)
// endpoint pair.
struct FourTuple {
  Endpoint local;
  Endpoint remote;

  constexpr auto operator<=>(const FourTuple&) const = default;
  std::string ToString() const { return local.ToString() + "<->" + remote.ToString(); }
};

struct FourTupleHash {
  size_t operator()(const FourTuple& t) const {
    const EndpointHash h;
    return h(t.local) * 1000003u ^ h(t.remote);
  }
};

// Serial-number arithmetic on 32-bit sequence space.
inline bool SeqLt(uint32_t a, uint32_t b) { return static_cast<int32_t>(a - b) < 0; }
inline bool SeqLe(uint32_t a, uint32_t b) { return static_cast<int32_t>(a - b) <= 0; }
inline bool SeqGt(uint32_t a, uint32_t b) { return static_cast<int32_t>(a - b) > 0; }
inline bool SeqGe(uint32_t a, uint32_t b) { return static_cast<int32_t>(a - b) >= 0; }

}  // namespace natpunch

#endif  // SRC_TRANSPORT_TCP_TYPES_H_
