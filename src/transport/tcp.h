// User-space TCP: enough of RFC 793 to reproduce every TCP behavior the
// paper depends on.
//
// Implemented: three-way handshake, SYN retransmission with exponential
// backoff, RST generation and handling, ICMP error handling, reliable
// bidirectional byte streams with cumulative ACKs and out-of-order
// reassembly, graceful FIN teardown including simultaneous close and
// TIME_WAIT, and — crucially for §4.4 — *simultaneous open*, where a socket
// in SYN_SENT that receives a raw SYN answers with a SYN-ACK replaying its
// original ISS.
//
// The paper's two observed OS behaviors for TCP hole punching (§4.3) are a
// stack-level policy:
//   * kBsd: an inbound SYN matching an in-progress connect() is married to
//     the connecting socket; connect() succeeds.
//   * kLinuxWindows: the SYN is given to the listen socket instead; accept()
//     yields the working socket and the original connect() fails with
//     kAddressInUse. The spawned connection replays the doomed connect
//     socket's ISS, which is what makes the double-behavior-2 case of §4.4
//     converge ("the stream created itself on the wire").
//
// Not implemented (nothing in the paper needs them): congestion control,
// window scaling, SACK, delayed ACKs, Nagle, urgent data, checksums.

#ifndef SRC_TRANSPORT_TCP_H_
#define SRC_TRANSPORT_TCP_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "src/netsim/event_loop.h"
#include "src/netsim/packet.h"
#include "src/transport/tcp_types.h"
#include "src/util/bytes.h"
#include "src/util/flat_hash.h"
#include "src/util/slab.h"
#include "src/util/result.h"

namespace natpunch {

namespace obs {
class Counter;
}  // namespace obs

class Host;
class TcpStack;

class TcpSocket {
 public:
  using ConnectCallback = std::function<void(Status)>;
  using AcceptCallback = std::function<void(TcpSocket* accepted)>;
  using DataCallback = std::function<void(const Bytes& data)>;
  // Fired when the connection ends for any reason after establishment
  // (remote FIN fully processed, RST, or retransmission failure).
  using ClosedCallback = std::function<void(Status)>;

  explicit TcpSocket(TcpStack* stack);

  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  // --- Berkeley-style API ---

  // SO_REUSEADDR / SO_REUSEPORT: must be set before Bind on every socket
  // sharing the port (§4.1).
  void SetReuseAddr(bool on) { reuse_addr_ = on; }
  bool reuse_addr() const { return reuse_addr_; }

  // Bind to a local port (0 = ephemeral). Enforces the standard rule:
  // binding an already-bound port fails with kAddressInUse unless every
  // socket involved set reuse_addr.
  Status Bind(uint16_t port);

  // Passive open. One listener per port.
  Status Listen(AcceptCallback on_accept);

  // Active open (asynchronous). The callback fires exactly once with the
  // outcome. Multiple sockets bound to the same port (with reuse_addr) may
  // connect to different remote endpoints concurrently — the TCP hole
  // punching socket arrangement of Figure 7.
  Status Connect(const Endpoint& remote, ConnectCallback on_connect);

  // Queue stream data. Valid in kEstablished / kCloseWait.
  Status Send(Bytes data);

  void SetDataCallback(DataCallback cb) { data_cb_ = std::move(cb); }
  void SetClosedCallback(ClosedCallback cb) { closed_cb_ = std::move(cb); }

  // Graceful close (FIN after queued data drains).
  void Close();
  // Hard close: send RST, drop state.
  void Abort();

  // --- Introspection ---

  TcpState state() const { return state_; }
  Endpoint local_endpoint() const { return tuple_.local; }
  Endpoint remote_endpoint() const { return tuple_.remote; }
  uint16_t local_port() const { return tuple_.local.port; }
  // True when this socket was produced by a listener (paper Fig. 7 cares
  // which of connect()/accept() yielded the working stream).
  bool via_accept() const { return via_accept_; }
  Host* host() const;
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }

 private:
  friend class TcpStack;

  // Segment processing entry point, after stack demux.
  void HandleSegment(const Packet& p);

  void HandleSegmentSynSent(const Packet& p);
  void HandleSegmentSynReceived(const Packet& p);
  void HandleSegmentConnected(const Packet& p);  // kEstablished and later

  void SendControl(bool syn, bool ack, bool fin, bool rst, uint32_t seq, uint32_t ack_seq);
  void SendDataSegment(uint32_t seq, Bytes payload, bool fin);
  void SendAck();

  void EnterEstablished();
  void FailConnect(const Status& status);
  void HandleRst(const Status& status);
  void ProcessAck(uint32_t ack_seq);
  void ProcessPayload(const Packet& p);
  void MaybeSendFin();
  void TrySendData();
  void ArmRetransmit();
  void CancelRetransmit();
  void OnRetransmitTimeout();
  void EnterTimeWait();
  // Detach from demux maps; terminal state kClosed. Socket object stays
  // alive (owned by the stack) so application pointers never dangle.
  void Teardown();

  TcpStack* stack_;
  TcpState state_ = TcpState::kClosed;
  FourTuple tuple_;
  bool reuse_addr_ = false;
  bool bound_ = false;
  bool bind_registered_ = false;  // has an entry in the stack's bound_ map
  bool registered_tuple_ = false;
  bool via_accept_ = false;
  bool doomed_ = false;  // kLinuxWindows policy hijacked our SYN (§4.3)
  TcpSocket* parent_listener_ = nullptr;  // for sockets spawned by a listener
  bool accept_delivered_ = false;

  // Send state.
  uint32_t iss_ = 0;
  uint32_t snd_una_ = 0;
  uint32_t snd_nxt_ = 0;
  uint32_t snd_wnd_ = 65535;
  uint32_t buffer_base_ = 0;         // sequence number of send_buffer_.front()
  std::deque<uint8_t> send_buffer_;  // unacknowledged + unsent stream bytes
  bool fin_queued_ = false;
  bool fin_sent_ = false;
  uint32_t fin_seq_ = 0;

  // Receive state.
  uint32_t irs_ = 0;
  uint32_t rcv_nxt_ = 0;
  std::map<uint32_t, Bytes> out_of_order_;
  bool peer_fin_seen_ = false;
  uint32_t peer_fin_seq_ = 0;

  // Timers.
  EventLoop::EventId retransmit_event_ = EventLoop::kInvalidEventId;
  EventLoop::EventId time_wait_event_ = EventLoop::kInvalidEventId;
  int retransmit_count_ = 0;
  SimDuration current_rto_;

  // Callbacks.
  ConnectCallback connect_cb_;
  AcceptCallback accept_cb_;
  DataCallback data_cb_;
  ClosedCallback closed_cb_;

  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
};

class TcpStack {
 public:
  TcpStack(Host* host, TcpConfig config);
  ~TcpStack();

  TcpStack(const TcpStack&) = delete;
  TcpStack& operator=(const TcpStack&) = delete;

  // Create a socket owned by this stack. The pointer stays valid for the
  // stack's lifetime (closed sockets are retained in kClosed state).
  TcpSocket* CreateSocket();

  const TcpConfig& config() const { return config_; }
  Host* host() const { return host_; }

  // Host demux entry points.
  void HandlePacket(const Packet& packet);
  void HandleIcmpError(const Packet& icmp);

  bool IsPortBound(uint16_t port) const;

 private:
  friend class TcpSocket;

  Status RegisterBind(TcpSocket* socket, uint16_t port);
  void UnregisterBind(TcpSocket* socket);
  Status RegisterListener(TcpSocket* socket);
  void UnregisterListener(TcpSocket* socket);
  Status RegisterConnection(TcpSocket* socket);
  void UnregisterConnection(TcpSocket* socket);

  uint32_t GenerateIss();
  // RST in response to a segment with no matching connection (RFC 793 p.36).
  void SendRstFor(const Packet& packet);
  // Spawn a connection in kSynReceived from a listener receiving SYN.
  // `replay_iss` carries the doomed connector's ISS in the hijack case.
  void SpawnFromListener(TcpSocket* listener, const Packet& syn,
                         std::optional<uint32_t> replay_iss);

  Host* host_;
  TcpConfig config_;
  // Sockets come from the slab (the swarm's TCP legs hold hundreds of
  // thousands of ~400-byte connection objects); the roster vector keeps
  // creation order for teardown. Closed sockets are retained in kClosed
  // state, so the pool only ever grows to the high-water mark.
  Slab<TcpSocket, 128> socket_pool_;
  std::vector<TcpSocket*> sockets_;
  // Per-segment demux tables, all flat-hash (see src/util/flat_hash.h).
  // bound_ keeps insertion order within a port (SO_REUSEADDR sockets), the
  // order the old multimap guaranteed.
  FlatHashMap<FourTuple, TcpSocket*, FourTupleHash> connections_;
  FlatHashMap<uint16_t, TcpSocket*> listeners_;
  FlatHashMap<uint16_t, std::vector<TcpSocket*>> bound_;

  // Registry names: tcp.<host>.retransmits / simultaneous_opens / rsts_sent.
  // Null when the owning Network has no metrics registry.
  obs::Counter* metric_retransmits_ = nullptr;
  obs::Counter* metric_simultaneous_opens_ = nullptr;
  obs::Counter* metric_rsts_sent_ = nullptr;
};

}  // namespace natpunch

#endif  // SRC_TRANSPORT_TCP_H_
