#include "src/nat/nat_config.h"

namespace natpunch {

std::string_view NatMappingName(NatMapping m) {
  switch (m) {
    case NatMapping::kEndpointIndependent:
      return "endpoint-independent";
    case NatMapping::kAddressDependent:
      return "address-dependent";
    case NatMapping::kAddressAndPortDependent:
      return "address-and-port-dependent";
  }
  return "?";
}

std::string_view NatFilteringName(NatFiltering f) {
  switch (f) {
    case NatFiltering::kEndpointIndependent:
      return "endpoint-independent";
    case NatFiltering::kAddressDependent:
      return "address-dependent";
    case NatFiltering::kAddressAndPortDependent:
      return "address-and-port-dependent";
  }
  return "?";
}

std::string_view NatPortAllocationName(NatPortAllocation p) {
  switch (p) {
    case NatPortAllocation::kPortPreserving:
      return "port-preserving";
    case NatPortAllocation::kSequential:
      return "sequential";
    case NatPortAllocation::kRandom:
      return "random";
  }
  return "?";
}

std::string_view NatUnsolicitedTcpName(NatUnsolicitedTcp u) {
  switch (u) {
    case NatUnsolicitedTcp::kDrop:
      return "drop";
    case NatUnsolicitedTcp::kRst:
      return "rst";
    case NatUnsolicitedTcp::kIcmp:
      return "icmp";
  }
  return "?";
}

std::string NatConfig::Rfc3489Class() const {
  if (!IsCone()) {
    return "symmetric";
  }
  switch (filtering) {
    case NatFiltering::kEndpointIndependent:
      return "full cone";
    case NatFiltering::kAddressDependent:
      return "restricted cone";
    case NatFiltering::kAddressAndPortDependent:
      return "port-restricted cone";
  }
  return "?";
}

std::string NatConfig::ToString() const {
  std::string out = "NatConfig{map=" + std::string(NatMappingName(mapping)) +
                    ", filter=" + std::string(NatFilteringName(filtering)) +
                    ", ports=" + std::string(NatPortAllocationName(port_allocation)) +
                    ", unsolicited_tcp=" + std::string(NatUnsolicitedTcpName(unsolicited_tcp)) +
                    ", hairpin_udp=" + (hairpin_udp ? "y" : "n") +
                    ", hairpin_tcp=" + (hairpin_tcp ? "y" : "n") +
                    ", udp_timeout=" + udp_timeout.ToString() + "}";
  return out;
}

}  // namespace natpunch
