// NatDevice: a NAPT box between one or more private ("inside") LANs and a
// public ("outside") LAN.
//
// Implements outbound translation with configurable mapping behavior,
// inbound de-translation with configurable filtering, the unsolicited-TCP
// response policy, hairpin translation, idle expiry, ICMP error translation
// in both directions, and the §5.3 payload-address-rewriting misbehavior.
// In multi-level deployments (Fig. 6) the "public" side of an inner NAT is
// itself a private realm of the outer NAT; nothing in this class cares.

#ifndef SRC_NAT_NAT_DEVICE_H_
#define SRC_NAT_NAT_DEVICE_H_

#include <map>
#include <optional>
#include <string>
#include <utility>

#include "src/nat/nat_config.h"
#include "src/nat/nat_table.h"
#include "src/netsim/network.h"
#include "src/netsim/node.h"

namespace natpunch {

class NatDevice : public Node {
 public:
  NatDevice(Network* network, std::string name, NatConfig config);

  // Topology. AttachOutside must be called exactly once.
  int AttachInside(Lan* lan, Ipv4Address ip, int prefix_length = 24);
  int AttachOutside(Lan* lan, Ipv4Address ip, int prefix_length = 24);

  // Route everything non-local out the public interface, optionally via a
  // gateway (used when this NAT sits behind another NAT).
  void SetUpstream(std::optional<Ipv4Address> gateway = std::nullopt);

  void HandlePacket(int iface, Packet&& packet) override;

  const NatConfig& config() const { return config_; }
  NatConfig& mutable_config() { return config_; }
  Ipv4Address public_ip() const { return public_ip_; }

  struct Stats {
    uint64_t translated_out = 0;
    uint64_t translated_in = 0;
    uint64_t hairpinned = 0;
    uint64_t dropped_unsolicited = 0;
    uint64_t rst_rejections = 0;
    uint64_t icmp_rejections = 0;
    uint64_t dropped_no_mapping = 0;
    uint64_t expired_mappings = 0;
    uint64_t payload_rewrites = 0;
    uint64_t reboots = 0;
  };
  const Stats& stats() const { return stats_; }

  // Registry names (when the Network has metrics enabled):
  //   nat.<name>.mappings_created / mappings_expired / filtered_drops /
  //   hairpins / rejections
  // filtered_drops folds the two silent-drop reasons (unsolicited inbound,
  // no mapping); rejections folds the §5.2 bad behaviors (RST + ICMP).

  size_t active_mapping_count() const { return table_.size(); }

  // Failure injection: drop every translation, as a consumer router reboot
  // or a DHCP renumbering would. Established peer-to-peer sessions die
  // until the applications re-punch (§3.6's on-demand recovery).
  void FlushMappings();
  // FlushMappings plus reboot accounting and a kFault trace event; what the
  // chaos engine schedules for NAT reboot / mapping churn faults.
  void Reboot();
  // The public endpoint currently mapped for (private_ep -> remote), if any.
  std::optional<Endpoint> PublicEndpointFor(IpProtocol protocol, const Endpoint& private_ep,
                                            const Endpoint& remote);

 private:
  void HandleOutbound(Packet&& packet);
  void HandleInbound(Packet&& packet);
  void HandleHairpin(Packet&& packet);
  void HandleInboundIcmp(Packet&& packet);
  void HandleOutboundIcmp(Packet&& packet);

  // Basic NAT (§2.1): address-only translation with a public address pool.
  void HandleOutboundBasic(Packet&& packet);
  void HandleInboundBasic(Packet&& packet);
  void HandleHairpinBasic(Packet&& packet);
  // nullopt when the pool is exhausted.
  std::optional<Ipv4Address> AssignBasicAddress(Ipv4Address private_ip);
  bool BasicSessionAllows(Ipv4Address private_ip, const Endpoint& remote) const;
  // Refresh the (private_ip, remote) session and log it in the expiry queue.
  void TouchBasicSession(Ipv4Address private_ip, const Endpoint& remote);
  void ExpireBasicSessions();

  // Inbound lookup (through the inbound flow cache) with lazy expiry of the
  // hit entry.
  NatTable::Entry* LookupInboundFresh(IpProtocol protocol, uint16_t public_port);
  // Outbound find-or-create through the outbound flow cache; exactly
  // table_.MapOutbound observably, but a cache hit skips every hash lookup.
  // Sets *created when a new mapping was made.
  NatTable::Entry* MapOutboundCached(const Packet& packet, const Endpoint& private_ep,
                                     const Endpoint& remote, bool* created);
  SimDuration SessionTimeoutFor(const NatTable::Entry& entry) const;
  bool EntryExpired(const NatTable::Entry& entry) const;
  NatTable::Timeouts CurrentTimeouts() const;

  void TrackTcpOutbound(NatTable::Entry* entry, const Packet& packet);
  void TrackTcpInbound(NatTable::Entry* entry, const Packet& packet);

  // Respond to an unsolicited inbound TCP SYN per policy; returns true if a
  // response (RST/ICMP) was sent.
  void RejectUnsolicitedTcp(const Packet& packet);

  // §5.3: rewrite 4-byte payload substrings equal to `from` into `to`.
  void RewritePayloadAddress(Packet* packet, Ipv4Address from, Ipv4Address to);

  void ScheduleSweep();
  void SweepTick();

  // Single increment points for Stats fields that also mirror into the
  // metrics registry; every stat site goes through these.
  void CountMappingCreated() {
    obs::Inc(metric_mappings_created_);
  }
  void CountExpired(uint64_t n) {
    stats_.expired_mappings += n;
    obs::Inc(metric_mappings_expired_, n);
  }
  void CountDropUnsolicited() {
    ++stats_.dropped_unsolicited;
    obs::Inc(metric_filtered_);
  }
  void CountDropNoMapping() {
    ++stats_.dropped_no_mapping;
    obs::Inc(metric_filtered_);
  }
  void CountHairpin() {
    ++stats_.hairpinned;
    obs::Inc(metric_hairpins_);
  }
  void CountRejection(uint64_t& stat) {
    ++stat;
    obs::Inc(metric_rejections_);
  }

  NatConfig config_;
  NatTable table_;
  Ipv4Address public_ip_;
  int outside_iface_ = -1;
  // Periodic mapping-expiry sweep; intrusive so 100k+ NAT devices in the
  // swarm bench cost no allocation per sweep round.
  TimerHandle sweep_timer_;
  Stats stats_;

  // Null when the owning Network has no metrics registry.
  obs::Counter* metric_mappings_created_ = nullptr;
  obs::Counter* metric_mappings_expired_ = nullptr;
  obs::Counter* metric_filtered_ = nullptr;
  obs::Counter* metric_hairpins_ = nullptr;
  obs::Counter* metric_rejections_ = nullptr;
  obs::Counter* metric_flowcache_hits_ = nullptr;
  obs::Counter* metric_flowcache_misses_ = nullptr;

  // Single-entry per-direction flow caches: the last translated flow in
  // each direction short-circuits the table lookups. A cached Entry* is
  // only valid while the table generation is unchanged (no entry has been
  // removed); the outbound cache additionally pins the contention epoch,
  // because a §6.3 port-contention demotion changes which outbound key the
  // cached (private_ep, remote) pair maps through.
  struct OutboundFlowCache {
    IpProtocol protocol = IpProtocol::kUdp;
    Endpoint private_ep;
    Endpoint remote;
    NatTable::Entry* entry = nullptr;
    uint64_t generation = 0;
    uint64_t contention_epoch = 0;
  };
  struct InboundFlowCache {
    IpProtocol protocol = IpProtocol::kUdp;
    uint16_t public_port = 0;
    NatTable::Entry* entry = nullptr;
    uint64_t generation = 0;
  };
  OutboundFlowCache out_cache_;
  InboundFlowCache in_cache_;

  // Basic NAT state: 1:1 address bindings plus per-host session activity
  // (for filtering and idle reclamation; idle timing uses udp_timeout for
  // both transports — Basic NAT has no per-port state to be cleverer with).
  std::map<Ipv4Address, Ipv4Address> basic_out_;  // private -> public
  std::map<Ipv4Address, Ipv4Address> basic_in_;   // public -> private
  std::map<Ipv4Address, std::map<Endpoint, SimTime>> basic_sessions_;  // by private ip
  // Lazy expiry queue over basic sessions: every refresh logs a node; the
  // sweep pops stale nodes and consults basic_sessions_ (authoritative) so
  // it only ever touches O(expired + superseded) nodes, never the whole
  // session population.
  std::multimap<SimTime, std::pair<Ipv4Address, Endpoint>> basic_lru_;
};

}  // namespace natpunch

#endif  // SRC_NAT_NAT_DEVICE_H_
