#include "src/nat/nat_table.h"

#include <algorithm>

namespace natpunch {

bool NatTable::Entry::AllowsInbound(NatFiltering filtering, const Endpoint& remote, SimTime now,
                                    SimDuration session_timeout) const {
  switch (filtering) {
    case NatFiltering::kEndpointIndependent:
      return true;
    case NatFiltering::kAddressDependent:
      for (const auto& [ep, last] : sessions) {
        if (ep.ip == remote.ip && now - last < session_timeout) {
          return true;
        }
      }
      return false;
    case NatFiltering::kAddressAndPortDependent: {
      auto it = sessions.find(remote);
      return it != sessions.end() && now - it->second < session_timeout;
    }
  }
  return false;
}

SimTime NatTable::Entry::NewestActivity() const {
  SimTime newest;
  for (const auto& [ep, last] : sessions) {
    newest = std::max(newest, last);
  }
  return newest;
}

NatTable::NatTable(NatMapping mapping, NatPortAllocation allocation, uint16_t port_base, Rng rng,
                   bool symmetric_on_contention)
    : mapping_(mapping),
      allocation_(allocation),
      symmetric_on_contention_(symmetric_on_contention),
      port_base_(port_base),
      next_port_udp_(port_base),
      next_port_tcp_(port_base),
      rng_(rng) {}

NatMapping NatTable::EffectiveMapping(IpProtocol protocol, const Endpoint& private_ep) const {
  if (symmetric_on_contention_) {
    auto it = port_users_.find(PortKey{protocol, private_ep.port});
    if (it != port_users_.end() && it->second.size() > 1) {
      return NatMapping::kAddressAndPortDependent;
    }
  }
  return mapping_;
}

NatTable::OutKey NatTable::MakeOutKey(IpProtocol protocol, const Endpoint& private_ep,
                                      const Endpoint& remote, NatMapping mapping) const {
  OutKey key{protocol, private_ep, Ipv4Address(), 0};
  switch (mapping) {
    case NatMapping::kEndpointIndependent:
      break;
    case NatMapping::kAddressDependent:
      key.remote_ip = remote.ip;
      break;
    case NatMapping::kAddressAndPortDependent:
      key.remote_ip = remote.ip;
      key.remote_port = remote.port;
      break;
  }
  return key;
}

bool NatTable::PortFree(IpProtocol protocol, uint16_t port) const {
  return by_port_.count(PortKey{protocol, port}) == 0;
}

uint16_t NatTable::AllocatePort(IpProtocol protocol, uint16_t private_port) {
  if (allocation_ == NatPortAllocation::kPortPreserving && private_port != 0 &&
      PortFree(protocol, private_port)) {
    return private_port;
  }
  if (allocation_ == NatPortAllocation::kRandom) {
    for (int attempt = 0; attempt < 4096; ++attempt) {
      const uint16_t port = static_cast<uint16_t>(
          port_base_ + rng_.NextBelow(static_cast<uint64_t>(65536 - port_base_)));
      if (PortFree(protocol, port)) {
        return port;
      }
    }
    return 0;
  }
  // Sequential (also the port-preserving fallback). Wraps within
  // [port_base_, 65535].
  uint16_t& next_port = protocol == IpProtocol::kTcp ? next_port_tcp_ : next_port_udp_;
  const int pool = 65536 - port_base_;
  for (int attempt = 0; attempt < pool; ++attempt) {
    const uint16_t port = next_port;
    next_port = next_port >= 65535 ? port_base_ : static_cast<uint16_t>(next_port + 1);
    if (PortFree(protocol, port)) {
      return port;
    }
  }
  return 0;
}

NatTable::Entry* NatTable::MapOutbound(IpProtocol protocol, const Endpoint& private_ep,
                                       const Endpoint& remote, SimTime now) {
  port_users_[PortKey{protocol, private_ep.port}].insert(private_ep.ip);
  const OutKey key =
      MakeOutKey(protocol, private_ep, remote, EffectiveMapping(protocol, private_ep));
  auto it = by_out_.find(key);
  if (it == by_out_.end()) {
    const uint16_t port = AllocatePort(protocol, private_ep.port);
    if (port == 0) {
      return nullptr;
    }
    auto entry = std::make_unique<Entry>();
    entry->protocol = protocol;
    entry->private_ep = private_ep;
    entry->public_port = port;
    Entry* raw = entry.get();
    by_port_[PortKey{protocol, port}] = raw;
    it = by_out_.emplace(key, std::move(entry)).first;
  }
  Entry* entry = it->second.get();
  entry->Refresh(remote, now);
  return entry;
}

NatTable::Entry* NatTable::FindOutbound(IpProtocol protocol, const Endpoint& private_ep,
                                        const Endpoint& remote) {
  auto it = by_out_.find(
      MakeOutKey(protocol, private_ep, remote, EffectiveMapping(protocol, private_ep)));
  return it == by_out_.end() ? nullptr : it->second.get();
}

NatTable::Entry* NatTable::FindByPublicPort(IpProtocol protocol, uint16_t public_port) {
  auto it = by_port_.find(PortKey{protocol, public_port});
  return it == by_port_.end() ? nullptr : it->second;
}

bool NatTable::AllowsInbound(const Entry& entry, NatFiltering filtering, const Endpoint& remote,
                             SimTime now, SimDuration session_timeout) const {
  if (filtering == NatFiltering::kEndpointIndependent) {
    return true;
  }
  for (const auto& [key, other] : by_port_) {
    if (key.protocol != entry.protocol || other->private_ep != entry.private_ep) {
      continue;
    }
    if (other->AllowsInbound(filtering, remote, now, session_timeout)) {
      return true;
    }
  }
  return false;
}

NatTable::Entry* NatTable::FindByPrivateEndpoint(IpProtocol protocol,
                                                 const Endpoint& private_ep) {
  for (auto& [key, entry] : by_port_) {
    if (key.protocol == protocol && entry->private_ep == private_ep) {
      return entry;
    }
  }
  return nullptr;
}

size_t NatTable::Expire(SimTime now, const Timeouts& timeouts) {
  size_t expired = 0;
  for (auto it = by_out_.begin(); it != by_out_.end();) {
    Entry& entry = *it->second;
    SimDuration limit = timeouts.udp;
    if (entry.protocol == IpProtocol::kTcp) {
      limit = (entry.tcp_established && !entry.tcp_closing) ? timeouts.tcp_established
                                                            : timeouts.tcp_transitory;
    }
    // Per-session timers first (§3.6), then the mapping itself once every
    // session is gone.
    for (auto session = entry.sessions.begin(); session != entry.sessions.end();) {
      if (now - session->second >= limit) {
        session = entry.sessions.erase(session);
      } else {
        ++session;
      }
    }
    if (entry.sessions.empty()) {
      by_port_.erase(PortKey{entry.protocol, entry.public_port});
      it = by_out_.erase(it);
      ++expired;
    } else {
      ++it;
    }
  }
  return expired;
}

}  // namespace natpunch
