#include "src/nat/nat_table.h"

namespace natpunch {

bool NatTable::Entry::AllowsInbound(NatFiltering filtering, const Endpoint& remote, SimTime now,
                                    SimDuration session_timeout) const {
  switch (filtering) {
    case NatFiltering::kEndpointIndependent:
      return true;
    case NatFiltering::kAddressDependent:
      for (const Session& session : sessions) {
        if (session.remote.ip == remote.ip && now - session.last < session_timeout) {
          return true;
        }
      }
      return false;
    case NatFiltering::kAddressAndPortDependent:
      for (const Session& session : sessions) {
        if (session.remote == remote && now - session.last < session_timeout) {
          return true;
        }
      }
      return false;
  }
  return false;
}

NatTable::NatTable(NatMapping mapping, NatPortAllocation allocation, uint16_t port_base, Rng rng,
                   bool symmetric_on_contention)
    : mapping_(mapping),
      allocation_(allocation),
      symmetric_on_contention_(symmetric_on_contention),
      port_base_(port_base),
      next_port_udp_(port_base),
      next_port_tcp_(port_base),
      rng_(rng) {}

NatMapping NatTable::EffectiveMapping(IpProtocol protocol, const Endpoint& private_ep) const {
  if (symmetric_on_contention_) {
    const PortUsers* users = port_users_.Find(PortKey{protocol, private_ep.port});
    if (users != nullptr && users->multi) {
      return NatMapping::kAddressAndPortDependent;
    }
  }
  return mapping_;
}

NatTable::OutKey NatTable::MakeOutKey(IpProtocol protocol, const Endpoint& private_ep,
                                      const Endpoint& remote, NatMapping mapping) const {
  OutKey key{protocol, private_ep, Ipv4Address(), 0};
  switch (mapping) {
    case NatMapping::kEndpointIndependent:
      break;
    case NatMapping::kAddressDependent:
      key.remote_ip = remote.ip;
      break;
    case NatMapping::kAddressAndPortDependent:
      key.remote_ip = remote.ip;
      key.remote_port = remote.port;
      break;
  }
  return key;
}

bool NatTable::PortFree(IpProtocol protocol, uint16_t port) const {
  return !by_port_.Contains(PortKey{protocol, port});
}

uint16_t NatTable::AllocatePort(IpProtocol protocol, uint16_t private_port) {
  if (allocation_ == NatPortAllocation::kPortPreserving && private_port != 0 &&
      PortFree(protocol, private_port)) {
    return private_port;
  }
  if (allocation_ == NatPortAllocation::kRandom) {
    for (int attempt = 0; attempt < 4096; ++attempt) {
      const uint16_t port = static_cast<uint16_t>(
          port_base_ + rng_.NextBelow(static_cast<uint64_t>(65536 - port_base_)));
      if (PortFree(protocol, port)) {
        return port;
      }
    }
    return 0;
  }
  // Sequential (also the port-preserving fallback). Wraps within
  // [port_base_, 65535].
  uint16_t& next_port = protocol == IpProtocol::kTcp ? next_port_tcp_ : next_port_udp_;
  const int pool = 65536 - port_base_;
  for (int attempt = 0; attempt < pool; ++attempt) {
    const uint16_t port = next_port;
    next_port = next_port >= 65535 ? port_base_ : static_cast<uint16_t>(next_port + 1);
    if (PortFree(protocol, port)) {
      return port;
    }
  }
  return 0;
}

// --- Entry pool -------------------------------------------------------------

NatTable::Entry* NatTable::AcquireEntry() {
  if (free_list_ != nullptr) {
    Entry* entry = free_list_;
    free_list_ = entry->free_next;
    entry->free_next = nullptr;
    return entry;
  }
  arena_.push_back(std::make_unique<Entry>());
  return arena_.back().get();
}

void NatTable::ReleaseEntry(Entry* entry) {
  entry->sessions.clear();  // keeps capacity for the next tenant
  entry->tcp_inbound_seen = false;
  entry->tcp_established = false;
  entry->tcp_closing = false;
  entry->lru_prev = nullptr;
  entry->lru_next = nullptr;
  entry->chain_prev = nullptr;
  entry->chain_next = nullptr;
  entry->free_next = free_list_;
  free_list_ = entry;
}

// --- Intrusive expiry lists -------------------------------------------------

void NatTable::ListUnlink(Entry* entry) {
  List& list = lists_[entry->lru_class];
  if (entry->lru_prev != nullptr) {
    entry->lru_prev->lru_next = entry->lru_next;
  } else {
    list.head = entry->lru_next;
  }
  if (entry->lru_next != nullptr) {
    entry->lru_next->lru_prev = entry->lru_prev;
  } else {
    list.tail = entry->lru_prev;
  }
  entry->lru_prev = nullptr;
  entry->lru_next = nullptr;
}

void NatTable::ListAppend(int cls, Entry* entry) {
  List& list = lists_[cls];
  entry->lru_class = cls;
  entry->lru_prev = list.tail;
  entry->lru_next = nullptr;
  if (list.tail != nullptr) {
    list.tail->lru_next = entry;
  } else {
    list.head = entry;
  }
  list.tail = entry;
}

void NatTable::ListInsertSorted(int cls, Entry* entry) {
  List& list = lists_[cls];
  Entry* after = list.tail;
  while (after != nullptr && after->last_refresh > entry->last_refresh) {
    after = after->lru_prev;
  }
  entry->lru_class = cls;
  entry->lru_prev = after;
  if (after != nullptr) {
    entry->lru_next = after->lru_next;
    after->lru_next = entry;
  } else {
    entry->lru_next = list.head;
    list.head = entry;
  }
  if (entry->lru_next != nullptr) {
    entry->lru_next->lru_prev = entry;
  } else {
    list.tail = entry;
  }
}

void NatTable::MoveToListTail(Entry* entry) {
  // Refresh times are monotone, so tail append preserves the sort.
  if (lists_[entry->lru_class].tail == entry) {
    return;
  }
  const int cls = entry->lru_class;
  ListUnlink(entry);
  ListAppend(cls, entry);
}

// --- Private-endpoint chains ------------------------------------------------

void NatTable::ChainInsert(Entry* entry) {
  Entry** head = by_priv_.FindOrInsert(PrivKey{entry->protocol, entry->private_ep});
  entry->chain_prev = nullptr;
  entry->chain_next = *head;
  if (*head != nullptr) {
    (*head)->chain_prev = entry;
  }
  *head = entry;
}

void NatTable::ChainUnlink(Entry* entry) {
  if (entry->chain_next != nullptr) {
    entry->chain_next->chain_prev = entry->chain_prev;
  }
  if (entry->chain_prev != nullptr) {
    entry->chain_prev->chain_next = entry->chain_next;
  } else {
    const PrivKey key{entry->protocol, entry->private_ep};
    if (entry->chain_next != nullptr) {
      *by_priv_.Find(key) = entry->chain_next;
    } else {
      by_priv_.Erase(key);
    }
  }
  entry->chain_prev = nullptr;
  entry->chain_next = nullptr;
}

// --- Public API -------------------------------------------------------------

NatTable::Entry* NatTable::MapOutbound(IpProtocol protocol, const Endpoint& private_ep,
                                       const Endpoint& remote, SimTime now) {
  PortUsers* users = port_users_.FindOrInsert(PortKey{protocol, private_ep.port});
  if (!users->any) {
    users->any = true;
    users->first = private_ep.ip;
  } else if (!users->multi && users->first != private_ep.ip) {
    users->multi = true;
    // EffectiveMapping for this port just changed; outbound flow caches
    // keyed under the old mapping behavior must miss.
    ++contention_epoch_;
  }
  const OutKey key =
      MakeOutKey(protocol, private_ep, remote, EffectiveMapping(protocol, private_ep));
  bool inserted = false;
  Entry** slot = by_out_.FindOrInsert(key, &inserted);
  if (inserted) {
    const uint16_t port = AllocatePort(protocol, private_ep.port);
    if (port == 0) {
      by_out_.Erase(key);
      return nullptr;
    }
    Entry* entry = AcquireEntry();
    entry->protocol = protocol;
    entry->private_ep = private_ep;
    entry->public_port = port;
    entry->out_key = key;
    *slot = entry;
    by_port_.InsertOrAssign(PortKey{protocol, port}, entry);
    ChainInsert(entry);
    entry->Refresh(remote, now);
    ListAppend(ClassOf(*entry), entry);
    return entry;
  }
  Entry* entry = *slot;
  Touch(entry, remote, now);
  return entry;
}

NatTable::Entry* NatTable::FindOutbound(IpProtocol protocol, const Endpoint& private_ep,
                                        const Endpoint& remote) {
  Entry** slot = by_out_.Find(
      MakeOutKey(protocol, private_ep, remote, EffectiveMapping(protocol, private_ep)));
  return slot == nullptr ? nullptr : *slot;
}

NatTable::Entry* NatTable::FindByPublicPort(IpProtocol protocol, uint16_t public_port) {
  Entry** slot = by_port_.Find(PortKey{protocol, public_port});
  return slot == nullptr ? nullptr : *slot;
}

bool NatTable::AllowsInbound(const Entry& entry, NatFiltering filtering, const Endpoint& remote,
                             SimTime now, SimDuration session_timeout) const {
  if (filtering == NatFiltering::kEndpointIndependent) {
    return true;
  }
  Entry* const* head = by_priv_.Find(PrivKey{entry.protocol, entry.private_ep});
  for (const Entry* other = head == nullptr ? nullptr : *head; other != nullptr;
       other = other->chain_next) {
    if (other->AllowsInbound(filtering, remote, now, session_timeout)) {
      return true;
    }
  }
  return false;
}

NatTable::Entry* NatTable::FindByPrivateEndpoint(IpProtocol protocol,
                                                 const Endpoint& private_ep) {
  Entry* const* head = by_priv_.Find(PrivKey{protocol, private_ep});
  Entry* best = nullptr;
  for (Entry* other = head == nullptr ? nullptr : *head; other != nullptr;
       other = other->chain_next) {
    if (best == nullptr || other->public_port < best->public_port) {
      best = other;
    }
  }
  return best;
}

void NatTable::RemoveEntry(Entry* entry) {
  ListUnlink(entry);
  ChainUnlink(entry);
  by_port_.Erase(PortKey{entry->protocol, entry->public_port});
  by_out_.Erase(entry->out_key);
  ReleaseEntry(entry);
  ++generation_;
}

size_t NatTable::Expire(SimTime now, const Timeouts& timeouts) {
  const SimDuration limits[kClassCount] = {timeouts.udp, timeouts.tcp_established,
                                           timeouts.tcp_transitory};
  size_t expired = 0;
  // Pop stale heads. An entry whose TCP flags were flipped without a
  // Reclassify() call (unit tests poke the flags directly) is lazily
  // migrated to its true class list when it surfaces; the outer loop
  // re-scans because a migration can land an entry on an already-visited
  // list. Migration is idempotent, so this terminates.
  bool migrated = true;
  while (migrated) {
    migrated = false;
    for (int cls = 0; cls < kClassCount; ++cls) {
      while (Entry* head = lists_[cls].head) {
        const int actual = ClassOf(*head);
        if (actual != cls) {
          ListUnlink(head);
          ListInsertSorted(actual, head);
          migrated = true;
          continue;
        }
        if (now - head->last_refresh < limits[cls]) {
          break;
        }
        RemoveEntry(head);
        ++expired;
      }
    }
  }
  return expired;
}

void NatTable::Clear() {
  for (List& list : lists_) {
    Entry* entry = list.head;
    while (entry != nullptr) {
      Entry* next = entry->lru_next;
      ReleaseEntry(entry);
      entry = next;
    }
    list.head = nullptr;
    list.tail = nullptr;
  }
  by_out_.Clear();
  by_port_.Clear();
  by_priv_.Clear();
  port_users_.Clear();
  ++generation_;
}

}  // namespace natpunch
