// NAT behavior configuration.
//
// Section 5 of the paper identifies the behavioral properties that decide
// whether hole punching works. Instead of modeling NAT products as
// subclasses, every property is an orthogonal knob here, and the simulated
// vendor fleet (src/fleet) samples mixes of these knobs; benchmarks flip
// them individually for ablations.

#ifndef SRC_NAT_NAT_CONFIG_H_
#define SRC_NAT_NAT_CONFIG_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/netsim/sim_time.h"

namespace natpunch {

// How the NAT chooses the public endpoint for an outbound session (§5.1).
// kEndpointIndependent is the "cone NAT" of RFC 3489: one private endpoint
// maps to one public endpoint regardless of destination — the property hole
// punching requires. The other two are flavors of "symmetric" NAT.
enum class NatMapping {
  kEndpointIndependent,
  kAddressDependent,
  kAddressAndPortDependent,
};

// Which inbound packets are accepted on an existing mapping.
// kEndpointIndependent = "full cone" (no filtering beyond mapping
// existence), kAddressDependent = "restricted cone", kAddressAndPortDependent
// = "port-restricted cone". Filtering does not break hole punching — both
// sides' first outbound packets open the filter state.
enum class NatFiltering {
  kEndpointIndependent,
  kAddressDependent,
  kAddressAndPortDependent,
};

// Public port selection for new mappings.
enum class NatPortAllocation {
  kPortPreserving,  // try the private port first, fall back to sequential
  kSequential,      // monotonically increasing (predictable, §5.1 prediction)
  kRandom,          // uniform over the pool (defeats prediction)
};

// What the NAT does with an unsolicited inbound TCP SYN (§5.2). Anything
// but kDrop interferes with TCP hole punching: RST aborts the peer's
// connect() (recoverable by retry, but slower), and some NATs send ICMP.
enum class NatUnsolicitedTcp {
  kDrop,
  kRst,
  kIcmp,
};

struct NatConfig {
  NatMapping mapping = NatMapping::kEndpointIndependent;
  NatFiltering filtering = NatFiltering::kAddressAndPortDependent;
  NatPortAllocation port_allocation = NatPortAllocation::kSequential;
  NatUnsolicitedTcp unsolicited_tcp = NatUnsolicitedTcp::kDrop;

  // Basic NAT (§2.1 / RFC 2663): translate IP addresses only, assigning
  // each inside host its own public address from a pool; ports pass through
  // untouched. Trivially consistent, so hole punching "applies trivially".
  // The pool is [public_ip+1 .. public_ip+basic_pool_size].
  bool basic_nat = false;
  int basic_pool_size = 8;

  // §6.3: some NATs translate consistently only while a private port is
  // used by ONE inside host, and "switch to symmetric NAT or even worse
  // behaviors if two or more clients with different IP addresses ... try to
  // communicate through the NAT from the same private port number". The
  // single-client NAT Check cannot see this; the multi-client extension
  // (src/natcheck/multi_client.h) can.
  bool symmetric_on_port_contention = false;

  // Hairpin (a.k.a. loopback) translation, §3.5: a packet from the private
  // side addressed to one of the NAT's own public mappings is translated on
  // both src and dst and looped back inside. Required for multi-level NAT
  // scenarios (Fig. 6) and for the public-endpoint path behind a common NAT
  // (Fig. 4).
  bool hairpin_udp = false;
  bool hairpin_tcp = false;
  // §6.3: a simplistic NAT may treat hairpin traffic arriving at its public
  // ports as untrusted and apply inbound filtering to it, defeating hairpin
  // hole punching even though translation is supported.
  bool hairpin_filtered = false;

  // §5.3 / §3.1: a badly behaved NAT that scans packet payloads for 4-byte
  // values that look like IP addresses it knows, and rewrites them like it
  // rewrites headers. Defeated by address obfuscation.
  bool rewrite_payload_addresses = false;

  // Whether inbound traffic refreshes a session's idle timer. Outbound
  // refresh is mandatory NAT behavior; inbound refresh is optional (and
  // RFC 4787 discourages relying on it) — when off, only the inside host's
  // own transmissions keep a session alive.
  bool refresh_on_inbound = true;

  // Idle timeouts (§3.6). Some deployed NATs go as low as 20 seconds for
  // UDP, which is why applications need keep-alives.
  SimDuration udp_timeout = Seconds(120);
  SimDuration tcp_established_timeout = Seconds(7200);
  SimDuration tcp_transitory_timeout = Seconds(120);

  // First public port handed out by the sequential allocator. 62000 matches
  // the paper's running example.
  uint16_t port_base = 62000;

  // Convenience predicates.
  bool IsCone() const { return mapping == NatMapping::kEndpointIndependent; }
  bool FiltersUnsolicited() const { return filtering != NatFiltering::kEndpointIndependent; }

  // Whether this NAT supports hole punching per the paper's criteria:
  // consistent endpoint translation for both; for TCP additionally "does
  // not reject unsolicited SYNs with RST/ICMP". With endpoint-independent
  // filtering nothing on an existing mapping is ever unsolicited, so the
  // rejection policy cannot fire during punching.
  bool SupportsUdpHolePunching() const { return IsCone(); }
  bool SupportsTcpHolePunching() const {
    return IsCone() && (unsolicited_tcp == NatUnsolicitedTcp::kDrop ||
                        filtering == NatFiltering::kEndpointIndependent);
  }

  // RFC 3489 classification string ("full cone", "restricted cone",
  // "port-restricted cone", "symmetric").
  std::string Rfc3489Class() const;

  std::string ToString() const;
};

std::string_view NatMappingName(NatMapping m);
std::string_view NatFilteringName(NatFiltering f);
std::string_view NatPortAllocationName(NatPortAllocation p);
std::string_view NatUnsolicitedTcpName(NatUnsolicitedTcp u);

}  // namespace natpunch

#endif  // SRC_NAT_NAT_CONFIG_H_
