// The NAPT translation table.
//
// A mapping associates one private session endpoint (plus, for symmetric
// NATs, the remote destination) with one public port on the NAT. The table
// keeps two indexes: an outbound key (shaped by the mapping behavior) and
// the public port for inbound lookups. Filtering state — which remote
// endpoints the private host has contacted through each mapping — lives on
// the entry, because filtering is evaluated per mapping regardless of the
// mapping behavior that created it.

#ifndef SRC_NAT_NAT_TABLE_H_
#define SRC_NAT_NAT_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/nat/nat_config.h"
#include "src/netsim/address.h"
#include "src/netsim/packet.h"
#include "src/netsim/sim_time.h"
#include "src/util/rng.h"

namespace natpunch {

class NatTable {
 public:
  struct Entry {
    IpProtocol protocol = IpProtocol::kUdp;
    Endpoint private_ep;
    uint16_t public_port = 0;
    SimTime last_refresh;

    // Per-session activity (§3.6: "many NATs associate UDP idle timers with
    // individual UDP sessions defined by a particular pair of endpoints, so
    // sending keep-alives on one session will not keep other sessions
    // active"). Keyed by remote endpoint; also the filtering state.
    std::map<Endpoint, SimTime> sessions;

    // TCP lifetime tracking (§4: "the TCP state machine gives NATs a
    // standard way to determine the precise lifetime of a session").
    bool tcp_inbound_seen = false;
    bool tcp_established = false;
    bool tcp_closing = false;

    // Does the filtering policy admit inbound traffic from `remote`, given
    // that sessions idle past `session_timeout` no longer count?
    bool AllowsInbound(NatFiltering filtering, const Endpoint& remote, SimTime now,
                       SimDuration session_timeout) const;

    SimTime NewestActivity() const;
    void Refresh(const Endpoint& remote, SimTime now) {
      sessions[remote] = now;
      last_refresh = now;
    }
  };

  NatTable(NatMapping mapping, NatPortAllocation allocation, uint16_t port_base, Rng rng,
           bool symmetric_on_contention = false);

  // Outbound: find or create the mapping for (private_ep -> remote),
  // refresh it, and record the remote for filtering. Returns nullptr only
  // when the port pool is exhausted.
  Entry* MapOutbound(IpProtocol protocol, const Endpoint& private_ep, const Endpoint& remote,
                     SimTime now);

  // Outbound lookup without creating or refreshing.
  Entry* FindOutbound(IpProtocol protocol, const Endpoint& private_ep, const Endpoint& remote);

  // Inbound: lookup by the public port the packet was addressed to.
  Entry* FindByPublicPort(IpProtocol protocol, uint16_t public_port);

  // Reverse lookup by private endpoint (linear; used only for translating
  // outbound ICMP error quotations).
  Entry* FindByPrivateEndpoint(IpProtocol protocol, const Endpoint& private_ep);

  // Filtering decision per RFC 4787 semantics: the filter state belongs to
  // the *internal endpoint*, so the remote is checked against the union of
  // fresh sessions across every mapping of entry.private_ep. (For a cone
  // NAT that union is one entry; for symmetric mappings it spans them.)
  bool AllowsInbound(const Entry& entry, NatFiltering filtering, const Endpoint& remote,
                     SimTime now, SimDuration session_timeout) const;

  // Remove entries idle past their class timeout. Returns how many expired.
  struct Timeouts {
    SimDuration udp;
    SimDuration tcp_established;
    SimDuration tcp_transitory;
  };
  size_t Expire(SimTime now, const Timeouts& timeouts);

  size_t size() const { return by_port_.size(); }

  // Drop all state (failure injection: a NAT reboot).
  void Clear() {
    by_out_.clear();
    by_port_.clear();
    port_users_.clear();
  }

  // The port the sequential allocator would hand out next; exposed because
  // the port-prediction variant (§5.1) literally exploits this.
  uint16_t next_sequential_port(IpProtocol protocol) const {
    return protocol == IpProtocol::kTcp ? next_port_tcp_ : next_port_udp_;
  }

 private:
  struct OutKey {
    IpProtocol protocol;
    Endpoint private_ep;
    // Zeroed unless the mapping behavior depends on them.
    Ipv4Address remote_ip;
    uint16_t remote_port;

    auto operator<=>(const OutKey&) const = default;
  };
  struct PortKey {
    IpProtocol protocol;
    uint16_t port;

    auto operator<=>(const PortKey&) const = default;
  };

  // Mapping behavior currently in force for this private endpoint: the
  // configured one, unless §6.3 port contention demoted it to symmetric.
  NatMapping EffectiveMapping(IpProtocol protocol, const Endpoint& private_ep) const;
  OutKey MakeOutKey(IpProtocol protocol, const Endpoint& private_ep, const Endpoint& remote,
                    NatMapping mapping) const;
  // 0 on pool exhaustion.
  uint16_t AllocatePort(IpProtocol protocol, uint16_t private_port);
  bool PortFree(IpProtocol protocol, uint16_t port) const;

  NatMapping mapping_;
  NatPortAllocation allocation_;
  bool symmetric_on_contention_;
  // Which inside hosts are using each private port (contention tracking).
  std::map<PortKey, std::set<Ipv4Address>> port_users_;
  uint16_t port_base_;
  // Independent sequential counters per transport protocol, matching real
  // NATs whose UDP and TCP port pools are disjoint.
  uint16_t next_port_udp_;
  uint16_t next_port_tcp_;
  Rng rng_;

  std::map<OutKey, std::unique_ptr<Entry>> by_out_;
  std::map<PortKey, Entry*> by_port_;
};

}  // namespace natpunch

#endif  // SRC_NAT_NAT_TABLE_H_
