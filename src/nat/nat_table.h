// The NAPT translation table.
//
// A mapping associates one private session endpoint (plus, for symmetric
// NATs, the remote destination) with one public port on the NAT. The table
// keeps three flat-hash indexes: an outbound key (shaped by the mapping
// behavior), the public port for inbound lookups, and the private endpoint
// for ICMP quotation translation. Filtering state — which remote endpoints
// the private host has contacted through each mapping — lives on the entry,
// because filtering is evaluated per mapping regardless of the mapping
// behavior that created it.
//
// Expiry is O(expired), not O(table): entries are threaded onto intrusive
// doubly-linked lists ordered by last_refresh, one per timeout class (UDP,
// TCP-established, TCP-transitory), and Expire() pops from each list head
// until it finds a fresh entry. List order — never hash-iteration order —
// drives expiry, so port reuse and every downstream RNG draw stay
// deterministic (see DESIGN.md "NAT datapath fast path").
//
// Entries are pooled: expiry and Clear() recycle them (keeping their
// sessions vector capacity), so steady-state mapping churn performs zero
// heap allocations once the table has reached its high-water size.

#ifndef SRC_NAT_NAT_TABLE_H_
#define SRC_NAT_NAT_TABLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/nat/nat_config.h"
#include "src/netsim/address.h"
#include "src/netsim/packet.h"
#include "src/netsim/sim_time.h"
#include "src/util/flat_hash.h"
#include "src/util/rng.h"

namespace natpunch {

class NatTable {
 public:
  struct OutKey {
    IpProtocol protocol = IpProtocol::kUdp;
    Endpoint private_ep;
    // Zeroed unless the mapping behavior depends on them.
    Ipv4Address remote_ip;
    uint16_t remote_port = 0;

    bool operator==(const OutKey&) const = default;
  };
  struct PortKey {
    IpProtocol protocol = IpProtocol::kUdp;
    uint16_t port = 0;

    bool operator==(const PortKey&) const = default;
  };
  // Index key for the per-private-endpoint entry chain.
  struct PrivKey {
    IpProtocol protocol = IpProtocol::kUdp;
    Endpoint private_ep;

    bool operator==(const PrivKey&) const = default;
  };

  struct Entry {
    IpProtocol protocol = IpProtocol::kUdp;
    Endpoint private_ep;
    uint16_t public_port = 0;
    SimTime last_refresh;

    // Per-session activity (§3.6: "many NATs associate UDP idle timers with
    // individual UDP sessions defined by a particular pair of endpoints, so
    // sending keep-alives on one session will not keep other sessions
    // active"). Also the filtering state. Insertion-ordered; every query is
    // a time-gated boolean OR, so order is unobservable.
    struct Session {
      Endpoint remote;
      SimTime last;
    };
    std::vector<Session> sessions;

    // TCP lifetime tracking (§4: "the TCP state machine gives NATs a
    // standard way to determine the precise lifetime of a session").
    bool tcp_inbound_seen = false;
    bool tcp_established = false;
    bool tcp_closing = false;

    // Does the filtering policy admit inbound traffic from `remote`, given
    // that sessions idle past `session_timeout` no longer count?
    bool AllowsInbound(NatFiltering filtering, const Endpoint& remote, SimTime now,
                       SimDuration session_timeout) const;

    // last_refresh is the max over session refresh times by construction.
    SimTime NewestActivity() const { return last_refresh; }
    void Refresh(const Endpoint& remote, SimTime now) {
      for (Session& session : sessions) {
        if (session.remote == remote) {
          session.last = now;
          last_refresh = now;
          return;
        }
      }
      sessions.push_back(Session{remote, now});
      last_refresh = now;
    }

    // --- NatTable internals (intrusive links; never touch from outside) ---
    OutKey out_key;                 // for index removal at expiry
    Entry* lru_prev = nullptr;      // expiry list, oldest first
    Entry* lru_next = nullptr;
    int lru_class = 0;              // which expiry list this entry is on
    Entry* chain_prev = nullptr;    // per-(protocol, private_ep) chain
    Entry* chain_next = nullptr;
    Entry* free_next = nullptr;     // entry pool free list
  };

  NatTable(NatMapping mapping, NatPortAllocation allocation, uint16_t port_base, Rng rng,
           bool symmetric_on_contention = false);

  // Outbound: find or create the mapping for (private_ep -> remote),
  // refresh it, and record the remote for filtering. Returns nullptr only
  // when the port pool is exhausted.
  Entry* MapOutbound(IpProtocol protocol, const Endpoint& private_ep, const Endpoint& remote,
                     SimTime now);

  // Outbound lookup without creating or refreshing.
  Entry* FindOutbound(IpProtocol protocol, const Endpoint& private_ep, const Endpoint& remote);

  // Inbound: lookup by the public port the packet was addressed to.
  Entry* FindByPublicPort(IpProtocol protocol, uint16_t public_port);

  // Reverse lookup by private endpoint (used for translating outbound ICMP
  // error quotations). O(mappings of that endpoint) via the entry chain;
  // returns the lowest public port to match the old full-scan order.
  Entry* FindByPrivateEndpoint(IpProtocol protocol, const Endpoint& private_ep);

  // Filtering decision per RFC 4787 semantics: the filter state belongs to
  // the *internal endpoint*, so the remote is checked against the union of
  // fresh sessions across every mapping of entry.private_ep. (For a cone
  // NAT that union is one entry; for symmetric mappings it spans them.)
  bool AllowsInbound(const Entry& entry, NatFiltering filtering, const Endpoint& remote,
                     SimTime now, SimDuration session_timeout) const;

  // Refresh an entry through the table so its expiry-list position tracks
  // last_refresh. All production refreshes go through here (or MapOutbound).
  void Touch(Entry* entry, const Endpoint& remote, SimTime now) {
    entry->Refresh(remote, now);
    MoveToListTail(entry);
  }

  // Re-file `entry` under its current timeout class after TCP flag changes.
  void Reclassify(Entry* entry) {
    const int cls = ClassOf(*entry);
    if (cls != entry->lru_class) {
      ListUnlink(entry);
      ListInsertSorted(cls, entry);
    }
  }

  // Remove entries idle past their class timeout. Returns how many expired.
  struct Timeouts {
    SimDuration udp;
    SimDuration tcp_established;
    SimDuration tcp_transitory;
  };
  size_t Expire(SimTime now, const Timeouts& timeouts);

  size_t size() const { return by_port_.size(); }

  // Drop all state (failure injection: a NAT reboot).
  void Clear();

  // Bumped whenever any entry is removed (expiry or Clear); cached Entry*
  // from an older generation must not be dereferenced.
  uint64_t generation() const { return generation_; }
  // Bumped when a private port gains a second distinct inside user — the
  // event that can flip EffectiveMapping under symmetric_on_port_contention,
  // changing which outbound key a (private_ep, remote) pair maps through.
  uint64_t contention_epoch() const { return contention_epoch_; }

  // The port the sequential allocator would hand out next; exposed because
  // the port-prediction variant (§5.1) literally exploits this.
  uint16_t next_sequential_port(IpProtocol protocol) const {
    return protocol == IpProtocol::kTcp ? next_port_tcp_ : next_port_udp_;
  }

 private:
  struct OutKeyHash {
    size_t operator()(const OutKey& k) const {
      uint64_t h = static_cast<uint64_t>(k.protocol);
      h = h * 0x9e3779b97f4a7c15ULL + k.private_ep.ip.bits();
      h = h * 0x9e3779b97f4a7c15ULL + k.private_ep.port;
      h = h * 0x9e3779b97f4a7c15ULL + k.remote_ip.bits();
      h = h * 0x9e3779b97f4a7c15ULL + k.remote_port;
      return static_cast<size_t>(h);
    }
  };
  struct PortKeyHash {
    size_t operator()(const PortKey& k) const {
      return (static_cast<size_t>(k.protocol) << 16) | k.port;
    }
  };
  struct PrivKeyHash {
    size_t operator()(const PrivKey& k) const {
      uint64_t h = static_cast<uint64_t>(k.protocol);
      h = h * 0x9e3779b97f4a7c15ULL + k.private_ep.ip.bits();
      h = h * 0x9e3779b97f4a7c15ULL + k.private_ep.port;
      return static_cast<size_t>(h);
    }
  };
  // Which inside hosts are using a private port (§6.3 contention tracking).
  // EffectiveMapping only needs "more than one distinct IP".
  struct PortUsers {
    Ipv4Address first;
    bool any = false;
    bool multi = false;
  };

  // Timeout classes, indexing lists_.
  static constexpr int kClassUdp = 0;
  static constexpr int kClassTcpEstablished = 1;
  static constexpr int kClassTcpTransitory = 2;
  static constexpr int kClassCount = 3;
  struct List {
    Entry* head = nullptr;  // oldest last_refresh
    Entry* tail = nullptr;  // newest last_refresh
  };

  static int ClassOf(const Entry& entry) {
    if (entry.protocol != IpProtocol::kTcp) {
      return kClassUdp;
    }
    return (entry.tcp_established && !entry.tcp_closing) ? kClassTcpEstablished
                                                         : kClassTcpTransitory;
  }

  // Mapping behavior currently in force for this private endpoint: the
  // configured one, unless §6.3 port contention demoted it to symmetric.
  NatMapping EffectiveMapping(IpProtocol protocol, const Endpoint& private_ep) const;
  OutKey MakeOutKey(IpProtocol protocol, const Endpoint& private_ep, const Endpoint& remote,
                    NatMapping mapping) const;
  // 0 on pool exhaustion.
  uint16_t AllocatePort(IpProtocol protocol, uint16_t private_port);
  bool PortFree(IpProtocol protocol, uint16_t port) const;

  Entry* AcquireEntry();
  void ReleaseEntry(Entry* entry);
  // Unlink from every index and recycle. Bumps generation_.
  void RemoveEntry(Entry* entry);

  void ListUnlink(Entry* entry);
  void ListAppend(int cls, Entry* entry);
  // Insert keeping the list sorted by last_refresh (walks back from the
  // tail; used when re-filing an entry whose refresh time is not newest).
  void ListInsertSorted(int cls, Entry* entry);
  void MoveToListTail(Entry* entry);

  void ChainInsert(Entry* entry);
  void ChainUnlink(Entry* entry);

  NatMapping mapping_;
  NatPortAllocation allocation_;
  bool symmetric_on_contention_;
  FlatHashMap<PortKey, PortUsers, PortKeyHash> port_users_;
  uint16_t port_base_;
  // Independent sequential counters per transport protocol, matching real
  // NATs whose UDP and TCP port pools are disjoint.
  uint16_t next_port_udp_;
  uint16_t next_port_tcp_;
  Rng rng_;

  FlatHashMap<OutKey, Entry*, OutKeyHash> by_out_;
  FlatHashMap<PortKey, Entry*, PortKeyHash> by_port_;
  // Head of the doubly-linked chain of this endpoint's entries (symmetric
  // mappings give one endpoint many entries; cone NATs exactly one).
  FlatHashMap<PrivKey, Entry*, PrivKeyHash> by_priv_;

  List lists_[kClassCount];

  // Entry pool: arena of all entries ever created plus an intrusive free
  // list. Recycled entries keep their sessions vector capacity.
  std::vector<std::unique_ptr<Entry>> arena_;
  Entry* free_list_ = nullptr;

  uint64_t generation_ = 0;
  uint64_t contention_epoch_ = 0;
};

}  // namespace natpunch

#endif  // SRC_NAT_NAT_TABLE_H_
