#include "src/nat/nat_device.h"

#include "src/util/logging.h"

namespace natpunch {

namespace {
constexpr SimDuration kSweepInterval = Seconds(5);
}  // namespace

NatDevice::NatDevice(Network* network, std::string name, NatConfig config)
    : Node(network, std::move(name)),
      config_(config),
      table_(config.mapping, config.port_allocation, config.port_base, network->rng().Fork(),
             config.symmetric_on_port_contention) {
  if (obs::MetricsRegistry* reg = network->metrics()) {
    char name[96];
    const auto metric = [&](const char* suffix) {
      const int n = std::snprintf(name, sizeof(name), "nat.%s.%s", name_.c_str(), suffix);
      return reg->GetCounter(std::string_view(name, static_cast<size_t>(n)));
    };
    metric_mappings_created_ = metric("mappings_created");
    metric_mappings_expired_ = metric("mappings_expired");
    metric_filtered_ = metric("filtered_drops");
    metric_hairpins_ = metric("hairpins");
    metric_rejections_ = metric("rejections");
    metric_flowcache_hits_ = metric("flowcache_hits");
    metric_flowcache_misses_ = metric("flowcache_misses");
  }
  ScheduleSweep();
}

void NatDevice::ScheduleSweep() {
  sweep_timer_.Bind<&NatDevice::SweepTick>(this);
  network_->event_loop().ScheduleTimerAfter(kSweepInterval, &sweep_timer_);
}

void NatDevice::SweepTick() {
  CountExpired(table_.Expire(network_->now(), CurrentTimeouts()));
  if (config_.basic_nat) {
    ExpireBasicSessions();
  }
  ScheduleSweep();
}

NatTable::Timeouts NatDevice::CurrentTimeouts() const {
  return NatTable::Timeouts{config_.udp_timeout, config_.tcp_established_timeout,
                            config_.tcp_transitory_timeout};
}

SimDuration NatDevice::SessionTimeoutFor(const NatTable::Entry& entry) const {
  if (entry.protocol == IpProtocol::kTcp) {
    return (entry.tcp_established && !entry.tcp_closing) ? config_.tcp_established_timeout
                                                         : config_.tcp_transitory_timeout;
  }
  return config_.udp_timeout;
}

bool NatDevice::EntryExpired(const NatTable::Entry& entry) const {
  return network_->now() - entry.NewestActivity() >= SessionTimeoutFor(entry);
}

NatTable::Entry* NatDevice::LookupInboundFresh(IpProtocol protocol, uint16_t public_port) {
  NatTable::Entry* entry;
  if (in_cache_.entry != nullptr && in_cache_.generation == table_.generation() &&
      in_cache_.public_port == public_port && in_cache_.protocol == protocol) {
    entry = in_cache_.entry;
    obs::Inc(metric_flowcache_hits_);
  } else {
    entry = table_.FindByPublicPort(protocol, public_port);
    obs::Inc(metric_flowcache_misses_);
    if (entry != nullptr) {
      in_cache_ = InboundFlowCache{protocol, public_port, entry, table_.generation()};
    }
  }
  if (entry != nullptr && EntryExpired(*entry)) {
    // The stale hit still triggers a sweep (now O(expired), and this entry
    // is by definition among the expired), preserving the exact port-free
    // timing of the old full-scan path. The sweep bumps the table
    // generation, so both flow caches invalidate.
    CountExpired(table_.Expire(network_->now(), CurrentTimeouts()));
    return nullptr;
  }
  return entry;
}

NatTable::Entry* NatDevice::MapOutboundCached(const Packet& packet, const Endpoint& private_ep,
                                              const Endpoint& remote, bool* created) {
  *created = false;
  if (out_cache_.entry != nullptr && out_cache_.generation == table_.generation() &&
      out_cache_.contention_epoch == table_.contention_epoch() &&
      out_cache_.protocol == packet.protocol && out_cache_.private_ep == private_ep &&
      out_cache_.remote == remote) {
    // Identical observable effect to MapOutbound on an existing entry: the
    // port_users_ record is already present (same private endpoint) and the
    // outbound key is unchanged (same generation + contention epoch), so
    // only the refresh remains.
    table_.Touch(out_cache_.entry, remote, network_->now());
    obs::Inc(metric_flowcache_hits_);
    return out_cache_.entry;
  }
  obs::Inc(metric_flowcache_misses_);
  const size_t mappings_before = table_.size();
  NatTable::Entry* entry =
      table_.MapOutbound(packet.protocol, private_ep, remote, network_->now());
  if (entry == nullptr) {
    return nullptr;
  }
  *created = table_.size() > mappings_before;
  out_cache_ = OutboundFlowCache{packet.protocol,     private_ep, remote,
                                 entry,               table_.generation(),
                                 table_.contention_epoch()};
  return entry;
}

int NatDevice::AttachInside(Lan* lan, Ipv4Address ip, int prefix_length) {
  return AttachTo(lan, ip, prefix_length);
}

int NatDevice::AttachOutside(Lan* lan, Ipv4Address ip, int prefix_length) {
  outside_iface_ = AttachTo(lan, ip, prefix_length);
  public_ip_ = ip;
  if (config_.basic_nat) {
    // Claim the address pool on the public segment so inbound traffic to
    // any pool address is delivered to us.
    for (int i = 1; i <= config_.basic_pool_size; ++i) {
      lan->Attach(this, outside_iface_, Ipv4Address(ip.bits() + static_cast<uint32_t>(i)));
    }
  }
  return outside_iface_;
}

void NatDevice::SetUpstream(std::optional<Ipv4Address> gateway) {
  AddRoute(Ipv4Prefix(Ipv4Address(0), 0), outside_iface_, gateway);
}

void NatDevice::FlushMappings() {
  CountExpired(table_.size());
  table_.Clear();  // bumps the table generation -> both flow caches miss
  basic_out_.clear();
  basic_in_.clear();
  basic_sessions_.clear();
  basic_lru_.clear();
}

void NatDevice::Reboot() {
  ++stats_.reboots;
  network_->trace().RecordEvent(network_->now(), trace_id_, TraceEvent::kFault, "nat reboot");
  FlushMappings();
}

std::optional<Endpoint> NatDevice::PublicEndpointFor(IpProtocol protocol,
                                                     const Endpoint& private_ep,
                                                     const Endpoint& remote) {
  NatTable::Entry* entry = table_.FindOutbound(protocol, private_ep, remote);
  if (entry == nullptr || EntryExpired(*entry)) {
    return std::nullopt;
  }
  return Endpoint(public_ip_, entry->public_port);
}

void NatDevice::HandlePacket(int iface, Packet&& packet) {
  if (iface == outside_iface_) {
    if (config_.basic_nat && basic_in_.count(packet.dst_ip) != 0) {
      HandleInboundBasic(std::move(packet));
      return;
    }
    if (packet.dst_ip != public_ip_) {
      return;  // not addressed to one of our translated endpoints
    }
    HandleInbound(std::move(packet));
    return;
  }
  // From a private interface.
  if (config_.basic_nat) {
    if (basic_in_.count(packet.dst_ip) != 0) {
      HandleHairpinBasic(std::move(packet));
      return;
    }
    if (OwnsAddress(packet.dst_ip) || packet.dst_ip == public_ip_) {
      return;
    }
    HandleOutboundBasic(std::move(packet));
    return;
  }
  if (packet.dst_ip == public_ip_) {
    HandleHairpin(std::move(packet));
    return;
  }
  if (OwnsAddress(packet.dst_ip)) {
    return;  // addressed to the NAT's private-side interface itself
  }
  HandleOutbound(std::move(packet));
}

void NatDevice::TrackTcpOutbound(NatTable::Entry* entry, const Packet& packet) {
  if (packet.protocol != IpProtocol::kTcp) {
    return;
  }
  if (packet.tcp.syn && !packet.tcp.ack) {
    // Fresh (or restarted) connection attempt through this mapping.
    entry->tcp_closing = false;
    entry->tcp_established = false;
  }
  if (packet.tcp.rst || packet.tcp.fin) {
    entry->tcp_closing = true;
  }
  if (packet.tcp.ack && entry->tcp_inbound_seen && !entry->tcp_closing) {
    entry->tcp_established = true;
  }
  table_.Reclassify(entry);
}

void NatDevice::TrackTcpInbound(NatTable::Entry* entry, const Packet& packet) {
  if (packet.protocol != IpProtocol::kTcp) {
    return;
  }
  entry->tcp_inbound_seen = true;
  if (packet.tcp.rst || packet.tcp.fin) {
    entry->tcp_closing = true;
  }
  table_.Reclassify(entry);
}

void NatDevice::RewritePayloadAddress(Packet* packet, Ipv4Address from, Ipv4Address to) {
  if (packet->payload.size() < 4) {
    return;
  }
  const uint32_t needle = from.bits();
  const uint32_t replacement = to.bits();
  for (size_t i = 0; i + 4 <= packet->payload.size(); ++i) {
    const uint32_t value = static_cast<uint32_t>(packet->payload[i]) << 24 |
                           static_cast<uint32_t>(packet->payload[i + 1]) << 16 |
                           static_cast<uint32_t>(packet->payload[i + 2]) << 8 |
                           static_cast<uint32_t>(packet->payload[i + 3]);
    if (value == needle) {
      packet->payload[i] = static_cast<uint8_t>(replacement >> 24);
      packet->payload[i + 1] = static_cast<uint8_t>(replacement >> 16);
      packet->payload[i + 2] = static_cast<uint8_t>(replacement >> 8);
      packet->payload[i + 3] = static_cast<uint8_t>(replacement);
      ++stats_.payload_rewrites;
      if (network_->trace().enabled()) {
        network_->trace().Record(network_->now(), trace_id_, TraceEvent::kNatPayloadRewrite,
                                 *packet, Detail(from, "->", to));
      }
      i += 3;
    }
  }
}

void NatDevice::HandleOutbound(Packet&& packet) {
  if (--packet.ttl <= 0) {
    network_->trace().Record(network_->now(), trace_id_, TraceEvent::kDropTtl, packet);
    return;
  }
  if (packet.protocol == IpProtocol::kIcmp) {
    HandleOutboundIcmp(std::move(packet));
    return;
  }
  const Endpoint private_ep = packet.src();
  const Endpoint remote = packet.dst();
  bool created = false;
  NatTable::Entry* entry = MapOutboundCached(packet, private_ep, remote, &created);
  if (created) {
    CountMappingCreated();
  }
  if (entry == nullptr) {
    network_->trace().Record(network_->now(), trace_id_, TraceEvent::kDropNoRoute, packet,
                             "port pool exhausted");
    return;
  }
  TrackTcpOutbound(entry, packet);
  if (config_.rewrite_payload_addresses) {
    RewritePayloadAddress(&packet, private_ep.ip, public_ip_);
  }
  packet.set_src(Endpoint(public_ip_, entry->public_port));
  ++stats_.translated_out;
  // Guarded so the (allocation-free but snprintf-heavy) detail formatting is
  // skipped entirely when tracing is off — this is the NAT's hottest line.
  if (network_->trace().enabled()) {
    network_->trace().Record(network_->now(), trace_id_, TraceEvent::kNatTranslateOut, packet,
                             Detail(private_ep, "=>", packet.src()));
  }
  SendPacket(std::move(packet));
}

void NatDevice::RejectUnsolicitedTcp(const Packet& packet) {
  switch (config_.unsolicited_tcp) {
    case NatUnsolicitedTcp::kDrop:
      CountDropUnsolicited();
      network_->trace().Record(network_->now(), trace_id_, TraceEvent::kNatDropUnsolicited, packet);
      return;
    case NatUnsolicitedTcp::kRst: {
      CountRejection(stats_.rst_rejections);
      network_->trace().Record(network_->now(), trace_id_, TraceEvent::kNatRejectRst, packet);
      Packet rst;
      rst.protocol = IpProtocol::kTcp;
      rst.set_src(packet.dst());
      rst.set_dst(packet.src());
      rst.tcp.rst = true;
      rst.tcp.ack = true;
      rst.tcp.seq = 0;
      rst.tcp.ack_seq = packet.tcp.seq + (packet.tcp.syn ? 1 : 0) +
                        static_cast<uint32_t>(packet.payload.size());
      SendPacket(std::move(rst));
      return;
    }
    case NatUnsolicitedTcp::kIcmp: {
      CountRejection(stats_.icmp_rejections);
      network_->trace().Record(network_->now(), trace_id_, TraceEvent::kNatRejectIcmp, packet);
      Packet icmp;
      icmp.protocol = IpProtocol::kIcmp;
      icmp.icmp.type = IcmpType::kDestinationUnreachable;
      icmp.icmp.code = 13;  // administratively prohibited
      icmp.icmp.original_protocol = IpProtocol::kTcp;
      icmp.icmp.original_src = packet.src();
      icmp.icmp.original_dst = packet.dst();
      icmp.set_dst(Endpoint(packet.src_ip, 0));
      icmp.src_ip = public_ip_;
      SendPacket(std::move(icmp));
      return;
    }
  }
}

void NatDevice::HandleInbound(Packet&& packet) {
  if (--packet.ttl <= 0) {
    network_->trace().Record(network_->now(), trace_id_, TraceEvent::kDropTtl, packet);
    return;
  }
  if (packet.protocol == IpProtocol::kIcmp) {
    HandleInboundIcmp(std::move(packet));
    return;
  }
  NatTable::Entry* entry = LookupInboundFresh(packet.protocol, packet.dst_port);
  if (entry == nullptr) {
    if (packet.protocol == IpProtocol::kTcp && packet.tcp.syn && !packet.tcp.ack) {
      RejectUnsolicitedTcp(packet);
    } else {
      CountDropNoMapping();
      network_->trace().Record(network_->now(), trace_id_, TraceEvent::kNatDropNoMapping, packet);
    }
    return;
  }
  if (!table_.AllowsInbound(*entry, config_.filtering, packet.src(), network_->now(),
                            SessionTimeoutFor(*entry))) {
    if (packet.protocol == IpProtocol::kTcp && packet.tcp.syn && !packet.tcp.ack) {
      RejectUnsolicitedTcp(packet);
    } else {
      CountDropUnsolicited();
      network_->trace().Record(network_->now(), trace_id_, TraceEvent::kNatDropUnsolicited, packet);
    }
    return;
  }
  if (config_.refresh_on_inbound) {
    table_.Touch(entry, packet.src(), network_->now());
  }
  TrackTcpInbound(entry, packet);
  if (config_.rewrite_payload_addresses) {
    RewritePayloadAddress(&packet, public_ip_, entry->private_ep.ip);
  }
  packet.set_dst(entry->private_ep);
  ++stats_.translated_in;
  network_->trace().Record(network_->now(), trace_id_, TraceEvent::kNatTranslateIn, packet);
  SendPacket(std::move(packet));
}

void NatDevice::HandleHairpin(Packet&& packet) {
  if (--packet.ttl <= 0) {
    network_->trace().Record(network_->now(), trace_id_, TraceEvent::kDropTtl, packet);
    return;
  }
  const bool supported = packet.protocol == IpProtocol::kUdp   ? config_.hairpin_udp
                         : packet.protocol == IpProtocol::kTcp ? config_.hairpin_tcp
                                                               : false;
  if (!supported) {
    CountDropNoMapping();
    network_->trace().Record(network_->now(), trace_id_, TraceEvent::kNatDropNoMapping, packet,
                             "hairpin unsupported");
    return;
  }
  NatTable::Entry* target = LookupInboundFresh(packet.protocol, packet.dst_port);
  if (target == nullptr) {
    if (packet.protocol == IpProtocol::kTcp && packet.tcp.syn && !packet.tcp.ack) {
      RejectUnsolicitedTcp(packet);
    } else {
      CountDropNoMapping();
      network_->trace().Record(network_->now(), trace_id_, TraceEvent::kNatDropNoMapping, packet,
                               "hairpin: no mapping");
    }
    return;
  }
  // Translate the source exactly as an outbound packet would be (a
  // well-behaved hairpin per §3.5: the receiver sees the sender's public
  // endpoint).
  bool created = false;
  NatTable::Entry* source = MapOutboundCached(packet, packet.src(), packet.dst(), &created);
  if (source == nullptr) {
    return;
  }
  if (created) {
    CountMappingCreated();
  }
  TrackTcpOutbound(source, packet);
  const Endpoint translated_src(public_ip_, source->public_port);
  if (config_.hairpin_filtered &&
      !table_.AllowsInbound(*target, config_.filtering, translated_src, network_->now(),
                            SessionTimeoutFor(*target))) {
    // §6.3: some NATs treat traffic at their public ports as untrusted even
    // when it originates inside.
    if (packet.protocol == IpProtocol::kTcp && packet.tcp.syn && !packet.tcp.ack) {
      RejectUnsolicitedTcp(packet);
    } else {
      CountDropUnsolicited();
      network_->trace().Record(network_->now(), trace_id_, TraceEvent::kNatDropUnsolicited, packet,
                               "hairpin filtered");
    }
    return;
  }
  table_.Touch(target, translated_src, network_->now());
  TrackTcpInbound(target, packet);
  packet.set_src(translated_src);
  packet.set_dst(target->private_ep);
  CountHairpin();
  network_->trace().Record(network_->now(), trace_id_, TraceEvent::kNatHairpin, packet);
  SendPacket(std::move(packet));
}

// ---------------------------------------------------------------------------
// Basic NAT (§2.1): IP-address-only translation
// ---------------------------------------------------------------------------

std::optional<Ipv4Address> NatDevice::AssignBasicAddress(Ipv4Address private_ip) {
  auto it = basic_out_.find(private_ip);
  if (it != basic_out_.end()) {
    return it->second;
  }
  for (int i = 1; i <= config_.basic_pool_size; ++i) {
    const Ipv4Address candidate(public_ip_.bits() + static_cast<uint32_t>(i));
    if (basic_in_.count(candidate) == 0) {
      basic_out_[private_ip] = candidate;
      basic_in_[candidate] = private_ip;
      return candidate;
    }
  }
  return std::nullopt;  // pool exhausted
}

bool NatDevice::BasicSessionAllows(Ipv4Address private_ip, const Endpoint& remote) const {
  if (config_.filtering == NatFiltering::kEndpointIndependent) {
    return true;
  }
  auto host_it = basic_sessions_.find(private_ip);
  if (host_it == basic_sessions_.end()) {
    return false;
  }
  const SimTime now = network_->now();
  for (const auto& [ep, last] : host_it->second) {
    if (now - last >= config_.udp_timeout) {
      continue;
    }
    if (config_.filtering == NatFiltering::kAddressDependent ? ep.ip == remote.ip
                                                             : ep == remote) {
      return true;
    }
  }
  return false;
}

void NatDevice::TouchBasicSession(Ipv4Address private_ip, const Endpoint& remote) {
  const SimTime now = network_->now();
  basic_sessions_[private_ip][remote] = now;
  basic_lru_.emplace(now, std::make_pair(private_ip, remote));
}

void NatDevice::ExpireBasicSessions() {
  // Pop queue nodes until the head is fresh — O(expired + superseded), not
  // O(sessions). A node whose authoritative session time moved forward is a
  // superseded duplicate (the session was refreshed after this node was
  // logged) and is skipped; the refresh logged a newer node.
  const SimTime now = network_->now();
  while (!basic_lru_.empty() && now - basic_lru_.begin()->first >= config_.udp_timeout) {
    const auto [private_ip, remote] = basic_lru_.begin()->second;
    basic_lru_.erase(basic_lru_.begin());
    auto host = basic_sessions_.find(private_ip);
    if (host == basic_sessions_.end()) {
      continue;
    }
    auto session = host->second.find(remote);
    if (session == host->second.end() || now - session->second < config_.udp_timeout) {
      continue;
    }
    host->second.erase(session);
    if (host->second.empty()) {
      // Reclaim the public address once the host goes fully idle.
      auto binding = basic_out_.find(host->first);
      if (binding != basic_out_.end()) {
        basic_in_.erase(binding->second);
        basic_out_.erase(binding);
        CountExpired(1);
      }
      basic_sessions_.erase(host);
    }
  }
}

void NatDevice::HandleOutboundBasic(Packet&& packet) {
  if (--packet.ttl <= 0) {
    network_->trace().Record(network_->now(), trace_id_, TraceEvent::kDropTtl, packet);
    return;
  }
  if (packet.protocol == IpProtocol::kIcmp) {
    HandleOutboundIcmp(std::move(packet));
    return;
  }
  auto assigned = AssignBasicAddress(packet.src_ip);
  if (!assigned.has_value()) {
    network_->trace().Record(network_->now(), trace_id_, TraceEvent::kDropNoRoute, packet,
                             "basic NAT pool exhausted");
    return;
  }
  TouchBasicSession(packet.src_ip, packet.dst());
  packet.src_ip = *assigned;  // port untouched — the defining Basic NAT property
  ++stats_.translated_out;
  network_->trace().Record(network_->now(), trace_id_, TraceEvent::kNatTranslateOut, packet,
                           "basic");
  SendPacket(std::move(packet));
}

void NatDevice::HandleInboundBasic(Packet&& packet) {
  if (--packet.ttl <= 0) {
    network_->trace().Record(network_->now(), trace_id_, TraceEvent::kDropTtl, packet);
    return;
  }
  const Ipv4Address private_ip = basic_in_.at(packet.dst_ip);
  if (packet.protocol == IpProtocol::kIcmp) {
    packet.icmp.original_src = Endpoint(private_ip, packet.icmp.original_src.port);
    packet.dst_ip = private_ip;
    SendPacket(std::move(packet));
    return;
  }
  if (!BasicSessionAllows(private_ip, packet.src())) {
    if (packet.protocol == IpProtocol::kTcp && packet.tcp.syn && !packet.tcp.ack) {
      RejectUnsolicitedTcp(packet);
    } else {
      CountDropUnsolicited();
      network_->trace().Record(network_->now(), trace_id_, TraceEvent::kNatDropUnsolicited, packet,
                               "basic");
    }
    return;
  }
  if (config_.refresh_on_inbound) {
    TouchBasicSession(private_ip, packet.src());
  }
  packet.dst_ip = private_ip;
  ++stats_.translated_in;
  network_->trace().Record(network_->now(), trace_id_, TraceEvent::kNatTranslateIn, packet,
                           "basic");
  SendPacket(std::move(packet));
}

void NatDevice::HandleHairpinBasic(Packet&& packet) {
  if (--packet.ttl <= 0) {
    return;
  }
  const bool supported = packet.protocol == IpProtocol::kUdp   ? config_.hairpin_udp
                         : packet.protocol == IpProtocol::kTcp ? config_.hairpin_tcp
                                                               : false;
  if (!supported) {
    CountDropNoMapping();
    network_->trace().Record(network_->now(), trace_id_, TraceEvent::kNatDropNoMapping, packet,
                             "basic hairpin unsupported");
    return;
  }
  auto assigned = AssignBasicAddress(packet.src_ip);
  if (!assigned.has_value()) {
    return;
  }
  const Ipv4Address target = basic_in_.at(packet.dst_ip);
  TouchBasicSession(packet.src_ip, packet.dst());
  if (config_.hairpin_filtered &&
      !BasicSessionAllows(target, Endpoint(*assigned, packet.src_port))) {
    CountDropUnsolicited();
    return;
  }
  TouchBasicSession(target, Endpoint(*assigned, packet.src_port));
  packet.src_ip = *assigned;
  packet.dst_ip = target;
  CountHairpin();
  network_->trace().Record(network_->now(), trace_id_, TraceEvent::kNatHairpin, packet, "basic");
  SendPacket(std::move(packet));
}

void NatDevice::HandleInboundIcmp(Packet&& packet) {
  // The quoted original packet was sent by an inside host through one of our
  // mappings: original_src is the mapping's public endpoint.
  if (packet.icmp.original_src.ip != public_ip_) {
    return;
  }
  NatTable::Entry* entry =
      LookupInboundFresh(packet.icmp.original_protocol, packet.icmp.original_src.port);
  if (entry == nullptr) {
    CountDropNoMapping();
    network_->trace().Record(network_->now(), trace_id_, TraceEvent::kNatDropNoMapping, packet,
                             "icmp: no mapping");
    return;
  }
  packet.icmp.original_src = entry->private_ep;
  packet.set_dst(Endpoint(entry->private_ep.ip, 0));
  ++stats_.translated_in;
  network_->trace().Record(network_->now(), trace_id_, TraceEvent::kNatTranslateIn, packet, "icmp");
  SendPacket(std::move(packet));
}

void NatDevice::HandleOutboundIcmp(Packet&& packet) {
  // An inside host is reporting an error about a packet it received. The
  // quoted original_dst is the inside host's private endpoint; the outside
  // world knows that endpoint by its public mapping, so translate the
  // quotation on the way out (otherwise the remote can't match the error to
  // a session).
  NatTable::Entry* entry =
      table_.FindByPrivateEndpoint(packet.icmp.original_protocol, packet.icmp.original_dst);
  if (entry != nullptr) {
    packet.icmp.original_dst = Endpoint(public_ip_, entry->public_port);
  }
  packet.src_ip = public_ip_;
  ++stats_.translated_out;
  SendPacket(std::move(packet));
}

}  // namespace natpunch
