#include "src/obs/json_export.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace natpunch {
namespace obs {
namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[128];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) {
    out->append(buf, static_cast<size_t>(n) < sizeof(buf) ? static_cast<size_t>(n)
                                                          : sizeof(buf) - 1);
  }
}

}  // namespace

void AppendJsonEscaped(std::string* out, std::string_view text) {
  for (const char ch : text) {
    switch (ch) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          AppendF(out, "\\u%04x", ch);
        } else {
          out->push_back(ch);
        }
        break;
    }
  }
}

std::string MetricsJson(const MetricsRegistry& registry) {
  std::string out;
  out.reserve(1024);
  out += "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : registry.counters()) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"';
    AppendJsonEscaped(&out, name);
    AppendF(&out, "\":%" PRIu64, counter->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : registry.gauges()) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"';
    AppendJsonEscaped(&out, name);
    AppendF(&out, "\":{\"value\":%" PRId64 ",\"max\":%" PRId64 "}", gauge->value(), gauge->max());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : registry.histograms()) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"';
    AppendJsonEscaped(&out, name);
    AppendF(&out, "\":{\"count\":%" PRIu64 ",\"sum\":%" PRId64 ",\"min\":%" PRId64
                  ",\"max\":%" PRId64 ",\"p50\":%.3f,\"p95\":%.3f,\"p99\":%.3f,\"buckets\":[",
            hist->count(), hist->sum(), hist->observed_min(), hist->observed_max(),
            hist->Percentile(0.50), hist->Percentile(0.95), hist->Percentile(0.99));
    const auto& bounds = hist->bounds();
    for (size_t i = 0; i < bounds.size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      AppendF(&out, "[%" PRId64 ",%" PRIu64 "]", bounds[i], hist->bucket_count(i));
    }
    AppendF(&out, "],\"overflow\":%" PRIu64 "}", hist->bucket_count(bounds.size()));
  }
  out += "}}";
  return out;
}

bool WriteFileOrWarn(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot write %s\n", path.c_str());
    return false;
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = std::fclose(f) == 0 && written == content.size();
  if (!ok) {
    std::fprintf(stderr, "obs: short write to %s\n", path.c_str());
  }
  return ok;
}

}  // namespace obs
}  // namespace natpunch
