// JSON snapshot exporter for a MetricsRegistry.
//
// The snapshot is deterministic and byte-stable: metrics iterate in name
// order, integers print exactly, and percentiles use fixed %.3f formatting —
// the golden test in tests/obs_test.cc pins the bytes. The format is the
// "superset of BENCH_JSON" the benches write per run: a bench splices the
// object produced here into its one-line summary as a "metrics" field (see
// bench/common.h), so scripts/bench_compare.py keeps parsing the same lines
// while humans and tooling get the full registry alongside.

#ifndef SRC_OBS_JSON_EXPORT_H_
#define SRC_OBS_JSON_EXPORT_H_

#include <string>
#include <string_view>

#include "src/obs/metrics.h"

namespace natpunch {
namespace obs {

// Append `text` to `out` with JSON string escaping (quotes, backslashes,
// control characters). Shared by the metrics and Chrome-trace exporters.
void AppendJsonEscaped(std::string* out, std::string_view text);

// The whole registry as one compact JSON object:
//   {"counters":{"name":123,...},
//    "gauges":{"name":{"value":1,"max":2},...},
//    "histograms":{"name":{"count":2,"sum":30,"min":10,"max":20,
//                          "p50":15.000,"p95":19.500,"p99":19.900,
//                          "buckets":[[10,1],[20,1]],"overflow":0},...}}
// Histogram "buckets" entries are [upper_bound, count] pairs; "overflow"
// counts values >= the last bound.
std::string MetricsJson(const MetricsRegistry& registry);

// Write `content` to `path`; returns false (and leaves no partial file
// behind beyond what the OS did) on any I/O error.
bool WriteFileOrWarn(const std::string& path, std::string_view content);

}  // namespace obs
}  // namespace natpunch

#endif  // SRC_OBS_JSON_EXPORT_H_
