#include "src/obs/metrics.h"

#include <algorithm>

namespace natpunch {
namespace obs {

Histogram::Histogram(std::vector<int64_t> bounds) : bounds_(std::move(bounds)) {
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(int64_t value) {
  if (value < 0) {
    value = 0;  // latencies are non-negative; clamp defensively
  }
  // First bound strictly greater than value = the bucket's upper edge.
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<size_t>(it - bounds_.begin())];
  if (count_ == 0 || value < min_) {
    min_ = value;
  }
  if (count_ == 0 || value > max_) {
    max_ = value;
  }
  ++count_;
  sum_ += value;
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(count_);
  uint64_t cum = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const uint64_t c = counts_[i];
    if (c == 0) {
      continue;
    }
    if (static_cast<double>(cum + c) >= target) {
      const double lower = i == 0 ? 0.0 : static_cast<double>(bounds_[i - 1]);
      const double upper = i < bounds_.size() ? static_cast<double>(bounds_[i])
                                              : static_cast<double>(max_);
      const double frac = (target - static_cast<double>(cum)) / static_cast<double>(c);
      const double value = lower + frac * (upper - lower);
      // Clamp into the observed range: a single sample reports itself at
      // every percentile, and overflow-bucket results stay data-bounded.
      return std::clamp(value, static_cast<double>(min_), static_cast<double>(max_));
    }
    cum += c;
  }
  return static_cast<double>(max_);
}

void Histogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

const std::vector<int64_t>& LatencyBucketsMs() {
  static const std::vector<int64_t> kBuckets = {1,    2,    5,    10,    20,    50,    100,
                                                200,  500,  1000, 2000,  5000,  10000, 20000,
                                                30000, 60000};
  return kBuckets;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         const std::vector<int64_t>& bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::unique_ptr<Histogram>(new Histogram(bounds)))
             .first;
  }
  return it->second.get();
}

const Counter* MetricsRegistry::FindCounter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::Reset() {
  for (auto& [name, c] : counters_) {
    c->Reset();
  }
  for (auto& [name, g] : gauges_) {
    g->Reset();
  }
  for (auto& [name, h] : histograms_) {
    h->Reset();
  }
}

}  // namespace obs
}  // namespace natpunch
