#include "src/obs/chrome_trace.h"

#include <cinttypes>
#include <cstdio>

#include "src/obs/json_export.h"

namespace natpunch {
namespace obs {
namespace {

constexpr int kPid = 1;

void AppendMetadata(std::string* out, const char* name, int tid, std::string_view value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "{\"name\":\"%s\",\"ph\":\"M\",\"ts\":0,\"pid\":%d,\"tid\":%d,",
                name, kPid, tid);
  out->append(buf);
  out->append("\"args\":{\"name\":\"");
  AppendJsonEscaped(out, value);
  out->append("\"}}");
}

}  // namespace

std::string_view TraceEventCategory(TraceEvent event) {
  switch (event) {
    case TraceEvent::kSend:
    case TraceEvent::kDeliver:
    case TraceEvent::kForward:
      return "net";
    case TraceEvent::kNatTranslateOut:
    case TraceEvent::kNatTranslateIn:
    case TraceEvent::kNatHairpin:
    case TraceEvent::kNatPayloadRewrite:
      return "nat";
    case TraceEvent::kDropLoss:
    case TraceEvent::kDropNoRoute:
    case TraceEvent::kDropNoNextHop:
    case TraceEvent::kDropTtl:
    case TraceEvent::kDropPrivateLeak:
    case TraceEvent::kNatDropUnsolicited:
    case TraceEvent::kNatRejectRst:
    case TraceEvent::kNatRejectIcmp:
    case TraceEvent::kNatDropNoMapping:
    case TraceEvent::kDropBurst:
      return "drop";
    case TraceEvent::kLinkDown:
    case TraceEvent::kFault:
      return "fault";
  }
  return "net";
}

std::string ChromeTraceJson(const TraceRecorder& trace, std::string_view process_name) {
  std::string out;
  out.reserve(256 + trace.records().size() * 192);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  AppendMetadata(&out, "process_name", 0, process_name);
  // One named thread row per interned node. Id 0 is the empty name — used
  // by records with no node — rendered as the process-wide "(sim)" row.
  out += ',';
  AppendMetadata(&out, "thread_name", 0, "(sim)");
  for (TraceNodeId id = 1; id < trace.name_count(); ++id) {
    out += ',';
    AppendMetadata(&out, "thread_name", static_cast<int>(id), trace.NodeName(id));
  }
  char buf[160];
  for (const TraceRecord& rec : trace.records()) {
    out += ',';
    const std::string_view name = TraceEventName(rec.event);
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%.*s\",\"cat\":\"%.*s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%" PRId64
                  ",\"pid\":%d,\"tid\":%u,\"args\":{",
                  static_cast<int>(name.size()), name.data(),
                  static_cast<int>(TraceEventCategory(rec.event).size()),
                  TraceEventCategory(rec.event).data(), rec.time.micros(), kPid, rec.node);
    out += buf;
    std::snprintf(buf, sizeof(buf), "\"packet\":%" PRIu64 ",\"proto\":\"%s\"", rec.packet_id,
                  rec.protocol == IpProtocol::kTcp    ? "tcp"
                  : rec.protocol == IpProtocol::kIcmp ? "icmp"
                                                      : "udp");
    out += buf;
    if (rec.packet_id != 0) {
      out += ",\"src\":\"";
      AppendJsonEscaped(&out, rec.src.ToString());
      out += "\",\"dst\":\"";
      AppendJsonEscaped(&out, rec.dst.ToString());
      out += '"';
    }
    if (!rec.detail.empty()) {
      out += ",\"detail\":\"";
      AppendJsonEscaped(&out, rec.detail.view());
      out += '"';
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace natpunch
