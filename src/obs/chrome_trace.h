// Chrome trace-event exporter: TraceRecorder -> a JSON timeline that loads
// in chrome://tracing and https://ui.perfetto.dev.
//
// Mapping: the simulation is one process ("natpunch sim", pid 1); every
// interned trace node (host, NAT, LAN) becomes a named thread row, and each
// TraceRecord becomes a thread-scoped instant event at its simulated-time
// microsecond, categorized so Perfetto's filter box can isolate NAT
// translations, drops, or fault injections. Packet id, endpoints, and the
// record's detail text ride along in "args" and show in the inspector pane.
//
// The output is the JSON Trace Event Format's object form
// ({"traceEvents":[...]}), the most widely compatible container; its
// structure is pinned by tests/obs_test.cc with a real JSON parse.

#ifndef SRC_OBS_CHROME_TRACE_H_
#define SRC_OBS_CHROME_TRACE_H_

#include <string>
#include <string_view>

#include "src/netsim/trace.h"

namespace natpunch {
namespace obs {

// Trace-event category for a simulator event kind: "net" (send/deliver/
// forward), "nat" (translations, hairpins), "drop" (every drop reason,
// NAT-filtered included), "fault" (chaos engine and link state).
std::string_view TraceEventCategory(TraceEvent event);

// Render every record in `trace` (plus process/thread metadata) as one
// self-contained Chrome trace JSON document.
std::string ChromeTraceJson(const TraceRecorder& trace,
                            std::string_view process_name = "natpunch sim");

}  // namespace obs
}  // namespace natpunch

#endif  // SRC_OBS_CHROME_TRACE_H_
