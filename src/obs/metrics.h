// Metrics registry: counters, gauges, and fixed-bucket latency histograms.
//
// The paper's evaluation is an exercise in measurement — success rates per
// vendor and per NAT behavior — and this layer gives the simulator a uniform
// way to answer "what did this run cost?": retransmissions, mapping
// expirations, punch round-trips, recovery downtime. Every component
// registers named metrics here; exporters (src/obs/json_export.h,
// src/obs/chrome_trace.h) turn a registry into machine-readable snapshots.
//
// Hot-path contract, inherited from the zero-allocation packet path
// (tests/alloc_test.cc): once a metric handle exists, recording into it —
// Counter::Inc, Gauge::Set, Histogram::Observe — NEVER touches the heap.
// Registration (GetCounter & friends) may allocate on the FIRST sighting of
// a name; a warmed-up registry resolves repeat registrations without
// allocating, which is what lets the fleet runner reuse one registry across
// thousands of device simulations (MetricsRegistry::Reset zeroes values but
// keeps every registration and its capacity).
//
// Zero-overhead-when-disabled: components hold nullable handles and record
// through the obs::Inc/Set/Observe helpers, so a simulation that never
// enabled metrics (Network::EnableMetrics) pays one null check per site.

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace natpunch {
namespace obs {

// Monotonic event count. Increments wrap modulo 2^64 by design (unsigned
// overflow is defined behavior); at one increment per simulated packet that
// is ~58000 years of continuous simulation, and the wrap is still exact.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

// Instantaneous level with a high-water mark (e.g. event-loop heap depth).
class Gauge {
 public:
  void Set(int64_t v) {
    value_ = v;
    if (v > max_) {
      max_ = v;
    }
  }
  void Add(int64_t delta) { Set(value_ + delta); }
  int64_t value() const { return value_; }
  int64_t max() const { return max_; }
  void Reset() {
    value_ = 0;
    max_ = 0;
  }

 private:
  int64_t value_ = 0;
  int64_t max_ = 0;
};

// Fixed-bucket histogram for non-negative values (latencies in ms or us).
//
// Bucket i < bounds.size() covers [bounds[i-1], bounds[i]) with bucket 0
// anchored at 0; values >= bounds.back() land in the overflow bucket, whose
// upper edge is the maximum observed value. Observe() is a binary search
// over the bounds — no allocation, no floating point.
//
// Percentile(p) interpolates linearly within the containing bucket and
// clamps the result to [min observed, max observed], so a single-sample
// histogram reports that exact sample at every percentile and the overflow
// bucket yields finite, data-bounded values. An empty histogram reports 0.
class Histogram {
 public:
  void Observe(int64_t value);

  uint64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  // Minimum / maximum observed value; 0 when empty.
  int64_t observed_min() const { return count_ > 0 ? min_ : 0; }
  int64_t observed_max() const { return count_ > 0 ? max_ : 0; }

  // i in [0, bounds().size()]; the last index is the overflow bucket.
  uint64_t bucket_count(size_t i) const { return counts_[i]; }
  const std::vector<int64_t>& bounds() const { return bounds_; }

  // p in [0, 1]. See the class comment for the interpolation contract.
  double Percentile(double p) const;

  void Reset();

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<int64_t> bounds);

  std::vector<int64_t> bounds_;    // strictly increasing, fixed at creation
  std::vector<uint64_t> counts_;   // bounds_.size() + 1; last is overflow
  uint64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

// Default bucket bounds for millisecond-scale latencies (punch RTT,
// recovery downtime): 1 ms .. 60 s, roughly 1-2-5 per decade.
const std::vector<int64_t>& LatencyBucketsMs();

// Named metric store with find-or-create registration. Names are sorted
// (std::map), so exporters iterate deterministically and two runs of the
// same simulation produce byte-identical snapshots.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create. Handles are stable for the registry's lifetime —
  // components cache them at construction and record lock-free thereafter.
  // A histogram's bounds are fixed by its first registration; later calls
  // with different bounds return the existing histogram unchanged.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name, const std::vector<int64_t>& bounds);

  // Lookup without creating; nullptr when absent.
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  // Zero every value while KEEPING all registrations (and their heap
  // capacity), so a reused arena re-registers without allocating
  // (Network::Reset calls this).
  void Reset();

  bool empty() const { return counters_.empty() && gauges_.empty() && histograms_.empty(); }

  // Deterministic (name-sorted) iteration for exporters.
  const std::map<std::string, std::unique_ptr<Counter>, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Gauge>, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, std::unique_ptr<Histogram>, std::less<>>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Null-safe recording helpers: the idiom for instrumented components, which
// hold nullptr handles when their Network has no metrics registry.
inline void Inc(Counter* c, uint64_t n = 1) {
  if (c != nullptr) {
    c->Inc(n);
  }
}
inline void Set(Gauge* g, int64_t v) {
  if (g != nullptr) {
    g->Set(v);
  }
}
inline void Observe(Histogram* h, int64_t v) {
  if (h != nullptr) {
    h->Observe(v);
  }
}

}  // namespace obs
}  // namespace natpunch

#endif  // SRC_OBS_METRICS_H_
