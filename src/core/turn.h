// TURN-style data-plane relaying (§2.2 cites TURN as "a method of
// implementing relaying in a relatively secure fashion").
//
// Unlike the rendezvous server's message relaying (RelayHub), a TURN server
// allocates a real public UDP endpoint per client. The client reaches any
// peer by wrapping payloads in kSend indications over its (NAT-friendly,
// always-outbound) flow to the server; peers reach the client by sending
// plain datagrams at the allocated endpoint. Permissions are per peer
// ADDRESS (as in RFC 5766), so they hold even when the peer sits behind a
// symmetric NAT whose port toward the relay is unpredictable.
//
// Protocol (magic 0x54 'T', UDP, one message per datagram):
//   kAllocate        client -> server   create/refresh an allocation
//   kAllocateOk      server -> client   {relayed endpoint}
//   kPermit          client -> server   {peer address} allow inbound
//   kSend            client -> server   {peer endpoint, payload} emit from
//                                       the relayed endpoint
//   kData            server -> client   {peer endpoint, payload} arrived at
//                                       the relayed endpoint
// Anything arriving at a relayed endpoint from a non-permitted address is
// dropped. Allocations and permissions expire when idle.

#ifndef SRC_CORE_TURN_H_
#define SRC_CORE_TURN_H_

#include <map>
#include <memory>

#include "src/transport/host.h"
#include "src/util/slab.h"

namespace natpunch {

enum class TurnMsgType : uint8_t {
  kAllocate = 1,
  kAllocateOk = 2,
  kPermit = 3,
  kSend = 4,
  kData = 5,
};

struct TurnMessage {
  TurnMsgType type = TurnMsgType::kAllocate;
  Endpoint peer;  // kPermit (port ignored), kSend (target), kData (source)
  Bytes payload;  // kSend / kData
};

Bytes EncodeTurnMessage(const TurnMessage& msg);
std::optional<TurnMessage> DecodeTurnMessage(ConstByteSpan data);

struct TurnServerConfig {
  uint16_t port = 3479;
  SimDuration allocation_lifetime = Seconds(600);
  SimDuration permission_lifetime = Seconds(300);
};

class TurnServer {
 public:
  TurnServer(Host* host, TurnServerConfig config);
  explicit TurnServer(Host* host) : TurnServer(host, TurnServerConfig{}) {}
  ~TurnServer();

  TurnServer(const TurnServer&) = delete;
  TurnServer& operator=(const TurnServer&) = delete;

  Status Start();
  // Take the relay down: drops every allocation and closes the control and
  // relayed sockets. Clients discover the outage only by silence (their
  // refreshes and wrapped sends go unanswered), exactly like a crashed
  // server. Start() brings it back empty.
  void Stop();
  Endpoint endpoint() const { return Endpoint(host_->primary_address(), config_.port); }

  struct Stats {
    uint64_t allocations = 0;
    uint64_t relayed_to_peer = 0;     // kSend emissions
    uint64_t relayed_to_client = 0;   // kData deliveries
    uint64_t denied_no_permission = 0;
    uint64_t expired_allocations = 0;
  };
  const Stats& stats() const { return stats_; }
  size_t active_allocations() const { return allocations_.size(); }

 private:
  struct Allocation {
    Endpoint client;             // the client's public endpoint (its 5-tuple id)
    UdpSocket* relayed = nullptr;
    SimTime last_activity;
    std::map<Ipv4Address, SimTime> permissions;  // address-based, RFC 5766 style
  };

  void OnControl(const Endpoint& from, const Payload& payload);
  void OnRelayed(Allocation* allocation, const Endpoint& from, const Payload& payload);
  void ScheduleSweep();
  void SweepTick();

  Host* host_;
  TurnServerConfig config_;
  UdpSocket* control_ = nullptr;
  TimerHandle sweep_timer_;
  // Allocation objects come from the slab (stable addresses — OnRelayed
  // callbacks capture them); the std::map stays because the sweep erases
  // while iterating in endpoint order, and that order is observable.
  Slab<Allocation, 64> allocation_pool_;
  std::map<Endpoint, Allocation*> allocations_;  // by client endpoint
  Stats stats_;
};

class TurnClient {
 public:
  struct Config {
    SimDuration request_timeout = Millis(800);
    int request_retries = 5;
    SimDuration refresh_interval = Seconds(60);  // keeps allocation + NAT flow alive
  };

  TurnClient(Host* host, Endpoint server, Config config);
  TurnClient(Host* host, Endpoint server) : TurnClient(host, server, Config{}) {}
  ~TurnClient();

  TurnClient(const TurnClient&) = delete;
  TurnClient& operator=(const TurnClient&) = delete;

  // Bind a local socket (0 = ephemeral) and allocate a relayed endpoint.
  void Allocate(uint16_t local_port, std::function<void(Result<Endpoint>)> cb);

  // Allow inbound relayed traffic from this peer address.
  Status Permit(Ipv4Address peer);

  // Emit `payload` from the relayed endpoint toward `peer`.
  Status SendTo(const Endpoint& peer, Bytes payload);

  // Datagrams that arrived at the relayed endpoint.
  void SetReceiveCallback(std::function<void(const Endpoint& from, const Bytes&)> cb) {
    receive_cb_ = std::move(cb);
  }

  Endpoint relayed_endpoint() const { return relayed_; }
  bool allocated() const { return allocated_; }

 private:
  void OnReceive(const Endpoint& from, const Payload& payload);
  void SendAllocate();
  void RetryTick();
  void RefreshTick();

  Host* host_;
  Endpoint server_;
  Config config_;
  UdpSocket* socket_ = nullptr;
  Endpoint relayed_;
  bool allocated_ = false;
  int attempts_ = 0;
  std::function<void(Result<Endpoint>)> allocate_cb_;
  // Intrusive handles: destruction cancels automatically, so a destroyed
  // client can never be called back by a stale timer.
  TimerHandle retry_timer_;
  TimerHandle refresh_timer_;
  std::function<void(const Endpoint&, const Bytes&)> receive_cb_;
};

}  // namespace natpunch

#endif  // SRC_CORE_TURN_H_
