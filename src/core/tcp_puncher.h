// TCP hole punching (§4.2) and connection reversal (§2.3).
//
// From the same local port the client registered with S, the puncher
// simultaneously listens for incoming connections and initiates outgoing
// connects to the peer's public and private endpoints (Fig. 7's socket
// arrangement — possible only because every socket sets SO_REUSEADDR,
// §4.1). Failed connects (RST from a §5.2-misbehaved NAT, ICMP, timeouts)
// are retried after a delay until the overall punch deadline (§4.2 step 4).
// Each established stream runs the nonce authentication of step 5; the
// first authenticated stream wins and the rest are discarded.
//
// Connection reversal reuses the same machinery: the requester registers a
// listen-only attempt and the responder runs connect-only candidates.

#ifndef SRC_CORE_TCP_PUNCHER_H_
#define SRC_CORE_TCP_PUNCHER_H_

#include <map>
#include <memory>
#include <vector>

#include "src/core/tcp_stream.h"
#include "src/rendezvous/client.h"

namespace natpunch {

struct TcpPunchConfig {
  // §4.2 step 4: re-try a failed connection attempt "after a short delay
  // (e.g., one second)".
  SimDuration retry_delay = Seconds(1);
  SimDuration punch_timeout = Seconds(30);
  bool try_private_endpoint = true;
};

// Per-attempt error accounting, consumed by the Fig. 7 / §5.2 benchmarks.
struct TcpPunchStats {
  int connect_attempts = 0;
  int refused = 0;        // RSTs (NAT §5.2 misbehavior or stray hosts)
  int unreachable = 0;    // ICMP errors
  int timed_out = 0;      // SYN retries exhausted
  int address_in_use = 0; // §4.3 behavior 2: listener took the connection
};

class TcpHolePuncher {
 public:
  using StreamCallback = std::function<void(Result<TcpP2pStream*>)>;

  TcpHolePuncher(TcpRendezvousClient* rendezvous, TcpPunchConfig config = TcpPunchConfig{});

  // Active side. strategy must be kHolePunch or kReversal.
  void ConnectToPeer(uint64_t peer_id, StreamCallback cb) {
    ConnectToPeer(peer_id, ConnectStrategy::kHolePunch, std::move(cb));
  }
  void ConnectToPeer(uint64_t peer_id, ConnectStrategy strategy, StreamCallback cb);

  // Streams initiated by remote peers land here once authenticated.
  void SetIncomingStreamCallback(std::function<void(TcpP2pStream*)> cb) {
    incoming_cb_ = std::move(cb);
  }

  // Stats of the most recently finished attempt (success or failure).
  const TcpPunchStats& last_stats() const { return last_stats_; }

  TcpRendezvousClient* rendezvous() const { return rendezvous_; }
  const TcpPunchConfig& config() const { return config_; }

 private:
  struct Candidate {
    Endpoint endpoint;
    bool is_private = false;
    TcpSocket* socket = nullptr;
    EventLoop::EventId retry_event = EventLoop::kInvalidEventId;
    bool gave_up = false;
  };

  struct Attempt {
    uint64_t peer_id = 0;
    uint64_t nonce = 0;
    bool incoming = false;
    std::vector<Candidate> candidates;
    Endpoint peer_public;
    Endpoint peer_private;
    SimTime started;
    StreamCallback cb;
    EventLoop::EventId deadline_event = EventLoop::kInvalidEventId;
    TcpPunchStats stats;
  };

  // A socket that is established but not yet authenticated (or an accepted
  // socket whose session is not yet known).
  struct PendingStream {
    TcpSocket* socket = nullptr;
    MessageFramer framer;
    uint64_t attempt_nonce = 0;  // 0 for accepted sockets until kAuth arrives
    bool is_private = false;
    bool dead = false;
  };

  Status EnsureListener();
  void StartAttempt(uint64_t peer_id, uint64_t nonce, const Endpoint& peer_public,
                    const Endpoint& peer_private, bool incoming, bool connect_side,
                    StreamCallback cb);
  void LaunchCandidate(uint64_t nonce, size_t index);
  void HandleConnectFailure(uint64_t nonce, size_t index, const Status& status);
  void OnEstablished(uint64_t nonce, TcpSocket* socket, bool is_private);
  void OnAccepted(TcpSocket* socket);
  void SendAuth(PendingStream* pending, PeerMsgType type, uint64_t nonce);
  void OnPendingData(PendingStream* pending, const Bytes& data);
  void Win(PendingStream* pending, uint64_t nonce);
  void FailAttempt(uint64_t nonce, const Status& status);
  void AbandonAttemptResources(Attempt* attempt, TcpSocket* keep);
  void DropPending(PendingStream* pending);

  TcpRendezvousClient* rendezvous_;
  TcpPunchConfig config_;
  EventLoop& loop_;
  TcpSocket* listener_ = nullptr;
  std::map<uint64_t, Attempt> attempts_;  // by nonce
  std::vector<std::unique_ptr<PendingStream>> pending_;
  std::vector<std::unique_ptr<TcpP2pStream>> streams_;
  std::function<void(TcpP2pStream*)> incoming_cb_;
  TcpPunchStats last_stats_;
};

}  // namespace natpunch

#endif  // SRC_CORE_TCP_PUNCHER_H_
