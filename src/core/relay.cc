#include "src/core/relay.h"

namespace natpunch {

RelayHub::RelayHub(UdpRendezvousClient* client) {
  send_ = [client](uint64_t to, Bytes payload) { client->SendRelay(to, std::move(payload)); };
  client->SetRelayHandler(
      [this](uint64_t from, const Bytes& payload) { OnRelayMessage(from, payload); });
}

RelayHub::RelayHub(TcpRendezvousClient* client) {
  send_ = [client](uint64_t to, Bytes payload) { client->SendRelay(to, std::move(payload)); };
  client->SetRelayHandler(
      [this](uint64_t from, const Bytes& payload) { OnRelayMessage(from, payload); });
}

RelayChannel* RelayHub::OpenChannel(uint64_t peer_id) {
  auto it = channels_.find(peer_id);
  if (it != channels_.end()) {
    return it->second.get();
  }
  auto channel = std::unique_ptr<RelayChannel>(new RelayChannel(this, peer_id));
  RelayChannel* raw = channel.get();
  channels_[peer_id] = std::move(channel);
  return raw;
}

void RelayHub::OnRelayMessage(uint64_t from_id, const Bytes& payload) {
  const bool existed = channels_.count(from_id) != 0;
  RelayChannel* channel = OpenChannel(from_id);
  ++channel->messages_received_;
  channel->bytes_received_ += payload.size();
  if (!existed && incoming_cb_) {
    incoming_cb_(channel);
  }
  if (channel->receive_cb_) {
    channel->receive_cb_(payload);
  }
}

Status RelayChannel::Send(Bytes payload) {
  ++messages_sent_;
  bytes_sent_ += payload.size();
  hub_->send_(peer_id_, std::move(payload));
  return Status::Ok();
}

}  // namespace natpunch
