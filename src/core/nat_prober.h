// NatProber: STUN-style NAT behavior discovery (§5.1 mentions using "a
// protocol such as STUN" to probe NAT behavior before attempting
// prediction-based punching).
//
// Using two StunLikeServers (server1 configured with server2 as partner),
// the prober classifies, from a single local socket:
//   * mapping behavior — by comparing the public endpoints observed by
//     server1's main socket, server1's alternate port, and server2;
//   * filtering behavior — by whether replies arrive from a never-contacted
//     address (server2, via partner forwarding) and from a never-contacted
//     port (server1's alternate port);
//   * the port allocation stride of a symmetric NAT (prediction input).
//
// Probe order matters and is chosen so each filtering test fires before the
// client has contacted the endpoint the reply comes from.

#ifndef SRC_CORE_NAT_PROBER_H_
#define SRC_CORE_NAT_PROBER_H_

#include <functional>

#include "src/core/probe_server.h"
#include "src/nat/nat_config.h"

namespace natpunch {

struct NatProbeReport {
  bool behind_nat = false;
  NatMapping mapping = NatMapping::kEndpointIndependent;
  NatFiltering filtering = NatFiltering::kAddressAndPortDependent;
  Endpoint public_endpoint;  // as seen by server1 main
  // Port difference between the mappings created by two successive
  // new-destination flows; 0 for a cone NAT. Feed to prediction (§5.1).
  int port_delta = 0;
  std::string ToString() const;
};

class NatProber {
 public:
  struct Config {
    SimDuration reply_timeout = Millis(800);
    int retries_per_step = 3;
  };

  // server1 must have server2 configured as its partner.
  NatProber(Host* host, Endpoint server1, Endpoint server2);
  NatProber(Host* host, Endpoint server1, Endpoint server2, Config config);

  // Runs the probe sequence from a fresh socket bound to local_port
  // (0 = ephemeral). The socket is closed afterwards.
  void Probe(uint16_t local_port, std::function<void(Result<NatProbeReport>)> cb);

 private:
  struct Run;

  void StepEcho(std::shared_ptr<Run> run, int step);
  void FinishRun(std::shared_ptr<Run> run);

  Host* host_;
  Endpoint server1_;
  Endpoint server2_;
  Config config_;
};

}  // namespace natpunch

#endif  // SRC_CORE_NAT_PROBER_H_
