#include "src/core/turn.h"

#include "src/util/logging.h"

namespace natpunch {
namespace {
constexpr uint8_t kMagic = 0x54;  // 'T'
}  // namespace

Bytes EncodeTurnMessage(const TurnMessage& msg) {
  ByteWriter w;
  w.WriteU8(kMagic);
  w.WriteU8(static_cast<uint8_t>(msg.type));
  w.WriteU32(msg.peer.ip.bits());
  w.WriteU16(msg.peer.port);
  w.WriteBytes(msg.payload);
  return w.Take();
}

std::optional<TurnMessage> DecodeTurnMessage(ConstByteSpan data) {
  ByteReader r(data);
  if (r.ReadU8() != kMagic) {
    return std::nullopt;
  }
  TurnMessage msg;
  const uint8_t type = r.ReadU8();
  if (type < static_cast<uint8_t>(TurnMsgType::kAllocate) ||
      type > static_cast<uint8_t>(TurnMsgType::kData)) {
    return std::nullopt;
  }
  msg.type = static_cast<TurnMsgType>(type);
  msg.peer.ip = Ipv4Address(r.ReadU32());
  msg.peer.port = r.ReadU16();
  msg.payload = r.ReadBytes();
  // Exact-length frames only: trailing attacker bytes must not decode.
  if (!r.ok() || !r.AtEnd()) {
    return std::nullopt;
  }
  return msg;
}

// ---------------------------------------------------------------------------
// TurnServer
// ---------------------------------------------------------------------------

TurnServer::TurnServer(Host* host, TurnServerConfig config) : host_(host), config_(config) {
  allocation_pool_.AttachMetrics(host_->network()->metrics(),
                                 "turn_allocations." + host_->name());
}

TurnServer::~TurnServer() { Stop(); }

void TurnServer::Stop() {
  sweep_timer_.Cancel();
  if (control_ != nullptr) {
    control_->Close();
    control_ = nullptr;
  }
  for (auto& [client, allocation] : allocations_) {
    allocation->relayed->Close();
    allocation_pool_.Delete(allocation);
  }
  allocations_.clear();
}

Status TurnServer::Start() {
  auto bound = host_->udp().Bind(config_.port);
  if (!bound.ok()) {
    return bound.status();
  }
  control_ = *bound;
  control_->SetReceiveCallback(
      [this](const Endpoint& from, const Payload& payload) { OnControl(from, payload); });
  ScheduleSweep();
  return Status::Ok();
}

void TurnServer::ScheduleSweep() {
  sweep_timer_.Bind<&TurnServer::SweepTick>(this);
  host_->loop().ScheduleTimerAfter(Seconds(10), &sweep_timer_);
}

void TurnServer::SweepTick() {
  const SimTime now = host_->loop().now();
  for (auto it = allocations_.begin(); it != allocations_.end();) {
    Allocation& allocation = *it->second;
    for (auto perm = allocation.permissions.begin(); perm != allocation.permissions.end();) {
      if (now - perm->second >= config_.permission_lifetime) {
        perm = allocation.permissions.erase(perm);
      } else {
        ++perm;
      }
    }
    if (now - allocation.last_activity >= config_.allocation_lifetime) {
      allocation.relayed->Close();
      Allocation* doomed = it->second;
      it = allocations_.erase(it);
      allocation_pool_.Delete(doomed);
      ++stats_.expired_allocations;
    } else {
      ++it;
    }
  }
  ScheduleSweep();
}

void TurnServer::OnControl(const Endpoint& from, const Payload& payload) {
  auto msg = DecodeTurnMessage(payload);
  if (!msg) {
    host_->CountMalformedDrop();
    return;
  }
  auto it = allocations_.find(from);
  switch (msg->type) {
    case TurnMsgType::kAllocate: {
      if (it == allocations_.end()) {
        auto relayed = host_->udp().Bind(0);
        if (!relayed.ok()) {
          return;
        }
        Allocation* raw = allocation_pool_.New();
        raw->client = from;
        raw->relayed = *relayed;
        (*relayed)->SetReceiveCallback(
            [this, raw](const Endpoint& peer, const Payload& data) {
              OnRelayed(raw, peer, data);
            });
        it = allocations_.emplace(from, raw).first;
        ++stats_.allocations;
      }
      it->second->last_activity = host_->loop().now();
      TurnMessage reply;
      reply.type = TurnMsgType::kAllocateOk;
      reply.peer = Endpoint(host_->primary_address(), it->second->relayed->local_port());
      control_->SendTo(from, EncodeTurnMessage(reply));
      return;
    }
    case TurnMsgType::kPermit:
      if (it != allocations_.end()) {
        it->second->last_activity = host_->loop().now();
        it->second->permissions[msg->peer.ip] = host_->loop().now();
      }
      return;
    case TurnMsgType::kSend:
      if (it != allocations_.end()) {
        it->second->last_activity = host_->loop().now();
        ++stats_.relayed_to_peer;
        it->second->relayed->SendTo(msg->peer, msg->payload);
      }
      return;
    default:
      return;
  }
}

void TurnServer::OnRelayed(Allocation* allocation, const Endpoint& from, const Payload& payload) {
  auto perm = allocation->permissions.find(from.ip);
  if (perm == allocation->permissions.end() ||
      host_->loop().now() - perm->second >= config_.permission_lifetime) {
    ++stats_.denied_no_permission;
    return;
  }
  perm->second = host_->loop().now();
  allocation->last_activity = host_->loop().now();
  ++stats_.relayed_to_client;
  TurnMessage data;
  data.type = TurnMsgType::kData;
  data.peer = from;
  data.payload = payload.ToBytes();
  control_->SendTo(allocation->client, EncodeTurnMessage(data));
}

// ---------------------------------------------------------------------------
// TurnClient
// ---------------------------------------------------------------------------

TurnClient::TurnClient(Host* host, Endpoint server, Config config)
    : host_(host), server_(server), config_(config) {}

TurnClient::~TurnClient() {
  // retry_timer_ / refresh_timer_ cancel themselves on destruction.
  if (socket_ != nullptr) {
    // The socket's receive callback captures `this`; Close() clears it so no
    // delivery can run into a destroyed client.
    socket_->Close();
  }
}

void TurnClient::Allocate(uint16_t local_port, std::function<void(Result<Endpoint>)> cb) {
  auto bound = host_->udp().Bind(local_port);
  if (!bound.ok()) {
    cb(bound.status());
    return;
  }
  socket_ = *bound;
  socket_->SetReceiveCallback(
      [this](const Endpoint& from, const Payload& payload) { OnReceive(from, payload); });
  allocate_cb_ = std::move(cb);
  attempts_ = 0;
  SendAllocate();
}

void TurnClient::SendAllocate() {
  TurnMessage request;
  request.type = TurnMsgType::kAllocate;
  socket_->SendTo(server_, EncodeTurnMessage(request));
  ++attempts_;
  retry_timer_.Bind<&TurnClient::RetryTick>(this);
  host_->loop().ScheduleTimerAfter(config_.request_timeout, &retry_timer_);
}

void TurnClient::RetryTick() {
  if (allocated_) {
    return;
  }
  if (attempts_ < config_.request_retries) {
    SendAllocate();
    return;
  }
  if (allocate_cb_) {
    auto cb = std::move(allocate_cb_);
    allocate_cb_ = nullptr;
    cb(Status(ErrorCode::kTimedOut, "TURN allocation timed out"));
  }
}

void TurnClient::RefreshTick() {
  TurnMessage refresh;
  refresh.type = TurnMsgType::kAllocate;
  socket_->SendTo(server_, EncodeTurnMessage(refresh));
  host_->loop().ScheduleTimerAfter(config_.refresh_interval, &refresh_timer_);
}

void TurnClient::OnReceive(const Endpoint& from, const Payload& payload) {
  if (from != server_) {
    return;  // relayed traffic arrives wrapped in kData, never raw
  }
  auto msg = DecodeTurnMessage(payload);
  if (!msg) {
    host_->CountMalformedDrop();
    return;
  }
  switch (msg->type) {
    case TurnMsgType::kAllocateOk: {
      relayed_ = msg->peer;
      if (!allocated_) {
        allocated_ = true;
        retry_timer_.Cancel();
        // Periodic refresh keeps both the allocation and our NAT flow to
        // the server alive.
        refresh_timer_.Bind<&TurnClient::RefreshTick>(this);
        host_->loop().ScheduleTimerAfter(config_.refresh_interval, &refresh_timer_);
        if (allocate_cb_) {
          auto cb = std::move(allocate_cb_);
          allocate_cb_ = nullptr;
          cb(relayed_);
        }
      }
      return;
    }
    case TurnMsgType::kData:
      if (receive_cb_) {
        receive_cb_(msg->peer, msg->payload);
      }
      return;
    default:
      return;
  }
}

Status TurnClient::Permit(Ipv4Address peer) {
  if (!allocated_) {
    return Status(ErrorCode::kNotConnected, "no allocation");
  }
  TurnMessage permit;
  permit.type = TurnMsgType::kPermit;
  permit.peer = Endpoint(peer, 0);
  return socket_->SendTo(server_, EncodeTurnMessage(permit));
}

Status TurnClient::SendTo(const Endpoint& peer, Bytes payload) {
  if (!allocated_) {
    return Status(ErrorCode::kNotConnected, "no allocation");
  }
  TurnMessage send;
  send.type = TurnMsgType::kSend;
  send.peer = peer;
  send.payload = std::move(payload);
  return socket_->SendTo(server_, EncodeTurnMessage(send));
}

}  // namespace natpunch
