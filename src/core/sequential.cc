#include "src/core/sequential.h"

#include "src/util/logging.h"

namespace natpunch {

SequentialPuncher::SequentialPuncher(TcpRendezvousClient* rendezvous,
                                     SequentialPunchConfig config)
    : rendezvous_(rendezvous), config_(config), loop_(rendezvous->host()->loop()) {
  rendezvous_->SetConnectForwardHandler(
      ConnectStrategy::kSequential,
      [this](const RendezvousMessage& fwd) { RunResponder(fwd); });
  rendezvous_->SetSequentialReadyHandler([this](const RendezvousMessage& ready) {
    // Step 4: B is listening; close our (consumed) S connection and dial in.
    auto it = initiations_.find(ready.nonce);
    if (it == initiations_.end()) {
      return;
    }
    rendezvous_->CloseConnection();
    ++connections_consumed_;
    InitiatorConnect(ready.nonce);
  });
}

void SequentialPuncher::ConnectToPeer(uint64_t peer_id, StreamCallback cb) {
  const uint64_t nonce = rendezvous_->host()->rng().NextU64();
  rendezvous_->RequestConnect(
      peer_id, ConnectStrategy::kSequential, nonce,
      [this, peer_id, nonce, cb = std::move(cb)](Result<RendezvousMessage> ack) mutable {
        if (!ack.ok()) {
          cb(ack.status());
          return;
        }
        InitiatorState& state = initiations_[nonce];
        state.peer_id = peer_id;
        state.nonce = nonce;
        state.peer_public = ack->public_ep;
        state.cb = std::move(cb);
        state.deadline_event = loop_.ScheduleAfter(config_.punch_timeout, [this, nonce] {
          FinishInitiator(nonce, Status(ErrorCode::kTimedOut, "sequential punch timed out"));
        });
        // Step 1 complete: wait (not listening) for B's ready signal.
      });
}

void SequentialPuncher::InitiatorConnect(uint64_t nonce) {
  auto it = initiations_.find(nonce);
  if (it == initiations_.end()) {
    return;
  }
  InitiatorState& state = it->second;
  TcpSocket* socket = rendezvous_->host()->tcp().CreateSocket();
  socket->SetReuseAddr(true);
  Status status = socket->Bind(rendezvous_->local_port());
  if (status.ok()) {
    status = socket->Connect(state.peer_public, [this, nonce, socket](Status result) {
      auto it2 = initiations_.find(nonce);
      if (it2 == initiations_.end()) {
        return;
      }
      if (!result.ok()) {
        FinishInitiator(nonce, result);
        return;
      }
      AuthAsInitiator(socket, it2->second.peer_id, nonce, loop_.now(),
                      /*cb bound inside FinishInitiator*/ nullptr);
    });
  }
  if (!status.ok()) {
    FinishInitiator(nonce, status);
  }
}

void SequentialPuncher::AuthAsInitiator(TcpSocket* socket, uint64_t peer_id, uint64_t nonce,
                                        SimTime started, StreamCallback cb) {
  (void)cb;
  // Send kAuth; wait for kAuthOk, then hand the stream to the initiation's
  // callback via FinishInitiator.
  auto framer = std::make_shared<MessageFramer>();
  socket->SetDataCallback([this, socket, peer_id, nonce, started, framer](const Bytes& data) {
    const std::vector<Bytes> frames = framer->Append(data);
    for (size_t i = 0; i < frames.size(); ++i) {
      auto msg = DecodePeerMessage(frames[i]);
      if (!msg) {
        socket->host()->CountMalformedDrop();
        continue;
      }
      if (msg->type == PeerMsgType::kAuthOk && msg->nonce == nonce) {
        // Keep anything that followed the auth confirmation for the stream.
        for (size_t j = i + 1; j < frames.size(); ++j) {
          framer->Append(MessageFramer::Frame(frames[j]));
        }
        streams_.push_back(std::make_unique<TcpP2pStream>(socket, peer_id, nonce, *framer,
                                                          /*used_private=*/false,
                                                          loop_.now() - started));
        FinishInitiator(nonce, streams_.back().get());
        return;
      }
    }
  });
  PeerMessage auth;
  auth.type = PeerMsgType::kAuth;
  auth.nonce = nonce;
  auth.sender_id = rendezvous_->client_id();
  socket->Send(MessageFramer::Frame(EncodePeerMessage(auth)));
}

void SequentialPuncher::FinishInitiator(uint64_t nonce, Result<TcpP2pStream*> result) {
  auto it = initiations_.find(nonce);
  if (it == initiations_.end()) {
    return;
  }
  InitiatorState state = std::move(it->second);
  initiations_.erase(it);
  if (state.deadline_event != EventLoop::kInvalidEventId) {
    loop_.Cancel(state.deadline_event);
  }
  if (state.cb) {
    state.cb(std::move(result));
  }
}

void SequentialPuncher::RunResponder(const RendezvousMessage& fwd) {
  const uint64_t nonce = fwd.nonce;
  const uint64_t peer_id = fwd.client_id;
  const Endpoint peer_public = fwd.public_ep;
  const uint16_t local_port = rendezvous_->local_port();
  const SimTime started = loop_.now();

  // Step 2 prep: our S connection is about to be consumed.
  rendezvous_->CloseConnection();
  ++connections_consumed_;

  // Step 2: doomed connect to open the hole in our NAT.
  TcpSocket* doomed = rendezvous_->host()->tcp().CreateSocket();
  doomed->SetReuseAddr(true);
  Status status = doomed->Bind(local_port);
  if (!status.ok()) {
    return;
  }
  doomed->Connect(peer_public, [](Status) {
    // Expected to fail (RST from A's NAT, or our dwell abort below). The
    // SYN's purpose was only to open our NAT's hole.
  });

  loop_.ScheduleAfter(config_.syn_dwell, [this, doomed, nonce, peer_id, local_port,
                                          started] {
    // Step 3: stop the doomed attempt, listen, re-register with S from a
    // fresh port, and signal ready.
    if (doomed->state() != TcpState::kClosed) {
      doomed->Abort();
    }
    TcpSocket* listener = rendezvous_->host()->tcp().CreateSocket();
    listener->SetReuseAddr(true);
    if (!listener->Bind(local_port).ok()) {
      return;
    }
    Status listen_status = listener->Listen([this, nonce, peer_id, started,
                                             listener](TcpSocket* accepted) {
      responder_pending_.push_back(std::make_unique<ResponderPending>());
      ResponderPending* pending = responder_pending_.back().get();
      pending->socket = accepted;
      pending->nonce = nonce;
      pending->peer_id = peer_id;
      pending->started = started;
      accepted->SetDataCallback(
          [this, pending](const Bytes& data) { OnResponderData(pending, data); });
      (void)listener;
    });
    if (!listen_status.ok()) {
      return;
    }
    rendezvous_->Reconnect([this, nonce, peer_id](Result<Endpoint> r) {
      if (!r.ok()) {
        return;
      }
      rendezvous_->SendSequentialReady(peer_id, nonce);
    });
  });
}

void SequentialPuncher::OnResponderData(ResponderPending* pending, const Bytes& data) {
  if (pending->done) {
    return;
  }
  const std::vector<Bytes> frames = pending->framer.Append(data);
  for (size_t i = 0; i < frames.size(); ++i) {
    auto msg = DecodePeerMessage(frames[i]);
    if (!msg) {
      pending->socket->host()->CountMalformedDrop();
      continue;
    }
    if (msg->type == PeerMsgType::kAuth && msg->nonce == pending->nonce) {
      PeerMessage ok;
      ok.type = PeerMsgType::kAuthOk;
      ok.nonce = pending->nonce;
      ok.sender_id = rendezvous_->client_id();
      pending->socket->Send(MessageFramer::Frame(EncodePeerMessage(ok)));
      pending->done = true;
      for (size_t j = i + 1; j < frames.size(); ++j) {
        pending->framer.Append(MessageFramer::Frame(frames[j]));
      }
      streams_.push_back(std::make_unique<TcpP2pStream>(
          pending->socket, pending->peer_id, pending->nonce, pending->framer,
          /*used_private=*/false, loop_.now() - pending->started));
      if (incoming_cb_) {
        incoming_cb_(streams_.back().get());
      }
      return;
    }
    // Wrong nonce: an impostor connected through the hole; drop it (§4.2
    // step 5: close and keep waiting).
    pending->done = true;
    pending->socket->Abort();
    return;
  }
}

}  // namespace natpunch
