// UdpConnector: the "just get me a channel" facade examples use.
//
// Mirrors the strategy ladder a production application (or ICE) runs: try
// hole punching first; when the NATs won't cooperate (§5.1 symmetric
// mapping, etc.), fall back to relaying through S, which always works
// (§2.2). The resulting Channel hides which path is in use but reports it,
// so applications can display "direct" vs "relayed" like real P2P apps do.

#ifndef SRC_CORE_CONNECTOR_H_
#define SRC_CORE_CONNECTOR_H_

#include "src/core/relay.h"
#include "src/core/tcp_puncher.h"
#include "src/core/udp_puncher.h"

namespace natpunch {

class UdpConnector;
class TcpConnector;

class P2pChannel {
 public:
  enum class Kind { kPunched, kRelayed };
  using ReceiveCallback = std::function<void(const Bytes& payload)>;

  Status Send(Bytes payload);
  void SetReceiveCallback(ReceiveCallback cb);

  Kind kind() const { return kind_; }
  uint64_t peer_id() const { return peer_id_; }
  UdpP2pSession* session() const { return session_; }
  RelayChannel* relay() const { return relay_; }

 private:
  friend class UdpConnector;

  Kind kind_ = Kind::kRelayed;
  uint64_t peer_id_ = 0;
  UdpP2pSession* session_ = nullptr;
  RelayChannel* relay_ = nullptr;
};

class UdpConnector {
 public:
  struct Options {
    UdpPunchConfig punch;
    bool relay_fallback = true;
  };

  UdpConnector(UdpRendezvousClient* rendezvous, Options options);
  explicit UdpConnector(UdpRendezvousClient* rendezvous)
      : UdpConnector(rendezvous, Options{}) {}

  // Punch, falling back to relay. The callback always succeeds when relay
  // fallback is enabled and the peer is registered.
  void Connect(uint64_t peer_id, std::function<void(Result<P2pChannel*>)> cb);

  // Channels opened by remote peers (punched or relayed).
  void SetIncomingChannelCallback(std::function<void(P2pChannel*)> cb) {
    incoming_cb_ = std::move(cb);
  }

  UdpHolePuncher& puncher() { return puncher_; }
  RelayHub& relay_hub() { return relay_hub_; }

 private:
  P2pChannel* WrapSession(UdpP2pSession* session);
  P2pChannel* WrapRelay(RelayChannel* relay);

  Options options_;
  UdpHolePuncher puncher_;
  RelayHub relay_hub_;
  std::vector<std::unique_ptr<P2pChannel>> channels_;
  std::function<void(P2pChannel*)> incoming_cb_;
};

// The TCP flavor: a punched authenticated stream when the NATs allow it,
// otherwise a message channel relayed over the rendezvous connection. Both
// present the same message-oriented interface (the relay is not a byte
// stream, so the common denominator is framed messages — which is what the
// punched path's TcpP2pStream carries anyway).
class TcpChannel {
 public:
  enum class Kind { kStream, kRelayed };
  using ReceiveCallback = std::function<void(const Bytes& payload)>;

  Status Send(Bytes payload);
  void SetReceiveCallback(ReceiveCallback cb);

  Kind kind() const { return kind_; }
  uint64_t peer_id() const { return peer_id_; }
  TcpP2pStream* stream() const { return stream_; }
  RelayChannel* relay() const { return relay_; }

 private:
  friend class TcpConnector;

  Kind kind_ = Kind::kRelayed;
  uint64_t peer_id_ = 0;
  TcpP2pStream* stream_ = nullptr;
  RelayChannel* relay_ = nullptr;
};

class TcpConnector {
 public:
  struct Options {
    TcpPunchConfig punch;
    bool relay_fallback = true;
  };

  TcpConnector(TcpRendezvousClient* rendezvous, Options options);
  explicit TcpConnector(TcpRendezvousClient* rendezvous)
      : TcpConnector(rendezvous, Options{}) {}

  void Connect(uint64_t peer_id, std::function<void(Result<TcpChannel*>)> cb);
  void SetIncomingChannelCallback(std::function<void(TcpChannel*)> cb) {
    incoming_cb_ = std::move(cb);
  }

  TcpHolePuncher& puncher() { return puncher_; }
  RelayHub& relay_hub() { return relay_hub_; }

 private:
  TcpChannel* WrapStream(TcpP2pStream* stream);
  TcpChannel* WrapRelay(RelayChannel* relay);

  Options options_;
  TcpHolePuncher puncher_;
  RelayHub relay_hub_;
  std::vector<std::unique_ptr<TcpChannel>> channels_;
  std::function<void(TcpChannel*)> incoming_cb_;
};

}  // namespace natpunch

#endif  // SRC_CORE_CONNECTOR_H_
