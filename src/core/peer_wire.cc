#include "src/core/peer_wire.h"

namespace natpunch {
namespace {
constexpr uint8_t kMagic = 0x50;  // 'P'
}  // namespace

Bytes EncodePeerMessage(const PeerMessage& msg) {
  ByteWriter w;
  w.WriteU8(kMagic);
  w.WriteU8(static_cast<uint8_t>(msg.type));
  w.WriteU64(msg.nonce);
  w.WriteU64(msg.sender_id);
  w.WriteBytes(msg.payload);
  return w.Take();
}

std::optional<PeerMessage> DecodePeerMessage(ConstByteSpan data) {
  ByteReader r(data);
  if (r.ReadU8() != kMagic) {
    return std::nullopt;
  }
  PeerMessage msg;
  const uint8_t type = r.ReadU8();
  if (type < static_cast<uint8_t>(PeerMsgType::kProbe) ||
      type > static_cast<uint8_t>(PeerMsgType::kAuthOk)) {
    return std::nullopt;
  }
  msg.type = static_cast<PeerMsgType>(type);
  msg.nonce = r.ReadU64();
  msg.sender_id = r.ReadU64();
  msg.payload = r.ReadBytes();
  // Exact-length frames only: trailing attacker bytes must not decode.
  if (!r.ok() || !r.AtEnd()) {
    return std::nullopt;
  }
  return msg;
}

}  // namespace natpunch
