#include "src/core/peer_wire.h"

namespace natpunch {
namespace {
constexpr uint8_t kMagic = 0x50;  // 'P'
}  // namespace

Payload EncodePeerMessagePayload(const PeerMessage& msg) {
  // Fixed layout: magic(1) type(1) nonce(8) sender(8) len(2) payload(len),
  // byte-identical to the ByteWriter encoding this replaced (the fuzz
  // harnesses assert re-encode canonicality against it).
  const auto len = static_cast<uint16_t>(msg.payload.size());
  Payload out;
  out.resize(20 + static_cast<size_t>(len));
  uint8_t* p = out.data();
  p[0] = kMagic;
  p[1] = static_cast<uint8_t>(msg.type);
  for (int i = 0; i < 8; ++i) {
    p[2 + i] = static_cast<uint8_t>(msg.nonce >> (56 - 8 * i));
    p[10 + i] = static_cast<uint8_t>(msg.sender_id >> (56 - 8 * i));
  }
  p[18] = static_cast<uint8_t>(len >> 8);
  p[19] = static_cast<uint8_t>(len);
  if (len > 0) {
    std::memcpy(p + 20, msg.payload.data(), len);
  }
  return out;
}

Bytes EncodePeerMessage(const PeerMessage& msg) { return EncodePeerMessagePayload(msg).ToBytes(); }

std::optional<PeerMessage> DecodePeerMessage(ConstByteSpan data) {
  ByteReader r(data);
  if (r.ReadU8() != kMagic) {
    return std::nullopt;
  }
  PeerMessage msg;
  const uint8_t type = r.ReadU8();
  if (type < static_cast<uint8_t>(PeerMsgType::kProbe) ||
      type > static_cast<uint8_t>(PeerMsgType::kAuthOk)) {
    return std::nullopt;
  }
  msg.type = static_cast<PeerMsgType>(type);
  msg.nonce = r.ReadU64();
  msg.sender_id = r.ReadU64();
  msg.payload = r.ReadBytes();
  // Exact-length frames only: trailing attacker bytes must not decode.
  if (!r.ok() || !r.AtEnd()) {
    return std::nullopt;
  }
  return msg;
}

}  // namespace natpunch
