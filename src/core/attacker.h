// GarbageBlaster: an adversarial node that floods a victim endpoint with
// hostile bytes.
//
// Ford et al. (§3.4) assume P2P endpoints authenticate each other precisely
// because the network may deliver traffic from anyone; this node makes that
// adversary concrete. It cycles through four seeded strategies per datagram:
// pure random bytes, random bytes behind a valid protocol magic (so the
// decoder gets past the first check), bit-flipped copies of a well-formed
// template frame (so deep field validation is exercised), and truncated
// prefixes of a well-formed frame (every partial-read path). Fully
// deterministic per seed — chaos tests replay the exact same blast.
//
// Used by tests to prove two things: no decoder on the victim crashes or
// misparses (drops are counted via wire.<node>.malformed_drops), and the
// rendezvous server's rate limiting/quarantine shields registered clients.

#ifndef SRC_CORE_ATTACKER_H_
#define SRC_CORE_ATTACKER_H_

#include <cstdint>
#include <vector>

#include "src/transport/host.h"
#include "src/util/rng.h"

namespace natpunch {

struct GarbageBlasterConfig {
  Endpoint target;
  SimDuration interval = Millis(10);  // one datagram per tick
  uint64_t seed = 1;
  // Payload sizes for the pure-random strategy, inclusive bounds.
  size_t min_random_bytes = 1;
  size_t max_random_bytes = 96;
  // Magic bytes to prepend in the magic-prefixed strategy; defaults cover
  // every protocol in the repo.
  std::vector<uint8_t> magics = {0x52, 0x50, 0x4e, 0x54, 0x51};
};

class GarbageBlaster {
 public:
  GarbageBlaster(Host* host, GarbageBlasterConfig config);
  ~GarbageBlaster();

  GarbageBlaster(const GarbageBlaster&) = delete;
  GarbageBlaster& operator=(const GarbageBlaster&) = delete;

  // Template frames for the bit-flip and truncation strategies; callers
  // supply well-formed encodings of the victim's protocol so the blast
  // exercises deep validation, not just the magic check. Without templates
  // those strategies fall back to pure random bytes.
  void AddTemplate(const Bytes& frame) { templates_.push_back(frame); }

  Status Start();
  void Stop();

  uint64_t sent() const { return sent_; }

 private:
  void Tick();
  Bytes NextBlast();

  Host* host_;
  GarbageBlasterConfig config_;
  Rng rng_;
  UdpSocket* socket_ = nullptr;
  EventLoop::EventId timer_ = EventLoop::kInvalidEventId;
  std::vector<Bytes> templates_;
  uint64_t sent_ = 0;
  uint32_t strategy_ = 0;  // round-robin cursor over the four strategies
};

}  // namespace natpunch

#endif  // SRC_CORE_ATTACKER_H_
