// UDP hole punching (§3) — the paper's primary technique.
//
// UdpHolePuncher drives the §3.2 procedure over a registered
// UdpRendezvousClient: it asks S for the peer's public and private
// endpoints, fires authenticated probes at *both* simultaneously, and locks
// in whichever endpoint first elicits a valid reply. It also answers the
// passive role automatically when S forwards a peer's connection request.
//
// Established sessions (UdpP2pSession) carry data, send §3.6 keep-alives,
// detect peer silence, and report rich outcome data (which endpoint won,
// elapsed time, probe counts) consumed by the Fig. 4/5/6 benchmarks.

#ifndef SRC_CORE_UDP_PUNCHER_H_
#define SRC_CORE_UDP_PUNCHER_H_

#include <map>
#include <memory>
#include <vector>

#include "src/core/peer_wire.h"
#include "src/rendezvous/client.h"
#include "src/util/flat_hash.h"
#include "src/util/slab.h"

namespace natpunch {

namespace obs {
class Counter;
class Histogram;
}  // namespace obs

struct UdpPunchConfig {
  SimDuration probe_interval = Millis(200);
  SimDuration punch_timeout = Seconds(10);
  SimDuration keepalive_interval = Seconds(15);
  // Deterministic per-session spread on the keepalive cadence: each session
  // keeps interval + offset, with offset hashed from its nonce into
  // [-keepalive_jitter, +keepalive_jitter]. At swarm scale this keeps 100k
  // sessions punched at the same instant from firing keepalives as one
  // thundering-herd wave. Zero (the default) reproduces the unjittered
  // cadence exactly, which the golden traces depend on.
  SimDuration keepalive_jitter = Micros(0);
  // A session with no inbound traffic for this long is declared dead; the
  // application then re-runs hole punching "on demand" (§3.6).
  SimDuration session_expiry = Seconds(60);
  bool keepalives_enabled = true;
  // Probe the peer's private endpoint as well as the public one (§3.3
  // recommends both; disabling is the "assume hairpin" ablation).
  bool try_private_endpoint = true;
  // Also adopt unexpected probe source endpoints as candidates. This is
  // what lets punching occasionally work when the *peer's* NAT is symmetric
  // but ours is a cone: the peer's probe arrives from an unpredicted port
  // and we simply answer where it came from.
  bool adopt_observed_endpoints = true;
};

class UdpHolePuncher;

// Established P2P session. Deliberately compact: the swarm benchmarks keep
// two of these alive per counted session (initiator and responder side), so
// at 1M sessions every byte of this struct is 2 MB of resident memory. The
// two std::function callbacks (64 bytes, unused by the vast majority of
// swarm sessions) live in a puncher-side table keyed by nonce, guarded here
// by flag bits; booleans and small counters are packed into the tail pad.
class UdpP2pSession {
 public:
  using ReceiveCallback = std::function<void(const Bytes& payload)>;
  using DeadCallback = std::function<void(Status)>;

  // Application payload to the locked-in endpoint.
  Status Send(Bytes payload);
  void SetReceiveCallback(ReceiveCallback cb);
  void SetDeadCallback(DeadCallback cb);
  void Close();

  uint64_t peer_id() const { return peer_id_; }
  uint64_t nonce() const { return nonce_; }
  Endpoint peer_endpoint() const { return peer_endpoint_; }
  bool alive() const { return (flags_ & kAlive) != 0; }
  // True when the locked-in endpoint was the peer's *private* endpoint —
  // the expected outcome behind a common NAT (§3.3).
  bool used_private_endpoint() const { return (flags_ & kUsedPrivate) != 0; }
  SimDuration punch_elapsed() const { return Micros(punch_elapsed_us_); }
  int probes_sent() const { return probes_sent_; }
  uint64_t datagrams_sent() const { return datagrams_sent_; }
  uint64_t datagrams_received() const { return datagrams_received_; }

 private:
  friend class UdpHolePuncher;
  template <typename, size_t>
  friend class Slab;

  static constexpr uint8_t kAlive = 1u << 0;
  static constexpr uint8_t kUsedPrivate = 1u << 1;
  static constexpr uint8_t kHasReceiveCb = 1u << 2;
  static constexpr uint8_t kHasDeadCb = 1u << 3;

  explicit UdpP2pSession(UdpHolePuncher* puncher) : puncher_(puncher) {}

  // Intrusive timer thunks (zero-allocation arm/fire).
  void KeepAliveFire();
  void ExpiryFire();

  UdpHolePuncher* puncher_;
  uint64_t peer_id_ = 0;
  uint64_t nonce_ = 0;
  uint64_t datagrams_sent_ = 0;
  uint64_t datagrams_received_ = 0;
  SimTime last_inbound_;
  // This session's jittered keepalive cadence (== config interval + the
  // nonce-hashed offset; just the config interval when jitter is off).
  SimDuration keepalive_interval_;
  Endpoint peer_endpoint_;
  // Punch duration in µs, saturating at ~71.6 minutes — informational only,
  // and punch_timeout makes longer punches unreachable in practice.
  uint32_t punch_elapsed_us_ = 0;
  uint16_t probes_sent_ = 0;  // saturating; accessor widens back to int
  uint8_t flags_ = kAlive;
  TimerHandle keepalive_timer_;
  TimerHandle expiry_timer_;
};

class UdpHolePuncher {
 public:
  using SessionCallback = std::function<void(Result<UdpP2pSession*>)>;

  UdpHolePuncher(UdpRendezvousClient* rendezvous, UdpPunchConfig config = UdpPunchConfig{});
  ~UdpHolePuncher();

  // Active side: request an introduction to peer_id through S and punch.
  void ConnectToPeer(uint64_t peer_id, SessionCallback cb);

  // Advanced entry point: punch at explicitly supplied candidate endpoints
  // instead of the ones S observed. Used by the §5.1 port-prediction
  // variant for symmetric NATs. Pass a null cb on the passive side (the
  // session is then delivered to the incoming-session callback).
  void PunchAtEndpoints(uint64_t peer_id, uint64_t nonce, const Endpoint& peer_public,
                        const Endpoint& peer_private, SessionCallback cb);

  // Datagrams on the shared socket that are neither rendezvous nor peer
  // protocol messages (e.g. STUN-like probe replies for port prediction).
  void SetRawTrafficHandler(std::function<void(const Endpoint&, const Payload&)> handler) {
    raw_handler_ = std::move(handler);
  }

  // Sessions initiated by remote peers land here once punched.
  void SetIncomingSessionCallback(std::function<void(UdpP2pSession*)> cb) {
    incoming_cb_ = std::move(cb);
  }

  // Decoded peer-protocol messages whose nonce matches no session and no
  // in-flight attempt. Without a handler they are dropped silently (§3.4:
  // never answer unauthenticated strays). The relay fallback registers one
  // to receive peer datagrams that arrive outside any punched session.
  void SetUnclaimedMessageHandler(std::function<void(const Endpoint&, const PeerMessage&)> cb) {
    unclaimed_handler_ = std::move(cb);
  }

  // Send a peer-wire message from the shared socket. Public so the relay
  // fallback can speak the session framing toward a relayed endpoint.
  void SendPeerMessage(const Endpoint& to, PeerMsgType type, uint64_t nonce, Bytes payload);

  UdpRendezvousClient* rendezvous() const { return rendezvous_; }
  const UdpPunchConfig& config() const { return config_; }

  size_t active_attempts() const { return attempts_.size(); }
  size_t active_sessions() const;

 private:
  friend class UdpP2pSession;

  struct Attempt {
    UdpHolePuncher* puncher = nullptr;
    uint64_t peer_id = 0;
    uint64_t nonce = 0;
    bool incoming = false;
    // Initiator-side robustness: periodically re-send the ConnectRequest so
    // a lost kConnectForward doesn't strand the peer un-introduced.
    bool renew_introduction = false;
    std::vector<Endpoint> candidates;
    Endpoint peer_public;   // remembered to label the winning path
    Endpoint peer_private;
    SimTime started;
    int probes_sent = 0;
    int probe_rounds = 0;
    SessionCallback cb;
    // Intrusive handles, like the session timers: a closure-ring event
    // lingers as a tombstone until the ring window passes it, so a swarm
    // punching in waves would pin tens of MB of cancelled probe/deadline
    // slots; wheel handles unlink on cancel. The map node gives them the
    // stable address Bind requires. Attempt is therefore unmovable —
    // cancel both timers and copy fields out before erasing the node.
    TimerHandle probe_timer;
    TimerHandle deadline_timer;
    void ProbeTick() { puncher->SendProbes(this); }
    void DeadlineTick() {
      puncher->FailAttempt(nonce, Status(ErrorCode::kTimedOut, "hole punch timed out"));
    }
  };

  Attempt* StartAttempt(uint64_t peer_id, uint64_t nonce, const Endpoint& peer_public,
                        const Endpoint& peer_private, bool incoming, SessionCallback cb);
  void SendProbes(Attempt* attempt);
  void FinishAttempt(uint64_t nonce, const Endpoint& winner);
  void FailAttempt(uint64_t nonce, const Status& status);
  void OnPeerTraffic(const Endpoint& from, const Payload& payload);
  void OnSocketError(const Endpoint& dst, ErrorCode code);

  void ArmSessionTimers(UdpP2pSession* session);
  void SessionKeepAliveTick(UdpP2pSession* session);
  void SessionExpiryTick(UdpP2pSession* session);
  void SessionInboundSeen(UdpP2pSession* session);
  void CloseSession(UdpP2pSession* session, const Status& status, bool notify);

  // Side table carrying the cold std::function callbacks evicted from
  // UdpP2pSession (see the class comment). Entries exist only for sessions
  // that installed a callback; the session's flag bits gate the lookup so
  // the common no-callback receive path never probes the table.
  struct SessionCallbacks {
    UdpP2pSession::ReceiveCallback receive;
    UdpP2pSession::DeadCallback dead;
  };
  void SetSessionReceiveCallback(UdpP2pSession* session, UdpP2pSession::ReceiveCallback cb);
  void SetSessionDeadCallback(UdpP2pSession* session, UdpP2pSession::DeadCallback cb);
  void DispatchReceive(UdpP2pSession* session, const Bytes& payload);

  UdpRendezvousClient* rendezvous_;
  UdpPunchConfig config_;
  EventLoop& loop_;

  // Registry names: punch.attempts / successes / failures and the
  // punch.rtt_ms latency histogram (shared across all punchers in the
  // Network — per-run aggregates, not per-host). Null without metrics.
  obs::Counter* metric_attempts_ = nullptr;
  obs::Counter* metric_successes_ = nullptr;
  obs::Counter* metric_failures_ = nullptr;
  obs::Histogram* metric_rtt_ms_ = nullptr;

  // Attempts stay in a std::map: OnSocketError scans them in nonce order and
  // that order is observable (golden traces). They are transient and few.
  std::map<uint64_t, Attempt> attempts_;  // by nonce
  // Sessions are the swarm-scale population: slab-backed storage (stable
  // addresses, no per-object malloc header) indexed by an open-addressing
  // map. Lookups are point queries; nothing iterates sessions_ in hash
  // order except teardown and the alive-count stat.
  Slab<UdpP2pSession, 512> session_pool_;
  FlatHashMap<uint64_t, UdpP2pSession*> sessions_;  // by nonce
  FlatHashMap<uint64_t, SessionCallbacks> session_callbacks_;
  std::function<void(UdpP2pSession*)> incoming_cb_;
  std::function<void(const Endpoint&, const Payload&)> raw_handler_;
  std::function<void(const Endpoint&, const PeerMessage&)> unclaimed_handler_;
};

}  // namespace natpunch

#endif  // SRC_CORE_UDP_PUNCHER_H_
