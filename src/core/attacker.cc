#include "src/core/attacker.h"

namespace natpunch {

GarbageBlaster::GarbageBlaster(Host* host, GarbageBlasterConfig config)
    : host_(host), config_(std::move(config)), rng_(config_.seed) {}

GarbageBlaster::~GarbageBlaster() { Stop(); }

Status GarbageBlaster::Start() {
  auto bound = host_->udp().Bind(0);
  if (!bound.ok()) {
    return bound.status();
  }
  socket_ = *bound;
  Tick();
  return Status::Ok();
}

void GarbageBlaster::Stop() {
  if (timer_ != EventLoop::kInvalidEventId) {
    host_->loop().Cancel(timer_);
    timer_ = EventLoop::kInvalidEventId;
  }
  if (socket_ != nullptr) {
    socket_->Close();
    socket_ = nullptr;
  }
}

void GarbageBlaster::Tick() {
  socket_->SendTo(config_.target, NextBlast());
  ++sent_;
  timer_ = host_->loop().ScheduleAfter(config_.interval, [this] { Tick(); });
}

Bytes GarbageBlaster::NextBlast() {
  // Round-robin over the strategies so a short blast still covers all four;
  // the bytes inside each are seeded-random.
  const uint32_t strategy = strategy_;
  strategy_ = (strategy_ + 1) % 4;
  const auto random_bytes = [this](size_t n) {
    Bytes out(n);
    for (auto& b : out) {
      b = static_cast<uint8_t>(rng_.NextBelow(256));
    }
    return out;
  };
  switch (strategy) {
    case 0: {  // pure random bytes
      const size_t n = static_cast<size_t>(
          rng_.NextInRange(static_cast<int64_t>(config_.min_random_bytes),
                           static_cast<int64_t>(config_.max_random_bytes)));
      return random_bytes(n);
    }
    case 1: {  // valid magic, random body: gets past the first decoder check
      const size_t n = static_cast<size_t>(
          rng_.NextInRange(static_cast<int64_t>(config_.min_random_bytes),
                           static_cast<int64_t>(config_.max_random_bytes)));
      Bytes out = random_bytes(n);
      if (!config_.magics.empty()) {
        out[0] = config_.magics[rng_.NextBelow(config_.magics.size())];
      }
      return out;
    }
    case 2: {  // bit-flipped copy of a well-formed template frame
      if (templates_.empty()) {
        return random_bytes(config_.max_random_bytes);
      }
      Bytes out = templates_[rng_.NextBelow(templates_.size())];
      const uint64_t flips = 1 + rng_.NextBelow(4);
      for (uint64_t i = 0; i < flips; ++i) {
        const uint64_t bit = rng_.NextBelow(out.size() * 8);
        out[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      }
      return out;
    }
    default: {  // truncated prefix of a well-formed template frame
      if (templates_.empty()) {
        return random_bytes(1);
      }
      const Bytes& frame = templates_[rng_.NextBelow(templates_.size())];
      const size_t n = static_cast<size_t>(rng_.NextBelow(frame.size()));
      return Bytes(frame.begin(), frame.begin() + static_cast<ptrdiff_t>(n));
    }
  }
}

}  // namespace natpunch
