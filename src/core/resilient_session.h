// Self-healing peer sessions (§3.6 "recovering on demand", automated).
//
// The paper observes that punched sessions die — NAT reboots flush the
// translation state, idle timeouts reclaim it — and that applications
// simply re-run hole punching when they notice. ResilientSession wraps a
// UdpP2pSession and does exactly that, automatically: when the inner
// session's expiry watchdog fires, the initiator re-punches with
// exponential backoff plus deterministic jitter, and after a bounded number
// of failed re-punches falls back to the §2.2 relay hierarchy, here a
// TURN-style data-plane relay (address-based permissions, so the fallback
// works even when BOTH peers sit behind symmetric NATs and punching is
// structurally impossible).
//
// Relay fallback signaling rides the existing rendezvous introduction
// machinery: the initiator allocates a relayed endpoint EA and sends a
// kRelayOnly connect request whose payload is EA; the responder then
// addresses the initiator *at EA* with ordinary peer-wire datagrams from
// its punch socket, while the initiator speaks through its TURN client.
// The first datagram from the responder that surfaces at EA tells the
// initiator the responder's live public endpoint, closing the loop.
//
// Every recovery is recorded (downtime, re-punch attempts, final path) —
// the raw material for the chaos bench's availability and recovery-time
// distributions.

#ifndef SRC_CORE_RESILIENT_SESSION_H_
#define SRC_CORE_RESILIENT_SESSION_H_

#include <map>
#include <memory>
#include <vector>

#include "src/core/turn.h"
#include "src/core/udp_puncher.h"

namespace natpunch {

struct ResilientSessionConfig {
  // Re-punch backoff: delay_n = min(initial * factor^n, max), each delay
  // scaled by a uniform +/- jitter fraction drawn from the host rng (so two
  // peers recovering simultaneously do not stampede in lockstep, yet the
  // whole schedule stays reproducible under a fixed seed).
  SimDuration backoff_initial = Millis(500);
  double backoff_factor = 2.0;
  SimDuration backoff_max = Seconds(8);
  double jitter = 0.2;
  // Failed re-punch attempts before giving up on the direct path. With a
  // TURN server configured the session then falls back to the relay;
  // without one it is declared failed.
  int max_repunch_attempts = 3;
  // Unspecified => no relay fallback.
  Endpoint turn_server;
  // Cap on datagrams buffered while the session is between paths.
  size_t max_pending_sends = 128;
  // Relay-leg watchdog: while on the relay path the initiator sends
  // keepalives through the relay every relay_keepalive_interval (the
  // responder already knocks at the puncher's keepalive cadence), and each
  // side declares the leg dead after relay_timeout without any inbound
  // relay traffic. A dead leg re-enters the normal recovery ladder:
  // re-punch with backoff, then a fresh relay allocation — so a rebooted
  // relay server is picked up automatically. relay_timeout must exceed
  // both keepalive cadences or an idle-but-healthy leg false-positives.
  SimDuration relay_keepalive_interval = Seconds(5);
  SimDuration relay_timeout = Seconds(30);
  // Adaptive relay failure detection. Keepalives double as RTT probes: a
  // probe (empty payload) is echoed by the peer with a one-byte reply
  // marker, and each side keeps an EWMA of the probe->inbound delay. The
  // watchdog then waits clamp(2 * relay_keepalive_interval +
  // relay_rtt_margin * srtt, relay_timeout_floor, relay_timeout) of silence
  // instead of the static relay_timeout — at simulated RTTs that is ~10 s
  // instead of 30 s, while still tolerating one whole lost keepalive round.
  // Until the first RTT sample (or with the flag off) the static
  // relay_timeout applies.
  bool adaptive_relay_timeout = true;
  SimDuration relay_timeout_floor = Seconds(8);
  double relay_rtt_margin = 6.0;
  // Deterministic per-session spread on the steady (confirmed) relay
  // keepalive cadences, hashed from the peer id into
  // [-relay_keepalive_jitter, +relay_keepalive_jitter]. Breaks up swarm-wide
  // keepalive waves; zero (the default) reproduces the unjittered cadence
  // exactly. The unconfirmed fast-knock cadence is never jittered.
  SimDuration relay_keepalive_jitter = Micros(0);
};

class ResilientSessionManager;

class ResilientSession {
 public:
  enum class Path {
    kConnecting,  // punching, re-punching, or relay signaling in flight
    kDirect,      // punched UDP session
    kRelay,       // TURN relay fallback
    kFailed,      // recovery abandoned
  };

  using ReceiveCallback = std::function<void(const Bytes& payload)>;
  using PathChangeCallback = std::function<void(Path)>;
  using DeadCallback = std::function<void(Status)>;

  // One completed recovery: death of the previous path to data flowing again.
  struct RecoveryRecord {
    SimTime died_at;
    SimDuration downtime;
    int repunch_attempts = 0;
    bool via_relay = false;
  };

  // Application payload over whichever path is live. While recovering,
  // payloads are buffered (up to max_pending_sends) and flushed on recovery.
  Status Send(Bytes payload);

  void SetReceiveCallback(ReceiveCallback cb) { receive_cb_ = std::move(cb); }
  void SetPathChangeCallback(PathChangeCallback cb) { path_cb_ = std::move(cb); }
  // Fired once if recovery is abandoned (path kFailed).
  void SetDeadCallback(DeadCallback cb) { dead_cb_ = std::move(cb); }

  uint64_t peer_id() const { return peer_id_; }
  bool initiator() const { return initiator_; }
  Path path() const { return path_; }
  bool alive() const { return path_ != Path::kFailed; }
  // The punched session currently carrying data (null on the relay path).
  UdpP2pSession* inner() const { return inner_; }

  const std::vector<RecoveryRecord>& recoveries() const { return recoveries_; }
  SimDuration total_downtime() const;
  int total_repunch_attempts() const;
  uint64_t relayed_sent() const { return relayed_sent_; }
  uint64_t relayed_received() const { return relayed_received_; }
  // Datagrams rejected because the between-paths buffer was full (the send
  // queue is bounded by max_pending_sends; overflow is dropped and counted,
  // never buffered unboundedly).
  uint64_t sends_dropped() const { return sends_dropped_; }
  // Times the relay-leg watchdog declared the relay dead.
  int relay_losses() const { return relay_losses_; }
  // Smoothed relay-leg RTT from keepalive probes; 0 before the first sample.
  SimDuration relay_srtt() const { return relay_srtt_; }

 private:
  friend class ResilientSessionManager;
  template <typename, size_t>
  friend class Slab;

  ResilientSession(ResilientSessionManager* manager, uint64_t peer_id, bool initiator)
      : manager_(manager), peer_id_(peer_id), initiator_(initiator) {}

  void SetPath(Path path);

  // Intrusive timer thunks (zero-allocation arm/fire).
  void RepunchFire();
  void RelayKeepAliveFire();
  void RelayWatchdogFire();

  ResilientSessionManager* manager_;
  uint64_t peer_id_;
  bool initiator_;
  Path path_ = Path::kConnecting;
  UdpP2pSession* inner_ = nullptr;  // owned by the puncher

  // Recovery in flight.
  bool recovering_ = false;
  SimTime died_at_;
  int repunch_attempts_ = 0;
  TimerHandle repunch_timer_;

  // Relay state. The initiator owns the allocation and speaks through
  // turn_; the responder sends plain peer-wire datagrams at relay_target_
  // (the initiator's relayed endpoint) from the shared punch socket.
  std::unique_ptr<TurnClient> turn_;
  uint64_t relay_nonce_ = 0;
  Endpoint relay_target_;    // responder: EA; initiator: peer's observed ep
  bool relay_confirmed_ = false;
  // Fires either side's relay keepalive: the initiator's (through turn_) or
  // the responder's knock loop, discriminated by turn_ in RelayKeepAliveFire.
  TimerHandle relay_keepalive_timer_;
  // This session's deterministic keepalive spread (zero without jitter).
  SimDuration relay_keepalive_offset_ = Micros(0);
  // Relay-leg watchdog: last time any relay traffic arrived, and the timer
  // that checks the silence window against relay_timeout.
  SimTime last_relay_rx_;
  TimerHandle relay_watchdog_timer_;
  int relay_losses_ = 0;
  // Keepalive RTT probe state for the adaptive watchdog.
  SimTime last_keepalive_tx_;
  bool rtt_pending_ = false;
  SimDuration relay_srtt_ = Micros(0);  // EWMA (1/8 gain); 0 = unsampled

  std::vector<Bytes> pending_sends_;
  std::vector<RecoveryRecord> recoveries_;
  uint64_t relayed_sent_ = 0;
  uint64_t relayed_received_ = 0;
  uint64_t sends_dropped_ = 0;

  std::function<void(Result<ResilientSession*>)> connect_cb_;
  ReceiveCallback receive_cb_;
  PathChangeCallback path_cb_;
  DeadCallback dead_cb_;
};

class ResilientSessionManager {
 public:
  using SessionCallback = std::function<void(Result<ResilientSession*>)>;

  // Installs itself as the puncher's incoming-session and unclaimed-message
  // consumer and registers the kRelayOnly forward handler — one manager per
  // puncher.
  ResilientSessionManager(UdpHolePuncher* puncher,
                          ResilientSessionConfig config = ResilientSessionConfig{});

  ResilientSessionManager(const ResilientSessionManager&) = delete;
  ResilientSessionManager& operator=(const ResilientSessionManager&) = delete;
  ~ResilientSessionManager();

  // Active side. Tries the direct punch first; if it fails and a TURN
  // server is configured, establishes the relay path instead.
  void ConnectToPeer(uint64_t peer_id, SessionCallback cb);

  // Passive side: sessions initiated by remote peers (either path). Repeat
  // punches from a peer with an existing session rebind into that session
  // (they are a recovery, not a new conversation) and do NOT re-fire this.
  void SetIncomingSessionCallback(std::function<void(ResilientSession*)> cb) {
    incoming_cb_ = std::move(cb);
  }

  ResilientSession* FindSession(uint64_t peer_id);
  size_t session_count() const { return sessions_.size(); }
  UdpHolePuncher* puncher() const { return puncher_; }
  const ResilientSessionConfig& config() const { return config_; }

 private:
  friend class ResilientSession;

  ResilientSession* FindOrCreate(uint64_t peer_id, bool initiator, bool* created);

  void AdoptInner(ResilientSession* rs, UdpP2pSession* inner);
  void OnIncomingSession(UdpP2pSession* inner);
  void OnInnerDead(ResilientSession* rs, Status status);
  void ScheduleRepunch(ResilientSession* rs);
  void AttemptRepunch(ResilientSession* rs);
  void FinishRecovery(ResilientSession* rs, bool via_relay);
  void FailSession(ResilientSession* rs, const Status& status);
  void FlushPending(ResilientSession* rs);

  bool relay_available() const { return !config_.turn_server.IsUnspecified(); }
  void EnterRelay(ResilientSession* rs);
  void RelayEstablished(ResilientSession* rs);
  void OnRelayForward(const RendezvousMessage& msg);       // responder side
  void OnTurnData(uint64_t peer_id, const Endpoint& from,  // initiator side
                  const Bytes& payload);
  void OnUnclaimed(const Endpoint& from, const PeerMessage& msg);
  void ResponderRelayKeepAlive(ResilientSession* rs);
  void InitiatorRelayKeepAlive(ResilientSession* rs);
  // Watchdog wakeup: declare the leg dead or sleep out the remaining window.
  void RelayWatchdogTick(ResilientSession* rs);
  // (Re)start the silence clock: records now as the last inbound and arms
  // the watchdog timer for a full relay_timeout.
  void ArmRelayWatchdog(ResilientSession* rs);
  void ScheduleRelayWatchdog(ResilientSession* rs, SimDuration delay);
  // The silence window the watchdog currently applies to this session:
  // static relay_timeout until RTT samples exist, adaptive afterwards.
  SimDuration EffectiveRelayTimeout(const ResilientSession* rs) const;
  // Bookkeeping common to both sides' inbound relay traffic: refresh the
  // silence clock and fold a pending keepalive probe into the srtt.
  void NoteRelayInbound(ResilientSession* rs);
  // Stamp an outbound keepalive as an RTT probe (no-op while one is open).
  void MarkKeepAliveProbe(ResilientSession* rs);
  void OnRelayDead(ResilientSession* rs);
  Status RelaySend(ResilientSession* rs, Bytes payload);

  SimDuration NextBackoff(const ResilientSession* rs);
  // Bounded-send-queue overflow accounting (resilient.sends_dropped).
  void CountDroppedSend(ResilientSession* rs);

  UdpHolePuncher* puncher_;
  ResilientSessionConfig config_;
  EventLoop& loop_;
  // Slab-backed like the puncher's sessions: stable addresses, no per-object
  // malloc header, point lookups by peer id. Nonce matching in OnUnclaimed
  // is unique, so nothing depends on iteration order.
  Slab<ResilientSession, 256> session_pool_;
  FlatHashMap<uint64_t, ResilientSession*> sessions_;  // by peer id
  std::function<void(ResilientSession*)> incoming_cb_;

  // Registry names: resilient.recoveries / relay_fallbacks / relay_losses /
  // sends_dropped and the resilient.recovery_downtime_ms histogram. Null
  // without metrics.
  obs::Counter* metric_recoveries_ = nullptr;
  obs::Counter* metric_relay_fallbacks_ = nullptr;
  obs::Counter* metric_relay_losses_ = nullptr;
  obs::Counter* metric_sends_dropped_ = nullptr;
  obs::Histogram* metric_downtime_ms_ = nullptr;
};

}  // namespace natpunch

#endif  // SRC_CORE_RESILIENT_SESSION_H_
