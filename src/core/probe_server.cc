#include "src/core/probe_server.h"

namespace natpunch {
namespace {
constexpr uint8_t kMagic = 0x51;  // 'Q'
}  // namespace

Bytes EncodeProbeMessage(const ProbeMessage& msg) {
  ByteWriter w;
  w.WriteU8(kMagic);
  w.WriteU8(static_cast<uint8_t>(msg.type));
  w.WriteU64(msg.txn);
  w.WriteU32(msg.observed.ip.bits());
  w.WriteU16(msg.observed.port);
  w.WriteU8(static_cast<uint8_t>(msg.source_tag));
  return w.Take();
}

std::optional<ProbeMessage> DecodeProbeMessage(ConstByteSpan data) {
  ByteReader r(data);
  if (r.ReadU8() != kMagic) {
    return std::nullopt;
  }
  ProbeMessage msg;
  const uint8_t type = r.ReadU8();
  if (type < static_cast<uint8_t>(ProbeMsgType::kEchoRequest) ||
      type > static_cast<uint8_t>(ProbeMsgType::kForwardedEcho)) {
    return std::nullopt;
  }
  msg.type = static_cast<ProbeMsgType>(type);
  msg.txn = r.ReadU64();
  msg.observed.ip = Ipv4Address(r.ReadU32());
  msg.observed.port = r.ReadU16();
  const uint8_t source_tag = r.ReadU8();
  // Strict armor: enum byte validated, frame consumed exactly.
  if (!r.ok() || !r.AtEnd()) {
    return std::nullopt;
  }
  if (source_tag > static_cast<uint8_t>(ProbeSourceTag::kPartner)) {
    return std::nullopt;
  }
  msg.source_tag = static_cast<ProbeSourceTag>(source_tag);
  return msg;
}

StunLikeServer::StunLikeServer(Host* host, uint16_t port) : host_(host), port_(port) {}

Status StunLikeServer::Start() {
  auto main_sock = host_->udp().Bind(port_);
  if (!main_sock.ok()) {
    return main_sock.status();
  }
  main_socket_ = *main_sock;
  auto alt_sock = host_->udp().Bind(static_cast<uint16_t>(port_ + 1));
  if (!alt_sock.ok()) {
    return alt_sock.status();
  }
  alt_socket_ = *alt_sock;
  main_socket_->SetReceiveCallback(
      [this](const Endpoint& from, const Payload& payload) { OnMain(from, payload); });
  alt_socket_->SetReceiveCallback(
      [this](const Endpoint& from, const Payload& payload) { OnAlt(from, payload); });
  return Status::Ok();
}

void StunLikeServer::OnMain(const Endpoint& from, const Payload& payload) {
  auto msg = DecodeProbeMessage(payload);
  if (!msg) {
    host_->CountMalformedDrop();
    return;
  }
  ++requests_served_;
  switch (msg->type) {
    case ProbeMsgType::kEchoRequest: {
      ProbeMessage reply{ProbeMsgType::kEchoReply, msg->txn, from, ProbeSourceTag::kMain};
      main_socket_->SendTo(from, EncodeProbeMessage(reply));
      return;
    }
    case ProbeMsgType::kAltReplyRequest: {
      ProbeMessage reply{ProbeMsgType::kEchoReply, msg->txn, from, ProbeSourceTag::kAlt};
      alt_socket_->SendTo(from, EncodeProbeMessage(reply));
      return;
    }
    case ProbeMsgType::kPartnerReplyRequest: {
      if (partner_.IsUnspecified()) {
        return;
      }
      ProbeMessage forward{ProbeMsgType::kForwardedEcho, msg->txn, from, ProbeSourceTag::kMain};
      main_socket_->SendTo(partner_, EncodeProbeMessage(forward));
      return;
    }
    case ProbeMsgType::kForwardedEcho: {
      // We are the partner: answer the quoted client from our own address.
      ProbeMessage reply{ProbeMsgType::kEchoReply, msg->txn, msg->observed,
                         ProbeSourceTag::kPartner};
      main_socket_->SendTo(msg->observed, EncodeProbeMessage(reply));
      return;
    }
    default:
      return;
  }
}

void StunLikeServer::OnAlt(const Endpoint& from, const Payload& payload) {
  auto msg = DecodeProbeMessage(payload);
  if (!msg) {
    host_->CountMalformedDrop();
    return;
  }
  if (msg->type != ProbeMsgType::kEchoRequest) {
    return;
  }
  ++requests_served_;
  ProbeMessage reply{ProbeMsgType::kEchoReply, msg->txn, from, ProbeSourceTag::kAlt};
  alt_socket_->SendTo(from, EncodeProbeMessage(reply));
}

}  // namespace natpunch
