#include "src/core/tcp_puncher.h"

#include "src/util/logging.h"

namespace natpunch {

TcpHolePuncher::TcpHolePuncher(TcpRendezvousClient* rendezvous, TcpPunchConfig config)
    : rendezvous_(rendezvous), config_(config), loop_(rendezvous->host()->loop()) {
  // Passive side of §4.2: listen and connect, symmetrically. For reversal
  // (§2.3) the requester is waiting for us to connect back — same flow.
  auto passive = [this](const RendezvousMessage& fwd) {
    StartAttempt(fwd.client_id, fwd.nonce, fwd.public_ep, fwd.private_ep,
                 /*incoming=*/true, /*connect_side=*/true, nullptr);
  };
  rendezvous_->SetConnectForwardHandler(ConnectStrategy::kHolePunch, passive);
  rendezvous_->SetConnectForwardHandler(ConnectStrategy::kReversal, passive);
}

Status TcpHolePuncher::EnsureListener() {
  if (listener_ != nullptr) {
    return Status::Ok();
  }
  listener_ = rendezvous_->host()->tcp().CreateSocket();
  listener_->SetReuseAddr(true);
  Status status = listener_->Bind(rendezvous_->local_port());
  if (!status.ok()) {
    listener_ = nullptr;
    return status;
  }
  status = listener_->Listen([this](TcpSocket* socket) { OnAccepted(socket); });
  if (!status.ok()) {
    listener_ = nullptr;
  }
  return status;
}

void TcpHolePuncher::ConnectToPeer(uint64_t peer_id, ConnectStrategy strategy,
                                   StreamCallback cb) {
  const uint64_t nonce = rendezvous_->host()->rng().NextU64();
  rendezvous_->RequestConnect(
      peer_id, strategy, nonce,
      [this, peer_id, nonce, strategy, cb = std::move(cb)](Result<RendezvousMessage> ack) mutable {
        if (!ack.ok()) {
          cb(ack.status());
          return;
        }
        // For reversal the requester only listens; the peer connects in.
        const bool connect_side = strategy != ConnectStrategy::kReversal;
        StartAttempt(peer_id, nonce, ack->public_ep, ack->private_ep, /*incoming=*/false,
                     connect_side, std::move(cb));
      });
}

void TcpHolePuncher::StartAttempt(uint64_t peer_id, uint64_t nonce, const Endpoint& peer_public,
                                  const Endpoint& peer_private, bool incoming, bool connect_side,
                                  StreamCallback cb) {
  if (attempts_.count(nonce) != 0) {
    return;
  }
  Status listen_status = EnsureListener();
  if (!listen_status.ok()) {
    if (cb) {
      cb(listen_status);
    }
    return;
  }
  Attempt& attempt = attempts_[nonce];
  attempt.peer_id = peer_id;
  attempt.nonce = nonce;
  attempt.incoming = incoming;
  attempt.peer_public = peer_public;
  attempt.peer_private = peer_private;
  attempt.started = loop_.now();
  attempt.cb = std::move(cb);
  if (connect_side) {
    if (!peer_public.IsUnspecified()) {
      attempt.candidates.push_back(Candidate{peer_public, false, nullptr,
                                             EventLoop::kInvalidEventId, false});
    }
    if (config_.try_private_endpoint && !peer_private.IsUnspecified() &&
        peer_private != peer_public) {
      attempt.candidates.push_back(Candidate{peer_private, true, nullptr,
                                             EventLoop::kInvalidEventId, false});
    }
  }
  attempt.deadline_event = loop_.ScheduleAfter(config_.punch_timeout, [this, nonce] {
    FailAttempt(nonce, Status(ErrorCode::kTimedOut, "TCP hole punch timed out"));
  });
  for (size_t i = 0; i < attempt.candidates.size(); ++i) {
    LaunchCandidate(nonce, i);
  }
}

void TcpHolePuncher::LaunchCandidate(uint64_t nonce, size_t index) {
  auto it = attempts_.find(nonce);
  if (it == attempts_.end()) {
    return;
  }
  Attempt& attempt = it->second;
  Candidate& candidate = attempt.candidates[index];
  if (candidate.gave_up) {
    return;
  }
  candidate.retry_event = EventLoop::kInvalidEventId;
  candidate.socket = rendezvous_->host()->tcp().CreateSocket();
  candidate.socket->SetReuseAddr(true);
  Status status = candidate.socket->Bind(rendezvous_->local_port());
  if (status.ok()) {
    ++attempt.stats.connect_attempts;
    const bool is_private = candidate.is_private;
    TcpSocket* socket = candidate.socket;
    status = socket->Connect(candidate.endpoint, [this, nonce, index, socket,
                                                  is_private](Status result) {
      if (result.ok()) {
        OnEstablished(nonce, socket, is_private);
      } else {
        HandleConnectFailure(nonce, index, result);
      }
    });
  }
  if (!status.ok()) {
    HandleConnectFailure(nonce, index, status);
  }
}

void TcpHolePuncher::HandleConnectFailure(uint64_t nonce, size_t index, const Status& status) {
  auto it = attempts_.find(nonce);
  if (it == attempts_.end()) {
    return;
  }
  Attempt& attempt = it->second;
  Candidate& candidate = attempt.candidates[index];
  switch (status.code()) {
    case ErrorCode::kConnectionRefused:
    case ErrorCode::kConnectionReset:
      ++attempt.stats.refused;
      break;
    case ErrorCode::kHostUnreachable:
      ++attempt.stats.unreachable;
      break;
    case ErrorCode::kTimedOut:
      ++attempt.stats.timed_out;
      break;
    case ErrorCode::kAddressInUse:
      // §4.3 behavior 2: the listener hijacked this connection (or an
      // accepted socket owns the tuple). The working stream arrives via
      // accept(); stop re-dialing this candidate.
      ++attempt.stats.address_in_use;
      candidate.gave_up = true;
      return;
    default:
      break;
  }
  // §4.2 step 4: retry after a short delay, until the attempt deadline.
  candidate.retry_event = loop_.ScheduleAfter(
      config_.retry_delay, [this, nonce, index] { LaunchCandidate(nonce, index); });
}

void TcpHolePuncher::SendAuth(PendingStream* pending, PeerMsgType type, uint64_t nonce) {
  PeerMessage msg;
  msg.type = type;
  msg.nonce = nonce;
  msg.sender_id = rendezvous_->client_id();
  pending->socket->Send(MessageFramer::Frame(EncodePeerMessage(msg)));
}

void TcpHolePuncher::OnEstablished(uint64_t nonce, TcpSocket* socket, bool is_private) {
  pending_.push_back(std::make_unique<PendingStream>());
  PendingStream* pending = pending_.back().get();
  pending->socket = socket;
  pending->attempt_nonce = nonce;
  pending->is_private = is_private;
  socket->SetDataCallback([this, pending](const Bytes& data) { OnPendingData(pending, data); });
  socket->SetClosedCallback([pending](Status) { pending->dead = true; });
  SendAuth(pending, PeerMsgType::kAuth, nonce);
}

void TcpHolePuncher::OnAccepted(TcpSocket* socket) {
  pending_.push_back(std::make_unique<PendingStream>());
  PendingStream* pending = pending_.back().get();
  pending->socket = socket;
  socket->SetDataCallback([this, pending](const Bytes& data) { OnPendingData(pending, data); });
  socket->SetClosedCallback([pending](Status) { pending->dead = true; });
  // If the remote endpoint matches an in-flight attempt, we can start the
  // authentication ourselves. (Essential when *both* sides end up on
  // accepted sockets — §4.4 with two kLinuxWindows stacks — since neither
  // side's connect() survived to send the first kAuth.)
  for (auto& [nonce, attempt] : attempts_) {
    const Endpoint remote = socket->remote_endpoint();
    const bool match = remote == attempt.peer_public || remote == attempt.peer_private;
    if (match) {
      pending->attempt_nonce = nonce;
      pending->is_private = (remote == attempt.peer_private);
      SendAuth(pending, PeerMsgType::kAuth, nonce);
      break;
    }
  }
}

void TcpHolePuncher::OnPendingData(PendingStream* pending, const Bytes& data) {
  if (pending->dead) {
    return;
  }
  const std::vector<Bytes> frames = pending->framer.Append(data);
  for (size_t i = 0; i < frames.size(); ++i) {
    auto msg = DecodePeerMessage(frames[i]);
    if (!msg) {
      pending->socket->host()->CountMalformedDrop();
      continue;
    }
    const bool nonce_known =
        attempts_.count(msg->nonce) != 0 ||
        (pending->attempt_nonce != 0 && pending->attempt_nonce == msg->nonce);
    switch (msg->type) {
      case PeerMsgType::kAuth: {
        if (!nonce_known) {
          // §4.2 step 5: authentication failed — close and keep waiting on
          // other sockets.
          DropPending(pending);
          return;
        }
        SendAuth(pending, PeerMsgType::kAuthOk, msg->nonce);
        // Stash any frames that followed the auth in this same batch so the
        // winning stream sees them.
        for (size_t j = i + 1; j < frames.size(); ++j) {
          const Bytes reframed = MessageFramer::Frame(frames[j]);
          pending->framer.Append(reframed);
        }
        Win(pending, msg->nonce);
        return;
      }
      case PeerMsgType::kAuthOk: {
        if (!nonce_known) {
          DropPending(pending);
          return;
        }
        for (size_t j = i + 1; j < frames.size(); ++j) {
          const Bytes reframed = MessageFramer::Frame(frames[j]);
          pending->framer.Append(reframed);
        }
        Win(pending, msg->nonce);
        return;
      }
      default:
        // Data before authentication completes: requeue everything left and
        // wait for the auth exchange.
        for (size_t j = i; j < frames.size(); ++j) {
          pending->framer.Append(MessageFramer::Frame(frames[j]));
        }
        return;
    }
  }
}

void TcpHolePuncher::DropPending(PendingStream* pending) {
  pending->dead = true;
  pending->socket->Abort();
}

void TcpHolePuncher::AbandonAttemptResources(Attempt* attempt, TcpSocket* keep) {
  if (attempt->deadline_event != EventLoop::kInvalidEventId) {
    loop_.Cancel(attempt->deadline_event);
  }
  for (Candidate& candidate : attempt->candidates) {
    if (candidate.retry_event != EventLoop::kInvalidEventId) {
      loop_.Cancel(candidate.retry_event);
    }
    if (candidate.socket != nullptr && candidate.socket != keep &&
        candidate.socket->state() != TcpState::kClosed) {
      candidate.socket->Abort();
    }
  }
  for (auto& pending : pending_) {
    if (!pending->dead && pending->socket != keep &&
        pending->attempt_nonce == attempt->nonce) {
      DropPending(pending.get());
    }
  }
}

void TcpHolePuncher::Win(PendingStream* pending, uint64_t nonce) {
  auto it = attempts_.find(nonce);
  if (it == attempts_.end()) {
    // The attempt already produced a winner; this is a redundant stream.
    pending->dead = true;
    pending->socket->Close();
    return;
  }
  Attempt attempt = std::move(it->second);
  attempts_.erase(it);
  pending->dead = true;  // no longer routed through OnPendingData

  const bool used_private = pending->is_private ||
                            pending->socket->remote_endpoint() == attempt.peer_private;
  AbandonAttemptResources(&attempt, pending->socket);
  last_stats_ = attempt.stats;

  streams_.push_back(std::make_unique<TcpP2pStream>(
      pending->socket, attempt.peer_id, nonce, std::move(pending->framer), used_private,
      loop_.now() - attempt.started));
  TcpP2pStream* stream = streams_.back().get();

  NP_LOG(Info) << rendezvous_->host()->name() << " TCP stream to peer " << attempt.peer_id
               << " via " << (stream->via_accept() ? "accept()" : "connect()") << " at "
               << stream->remote_endpoint().ToString();

  if (attempt.cb) {
    attempt.cb(stream);
  } else if (incoming_cb_) {
    incoming_cb_(stream);
  }
}

void TcpHolePuncher::FailAttempt(uint64_t nonce, const Status& status) {
  auto it = attempts_.find(nonce);
  if (it == attempts_.end()) {
    return;
  }
  Attempt attempt = std::move(it->second);
  attempts_.erase(it);
  AbandonAttemptResources(&attempt, nullptr);
  last_stats_ = attempt.stats;
  if (attempt.cb) {
    attempt.cb(status);
  }
}

}  // namespace natpunch
