#include "src/core/connector.h"

#include "src/util/logging.h"

namespace natpunch {

Status P2pChannel::Send(Bytes payload) {
  if (kind_ == Kind::kPunched) {
    return session_->Send(std::move(payload));
  }
  return relay_->Send(std::move(payload));
}

void P2pChannel::SetReceiveCallback(ReceiveCallback cb) {
  if (kind_ == Kind::kPunched) {
    session_->SetReceiveCallback(std::move(cb));
  } else {
    relay_->SetReceiveCallback(std::move(cb));
  }
}

UdpConnector::UdpConnector(UdpRendezvousClient* rendezvous, Options options)
    : options_(options), puncher_(rendezvous, options.punch), relay_hub_(rendezvous) {
  puncher_.SetIncomingSessionCallback([this](UdpP2pSession* session) {
    P2pChannel* channel = WrapSession(session);
    if (incoming_cb_) {
      incoming_cb_(channel);
    }
  });
  relay_hub_.SetIncomingChannelCallback([this](RelayChannel* relay) {
    P2pChannel* channel = WrapRelay(relay);
    if (incoming_cb_) {
      incoming_cb_(channel);
    }
  });
}

P2pChannel* UdpConnector::WrapSession(UdpP2pSession* session) {
  channels_.push_back(std::make_unique<P2pChannel>());
  P2pChannel* channel = channels_.back().get();
  channel->kind_ = P2pChannel::Kind::kPunched;
  channel->peer_id_ = session->peer_id();
  channel->session_ = session;
  return channel;
}

P2pChannel* UdpConnector::WrapRelay(RelayChannel* relay) {
  channels_.push_back(std::make_unique<P2pChannel>());
  P2pChannel* channel = channels_.back().get();
  channel->kind_ = P2pChannel::Kind::kRelayed;
  channel->peer_id_ = relay->peer_id();
  channel->relay_ = relay;
  return channel;
}

// ---------------------------------------------------------------------------
// TcpConnector
// ---------------------------------------------------------------------------

Status TcpChannel::Send(Bytes payload) {
  if (kind_ == Kind::kStream) {
    return stream_->Send(std::move(payload));
  }
  return relay_->Send(std::move(payload));
}

void TcpChannel::SetReceiveCallback(ReceiveCallback cb) {
  if (kind_ == Kind::kStream) {
    stream_->SetReceiveCallback(std::move(cb));
  } else {
    relay_->SetReceiveCallback(std::move(cb));
  }
}

TcpConnector::TcpConnector(TcpRendezvousClient* rendezvous, Options options)
    : options_(options), puncher_(rendezvous, options.punch), relay_hub_(rendezvous) {
  puncher_.SetIncomingStreamCallback([this](TcpP2pStream* stream) {
    TcpChannel* channel = WrapStream(stream);
    if (incoming_cb_) {
      incoming_cb_(channel);
    }
  });
  relay_hub_.SetIncomingChannelCallback([this](RelayChannel* relay) {
    TcpChannel* channel = WrapRelay(relay);
    if (incoming_cb_) {
      incoming_cb_(channel);
    }
  });
}

TcpChannel* TcpConnector::WrapStream(TcpP2pStream* stream) {
  channels_.push_back(std::make_unique<TcpChannel>());
  TcpChannel* channel = channels_.back().get();
  channel->kind_ = TcpChannel::Kind::kStream;
  channel->peer_id_ = stream->peer_id();
  channel->stream_ = stream;
  return channel;
}

TcpChannel* TcpConnector::WrapRelay(RelayChannel* relay) {
  channels_.push_back(std::make_unique<TcpChannel>());
  TcpChannel* channel = channels_.back().get();
  channel->kind_ = TcpChannel::Kind::kRelayed;
  channel->peer_id_ = relay->peer_id();
  channel->relay_ = relay;
  return channel;
}

void TcpConnector::Connect(uint64_t peer_id, std::function<void(Result<TcpChannel*>)> cb) {
  puncher_.ConnectToPeer(peer_id, [this, peer_id,
                                   cb = std::move(cb)](Result<TcpP2pStream*> result) {
    if (result.ok()) {
      cb(WrapStream(*result));
      return;
    }
    if (!options_.relay_fallback) {
      cb(result.status());
      return;
    }
    NP_LOG(Info) << "TCP punch to " << peer_id << " failed ("
                 << result.status().ToString() << "); falling back to relay";
    cb(WrapRelay(relay_hub_.OpenChannel(peer_id)));
  });
}

void UdpConnector::Connect(uint64_t peer_id, std::function<void(Result<P2pChannel*>)> cb) {
  puncher_.ConnectToPeer(peer_id, [this, peer_id,
                                   cb = std::move(cb)](Result<UdpP2pSession*> result) {
    if (result.ok()) {
      cb(WrapSession(*result));
      return;
    }
    if (!options_.relay_fallback) {
      cb(result.status());
      return;
    }
    NP_LOG(Info) << "hole punch to " << peer_id << " failed ("
                 << result.status().ToString() << "); falling back to relay";
    cb(WrapRelay(relay_hub_.OpenChannel(peer_id)));
  });
}

}  // namespace natpunch
