#include "src/core/nat_prober.h"

#include "src/util/logging.h"

namespace natpunch {

std::string NatProbeReport::ToString() const {
  std::string out = "NatProbeReport{";
  out += behind_nat ? "NATed" : "public";
  out += ", mapping=" + std::string(NatMappingName(mapping));
  out += ", filtering=" + std::string(NatFilteringName(filtering));
  out += ", public=" + public_endpoint.ToString();
  out += ", delta=" + std::to_string(port_delta) + "}";
  return out;
}

// One probe sequence in flight.
struct NatProber::Run {
  UdpSocket* socket = nullptr;
  std::function<void(Result<NatProbeReport>)> cb;
  int step = 0;
  int attempts = 0;
  uint64_t txn = 0;
  EventLoop::EventId timer = EventLoop::kInvalidEventId;

  // Collected results.
  Endpoint e11;  // server1 main view
  Endpoint e12;  // server1 alt view
  Endpoint e2;   // server2 view
  bool alt_received = false;
  bool partner_received = false;
  bool done = false;
};

NatProber::NatProber(Host* host, Endpoint server1, Endpoint server2)
    : NatProber(host, server1, server2, Config{}) {}

NatProber::NatProber(Host* host, Endpoint server1, Endpoint server2, Config config)
    : host_(host), server1_(server1), server2_(server2), config_(config) {}

void NatProber::Probe(uint16_t local_port, std::function<void(Result<NatProbeReport>)> cb) {
  auto bound = host_->udp().Bind(local_port);
  if (!bound.ok()) {
    cb(bound.status());
    return;
  }
  auto run = std::make_shared<Run>();
  run->socket = *bound;
  run->cb = std::move(cb);

  run->socket->SetReceiveCallback([this, run](const Endpoint& from, const Payload& payload) {
    (void)from;
    if (run->done) {
      return;
    }
    auto msg = DecodeProbeMessage(payload);
    if (!msg) {
      host_->CountMalformedDrop();
      return;
    }
    if (msg->type != ProbeMsgType::kEchoReply || msg->txn != run->txn) {
      return;  // stale or foreign
    }
    // Record per step and advance.
    switch (run->step) {
      case 0:
        run->e11 = msg->observed;
        break;
      case 1:
        run->alt_received = true;
        break;
      case 2:
        run->partner_received = true;
        break;
      case 3:
        run->e12 = msg->observed;
        break;
      case 4:
        run->e2 = msg->observed;
        break;
      default:
        return;
    }
    if (run->timer != EventLoop::kInvalidEventId) {
      host_->loop().Cancel(run->timer);
      run->timer = EventLoop::kInvalidEventId;
    }
    ++run->step;
    run->attempts = 0;
    if (run->step > 4) {
      FinishRun(run);
    } else {
      StepEcho(run, run->step);
    }
  });
  StepEcho(run, 0);
}

void NatProber::StepEcho(std::shared_ptr<Run> run, int step) {
  if (run->done) {
    return;
  }
  run->txn = host_->rng().NextU64();
  ProbeMessage request;
  request.txn = run->txn;
  Endpoint target = server1_;
  switch (step) {
    case 0:  // mapping sample 1 (opens flow to server1 main)
      request.type = ProbeMsgType::kEchoRequest;
      break;
    case 1:  // filtering: same address, never-contacted port
      request.type = ProbeMsgType::kAltReplyRequest;
      break;
    case 2:  // filtering: never-contacted address (server2, via partner)
      request.type = ProbeMsgType::kPartnerReplyRequest;
      break;
    case 3:  // mapping sample 2 (new flow: server1 alternate port)
      request.type = ProbeMsgType::kEchoRequest;
      target = Endpoint(server1_.ip, static_cast<uint16_t>(server1_.port + 1));
      break;
    case 4:  // mapping sample 3 (new flow: server2)
      request.type = ProbeMsgType::kEchoRequest;
      target = server2_;
      break;
    default:
      return;
  }
  run->socket->SendTo(target, EncodeProbeMessage(request));
  ++run->attempts;

  run->timer = host_->loop().ScheduleAfter(config_.reply_timeout, [this, run, step] {
    run->timer = EventLoop::kInvalidEventId;
    if (run->done || run->step != step) {
      return;
    }
    if (run->attempts < config_.retries_per_step) {
      StepEcho(run, step);
      return;
    }
    const bool optional_step = step == 1 || step == 2;
    if (!optional_step) {
      run->done = true;
      run->socket->Close();
      run->cb(Status(ErrorCode::kTimedOut, "probe server unreachable at step " +
                                               std::to_string(step)));
      return;
    }
    // Optional filtering probes simply record "nothing arrived".
    ++run->step;
    run->attempts = 0;
    StepEcho(run, run->step);
  });
}

void NatProber::FinishRun(std::shared_ptr<Run> run) {
  run->done = true;
  NatProbeReport report;
  report.public_endpoint = run->e11;
  const Endpoint local(host_->primary_address(), run->socket->local_port());
  report.behind_nat = run->e11 != local;

  if (run->e11 == run->e12 && run->e11 == run->e2) {
    report.mapping = NatMapping::kEndpointIndependent;
  } else if (run->e11 == run->e12) {
    report.mapping = NatMapping::kAddressDependent;
  } else {
    report.mapping = NatMapping::kAddressAndPortDependent;
  }
  if (report.mapping != NatMapping::kEndpointIndependent) {
    report.port_delta = static_cast<int>(run->e2.port) - static_cast<int>(run->e12.port);
  }

  if (run->partner_received) {
    report.filtering = NatFiltering::kEndpointIndependent;
  } else if (run->alt_received) {
    report.filtering = NatFiltering::kAddressDependent;
  } else {
    report.filtering = NatFiltering::kAddressAndPortDependent;
  }

  run->socket->Close();
  run->cb(report);
}

}  // namespace natpunch
