#include "src/core/prediction.h"

#include "src/core/probe_server.h"
#include "src/util/logging.h"

namespace natpunch {

PredictivePuncher::PredictivePuncher(UdpHolePuncher* puncher, Endpoint stun1, Endpoint stun2,
                                     PredictiveConfig config)
    : puncher_(puncher),
      rendezvous_(puncher->rendezvous()),
      stun1_(stun1),
      stun2_(stun2),
      config_(config) {
  puncher_->SetRawTrafficHandler(
      [this](const Endpoint& from, const Payload& payload) { OnRaw(from, payload); });
  rendezvous_->SetConnectForwardHandler(
      ConnectStrategy::kPredicted, [this](const RendezvousMessage& fwd) { OnForward(fwd); });
}

Bytes PredictivePuncher::EncodePredicted(const Endpoint& predicted) {
  ByteWriter w;
  w.WriteU32(predicted.ip.Complement().bits());  // obfuscated (§3.1)
  w.WriteU16(predicted.port);
  return w.Take();
}

std::optional<Endpoint> PredictivePuncher::DecodePredicted(ConstByteSpan payload) {
  ByteReader r(payload);
  Endpoint ep;
  ep.ip = Ipv4Address(r.ReadU32()).Complement();
  ep.port = r.ReadU16();
  if (!r.ok()) {
    return std::nullopt;
  }
  return ep;
}

void PredictivePuncher::ConnectToPeer(uint64_t peer_id, UdpHolePuncher::SessionCallback cb) {
  const uint64_t nonce = rendezvous_->host()->rng().NextU64();
  SamplePrediction([this, peer_id, nonce, cb = std::move(cb)](Result<Endpoint> mine) mutable {
    if (!mine.ok()) {
      cb(mine.status());
      return;
    }
    pending_[nonce] = std::move(cb);
    rendezvous_->RequestConnect(
        peer_id, ConnectStrategy::kPredicted, nonce,
        [this, nonce](Result<RendezvousMessage> ack) {
          if (!ack.ok()) {
            auto it = pending_.find(nonce);
            if (it != pending_.end()) {
              auto callback = std::move(it->second);
              pending_.erase(it);
              callback(ack.status());
            }
          }
          // Success: wait for the peer's kPredicted forward carrying its
          // own prediction; the punch starts there.
        },
        EncodePredicted(*mine));
  });
}

void PredictivePuncher::OnForward(const RendezvousMessage& fwd) {
  auto predicted = DecodePredicted(fwd.payload);
  if (!predicted) {
    return;
  }
  auto it = pending_.find(fwd.nonce);
  if (it != pending_.end()) {
    // We initiated: this forward is the peer's answer. Punch.
    auto cb = std::move(it->second);
    pending_.erase(it);
    puncher_->PunchAtEndpoints(fwd.client_id, fwd.nonce, *predicted, fwd.private_ep,
                               std::move(cb));
    return;
  }
  // Responder role: sample our own prediction, answer, and punch.
  const uint64_t nonce = fwd.nonce;
  const uint64_t peer_id = fwd.client_id;
  const Endpoint peer_predicted = *predicted;
  const Endpoint peer_private = fwd.private_ep;
  SamplePrediction([this, nonce, peer_id, peer_predicted, peer_private](Result<Endpoint> mine) {
    if (!mine.ok()) {
      return;
    }
    rendezvous_->RequestConnect(
        peer_id, ConnectStrategy::kPredicted, nonce, [](Result<RendezvousMessage>) {},
        EncodePredicted(*mine));
    puncher_->PunchAtEndpoints(peer_id, nonce, peer_predicted, peer_private, nullptr);
  });
}

void PredictivePuncher::SamplePrediction(std::function<void(Result<Endpoint>)> cb) {
  if (active_sample_) {
    cb(Status(ErrorCode::kInProgress, "sample already running"));
    return;
  }
  active_sample_ = std::make_shared<Sample>();
  active_sample_->cb = std::move(cb);
  SendSample(active_sample_);
}

void PredictivePuncher::SendSample(std::shared_ptr<Sample> sample) {
  sample->txn = rendezvous_->host()->rng().NextU64();
  ProbeMessage request;
  request.type = ProbeMsgType::kEchoRequest;
  request.txn = sample->txn;
  const Endpoint target = sample->stage == 0 ? stun1_ : stun2_;
  rendezvous_->socket()->SendTo(target, EncodeProbeMessage(request));
  ++sample->attempts;
  sample->timer = rendezvous_->host()->loop().ScheduleAfter(config_.sample_timeout, [this,
                                                                                     sample] {
    sample->timer = EventLoop::kInvalidEventId;
    if (sample != active_sample_) {
      return;
    }
    if (sample->attempts < config_.sample_retries) {
      SendSample(sample);
      return;
    }
    active_sample_ = nullptr;
    sample->cb(Status(ErrorCode::kTimedOut, "prediction sampling failed"));
  });
}

void PredictivePuncher::OnRaw(const Endpoint& from, const Payload& payload) {
  (void)from;
  if (!active_sample_) {
    return;
  }
  auto msg = DecodeProbeMessage(payload);
  if (!msg) {
    rendezvous_->host()->CountMalformedDrop();
    return;
  }
  if (msg->type != ProbeMsgType::kEchoReply || msg->txn != active_sample_->txn) {
    return;
  }
  auto sample = active_sample_;
  if (sample->timer != EventLoop::kInvalidEventId) {
    rendezvous_->host()->loop().Cancel(sample->timer);
    sample->timer = EventLoop::kInvalidEventId;
  }
  if (sample->stage == 0) {
    sample->e1 = msg->observed;
    sample->stage = 1;
    sample->attempts = 0;
    SendSample(sample);
    return;
  }
  // Two samples in hand: extrapolate the next allocation.
  const Endpoint e2 = msg->observed;
  const int delta = static_cast<int>(e2.port) - static_cast<int>(sample->e1.port);
  Endpoint predicted(e2.ip, static_cast<uint16_t>(static_cast<int>(e2.port) + delta));
  active_sample_ = nullptr;
  NP_LOG(Info) << rendezvous_->host()->name() << " predicted next mapping "
               << predicted.ToString() << " (delta " << delta << ")";
  sample->cb(predicted);
}

}  // namespace natpunch
