// Peer-to-peer application messages exchanged directly between clients
// (everything that is NOT rendezvous traffic).
//
// Every message carries the session nonce pre-arranged through S, which is
// the authentication the paper mandates (§3.4): punch probes routinely reach
// the wrong host (a stray machine with the peer's private address), and the
// nonce is how such strays are filtered out.

#ifndef SRC_CORE_PEER_WIRE_H_
#define SRC_CORE_PEER_WIRE_H_

#include <cstdint>
#include <optional>

#include "src/netsim/payload.h"
#include "src/util/bytes.h"

namespace natpunch {

enum class PeerMsgType : uint8_t {
  kProbe = 1,      // UDP hole punch probe (§3.2 step 3)
  kProbeReply = 2, // response that lets the sender lock in an endpoint
  kData = 3,       // application payload on an established session
  kKeepAlive = 4,  // §3.6 session keep-alive
  kAuth = 5,       // TCP stream authentication (§4.2 step 5)
  kAuthOk = 6,     // authentication confirmation
};

struct PeerMessage {
  PeerMsgType type = PeerMsgType::kProbe;
  uint64_t nonce = 0;
  uint64_t sender_id = 0;
  Bytes payload;
};

// Canonical wire encoding, built in an SBO Payload: probes, keepalives, and
// small data frames (payload <= 44 bytes) stay inline, so the steady-state
// keepalive tick allocates nothing. This is the primary encoder; the Bytes
// variant below copies out of it.
Payload EncodePeerMessagePayload(const PeerMessage& msg);
Bytes EncodePeerMessage(const PeerMessage& msg);
std::optional<PeerMessage> DecodePeerMessage(ConstByteSpan data);

}  // namespace natpunch

#endif  // SRC_CORE_PEER_WIRE_H_
