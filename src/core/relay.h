// Relaying (§2.2): the always-works fallback that pays for its reliability
// with server bandwidth and added latency.
//
// RelayHub demultiplexes kRelayForward traffic from a rendezvous client into
// per-peer RelayChannels. It works over either transport (the server relays
// on whichever session the client registered). The Fig. 2 benchmark
// measures exactly the costs this class makes visible: bytes through S and
// round-trip latency versus a punched direct path.

#ifndef SRC_CORE_RELAY_H_
#define SRC_CORE_RELAY_H_

#include <map>
#include <memory>

#include "src/rendezvous/client.h"

namespace natpunch {

class RelayHub;

class RelayChannel {
 public:
  using ReceiveCallback = std::function<void(const Bytes& payload)>;

  Status Send(Bytes payload);
  void SetReceiveCallback(ReceiveCallback cb) { receive_cb_ = std::move(cb); }

  uint64_t peer_id() const { return peer_id_; }
  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_received() const { return messages_received_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }

 private:
  friend class RelayHub;

  RelayChannel(RelayHub* hub, uint64_t peer_id) : hub_(hub), peer_id_(peer_id) {}

  RelayHub* hub_;
  uint64_t peer_id_;
  uint64_t messages_sent_ = 0;
  uint64_t messages_received_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
  ReceiveCallback receive_cb_;
};

class RelayHub {
 public:
  explicit RelayHub(UdpRendezvousClient* client);
  explicit RelayHub(TcpRendezvousClient* client);

  // Open (or fetch) the channel to a peer. Channels are created on demand
  // for unsolicited inbound relay traffic as well.
  RelayChannel* OpenChannel(uint64_t peer_id);

  // Observe channels created by inbound traffic from new peers.
  void SetIncomingChannelCallback(std::function<void(RelayChannel*)> cb) {
    incoming_cb_ = std::move(cb);
  }

 private:
  friend class RelayChannel;

  void OnRelayMessage(uint64_t from_id, const Bytes& payload);

  std::function<void(uint64_t, Bytes)> send_;
  std::map<uint64_t, std::unique_ptr<RelayChannel>> channels_;
  std::function<void(RelayChannel*)> incoming_cb_;
};

}  // namespace natpunch

#endif  // SRC_CORE_RELAY_H_
