// TcpP2pStream: an authenticated peer-to-peer TCP stream produced by hole
// punching, reversal, or the sequential procedure.
//
// All stream content is length-framed PeerMessages: the kAuth/kAuthOk
// handshake (§4.2 step 5) followed by kData payloads. The stream records
// *how* it was obtained — via connect() or accept(), public or private
// endpoint — because Fig. 7's analysis is exactly about which socket ends up
// carrying the session under each OS behavior.

#ifndef SRC_CORE_TCP_STREAM_H_
#define SRC_CORE_TCP_STREAM_H_

#include <functional>

#include "src/core/peer_wire.h"
#include "src/rendezvous/messages.h"
#include "src/transport/tcp.h"

namespace natpunch {

class TcpP2pStream {
 public:
  using ReceiveCallback = std::function<void(const Bytes& payload)>;
  using ClosedCallback = std::function<void(Status)>;

  // Takes over an authenticated socket. `framer` carries any bytes that
  // arrived after the auth exchange in the same segments.
  TcpP2pStream(TcpSocket* socket, uint64_t peer_id, uint64_t nonce, MessageFramer framer,
               bool used_private_endpoint, SimDuration punch_elapsed);

  TcpP2pStream(const TcpP2pStream&) = delete;
  TcpP2pStream& operator=(const TcpP2pStream&) = delete;

  Status Send(Bytes payload);
  void SetReceiveCallback(ReceiveCallback cb) { receive_cb_ = std::move(cb); }
  void SetClosedCallback(ClosedCallback cb) { closed_cb_ = std::move(cb); }
  void Close();

  bool alive() const { return alive_; }
  uint64_t peer_id() const { return peer_id_; }
  uint64_t nonce() const { return nonce_; }
  TcpSocket* socket() const { return socket_; }
  // Fig. 7 statistics: how the winning stream was obtained.
  bool via_accept() const { return socket_->via_accept(); }
  bool used_private_endpoint() const { return used_private_; }
  SimDuration punch_elapsed() const { return punch_elapsed_; }
  Endpoint remote_endpoint() const { return socket_->remote_endpoint(); }
  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_received() const { return messages_received_; }

 private:
  void OnData(const Bytes& data);

  TcpSocket* socket_;
  uint64_t peer_id_;
  uint64_t nonce_;
  MessageFramer framer_;
  bool used_private_;
  SimDuration punch_elapsed_;
  bool alive_ = true;
  uint64_t messages_sent_ = 0;
  uint64_t messages_received_ = 0;
  ReceiveCallback receive_cb_;
  ClosedCallback closed_cb_;
};

}  // namespace natpunch

#endif  // SRC_CORE_TCP_STREAM_H_
