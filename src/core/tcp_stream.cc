#include "src/core/tcp_stream.h"

#include "src/transport/host.h"

namespace natpunch {

TcpP2pStream::TcpP2pStream(TcpSocket* socket, uint64_t peer_id, uint64_t nonce,
                           MessageFramer framer, bool used_private_endpoint,
                           SimDuration punch_elapsed)
    : socket_(socket),
      peer_id_(peer_id),
      nonce_(nonce),
      framer_(std::move(framer)),
      used_private_(used_private_endpoint),
      punch_elapsed_(punch_elapsed) {
  // Application payloads flow here; the control-plane 8 KiB cap would poison
  // the stream on the first bulk chunk.
  framer_.set_max_frame(MessageFramer::kMaxDataFrame);
  socket_->SetDataCallback([this](const Bytes& data) { OnData(data); });
  socket_->SetClosedCallback([this](Status status) {
    alive_ = false;
    if (closed_cb_) {
      closed_cb_(std::move(status));
    }
  });
  // Drain anything that was already buffered behind the auth exchange.
  OnData(Bytes{});
}

Status TcpP2pStream::Send(Bytes payload) {
  if (!alive_) {
    return Status(ErrorCode::kClosed, "stream closed");
  }
  PeerMessage msg;
  msg.type = PeerMsgType::kData;
  msg.nonce = nonce_;
  msg.payload = std::move(payload);
  ++messages_sent_;
  return socket_->Send(MessageFramer::Frame(EncodePeerMessage(msg)));
}

void TcpP2pStream::Close() {
  alive_ = false;
  socket_->Close();
}

void TcpP2pStream::OnData(const Bytes& data) {
  for (const Bytes& body : framer_.Append(data)) {
    auto msg = DecodePeerMessage(body);
    if (!msg) {
      socket_->host()->CountMalformedDrop();
      continue;
    }
    if (msg->nonce != nonce_) {
      continue;
    }
    if (msg->type == PeerMsgType::kData) {
      ++messages_received_;
      if (receive_cb_) {
        receive_cb_(msg->payload);
      }
    }
  }
}

}  // namespace natpunch
