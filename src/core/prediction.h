// Port prediction for symmetric NATs (§5.1).
//
// A symmetric NAT allocates a fresh public port per destination, so the
// endpoint S observed is useless for punching. But "many symmetric NATs
// allocate port numbers for successive sessions in a fairly predictable
// way": sample two successive mappings via STUN-like echoes, extrapolate
// the next port, exchange predictions through S, and punch at the predicted
// endpoints. The paper is explicit that this is "chasing a moving target";
// the prediction ablation benchmark quantifies how cross-traffic and random
// allocation break it.

#ifndef SRC_CORE_PREDICTION_H_
#define SRC_CORE_PREDICTION_H_

#include "src/core/udp_puncher.h"

namespace natpunch {

struct PredictiveConfig {
  SimDuration sample_timeout = Millis(800);
  int sample_retries = 3;
};

class PredictivePuncher {
 public:
  // Shares the rendezvous client's socket (and therefore its NAT mapping
  // chain — prediction must sample the same chain it punches on). Claims
  // the puncher's raw-traffic hook and the kPredicted forward handler.
  PredictivePuncher(UdpHolePuncher* puncher, Endpoint stun1, Endpoint stun2,
                    PredictiveConfig config = PredictiveConfig{});

  void ConnectToPeer(uint64_t peer_id, UdpHolePuncher::SessionCallback cb);

 private:
  struct Sample {
    uint64_t txn = 0;
    int stage = 0;  // 0: waiting on stun1, 1: waiting on stun2
    int attempts = 0;
    Endpoint e1;
    std::function<void(Result<Endpoint>)> cb;
    EventLoop::EventId timer = EventLoop::kInvalidEventId;
  };

  // Measure two successive mappings and extrapolate the next public
  // endpoint this socket's NAT will hand out.
  void SamplePrediction(std::function<void(Result<Endpoint>)> cb);
  void SendSample(std::shared_ptr<Sample> sample);
  void OnRaw(const Endpoint& from, const Payload& payload);
  void OnForward(const RendezvousMessage& fwd);

  static Bytes EncodePredicted(const Endpoint& predicted);
  static std::optional<Endpoint> DecodePredicted(ConstByteSpan payload);

  UdpHolePuncher* puncher_;
  UdpRendezvousClient* rendezvous_;
  Endpoint stun1_;
  Endpoint stun2_;
  PredictiveConfig config_;
  std::shared_ptr<Sample> active_sample_;
  std::map<uint64_t, UdpHolePuncher::SessionCallback> pending_;  // by nonce
};

}  // namespace natpunch

#endif  // SRC_CORE_PREDICTION_H_
