#include "src/core/resilient_session.h"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.h"
#include "src/util/flat_hash.h"
#include "src/util/logging.h"

namespace natpunch {
namespace {

// The kRelayOnly connect-request payload: the initiator's relayed endpoint.
Bytes EncodeRelayEndpoint(const Endpoint& ep) {
  ByteWriter w;
  w.WriteU32(ep.ip.bits());
  w.WriteU16(ep.port);
  return w.Take();
}

std::optional<Endpoint> DecodeRelayEndpoint(const Bytes& data) {
  ByteReader r(data);
  const Ipv4Address ip(r.ReadU32());
  const uint16_t port = r.ReadU16();
  if (!r.ok()) {
    return std::nullopt;
  }
  return Endpoint(ip, port);
}

// Relay keepalives with an empty payload are RTT probes and get echoed;
// echoes carry this one-byte marker so they are never echoed back (which
// would otherwise ping-pong forever at network RTT).
constexpr uint8_t kKeepAliveReplyMarker = 1;

}  // namespace

// ---------------------------------------------------------------------------
// ResilientSession
// ---------------------------------------------------------------------------

Status ResilientSession::Send(Bytes payload) {
  switch (path_) {
    case Path::kDirect:
      if (inner_ != nullptr && inner_->alive()) {
        return inner_->Send(std::move(payload));
      }
      [[fallthrough]];  // death noticed between watchdog ticks: buffer
    case Path::kConnecting:
      if (pending_sends_.size() >= manager_->config().max_pending_sends) {
        manager_->CountDroppedSend(this);
        return Status(ErrorCode::kWouldBlock, "recovery send buffer full");
      }
      pending_sends_.push_back(std::move(payload));
      return Status::Ok();
    case Path::kRelay:
      if (!relay_confirmed_) {
        if (pending_sends_.size() >= manager_->config().max_pending_sends) {
          manager_->CountDroppedSend(this);
          return Status(ErrorCode::kWouldBlock, "recovery send buffer full");
        }
        pending_sends_.push_back(std::move(payload));
        return Status::Ok();
      }
      return manager_->RelaySend(this, std::move(payload));
    case Path::kFailed:
      return Status(ErrorCode::kClosed, "session failed");
  }
  return Status(ErrorCode::kProtocolError, "unreachable");
}

SimDuration ResilientSession::total_downtime() const {
  SimDuration total{};
  for (const RecoveryRecord& rec : recoveries_) {
    total = total + rec.downtime;
  }
  return total;
}

int ResilientSession::total_repunch_attempts() const {
  int total = 0;
  for (const RecoveryRecord& rec : recoveries_) {
    total += rec.repunch_attempts;
  }
  return total;
}

void ResilientSession::SetPath(Path path) {
  if (path_ == path) {
    return;
  }
  path_ = path;
  if (path_cb_) {
    path_cb_(path);
  }
}

void ResilientSession::RepunchFire() { manager_->AttemptRepunch(this); }

void ResilientSession::RelayKeepAliveFire() {
  // One handle serves both roles: only the initiator owns a TURN client, so
  // turn_ tells us whose cadence this is.
  if (turn_ != nullptr) {
    manager_->InitiatorRelayKeepAlive(this);
  } else {
    manager_->ResponderRelayKeepAlive(this);
  }
}

void ResilientSession::RelayWatchdogFire() { manager_->RelayWatchdogTick(this); }

// ---------------------------------------------------------------------------
// ResilientSessionManager
// ---------------------------------------------------------------------------

ResilientSessionManager::ResilientSessionManager(UdpHolePuncher* puncher,
                                                 ResilientSessionConfig config)
    : puncher_(puncher),
      config_(config),
      loop_(puncher->rendezvous()->host()->loop()) {
  puncher_->SetIncomingSessionCallback(
      [this](UdpP2pSession* inner) { OnIncomingSession(inner); });
  puncher_->SetUnclaimedMessageHandler(
      [this](const Endpoint& from, const PeerMessage& msg) { OnUnclaimed(from, msg); });
  puncher_->rendezvous()->SetConnectForwardHandler(
      ConnectStrategy::kRelayOnly,
      [this](const RendezvousMessage& fwd) { OnRelayForward(fwd); });
  if (obs::MetricsRegistry* reg = puncher_->rendezvous()->host()->network()->metrics()) {
    metric_recoveries_ = reg->GetCounter("resilient.recoveries");
    metric_relay_fallbacks_ = reg->GetCounter("resilient.relay_fallbacks");
    metric_relay_losses_ = reg->GetCounter("resilient.relay_losses");
    metric_sends_dropped_ = reg->GetCounter("resilient.sends_dropped");
    metric_downtime_ms_ =
        reg->GetHistogram("resilient.recovery_downtime_ms", obs::LatencyBucketsMs());
    session_pool_.AttachMetrics(
        reg, "resilient_sessions." + puncher_->rendezvous()->host()->name());
  }
}

ResilientSessionManager::~ResilientSessionManager() {
  sessions_.ForEach(
      [this](uint64_t /*peer*/, ResilientSession* rs) { session_pool_.Delete(rs); });
}

void ResilientSessionManager::CountDroppedSend(ResilientSession* rs) {
  ++rs->sends_dropped_;
  obs::Inc(metric_sends_dropped_);
}

ResilientSession* ResilientSessionManager::FindSession(uint64_t peer_id) {
  ResilientSession** found = sessions_.Find(peer_id);
  return found == nullptr ? nullptr : *found;
}

ResilientSession* ResilientSessionManager::FindOrCreate(uint64_t peer_id, bool initiator,
                                                        bool* created) {
  if (ResilientSession** found = sessions_.Find(peer_id)) {
    *created = false;
    return *found;
  }
  ResilientSession* raw = session_pool_.New(this, peer_id, initiator);
  raw->repunch_timer_.Bind<&ResilientSession::RepunchFire>(raw);
  raw->relay_keepalive_timer_.Bind<&ResilientSession::RelayKeepAliveFire>(raw);
  raw->relay_watchdog_timer_.Bind<&ResilientSession::RelayWatchdogFire>(raw);
  if (config_.relay_keepalive_jitter.micros() > 0) {
    const int64_t jitter = config_.relay_keepalive_jitter.micros();
    raw->relay_keepalive_offset_ = Micros(
        static_cast<int64_t>(HashMix64(peer_id) % static_cast<uint64_t>(2 * jitter + 1)) -
        jitter);
  }
  sessions_.InsertOrAssign(peer_id, raw);
  *created = true;
  return raw;
}

void ResilientSessionManager::ConnectToPeer(uint64_t peer_id, SessionCallback cb) {
  bool created = false;
  ResilientSession* rs = FindOrCreate(peer_id, /*initiator=*/true, &created);
  rs->connect_cb_ = std::move(cb);
  puncher_->ConnectToPeer(peer_id, [this, rs](Result<UdpP2pSession*> result) {
    if (result.ok()) {
      AdoptInner(rs, *result);
      if (rs->connect_cb_) {
        auto callback = std::move(rs->connect_cb_);
        rs->connect_cb_ = nullptr;
        callback(rs);
      }
      return;
    }
    if (relay_available()) {
      NP_LOG(Info) << "punch to peer " << rs->peer_id_
                   << " failed; falling back to relay: " << result.status().ToString();
      EnterRelay(rs);
      return;
    }
    FailSession(rs, result.status());
  });
}

void ResilientSessionManager::AdoptInner(ResilientSession* rs, UdpP2pSession* inner) {
  if (rs->inner_ != nullptr && rs->inner_ != inner && rs->inner_->alive()) {
    rs->inner_->Close();  // superseded by the fresher punch
  }
  rs->inner_ = inner;
  inner->SetReceiveCallback([rs](const Bytes& payload) {
    if (rs->receive_cb_) {
      rs->receive_cb_(payload);
    }
  });
  inner->SetDeadCallback([this, rs](Status status) { OnInnerDead(rs, status); });
  // A direct path supersedes any relay state from a previous recovery.
  rs->relay_keepalive_timer_.Cancel();
  rs->relay_watchdog_timer_.Cancel();
  rs->turn_.reset();
  rs->relay_confirmed_ = false;
  rs->relay_nonce_ = 0;
  rs->SetPath(ResilientSession::Path::kDirect);
  FlushPending(rs);
}

void ResilientSessionManager::OnIncomingSession(UdpP2pSession* inner) {
  bool created = false;
  ResilientSession* rs = FindOrCreate(inner->peer_id(), /*initiator=*/false, &created);
  const bool was_recovering = rs->recovering_;
  AdoptInner(rs, inner);
  if (was_recovering) {
    FinishRecovery(rs, /*via_relay=*/false);
  }
  if (created && incoming_cb_) {
    incoming_cb_(rs);
  }
}

void ResilientSessionManager::OnInnerDead(ResilientSession* rs, Status status) {
  if (rs->path_ != ResilientSession::Path::kDirect || rs->recovering_) {
    return;  // stale watchdog for a path we already left
  }
  NP_LOG(Info) << puncher_->rendezvous()->host()->name() << " session to peer "
               << rs->peer_id_ << " died (" << status.ToString() << "); "
               << (rs->initiator_ ? "re-punching" : "awaiting initiator recovery");
  rs->recovering_ = true;
  rs->died_at_ = loop_.now();
  rs->repunch_attempts_ = 0;
  rs->SetPath(ResilientSession::Path::kConnecting);
  if (rs->initiator_) {
    ScheduleRepunch(rs);
  }
  // The passive side cannot usefully re-punch (both sides doing so would
  // race introductions); it waits for the initiator's recovery to arrive as
  // an incoming punch or a relay signal.
}

SimDuration ResilientSessionManager::NextBackoff(const ResilientSession* rs) {
  const double factor = std::pow(config_.backoff_factor, rs->repunch_attempts_);
  double micros = static_cast<double>(config_.backoff_initial.micros()) * factor;
  micros = std::min(micros, static_cast<double>(config_.backoff_max.micros()));
  if (config_.jitter > 0.0) {
    Rng& rng = puncher_->rendezvous()->host()->rng();
    const double scale = 1.0 + config_.jitter * (2.0 * rng.NextDouble() - 1.0);
    micros *= scale;
  }
  return SimDuration(std::max<int64_t>(1, static_cast<int64_t>(micros)));
}

void ResilientSessionManager::ScheduleRepunch(ResilientSession* rs) {
  loop_.ScheduleTimerAfter(NextBackoff(rs), &rs->repunch_timer_);
}

void ResilientSessionManager::AttemptRepunch(ResilientSession* rs) {
  if (!rs->recovering_) {
    return;
  }
  ++rs->repunch_attempts_;
  puncher_->ConnectToPeer(rs->peer_id_, [this, rs](Result<UdpP2pSession*> result) {
    if (!rs->recovering_) {
      if (result.ok()) {
        (*result)->Close();  // recovered some other way while this punched
      }
      return;
    }
    if (result.ok()) {
      AdoptInner(rs, *result);
      FinishRecovery(rs, /*via_relay=*/false);
      return;
    }
    if (result.status().code() == ErrorCode::kNotConnected &&
        puncher_->rendezvous()->rehoming()) {
      // The rendezvous client is mid-failover to a replica shard, so the
      // connect request failed on the host without ever reaching the tier.
      // That is not a punch failure: refund the attempt and retry after the
      // backoff, which outlives the bounded re-homing window.
      --rs->repunch_attempts_;
      ScheduleRepunch(rs);
      return;
    }
    if (rs->repunch_attempts_ >= config_.max_repunch_attempts) {
      if (relay_available()) {
        NP_LOG(Info) << "re-punch to peer " << rs->peer_id_ << " abandoned after "
                     << rs->repunch_attempts_ << " attempts; falling back to relay";
        EnterRelay(rs);
      } else {
        FailSession(rs, result.status());
      }
      return;
    }
    ScheduleRepunch(rs);
  });
}

void ResilientSessionManager::FinishRecovery(ResilientSession* rs, bool via_relay) {
  if (!rs->recovering_) {
    return;
  }
  rs->recovering_ = false;
  rs->repunch_timer_.Cancel();
  ResilientSession::RecoveryRecord rec;
  rec.died_at = rs->died_at_;
  rec.downtime = loop_.now() - rs->died_at_;
  rec.repunch_attempts = rs->repunch_attempts_;
  rec.via_relay = via_relay;
  rs->recoveries_.push_back(rec);
  obs::Inc(metric_recoveries_);
  obs::Observe(metric_downtime_ms_, rec.downtime.millis());
  NP_LOG(Info) << puncher_->rendezvous()->host()->name() << " recovered session to peer "
               << rs->peer_id_ << " via " << (via_relay ? "relay" : "re-punch") << " after "
               << rec.downtime.ToString() << " (" << rec.repunch_attempts << " re-punches)";
}

void ResilientSessionManager::FailSession(ResilientSession* rs, const Status& status) {
  rs->recovering_ = false;
  rs->repunch_timer_.Cancel();
  rs->relay_keepalive_timer_.Cancel();
  rs->relay_watchdog_timer_.Cancel();
  rs->pending_sends_ = {};  // drop the buffer AND its capacity: dead sessions hold no bytes
  rs->SetPath(ResilientSession::Path::kFailed);
  if (rs->connect_cb_) {
    auto callback = std::move(rs->connect_cb_);
    rs->connect_cb_ = nullptr;
    callback(status);
  }
  if (rs->dead_cb_) {
    rs->dead_cb_(status);
  }
}

void ResilientSessionManager::FlushPending(ResilientSession* rs) {
  std::vector<Bytes> pending = std::move(rs->pending_sends_);
  rs->pending_sends_.clear();
  for (Bytes& payload : pending) {
    rs->Send(std::move(payload));
  }
}

// --------------------------------------------------------------------------
// Relay fallback
// --------------------------------------------------------------------------

void ResilientSessionManager::EnterRelay(ResilientSession* rs) {
  obs::Inc(metric_relay_fallbacks_);
  Host* host = puncher_->rendezvous()->host();
  rs->relay_nonce_ = host->rng().NextU64();
  rs->relay_confirmed_ = false;
  rs->turn_ = std::make_unique<TurnClient>(host, config_.turn_server);
  const uint64_t peer_id = rs->peer_id_;
  rs->turn_->SetReceiveCallback([this, peer_id](const Endpoint& from, const Bytes& payload) {
    OnTurnData(peer_id, from, payload);
  });
  rs->turn_->Allocate(0, [this, rs](Result<Endpoint> relayed) {
    if (!relayed.ok()) {
      FailSession(rs, relayed.status());
      return;
    }
    // Tell the peer where to find us, through S. The ack doubles as the
    // source of the peer's current public address for the TURN permission.
    puncher_->rendezvous()->RequestConnect(
        rs->peer_id_, ConnectStrategy::kRelayOnly, rs->relay_nonce_,
        [this, rs](Result<RendezvousMessage> ack) {
          if (!ack.ok()) {
            FailSession(rs, ack.status());
            return;
          }
          rs->turn_->Permit(ack->public_ep.ip);
          RelayEstablished(rs);
        },
        EncodeRelayEndpoint(*relayed));
  });
}

void ResilientSessionManager::RelayEstablished(ResilientSession* rs) {
  rs->SetPath(ResilientSession::Path::kRelay);
  // Arm the watchdog immediately: it also covers a responder that never
  // knocks (a relay that silently ate the introduction looks identical to
  // one that died after it).
  ArmRelayWatchdog(rs);
  if (rs->recovering_) {
    FinishRecovery(rs, /*via_relay=*/true);
  }
  if (rs->connect_cb_) {
    auto callback = std::move(rs->connect_cb_);
    rs->connect_cb_ = nullptr;
    callback(rs);
  }
}

void ResilientSessionManager::OnRelayForward(const RendezvousMessage& msg) {
  auto relayed = DecodeRelayEndpoint(msg.payload);
  if (!relayed) {
    return;
  }
  bool created = false;
  ResilientSession* rs = FindOrCreate(msg.client_id, /*initiator=*/false, &created);
  if (!created && rs->relay_nonce_ == msg.nonce && rs->relay_target_ == *relayed) {
    return;  // duplicate forward (S re-sent the introduction)
  }
  if (rs->inner_ != nullptr && rs->inner_->alive()) {
    rs->inner_->Close();  // initiator gave up on the direct path; follow it
  }
  rs->relay_nonce_ = msg.nonce;
  rs->relay_target_ = *relayed;
  rs->relay_confirmed_ = false;
  rs->SetPath(ResilientSession::Path::kRelay);
  ArmRelayWatchdog(rs);
  if (rs->recovering_) {
    FinishRecovery(rs, /*via_relay=*/true);
  }
  // Knock until the initiator answers: the first exchange may race the
  // initiator's kPermit to the relay, so repeat at probe cadence until an
  // inbound datagram from the relayed endpoint confirms the path.
  ResponderRelayKeepAlive(rs);
  if (created && incoming_cb_) {
    incoming_cb_(rs);
  }
}

void ResilientSessionManager::ResponderRelayKeepAlive(ResilientSession* rs) {
  if (rs->path_ != ResilientSession::Path::kRelay || rs->turn_ != nullptr) {
    return;
  }
  MarkKeepAliveProbe(rs);
  puncher_->SendPeerMessage(rs->relay_target_, PeerMsgType::kKeepAlive, rs->relay_nonce_,
                            Bytes{});
  const SimDuration interval =
      rs->relay_confirmed_
          ? Micros(std::max<int64_t>(1, puncher_->config().keepalive_interval.micros() +
                                            rs->relay_keepalive_offset_.micros()))
          : puncher_->config().probe_interval;
  loop_.ScheduleTimerAfter(interval, &rs->relay_keepalive_timer_);
}

void ResilientSessionManager::InitiatorRelayKeepAlive(ResilientSession* rs) {
  if (rs->path_ != ResilientSession::Path::kRelay || rs->turn_ == nullptr ||
      !rs->relay_confirmed_) {
    return;
  }
  PeerMessage msg;
  msg.type = PeerMsgType::kKeepAlive;
  msg.nonce = rs->relay_nonce_;
  msg.sender_id = puncher_->rendezvous()->client_id();
  MarkKeepAliveProbe(rs);
  rs->turn_->SendTo(rs->relay_target_, EncodePeerMessage(msg));
  loop_.ScheduleTimerAfter(
      Micros(std::max<int64_t>(1, config_.relay_keepalive_interval.micros() +
                                      rs->relay_keepalive_offset_.micros())),
      &rs->relay_keepalive_timer_);
}

void ResilientSessionManager::ArmRelayWatchdog(ResilientSession* rs) {
  rs->last_relay_rx_ = loop_.now();
  ScheduleRelayWatchdog(rs, EffectiveRelayTimeout(rs));
}

void ResilientSessionManager::ScheduleRelayWatchdog(ResilientSession* rs, SimDuration delay) {
  // Re-arming an already-pending handle implicitly cancels the old deadline.
  loop_.ScheduleTimerAfter(delay, &rs->relay_watchdog_timer_);
}

void ResilientSessionManager::RelayWatchdogTick(ResilientSession* rs) {
  if (rs->path_ != ResilientSession::Path::kRelay) {
    return;  // stale timer for a path we already left
  }
  // Recompute per wakeup: fresh RTT samples may have tightened the window
  // while the timer slept.
  const SimDuration window = EffectiveRelayTimeout(rs);
  const SimDuration silence = loop_.now() - rs->last_relay_rx_;
  if (silence.micros() >= window.micros()) {
    OnRelayDead(rs);
    return;
  }
  // Traffic arrived since the timer was armed; sleep out the remainder of
  // the current silence window instead of polling.
  ScheduleRelayWatchdog(rs, window - silence);
}

SimDuration ResilientSessionManager::EffectiveRelayTimeout(const ResilientSession* rs) const {
  if (!config_.adaptive_relay_timeout || rs->relay_srtt_.micros() == 0) {
    return config_.relay_timeout;
  }
  // Two whole keepalive rounds (tolerates one lost round outright) plus a
  // generous multiple of the observed leg RTT for queueing excursions.
  const int64_t adaptive_us =
      2 * config_.relay_keepalive_interval.micros() +
      static_cast<int64_t>(config_.relay_rtt_margin * rs->relay_srtt_.micros());
  // The static relay_timeout stays the hard ceiling even when it sits below
  // the floor (tests dial it down); the floor only guards against a tiny
  // srtt collapsing the window.
  const int64_t floor_us =
      std::min(config_.relay_timeout_floor.micros(), config_.relay_timeout.micros());
  return Micros(std::clamp(adaptive_us, floor_us, config_.relay_timeout.micros()));
}

void ResilientSessionManager::NoteRelayInbound(ResilientSession* rs) {
  rs->last_relay_rx_ = loop_.now();
  if (!rs->rtt_pending_) {
    return;
  }
  // Any inbound relay traffic answers the open probe: the peer echoes
  // keepalives immediately, so probe->first-inbound bounds the leg RTT.
  const SimDuration sample = loop_.now() - rs->last_keepalive_tx_;
  rs->relay_srtt_ = rs->relay_srtt_.micros() == 0
                        ? sample
                        : Micros((7 * rs->relay_srtt_.micros() + sample.micros()) / 8);
  rs->rtt_pending_ = false;
}

void ResilientSessionManager::MarkKeepAliveProbe(ResilientSession* rs) {
  if (rs->rtt_pending_) {
    // An unanswered probe stays open: the eventual sample then spans the
    // lost round, inflating srtt — loosening the timeout under loss, which
    // is the conservative direction.
    return;
  }
  rs->rtt_pending_ = true;
  rs->last_keepalive_tx_ = loop_.now();
}

void ResilientSessionManager::OnRelayDead(ResilientSession* rs) {
  ++rs->relay_losses_;
  obs::Inc(metric_relay_losses_);
  NP_LOG(Info) << puncher_->rendezvous()->host()->name() << " relay leg to peer "
               << rs->peer_id_ << " silent for " << EffectiveRelayTimeout(rs).ToString()
               << "; declaring it dead and "
               << (rs->initiator_ ? "re-entering recovery" : "awaiting initiator recovery");
  rs->relay_keepalive_timer_.Cancel();
  rs->turn_.reset();
  rs->relay_confirmed_ = false;
  rs->relay_nonce_ = 0;
  rs->rtt_pending_ = false;  // the open probe died with the leg
  rs->recovering_ = true;
  rs->died_at_ = loop_.now();
  rs->repunch_attempts_ = 0;
  rs->SetPath(ResilientSession::Path::kConnecting);
  // Same division of labor as OnInnerDead: the initiator climbs the
  // recovery ladder (re-punch with backoff, then a fresh relay allocation —
  // which finds a rebooted relay server); the responder waits for the
  // recovery to arrive as a punch or a new kRelayOnly introduction.
  if (rs->initiator_) {
    ScheduleRepunch(rs);
  }
}

void ResilientSessionManager::OnTurnData(uint64_t peer_id, const Endpoint& from,
                                         const Bytes& payload) {
  ResilientSession* rs = FindSession(peer_id);
  if (rs == nullptr || rs->turn_ == nullptr) {
    return;
  }
  auto msg = DecodePeerMessage(payload);
  if (!msg) {
    puncher_->rendezvous()->host()->CountMalformedDrop();
    return;
  }
  if (msg->nonce != rs->relay_nonce_) {
    return;  // §3.4 again: unauthenticated traffic at the relayed endpoint
  }
  NoteRelayInbound(rs);
  rs->relay_target_ = from;  // the peer's live public endpoint, as observed
  if (!rs->relay_confirmed_) {
    rs->relay_confirmed_ = true;
    // Start answering on a fixed cadence so the responder's watchdog sees a
    // live leg even when the application goes quiet. (The probe echo below
    // answers this first knock immediately, stopping the fast-knocking.)
    loop_.ScheduleTimerAfter(
        Micros(std::max<int64_t>(1, config_.relay_keepalive_interval.micros() +
                                        rs->relay_keepalive_offset_.micros())),
        &rs->relay_keepalive_timer_);
    FlushPending(rs);
  }
  if (msg->type == PeerMsgType::kKeepAlive && msg->payload.empty()) {
    // Echo the probe so the responder can sample the leg RTT; the marker
    // keeps the echo from being echoed back.
    PeerMessage reply;
    reply.type = PeerMsgType::kKeepAlive;
    reply.nonce = rs->relay_nonce_;
    reply.sender_id = puncher_->rendezvous()->client_id();
    reply.payload = Bytes{kKeepAliveReplyMarker};
    rs->turn_->SendTo(from, EncodePeerMessage(reply));
  }
  if (msg->type == PeerMsgType::kData) {
    ++rs->relayed_received_;
    if (rs->receive_cb_) {
      rs->receive_cb_(msg->payload);
    }
  }
}

void ResilientSessionManager::OnUnclaimed(const Endpoint& from, const PeerMessage& msg) {
  // Relay traffic reaching the responder's punch socket: match by nonce.
  // Nonces are unique across sessions, so the scan order cannot matter; the
  // pure scan completes before any handling mutates the table.
  ResilientSession* match = nullptr;
  sessions_.ForEach([&](uint64_t /*peer*/, ResilientSession* rs) {
    if (rs->turn_ == nullptr && rs->relay_nonce_ != 0 && rs->relay_nonce_ == msg.nonce) {
      match = rs;
    }
  });
  if (match == nullptr || match->path_ != ResilientSession::Path::kRelay) {
    return;
  }
  NoteRelayInbound(match);
  if (!match->relay_confirmed_) {
    match->relay_confirmed_ = true;
    FlushPending(match);
  }
  if (msg.type == PeerMsgType::kKeepAlive && msg.payload.empty()) {
    // Echo the initiator's probe (marker payload: see OnTurnData).
    puncher_->SendPeerMessage(match->relay_target_, PeerMsgType::kKeepAlive, match->relay_nonce_,
                              Bytes{kKeepAliveReplyMarker});
  }
  if (msg.type == PeerMsgType::kData) {
    ++match->relayed_received_;
    if (match->receive_cb_) {
      match->receive_cb_(msg.payload);
    }
  }
  (void)from;
}

Status ResilientSessionManager::RelaySend(ResilientSession* rs, Bytes payload) {
  if (rs->turn_ != nullptr) {
    PeerMessage msg;
    msg.type = PeerMsgType::kData;
    msg.nonce = rs->relay_nonce_;
    msg.sender_id = puncher_->rendezvous()->client_id();
    msg.payload = std::move(payload);
    const Status status = rs->turn_->SendTo(rs->relay_target_, EncodePeerMessage(msg));
    if (status.ok()) {
      ++rs->relayed_sent_;
    }
    return status;
  }
  puncher_->SendPeerMessage(rs->relay_target_, PeerMsgType::kData, rs->relay_nonce_,
                            std::move(payload));
  ++rs->relayed_sent_;
  return Status::Ok();
}

}  // namespace natpunch
