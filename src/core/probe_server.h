// STUN-like probe servers and their wire protocol.
//
// A StunLikeServer answers "what endpoint do you see me as?" queries and two
// special requests used to classify NAT filtering behavior: reply from an
// alternate port on the same address, and reply via a partner server the
// client has never contacted. These are the building blocks for NatProber
// (§5.1's STUN-style behavior discovery) and the port-prediction variant;
// the NAT Check reproduction (src/natcheck) uses its own three-server
// choreography per §6.1.

#ifndef SRC_CORE_PROBE_SERVER_H_
#define SRC_CORE_PROBE_SERVER_H_

#include <optional>

#include "src/transport/host.h"

namespace natpunch {

enum class ProbeMsgType : uint8_t {
  kEchoRequest = 1,         // reply from the main socket with observed endpoint
  kEchoReply = 2,
  kAltReplyRequest = 3,     // reply from the alternate-port socket
  kPartnerReplyRequest = 4, // forward to partner; partner replies to client
  kForwardedEcho = 5,       // server -> partner-server internal message
};

// Which socket a kEchoReply came from.
enum class ProbeSourceTag : uint8_t {
  kMain = 0,
  kAlt = 1,
  kPartner = 2,
};

struct ProbeMessage {
  ProbeMsgType type = ProbeMsgType::kEchoRequest;
  uint64_t txn = 0;
  Endpoint observed;  // replies and forwards: client endpoint as seen
  ProbeSourceTag source_tag = ProbeSourceTag::kMain;
};

Bytes EncodeProbeMessage(const ProbeMessage& msg);
std::optional<ProbeMessage> DecodeProbeMessage(ConstByteSpan data);

class StunLikeServer {
 public:
  // Binds `port` (main) and `port + 1` (alternate).
  StunLikeServer(Host* host, uint16_t port);

  // Where kPartnerReplyRequest queries are forwarded; the partner answers
  // the client from its own address.
  void SetPartner(Endpoint partner_main) { partner_ = partner_main; }

  Status Start();

  Endpoint endpoint() const { return Endpoint(host_->primary_address(), port_); }
  Endpoint alt_endpoint() const {
    return Endpoint(host_->primary_address(), static_cast<uint16_t>(port_ + 1));
  }

  uint64_t requests_served() const { return requests_served_; }

 private:
  void OnMain(const Endpoint& from, const Payload& payload);
  void OnAlt(const Endpoint& from, const Payload& payload);

  Host* host_;
  uint16_t port_;
  Endpoint partner_;
  UdpSocket* main_socket_ = nullptr;
  UdpSocket* alt_socket_ = nullptr;
  uint64_t requests_served_ = 0;
};

}  // namespace natpunch

#endif  // SRC_CORE_PROBE_SERVER_H_
