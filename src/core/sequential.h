// Sequential TCP hole punching — the NatTrav-style variant of §4.5.
//
// Instead of punching in parallel, the peers take turns:
//   1. A asks S to introduce it to B (strategy kSequential) and waits,
//      WITHOUT listening on its port.
//   2. B makes a doomed connect() to A's public endpoint, which opens the
//      hole in B's NAT and then fails (RST from A's NAT, or our dwell-timer
//      abort when A's NAT silently drops).
//   3. B stops the attempt, starts listening on its local port, reconnects
//      to S from a fresh ephemeral port, and signals "ready" through S.
//   4. A (whose original S connection is likewise consumed) connects
//      directly to B's public endpoint; B's NAT admits it through the hole.
//
// The procedure's §4.5 weaknesses are modeled and measurable: the dwell
// time in step 2 is a config knob (too short risks the SYN not having
// crossed B's NATs; too long inflates latency), and both peers' rendezvous
// connections are consumed per punch (server_connections_consumed()).
//
// Fidelity note: NatTrav targets sockets APIs without SO_REUSEADDR, closing
// connections so a port is only ever owned by one socket. Our rendezvous
// client itself binds with SO_REUSEADDR, so the sockets here do too; the
// connection-consuming choreography is otherwise identical.

#ifndef SRC_CORE_SEQUENTIAL_H_
#define SRC_CORE_SEQUENTIAL_H_

#include <map>
#include <memory>

#include "src/core/tcp_stream.h"
#include "src/rendezvous/client.h"

namespace natpunch {

struct SequentialPunchConfig {
  // §4.5: "B must allow its doomed-to-fail connect() attempt enough time to
  // ensure that at least one SYN packet traverses all NATs on its side."
  SimDuration syn_dwell = Millis(600);
  SimDuration punch_timeout = Seconds(30);
};

class SequentialPuncher {
 public:
  using StreamCallback = std::function<void(Result<TcpP2pStream*>)>;

  SequentialPuncher(TcpRendezvousClient* rendezvous,
                    SequentialPunchConfig config = SequentialPunchConfig{});

  // Role A. The callback fires with the authenticated stream (or error).
  void ConnectToPeer(uint64_t peer_id, StreamCallback cb);

  // Role B streams land here.
  void SetIncomingStreamCallback(std::function<void(TcpP2pStream*)> cb) {
    incoming_cb_ = std::move(cb);
  }

  // Rendezvous connections burned by completed/failed punches (both roles
  // count their own side). The parallel procedure's count is always zero.
  int server_connections_consumed() const { return connections_consumed_; }

 private:
  struct InitiatorState {
    uint64_t peer_id = 0;
    uint64_t nonce = 0;
    Endpoint peer_public;
    StreamCallback cb;
    EventLoop::EventId deadline_event = EventLoop::kInvalidEventId;
  };

  void RunResponder(const RendezvousMessage& fwd);
  void InitiatorConnect(uint64_t nonce);
  void FinishInitiator(uint64_t nonce, Result<TcpP2pStream*> result);

  // Auth helpers shared by both roles.
  void AuthAsInitiator(TcpSocket* socket, uint64_t peer_id, uint64_t nonce, SimTime started,
                       StreamCallback cb);

  TcpRendezvousClient* rendezvous_;
  SequentialPunchConfig config_;
  EventLoop& loop_;
  std::map<uint64_t, InitiatorState> initiations_;  // by nonce
  std::vector<std::unique_ptr<TcpP2pStream>> streams_;
  std::function<void(TcpP2pStream*)> incoming_cb_;
  int connections_consumed_ = 0;

  // Responder-side pending auth state.
  struct ResponderPending {
    TcpSocket* socket = nullptr;
    MessageFramer framer;
    uint64_t nonce = 0;
    uint64_t peer_id = 0;
    SimTime started;
    bool done = false;
  };
  std::vector<std::unique_ptr<ResponderPending>> responder_pending_;
  void OnResponderData(ResponderPending* pending, const Bytes& data);
};

}  // namespace natpunch

#endif  // SRC_CORE_SEQUENTIAL_H_
