#include "src/core/udp_puncher.h"

#include <algorithm>
#include <limits>

#include "src/obs/metrics.h"
#include "src/util/flat_hash.h"
#include "src/util/logging.h"

namespace natpunch {

// Footprint budget (see DESIGN.md "Memory footprint"): two of these exist
// per counted swarm session. 72 bytes of state + two 56-byte timer handles.
static_assert(sizeof(UdpP2pSession) <= 184,
              "UdpP2pSession grew past its footprint budget; move cold fields "
              "to the puncher side table instead");

UdpHolePuncher::UdpHolePuncher(UdpRendezvousClient* rendezvous, UdpPunchConfig config)
    : rendezvous_(rendezvous), config_(config), loop_(rendezvous->host()->loop()) {
  rendezvous_->SetPeerTrafficHandler(
      [this](const Endpoint& from, const Payload& payload) { OnPeerTraffic(from, payload); });
  rendezvous_->SetConnectForwardHandler(
      ConnectStrategy::kHolePunch, [this](const RendezvousMessage& fwd) {
        // Passive side of §3.2: S forwarded a connection request; punch back.
        StartAttempt(fwd.client_id, fwd.nonce, fwd.public_ep, fwd.private_ep,
                     /*incoming=*/true, nullptr);
      });
  if (rendezvous_->socket() != nullptr) {
    rendezvous_->socket()->SetErrorCallback(
        [this](const Endpoint& dst, ErrorCode code) { OnSocketError(dst, code); });
  }
  if (obs::MetricsRegistry* reg = rendezvous_->host()->network()->metrics()) {
    metric_attempts_ = reg->GetCounter("punch.attempts");
    metric_successes_ = reg->GetCounter("punch.successes");
    metric_failures_ = reg->GetCounter("punch.failures");
    metric_rtt_ms_ = reg->GetHistogram("punch.rtt_ms", obs::LatencyBucketsMs());
    session_pool_.AttachMetrics(reg,
                                "udp_sessions." + rendezvous_->host()->name());
  }
}

UdpHolePuncher::~UdpHolePuncher() {
  // Sessions live in the slab; run their destructors (which cancel the
  // embedded timers) before the pool drops the storage.
  sessions_.ForEach(
      [this](uint64_t /*nonce*/, UdpP2pSession* session) { session_pool_.Delete(session); });
}

size_t UdpHolePuncher::active_sessions() const {
  size_t n = 0;
  sessions_.ForEach(
      [&n](uint64_t /*nonce*/, UdpP2pSession* const& session) { n += session->alive() ? 1 : 0; });
  return n;
}

void UdpHolePuncher::ConnectToPeer(uint64_t peer_id, SessionCallback cb) {
  const uint64_t nonce = rendezvous_->host()->rng().NextU64();
  rendezvous_->RequestConnect(
      peer_id, ConnectStrategy::kHolePunch, nonce,
      [this, peer_id, nonce, cb = std::move(cb)](Result<RendezvousMessage> ack) mutable {
        if (!ack.ok()) {
          cb(ack.status());
          return;
        }
        Attempt* attempt = StartAttempt(peer_id, nonce, ack->public_ep, ack->private_ep,
                                        /*incoming=*/false, std::move(cb));
        if (attempt != nullptr) {
          attempt->renew_introduction = true;
        }
      });
}

UdpHolePuncher::Attempt* UdpHolePuncher::StartAttempt(uint64_t peer_id, uint64_t nonce,
                                                      const Endpoint& peer_public,
                                                      const Endpoint& peer_private, bool incoming,
                                                      SessionCallback cb) {
  if (attempts_.count(nonce) != 0 || sessions_.Contains(nonce)) {
    return nullptr;  // already punching or punched this session
  }
  obs::Inc(metric_attempts_);
  Attempt& attempt = attempts_[nonce];
  attempt.puncher = this;
  attempt.peer_id = peer_id;
  attempt.nonce = nonce;
  attempt.incoming = incoming;
  attempt.peer_public = peer_public;
  attempt.peer_private = peer_private;
  attempt.started = loop_.now();
  attempt.cb = std::move(cb);

  // Candidate endpoints, public first (§3.2 step 3 fires at both; dedupe
  // guards the no-NAT case where they coincide).
  if (!peer_public.IsUnspecified()) {
    attempt.candidates.push_back(peer_public);
  }
  if (config_.try_private_endpoint && !peer_private.IsUnspecified() &&
      peer_private != peer_public) {
    attempt.candidates.push_back(peer_private);
  }
  if (attempt.candidates.empty()) {
    FailAttempt(nonce, Status(ErrorCode::kInvalidArgument, "no candidate endpoints"));
    return nullptr;
  }

  attempt.deadline_timer.Bind<&Attempt::DeadlineTick>(&attempt);
  loop_.ScheduleTimerAfter(config_.punch_timeout, &attempt.deadline_timer);
  SendProbes(&attempt);
  return &attempt;
}

void UdpHolePuncher::SendProbes(Attempt* attempt) {
  for (const Endpoint& candidate : attempt->candidates) {
    SendPeerMessage(candidate, PeerMsgType::kProbe, attempt->nonce, Bytes{});
    ++attempt->probes_sent;
  }
  ++attempt->probe_rounds;
  if (attempt->renew_introduction && attempt->probe_rounds % 5 == 0) {
    // Still nothing back: the kConnectForward to the peer may have been
    // lost, leaving it unaware it should punch. Re-introduce (idempotent on
    // the peer: duplicate forwards for a known nonce are ignored).
    rendezvous_->SendConnectRequest(attempt->peer_id, ConnectStrategy::kHolePunch,
                                    attempt->nonce);
  }
  attempt->probe_timer.Bind<&Attempt::ProbeTick>(attempt);
  loop_.ScheduleTimerAfter(config_.probe_interval, &attempt->probe_timer);
}

void UdpHolePuncher::SendPeerMessage(const Endpoint& to, PeerMsgType type, uint64_t nonce,
                                     Bytes payload) {
  PeerMessage msg;
  msg.type = type;
  msg.nonce = nonce;
  msg.sender_id = rendezvous_->client_id();
  msg.payload = std::move(payload);
  // Encode straight into an SBO Payload: keepalives and probes (empty
  // payload, 20-byte frame) never touch the heap on the send side.
  rendezvous_->socket()->SendTo(to, EncodePeerMessagePayload(msg));
}

void UdpHolePuncher::PunchAtEndpoints(uint64_t peer_id, uint64_t nonce,
                                      const Endpoint& peer_public, const Endpoint& peer_private,
                                      SessionCallback cb) {
  StartAttempt(peer_id, nonce, peer_public, peer_private, /*incoming=*/cb == nullptr,
               std::move(cb));
}

void UdpHolePuncher::OnPeerTraffic(const Endpoint& from, const Payload& payload) {
  auto msg = DecodePeerMessage(payload);
  if (!msg) {
    // Non-peer-wire bytes are legitimate here when a raw handler is
    // installed (STUN-like prediction probes ride the same socket);
    // without one they are garbage on the punch flow.
    if (raw_handler_) {
      raw_handler_(from, payload);
    } else {
      rendezvous_->host()->CountMalformedDrop();
    }
    return;
  }
  // Established session traffic first.
  if (UdpP2pSession** found = sessions_.Find(msg->nonce)) {
    UdpP2pSession* session = *found;
    if (!session->alive()) {
      return;
    }
    SessionInboundSeen(session);
    switch (msg->type) {
      case PeerMsgType::kProbe:
        // Late probe from a peer that has not locked in yet: keep answering
        // so it can (§3.2: order and timing are not critical).
        SendPeerMessage(from, PeerMsgType::kProbeReply, msg->nonce, Bytes{});
        return;
      case PeerMsgType::kData:
        ++session->datagrams_received_;
        DispatchReceive(session, msg->payload);
        return;
      case PeerMsgType::kKeepAlive:
      case PeerMsgType::kProbeReply:
      default:
        return;  // activity already refreshed the expiry timer
    }
  }

  // Otherwise it may belong to an in-flight attempt.
  auto it = attempts_.find(msg->nonce);
  if (it == attempts_.end()) {
    // Unknown nonce: a stray host or an expired session. Authentications
    // fail silently (§3.4) — never answer, or the stray would lock onto us.
    // A registered unclaimed handler may still consume it (relay fallback).
    if (unclaimed_handler_) {
      unclaimed_handler_(from, *msg);
    }
    return;
  }
  Attempt& attempt = it->second;
  switch (msg->type) {
    case PeerMsgType::kProbe: {
      if (config_.adopt_observed_endpoints &&
          std::find(attempt.candidates.begin(), attempt.candidates.end(), from) ==
              attempt.candidates.end()) {
        // The peer reached us from an endpoint S didn't predict (symmetric
        // NAT on their side); answer where the packet actually came from.
        attempt.candidates.push_back(from);
      }
      SendPeerMessage(from, PeerMsgType::kProbeReply, msg->nonce, Bytes{});
      return;
    }
    case PeerMsgType::kProbeReply:
      // §3.2: lock in the first endpoint that elicits a valid response.
      FinishAttempt(msg->nonce, from);
      return;
    case PeerMsgType::kData:
    case PeerMsgType::kKeepAlive: {
      // The peer already locked in and is talking to us; that is as good as
      // a probe reply.
      FinishAttempt(msg->nonce, from);
      if (msg->type == PeerMsgType::kData) {
        if (UdpP2pSession** created = sessions_.Find(msg->nonce)) {
          ++(*created)->datagrams_received_;
          DispatchReceive(*created, msg->payload);
        }
      }
      return;
    }
    default:
      return;
  }
}

void UdpHolePuncher::OnSocketError(const Endpoint& dst, ErrorCode code) {
  (void)code;
  // An ICMP error for a candidate (e.g. the private endpoint hit a host with
  // no socket bound): stop probing it.
  for (auto& [nonce, attempt] : attempts_) {
    auto it = std::find(attempt.candidates.begin(), attempt.candidates.end(), dst);
    if (it != attempt.candidates.end()) {
      attempt.candidates.erase(it);
      if (attempt.candidates.empty()) {
        FailAttempt(nonce, Status(ErrorCode::kHostUnreachable, "all candidates unreachable"));
        return;  // FailAttempt invalidates iterators
      }
    }
  }
}

void UdpHolePuncher::FinishAttempt(uint64_t nonce, const Endpoint& winner) {
  auto it = attempts_.find(nonce);
  if (it == attempts_.end()) {
    return;
  }
  // The intrusive timers make Attempt unmovable: disarm them and copy the
  // fields that outlive the map node, then erase before running callbacks.
  it->second.probe_timer.Cancel();
  it->second.deadline_timer.Cancel();
  const uint64_t peer_id = it->second.peer_id;
  const Endpoint peer_public = it->second.peer_public;
  const Endpoint peer_private = it->second.peer_private;
  const SimTime started = it->second.started;
  const int probes_sent = it->second.probes_sent;
  SessionCallback cb = std::move(it->second.cb);
  attempts_.erase(it);

  UdpP2pSession* raw = session_pool_.New(this);
  raw->peer_id_ = peer_id;
  raw->nonce_ = nonce;
  raw->peer_endpoint_ = winner;
  // A peer without a NAT has identical endpoints; report that as "public".
  if (winner == peer_private && peer_private != peer_public) {
    raw->flags_ |= UdpP2pSession::kUsedPrivate;
  }
  const SimDuration elapsed = loop_.now() - started;
  raw->punch_elapsed_us_ = static_cast<uint32_t>(std::min<int64_t>(
      std::max<int64_t>(elapsed.micros(), 0), std::numeric_limits<uint32_t>::max()));
  obs::Inc(metric_successes_);
  obs::Observe(metric_rtt_ms_, elapsed.millis());
  raw->probes_sent_ = static_cast<uint16_t>(
      std::min(probes_sent, static_cast<int>(std::numeric_limits<uint16_t>::max())));
  raw->last_inbound_ = loop_.now();
  sessions_.InsertOrAssign(nonce, raw);
  ArmSessionTimers(raw);

  NP_LOG(Info) << rendezvous_->host()->name() << " punched UDP session to peer "
               << peer_id << " at " << winner.ToString()
               << (raw->used_private_endpoint() ? " (private endpoint)" : " (public endpoint)");

  if (cb) {
    cb(raw);
  } else if (incoming_cb_) {
    incoming_cb_(raw);
  }
}

void UdpHolePuncher::FailAttempt(uint64_t nonce, const Status& status) {
  auto it = attempts_.find(nonce);
  if (it == attempts_.end()) {
    return;
  }
  it->second.probe_timer.Cancel();
  it->second.deadline_timer.Cancel();
  SessionCallback cb = std::move(it->second.cb);
  attempts_.erase(it);
  obs::Inc(metric_failures_);
  if (cb) {
    cb(status);
  }
}

void UdpHolePuncher::ArmSessionTimers(UdpP2pSession* session) {
  // Intrusive handles embedded in the session: arming, firing, and the
  // periodic re-arm allocate nothing, and CloseSession/ destruction cancels
  // in O(1). The keepalive cadence is fixed per session at punch time so the
  // jittered schedule stays deterministic under a given seed.
  session->keepalive_interval_ = config_.keepalive_interval;
  if (config_.keepalive_jitter.micros() > 0) {
    const int64_t jitter = config_.keepalive_jitter.micros();
    const int64_t offset =
        static_cast<int64_t>(HashMix64(session->nonce_) % static_cast<uint64_t>(2 * jitter + 1)) -
        jitter;
    session->keepalive_interval_ =
        Micros(std::max<int64_t>(config_.keepalive_interval.micros() + offset, 1));
  }
  if (config_.keepalives_enabled) {
    session->keepalive_timer_.Bind<&UdpP2pSession::KeepAliveFire>(session);
    loop_.ScheduleTimerAfter(session->keepalive_interval_, &session->keepalive_timer_);
  }
  session->expiry_timer_.Bind<&UdpP2pSession::ExpiryFire>(session);
  loop_.ScheduleTimerAfter(config_.session_expiry, &session->expiry_timer_);
}

void UdpHolePuncher::SessionKeepAliveTick(UdpP2pSession* session) {
  // Only an alive session can fire: CloseSession cancels the handle.
  SendPeerMessage(session->peer_endpoint_, PeerMsgType::kKeepAlive, session->nonce_, Bytes{});
  loop_.ScheduleTimerAfter(session->keepalive_interval_, &session->keepalive_timer_);
}

void UdpHolePuncher::SessionExpiryTick(UdpP2pSession* session) {
  const SimTime deadline = session->last_inbound_ + config_.session_expiry;
  if (loop_.now() >= deadline) {
    CloseSession(session, Status(ErrorCode::kTimedOut, "peer silent past expiry"),
                 /*notify=*/true);
    return;
  }
  loop_.ScheduleTimerAt(deadline, &session->expiry_timer_);
}

void UdpHolePuncher::SessionInboundSeen(UdpP2pSession* session) {
  session->last_inbound_ = loop_.now();
}

void UdpHolePuncher::CloseSession(UdpP2pSession* session, const Status& status, bool notify) {
  if (!session->alive()) {
    return;
  }
  session->flags_ &= static_cast<uint8_t>(~UdpP2pSession::kAlive);
  session->keepalive_timer_.Cancel();
  session->expiry_timer_.Cancel();
  if (notify && (session->flags_ & UdpP2pSession::kHasDeadCb) != 0) {
    SessionCallbacks* cbs = session_callbacks_.Find(session->nonce_);
    if (cbs != nullptr && cbs->dead) {
      cbs->dead(status);
    }
  }
}

void UdpHolePuncher::SetSessionReceiveCallback(UdpP2pSession* session,
                                               UdpP2pSession::ReceiveCallback cb) {
  if (cb) {
    session_callbacks_.FindOrInsert(session->nonce_)->receive = std::move(cb);
    session->flags_ |= UdpP2pSession::kHasReceiveCb;
    return;
  }
  session->flags_ &= static_cast<uint8_t>(~UdpP2pSession::kHasReceiveCb);
  if (SessionCallbacks* cbs = session_callbacks_.Find(session->nonce_)) {
    cbs->receive = nullptr;
    if (!cbs->dead) {
      session_callbacks_.Erase(session->nonce_);
    }
  }
}

void UdpHolePuncher::SetSessionDeadCallback(UdpP2pSession* session,
                                            UdpP2pSession::DeadCallback cb) {
  if (cb) {
    session_callbacks_.FindOrInsert(session->nonce_)->dead = std::move(cb);
    session->flags_ |= UdpP2pSession::kHasDeadCb;
    return;
  }
  session->flags_ &= static_cast<uint8_t>(~UdpP2pSession::kHasDeadCb);
  if (SessionCallbacks* cbs = session_callbacks_.Find(session->nonce_)) {
    cbs->dead = nullptr;
    if (!cbs->receive) {
      session_callbacks_.Erase(session->nonce_);
    }
  }
}

void UdpHolePuncher::DispatchReceive(UdpP2pSession* session, const Bytes& payload) {
  if ((session->flags_ & UdpP2pSession::kHasReceiveCb) == 0) {
    return;  // swarm fast path: no table probe for callback-less sessions
  }
  SessionCallbacks* cbs = session_callbacks_.Find(session->nonce_);
  if (cbs != nullptr && cbs->receive) {
    cbs->receive(payload);
  }
}

// ---------------------------------------------------------------------------
// UdpP2pSession
// ---------------------------------------------------------------------------

void UdpP2pSession::KeepAliveFire() { puncher_->SessionKeepAliveTick(this); }

void UdpP2pSession::ExpiryFire() { puncher_->SessionExpiryTick(this); }

void UdpP2pSession::SetReceiveCallback(ReceiveCallback cb) {
  puncher_->SetSessionReceiveCallback(this, std::move(cb));
}

void UdpP2pSession::SetDeadCallback(DeadCallback cb) {
  puncher_->SetSessionDeadCallback(this, std::move(cb));
}

Status UdpP2pSession::Send(Bytes payload) {
  if (!alive()) {
    return Status(ErrorCode::kClosed, "session dead");
  }
  ++datagrams_sent_;
  puncher_->SendPeerMessage(peer_endpoint_, PeerMsgType::kData, nonce_, std::move(payload));
  return Status::Ok();
}

void UdpP2pSession::Close() {
  puncher_->CloseSession(this, Status(ErrorCode::kClosed), /*notify=*/false);
}

}  // namespace natpunch
