#include "src/core/udp_puncher.h"

#include <algorithm>

#include "src/obs/metrics.h"
#include "src/util/flat_hash.h"
#include "src/util/logging.h"

namespace natpunch {

UdpHolePuncher::UdpHolePuncher(UdpRendezvousClient* rendezvous, UdpPunchConfig config)
    : rendezvous_(rendezvous), config_(config), loop_(rendezvous->host()->loop()) {
  rendezvous_->SetPeerTrafficHandler(
      [this](const Endpoint& from, const Payload& payload) { OnPeerTraffic(from, payload); });
  rendezvous_->SetConnectForwardHandler(
      ConnectStrategy::kHolePunch, [this](const RendezvousMessage& fwd) {
        // Passive side of §3.2: S forwarded a connection request; punch back.
        StartAttempt(fwd.client_id, fwd.nonce, fwd.public_ep, fwd.private_ep,
                     /*incoming=*/true, nullptr);
      });
  if (rendezvous_->socket() != nullptr) {
    rendezvous_->socket()->SetErrorCallback(
        [this](const Endpoint& dst, ErrorCode code) { OnSocketError(dst, code); });
  }
  if (obs::MetricsRegistry* reg = rendezvous_->host()->network()->metrics()) {
    metric_attempts_ = reg->GetCounter("punch.attempts");
    metric_successes_ = reg->GetCounter("punch.successes");
    metric_failures_ = reg->GetCounter("punch.failures");
    metric_rtt_ms_ = reg->GetHistogram("punch.rtt_ms", obs::LatencyBucketsMs());
  }
}

size_t UdpHolePuncher::active_sessions() const {
  size_t n = 0;
  for (const auto& [nonce, session] : sessions_) {
    n += session->alive() ? 1 : 0;
  }
  return n;
}

void UdpHolePuncher::ConnectToPeer(uint64_t peer_id, SessionCallback cb) {
  const uint64_t nonce = rendezvous_->host()->rng().NextU64();
  rendezvous_->RequestConnect(
      peer_id, ConnectStrategy::kHolePunch, nonce,
      [this, peer_id, nonce, cb = std::move(cb)](Result<RendezvousMessage> ack) mutable {
        if (!ack.ok()) {
          cb(ack.status());
          return;
        }
        Attempt* attempt = StartAttempt(peer_id, nonce, ack->public_ep, ack->private_ep,
                                        /*incoming=*/false, std::move(cb));
        if (attempt != nullptr) {
          attempt->renew_introduction = true;
        }
      });
}

UdpHolePuncher::Attempt* UdpHolePuncher::StartAttempt(uint64_t peer_id, uint64_t nonce,
                                                      const Endpoint& peer_public,
                                                      const Endpoint& peer_private, bool incoming,
                                                      SessionCallback cb) {
  if (attempts_.count(nonce) != 0 || sessions_.count(nonce) != 0) {
    return nullptr;  // already punching or punched this session
  }
  obs::Inc(metric_attempts_);
  Attempt& attempt = attempts_[nonce];
  attempt.peer_id = peer_id;
  attempt.nonce = nonce;
  attempt.incoming = incoming;
  attempt.peer_public = peer_public;
  attempt.peer_private = peer_private;
  attempt.started = loop_.now();
  attempt.cb = std::move(cb);

  // Candidate endpoints, public first (§3.2 step 3 fires at both; dedupe
  // guards the no-NAT case where they coincide).
  if (!peer_public.IsUnspecified()) {
    attempt.candidates.push_back(peer_public);
  }
  if (config_.try_private_endpoint && !peer_private.IsUnspecified() &&
      peer_private != peer_public) {
    attempt.candidates.push_back(peer_private);
  }
  if (attempt.candidates.empty()) {
    FailAttempt(nonce, Status(ErrorCode::kInvalidArgument, "no candidate endpoints"));
    return nullptr;
  }

  attempt.deadline_event = loop_.ScheduleAfter(config_.punch_timeout, [this, nonce] {
    FailAttempt(nonce, Status(ErrorCode::kTimedOut, "hole punch timed out"));
  });
  SendProbes(&attempt);
  return &attempt;
}

void UdpHolePuncher::SendProbes(Attempt* attempt) {
  for (const Endpoint& candidate : attempt->candidates) {
    SendPeerMessage(candidate, PeerMsgType::kProbe, attempt->nonce, Bytes{});
    ++attempt->probes_sent;
  }
  ++attempt->probe_rounds;
  if (attempt->renew_introduction && attempt->probe_rounds % 5 == 0) {
    // Still nothing back: the kConnectForward to the peer may have been
    // lost, leaving it unaware it should punch. Re-introduce (idempotent on
    // the peer: duplicate forwards for a known nonce are ignored).
    rendezvous_->SendConnectRequest(attempt->peer_id, ConnectStrategy::kHolePunch,
                                    attempt->nonce);
  }
  const uint64_t nonce = attempt->nonce;
  attempt->probe_event = loop_.ScheduleAfter(config_.probe_interval, [this, nonce] {
    auto it = attempts_.find(nonce);
    if (it != attempts_.end()) {
      SendProbes(&it->second);
    }
  });
}

void UdpHolePuncher::SendPeerMessage(const Endpoint& to, PeerMsgType type, uint64_t nonce,
                                     Bytes payload) {
  PeerMessage msg;
  msg.type = type;
  msg.nonce = nonce;
  msg.sender_id = rendezvous_->client_id();
  msg.payload = std::move(payload);
  // Encode straight into an SBO Payload: keepalives and probes (empty
  // payload, 20-byte frame) never touch the heap on the send side.
  rendezvous_->socket()->SendTo(to, EncodePeerMessagePayload(msg));
}

void UdpHolePuncher::PunchAtEndpoints(uint64_t peer_id, uint64_t nonce,
                                      const Endpoint& peer_public, const Endpoint& peer_private,
                                      SessionCallback cb) {
  StartAttempt(peer_id, nonce, peer_public, peer_private, /*incoming=*/cb == nullptr,
               std::move(cb));
}

void UdpHolePuncher::OnPeerTraffic(const Endpoint& from, const Payload& payload) {
  auto msg = DecodePeerMessage(payload);
  if (!msg) {
    // Non-peer-wire bytes are legitimate here when a raw handler is
    // installed (STUN-like prediction probes ride the same socket);
    // without one they are garbage on the punch flow.
    if (raw_handler_) {
      raw_handler_(from, payload);
    } else {
      rendezvous_->host()->CountMalformedDrop();
    }
    return;
  }
  // Established session traffic first.
  auto session_it = sessions_.find(msg->nonce);
  if (session_it != sessions_.end()) {
    UdpP2pSession* session = session_it->second.get();
    if (!session->alive()) {
      return;
    }
    SessionInboundSeen(session);
    switch (msg->type) {
      case PeerMsgType::kProbe:
        // Late probe from a peer that has not locked in yet: keep answering
        // so it can (§3.2: order and timing are not critical).
        SendPeerMessage(from, PeerMsgType::kProbeReply, msg->nonce, Bytes{});
        return;
      case PeerMsgType::kData:
        ++session->datagrams_received_;
        if (session->receive_cb_) {
          session->receive_cb_(msg->payload);
        }
        return;
      case PeerMsgType::kKeepAlive:
      case PeerMsgType::kProbeReply:
      default:
        return;  // activity already refreshed the expiry timer
    }
  }

  // Otherwise it may belong to an in-flight attempt.
  auto it = attempts_.find(msg->nonce);
  if (it == attempts_.end()) {
    // Unknown nonce: a stray host or an expired session. Authentications
    // fail silently (§3.4) — never answer, or the stray would lock onto us.
    // A registered unclaimed handler may still consume it (relay fallback).
    if (unclaimed_handler_) {
      unclaimed_handler_(from, *msg);
    }
    return;
  }
  Attempt& attempt = it->second;
  switch (msg->type) {
    case PeerMsgType::kProbe: {
      if (config_.adopt_observed_endpoints &&
          std::find(attempt.candidates.begin(), attempt.candidates.end(), from) ==
              attempt.candidates.end()) {
        // The peer reached us from an endpoint S didn't predict (symmetric
        // NAT on their side); answer where the packet actually came from.
        attempt.candidates.push_back(from);
      }
      SendPeerMessage(from, PeerMsgType::kProbeReply, msg->nonce, Bytes{});
      return;
    }
    case PeerMsgType::kProbeReply:
      // §3.2: lock in the first endpoint that elicits a valid response.
      FinishAttempt(msg->nonce, from);
      return;
    case PeerMsgType::kData:
    case PeerMsgType::kKeepAlive: {
      // The peer already locked in and is talking to us; that is as good as
      // a probe reply.
      FinishAttempt(msg->nonce, from);
      auto created = sessions_.find(msg->nonce);
      if (msg->type == PeerMsgType::kData && created != sessions_.end()) {
        ++created->second->datagrams_received_;
        if (created->second->receive_cb_) {
          created->second->receive_cb_(msg->payload);
        }
      }
      return;
    }
    default:
      return;
  }
}

void UdpHolePuncher::OnSocketError(const Endpoint& dst, ErrorCode code) {
  (void)code;
  // An ICMP error for a candidate (e.g. the private endpoint hit a host with
  // no socket bound): stop probing it.
  for (auto& [nonce, attempt] : attempts_) {
    auto it = std::find(attempt.candidates.begin(), attempt.candidates.end(), dst);
    if (it != attempt.candidates.end()) {
      attempt.candidates.erase(it);
      if (attempt.candidates.empty()) {
        FailAttempt(nonce, Status(ErrorCode::kHostUnreachable, "all candidates unreachable"));
        return;  // FailAttempt invalidates iterators
      }
    }
  }
}

void UdpHolePuncher::FinishAttempt(uint64_t nonce, const Endpoint& winner) {
  auto it = attempts_.find(nonce);
  if (it == attempts_.end()) {
    return;
  }
  Attempt attempt = std::move(it->second);
  attempts_.erase(it);
  if (attempt.probe_event != EventLoop::kInvalidEventId) {
    loop_.Cancel(attempt.probe_event);
  }
  if (attempt.deadline_event != EventLoop::kInvalidEventId) {
    loop_.Cancel(attempt.deadline_event);
  }

  auto session = std::unique_ptr<UdpP2pSession>(new UdpP2pSession(this));
  session->peer_id_ = attempt.peer_id;
  session->nonce_ = nonce;
  session->peer_endpoint_ = winner;
  // A peer without a NAT has identical endpoints; report that as "public".
  session->used_private_ =
      winner == attempt.peer_private && attempt.peer_private != attempt.peer_public;
  session->punch_elapsed_ = loop_.now() - attempt.started;
  obs::Inc(metric_successes_);
  obs::Observe(metric_rtt_ms_, session->punch_elapsed_.millis());
  session->probes_sent_ = attempt.probes_sent;
  session->last_inbound_ = loop_.now();
  UdpP2pSession* raw = session.get();
  sessions_[nonce] = std::move(session);
  ArmSessionTimers(raw);

  NP_LOG(Info) << rendezvous_->host()->name() << " punched UDP session to peer "
               << attempt.peer_id << " at " << winner.ToString()
               << (raw->used_private_ ? " (private endpoint)" : " (public endpoint)");

  if (attempt.cb) {
    attempt.cb(raw);
  } else if (incoming_cb_) {
    incoming_cb_(raw);
  }
}

void UdpHolePuncher::FailAttempt(uint64_t nonce, const Status& status) {
  auto it = attempts_.find(nonce);
  if (it == attempts_.end()) {
    return;
  }
  Attempt attempt = std::move(it->second);
  attempts_.erase(it);
  if (attempt.probe_event != EventLoop::kInvalidEventId) {
    loop_.Cancel(attempt.probe_event);
  }
  if (attempt.deadline_event != EventLoop::kInvalidEventId) {
    loop_.Cancel(attempt.deadline_event);
  }
  obs::Inc(metric_failures_);
  if (attempt.cb) {
    attempt.cb(status);
  }
}

void UdpHolePuncher::ArmSessionTimers(UdpP2pSession* session) {
  // Intrusive handles embedded in the session: arming, firing, and the
  // periodic re-arm allocate nothing, and CloseSession/ destruction cancels
  // in O(1). The keepalive cadence is fixed per session at punch time so the
  // jittered schedule stays deterministic under a given seed.
  session->keepalive_interval_ = config_.keepalive_interval;
  if (config_.keepalive_jitter.micros() > 0) {
    const int64_t jitter = config_.keepalive_jitter.micros();
    const int64_t offset =
        static_cast<int64_t>(HashMix64(session->nonce_) % static_cast<uint64_t>(2 * jitter + 1)) -
        jitter;
    session->keepalive_interval_ =
        Micros(std::max<int64_t>(config_.keepalive_interval.micros() + offset, 1));
  }
  if (config_.keepalives_enabled) {
    session->keepalive_timer_.Bind<&UdpP2pSession::KeepAliveFire>(session);
    loop_.ScheduleTimerAfter(session->keepalive_interval_, &session->keepalive_timer_);
  }
  session->expiry_timer_.Bind<&UdpP2pSession::ExpiryFire>(session);
  loop_.ScheduleTimerAfter(config_.session_expiry, &session->expiry_timer_);
}

void UdpHolePuncher::SessionKeepAliveTick(UdpP2pSession* session) {
  // Only an alive session can fire: CloseSession cancels the handle.
  SendPeerMessage(session->peer_endpoint_, PeerMsgType::kKeepAlive, session->nonce_, Bytes{});
  loop_.ScheduleTimerAfter(session->keepalive_interval_, &session->keepalive_timer_);
}

void UdpHolePuncher::SessionExpiryTick(UdpP2pSession* session) {
  const SimTime deadline = session->last_inbound_ + config_.session_expiry;
  if (loop_.now() >= deadline) {
    CloseSession(session, Status(ErrorCode::kTimedOut, "peer silent past expiry"),
                 /*notify=*/true);
    return;
  }
  loop_.ScheduleTimerAt(deadline, &session->expiry_timer_);
}

void UdpHolePuncher::SessionInboundSeen(UdpP2pSession* session) {
  session->last_inbound_ = loop_.now();
}

void UdpHolePuncher::CloseSession(UdpP2pSession* session, const Status& status, bool notify) {
  if (!session->alive_) {
    return;
  }
  session->alive_ = false;
  session->keepalive_timer_.Cancel();
  session->expiry_timer_.Cancel();
  if (notify && session->dead_cb_) {
    session->dead_cb_(status);
  }
}

// ---------------------------------------------------------------------------
// UdpP2pSession
// ---------------------------------------------------------------------------

void UdpP2pSession::KeepAliveFire() { puncher_->SessionKeepAliveTick(this); }

void UdpP2pSession::ExpiryFire() { puncher_->SessionExpiryTick(this); }

Status UdpP2pSession::Send(Bytes payload) {
  if (!alive_) {
    return Status(ErrorCode::kClosed, "session dead");
  }
  ++datagrams_sent_;
  puncher_->SendPeerMessage(peer_endpoint_, PeerMsgType::kData, nonce_, std::move(payload));
  return Status::Ok();
}

void UdpP2pSession::Close() {
  puncher_->CloseSession(this, Status(ErrorCode::kClosed), /*notify=*/false);
}

}  // namespace natpunch
