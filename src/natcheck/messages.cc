#include "src/natcheck/messages.h"

namespace natpunch {
namespace {
constexpr uint8_t kMagic = 0x4e;  // 'N'
}  // namespace

Bytes EncodeNcMessage(const NcMessage& msg) {
  ByteWriter w;
  w.Reserve(18);  // fixed wire size: magic..verdict below
  w.WriteU8(kMagic);
  w.WriteU8(static_cast<uint8_t>(msg.type));
  w.WriteU64(msg.session);
  w.WriteU8(msg.server_index);
  // NOTE: plain, unobfuscated address bytes — see header comment.
  w.WriteU32(msg.observed.ip.bits());
  w.WriteU16(msg.observed.port);
  w.WriteU8(static_cast<uint8_t>(msg.verdict));
  return w.Take();
}

std::optional<NcMessage> DecodeNcMessage(ConstByteSpan data) {
  ByteReader r(data);
  if (r.ReadU8() != kMagic) {
    return std::nullopt;
  }
  NcMessage msg;
  const uint8_t type = r.ReadU8();
  if (type < static_cast<uint8_t>(NcMsgType::kUdpPing) ||
      type > static_cast<uint8_t>(NcMsgType::kTcpHairpinReply)) {
    return std::nullopt;
  }
  msg.type = static_cast<NcMsgType>(type);
  msg.session = r.ReadU64();
  msg.server_index = r.ReadU8();
  msg.observed.ip = Ipv4Address(r.ReadU32());
  msg.observed.port = r.ReadU16();
  msg.verdict = static_cast<NcProbeVerdict>(r.ReadU8());
  if (!r.ok()) {
    return std::nullopt;
  }
  return msg;
}

}  // namespace natpunch
