#include "src/natcheck/messages.h"

namespace natpunch {
namespace {
constexpr uint8_t kMagic = 0x4e;  // 'N'
}  // namespace

Bytes EncodeNcMessage(const NcMessage& msg) {
  ByteWriter w;
  w.Reserve(18);  // fixed wire size: magic..verdict below
  w.WriteU8(kMagic);
  w.WriteU8(static_cast<uint8_t>(msg.type));
  w.WriteU64(msg.session);
  w.WriteU8(msg.server_index);
  // NOTE: plain, unobfuscated address bytes — see header comment.
  w.WriteU32(msg.observed.ip.bits());
  w.WriteU16(msg.observed.port);
  w.WriteU8(static_cast<uint8_t>(msg.verdict));
  return w.Take();
}

std::optional<NcMessage> DecodeNcMessage(ConstByteSpan data) {
  ByteReader r(data);
  if (r.ReadU8() != kMagic) {
    return std::nullopt;
  }
  NcMessage msg;
  const uint8_t type = r.ReadU8();
  if (type < static_cast<uint8_t>(NcMsgType::kUdpPing) ||
      type > static_cast<uint8_t>(NcMsgType::kTcpHairpinReply)) {
    return std::nullopt;
  }
  msg.type = static_cast<NcMsgType>(type);
  msg.session = r.ReadU64();
  msg.server_index = r.ReadU8();
  msg.observed.ip = Ipv4Address(r.ReadU32());
  msg.observed.port = r.ReadU16();
  const uint8_t verdict = r.ReadU8();
  // Strict armor: every enum byte validated, the frame consumed exactly.
  // Anything else is attacker-controlled garbage and must decode to nullopt
  // (never crash, never round-trip differently than it arrived).
  if (!r.ok() || !r.AtEnd()) {
    return std::nullopt;
  }
  if (verdict > static_cast<uint8_t>(NcProbeVerdict::kRefused)) {
    return std::nullopt;
  }
  if (msg.server_index > 3) {
    return std::nullopt;  // servers are 1..3; 0 = unset in client pings
  }
  msg.verdict = static_cast<NcProbeVerdict>(verdict);
  return msg;
}

}  // namespace natpunch
