#include "src/natcheck/client.h"

#include "src/util/logging.h"

namespace natpunch {

std::string NatCheckReport::ToString() const {
  std::string out = "NatCheckReport{udp:";
  if (!udp_reachable) {
    out += " unreachable";
  } else {
    out += udp_consistent ? " consistent" : " inconsistent";
    out += udp_filters_unsolicited ? " filters" : " open";
    if (udp_hairpin_tested) {
      out += udp_hairpin ? " hairpin" : " no-hairpin";
    }
  }
  out += "; tcp:";
  if (!tcp_tested) {
    out += " untested";
  } else if (!tcp_reachable) {
    out += " unreachable";
  } else {
    out += tcp_consistent ? " consistent" : " inconsistent";
    if (tcp_rejects_unsolicited) {
      out += " rejects";
    } else if (tcp_unsolicited_passed) {
      out += " open";
    } else {
      out += " drops";
    }
    if (tcp_hairpin_tested) {
      out += tcp_hairpin ? " hairpin" : " no-hairpin";
    }
  }
  if (nat_reboots > 0 || nat_expired_mappings > 0) {
    out += "; dev: reboots=";
    out += std::to_string(nat_reboots);
    out += " expired=";
    out += std::to_string(nat_expired_mappings);
  }
  out += "} => UDP punch ";
  out += UdpHolePunchCompatible() ? "YES" : "NO";
  out += ", TCP punch ";
  out += tcp_tested ? (TcpHolePunchCompatible() ? "YES" : "NO") : "n/a";
  return out;
}

NatCheckClient::NatCheckClient(Host* host, NatCheckServerAddrs servers,
                               NatCheckClientConfig config)
    : host_(host), servers_(servers), config_(config) {}

void NatCheckClient::Fail(const Status& status) {
  if (done_) {
    return;
  }
  done_ = true;
  cb_(status);
}

void NatCheckClient::Finish() {
  if (done_) {
    return;
  }
  done_ = true;
  if (deadline_timer_ != EventLoop::kInvalidEventId) {
    host_->loop().Cancel(deadline_timer_);
  }
  cb_(report_);
}

void NatCheckClient::Run(uint16_t local_port, std::function<void(Result<NatCheckReport>)> cb) {
  cb_ = std::move(cb);
  local_port_ = local_port;
  session_ = host_->rng().NextU64();
  auto bound = host_->udp().Bind(local_port);
  if (!bound.ok()) {
    Fail(bound.status());
    return;
  }
  udp_socket_ = *bound;
  local_port_ = udp_socket_->local_port();
  udp_socket_->SetReceiveCallback(
      [this](const Endpoint& from, const Payload& payload) { OnUdpReceive(from, payload); });
  deadline_timer_ = host_->loop().ScheduleAfter(config_.overall_timeout, [this] {
    // Report whatever has been learned so far rather than failing: a wedged
    // TCP phase on a weird NAT is itself a result.
    Finish();
  });
  udp_phase_ = 1;
  udp_attempts_ = 0;
  SendUdpPing(1);
}

void NatCheckClient::SendUdpPing(int server_index) {
  NcMessage ping;
  ping.type = NcMsgType::kUdpPing;
  ping.session = session_;
  udp_socket_->SendTo(server_index == 1 ? servers_.udp1 : servers_.udp2,
                      EncodeNcMessage(ping));
  ++udp_attempts_;
  udp_timer_ = host_->loop().ScheduleAfter(config_.udp_reply_timeout, [this, server_index] {
    udp_timer_ = EventLoop::kInvalidEventId;
    if (udp_phase_ != server_index) {
      return;  // already advanced
    }
    if (udp_attempts_ < config_.udp_retries) {
      SendUdpPing(server_index);
      return;
    }
    // Server unreachable over UDP: record and move on to TCP.
    report_.udp_reachable = false;
    if (config_.test_tcp) {
      StartTcpPhase();
    } else {
      Finish();
    }
  });
}

void NatCheckClient::OnUdpReceive(const Endpoint& from, const Payload& payload) {
  (void)from;
  auto msg = DecodeNcMessage(payload);
  if (!msg) {
    host_->CountMalformedDrop();
    return;
  }
  if (msg->session != session_) {
    return;
  }
  switch (msg->type) {
    case NcMsgType::kUdpPong: {
      if (msg->server_index == 1 && udp_phase_ == 1) {
        report_.udp_public_1 = msg->observed;
        if (udp_timer_ != EventLoop::kInvalidEventId) {
          host_->loop().Cancel(udp_timer_);
        }
        udp_phase_ = 2;
        udp_attempts_ = 0;
        SendUdpPing(2);
      } else if (msg->server_index == 2 && udp_phase_ == 2) {
        report_.udp_public_2 = msg->observed;
        report_.udp_reachable = true;
        report_.udp_consistent = report_.udp_public_1 == report_.udp_public_2;
        if (udp_timer_ != EventLoop::kInvalidEventId) {
          host_->loop().Cancel(udp_timer_);
        }
        udp_phase_ = 3;
        // Give server 3's unsolicited probe a window, then hairpin.
        host_->loop().ScheduleAfter(config_.unsolicited_wait, [this] {
          if (config_.test_udp_hairpin) {
            StartUdpHairpin();
          } else if (config_.test_tcp) {
            StartTcpPhase();
          } else {
            Finish();
          }
        });
      }
      return;
    }
    case NcMsgType::kUdpProbe:
      // Server 3's unsolicited datagram made it through.
      report_.udp_filters_unsolicited = false;
      return;
    case NcMsgType::kUdpHairpin:
      // Our own hairpin probe arrived back at the primary socket.
      report_.udp_hairpin = true;
      return;
    default:
      return;
  }
}

void NatCheckClient::StartUdpHairpin() {
  report_.udp_hairpin_tested = true;
  auto bound = host_->udp().Bind(0);
  if (!bound.ok()) {
    if (config_.test_tcp) {
      StartTcpPhase();
    } else {
      Finish();
    }
    return;
  }
  udp_hairpin_socket_ = *bound;
  NcMessage probe;
  probe.type = NcMsgType::kUdpHairpin;
  probe.session = session_;
  // §6.1.1: aim at the public endpoint of the primary socket as reported by
  // server 2. Note the deliberately one-way test — §6.3 discusses why this
  // can be pessimistic on hairpin-filtering NATs.
  udp_hairpin_socket_->SendTo(report_.udp_public_2, EncodeNcMessage(probe));
  host_->loop().ScheduleAfter(config_.hairpin_wait, [this] {
    udp_hairpin_socket_->Close();
    if (config_.test_tcp) {
      StartTcpPhase();
    } else {
      Finish();
    }
  });
}

void NatCheckClient::StartTcpPhase() {
  report_.tcp_tested = true;
  tcp_listener_ = host_->tcp().CreateSocket();
  tcp_listener_->SetReuseAddr(true);
  Status status = tcp_listener_->Bind(local_port_);
  if (status.ok()) {
    status = tcp_listener_->Listen([this](TcpSocket* socket) {
      accepted_.push_back(std::make_unique<AcceptedConn>());
      AcceptedConn* conn = accepted_.back().get();
      conn->socket = socket;
      if (socket->remote_endpoint().ip == servers_.tcp3.ip) {
        // Unsolicited connection from server 3 arrived on our listener.
        report_.tcp_unsolicited_passed = true;
      }
      socket->SetDataCallback([this, conn](const Bytes& data) {
        for (const Bytes& body : conn->framer.Append(data)) {
          auto msg = DecodeNcMessage(body);
          if (!msg) {
            host_->CountMalformedDrop();
            continue;
          }
          if (msg->type == NcMsgType::kTcpHairpinHello) {
            NcMessage reply;
            reply.type = NcMsgType::kTcpHairpinReply;
            reply.session = msg->session;
            conn->socket->Send(MessageFramer::Frame(EncodeNcMessage(reply)));
          }
        }
      });
    });
  }
  if (!status.ok()) {
    Finish();
    return;
  }
  TcpHelloTo(1);
}

void NatCheckClient::TcpHelloTo(int server_index) {
  const int slot = server_index - 1;
  tcp_conn_[slot] = host_->tcp().CreateSocket();
  TcpSocket* socket = tcp_conn_[slot];
  socket->SetReuseAddr(true);
  Status status = socket->Bind(local_port_);
  if (status.ok()) {
    socket->SetDataCallback([this, socket, slot](const Bytes& data) {
      for (const Bytes& body : tcp_framer_[slot].Append(data)) {
        auto msg = DecodeNcMessage(body);
        if (!msg) {
          host_->CountMalformedDrop();
          continue;
        }
        if (msg->type == NcMsgType::kTcpReply) {
          OnTcpReply(*msg);
        }
      }
      (void)socket;
    });
    const Endpoint target = server_index == 1 ? servers_.tcp1 : servers_.tcp2;
    status = socket->Connect(target, [this, socket](Status result) {
      if (!result.ok()) {
        // TCP to the servers is broken entirely; stop here.
        report_.tcp_reachable = false;
        Finish();
        return;
      }
      NcMessage hello;
      hello.type = NcMsgType::kTcpHello;
      hello.session = session_;
      socket->Send(MessageFramer::Frame(EncodeNcMessage(hello)));
    });
  }
  if (!status.ok()) {
    Finish();
  }
}

void NatCheckClient::OnTcpReply(const NcMessage& msg) {
  if (msg.server_index == 1) {
    report_.tcp_public_1 = msg.observed;
    tcp_conn_[0]->Close();
    TcpHelloTo(2);
    return;
  }
  // Server 2's (delayed) reply: record, digest server 3's verdict, then run
  // our side of the simultaneous open.
  report_.tcp_public_2 = msg.observed;
  report_.tcp_reachable = true;
  report_.tcp_consistent = report_.tcp_public_1 == report_.tcp_public_2;
  if (msg.verdict == NcProbeVerdict::kRefused) {
    report_.tcp_rejects_unsolicited = true;
  }
  StartServer3Connect();
}

void NatCheckClient::StartServer3Connect() {
  if (report_.tcp_unsolicited_passed) {
    // Server 3 already reached us; connecting out would collide with that
    // very connection's 4-tuple. Nothing more to learn.
    StartTcpHairpin();
    return;
  }
  TcpSocket* socket = host_->tcp().CreateSocket();
  socket->SetReuseAddr(true);
  Status status = socket->Bind(local_port_);
  if (!status.ok()) {
    StartTcpHairpin();
    return;
  }
  auto decided = std::make_shared<bool>(false);
  status = socket->Connect(servers_.tcp3, [this, decided](Status result) {
    if (*decided) {
      return;
    }
    *decided = true;
    if (result.ok()) {
      report_.tcp_punch_connect_ok = true;  // hole punched; SYNs crossed
    } else if (result.code() == ErrorCode::kConnectionRefused) {
      report_.tcp_rejects_unsolicited = true;  // server 3 had given up
    }
    StartTcpHairpin();
  });
  if (!status.ok()) {
    StartTcpHairpin();
    return;
  }
  host_->loop().ScheduleAfter(config_.tcp_connect_timeout, [this, socket, decided] {
    if (*decided) {
      return;
    }
    *decided = true;
    socket->Abort();
    StartTcpHairpin();
  });
}

void NatCheckClient::StartTcpHairpin() {
  if (!config_.test_tcp_hairpin) {
    Finish();
    return;
  }
  report_.tcp_hairpin_tested = true;
  tcp_hairpin_socket_ = host_->tcp().CreateSocket();
  TcpSocket* socket = tcp_hairpin_socket_;
  socket->SetDataCallback([this, socket](const Bytes& data) {
    for (const Bytes& body : tcp_hairpin_framer_.Append(data)) {
      auto msg = DecodeNcMessage(body);
      if (!msg) {
        host_->CountMalformedDrop();
        continue;
      }
      if (msg->type == NcMsgType::kTcpHairpinReply) {
        report_.tcp_hairpin = true;
        socket->Close();
        Finish();
      }
    }
  });
  Status status = socket->Connect(report_.tcp_public_2, [this, socket](Status result) {
    if (!result.ok()) {
      Finish();
      return;
    }
    NcMessage hello;
    hello.type = NcMsgType::kTcpHairpinHello;
    hello.session = session_;
    socket->Send(MessageFramer::Frame(EncodeNcMessage(hello)));
  });
  if (!status.ok()) {
    Finish();
    return;
  }
  host_->loop().ScheduleAfter(config_.hairpin_wait * 3, [this] {
    if (!done_ && report_.tcp_hairpin_tested && !report_.tcp_hairpin) {
      Finish();
    }
  });
}

}  // namespace natpunch
