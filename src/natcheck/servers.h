// The three NAT Check servers (§6.1, Fig. 8).
//
//   server 1: answers UDP pings and TCP hellos with the observed endpoint.
//   server 2: same, plus forwards UDP pings to server 3 and, for TCP,
//             delays its reply until server 3 reports a verdict on its
//             unsolicited inbound connection attempt.
//   server 3: probes clients — an unsolicited UDP datagram for the filter
//             test, and an unsolicited TCP connect for the §5.2 test. Per
//             the paper it waits up to five seconds before giving server 2
//             the go-ahead, then keeps the attempt alive for 20 more.

#ifndef SRC_NATCHECK_SERVERS_H_
#define SRC_NATCHECK_SERVERS_H_

#include <map>
#include <memory>

#include "src/natcheck/messages.h"
#include "src/rendezvous/messages.h"
#include "src/transport/host.h"

namespace natpunch {

struct NatCheckServerConfig {
  uint16_t port = 1234;  // UDP and TCP, on every server
  SimDuration go_ahead_delay = Seconds(5);
  SimDuration probe_linger = Seconds(20);
  // Server 2 never leaves the client hanging if server 3's verdict is lost.
  SimDuration verdict_timeout = Seconds(8);
};

class NatCheckServers {
 public:
  NatCheckServers(Host* server1, Host* server2, Host* server3,
                  NatCheckServerConfig config = NatCheckServerConfig{});

  Status Start();

  Endpoint udp_endpoint(int index) const;  // index 1..3
  Endpoint tcp_endpoint(int index) const;

  struct Stats {
    uint64_t udp_pings = 0;
    uint64_t udp_probes_sent = 0;
    uint64_t tcp_hellos = 0;
    uint64_t tcp_probe_connected = 0;
    uint64_t tcp_probe_refused = 0;
    uint64_t tcp_probe_in_progress = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct TcpConn {
    TcpSocket* socket = nullptr;
    MessageFramer framer;
    int server_index = 0;
    uint64_t session = 0;
    EventLoop::EventId verdict_timer = EventLoop::kInvalidEventId;
    bool replied = false;
  };

  void StartUdp(Host* host, int index);
  void StartTcp(Host* host, int index);
  void OnUdp(int index, const Endpoint& from, const Payload& payload);
  void OnTcpMessage(TcpConn* conn, const NcMessage& msg);
  void Server3UdpControl(const NcMessage& msg);
  void Server3TcpProbe(uint64_t session, const Endpoint& client);
  void SendVerdict(uint64_t session, NcProbeVerdict verdict);
  void ReplyTcp(TcpConn* conn, NcProbeVerdict verdict);

  Host* hosts_[3];
  NatCheckServerConfig config_;
  UdpSocket* udp_[3] = {nullptr, nullptr, nullptr};
  std::vector<std::unique_ptr<TcpConn>> tcp_conns_;
  // server 2: sessions waiting for server 3's go-ahead.
  std::map<uint64_t, TcpConn*> waiting_go_ahead_;
  Stats stats_;
};

}  // namespace natpunch

#endif  // SRC_NATCHECK_SERVERS_H_
