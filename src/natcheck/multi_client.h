// The multi-client NAT Check extension the paper planned (§6.3):
//
//   "NAT implementations exist that consistently translate the client's
//    private endpoint as long as only one client behind the NAT is using a
//    particular private port number, but switch to symmetric NAT or even
//    worse behaviors if two or more clients ... communicate through the NAT
//    from the same private port number. NAT Check could only detect this
//    behavior by requiring the user to run it on two or more client hosts
//    behind the NAT at the same time. ... we plan to implement this testing
//    functionality as an option in a future version."
//
// This is that option: client 1 runs the UDP consistency test alone, then
// client 2 (same private port, different host) joins, then client 1
// re-tests under contention. A contention-switching NAT is consistent solo
// and inconsistent contended — invisible to the single-client tool.

#ifndef SRC_NATCHECK_MULTI_CLIENT_H_
#define SRC_NATCHECK_MULTI_CLIENT_H_

#include <functional>
#include <memory>

#include "src/natcheck/messages.h"
#include "src/transport/host.h"
#include "src/util/result.h"

namespace natpunch {

struct MultiClientReport {
  // Phase 1: client 1 alone.
  bool solo_consistent = false;
  Endpoint solo_public;
  // Phase 2: client 2 from the same private port on another host.
  bool client2_consistent = false;
  // Phase 3: client 1 again, now under port contention.
  bool contended_consistent = false;
  Endpoint contended_public_1;
  Endpoint contended_public_2;

  // The §6.3 misbehavior signature.
  bool SwitchesUnderContention() const { return solo_consistent && !contended_consistent; }
  std::string ToString() const;
};

class MultiClientNatCheck {
 public:
  struct Config {
    uint16_t shared_private_port = 4321;
    SimDuration reply_timeout = Millis(800);
    int retries = 4;
  };

  // client1/client2: two hosts behind the NAT under test; udp1/udp2: the
  // NAT Check servers' UDP endpoints.
  MultiClientNatCheck(Host* client1, Host* client2, Endpoint udp1, Endpoint udp2,
                      Config config);
  MultiClientNatCheck(Host* client1, Host* client2, Endpoint udp1, Endpoint udp2)
      : MultiClientNatCheck(client1, client2, udp1, udp2, Config{}) {}

  void Run(std::function<void(Result<MultiClientReport>)> cb);

 private:
  struct Probe;

  // Ping server1 then server2 from `socket`; yields (e1, e2) or an error.
  void ConsistencyProbe(UdpSocket* socket,
                        std::function<void(Result<std::pair<Endpoint, Endpoint>>)> cb);
  void SendStage(const std::shared_ptr<Probe>& probe);
  void Advance();

  Host* client1_;
  Host* client2_;
  Endpoint udp1_;
  Endpoint udp2_;
  Config config_;
  std::function<void(Result<MultiClientReport>)> cb_;
  MultiClientReport report_;
  int phase_ = 0;
  UdpSocket* socket1_ = nullptr;
  UdpSocket* socket2_ = nullptr;
  std::shared_ptr<Probe> active_probe_;
};

}  // namespace natpunch

#endif  // SRC_NATCHECK_MULTI_CLIENT_H_
