#include "src/natcheck/servers.h"

#include "src/util/logging.h"

namespace natpunch {

NatCheckServers::NatCheckServers(Host* server1, Host* server2, Host* server3,
                                 NatCheckServerConfig config)
    : config_(config) {
  hosts_[0] = server1;
  hosts_[1] = server2;
  hosts_[2] = server3;
}

Endpoint NatCheckServers::udp_endpoint(int index) const {
  return Endpoint(hosts_[index - 1]->primary_address(), config_.port);
}

Endpoint NatCheckServers::tcp_endpoint(int index) const {
  return Endpoint(hosts_[index - 1]->primary_address(), config_.port);
}

Status NatCheckServers::Start() {
  for (int i = 0; i < 3; ++i) {
    auto sock = hosts_[i]->udp().Bind(config_.port);
    if (!sock.ok()) {
      return sock.status();
    }
    udp_[i] = *sock;
    const int index = i + 1;
    udp_[i]->SetReceiveCallback([this, index](const Endpoint& from, const Payload& payload) {
      OnUdp(index, from, payload);
    });
  }
  // TCP listeners on servers 1 and 2 (server 3 only dials out; the absence
  // of a listener is what makes the client's connect fail after a refused
  // probe, matching the paper's described outcome).
  for (int i = 0; i < 2; ++i) {
    TcpSocket* listener = hosts_[i]->tcp().CreateSocket();
    listener->SetReuseAddr(true);
    Status status = listener->Bind(config_.port);
    if (!status.ok()) {
      return status;
    }
    const int index = i + 1;
    status = listener->Listen([this, index](TcpSocket* accepted) {
      tcp_conns_.push_back(std::make_unique<TcpConn>());
      TcpConn* conn = tcp_conns_.back().get();
      conn->socket = accepted;
      conn->server_index = index;
      accepted->SetDataCallback([this, conn](const Bytes& data) {
        for (const Bytes& body : conn->framer.Append(data)) {
          auto msg = DecodeNcMessage(body);
          if (!msg) {
            hosts_[conn->server_index - 1]->CountMalformedDrop();
            continue;
          }
          OnTcpMessage(conn, *msg);
        }
      });
    });
    if (!status.ok()) {
      return status;
    }
  }
  return Status::Ok();
}

void NatCheckServers::OnUdp(int index, const Endpoint& from, const Payload& payload) {
  auto msg = DecodeNcMessage(payload);
  if (!msg) {
    hosts_[index - 1]->CountMalformedDrop();
    return;
  }
  switch (msg->type) {
    case NcMsgType::kUdpPing: {
      ++stats_.udp_pings;
      NcMessage pong;
      pong.type = NcMsgType::kUdpPong;
      pong.session = msg->session;
      pong.server_index = static_cast<uint8_t>(index);
      pong.observed = from;
      udp_[index - 1]->SendTo(from, EncodeNcMessage(pong));
      if (index == 2) {
        // §6.1.1: server 2 forwards the request to server 3.
        NcMessage forward;
        forward.type = NcMsgType::kUdpForward;
        forward.session = msg->session;
        forward.observed = from;
        udp_[1]->SendTo(udp_endpoint(3), EncodeNcMessage(forward));
      }
      return;
    }
    case NcMsgType::kUdpForward:
    case NcMsgType::kTcpForward:
    case NcMsgType::kTcpGoAhead:
      if (index == 3 || msg->type == NcMsgType::kTcpGoAhead) {
        Server3UdpControl(*msg);
      }
      return;
    default:
      return;
  }
}

void NatCheckServers::Server3UdpControl(const NcMessage& msg) {
  switch (msg.type) {
    case NcMsgType::kUdpForward: {
      // Unsolicited reply from server 3's own address (filter test).
      ++stats_.udp_probes_sent;
      NcMessage probe;
      probe.type = NcMsgType::kUdpProbe;
      probe.session = msg.session;
      probe.server_index = 3;
      probe.observed = msg.observed;
      udp_[2]->SendTo(msg.observed, EncodeNcMessage(probe));
      return;
    }
    case NcMsgType::kTcpForward:
      Server3TcpProbe(msg.session, msg.observed);
      return;
    case NcMsgType::kTcpGoAhead: {
      // We are server 2 receiving server 3's verdict.
      auto it = waiting_go_ahead_.find(msg.session);
      if (it == waiting_go_ahead_.end()) {
        return;
      }
      TcpConn* conn = it->second;
      waiting_go_ahead_.erase(it);
      switch (msg.verdict) {
        case NcProbeVerdict::kConnected:
          ++stats_.tcp_probe_connected;
          break;
        case NcProbeVerdict::kRefused:
          ++stats_.tcp_probe_refused;
          break;
        case NcProbeVerdict::kInProgress:
          ++stats_.tcp_probe_in_progress;
          break;
      }
      ReplyTcp(conn, msg.verdict);
      return;
    }
    default:
      return;
  }
}

void NatCheckServers::Server3TcpProbe(uint64_t session, const Endpoint& client) {
  // Unsolicited inbound connection attempt from server 3's well-known port.
  Host* s3 = hosts_[2];
  TcpSocket* probe = s3->tcp().CreateSocket();
  probe->SetReuseAddr(true);
  if (!probe->Bind(config_.port).ok()) {
    SendVerdict(session, NcProbeVerdict::kRefused);
    return;
  }
  auto verdict_sent = std::make_shared<bool>(false);
  Status status = probe->Connect(client, [this, session, verdict_sent, probe](Status result) {
    if (result.ok()) {
      // The SYN went straight through: the NAT does not filter unsolicited
      // inbound TCP (or the client punched and we crossed — either way the
      // client sees a connection). Keep the socket open briefly; the
      // client closes it.
      if (!*verdict_sent) {
        *verdict_sent = true;
        SendVerdict(session, NcProbeVerdict::kConnected);
      }
      return;
    }
    if (result.code() == ErrorCode::kConnectionRefused ||
        result.code() == ErrorCode::kConnectionReset ||
        result.code() == ErrorCode::kHostUnreachable) {
      if (!*verdict_sent) {
        *verdict_sent = true;
        SendVerdict(session, NcProbeVerdict::kRefused);
      }
      probe->Abort();
    }
  });
  if (!status.ok()) {
    if (!*verdict_sent) {
      *verdict_sent = true;
      SendVerdict(session, NcProbeVerdict::kRefused);
    }
    return;
  }
  // §6.1.2: after five seconds still "in progress" -> go-ahead, keep trying
  // for up to 20 more seconds.
  s3->loop().ScheduleAfter(config_.go_ahead_delay, [this, session, probe, verdict_sent] {
    if (!*verdict_sent) {
      *verdict_sent = true;
      SendVerdict(session, NcProbeVerdict::kInProgress);
    }
    (void)probe;
  });
  s3->loop().ScheduleAfter(config_.go_ahead_delay + config_.probe_linger, [probe] {
    if (probe->state() == TcpState::kSynSent) {
      probe->Abort();
    }
  });
}

void NatCheckServers::SendVerdict(uint64_t session, NcProbeVerdict verdict) {
  NcMessage go_ahead;
  go_ahead.type = NcMsgType::kTcpGoAhead;
  go_ahead.session = session;
  go_ahead.server_index = 3;
  go_ahead.verdict = verdict;
  udp_[2]->SendTo(udp_endpoint(2), EncodeNcMessage(go_ahead));
}

void NatCheckServers::ReplyTcp(TcpConn* conn, NcProbeVerdict verdict) {
  if (conn->replied) {
    return;
  }
  conn->replied = true;
  if (conn->verdict_timer != EventLoop::kInvalidEventId) {
    hosts_[1]->loop().Cancel(conn->verdict_timer);
    conn->verdict_timer = EventLoop::kInvalidEventId;
  }
  NcMessage reply;
  reply.type = NcMsgType::kTcpReply;
  reply.session = conn->session;
  reply.server_index = static_cast<uint8_t>(conn->server_index);
  reply.observed = conn->socket->remote_endpoint();
  reply.verdict = verdict;
  conn->socket->Send(MessageFramer::Frame(EncodeNcMessage(reply)));
}

void NatCheckServers::OnTcpMessage(TcpConn* conn, const NcMessage& msg) {
  switch (msg.type) {
    case NcMsgType::kTcpHello: {
      ++stats_.tcp_hellos;
      conn->session = msg.session;
      if (conn->server_index == 1) {
        ReplyTcp(conn, NcProbeVerdict::kInProgress);
        return;
      }
      // Server 2: kick server 3, reply only after its verdict (that delay
      // is load-bearing: it gives the unsolicited SYN time to arrive
      // before the client starts its own outbound connect).
      waiting_go_ahead_[msg.session] = conn;
      NcMessage forward;
      forward.type = NcMsgType::kTcpForward;
      forward.session = msg.session;
      forward.observed = conn->socket->remote_endpoint();
      udp_[1]->SendTo(udp_endpoint(3), EncodeNcMessage(forward));
      conn->verdict_timer =
          hosts_[1]->loop().ScheduleAfter(config_.verdict_timeout, [this, conn] {
            conn->verdict_timer = EventLoop::kInvalidEventId;
            waiting_go_ahead_.erase(conn->session);
            ReplyTcp(conn, NcProbeVerdict::kInProgress);
          });
      return;
    }
    case NcMsgType::kTcpHairpinHello: {
      NcMessage reply;
      reply.type = NcMsgType::kTcpHairpinReply;
      reply.session = msg.session;
      reply.server_index = static_cast<uint8_t>(conn->server_index);
      conn->socket->Send(MessageFramer::Frame(EncodeNcMessage(reply)));
      return;
    }
    default:
      return;
  }
}

}  // namespace natpunch
