// The outcome of one NAT Check run — the data underlying Table 1.

#ifndef SRC_NATCHECK_REPORT_H_
#define SRC_NATCHECK_REPORT_H_

#include <string>

#include "src/netsim/address.h"

namespace natpunch {

struct NatCheckReport {
  // --- UDP test (§6.1.1) ---
  bool udp_reachable = false;  // both servers answered
  Endpoint udp_public_1;
  Endpoint udp_public_2;
  // Same public endpoint toward both servers: the §5.1 precondition.
  bool udp_consistent = false;
  // Server 3's unsolicited reply never arrived (per-session firewall).
  bool udp_filters_unsolicited = true;
  bool udp_hairpin_tested = false;
  bool udp_hairpin = false;

  // --- TCP test (§6.1.2) ---
  bool tcp_tested = false;
  bool tcp_reachable = false;
  Endpoint tcp_public_1;
  Endpoint tcp_public_2;
  bool tcp_consistent = false;
  // The unsolicited SYN reached our listen socket (NAT does not filter).
  bool tcp_unsolicited_passed = false;
  // Actively rejected: server 3 drew an RST, and/or our follow-up connect
  // to server 3 was refused (§5.2 bad behavior).
  bool tcp_rejects_unsolicited = false;
  // Our outbound connect to server 3 completed (the simultaneous open).
  bool tcp_punch_connect_ok = false;
  bool tcp_hairpin_tested = false;
  bool tcp_hairpin = false;

  // --- Device health (filled by the fleet harness, not the client) ---
  // Reboots the device under test suffered during the run (chaos engine)
  // and translation-table entries reclaimed by idle expiry.
  uint64_t nat_reboots = 0;
  uint64_t nat_expired_mappings = 0;

  // Paper §6.2 classification.
  bool UdpHolePunchCompatible() const { return udp_reachable && udp_consistent; }
  bool TcpHolePunchCompatible() const {
    return tcp_reachable && tcp_consistent && !tcp_rejects_unsolicited;
  }

  std::string ToString() const;
};

}  // namespace natpunch

#endif  // SRC_NATCHECK_REPORT_H_
