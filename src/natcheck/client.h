// NatCheckClient: the client side of the §6.1 test method.
//
// Runs, in order: the UDP consistency/filter test against servers 1 and 2,
// the UDP hairpin probe from a second socket, the TCP consistency test, the
// staged simultaneous open with server 3, and the TCP hairpin probe. All
// verdicts are derived from what the *client* can observe, like the real
// tool (the servers' stats are only used by tests for corroboration).

#ifndef SRC_NATCHECK_CLIENT_H_
#define SRC_NATCHECK_CLIENT_H_

#include <functional>
#include <memory>

#include "src/natcheck/messages.h"
#include "src/natcheck/report.h"
#include "src/rendezvous/messages.h"
#include "src/transport/host.h"

namespace natpunch {

struct NatCheckClientConfig {
  SimDuration udp_reply_timeout = Millis(800);
  int udp_retries = 4;
  // After the pongs, how long to keep listening for server 3's unsolicited
  // probe before declaring the NAT "filters unsolicited traffic".
  SimDuration unsolicited_wait = Seconds(2);
  SimDuration hairpin_wait = Seconds(2);
  SimDuration tcp_connect_timeout = Seconds(15);
  SimDuration overall_timeout = Seconds(60);
  // Later NAT Check versions added these (§6.2 explains the differing
  // denominators in Table 1); the fleet harness toggles them per report.
  bool test_udp_hairpin = true;
  bool test_tcp = true;
  bool test_tcp_hairpin = true;
};

struct NatCheckServerAddrs {
  Endpoint udp1;
  Endpoint udp2;
  Endpoint tcp1;
  Endpoint tcp2;
  Endpoint tcp3;
};

class NatCheckClient {
 public:
  NatCheckClient(Host* host, NatCheckServerAddrs servers,
                 NatCheckClientConfig config = NatCheckClientConfig{});

  // Run the full check from `local_port` (used for both the UDP socket and
  // the TCP listen/connect port). One run per client instance.
  void Run(uint16_t local_port, std::function<void(Result<NatCheckReport>)> cb);

 private:
  struct AcceptedConn {
    TcpSocket* socket = nullptr;
    MessageFramer framer;
  };

  void OnUdpReceive(const Endpoint& from, const Payload& payload);
  void SendUdpPing(int server_index);
  void StartUdpHairpin();
  void StartTcpPhase();
  void TcpHelloTo(int server_index);
  void OnTcpReply(const NcMessage& msg);
  void StartServer3Connect();
  void StartTcpHairpin();
  void Finish();
  void Fail(const Status& status);

  Host* host_;
  NatCheckServerAddrs servers_;
  NatCheckClientConfig config_;
  uint16_t local_port_ = 0;
  uint64_t session_ = 0;
  std::function<void(Result<NatCheckReport>)> cb_;
  NatCheckReport report_;
  bool done_ = false;

  // UDP state.
  UdpSocket* udp_socket_ = nullptr;
  UdpSocket* udp_hairpin_socket_ = nullptr;
  int udp_phase_ = 0;  // 1 = pinging s1, 2 = pinging s2
  int udp_attempts_ = 0;
  EventLoop::EventId udp_timer_ = EventLoop::kInvalidEventId;
  EventLoop::EventId deadline_timer_ = EventLoop::kInvalidEventId;

  // TCP state.
  TcpSocket* tcp_listener_ = nullptr;
  TcpSocket* tcp_conn_[2] = {nullptr, nullptr};  // to servers 1 and 2
  MessageFramer tcp_framer_[2];
  TcpSocket* tcp_hairpin_socket_ = nullptr;
  MessageFramer tcp_hairpin_framer_;
  std::vector<std::unique_ptr<AcceptedConn>> accepted_;
};

}  // namespace natpunch

#endif  // SRC_NATCHECK_CLIENT_H_
