#include "src/natcheck/multi_client.h"

#include "src/util/logging.h"

namespace natpunch {

std::string MultiClientReport::ToString() const {
  std::string out = "MultiClientReport{solo=";
  out += solo_consistent ? "consistent" : "inconsistent";
  out += ", client2=";
  out += client2_consistent ? "consistent" : "inconsistent";
  out += ", contended=";
  out += contended_consistent ? "consistent" : "inconsistent";
  out += SwitchesUnderContention() ? " => SWITCHES UNDER CONTENTION}" : "}";
  return out;
}

// One two-server consistency probe in flight.
struct MultiClientNatCheck::Probe {
  UdpSocket* socket = nullptr;
  uint64_t txn = 0;
  int stage = 0;  // 0: waiting on server1, 1: waiting on server2
  int attempts = 0;
  Endpoint e1;
  EventLoop::EventId timer = EventLoop::kInvalidEventId;
  std::function<void(Result<std::pair<Endpoint, Endpoint>>)> cb;
  bool done = false;
};

MultiClientNatCheck::MultiClientNatCheck(Host* client1, Host* client2, Endpoint udp1,
                                         Endpoint udp2, Config config)
    : client1_(client1), client2_(client2), udp1_(udp1), udp2_(udp2), config_(config) {}

void MultiClientNatCheck::ConsistencyProbe(
    UdpSocket* socket, std::function<void(Result<std::pair<Endpoint, Endpoint>>)> cb) {
  auto probe = std::make_shared<Probe>();
  probe->socket = socket;
  probe->cb = std::move(cb);
  active_probe_ = probe;
  Host* host = socket->host();

  // The receive path: pongs matching the current transaction advance us.
  socket->SetReceiveCallback([this, probe, host](const Endpoint&, const Payload& payload) {
    if (probe->done) {
      return;
    }
    auto msg = DecodeNcMessage(payload);
    if (!msg) {
      host->CountMalformedDrop();
      return;
    }
    if (msg->type != NcMsgType::kUdpPong || msg->session != probe->txn) {
      return;
    }
    if (probe->timer != EventLoop::kInvalidEventId) {
      host->loop().Cancel(probe->timer);
      probe->timer = EventLoop::kInvalidEventId;
    }
    if (probe->stage == 0) {
      probe->e1 = msg->observed;
      probe->stage = 1;
      probe->attempts = 0;
    } else {
      probe->done = true;
      probe->cb(std::make_pair(probe->e1, msg->observed));
      return;
    }
    // Fall through to send the next stage's ping.
    SendStage(probe);
  });
  SendStage(probe);
}

void MultiClientNatCheck::SendStage(const std::shared_ptr<Probe>& probe) {
  if (probe->done) {
    return;
  }
  Host* host = probe->socket->host();
  probe->txn = host->rng().NextU64();
  NcMessage ping;
  ping.type = NcMsgType::kUdpPing;
  ping.session = probe->txn;
  probe->socket->SendTo(probe->stage == 0 ? udp1_ : udp2_, EncodeNcMessage(ping));
  ++probe->attempts;
  probe->timer = host->loop().ScheduleAfter(config_.reply_timeout, [this, probe, host] {
    probe->timer = EventLoop::kInvalidEventId;
    if (probe->done) {
      return;
    }
    if (probe->attempts < config_.retries) {
      SendStage(probe);
      return;
    }
    probe->done = true;
    probe->cb(Status(ErrorCode::kTimedOut, "consistency probe timed out"));
    (void)host;
  });
}

void MultiClientNatCheck::Run(std::function<void(Result<MultiClientReport>)> cb) {
  cb_ = std::move(cb);
  auto bound1 = client1_->udp().Bind(config_.shared_private_port);
  if (!bound1.ok()) {
    cb_(bound1.status());
    return;
  }
  socket1_ = *bound1;
  phase_ = 1;
  Advance();
}

void MultiClientNatCheck::Advance() {
  switch (phase_) {
    case 1:
      // Phase 1: client 1 alone.
      ConsistencyProbe(socket1_, [this](Result<std::pair<Endpoint, Endpoint>> r) {
        if (!r.ok()) {
          cb_(r.status());
          return;
        }
        report_.solo_consistent = r->first == r->second;
        report_.solo_public = r->first;
        phase_ = 2;
        Advance();
      });
      return;
    case 2: {
      // Phase 2: client 2 joins from the same private port.
      auto bound2 = client2_->udp().Bind(config_.shared_private_port);
      if (!bound2.ok()) {
        cb_(bound2.status());
        return;
      }
      socket2_ = *bound2;
      ConsistencyProbe(socket2_, [this](Result<std::pair<Endpoint, Endpoint>> r) {
        if (!r.ok()) {
          cb_(r.status());
          return;
        }
        report_.client2_consistent = r->first == r->second;
        phase_ = 3;
        Advance();
      });
      return;
    }
    case 3:
      // Phase 3: client 1 re-tests under contention, same socket.
      ConsistencyProbe(socket1_, [this](Result<std::pair<Endpoint, Endpoint>> r) {
        if (!r.ok()) {
          cb_(r.status());
          return;
        }
        report_.contended_public_1 = r->first;
        report_.contended_public_2 = r->second;
        report_.contended_consistent = r->first == r->second;
        cb_(report_);
      });
      return;
    default:
      return;
  }
}

}  // namespace natpunch
