// NAT Check wire protocol (§6.1).
//
// Faithful to the paper's test method: the client talks to three
// well-known servers at different global IP addresses. Server 2 forwards
// UDP requests to server 3 (whose reply tests unsolicited-traffic
// filtering) and coordinates the TCP go-ahead dance that stages a
// simultaneous open between the client and server 3. Server-to-server
// coordination runs over UDP.
//
// Deliberately reproduced limitation (§6.3): like the original tool, these
// messages do NOT obfuscate embedded IP addresses, so a payload-rewriting
// NAT corrupts them — the fleet benchmark can quantify that artifact.

#ifndef SRC_NATCHECK_MESSAGES_H_
#define SRC_NATCHECK_MESSAGES_H_

#include <cstdint>
#include <optional>

#include "src/netsim/address.h"
#include "src/util/bytes.h"

namespace natpunch {

enum class NcMsgType : uint8_t {
  kUdpPing = 1,       // client -> s1/s2: observe me
  kUdpPong = 2,       // server -> client: your endpoint as I see it
  kUdpForward = 3,    // s2 -> s3: probe this client endpoint
  kUdpProbe = 4,      // s3 -> client: unsolicited datagram (filter test)
  kUdpHairpin = 5,    // client second socket -> client first socket, via NAT
  kTcpHello = 6,      // client -> s1/s2 over the stream
  kTcpReply = 7,      // server -> client: observed endpoint (+ s3 verdict on s2)
  kTcpForward = 8,    // s2 -> s3 (UDP): connect to this client endpoint
  kTcpGoAhead = 9,    // s3 -> s2 (UDP): verdict on the inbound attempt
  kTcpHairpinHello = 10,  // client secondary port -> own public endpoint
  kTcpHairpinReply = 11,
};

// Verdict carried in kTcpGoAhead / relayed inside kTcpReply from server 2.
enum class NcProbeVerdict : uint8_t {
  kInProgress = 0,  // still retransmitting after the 5 s window (NAT drops)
  kConnected = 1,   // the unsolicited SYN went through (NAT does not filter)
  kRefused = 2,     // RST came back (§5.2 misbehavior)
};

struct NcMessage {
  NcMsgType type = NcMsgType::kUdpPing;
  uint64_t session = 0;
  uint8_t server_index = 0;        // which server is speaking (1..3)
  Endpoint observed;               // client endpoint as seen by the server
  NcProbeVerdict verdict = NcProbeVerdict::kInProgress;
};

Bytes EncodeNcMessage(const NcMessage& msg);
std::optional<NcMessage> DecodeNcMessage(ConstByteSpan data);

}  // namespace natpunch

#endif  // SRC_NATCHECK_MESSAGES_H_
