#include "src/scenario/scenario.h"

namespace natpunch {

Scenario::Scenario(Options options) : options_(options), net_(options.seed) {
  if (options_.metrics) {
    net_.EnableMetrics();
  }
  BuildInternet();
}

void Scenario::Reset(Options options) {
  options_ = options;
  net_.Reset(options.seed);
  if (options_.metrics) {
    net_.EnableMetrics();
  }
  BuildInternet();
}

void Scenario::BuildInternet() {
  LanConfig config;
  config.latency = options_.internet_latency;
  config.loss = options_.internet_loss;
  config.is_global = true;
  internet_ = net_.CreateLan("internet", config);
}

Host* Scenario::AddPublicHost(const std::string& name, Ipv4Address ip) {
  Host* host = net_.Create<Host>(name, options_.host_config);
  const int iface = host->AttachTo(internet_, ip, 8);
  host->AddRoute(Ipv4Prefix(Ipv4Address(0), 0), iface);  // everything is on-link
  return host;
}

NattedSite Scenario::AddNattedSite(const std::string& name, const NatConfig& config,
                                   Ipv4Address public_ip, Ipv4Prefix private_prefix,
                                   int host_count) {
  NattedSite site;
  LanConfig lan_config;
  lan_config.latency = options_.lan_latency;
  site.lan = net_.CreateLan(name + "-lan", lan_config);

  site.nat = net_.Create<NatDevice>(name + "-nat", config);
  const Ipv4Address inside_ip(private_prefix.base.bits() + 1);
  site.nat->AttachInside(site.lan, inside_ip, private_prefix.length);
  site.nat->AttachOutside(internet_, public_ip, 8);
  site.nat->SetUpstream();  // on-link next hops on the global realm

  for (int i = 0; i < host_count; ++i) {
    const Ipv4Address host_ip(private_prefix.base.bits() + 2 + static_cast<uint32_t>(i));
    site.hosts.push_back(AddHostToSiteInternal(&site, name + "-h" + std::to_string(i), host_ip,
                                               private_prefix.length, inside_ip));
  }
  return site;
}

NattedSite Scenario::AddNattedSiteBehind(const std::string& name, const NatConfig& config,
                                         Lan* parent_lan, Ipv4Address upstream_ip,
                                         Ipv4Address gateway, Ipv4Prefix private_prefix,
                                         int host_count) {
  NattedSite site;
  LanConfig lan_config;
  lan_config.latency = options_.lan_latency;
  site.lan = net_.CreateLan(name + "-lan", lan_config);

  site.nat = net_.Create<NatDevice>(name + "-nat", config);
  const Ipv4Address inside_ip(private_prefix.base.bits() + 1);
  site.nat->AttachInside(site.lan, inside_ip, private_prefix.length);
  site.nat->AttachOutside(parent_lan, upstream_ip, 24);
  site.nat->SetUpstream(gateway);

  for (int i = 0; i < host_count; ++i) {
    const Ipv4Address host_ip(private_prefix.base.bits() + 2 + static_cast<uint32_t>(i));
    site.hosts.push_back(AddHostToSiteInternal(&site, name + "-h" + std::to_string(i), host_ip,
                                               private_prefix.length, inside_ip));
  }
  return site;
}

Host* Scenario::AddHostToSite(NattedSite* site, const std::string& name, Ipv4Address ip) {
  // Derive prefix length and gateway from the NAT's inside interface.
  const Ipv4Address gateway = site->nat->iface_ip(0);
  Host* host = AddHostToSiteInternal(site, name, ip, 24, gateway);
  site->hosts.push_back(host);
  return host;
}

Host* Scenario::AddHostToSiteInternal(NattedSite* site, const std::string& name, Ipv4Address ip,
                                      int prefix_length, Ipv4Address gateway) {
  Host* host = net_.Create<Host>(name, options_.host_config);
  const int iface = host->AttachTo(site->lan, ip, prefix_length);
  host->AddDefaultRoute(iface, gateway);
  return host;
}

Fig5Topology MakeFig5(const NatConfig& nat_a, const NatConfig& nat_b,
                      Scenario::Options options) {
  Fig5Topology topo;
  topo.scenario = std::make_unique<Scenario>(options);
  topo.server = topo.scenario->AddPublicHost("S", ServerIp());
  topo.site_a = topo.scenario->AddNattedSite(
      "A", nat_a, NatAIp(), Ipv4Prefix(Ipv4Address::FromOctets(10, 0, 0, 0), 24), 1);
  topo.site_b = topo.scenario->AddNattedSite(
      "B", nat_b, NatBIp(), Ipv4Prefix(Ipv4Address::FromOctets(10, 1, 1, 0), 24), 2);
  topo.a = topo.site_a.host(0);  // 10.0.0.2 (the paper uses 10.0.0.1; the
                                 // NAT inside interface takes .1 here)
  topo.b = topo.site_b.host(1);  // 10.1.1.3, matching the paper
  return topo;
}

Fig4Topology MakeFig4(const NatConfig& nat, Scenario::Options options) {
  Fig4Topology topo;
  topo.scenario = std::make_unique<Scenario>(options);
  topo.server = topo.scenario->AddPublicHost("S", ServerIp());
  topo.site = topo.scenario->AddNattedSite(
      "N", nat, NatAIp(), Ipv4Prefix(Ipv4Address::FromOctets(10, 0, 0, 0), 24), 2);
  topo.a = topo.site.host(0);
  topo.b = topo.site.host(1);
  return topo;
}

Fig6Topology MakeFig6(const NatConfig& nat_c, const NatConfig& nat_a, const NatConfig& nat_b,
                      Scenario::Options options) {
  Fig6Topology topo;
  topo.scenario = std::make_unique<Scenario>(options);
  topo.server = topo.scenario->AddPublicHost("S", ServerIp());
  // NAT C fronts the ISP realm 10.0.1.0/24 (paper's addressing).
  topo.isp = topo.scenario->AddNattedSite(
      "C", nat_c, NatAIp(), Ipv4Prefix(Ipv4Address::FromOctets(10, 0, 1, 0), 24), 0);
  const Ipv4Address isp_gateway = topo.isp.nat->iface_ip(0);  // 10.0.1.1
  topo.site_a = topo.scenario->AddNattedSiteBehind(
      "A", nat_a, topo.isp.lan, Ipv4Address::FromOctets(10, 0, 1, 11), isp_gateway,
      Ipv4Prefix(Ipv4Address::FromOctets(10, 0, 0, 0), 24), 1);
  topo.site_b = topo.scenario->AddNattedSiteBehind(
      "B", nat_b, topo.isp.lan, Ipv4Address::FromOctets(10, 0, 1, 12), isp_gateway,
      Ipv4Prefix(Ipv4Address::FromOctets(10, 1, 1, 0), 24), 1);
  topo.a = topo.site_a.host(0);
  topo.b = topo.site_b.host(0);
  return topo;
}

}  // namespace natpunch
