// Canned topologies for tests, benchmarks, and examples.
//
// Scenario wraps a Network with helpers for the paper's figures: a global
// "internet" realm, public hosts (the servers), and NATted sites (a private
// LAN + NAT + hosts). The Fig. 4/5/6 builders reproduce the paper's running
// addresses exactly (S = 18.181.0.31:1234, NAT A = 155.99.25.11,
// NAT B = 138.76.29.7, A = 10.0.0.1:4321, B = 10.1.1.3:4321) so traces read
// like the paper.

#ifndef SRC_SCENARIO_SCENARIO_H_
#define SRC_SCENARIO_SCENARIO_H_

#include <memory>
#include <string>
#include <vector>

#include "src/nat/nat_device.h"
#include "src/netsim/network.h"
#include "src/transport/host.h"

namespace natpunch {

struct NattedSite {
  Lan* lan = nullptr;
  NatDevice* nat = nullptr;
  std::vector<Host*> hosts;

  Host* host(size_t i = 0) const { return hosts[i]; }
};

class Scenario {
 public:
  struct Options {
    uint64_t seed = 1;
    SimDuration internet_latency = Millis(20);
    SimDuration lan_latency = Millis(1);
    double internet_loss = 0.0;
    HostConfig host_config;
    // Create the Network's metrics registry before any node exists, so
    // every instrumented component (event loop, NATs, TCP stacks, punchers)
    // registers and records. Off by default: recording is cheap but the
    // default stays zero-overhead.
    bool metrics = false;
  };

  explicit Scenario(Options options);
  Scenario() : Scenario(Options{}) {}

  // Tear down the whole topology and rebuild the empty internet realm, as if
  // this Scenario had just been constructed with `options`. The underlying
  // Network keeps its warmed-up event-loop and trace capacities
  // (Network::Reset), so a reused Scenario runs the next simulation
  // bit-identically to a fresh one without the per-run allocation storm.
  // All Lan*/Node* pointers previously handed out are invalidated.
  void Reset(Options options);

  Network& net() { return net_; }
  Lan* internet() { return internet_; }
  const Options& options() const { return options_; }

  // A host directly on the global realm (e.g. server S).
  Host* AddPublicHost(const std::string& name, Ipv4Address ip);

  // A private LAN behind a NAT attached to the global realm.
  // Hosts get prefix.base+2, +3, ... with the NAT inside at prefix.base+1.
  NattedSite AddNattedSite(const std::string& name, const NatConfig& config,
                           Ipv4Address public_ip, Ipv4Prefix private_prefix, int host_count);

  // Same, but the NAT's "public" side attaches to an existing private LAN
  // (multi-level NAT, Fig. 6). `upstream_ip` is this NAT's address on the
  // parent LAN; `gateway` is the parent NAT's inside address.
  NattedSite AddNattedSiteBehind(const std::string& name, const NatConfig& config,
                                 Lan* parent_lan, Ipv4Address upstream_ip, Ipv4Address gateway,
                                 Ipv4Prefix private_prefix, int host_count);

  // Add an extra host to an existing site (e.g. the "wrong host with the
  // same private address" used by the authentication tests).
  Host* AddHostToSite(NattedSite* site, const std::string& name, Ipv4Address ip);

 private:
  Host* AddHostToSiteInternal(NattedSite* site, const std::string& name, Ipv4Address ip,
                              int prefix_length, Ipv4Address gateway);
  void BuildInternet();

  Options options_;
  Network net_;
  Lan* internet_;
};

// Fig. 5 (and the TCP analogue Fig. 7): A and B behind different NATs, plus
// server S. Fields are the paper's example addresses.
struct Fig5Topology {
  std::unique_ptr<Scenario> scenario;
  Host* server = nullptr;  // 18.181.0.31
  NattedSite site_a;       // NAT 155.99.25.11, host A 10.0.0.1
  NattedSite site_b;       // NAT 138.76.29.7, host B 10.1.1.3
  Host* a = nullptr;
  Host* b = nullptr;
};
Fig5Topology MakeFig5(const NatConfig& nat_a, const NatConfig& nat_b,
                      Scenario::Options options = Scenario::Options{});

// Fig. 4: A and B behind one common NAT.
struct Fig4Topology {
  std::unique_ptr<Scenario> scenario;
  Host* server = nullptr;
  NattedSite site;  // both clients inside
  Host* a = nullptr;
  Host* b = nullptr;
};
Fig4Topology MakeFig4(const NatConfig& nat, Scenario::Options options = Scenario::Options{});

// Fig. 6: A and B each behind their own consumer NAT, both behind a common
// ISP NAT (NAT C).
struct Fig6Topology {
  std::unique_ptr<Scenario> scenario;
  Host* server = nullptr;
  NattedSite isp;     // NAT C, 155.99.25.11; its LAN is the ISP realm
  NattedSite site_a;  // NAT A at 10.0.1.1 in the ISP realm
  NattedSite site_b;  // NAT B at 10.0.1.2 in the ISP realm
  Host* a = nullptr;
  Host* b = nullptr;
};
Fig6Topology MakeFig6(const NatConfig& nat_c, const NatConfig& nat_a, const NatConfig& nat_b,
                      Scenario::Options options = Scenario::Options{});

// Paper constants used across tests and benches.
inline Ipv4Address ServerIp() { return Ipv4Address::FromOctets(18, 181, 0, 31); }
inline constexpr uint16_t kServerPort = 1234;
inline Ipv4Address NatAIp() { return Ipv4Address::FromOctets(155, 99, 25, 11); }
inline Ipv4Address NatBIp() { return Ipv4Address::FromOctets(138, 76, 29, 7); }

}  // namespace natpunch

#endif  // SRC_SCENARIO_SCENARIO_H_
