// Open-addressing hash map for the per-packet hot paths (NAT translation
// indexes, transport demux tables).
//
// Linear probing over a power-of-two slot array, tombstone-free: Erase uses
// backward-shift deletion (Knuth 6.4 algorithm R), so probe sequences never
// accumulate dead slots and lookups stay O(1 + load) forever regardless of
// churn. Clear() destroys the elements but keeps the slot array, which is
// what lets the steady-state zero-allocation guarantee survive mapping
// churn: once a table has hit its high-water capacity, insert/erase cycles
// never touch the heap.
//
// Deliberately minimal: Find / FindOrInsert / InsertOrAssign / Erase /
// Clear. No iterators — every caller in this codebase does point lookups,
// and the NAT expiry path walks its own intrusive lists instead of the
// table (hash order must never drive observable behavior; see
// DESIGN.md "NAT datapath fast path").

#ifndef SRC_UTIL_FLAT_HASH_H_
#define SRC_UTIL_FLAT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace natpunch {

// splitmix64 finalizer. Applied on top of every user hash so that identity
// hashes (std::hash<uint16_t>) still spread across the masked low bits.
inline uint64_t HashMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class FlatHashMap {
 public:
  FlatHashMap() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return slots_.size(); }

  Value* Find(const Key& key) {
    const size_t i = ProbeFor(key);
    return i == kNpos ? nullptr : &slots_[i].value;
  }
  const Value* Find(const Key& key) const {
    const size_t i = ProbeFor(key);
    return i == kNpos ? nullptr : &slots_[i].value;
  }
  bool Contains(const Key& key) const { return ProbeFor(key) != kNpos; }

  // Value for `key`, default-constructed and inserted when absent;
  // `*inserted` reports which happened.
  Value* FindOrInsert(const Key& key, bool* inserted = nullptr) {
    MaybeGrow();
    size_t i = HomeOf(key);
    while (slots_[i].used) {
      if (slots_[i].key == key) {
        if (inserted != nullptr) {
          *inserted = false;
        }
        return &slots_[i].value;
      }
      i = (i + 1) & mask_;
    }
    slots_[i].used = true;
    slots_[i].key = key;
    ++size_;
    if (inserted != nullptr) {
      *inserted = true;
    }
    return &slots_[i].value;
  }

  template <typename V>
  Value* InsertOrAssign(const Key& key, V&& value) {
    Value* slot = FindOrInsert(key);
    *slot = std::forward<V>(value);
    return slot;
  }

  bool Erase(const Key& key) {
    size_t i = ProbeFor(key);
    if (i == kNpos) {
      return false;
    }
    // Backward-shift: pull every displaced element of the cluster whose home
    // precedes the hole back over it, leaving no tombstone.
    size_t j = i;
    for (;;) {
      j = (j + 1) & mask_;
      if (!slots_[j].used) {
        break;
      }
      const size_t home = HomeOf(slots_[j].key);
      if (((j - home) & mask_) >= ((j - i) & mask_)) {
        slots_[i].key = std::move(slots_[j].key);
        slots_[i].value = std::move(slots_[j].value);
        i = j;
      }
    }
    slots_[i].key = Key{};
    slots_[i].value = Value{};
    slots_[i].used = false;
    --size_;
    return true;
  }

  // Visit every (key, value) pair in slot (hash) order. For teardown and
  // stats sweeps only — hash order must never drive observable protocol
  // behavior (see DESIGN.md "NAT datapath fast path"). The callback must not
  // insert or erase.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    if (size_ == 0) {
      return;
    }
    for (Slot& slot : slots_) {
      if (slot.used) {
        fn(slot.key, slot.value);
      }
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (size_ == 0) {
      return;
    }
    for (const Slot& slot : slots_) {
      if (slot.used) {
        fn(slot.key, slot.value);
      }
    }
  }

  // Destroys the elements, keeps the slot array (zero-allocation reuse).
  void Clear() {
    if (size_ == 0) {
      return;
    }
    for (Slot& slot : slots_) {
      if (slot.used) {
        slot.key = Key{};
        slot.value = Value{};
        slot.used = false;
      }
    }
    size_ = 0;
  }

  void Reserve(size_t n) {
    size_t cap = kMinCapacity;
    while (cap * 3 < n * 4) {  // target load factor <= 3/4
      cap *= 2;
    }
    if (cap > slots_.size()) {
      Rehash(cap);
    }
  }

 private:
  struct Slot {
    Key key{};
    Value value{};
    bool used = false;
  };

  static constexpr size_t kNpos = static_cast<size_t>(-1);
  static constexpr size_t kMinCapacity = 16;

  size_t HomeOf(const Key& key) const {
    return static_cast<size_t>(HashMix64(static_cast<uint64_t>(Hash{}(key)))) & mask_;
  }

  // Index of `key`'s slot, or kNpos. Probing always terminates: the load
  // factor cap guarantees an empty slot.
  size_t ProbeFor(const Key& key) const {
    if (size_ == 0) {
      return kNpos;
    }
    size_t i = HomeOf(key);
    while (slots_[i].used) {
      if (slots_[i].key == key) {
        return i;
      }
      i = (i + 1) & mask_;
    }
    return kNpos;
  }

  void MaybeGrow() {
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) {
      Rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
  }

  void Rehash(size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_ = std::vector<Slot>();
    slots_.resize(new_capacity);  // not assign(): Slot is move-only when Value is
    mask_ = new_capacity - 1;
    for (Slot& slot : old) {
      if (!slot.used) {
        continue;
      }
      size_t i = HomeOf(slot.key);
      while (slots_[i].used) {
        i = (i + 1) & mask_;
      }
      slots_[i].key = std::move(slot.key);
      slots_[i].value = std::move(slot.value);
      slots_[i].used = true;
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
  size_t mask_ = 0;
};

}  // namespace natpunch

#endif  // SRC_UTIL_FLAT_HASH_H_
