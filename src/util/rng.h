// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulation (link jitter, packet loss, NAT
// port randomization, fleet sampling) draws from an explicitly seeded Rng so
// that entire experiments are reproducible bit-for-bit. The generator is
// xoshiro256**, seeded via splitmix64 so that small integer seeds produce
// well-mixed state.

#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstdint>

namespace natpunch {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform 64-bit value.
  uint64_t NextU64();

  // Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
  // avoid modulo bias.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Bernoulli trial with probability p of returning true.
  bool NextBool(double p);

  // Derive an independent child generator; used to give each simulated
  // device its own stream without coupling their consumption order.
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace natpunch

#endif  // SRC_UTIL_RNG_H_
