// Typed slab allocator for per-session hot objects.
//
// The swarm workloads keep hundreds of thousands of small, identically-sized
// objects alive at once (punched sessions, TCP connections, TURN
// allocations, rendezvous registration records). Allocating each one with
// operator new costs a malloc header and scatters them across the heap;
// freeing returns the memory to malloc but never to the pool that needs it
// next. A Slab<T> instead carves fixed-size chunks ("slabs") of N objects,
// hands slots out from an intrusive freelist, and recycles every freed slot
// in O(1) — so a steady-state population churning sessions never grows the
// pool past its high-water mark, and sizeof(T) is the whole per-object cost.
//
// Guarantees and limits:
//  * New()/Delete() are O(1); Delete returns the slot to the freelist
//    without releasing memory (a warmed pool allocates nothing).
//  * Object addresses are stable for their lifetime (slabs never move).
//  * Reset() destroys every live object and returns all slots to the
//    freelist while KEEPING the slabs, mirroring the EventLoop/Network
//    Reset idiom: a reused arena reaches steady state with zero allocation.
//  * Release() frees the slabs themselves (destructor does too).
//  * Not thread-safe; one pool per owning subsystem, like every other
//    container in this codebase.
//
// Observability: AttachMetrics wires mem.<pool>.live / .peak / .slabs
// gauges into the registry (registration may allocate once; the alloc/free
// path never does — the same rule the rest of src/obs follows). The stats()
// snapshot powers scripts/memprof.sh's per-pool breakdown.

#ifndef SRC_UTIL_SLAB_H_
#define SRC_UTIL_SLAB_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>

#include "src/obs/metrics.h"

namespace natpunch {

struct SlabStats {
  size_t live = 0;        // objects currently allocated
  size_t peak = 0;        // high-water live count
  size_t slabs = 0;       // chunks held (never shrinks until Release)
  size_t capacity = 0;    // total slots across all slabs
  size_t slab_bytes = 0;  // bytes held in slabs (capacity * slot size)
};

template <typename T, size_t kObjectsPerSlab = 256>
class Slab {
  static_assert(kObjectsPerSlab > 0, "slab chunk must hold at least one object");

 public:
  Slab() = default;
  ~Slab() { ReleaseSlabs(); }

  Slab(const Slab&) = delete;
  Slab& operator=(const Slab&) = delete;

  // Construct a T in a recycled (or fresh) slot. Only allocates when the
  // freelist is empty — once per kObjectsPerSlab objects at the high-water
  // mark, never again after it.
  template <typename... Args>
  T* New(Args&&... args) {
    FreeSlot* slot = free_head_;
    if (slot == nullptr) {
      Grow();
      slot = free_head_;
    }
    free_head_ = slot->next;
    T* obj = new (slot) T(std::forward<Args>(args)...);
    ++live_;
    if (live_ > peak_) {
      peak_ = live_;
      obs::Set(metric_peak_, static_cast<int64_t>(peak_));
    }
    obs::Set(metric_live_, static_cast<int64_t>(live_));
    return obj;
  }

  // Destroy `obj` and return its slot to the freelist. O(1), never releases
  // memory. Passing a pointer that did not come from this pool is undefined.
  void Delete(T* obj) {
    if (obj == nullptr) {
      return;
    }
    obj->~T();
    Recycle(obj);
  }

  // Return the slot of an already-destroyed object (for callers that ran the
  // destructor themselves, e.g. via placement destruction in containers).
  void Recycle(void* raw) {
    FreeSlot* slot = static_cast<FreeSlot*>(raw);
    slot->next = free_head_;
    free_head_ = slot;
    --live_;
    obs::Set(metric_live_, static_cast<int64_t>(live_));
  }

  // Destroy every live object and rebuild the freelist over the existing
  // slabs. Keeps the memory: a Reset() pool re-reaches its old population
  // without allocating. Requires T to be safely destructible in slab order.
  void Reset() {
    FreeAllSlots</*destroy=*/true>();
  }

  // Drop the slabs themselves (and any live objects' storage — callers must
  // have destroyed or abandoned them; live objects ARE destroyed here).
  void Release() {
    ReleaseSlabs();
    free_head_ = nullptr;
    slab_head_ = nullptr;
    live_ = peak_ = slab_count_ = 0;
    obs::Set(metric_live_, 0);
    obs::Set(metric_slabs_, 0);
  }

  size_t live() const { return live_; }
  size_t peak() const { return peak_; }
  size_t slab_count() const { return slab_count_; }
  size_t capacity() const { return slab_count_ * kObjectsPerSlab; }

  SlabStats stats() const {
    SlabStats s;
    s.live = live_;
    s.peak = peak_;
    s.slabs = slab_count_;
    s.capacity = capacity();
    s.slab_bytes = capacity() * kSlotSize;
    return s;
  }

  // Register mem.<pool>.live/peak/slabs gauges. Null registry detaches.
  void AttachMetrics(obs::MetricsRegistry* registry, std::string_view pool) {
    if (registry == nullptr) {
      metric_live_ = metric_peak_ = metric_slabs_ = nullptr;
      return;
    }
    const std::string base = "mem." + std::string(pool);
    metric_live_ = registry->GetGauge(base + ".live");
    metric_peak_ = registry->GetGauge(base + ".peak");
    metric_slabs_ = registry->GetGauge(base + ".slabs");
    obs::Set(metric_live_, static_cast<int64_t>(live_));
    obs::Set(metric_peak_, static_cast<int64_t>(peak_));
    obs::Set(metric_slabs_, static_cast<int64_t>(slab_count_));
  }

 private:
  // A freed slot doubles as a freelist node; slots are sized/aligned to fit
  // both a T and the link.
  struct FreeSlot {
    FreeSlot* next;
  };
  static constexpr size_t kSlotSize =
      sizeof(T) > sizeof(FreeSlot) ? sizeof(T) : sizeof(FreeSlot);
  static constexpr size_t kSlotAlign =
      alignof(T) > alignof(FreeSlot) ? alignof(T) : alignof(FreeSlot);

  struct SlabBlock {
    SlabBlock* next = nullptr;
    alignas(kSlotAlign) unsigned char storage[kSlotSize * kObjectsPerSlab];
  };

  void Grow() {
    auto* block = new SlabBlock;
    block->next = slab_head_;
    slab_head_ = block;
    ++slab_count_;
    obs::Set(metric_slabs_, static_cast<int64_t>(slab_count_));
    // Thread the new slots onto the freelist back-to-front so allocation
    // walks the block front-to-back (friendlier to the prefetcher).
    for (size_t i = kObjectsPerSlab; i-- > 0;) {
      auto* slot = reinterpret_cast<FreeSlot*>(block->storage + i * kSlotSize);
      slot->next = free_head_;
      free_head_ = slot;
    }
  }

  // Rebuild the freelist across all slabs, optionally destroying live
  // objects first. Live-object detection: rebuilds from scratch, so every
  // slot is recycled regardless of state; destroy=true runs ~T() on live
  // ones, which requires tracking. To keep the pool header-free we instead
  // require Reset() callers to destroy via the owning container first when
  // T's destructor has effects, or accept destructor-less reclamation for
  // trivially-destructible T.
  template <bool destroy>
  void FreeAllSlots() {
    static_assert(!destroy || std::is_trivially_destructible_v<T>,
                  "Slab::Reset() cannot run non-trivial destructors on live objects; "
                  "Delete() them through the owning container first, then Reset()");
    free_head_ = nullptr;
    for (SlabBlock* block = slab_head_; block != nullptr; block = block->next) {
      for (size_t i = kObjectsPerSlab; i-- > 0;) {
        auto* slot = reinterpret_cast<FreeSlot*>(block->storage + i * kSlotSize);
        slot->next = free_head_;
        free_head_ = slot;
      }
    }
    live_ = 0;
    obs::Set(metric_live_, 0);
  }

  void ReleaseSlabs() {
    while (slab_head_ != nullptr) {
      SlabBlock* next = slab_head_->next;
      delete slab_head_;
      slab_head_ = next;
    }
  }

  FreeSlot* free_head_ = nullptr;
  SlabBlock* slab_head_ = nullptr;
  size_t live_ = 0;
  size_t peak_ = 0;
  size_t slab_count_ = 0;
  obs::Gauge* metric_live_ = nullptr;
  obs::Gauge* metric_peak_ = nullptr;
  obs::Gauge* metric_slabs_ = nullptr;
};

// unique_ptr-style RAII over a slab slot, for owners that want scoped
// lifetime without giving up pooled storage.
template <typename T, size_t kObjectsPerSlab = 256>
class SlabPtr {
 public:
  SlabPtr() = default;
  SlabPtr(Slab<T, kObjectsPerSlab>* pool, T* obj) : pool_(pool), obj_(obj) {}
  ~SlabPtr() { reset(); }

  SlabPtr(const SlabPtr&) = delete;
  SlabPtr& operator=(const SlabPtr&) = delete;
  SlabPtr(SlabPtr&& other) noexcept : pool_(other.pool_), obj_(other.obj_) {
    other.obj_ = nullptr;
  }
  SlabPtr& operator=(SlabPtr&& other) noexcept {
    if (this != &other) {
      reset();
      pool_ = other.pool_;
      obj_ = other.obj_;
      other.obj_ = nullptr;
    }
    return *this;
  }

  T* get() const { return obj_; }
  T* operator->() const { return obj_; }
  T& operator*() const { return *obj_; }
  explicit operator bool() const { return obj_ != nullptr; }

  void reset() {
    if (obj_ != nullptr) {
      pool_->Delete(obj_);
      obj_ = nullptr;
    }
  }

  T* release() {
    T* obj = obj_;
    obj_ = nullptr;
    return obj;
  }

 private:
  Slab<T, kObjectsPerSlab>* pool_ = nullptr;
  T* obj_ = nullptr;
};

}  // namespace natpunch

#endif  // SRC_UTIL_SLAB_H_
