#include "src/util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace natpunch {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};
// Thread-local: every Network installs its own virtual-clock source on
// construction, and the parallel fleet runner constructs one Network per
// worker thread. A process-global slot would be a data race (and would stamp
// one simulation's log lines with another's clock).
thread_local std::function<int64_t()> g_time_source;
thread_local std::function<void(const std::string&)> g_sink;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(g_level.load(std::memory_order_relaxed));
}

void SetLogTimeSource(std::function<int64_t()> now_micros) {
  g_time_source = std::move(now_micros);
}

void SetLogSink(std::function<void(const std::string&)> sink) { g_sink = std::move(sink); }

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << LevelTag(level) << " ";
  if (g_time_source) {
    const int64_t us = g_time_source();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "[%7lld.%06llds] ", static_cast<long long>(us / 1000000),
                  static_cast<long long>(us % 1000000));
    stream_ << buf;
  }
  stream_ << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::string line = stream_.str();
  line.push_back('\n');
  if (g_sink) {
    g_sink(line);
  } else {
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
  (void)level_;
}

}  // namespace natpunch
