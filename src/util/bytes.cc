#include "src/util/bytes.h"

namespace natpunch {

void ByteWriter::WriteBytes(const Bytes& v) {
  WriteU16(static_cast<uint16_t>(v.size()));
  buffer_.insert(buffer_.end(), v.begin(), v.end());
}

void ByteWriter::WriteString(std::string_view v) {
  WriteU16(static_cast<uint16_t>(v.size()));
  buffer_.insert(buffer_.end(), v.begin(), v.end());
}

void ByteWriter::WriteRaw(const uint8_t* data, size_t len) {
  buffer_.insert(buffer_.end(), data, data + len);
}

Bytes ByteReader::ReadBytes() {
  uint16_t len = ReadU16();
  if (!CheckAvail(len)) {
    return {};
  }
  Bytes out(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  return out;
}

std::string ByteReader::ReadString() {
  uint16_t len = ReadU16();
  if (!CheckAvail(len)) {
    return {};
  }
  std::string out(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return out;
}

}  // namespace natpunch
