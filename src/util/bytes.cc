#include "src/util/bytes.h"

namespace natpunch {

void ByteWriter::WriteU8(uint8_t v) { buffer_.push_back(v); }

void ByteWriter::WriteU16(uint16_t v) {
  buffer_.push_back(static_cast<uint8_t>(v >> 8));
  buffer_.push_back(static_cast<uint8_t>(v));
}

void ByteWriter::WriteU32(uint32_t v) {
  buffer_.push_back(static_cast<uint8_t>(v >> 24));
  buffer_.push_back(static_cast<uint8_t>(v >> 16));
  buffer_.push_back(static_cast<uint8_t>(v >> 8));
  buffer_.push_back(static_cast<uint8_t>(v));
}

void ByteWriter::WriteU64(uint64_t v) {
  WriteU32(static_cast<uint32_t>(v >> 32));
  WriteU32(static_cast<uint32_t>(v));
}

void ByteWriter::WriteBytes(const Bytes& v) {
  WriteU16(static_cast<uint16_t>(v.size()));
  buffer_.insert(buffer_.end(), v.begin(), v.end());
}

void ByteWriter::WriteString(std::string_view v) {
  WriteU16(static_cast<uint16_t>(v.size()));
  buffer_.insert(buffer_.end(), v.begin(), v.end());
}

void ByteWriter::WriteRaw(const uint8_t* data, size_t len) {
  buffer_.insert(buffer_.end(), data, data + len);
}

bool ByteReader::CheckAvail(size_t n) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t ByteReader::ReadU8() {
  if (!CheckAvail(1)) {
    return 0;
  }
  return data_[pos_++];
}

uint16_t ByteReader::ReadU16() {
  if (!CheckAvail(2)) {
    return 0;
  }
  uint16_t v = static_cast<uint16_t>(static_cast<uint16_t>(data_[pos_]) << 8 | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

uint32_t ByteReader::ReadU32() {
  if (!CheckAvail(4)) {
    return 0;
  }
  uint32_t v = static_cast<uint32_t>(data_[pos_]) << 24 |
               static_cast<uint32_t>(data_[pos_ + 1]) << 16 |
               static_cast<uint32_t>(data_[pos_ + 2]) << 8 | static_cast<uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

uint64_t ByteReader::ReadU64() {
  uint64_t hi = ReadU32();
  uint64_t lo = ReadU32();
  return hi << 32 | lo;
}

Bytes ByteReader::ReadBytes() {
  uint16_t len = ReadU16();
  if (!CheckAvail(len)) {
    return {};
  }
  Bytes out(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  return out;
}

std::string ByteReader::ReadString() {
  uint16_t len = ReadU16();
  if (!CheckAvail(len)) {
    return {};
  }
  std::string out(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return out;
}

}  // namespace natpunch
