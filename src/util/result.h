// Lightweight status / result types used across the library.
//
// The simulator and socket layers do not use exceptions: every fallible
// operation returns a Status or a Result<T>. Error codes intentionally mirror
// the POSIX errno values an application would see from a real Berkeley
// sockets API, because the paper's hole punching procedure is specified in
// terms of those observable errors ("connection reset", "address in use",
// "host unreachable", ...).

#ifndef SRC_UTIL_RESULT_H_
#define SRC_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace natpunch {

// Error codes observable through the socket API. kOk means success.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,    // EINVAL: malformed endpoint, bad socket state
  kAddressInUse,       // EADDRINUSE: bind conflict, or the doomed connect() of §4.3
  kConnectionRefused,  // ECONNREFUSED: remote sent RST in response to SYN
  kConnectionReset,    // ECONNRESET: RST on an established or half-open session
  kHostUnreachable,    // EHOSTUNREACH: ICMP error from the path (e.g. a NAT)
  kTimedOut,           // ETIMEDOUT: retransmissions exhausted
  kNotConnected,       // ENOTCONN: send/recv on an unconnected socket
  kAlreadyConnected,   // EISCONN
  kInProgress,         // EINPROGRESS: async connect pending
  kWouldBlock,         // EWOULDBLOCK
  kClosed,             // socket closed locally
  kProtocolError,      // malformed rendezvous/application message
  kAuthFailed,         // peer authentication (nonce) mismatch, §3.4/§4.2 step 5
  kNoRoute,            // simulator: no route to destination
  kAborted,            // operation cancelled (e.g. hole punch gave up)
};

// Human-readable name for an error code, for logs and test failure messages.
std::string_view ErrorCodeName(ErrorCode code);

// A success-or-error status without a payload.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  explicit Status(ErrorCode code) : code_(code) {}
  Status(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    std::string out(ErrorCodeName(code_));
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  ErrorCode code_;
  std::string message_;
};

// A value of type T or an error status. Minimal analogue of absl::StatusOr.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return Status(...)` both work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "Result constructed from OK status without a value");
  }
  Result(ErrorCode code) : status_(code) {  // NOLINT(google-explicit-constructor)
    assert(code != ErrorCode::kOk);
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }
  ErrorCode code() const { return ok() ? ErrorCode::kOk : status_.code(); }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace natpunch

#endif  // SRC_UTIL_RESULT_H_
