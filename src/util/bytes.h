// Byte-order-safe serialization helpers for wire messages.
//
// All multi-byte integers are encoded big-endian ("network order"), matching
// how the rendezvous and NAT Check protocols would be laid out on a real
// wire. The reader is bounds-checked: any attempt to read past the end marks
// the reader bad, and callers check ok() once after decoding a whole message
// rather than after every field.

#ifndef SRC_UTIL_BYTES_H_
#define SRC_UTIL_BYTES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace natpunch {

using Bytes = std::vector<uint8_t>;

// Non-owning view over contiguous bytes. Decode functions take this so they
// accept Bytes, Payload (see src/netsim/payload.h), or raw pointers without
// copying; it is the C++17-compatible stand-in for std::span<const uint8_t>.
class ConstByteSpan {
 public:
  constexpr ConstByteSpan() : data_(nullptr), size_(0) {}
  constexpr ConstByteSpan(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  ConstByteSpan(const Bytes& bytes) : data_(bytes.data()), size_(bytes.size()) {}  // NOLINT

  constexpr const uint8_t* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr const uint8_t* begin() const { return data_; }
  constexpr const uint8_t* end() const { return data_ + size_; }

 private:
  const uint8_t* data_;
  size_t size_;
};

class ByteWriter {
 public:
  ByteWriter() = default;

  void WriteU8(uint8_t v);
  void WriteU16(uint16_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  // Length-prefixed (u16) byte string.
  void WriteBytes(const Bytes& v);
  void WriteString(std::string_view v);
  // Raw bytes, no length prefix.
  void WriteRaw(const uint8_t* data, size_t len);

  const Bytes& data() const { return buffer_; }
  Bytes Take() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  Bytes buffer_;
};

class ByteReader {
 public:
  explicit ByteReader(const Bytes& data) : data_(data.data()), size_(data.size()) {}
  explicit ByteReader(ConstByteSpan span) : data_(span.data()), size_(span.size()) {}
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint8_t ReadU8();
  uint16_t ReadU16();
  uint32_t ReadU32();
  uint64_t ReadU64();
  Bytes ReadBytes();
  std::string ReadString();

  // True iff no read has run past the end of the buffer.
  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  bool CheckAvail(size_t n);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace natpunch

#endif  // SRC_UTIL_BYTES_H_
