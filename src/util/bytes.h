// Byte-order-safe serialization helpers for wire messages.
//
// All multi-byte integers are encoded big-endian ("network order"), matching
// how the rendezvous and NAT Check protocols would be laid out on a real
// wire. The reader is bounds-checked: any attempt to read past the end marks
// the reader bad, and callers check ok() once after decoding a whole message
// rather than after every field.

#ifndef SRC_UTIL_BYTES_H_
#define SRC_UTIL_BYTES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace natpunch {

using Bytes = std::vector<uint8_t>;

// Non-owning view over contiguous bytes. Decode functions take this so they
// accept Bytes, Payload (see src/netsim/payload.h), or raw pointers without
// copying; it is the C++17-compatible stand-in for std::span<const uint8_t>.
class ConstByteSpan {
 public:
  constexpr ConstByteSpan() : data_(nullptr), size_(0) {}
  constexpr ConstByteSpan(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  ConstByteSpan(const Bytes& bytes) : data_(bytes.data()), size_(bytes.size()) {}  // NOLINT

  constexpr const uint8_t* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr const uint8_t* begin() const { return data_; }
  constexpr const uint8_t* end() const { return data_ + size_; }

 private:
  const uint8_t* data_;
  size_t size_;
};

class ByteWriter {
 public:
  ByteWriter() = default;

  // Pre-size the buffer. Encoders know their wire size up front; without
  // this, building an 18-byte message from push_backs pays the vector's full
  // 1->2->4->... doubling walk in allocations.
  void Reserve(size_t n) { buffer_.reserve(n); }

  // The fixed-width writers are inline: every simulated wire message funnels
  // through them, so the per-field call overhead is hot-path cost.
  void WriteU8(uint8_t v) { buffer_.push_back(v); }
  void WriteU16(uint16_t v) {
    buffer_.push_back(static_cast<uint8_t>(v >> 8));
    buffer_.push_back(static_cast<uint8_t>(v));
  }
  void WriteU32(uint32_t v) {
    buffer_.push_back(static_cast<uint8_t>(v >> 24));
    buffer_.push_back(static_cast<uint8_t>(v >> 16));
    buffer_.push_back(static_cast<uint8_t>(v >> 8));
    buffer_.push_back(static_cast<uint8_t>(v));
  }
  void WriteU64(uint64_t v) {
    WriteU32(static_cast<uint32_t>(v >> 32));
    WriteU32(static_cast<uint32_t>(v));
  }
  // Length-prefixed (u16) byte string.
  void WriteBytes(const Bytes& v);
  void WriteString(std::string_view v);
  // Raw bytes, no length prefix.
  void WriteRaw(const uint8_t* data, size_t len);

  const Bytes& data() const { return buffer_; }
  Bytes Take() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  Bytes buffer_;
};

class ByteReader {
 public:
  explicit ByteReader(const Bytes& data) : data_(data.data()), size_(data.size()) {}
  explicit ByteReader(ConstByteSpan span) : data_(span.data()), size_(span.size()) {}
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint8_t ReadU8() { return CheckAvail(1) ? data_[pos_++] : 0; }
  uint16_t ReadU16() {
    if (!CheckAvail(2)) {
      return 0;
    }
    const auto v =
        static_cast<uint16_t>(static_cast<uint16_t>(data_[pos_]) << 8 | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  uint32_t ReadU32() {
    if (!CheckAvail(4)) {
      return 0;
    }
    const uint32_t v = static_cast<uint32_t>(data_[pos_]) << 24 |
                       static_cast<uint32_t>(data_[pos_ + 1]) << 16 |
                       static_cast<uint32_t>(data_[pos_ + 2]) << 8 |
                       static_cast<uint32_t>(data_[pos_ + 3]);
    pos_ += 4;
    return v;
  }
  uint64_t ReadU64() {
    const uint64_t hi = ReadU32();
    const uint64_t lo = ReadU32();
    return hi << 32 | lo;
  }
  Bytes ReadBytes();
  std::string ReadString();

  // True iff no read has run past the end of the buffer.
  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  bool CheckAvail(size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace natpunch

#endif  // SRC_UTIL_BYTES_H_
