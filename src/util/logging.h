// Minimal streaming logger with simulated-time timestamps.
//
// The simulator installs a time-source callback so that log lines are stamped
// with virtual time, which is what makes packet-level traces meaningful.
// Logging defaults to kWarning so tests and benchmarks stay quiet; examples
// turn on kInfo or kDebug to narrate protocol flows.
//
// Usage:  NP_LOG(Info) << "punched hole to " << endpoint;

#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace natpunch {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kNone = 4,
};

// Global minimum level; messages below it are discarded cheaply.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Install a virtual-clock source; returns microseconds. Pass nullptr to go
// back to unstamped output. Thread-local: each simulation thread gets its
// own clock (the parallel fleet runner runs one Network per worker).
void SetLogTimeSource(std::function<int64_t()> now_micros);

// Redirect log output (default: stderr). Used by tests to capture output.
// Thread-local, like the time source.
void SetLogSink(std::function<void(const std::string&)> sink);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// True if a message at `level` would be emitted.
bool LogEnabled(LogLevel level);

}  // namespace natpunch

#define NP_LOG(severity)                                              \
  if (!::natpunch::LogEnabled(::natpunch::LogLevel::k##severity)) {   \
  } else                                                              \
    ::natpunch::LogMessage(::natpunch::LogLevel::k##severity, __FILE__, __LINE__)

#endif  // SRC_UTIL_LOGGING_H_
