#include "src/util/result.h"

namespace natpunch {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kAddressInUse:
      return "ADDRESS_IN_USE";
    case ErrorCode::kConnectionRefused:
      return "CONNECTION_REFUSED";
    case ErrorCode::kConnectionReset:
      return "CONNECTION_RESET";
    case ErrorCode::kHostUnreachable:
      return "HOST_UNREACHABLE";
    case ErrorCode::kTimedOut:
      return "TIMED_OUT";
    case ErrorCode::kNotConnected:
      return "NOT_CONNECTED";
    case ErrorCode::kAlreadyConnected:
      return "ALREADY_CONNECTED";
    case ErrorCode::kInProgress:
      return "IN_PROGRESS";
    case ErrorCode::kWouldBlock:
      return "WOULD_BLOCK";
    case ErrorCode::kClosed:
      return "CLOSED";
    case ErrorCode::kProtocolError:
      return "PROTOCOL_ERROR";
    case ErrorCode::kAuthFailed:
      return "AUTH_FAILED";
    case ErrorCode::kNoRoute:
      return "NO_ROUTE";
    case ErrorCode::kAborted:
      return "ABORTED";
  }
  return "UNKNOWN";
}

}  // namespace natpunch
