#include "src/rendezvous/ring.h"

#include <algorithm>

#include "src/util/flat_hash.h"

namespace natpunch {
namespace {

// Separates vnode points from client-id points in the hash space; without a
// salt, a client whose id equals (shard << 32 | vnode) would land exactly on
// a vnode point, which is harmless but makes the oracle test fiddly.
constexpr uint64_t kVnodeSalt = 0x53484152445250ULL;  // "SHARDRP"

}  // namespace

ShardRing::ShardRing(std::vector<Endpoint> shards, uint32_t vnodes)
    : shards_(std::move(shards)) {
  points_.reserve(shards_.size() * vnodes);
  for (uint32_t shard = 0; shard < shards_.size(); ++shard) {
    for (uint32_t vnode = 0; vnode < vnodes; ++vnode) {
      const uint64_t hash =
          HashMix64(kVnodeSalt ^ (static_cast<uint64_t>(shard) << 32) ^ vnode);
      points_.push_back({hash, shard});
    }
  }
  std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
  });
}

uint32_t ShardRing::NthOwner(uint64_t client_id, uint32_t n) const {
  if (points_.empty()) {
    return 0;
  }
  const uint64_t hash = HashMix64(client_id);
  size_t start = std::lower_bound(points_.begin(), points_.end(), hash,
                                  [](const Point& p, uint64_t h) { return p.hash < h; }) -
                 points_.begin();
  if (start == points_.size()) {
    start = 0;  // wrap past the top of the hash space
  }
  n %= static_cast<uint32_t>(shards_.size());
  std::vector<char> seen(shards_.size(), 0);
  uint32_t distinct = 0;
  for (size_t step = 0; step < points_.size(); ++step) {
    const uint32_t shard = points_[(start + step) % points_.size()].shard;
    if (seen[shard] == 0) {
      if (distinct == n) {
        return shard;
      }
      seen[shard] = 1;
      ++distinct;
    }
  }
  return points_[start].shard;  // unreachable: every shard has points
}

int ShardRing::IndexOf(const Endpoint& ep) const {
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i] == ep) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace natpunch
