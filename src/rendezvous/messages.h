// Rendezvous wire protocol (the role of server S in §3.1 / §4.2).
//
// One message schema serves both transports: UDP carries one message per
// datagram; TCP prefixes each message with a u16 length (MessageFramer).
//
// Address obfuscation: when enabled, every IPv4 address in a message body is
// transmitted as its one's complement, the §3.1/§5.3 countermeasure against
// NATs that blindly rewrite address-like payload bytes. Client and server
// must agree on the setting; the codec takes it as a parameter so the
// "bad NAT × obfuscation" ablation is a single flag flip.

#ifndef SRC_RENDEZVOUS_MESSAGES_H_
#define SRC_RENDEZVOUS_MESSAGES_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/netsim/address.h"
#include "src/util/bytes.h"

namespace natpunch {

enum class RvMsgType : uint8_t {
  kRegister = 1,       // client -> S: client_id + private endpoint (§3.1)
  kRegisterOk = 2,     // S -> client: observed public endpoint
  kConnectRequest = 3, // A -> S: "help me reach target_id" (+ nonce, strategy)
  kConnectForward = 4, // S -> B: A's public+private endpoints (+ nonce)
  kConnectAck = 5,     // S -> A: B's public+private endpoints (+ nonce)
  kConnectError = 6,   // S -> A: target not registered
  kKeepAlive = 7,      // client -> S: refresh NAT mapping + registration
  kRelayData = 8,      // client -> S: payload for target_id (§2.2 relaying)
  kRelayForward = 9,   // S -> client: relayed payload from client_id
  kSequentialReady = 10,  // B -> S -> A: §4.5 step 3->4 signal
  kKeepAliveAck = 11,  // S -> client: keepalive echo carrying the epoch
};

// How the requesting peer intends to establish connectivity; forwarded
// verbatim so the responder runs the matching procedure.
enum class ConnectStrategy : uint8_t {
  kHolePunch = 1,   // §3.2 (UDP) / §4.2 (TCP) parallel hole punching
  kReversal = 2,    // §2.3 connection reversal
  kRelayOnly = 3,   // §2.2 pure relaying
  kSequential = 4,  // §4.5 sequential (NatTrav-style) TCP punching
  kPredicted = 5,   // §5.1 port prediction for symmetric NATs
};

struct RendezvousMessage {
  RvMsgType type = RvMsgType::kKeepAlive;
  uint64_t client_id = 0;  // sender identity (register) or origin (forwards)
  uint64_t target_id = 0;  // destination peer for requests/relays
  uint64_t nonce = 0;      // session authentication token (§3.4)
  // Server incarnation number, stamped by S into every server->client
  // message (0 from clients). A client that sees the epoch change knows S
  // restarted and lost its registration table, and must re-register.
  uint64_t epoch = 0;
  ConnectStrategy strategy = ConnectStrategy::kHolePunch;
  Endpoint public_ep;
  Endpoint private_ep;
  Bytes payload;
};

Bytes EncodeRendezvousMessage(const RendezvousMessage& msg, bool obfuscate_addresses);
std::optional<RendezvousMessage> DecodeRendezvousMessage(ConstByteSpan data,
                                                         bool obfuscate_addresses);

// Reassembles length-prefixed messages from a TCP byte stream.
//
// Armor: a length prefix above max_frame marks the stream as desynchronized
// or hostile. The framer drops its whole buffer and counts the event; there
// is no resync point in a length-prefixed stream, so the owner should treat
// the connection as poisoned. The cap is two-tier: control-only streams keep
// the tight 8 KiB default, while data-bearing boundaries (p2p streams, the
// rendezvous connection that carries relay payloads) raise it to the u16
// prefix's own ceiling via set_max_frame(kMaxDataFrame).
class MessageFramer {
 public:
  static constexpr size_t kDefaultMaxFrame = 8192;
  // Largest frame the u16 length prefix can describe; boundaries that carry
  // bulk application payloads use this instead of the control-plane default.
  static constexpr size_t kMaxDataFrame = 65535;

  // Frame a message body for stream transmission.
  static Bytes Frame(const Bytes& body);

  // Feed stream bytes; returns every complete message body now available.
  std::vector<Bytes> Append(const Bytes& data);

  void set_max_frame(size_t max_frame) { max_frame_ = max_frame; }
  // Number of times an over-limit length prefix forced a buffer drop.
  uint64_t oversize_frames() const { return oversize_frames_; }
  // True when the framer has hit an oversize prefix; the stream past that
  // point is unparseable and the connection should be torn down.
  bool poisoned() const { return oversize_frames_ > 0; }

 private:
  Bytes buffer_;
  size_t max_frame_ = kDefaultMaxFrame;
  uint64_t oversize_frames_ = 0;
};

}  // namespace natpunch

#endif  // SRC_RENDEZVOUS_MESSAGES_H_
