// RendezvousServer: the well-known server S.
//
// Serves both transports on one port. For each registered client it records
// the two endpoints the paper describes (§3.1): the private endpoint the
// client reports about itself in the registration body, and the public
// endpoint the server observes in the packet/connection source. It
// introduces peers on request (forwarding each side's endpoint pair), relays
// application payloads as the §2.2 fallback, and forwards the §4.5
// sequential-punching ready signal.

#ifndef SRC_RENDEZVOUS_SERVER_H_
#define SRC_RENDEZVOUS_SERVER_H_

#include <map>
#include <memory>
#include <vector>

#include "src/rendezvous/messages.h"
#include "src/rendezvous/ring.h"
#include "src/rendezvous/shard_messages.h"
#include "src/transport/host.h"
#include "src/util/flat_hash.h"
#include "src/util/slab.h"

namespace natpunch {

// Placement of one server inside the sharded rendezvous tier. An empty
// shard list (the default) means the server runs standalone, byte-for-byte
// identical to the pre-sharding behavior; with two or more shards the server
// forwards lookups for peers homed elsewhere and replicates registrations to
// its clients' ring successors (docs/PROTOCOL.md §6).
struct ShardConfig {
  std::vector<Endpoint> shards;  // every shard's endpoint, in ring order
  uint32_t index = 0;            // this server's position in `shards`
  uint32_t vnodes = ShardRing::kDefaultVnodes;
};

class RendezvousServer {
 public:
  struct Options {
    bool obfuscate_addresses = false;
    // Hostile-client controls. All default off (0) so cooperative scenarios
    // and existing benches see identical behavior; chaos/attacker tests turn
    // them on explicitly.
    //
    // Per-source UDP rate limit: more than max_msgs_per_window messages from
    // one source endpoint within rate_window are dropped (and counted).
    uint32_t max_msgs_per_window = 0;  // 0 = no rate limiting
    SimDuration rate_window = Seconds(1);
    // Quarantine: a source that sends quarantine_threshold malformed frames
    // is ignored for quarantine_duration (UDP) or disconnected (TCP).
    uint32_t quarantine_threshold = 0;  // 0 = no quarantine
    SimDuration quarantine_duration = Seconds(30);
    // Sharded-tier placement; default (empty shard list) = standalone.
    ShardConfig shard;
  };

  RendezvousServer(Host* host, uint16_t port, Options options);
  RendezvousServer(Host* host, uint16_t port) : RendezvousServer(host, port, Options{}) {}

  // Bind the UDP socket and the TCP listener.
  Status Start();

  // Failure injection: take the server offline (close the sockets and
  // forget every registration). Already-punched peer sessions must keep
  // working — that is the point of hole punching; only new introductions
  // and relaying break.
  void Stop();
  bool running() const { return udp_socket_ != nullptr; }

  Endpoint endpoint() const { return Endpoint(host_->primary_address(), port_); }
  Host* host() const { return host_; }

  struct Stats {
    uint64_t udp_registrations = 0;
    uint64_t tcp_registrations = 0;
    uint64_t connect_requests = 0;
    uint64_t relayed_messages = 0;
    uint64_t relayed_bytes = 0;
    uint64_t unknown_targets = 0;
    uint64_t malformed_frames = 0;    // frames that failed strict decoding
    uint64_t rate_limited_drops = 0;  // messages shed by the per-source limit
    uint64_t quarantined_sources = 0; // sources/connections put in the box
    uint64_t quarantined_drops = 0;   // messages ignored while quarantined
    // Sharded-tier bookkeeping (all zero when running standalone).
    uint64_t forwards = 0;            // kForwardConnect/kForwardRelay sent
    uint64_t forward_replies = 0;     // kForwardReply sent back to origin
    uint64_t replications_sent = 0;   // kReplicate sent to the ring successor
    uint64_t replicas_stored = 0;     // kReplicate applied locally
    uint64_t replica_promotions = 0;  // replica record claimed by a kRegister
    uint64_t shard_drops = 0;         // shard frames from non-ring sources
  };
  const Stats& stats() const { return stats_; }

  // Number of currently known clients (either transport).
  size_t client_count() const { return clients_.size(); }

  // Server incarnation number, bumped on every Start(). Stamped into every
  // outbound message so clients can detect a restart (and the implied loss
  // of the registration table) from any ack and re-register.
  uint64_t epoch() const { return epoch_; }

  // True when this server participates in a multi-shard tier.
  bool sharded() const { return ring_.size() > 1; }
  uint32_t shard_index() const { return options_.shard.index; }
  const ShardRing& ring() const { return ring_; }

 private:
  struct TcpPeer {
    TcpSocket* socket = nullptr;
    MessageFramer framer;
    uint64_t client_id = 0;
    uint32_t malformed = 0;  // strict-decode failures on this connection
  };

  // Per-source abuse bookkeeping for the UDP side; only populated when the
  // Options enable rate limiting or quarantine.
  struct SourceState {
    SimTime window_start;
    uint32_t msgs_in_window = 0;
    uint32_t malformed = 0;
    SimTime quarantined_until;
  };

  struct ClientRecord {
    bool udp_registered = false;
    // True while the record is only a replica copy received over kReplicate;
    // cleared (and counted as a promotion) when the client registers here
    // directly after failing over from its dead home shard.
    bool replica = false;
    Endpoint udp_public;
    Endpoint udp_private;
    TcpPeer* tcp = nullptr;  // null when not TCP-registered
    Endpoint tcp_public;
    Endpoint tcp_private;
  };

  // Point lookups into the registration table (null when unknown). Records
  // come from the slab, so their addresses are stable across table growth.
  ClientRecord* FindClient(uint64_t client_id);
  ClientRecord& GetOrCreateClient(uint64_t client_id);

  // Returns false when the source is quarantined or over its rate limit and
  // the message must be shed before decoding.
  bool AdmitUdp(const Endpoint& from);
  void NoteUdpMalformed(const Endpoint& from);

  void OnUdpReceive(const Endpoint& from, const Payload& payload);
  void OnTcpAccept(TcpSocket* socket);
  void OnTcpData(TcpPeer* peer, const Bytes& data);

  // via_udp_from is set for messages that arrived by UDP; peer for TCP.
  void HandleMessage(const RendezvousMessage& msg, const Endpoint* via_udp_from, TcpPeer* peer);

  // Sharded-tier internals (only reached when sharded()).
  void HandleShardFrame(const Endpoint& from, const Payload& payload);
  void HandleShardMessage(const ShardMessage& msg);
  void SendShard(uint32_t shard, ShardMessage msg);
  // Replicate `rec` for `client_id` to its ring successor (skipping self).
  void ReplicateRecord(uint64_t client_id, const ClientRecord& rec);
  // Forward a lookup for `target_id` to the shards that may own it: its home
  // shard and its replica, minus this shard. Returns how many were sent.
  int ForwardToOwners(uint64_t target_id, const ShardMessage& msg);

  void SendUdp(const Endpoint& to, const RendezvousMessage& msg);
  void SendTcp(TcpPeer* peer, const RendezvousMessage& msg);

  Host* host_;
  uint16_t port_;
  Options options_;
  UdpSocket* udp_socket_ = nullptr;
  TcpSocket* tcp_listener_ = nullptr;
  // Registration records are the server's swarm-scale population (one per
  // registered client, ~100k+ in the swarm bench): slab storage plus an
  // open-addressing index replaces the std::map's ~48-byte-per-node
  // overhead. Nothing iterates the table — all accesses are point lookups.
  Slab<ClientRecord, 512> client_pool_;
  FlatHashMap<uint64_t, ClientRecord*> clients_;
  std::vector<std::unique_ptr<TcpPeer>> tcp_peers_;
  std::map<Endpoint, SourceState> sources_;
  Stats stats_;
  uint64_t epoch_ = 0;
  ShardRing ring_;  // empty when standalone
  obs::Counter* metric_rate_limited_ = nullptr;
  obs::Counter* metric_quarantined_ = nullptr;
  // Per-shard counters (rendezvous.shard<N>.*), registered only when the
  // server is part of a multi-shard tier so standalone metric snapshots are
  // unchanged.
  obs::Counter* metric_registrations_ = nullptr;
  obs::Counter* metric_forwards_ = nullptr;
  obs::Counter* metric_promotions_ = nullptr;
};

}  // namespace natpunch

#endif  // SRC_RENDEZVOUS_SERVER_H_
