#include "src/rendezvous/client.h"

#include "src/util/logging.h"

namespace natpunch {

// ---------------------------------------------------------------------------
// UdpRendezvousClient
// ---------------------------------------------------------------------------

UdpRendezvousClient::UdpRendezvousClient(Host* host, Endpoint server, uint64_t client_id,
                                         RendezvousClientOptions options)
    : host_(host), server_(server), client_id_(client_id), options_(options) {}

UdpRendezvousClient::UdpRendezvousClient(Host* host, ShardRing ring, uint64_t client_id,
                                         RendezvousClientOptions options)
    : host_(host), client_id_(client_id), options_(options), ring_(std::move(ring)) {
  // Home shard is a pure function of the shared ring and our own ID — no
  // assignment protocol, and every peer/shard computes the same answer.
  server_ = ring_.endpoint(ring_.HomeShard(client_id_));
}

void UdpRendezvousClient::SendToServer(const RendezvousMessage& msg) {
  socket_->SendTo(server_, EncodeRendezvousMessage(msg, options_.obfuscate_addresses));
}

void UdpRendezvousClient::Register(uint16_t local_port, EndpointCallback cb) {
  auto bound = host_->udp().Bind(local_port);
  if (!bound.ok()) {
    cb(bound.status());
    return;
  }
  socket_ = *bound;
  private_ep_ = Endpoint(host_->primary_address(), socket_->local_port());
  socket_->SetReceiveCallback(
      [this](const Endpoint& from, const Payload& payload) { OnReceive(from, payload); });
  register_cb_ = std::move(cb);
  register_attempts_ = 0;

  // UDP registration is fire-and-retry until kRegisterOk arrives.
  ReRegister();
  register_retry_event_ = host_->loop().ScheduleAfter(options_.register_retry_interval,
                                                      [this] { RegisterRetryTick(); });
}

void UdpRendezvousClient::RegisterRetryTick() {
  if (registered_ || !register_cb_) {
    return;
  }
  if (++register_attempts_ >= options_.register_max_retries) {
    auto callback = std::move(register_cb_);
    register_cb_ = nullptr;
    callback(Status(ErrorCode::kTimedOut, "registration timed out"));
    return;
  }
  ReRegister();
  register_retry_event_ = host_->loop().ScheduleAfter(options_.register_retry_interval,
                                                      [this] { RegisterRetryTick(); });
}

void UdpRendezvousClient::OnReceive(const Endpoint& from, const Payload& payload) {
  // In a sharded tier any ring member may speak for the server side: the
  // replica shard introduces peers to us directly when a lookup was answered
  // from its copy, and after a failover the old home can still have acks in
  // flight.
  if (from == server_ || (ring_.size() > 1 && ring_.IsShard(from))) {
    auto msg = DecodeRendezvousMessage(payload, options_.obfuscate_addresses);
    if (msg) {
      HandleServerMessage(*msg, from);
      return;
    }
    // Undecodable traffic from the server endpoint falls through as peer
    // traffic (it could be a punch probe from a peer behind the same
    // address in a hairpin scenario — unlikely but harmless). With no peer
    // handler to claim it, it is garbage on the rendezvous flow: count it.
    if (!peer_traffic_handler_) {
      host_->CountMalformedDrop();
      return;
    }
  }
  if (peer_traffic_handler_) {
    peer_traffic_handler_(from, payload);
  }
}

void UdpRendezvousClient::ReRegister() {
  RendezvousMessage msg;
  msg.type = RvMsgType::kRegister;
  msg.client_id = client_id_;
  msg.private_ep = private_ep_;
  SendToServer(msg);
}

void UdpRendezvousClient::HandleServerMessage(const RendezvousMessage& msg,
                                              const Endpoint& from) {
  // Epoch comparison is only meaningful against our current shard: each
  // shard numbers its own incarnations, so a forward arriving from another
  // ring member with a different epoch is not a restart signal.
  if (from == server_ && msg.type != RvMsgType::kRegisterOk && server_epoch_ != 0 &&
      msg.epoch != 0 && msg.epoch != server_epoch_) {
    // The server restarted and lost its registration table. Re-register from
    // the same socket; nothing about the peer-facing state changes. The
    // stored epoch only advances on kRegisterOk, so if the re-registration
    // is lost the next keepalive ack retriggers it.
    if (registered_) {
      ++restarts_detected_;
      registered_ = false;
      NP_LOG(Info) << "client " << client_id_ << " detected rendezvous restart (epoch "
                   << server_epoch_ << " -> " << msg.epoch << "), re-registering";
    }
    ReRegister();
  }
  switch (msg.type) {
    case RvMsgType::kRegisterOk: {
      if (from != server_) {
        return;  // stale ack from a shard we already failed away from
      }
      public_ep_ = msg.public_ep;
      registered_ = true;
      keepalive_misses_ = 0;
      server_epoch_ = msg.epoch;
      if (register_retry_event_ != EventLoop::kInvalidEventId) {
        host_->loop().Cancel(register_retry_event_);
        register_retry_event_ = EventLoop::kInvalidEventId;
      }
      if (register_cb_) {
        auto cb = std::move(register_cb_);
        register_cb_ = nullptr;
        cb(public_ep_);
      }
      return;
    }
    case RvMsgType::kConnectAck: {
      auto it = pending_requests_.find(msg.client_id);
      if (it == pending_requests_.end()) {
        return;
      }
      if (it->second.retry_event != EventLoop::kInvalidEventId) {
        host_->loop().Cancel(it->second.retry_event);
      }
      auto cb = std::move(it->second.cb);
      pending_requests_.erase(it);
      cb(msg);
      return;
    }
    case RvMsgType::kConnectError: {
      auto it = pending_requests_.find(msg.target_id);
      if (it == pending_requests_.end()) {
        return;
      }
      if (it->second.retry_event != EventLoop::kInvalidEventId) {
        host_->loop().Cancel(it->second.retry_event);
      }
      auto cb = std::move(it->second.cb);
      pending_requests_.erase(it);
      cb(Status(ErrorCode::kHostUnreachable, "peer not registered"));
      return;
    }
    case RvMsgType::kConnectForward: {
      auto handler = connect_forward_handlers_.find(msg.strategy);
      if (handler != connect_forward_handlers_.end() && handler->second) {
        handler->second(msg);
      }
      return;
    }
    case RvMsgType::kKeepAliveAck:
      // Matching-epoch ack; the observed endpoint rides along for free.
      if (from != server_) {
        return;  // a dead shard's last ack must not mask the failover signal
      }
      keepalive_misses_ = 0;
      if (registered_) {
        public_ep_ = msg.public_ep;
      }
      return;
    case RvMsgType::kRelayForward:
      if (relay_handler_) {
        relay_handler_(msg.client_id, msg.payload);
      }
      return;
    default:
      return;
  }
}

void UdpRendezvousClient::RequestConnect(uint64_t peer_id, ConnectStrategy strategy,
                                         uint64_t nonce,
                                         std::function<void(Result<RendezvousMessage>)> cb,
                                         Bytes payload) {
  if (!registered_) {
    cb(Status(ErrorCode::kNotConnected, "not registered"));
    return;
  }
  PendingRequest& pending = pending_requests_[peer_id];
  pending.cb = std::move(cb);
  pending.attempts = 0;
  pending.strategy = strategy;
  pending.nonce = nonce;

  pending.resend = [this, peer_id, strategy, nonce, payload = std::move(payload)]() {
    RendezvousMessage msg;
    msg.type = RvMsgType::kConnectRequest;
    msg.client_id = client_id_;
    msg.target_id = peer_id;
    msg.strategy = strategy;
    msg.nonce = nonce;
    msg.payload = payload;
    SendToServer(msg);
  };
  pending.resend();
  pending.retry_event = host_->loop().ScheduleAfter(options_.request_retry_interval,
                                                    [this, peer_id] { RequestRetryTick(peer_id); });
}

void UdpRendezvousClient::RequestRetryTick(uint64_t peer_id) {
  auto it = pending_requests_.find(peer_id);
  if (it == pending_requests_.end()) {
    return;
  }
  if (++it->second.attempts >= options_.request_max_retries) {
    auto callback = std::move(it->second.cb);
    pending_requests_.erase(it);
    callback(Status(ErrorCode::kTimedOut, "connect request timed out"));
    return;
  }
  it->second.resend();
  it->second.retry_event = host_->loop().ScheduleAfter(
      options_.request_retry_interval, [this, peer_id] { RequestRetryTick(peer_id); });
}

void UdpRendezvousClient::SendConnectRequest(uint64_t peer_id, ConnectStrategy strategy,
                                             uint64_t nonce, Bytes payload) {
  RendezvousMessage msg;
  msg.type = RvMsgType::kConnectRequest;
  msg.client_id = client_id_;
  msg.target_id = peer_id;
  msg.strategy = strategy;
  msg.nonce = nonce;
  msg.payload = std::move(payload);
  SendToServer(msg);
}

void UdpRendezvousClient::SendRelay(uint64_t to_id, Bytes payload) {
  RendezvousMessage msg;
  msg.type = RvMsgType::kRelayData;
  msg.client_id = client_id_;
  msg.target_id = to_id;
  msg.payload = std::move(payload);
  SendToServer(msg);
}

void UdpRendezvousClient::StartKeepAlive(SimDuration interval) {
  StopKeepAlive();
  keepalive_interval_ = interval;
  keepalive_timer_.Bind<&UdpRendezvousClient::KeepAliveTick>(this);
  host_->loop().ScheduleTimerAfter(interval, &keepalive_timer_);
}

void UdpRendezvousClient::KeepAliveTick() {
  if (ring_.size() > 1) {
    if (!registered_) {
      // Mid-failover (or a lost kRegister): re-registration retries ride the
      // keepalive cadence until the new shard's kRegisterOk lands.
      ReRegister();
    } else if (keepalive_misses_ >= options_.failover_missed_keepalives) {
      // Every keepalive since the last ack went unanswered: the shard is
      // dead (or unreachable). Walk the deterministic ladder to the replica.
      FailOverToNextShard();
    } else {
      ++keepalive_misses_;  // provisional; any ack from the shard resets it
    }
  }
  RendezvousMessage msg;
  msg.type = RvMsgType::kKeepAlive;
  msg.client_id = client_id_;
  SendToServer(msg);
  host_->loop().ScheduleTimerAfter(keepalive_interval_, &keepalive_timer_);
}

void UdpRendezvousClient::FailOverToNextShard() {
  ++failovers_;
  keepalive_misses_ = 0;
  ladder_pos_ = (ladder_pos_ + 1) % static_cast<uint32_t>(ring_.size());
  server_ = ring_.endpoint(current_shard());
  registered_ = false;
  server_epoch_ = 0;  // epochs are per-shard; the new one starts fresh
  NP_LOG(Info) << "client " << client_id_ << " re-homing to shard " << current_shard()
               << " (" << server_.ToString() << ") after keepalive loss";
  ReRegister();
}

void UdpRendezvousClient::StopKeepAlive() { keepalive_timer_.Cancel(); }

// ---------------------------------------------------------------------------
// TcpRendezvousClient
// ---------------------------------------------------------------------------

TcpRendezvousClient::TcpRendezvousClient(Host* host, Endpoint server, uint64_t client_id,
                                         RendezvousClientOptions options)
    : host_(host), server_(server), client_id_(client_id), options_(options) {
  // Relayed application chunks arrive over this connection: data-tier cap.
  framer_.set_max_frame(MessageFramer::kMaxDataFrame);
}

void TcpRendezvousClient::SendToServer(const RendezvousMessage& msg) {
  connection_->Send(
      MessageFramer::Frame(EncodeRendezvousMessage(msg, options_.obfuscate_addresses)));
}

void TcpRendezvousClient::Connect(uint16_t local_port, EndpointCallback cb) {
  DoConnect(local_port, std::move(cb));
}

void TcpRendezvousClient::DoConnect(uint16_t local_port, EndpointCallback cb) {
  connection_ = host_->tcp().CreateSocket();
  connection_->SetReuseAddr(true);
  Status status = connection_->Bind(local_port);
  if (!status.ok()) {
    cb(status);
    return;
  }
  local_port_ = connection_->local_port();
  private_ep_ = Endpoint(host_->primary_address(), local_port_);
  register_cb_ = std::move(cb);
  connection_->SetDataCallback([this](const Bytes& data) { OnData(data); });
  status = connection_->Connect(server_, [this](Status result) {
    if (!result.ok()) {
      registered_ = false;
      if (register_cb_) {
        auto callback = std::move(register_cb_);
        register_cb_ = nullptr;
        callback(result);
      }
      return;
    }
    RendezvousMessage msg;
    msg.type = RvMsgType::kRegister;
    msg.client_id = client_id_;
    msg.private_ep = private_ep_;
    SendToServer(msg);
  });
  if (!status.ok()) {
    auto callback = std::move(register_cb_);
    register_cb_ = nullptr;
    callback(status);
  }
}

void TcpRendezvousClient::OnData(const Bytes& data) {
  for (const Bytes& body : framer_.Append(data)) {
    auto msg = DecodeRendezvousMessage(body, options_.obfuscate_addresses);
    if (!msg) {
      host_->CountMalformedDrop();
      continue;
    }
    HandleServerMessage(*msg);
  }
}

void TcpRendezvousClient::HandleServerMessage(const RendezvousMessage& msg) {
  if (msg.epoch != 0 && server_epoch_ != 0 && msg.epoch != server_epoch_) {
    ++restarts_detected_;
  }
  switch (msg.type) {
    case RvMsgType::kRegisterOk: {
      public_ep_ = msg.public_ep;
      registered_ = true;
      server_epoch_ = msg.epoch;
      if (register_cb_) {
        auto cb = std::move(register_cb_);
        register_cb_ = nullptr;
        cb(public_ep_);
      }
      return;
    }
    case RvMsgType::kConnectAck: {
      auto it = pending_requests_.find(msg.client_id);
      if (it == pending_requests_.end()) {
        return;
      }
      auto cb = std::move(it->second);
      pending_requests_.erase(it);
      cb(msg);
      return;
    }
    case RvMsgType::kConnectError: {
      auto it = pending_requests_.find(msg.target_id);
      if (it == pending_requests_.end()) {
        return;
      }
      auto cb = std::move(it->second);
      pending_requests_.erase(it);
      cb(Status(ErrorCode::kHostUnreachable, "peer not registered"));
      return;
    }
    case RvMsgType::kConnectForward: {
      auto handler = connect_forward_handlers_.find(msg.strategy);
      if (handler != connect_forward_handlers_.end() && handler->second) {
        handler->second(msg);
      }
      return;
    }
    case RvMsgType::kSequentialReady:
      if (sequential_ready_handler_) {
        sequential_ready_handler_(msg);
      }
      return;
    case RvMsgType::kRelayForward:
      if (relay_handler_) {
        relay_handler_(msg.client_id, msg.payload);
      }
      return;
    default:
      return;
  }
}

void TcpRendezvousClient::RequestConnect(uint64_t peer_id, ConnectStrategy strategy,
                                         uint64_t nonce,
                                         std::function<void(Result<RendezvousMessage>)> cb,
                                         Bytes payload) {
  if (!registered_) {
    cb(Status(ErrorCode::kNotConnected, "not registered"));
    return;
  }
  pending_requests_[peer_id] = std::move(cb);
  RendezvousMessage msg;
  msg.type = RvMsgType::kConnectRequest;
  msg.client_id = client_id_;
  msg.target_id = peer_id;
  msg.strategy = strategy;
  msg.nonce = nonce;
  msg.payload = std::move(payload);
  SendToServer(msg);
}

void TcpRendezvousClient::SendRelay(uint64_t to_id, Bytes payload) {
  RendezvousMessage msg;
  msg.type = RvMsgType::kRelayData;
  msg.client_id = client_id_;
  msg.target_id = to_id;
  msg.payload = std::move(payload);
  SendToServer(msg);
}

void TcpRendezvousClient::SendSequentialReady(uint64_t to_id, uint64_t nonce) {
  RendezvousMessage msg;
  msg.type = RvMsgType::kSequentialReady;
  msg.client_id = client_id_;
  msg.target_id = to_id;
  msg.nonce = nonce;
  SendToServer(msg);
}

void TcpRendezvousClient::CloseConnection() {
  if (connection_ != nullptr) {
    connection_->Close();
    registered_ = false;
  }
}

void TcpRendezvousClient::Reconnect(EndpointCallback cb) {
  framer_ = MessageFramer();
  framer_.set_max_frame(MessageFramer::kMaxDataFrame);
  DoConnect(0, std::move(cb));
}

}  // namespace natpunch
