// Client-side rendezvous sessions.
//
// UdpRendezvousClient owns the single UDP socket the application will use
// for *everything* — registration with S, punch probes, and the eventual
// peer session — because reusing one local endpoint is what keeps the NAT
// mapping consistent (§3.2, §5.1). Datagrams from the server endpoint are
// rendezvous messages; anything else is handed to the peer-traffic handler.
//
// TcpRendezvousClient keeps a TCP connection to S from a fixed local port
// with SO_REUSEADDR set, so additional sockets (listen + connects) can share
// that port during TCP hole punching (§4.1, Fig. 7).

#ifndef SRC_RENDEZVOUS_CLIENT_H_
#define SRC_RENDEZVOUS_CLIENT_H_

#include <functional>
#include <map>

#include "src/netsim/event_loop.h"
#include "src/rendezvous/messages.h"
#include "src/rendezvous/ring.h"
#include "src/transport/host.h"

namespace natpunch {

struct RendezvousClientOptions {
  bool obfuscate_addresses = false;
  // UDP control messages are the client's own reliability layer; retry
  // budgets are sized to survive heavy loss (30% loss -> ~0.4% give-up).
  SimDuration register_retry_interval = Millis(500);
  int register_max_retries = 10;
  SimDuration request_retry_interval = Millis(500);
  int request_max_retries = 10;
  // Sharded tier only: consecutive unacknowledged keepalives before the
  // client declares its shard dead and re-homes to the ring successor.
  // Downtime is bounded by (failover_missed_keepalives + 1) keepalive
  // intervals plus one registration round-trip.
  int failover_missed_keepalives = 3;
};

class UdpRendezvousClient {
 public:
  using EndpointCallback = std::function<void(Result<Endpoint>)>;
  using MessageHandler = std::function<void(const RendezvousMessage&)>;
  using RelayHandler = std::function<void(uint64_t from_id, const Bytes& payload)>;
  using PeerTrafficHandler = std::function<void(const Endpoint& from, const Payload& payload)>;

  UdpRendezvousClient(Host* host, Endpoint server, uint64_t client_id,
                      RendezvousClientOptions options = RendezvousClientOptions{});

  // Sharded tier: the client learns the full ring, hashes its own ID to pick
  // its home shard, and — when keepalives to the current shard go
  // unacknowledged — deterministically re-homes along the ring-successor
  // ladder (docs/PROTOCOL.md §6). A one-shard ring behaves exactly like the
  // single-server constructor.
  UdpRendezvousClient(Host* host, ShardRing ring, uint64_t client_id,
                      RendezvousClientOptions options = RendezvousClientOptions{});

  // Bind `local_port` (0 = ephemeral) and register with S. The callback
  // receives the public endpoint S observed.
  void Register(uint16_t local_port, EndpointCallback cb);

  // Ask S to introduce us to `peer_id`. The callback receives the
  // kConnectAck carrying the peer's public and private endpoints. The
  // optional payload rides along to the peer inside the kConnectForward
  // (used by port prediction to carry the predicted endpoint).
  void RequestConnect(uint64_t peer_id, ConnectStrategy strategy, uint64_t nonce,
                      std::function<void(Result<RendezvousMessage>)> cb, Bytes payload = Bytes{});

  // Fire-and-forget variant: re-send an introduction request without
  // tracking a reply (used to refresh a possibly-lost kConnectForward).
  void SendConnectRequest(uint64_t peer_id, ConnectStrategy strategy, uint64_t nonce,
                          Bytes payload = Bytes{});

  // Fired when S forwards a peer's connection request with the given
  // strategy to us. Each strategy has one handler (its puncher component).
  void SetConnectForwardHandler(ConnectStrategy strategy, MessageHandler handler) {
    connect_forward_handlers_[strategy] = std::move(handler);
  }

  void SendRelay(uint64_t to_id, Bytes payload);
  void SetRelayHandler(RelayHandler handler) { relay_handler_ = std::move(handler); }

  void SetPeerTrafficHandler(PeerTrafficHandler handler) {
    peer_traffic_handler_ = std::move(handler);
  }

  // Periodic keep-alives to S so the registration mapping survives NAT idle
  // timeouts (§3.6).
  void StartKeepAlive(SimDuration interval);
  void StopKeepAlive();

  UdpSocket* socket() const { return socket_; }
  Host* host() const { return host_; }
  uint64_t client_id() const { return client_id_; }
  Endpoint server() const { return server_; }
  Endpoint private_endpoint() const { return private_ep_; }
  Endpoint public_endpoint() const { return public_ep_; }
  bool registered() const { return registered_; }
  bool obfuscate_addresses() const { return options_.obfuscate_addresses; }

  // Last server epoch seen (0 until the first kRegisterOk) and the number of
  // server restarts detected via an epoch change. Each detected restart
  // triggers a transparent re-registration from the same socket, so the
  // public endpoint and peer sessions are unaffected.
  uint64_t server_epoch() const { return server_epoch_; }
  uint64_t restarts_detected() const { return restarts_detected_; }

  // Sharded-tier state. `failovers()` counts re-homings; `current_shard()`
  // is the ring index the client is registered with (or re-registering to);
  // `rehoming()` is true in the window between declaring the shard dead and
  // the replacement's kRegisterOk — connect requests fail fast during it and
  // callers (ResilientSessionManager) treat that as retry-without-cost.
  const ShardRing& ring() const { return ring_; }
  uint64_t failovers() const { return failovers_; }
  uint32_t current_shard() const { return ring_.NthOwner(client_id_, ladder_pos_); }
  bool rehoming() const { return ring_.size() > 1 && !registered_; }

 private:
  void OnReceive(const Endpoint& from, const Payload& payload);
  void HandleServerMessage(const RendezvousMessage& msg, const Endpoint& from);
  void SendToServer(const RendezvousMessage& msg);
  void ReRegister();
  void RegisterRetryTick();
  void RequestRetryTick(uint64_t peer_id);
  void KeepAliveTick();
  void FailOverToNextShard();

  Host* host_;
  Endpoint server_;
  uint64_t client_id_;
  RendezvousClientOptions options_;
  ShardRing ring_;           // empty when constructed with a single server
  uint32_t ladder_pos_ = 0;  // ring() ladder position: 0 = home, 1 = replica, ...
  int keepalive_misses_ = 0;
  uint64_t failovers_ = 0;

  UdpSocket* socket_ = nullptr;
  Endpoint private_ep_;
  Endpoint public_ep_;
  bool registered_ = false;
  uint64_t server_epoch_ = 0;
  uint64_t restarts_detected_ = 0;

  EndpointCallback register_cb_;
  int register_attempts_ = 0;
  EventLoop::EventId register_retry_event_ = EventLoop::kInvalidEventId;

  struct PendingRequest {
    std::function<void(Result<RendezvousMessage>)> cb;
    std::function<void()> resend;
    int attempts = 0;
    ConnectStrategy strategy;
    uint64_t nonce;
    EventLoop::EventId retry_event = EventLoop::kInvalidEventId;
  };
  std::map<uint64_t, PendingRequest> pending_requests_;  // by peer id

  std::map<ConnectStrategy, MessageHandler> connect_forward_handlers_;
  RelayHandler relay_handler_;
  PeerTrafficHandler peer_traffic_handler_;
  // Intrusive keepalive timer. A closure-based ScheduleAfter here would pin
  // the event loop's closure ring for the life of the client — the ring
  // must span from the oldest pending sequence to the newest, so 100k
  // clients each holding one long-lived closure force a multi-million-slot
  // ring (this was the sharded swarm leg's 2.5x memory regression). Wheel
  // timers carry no such window cost.
  TimerHandle keepalive_timer_;
  SimDuration keepalive_interval_;
};

class TcpRendezvousClient {
 public:
  using EndpointCallback = std::function<void(Result<Endpoint>)>;
  using MessageHandler = std::function<void(const RendezvousMessage&)>;
  using RelayHandler = std::function<void(uint64_t from_id, const Bytes& payload)>;

  TcpRendezvousClient(Host* host, Endpoint server, uint64_t client_id,
                      RendezvousClientOptions options = RendezvousClientOptions{});

  // Bind `local_port` (0 = ephemeral) with SO_REUSEADDR, connect to S from
  // it, and register. Callback receives the observed public endpoint.
  void Connect(uint16_t local_port, EndpointCallback cb);

  void RequestConnect(uint64_t peer_id, ConnectStrategy strategy, uint64_t nonce,
                      std::function<void(Result<RendezvousMessage>)> cb, Bytes payload = Bytes{});
  void SetConnectForwardHandler(ConnectStrategy strategy, MessageHandler handler) {
    connect_forward_handlers_[strategy] = std::move(handler);
  }

  void SendRelay(uint64_t to_id, Bytes payload);
  void SetRelayHandler(RelayHandler handler) { relay_handler_ = std::move(handler); }

  // §4.5 support: signal the initiator that we are now listening, and the
  // ability to drop/reopen the server connection.
  void SendSequentialReady(uint64_t to_id, uint64_t nonce);
  void SetSequentialReadyHandler(MessageHandler handler) {
    sequential_ready_handler_ = std::move(handler);
  }
  void CloseConnection();
  // Reconnect to S from an ephemeral port (the §4.5 procedure consumes the
  // original connection).
  void Reconnect(EndpointCallback cb);

  TcpSocket* connection() const { return connection_; }
  Host* host() const { return host_; }
  uint64_t client_id() const { return client_id_; }
  Endpoint server() const { return server_; }
  uint16_t local_port() const { return local_port_; }
  Endpoint private_endpoint() const { return private_ep_; }
  Endpoint public_endpoint() const { return public_ep_; }
  bool registered() const { return registered_; }
  bool obfuscate_addresses() const { return options_.obfuscate_addresses; }

  // Epoch bookkeeping mirrors UdpRendezvousClient, but a TCP client cannot
  // re-register in place: a server restart kills the connection, so recovery
  // goes through Reconnect(). The counter still records detected restarts
  // (an epoch change across a reconnect).
  uint64_t server_epoch() const { return server_epoch_; }
  uint64_t restarts_detected() const { return restarts_detected_; }

 private:
  void OnData(const Bytes& data);
  void HandleServerMessage(const RendezvousMessage& msg);
  void SendToServer(const RendezvousMessage& msg);
  void DoConnect(uint16_t local_port, EndpointCallback cb);

  Host* host_;
  Endpoint server_;
  uint64_t client_id_;
  RendezvousClientOptions options_;

  TcpSocket* connection_ = nullptr;
  MessageFramer framer_;
  uint16_t local_port_ = 0;
  Endpoint private_ep_;
  Endpoint public_ep_;
  bool registered_ = false;
  uint64_t server_epoch_ = 0;
  uint64_t restarts_detected_ = 0;

  EndpointCallback register_cb_;
  std::map<uint64_t, std::function<void(Result<RendezvousMessage>)>> pending_requests_;

  std::map<ConnectStrategy, MessageHandler> connect_forward_handlers_;
  MessageHandler sequential_ready_handler_;
  RelayHandler relay_handler_;
};

}  // namespace natpunch

#endif  // SRC_RENDEZVOUS_CLIENT_H_
